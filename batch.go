package cclbtree

import "cclbtree/internal/core"

// Batch stages a group of writes for Session.Apply. The zero value is
// ready to use; Reset recycles the backing storage across groups.
//
// A batch holds either fixed 8 B ops (Put/Delete) or variable-size ops
// (PutVar/DeleteVar), matching the tree's mode — Apply rejects the
// whole group (with ErrVarKVRequired / ErrFixedKVRequired, before any
// side effect) on a mismatch. Byte slices passed to PutVar/DeleteVar
// are retained, not copied: the caller must not modify them until
// Apply returns.
type Batch struct {
	ops []core.BatchOp
}

// Put stages a fixed 8 B insert or update.
func (b *Batch) Put(key, value uint64) *Batch {
	b.ops = append(b.ops, core.BatchOp{Key: key, Value: value})
	return b
}

// Delete stages a fixed 8 B delete (tombstone insertion).
func (b *Batch) Delete(key uint64) *Batch {
	b.ops = append(b.ops, core.BatchOp{Key: key, Delete: true})
	return b
}

// PutVar stages a variable-size insert or update. key and value are
// retained until Apply returns.
func (b *Batch) PutVar(key, value []byte) *Batch {
	b.ops = append(b.ops, core.BatchOp{KeyBytes: key, ValueBytes: value})
	return b
}

// DeleteVar stages a variable-size delete. key is retained until Apply
// returns.
func (b *Batch) DeleteVar(key []byte) *Batch {
	b.ops = append(b.ops, core.BatchOp{KeyBytes: key, Delete: true})
	return b
}

// Len reports the number of staged ops.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch, keeping the backing storage for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply applies every staged op with one WAL group commit: the ops are
// sorted by key, all their log records are persisted under a single
// fence (instead of one fence per op), and ops landing on the same
// leaf share one buffer-flush. On a batch of N ops this saves N−1
// fences and turns N same-leaf trigger writes into one leaf write —
// the source of the batch path's throughput and write-amplification
// win (see the "Batched writes" section of the README).
//
// Durability is the same as issuing the ops individually: when Apply
// returns every op is durable, and ops to the same key take effect in
// staging order. Crash atomicity is per-op, not per-batch — a power
// failure during Apply durably keeps each op independently (the batch
// is not a transaction). Validation runs before any side effect, so a
// rejected batch (ErrZeroKey, mode mismatch, ErrClosed, ...) leaves
// the tree untouched. The batch itself is not consumed; call Reset to
// reuse it.
func (s *Session) Apply(b *Batch) error {
	if b == nil {
		return nil
	}
	return s.w.ApplyBatch(b.ops)
}
