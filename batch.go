package cclbtree

import "cclbtree/internal/core"

// Batch stages a group of writes for Session.Apply. The zero value is
// ready to use; Reset recycles the backing storage across groups.
//
// A batch holds either fixed 8 B ops (Put/Delete) or variable-size ops
// (PutVar/DeleteVar), matching the tree's mode — Apply rejects the
// whole group (with ErrVarKVRequired / ErrFixedKVRequired, before any
// side effect) on a mismatch. Byte slices passed to PutVar/DeleteVar
// are retained, not copied: the caller must not modify them until
// Apply returns.
type Batch struct {
	ops []core.BatchOp
}

// Put stages a fixed 8 B insert or update.
func (b *Batch) Put(key, value uint64) *Batch {
	b.ops = append(b.ops, core.BatchOp{Key: key, Value: value})
	return b
}

// Delete stages a fixed 8 B delete (tombstone insertion).
func (b *Batch) Delete(key uint64) *Batch {
	b.ops = append(b.ops, core.BatchOp{Key: key, Delete: true})
	return b
}

// PutVar stages a variable-size insert or update. key and value are
// retained until Apply returns.
func (b *Batch) PutVar(key, value []byte) *Batch {
	b.ops = append(b.ops, core.BatchOp{KeyBytes: key, ValueBytes: value})
	return b
}

// DeleteVar stages a variable-size delete. key is retained until Apply
// returns.
func (b *Batch) DeleteVar(key []byte) *Batch {
	b.ops = append(b.ops, core.BatchOp{KeyBytes: key, Delete: true})
	return b
}

// Len reports the number of staged ops.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch, keeping the backing storage for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Apply applies every staged op with one WAL group commit per shard:
// the ops are split by key hash, each shard's slice is sorted by key,
// all its log records are persisted under a single fence (instead of
// one fence per op), and ops landing on the same leaf share one
// buffer-flush. On a batch of N ops this saves N−1 fences (per shard)
// and turns N same-leaf trigger writes into one leaf write — the
// source of the batch path's throughput and write-amplification win
// (see the "Batched writes" section of the README).
//
// Durability is the same as issuing the ops individually: when Apply
// returns every op is durable, and ops to the same key take effect in
// staging order (a key's ops always land on one shard, in order).
// Crash atomicity is per-op, not per-batch — a power failure during
// Apply durably keeps each op independently (the batch is not a
// transaction). Validation runs on every shard's slice before any
// shard's commit starts, so a rejected batch (ErrZeroKey, mode
// mismatch, ErrClosed, ...) leaves the whole DB untouched. The batch
// itself is not consumed; call Reset to reuse it.
func (s *Session) Apply(b *Batch) error {
	if b == nil {
		return nil
	}
	if len(s.ws) == 1 {
		return s.ws[0].ApplyBatch(b.ops)
	}
	db := s.db
	perShard := make([][]core.BatchOp, len(s.ws))
	for _, op := range b.ops {
		shard := 0
		if op.KeyBytes != nil {
			shard = db.shardForBytes(op.KeyBytes)
		} else {
			shard = db.shardFor(op.Key)
		}
		perShard[shard] = append(perShard[shard], op)
	}
	// All-or-nothing validation across shards, then commit shard by
	// shard. Serial-clock discipline as everywhere in the session: the
	// per-shard commits happen one after another in virtual time (the
	// server's commit lanes are what overlap them).
	for shard, ops := range perShard {
		if len(ops) == 0 {
			continue
		}
		if err := s.ws[shard].ValidateBatch(ops); err != nil {
			return err
		}
	}
	for shard, ops := range perShard {
		if len(ops) == 0 {
			continue
		}
		w := s.worker(shard)
		err := w.ApplyBatch(ops)
		s.settle(w)
		if err != nil {
			return err
		}
	}
	return nil
}
