package cclbtree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cclbtree/internal/memtree"
	"cclbtree/internal/pmem"
	"cclbtree/internal/torture"
)

// TestShardedCrashDurablePrefix is the sharded-DB crash property test:
// concurrent writers spray upserts and deletes across every shard of
// one DB, the whole pool loses power mid-workload (every shard's
// in-flight state dies at once), the DB is reopened with shard
// auto-detection, and each shard's recovered tree must independently
// satisfy the durable-prefix linearizability oracle against the slice
// of the history that routed to it — checked with that shard's own
// ORDO clock, since shards share no tick domain. Rounds chain: each
// continues on the recovered image, so crash-recover-crash sequences
// and recovered-clock resume are exercised per shard.
func TestShardedCrashDurablePrefix(t *testing.T) {
	const (
		shards   = 4
		writers  = 8
		opsPer   = 400
		keySpace = 512
		rounds   = 5
	)
	pool := pmem.NewPool(pmem.Config{
		Sockets: 2, DIMMsPerSocket: 1, DeviceBytes: 32 << 20, StrictPersist: true,
	})
	db, err := NewOnPool(pool, Config{Shards: shards, ChunkBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}

	master := rand.New(rand.NewSource(7))
	baseline := make([]map[uint64]uint64, shards)
	for i := range baseline {
		baseline[i] = map[uint64]uint64{}
	}
	var flushBudget int64
	crashes := 0

	for round := 0; round < rounds; round++ {
		seeds := make([]int64, writers)
		for i := range seeds {
			seeds[i] = master.Int63()
		}
		flushStart := pool.FlushCalls()
		// Round 0 calibrates the flush budget (quiescent crash); later
		// rounds fire mid-workload at a uniform flush ordinal.
		if round > 0 && flushBudget > 0 {
			n := 1 + master.Int63n(flushBudget)
			var matched atomic.Int64
			pool.FailWhen(func(pmem.FaultPoint) bool { return matched.Add(1) == n })
		}

		// hist[w][shard] is writer w's op log for one shard: the same
		// concurrent history, partitioned by where the router sent it.
		hist := make([][][]torture.Op, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			hist[w] = make([][]torture.Op, shards)
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seeds[wid]))
				sess := db.Session(wid % pool.Sockets())
				for seq := 0; seq < opsPer; seq++ {
					if pool.FaultFired() {
						return // machine is dead; no new invocations
					}
					key := 1 + rng.Uint64()%keySpace
					shard := db.ShardFor(key)
					clock := db.shards[shard].Clock()
					socket := db.ShardHomeSocket(shard)
					op := torture.Op{Worker: wid, Seq: seq, Key: key}
					if rng.Intn(4) < 3 {
						op.Kind = torture.OpUpsert
						op.Value = uint64(round+1)<<40 | uint64(wid+1)<<28 | uint64(seq+1)
					} else {
						op.Kind = torture.OpDelete
					}
					op.Invoke = clock.Now(socket)
					died := false
					err := func() (opErr error) {
						defer func() {
							if r := recover(); r != nil {
								if _, ok := r.(pmem.PowerFailure); !ok {
									panic(r)
								}
								died = true
							}
						}()
						if op.Kind == torture.OpUpsert {
							opErr = sess.Put(op.Key, op.Value)
						} else {
							opErr = sess.Delete(op.Key)
						}
						return
					}()
					if err != nil {
						t.Error(err)
						return
					}
					if !died {
						op.Return = clock.Now(socket)
						op.Done = true
					}
					hist[wid][shard] = append(hist[wid][shard], op)
					if died {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		// Power-failure order: freeze what can be frozen (dies quietly
		// if the fault already fired), disarm, lose power.
		crashed := pool.FaultFired()
		if crashed {
			crashes++
		}
		freezeQuiet(db)
		pool.FailWhen(nil)
		pool.Crash()
		if round == 0 {
			flushBudget = pool.FlushCalls() - flushStart
		}

		rec, err := Open(pool, Config{})
		if err != nil {
			t.Fatalf("round %d (crashed=%v): recovery rejected the crash image: %v", round, crashed, err)
		}
		if rec.Shards() != shards {
			t.Fatalf("round %d: auto-detected %d shards, want %d", round, rec.Shards(), shards)
		}

		// Snapshot the recovered state, partitioned per shard.
		recovered := make([]map[uint64]uint64, shards)
		for i := range recovered {
			recovered[i] = map[uint64]uint64{}
		}
		snap := rec.Session(0)
		for k := uint64(1); k <= keySpace; k++ {
			if v, ok := snap.Get(k); ok {
				recovered[rec.ShardFor(k)][k] = v
			}
		}

		// Each shard independently satisfies the durable-prefix oracle
		// against its slice of the history, on its own clock.
		for shard := 0; shard < shards; shard++ {
			perWorker := make([][]torture.Op, writers)
			for w := 0; w < writers; w++ {
				perWorker[w] = hist[w][shard]
			}
			vs := torture.CheckDurablePrefix(rec.shards[shard].Clock(), baseline[shard], perWorker, recovered[shard], round)
			for _, v := range vs {
				t.Errorf("shard %d (crashed=%v): %v", shard, crashed, v)
			}
			baseline[shard] = recovered[shard]
		}
		if t.Failed() {
			t.FailNow()
		}
		db = rec
	}
	if crashes == 0 {
		t.Fatal("no round crashed mid-workload; the test exercised nothing")
	}

	// Post-recovery memtree comparison: replay a deterministic mixed
	// phase into both the recovered sharded DB and an in-DRAM oracle
	// seeded from the recovered state, then the merged cross-shard
	// Range must agree with the oracle exactly.
	oracle := &memtree.Tree[uint64]{}
	sess := db.Session(0)
	for k := uint64(1); k <= keySpace; k++ {
		if v, ok := sess.Get(k); ok {
			oracle.Put(k, v)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		key := 1 + rng.Uint64()%(2*keySpace)
		if rng.Intn(3) == 0 {
			if err := sess.Delete(key); err != nil {
				t.Fatal(err)
			}
			oracle.Delete(key)
		} else {
			v := uint64(rounds+2)<<40 | uint64(i+1)
			if err := sess.Put(key, v); err != nil {
				t.Fatal(err)
			}
			oracle.Put(key, v)
		}
	}
	got := map[uint64]uint64{}
	for k, v := range sess.Range(1) {
		got[k] = v
	}
	want := map[uint64]uint64{}
	oracle.Ascend(1, func(k, v uint64) bool {
		want[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("post-recovery Range has %d keys, memtree oracle has %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("post-recovery key %d: DB %d, memtree oracle %d", k, got[k], v)
		}
	}
	db.Close()
}

// freezeQuiet freezes the DB, swallowing the PowerFailure panic a
// frozen-too-late background flush raises when the fault already fired.
func freezeQuiet(db *DB) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.PowerFailure); !ok {
				panic(r)
			}
		}
	}()
	db.Close()
}
