module cclbtree

go 1.22
