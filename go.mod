module cclbtree

go 1.23
