package cclbtree

import (
	"cclbtree/internal/core"
	"cclbtree/internal/pmem"
)

// Session is a per-goroutine handle. Create one per worker goroutine
// with DB.Session; it owns a thread-local write-ahead log per shard
// and must not be shared.
//
// On a sharded DB every operation routes to its key's shard and runs
// on a worker homed on that shard's socket — the handoff the serving
// tier performs literally with per-shard commit lanes. The session
// models ONE client thread: its per-shard workers share a serial
// virtual clock (each op starts no earlier than the previous op
// finished, whichever shard that was on), so sharding never fakes
// single-client speedup in the simulated-time model. Real scaling
// comes from many sessions — or the server's commit lanes — running
// concurrently on different shards.
type Session struct {
	db *DB
	ws []*core.Worker
	// vt is the serial clock: the max virtual time any of the
	// session's workers has reached. Maintained only when sharded.
	vt int64
}

// Session creates an operation handle. On a single-shard DB the
// worker binds to the given NUMA socket (today's behaviour); on a
// sharded DB each shard's worker binds to that shard's home socket so
// the session's writes stay NUMA-local to their shard, and the socket
// argument only seats shard-independent state.
func (db *DB) Session(socket int) *Session {
	s := &Session{db: db, ws: make([]*core.Worker, len(db.shards))}
	for i, tr := range db.shards {
		home := socket
		if len(db.shards) > 1 {
			home = tr.Options().HomeSocket
		}
		s.ws[i] = tr.NewWorker(home)
		if now := s.ws[i].Thread().Now(); now > s.vt {
			s.vt = now
		}
	}
	return s
}

// Now returns the session's serial virtual clock: the virtual time its
// latest operation finished at, regardless of which shard ran it.
func (s *Session) Now() int64 {
	if len(s.ws) == 1 {
		return s.ws[0].Thread().Now()
	}
	return s.vt
}

// worker returns the shard's worker with its clock advanced to the
// session's serial clock, so cross-shard ops cannot overlap in
// virtual time.
func (s *Session) worker(shard int) *core.Worker {
	w := s.ws[shard]
	if len(s.ws) > 1 {
		w.Thread().SyncClock(s.vt)
	}
	return w
}

// settle folds a worker's post-op clock back into the serial clock.
func (s *Session) settle(w *core.Worker) {
	if len(s.ws) > 1 {
		if now := w.Thread().Now(); now > s.vt {
			s.vt = now
		}
	}
}

// Thread exposes the session's shard-0 PM thread (virtual clock and
// tag). On a sharded DB, per-shard threads advance independently
// between sync points; the serial clock is the maximum across them.
func (s *Session) Thread() *pmem.Thread { return s.ws[0].Thread() }

// Put inserts or updates a fixed 8 B pair. Key must be nonzero and
// value nonzero (zero is the paper's tombstone sentinel).
func (s *Session) Put(key, value uint64) error {
	w := s.worker(s.db.shardFor(key))
	err := w.Upsert(key, value)
	s.settle(w)
	return err
}

// Get returns the value for key. Reads are lock-free: the session
// traverses version-stamped nodes optimistically and retries on a
// concurrent writer's version change, never blocking it (seqlock
// discipline; see Counters.ReadRetries).
func (s *Session) Get(key uint64) (uint64, bool) {
	w := s.worker(s.db.shardFor(key))
	v, ok := w.Lookup(key)
	s.settle(w)
	return v, ok
}

// Delete removes key (tombstone insertion; space is reclaimed when the
// tombstone reaches the leaf).
func (s *Session) Delete(key uint64) error {
	w := s.worker(s.db.shardFor(key))
	err := w.Delete(key)
	s.settle(w)
	return err
}

// KV is a fixed-size scan result.
type KV = core.KV

// Scan fills out with up to len(out) live entries with key ≥ start in
// ascending order and returns the count. Like Get, Scan is lock-free:
// each node is snapshotted optimistically and re-validated, and leaves
// unlinked by a concurrent merge stay readable until every in-flight
// read has finished (epoch-based reclamation). On a sharded DB the
// per-shard streams are merged in key order.
func (s *Session) Scan(start uint64, out []KV) int {
	if len(s.ws) == 1 {
		return s.ws[0].Scan(start, len(out), out)
	}
	n := 0
	for k, v := range s.Range(start) {
		if n == len(out) {
			break
		}
		out[n] = KV{Key: k, Value: v}
		n++
	}
	return n
}

// PutVar inserts or updates a variable-size pair (requires VarKV).
func (s *Session) PutVar(key, value []byte) error {
	w := s.worker(s.db.shardForBytes(key))
	err := w.UpsertVar(key, value)
	s.settle(w)
	return err
}

// GetVar returns the value for a variable-size key.
func (s *Session) GetVar(key []byte) ([]byte, bool) {
	w := s.worker(s.db.shardForBytes(key))
	v, ok := w.LookupVar(key)
	s.settle(w)
	return v, ok
}

// DeleteVar removes a variable-size key.
func (s *Session) DeleteVar(key []byte) error {
	w := s.worker(s.db.shardForBytes(key))
	err := w.DeleteVar(key)
	s.settle(w)
	return err
}

// KVBytes is a variable-size scan result.
type KVBytes = core.KVBytes

// ScanVar returns up to max live entries with key ≥ start in ascending
// byte order, merged across shards.
func (s *Session) ScanVar(start []byte, max int) []KVBytes {
	if len(s.ws) == 1 {
		return s.ws[0].ScanVar(start, max)
	}
	var out []KVBytes
	for k, v := range s.RangeVar(start) {
		if len(out) == max {
			break
		}
		out = append(out, KVBytes{Key: k, Value: v})
	}
	return out
}

// PutLargeValue stores an 8 B key with an out-of-band value blob
// through an indirection pointer (§4.4), for values larger than 8 B.
func (s *Session) PutLargeValue(key uint64, value []byte) error {
	w := s.worker(s.db.shardFor(key))
	err := w.UpsertLargeValue(key, value)
	s.settle(w)
	return err
}

// GetLargeValue fetches a value stored with PutLargeValue (or Put).
func (s *Session) GetLargeValue(key uint64) ([]byte, bool) {
	w := s.worker(s.db.shardFor(key))
	v, ok := w.LookupLargeValue(key)
	s.settle(w)
	return v, ok
}

// PutIndirect stores a fixed 8 B key with a pre-built indirection
// pointer word (IsIndirect must hold). Harnesses that manage their own
// value blobs use this to drive every index through one code path.
func (s *Session) PutIndirect(key, pointerWord uint64) error {
	w := s.worker(s.db.shardFor(key))
	err := w.UpsertIndirect(key, pointerWord)
	s.settle(w)
	return err
}
