package cclbtree

// The routing hash must be stable across processes and restarts — the
// shard a key lives on is persistent state, so anything seeded per
// process (hash/maphash) would scatter a reopened DB's keys to the
// wrong shards. mix64 is the SplitMix64 finalizer: cheap, invertible
// (no funneling) and well mixed in the low bits the modulus keeps.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashBytes is 64-bit FNV-1a with a final mix, for VarKV routing.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return mix64(h)
}

func (db *DB) shardFor(key uint64) int {
	if len(db.shards) == 1 {
		return 0
	}
	return int(mix64(key) % uint64(len(db.shards)))
}

func (db *DB) shardForBytes(key []byte) int {
	if len(db.shards) == 1 {
		return 0
	}
	return int(hashBytes(key) % uint64(len(db.shards)))
}
