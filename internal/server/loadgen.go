package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cclbtree"
)

// Workload shapes one load-generator run against a Server.
type Workload struct {
	// Clients is the number of concurrent client goroutines
	// (default 8). Clients model very high concurrency cheaply: each
	// one is a goroutine issuing blocking (closed-loop) or shedding
	// (open-loop) requests.
	Clients int
	// Ops is the total operation budget across clients (default
	// 10000).
	Ops int
	// ReadFrac is the fraction of ops issued as Gets (default 0,
	// pure insert). Reads target keys the client already wrote and
	// verify the value round-trips.
	ReadFrac float64
	// Clustered selects per-client contiguous key blocks (the
	// locality-friendly bulk-ingest shape the paper's batching
	// rewards); false scrambles keys uniformly.
	Clustered bool
	// OpenLoop switches writes to TryPut: a full shard queue sheds
	// the op (counted, not retried) instead of blocking the client.
	OpenLoop bool
	// KeyBase offsets the key space so successive runs don't collide.
	KeyBase uint64
}

func (w Workload) withDefaults() Workload {
	if w.Clients == 0 {
		w.Clients = 8
	}
	if w.Ops == 0 {
		w.Ops = 10000
	}
	if w.KeyBase == 0 {
		w.KeyBase = 1 << 32
	}
	return w
}

// LoadResult summarizes one load-generator run.
type LoadResult struct {
	Writes  uint64 `json:"writes"`
	Reads   uint64 `json:"reads"`
	Shed    uint64 `json:"shed"`    // open-loop ops dropped on backpressure
	Misread uint64 `json:"misread"` // self-verification failures (must be 0)
	// WriteVirtualNS is the slowest commit lane's busy-time advance
	// during the run: the virtual elapsed time of the write load.
	WriteVirtualNS int64 `json:"write_virtual_ns"`
	// WriteMops is committed write throughput over WriteVirtualNS.
	WriteMops float64 `json:"write_mops"`
	// AvgBatch is the mean ops per group commit across lanes.
	AvgBatch float64 `json:"avg_batch"`
}

// scramble is the key mix for the non-clustered shape; any fixed
// bijection works, reuse the DB routing mix's structure.
func scramble(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// valueFor makes runs self-verifying: every written value is derived
// from its key, so any read can check the pair without shared state.
func valueFor(key uint64) uint64 { return key ^ 0x5bd1e995 }

// RunLoad drives a Server with w and reports what happened. The run
// is bounded (exactly w.Ops issued, minus shed) and self-verifying:
// each client rereads its own writes per ReadFrac and counts
// mismatches in Misread.
func RunLoad(s *Server, w Workload) (*LoadResult, error) {
	w = w.withDefaults()
	before := s.Stats()
	res := &LoadResult{}
	perClient := w.Ops / w.Clients
	if perClient == 0 {
		perClient = 1
	}
	var writes, reads, shed, misread atomic.Uint64
	errs := make([]error, w.Clients)
	var wg sync.WaitGroup
	for c := 0; c < w.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := w.KeyBase + uint64(c)*uint64(perClient)
			written := make([]uint64, 0, perClient)
			// Every ~1/ReadFrac ops, reread a key this client wrote.
			readEvery := 0
			if w.ReadFrac > 0 {
				readEvery = int(1 / w.ReadFrac)
			}
			for i := 0; i < perClient; i++ {
				if readEvery > 0 && len(written) > 0 && i%readEvery == 0 {
					key := written[i%len(written)]
					v, ok, err := s.Get(key)
					if err != nil {
						errs[c] = err
						return
					}
					if !ok || v != valueFor(key) {
						misread.Add(1)
					}
					reads.Add(1)
					continue
				}
				key := base + uint64(i)
				if !w.Clustered {
					key = w.KeyBase | scramble(base+uint64(i))>>16
				}
				var err error
				if w.OpenLoop {
					err = s.TryPut(key, valueFor(key))
					if errors.Is(err, cclbtree.ErrBackpressure) {
						shed.Add(1)
						continue
					}
				} else {
					err = s.Put(key, valueFor(key))
				}
				if err != nil {
					errs[c] = err
					return
				}
				writes.Add(1)
				written = append(written, key)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("server: loadgen: %w", err)
		}
	}
	after := s.Stats()
	res.Writes = writes.Load()
	res.Reads = reads.Load()
	res.Shed = shed.Load()
	res.Misread = misread.Load()
	var ops, batches uint64
	for i := range after.Lanes {
		d := after.Lanes[i].VirtualNS - before.Lanes[i].VirtualNS
		if d > res.WriteVirtualNS {
			res.WriteVirtualNS = d
		}
		ops += after.Lanes[i].Ops - before.Lanes[i].Ops
		batches += after.Lanes[i].Batches - before.Lanes[i].Batches
	}
	if batches > 0 {
		res.AvgBatch = float64(ops) / float64(batches)
	}
	if res.WriteVirtualNS > 0 {
		res.WriteMops = float64(res.Writes) / float64(res.WriteVirtualNS) * 1e3
	}
	return res, nil
}
