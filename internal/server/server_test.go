package server

import (
	"errors"

	"sync"
	"testing"

	"cclbtree"
	"cclbtree/internal/pmem"
)

func newTestServer(t *testing.T, shards int, mut func(*Config)) (*Server, *cclbtree.DB) {
	t.Helper()
	db, err := cclbtree.New(cclbtree.Config{
		Shards:     shards,
		ChunkBytes: 16 << 10,
		Platform:   pmem.Config{Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: 64 << 20, StrictPersist: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{DB: db}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	return srv, db
}

func TestServerPutGetRoundtrip(t *testing.T) {
	srv, _ := newTestServer(t, 4, nil)
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if err := srv.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= n; k++ {
		v, ok, err := srv.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if err := srv.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := srv.Get(5); ok {
		t.Fatal("deleted key visible")
	}
}

func TestServerCoalescesConcurrentClients(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	const clients, perClient = 32, 200
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(1+c) << 20
			for i := uint64(0); i < perClient; i++ {
				if err := srv.Put(base+i, base+i); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	var ops, batches uint64
	for _, l := range st.Lanes {
		ops += l.Ops
		batches += l.Batches
		if l.Ops == 0 {
			t.Fatalf("lane %d served no ops; routing broken: %+v", l.Shard, st.Lanes)
		}
	}
	if ops != clients*perClient {
		t.Fatalf("lanes committed %d ops, want %d", ops, clients*perClient)
	}
	if avg := float64(ops) / float64(batches); avg < 1.5 {
		t.Fatalf("no coalescing under 32 concurrent clients: avg batch %.2f", avg)
	}
	if st.MaxLaneVirtualNS == 0 {
		t.Fatal("lane virtual time not accounted")
	}
}

func TestServerBackpressure(t *testing.T) {
	// A tiny queue with a server whose committers are saturated must
	// shed TryPut with the sentinel. Stall the lanes by filling the
	// queue faster than one committer can drain 1-deep batches.
	srv, _ := newTestServer(t, 1, func(c *Config) {
		c.QueueDepth = 1
		c.MaxBatch = 1
	})
	sawBackpressure := false
	for i := uint64(1); i <= 5000 && !sawBackpressure; i++ {
		if err := srv.TryPut(i, i); err != nil {
			if !errors.Is(err, cclbtree.ErrBackpressure) {
				t.Fatalf("TryPut = %v, want ErrBackpressure", err)
			}
			sawBackpressure = true
		}
	}
	// A 1-deep queue against a blocking enqueue storm is effectively
	// impossible to never fill; but if the committer outran us, that
	// is not a failure of the sentinel path.
	if sawBackpressure && srv.Stats().Rejected == 0 {
		t.Fatal("rejected counter not bumped")
	}
}

func TestServerClosedSentinel(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	if err := srv.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := srv.Put(2, 2); !errors.Is(err, cclbtree.ErrShardClosed) {
		t.Fatalf("Put after Close = %v, want ErrShardClosed", err)
	}
	if err := srv.TryPut(2, 2); !errors.Is(err, cclbtree.ErrShardClosed) {
		t.Fatalf("TryPut after Close = %v, want ErrShardClosed", err)
	}
	if _, _, err := srv.Get(1); !errors.Is(err, cclbtree.ErrShardClosed) {
		t.Fatalf("Get after Close = %v, want ErrShardClosed", err)
	}
	srv.Close() // idempotent
}

func TestServerCloseDrainsQueuedWrites(t *testing.T) {
	srv, db := newTestServer(t, 2, func(c *Config) { c.QueueDepth = 4096 })
	const n = 1000
	var wg sync.WaitGroup
	errsCh := make(chan error, n)
	for k := uint64(1); k <= n; k++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			errsCh <- srv.Put(k, k)
		}(k)
	}
	wg.Wait()
	srv.Close()
	close(errsCh)
	for err := range errsCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Every acknowledged write is in the store.
	s := db.Session(0)
	for k := uint64(1); k <= n; k++ {
		if v, ok := s.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v after drain", k, v, ok)
		}
	}
}

func TestLoadgenClosedLoop(t *testing.T) {
	srv, _ := newTestServer(t, 4, nil)
	res, err := RunLoad(srv, Workload{Clients: 16, Ops: 4000, ReadFrac: 0.25, Clustered: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misread != 0 {
		t.Fatalf("%d self-verification failures", res.Misread)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("closed loop shed %d ops", res.Shed)
	}
	if res.WriteVirtualNS <= 0 || res.WriteMops <= 0 {
		t.Fatalf("virtual-time accounting missing: %+v", res)
	}
}

func TestLoadgenOpenLoop(t *testing.T) {
	srv, _ := newTestServer(t, 2, func(c *Config) { c.QueueDepth = 2 })
	res, err := RunLoad(srv, Workload{Clients: 16, Ops: 4000, OpenLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misread != 0 {
		t.Fatalf("%d self-verification failures", res.Misread)
	}
	// Writes either committed or were shed; nothing vanished.
	committed := srv.Stats()
	var ops uint64
	for _, l := range committed.Lanes {
		ops += l.Ops
	}
	if ops != res.Writes {
		t.Fatalf("lanes committed %d, loadgen counted %d", ops, res.Writes)
	}
}

func TestServerScramblesAcrossShards(t *testing.T) {
	srv, db := newTestServer(t, 8, nil)
	if _, err := RunLoad(srv, Workload{Clients: 8, Ops: 8000, Clustered: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.Shards(); i++ {
		if db.ShardCounters(i).Upserts == 0 {
			t.Fatalf("shard %d got no traffic from clustered load", i)
		}
	}
}

func TestServerRequiresDB(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without DB succeeded")
	}
}
