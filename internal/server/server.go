// Package server is the serving tier over a sharded cclbtree.DB: the
// piece that turns "one tree per socket" into a KV frontend for very
// many concurrent clients.
//
// Layout:
//
//   - Router: every write is hashed to its shard (the DB's stable
//     routing hash) and enqueued on that shard's commit lane.
//   - Commit lanes: one goroutine per shard, pinned to the shard's
//     home socket, owning the only Session that writes the shard. A
//     lane drains its queue and coalesces up to Config.MaxBatch
//     pending ops into one Session.Apply group commit — N clients'
//     ops share one WAL fence and, when they land on the same leaf,
//     one leaf write. This is the server-side continuation of the
//     paper's leaf-node-centric buffering: client concurrency becomes
//     batch depth.
//   - Session pool: reads are lock-free in the tree, so they bypass
//     the lanes entirely and run on a pool of read sessions.
//
// Backpressure is explicit: a full lane queue rejects TryPut with
// cclbtree.ErrBackpressure (open-loop clients shed load) while Put
// blocks (closed-loop clients self-clock). After Close every entry
// point returns cclbtree.ErrShardClosed.
//
// Because the device model meters virtual time per thread, the lanes
// are also the scaling story the shards benchmark measures: each lane
// advances its own virtual clock, and aggregate throughput is total
// ops over the slowest lane's clock — more shards, more lanes, more
// virtual-time parallelism, until one socket's lanes saturate it.
package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cclbtree"
	"cclbtree/internal/core"
	"cclbtree/internal/obs"
)

// Config configures a Server. The zero value of everything but DB is
// usable.
type Config struct {
	// DB is the (typically sharded) store to serve. Required.
	DB *cclbtree.DB
	// QueueDepth bounds each shard's pending-write queue (default
	// 1024). A full queue blocks Put and rejects TryPut.
	QueueDepth int
	// MaxBatch bounds how many queued ops one group commit coalesces
	// (default 64).
	MaxBatch int
	// ReadSessions sizes the read session pool (default 2 per shard,
	// minimum 2). Reads borrow a session and run lock-free against
	// the trees directly.
	ReadSessions int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.ReadSessions == 0 {
		c.ReadSessions = 2 * c.DB.Shards()
	}
	if c.ReadSessions < 2 {
		c.ReadSessions = 2
	}
	return c
}

// op is one queued write. done is buffered so the lane never blocks
// completing an op whose client already gave up.
type op struct {
	key    uint64
	value  uint64
	delete bool
	done   chan error
}

// lane is one shard's commit pipeline: a bounded queue drained by a
// dedicated committer goroutine whose Session is homed on the shard's
// socket.
type lane struct {
	shard   int
	socket  int
	ch      chan *op
	sess    *cclbtree.Session
	startVT int64

	ops     atomic.Uint64
	batches atomic.Uint64
	endVT   atomic.Int64
}

// Server routes client operations to per-shard commit lanes.
type Server struct {
	cfg   Config
	db    *cclbtree.DB
	lanes []*lane
	reads chan *cclbtree.Session

	mu       sync.RWMutex // guards closed vs in-flight enqueues
	closed   bool
	rejected atomic.Uint64
	wg       sync.WaitGroup
}

// New starts a server over cfg.DB: one commit lane per shard plus the
// read session pool. The server owns no storage — closing it leaves
// the DB open.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB required")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, db: cfg.DB}
	for i := 0; i < cfg.DB.Shards(); i++ {
		socket := cfg.DB.ShardHomeSocket(i)
		sess := cfg.DB.Session(socket)
		l := &lane{
			shard:   i,
			socket:  socket,
			ch:      make(chan *op, cfg.QueueDepth),
			sess:    sess,
			startVT: sess.Now(),
		}
		s.lanes = append(s.lanes, l)
		s.wg.Add(1)
		go s.commitLoop(l)
	}
	s.reads = make(chan *cclbtree.Session, cfg.ReadSessions)
	for i := 0; i < cfg.ReadSessions; i++ {
		s.reads <- cfg.DB.Session(i % cfg.DB.Pool().Sockets())
	}
	return s, nil
}

// commitLoop drains one lane: block for the first pending op, then
// greedily coalesce whatever else is already queued (up to MaxBatch)
// into one group commit. Under light load batches degrade to size 1
// (latency of a lone op is one Apply); under heavy load they grow to
// MaxBatch (throughput amortizes the WAL fence across clients).
func (s *Server) commitLoop(l *lane) {
	defer s.wg.Done()
	var b cclbtree.Batch
	pending := make([]*op, 0, s.cfg.MaxBatch)
	for first := range l.ch {
		pending = append(pending[:0], first)
		// In the device model a commit costs no wall-clock time, so
		// without a scheduling yield the lane would always outrun the
		// clients and every batch would be size 1. The two Gosched
		// passes model the real-world commit window: senders that are
		// runnable get their ops into this group commit.
		yields := 0
	coalesce:
		for len(pending) < s.cfg.MaxBatch {
			select {
			case o, ok := <-l.ch:
				if !ok {
					break coalesce
				}
				pending = append(pending, o)
			default:
				if yields++; yields > 2 {
					break coalesce
				}
				runtime.Gosched()
			}
		}
		b.Reset()
		for _, o := range pending {
			if o.delete {
				b.Delete(o.key)
			} else {
				b.Put(o.key, o.value)
			}
		}
		err := l.sess.Apply(&b)
		for _, o := range pending {
			o.done <- err
		}
		l.ops.Add(uint64(len(pending)))
		l.batches.Add(1)
		l.endVT.Store(l.sess.Now())
	}
}

// enqueue routes one write to its lane. block selects Put (wait for
// queue space) vs TryPut (reject with ErrBackpressure).
func (s *Server) enqueue(o *op, key uint64, block bool) error {
	l := s.lanes[s.db.ShardFor(key)]
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("server: shard %d: %w", l.shard, cclbtree.ErrShardClosed)
	}
	if block {
		// Holding the read lock while blocked is deliberate: Close
		// cannot take the write lock (and close the channel under us)
		// until the send lands, and the committer keeps draining.
		l.ch <- o
		s.mu.RUnlock()
		return nil
	}
	select {
	case l.ch <- o:
		s.mu.RUnlock()
		return nil
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return fmt.Errorf("server: shard %d: %w", l.shard, cclbtree.ErrBackpressure)
	}
}

// Put durably writes a pair through the shard's commit lane, blocking
// for queue space (closed-loop discipline) and for the group commit
// that includes it.
func (s *Server) Put(key, value uint64) error {
	o := &op{key: key, value: value, done: make(chan error, 1)}
	if err := s.enqueue(o, key, true); err != nil {
		return err
	}
	return <-o.done
}

// TryPut is Put with open-loop discipline: a full lane queue rejects
// immediately with cclbtree.ErrBackpressure instead of blocking.
func (s *Server) TryPut(key, value uint64) error {
	o := &op{key: key, value: value, done: make(chan error, 1)}
	if err := s.enqueue(o, key, false); err != nil {
		return err
	}
	return <-o.done
}

// Delete removes a key through the shard's commit lane.
func (s *Server) Delete(key uint64) error {
	o := &op{key: key, delete: true, done: make(chan error, 1)}
	if err := s.enqueue(o, key, true); err != nil {
		return err
	}
	return <-o.done
}

// Get reads a key on a pooled session, bypassing the commit lanes
// (reads are lock-free in the tree). It returns ErrShardClosed after
// Close.
func (s *Server) Get(key uint64) (uint64, bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, false, fmt.Errorf("server: %w", cclbtree.ErrShardClosed)
	}
	sess := <-s.reads
	s.mu.RUnlock()
	v, ok := sess.Get(key)
	s.reads <- sess
	return v, ok, nil
}

// Close drains every lane and stops the committers: queued writes
// commit, new operations fail with cclbtree.ErrShardClosed. The DB
// stays open — the caller owns it.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, l := range s.lanes {
		close(l.ch)
	}
	s.wg.Wait()
}

// LaneStats is one commit lane's activity and attribution.
type LaneStats struct {
	Shard      int     `json:"shard"`
	HomeSocket int     `json:"home_socket"`
	Ops        uint64  `json:"ops"`
	Batches    uint64  `json:"batches"`
	AvgBatch   float64 `json:"avg_batch"`
	// VirtualNS is the lane session's virtual-clock advance since the
	// server started: the lane's busy time in the device model.
	VirtualNS int64 `json:"virtual_ns"`
	// Counters is the underlying shard tree's behavioral statistics
	// (cumulative; includes traffic from before this server).
	Counters core.Counters `json:"counters"`
}

// ShardPhase converts the lane's activity into the obs-tier per-shard
// phase attribution the bench report embeds.
func (ls LaneStats) ShardPhase() obs.ShardPhase {
	return obs.ShardPhase{
		Shard:      ls.Shard,
		HomeSocket: ls.HomeSocket,
		Ops:        ls.Ops,
		Batches:    ls.Batches,
		AvgBatch:   ls.AvgBatch,
		VirtualNS:  ls.VirtualNS,
		Upserts:    ls.Counters.Upserts,
	}
}

// Stats describes the server's activity per lane.
type Stats struct {
	Lanes []LaneStats `json:"lanes"`
	// MaxLaneVirtualNS is the slowest lane's busy time: the virtual
	// elapsed time of the write workload when lanes run in parallel.
	MaxLaneVirtualNS int64 `json:"max_lane_virtual_ns"`
	// Rejected counts TryPut calls shed with ErrBackpressure.
	Rejected uint64 `json:"rejected"`
}

// Stats snapshots per-lane activity. Safe to call concurrently with
// traffic; the snapshot is not a consistent cut.
func (s *Server) Stats() Stats {
	st := Stats{Rejected: s.rejected.Load()}
	for _, l := range s.lanes {
		ops, batches := l.ops.Load(), l.batches.Load()
		avg := 0.0
		if batches > 0 {
			avg = float64(ops) / float64(batches)
		}
		vt := l.endVT.Load()
		if vt == 0 {
			vt = l.startVT
		}
		ls := LaneStats{
			Shard:      l.shard,
			HomeSocket: l.socket,
			Ops:        ops,
			Batches:    batches,
			AvgBatch:   avg,
			VirtualNS:  vt - l.startVT,
			Counters:   s.db.ShardCounters(l.shard),
		}
		st.Lanes = append(st.Lanes, ls)
		if ls.VirtualNS > st.MaxLaneVirtualNS {
			st.MaxLaneVirtualNS = ls.VirtualNS
		}
	}
	return st
}

// DB returns the store the server fronts.
func (s *Server) DB() *cclbtree.DB { return s.db }
