package persist

// readpub.go implements PL015, unfenced-read-after-publish. The hazard
// is a cross-function race with crash semantics: one function publishes
// a PM slot (a Store whose value is uint64(addr)) while the pointed-to
// data still has open persist obligations, and another function —
// reachable from a recovery routine, a declared entry point, or an
// optimistic (seqlock) read session — loads that slot and chases the
// pointer. After a crash between publish and fence, the reader follows
// a durable pointer into bytes that never became durable.
//
// The two halves are collected during the per-function rule pass
// (recordReadAfterPublish, driven by checkObligations' replay, which
// already knows which obligations are open before each event) and
// joined afterwards over the call graph: a Load is reportable when its
// function is reachable from an entry point AND some writer publishes
// the same slot hot. Slots are the last dot-segment of the rendered
// address — the field name — because writer and reader name the same
// field through different receivers ("n.next" vs "cur.next").

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// publishSite is one Store that published a slot while persist
// obligations were open on its thread.
type publishSite struct {
	fa     *funcAnalysis
	pos    token.Pos
	slot   string
	render string
}

// loadSite is one Thread.Load/ReadRange of a PM slot.
type loadSite struct {
	fa     *funcAnalysis
	pos    token.Pos
	slot   string
	render string
}

// recordReadAfterPublish collects PL015 raw material from one event
// against the obligation set open before it applies. Writer-side
// PL005 suppression also excuses the readers: a reasoned directive on
// the publish means the ordering is intentional (e.g. the slot is
// re-validated on recovery), and flagging every downstream read would
// punish the documented design.
func (fa *funcAnalysis) recordReadAfterPublish(s oblSet, e event) {
	switch e.kind {
	case evLoad:
		if e.addrKey == "" || fa.nodeKey() == "" {
			return
		}
		fa.an.loadSites = append(fa.an.loadSites, loadSite{
			fa: fa, pos: e.pos, slot: lastSegment(e.addrKey), render: e.addrKey,
		})
	case evStore:
		if !e.publish || e.addrKey == "" {
			return
		}
		hot := false
		for o := range s {
			if o.key == e.key && (o.kind == obStore || o.kind == obFlush) {
				hot = true
				break
			}
		}
		if !hot || fa.suppressed(CodePublishBeforePersist, fa.an.fset.Position(e.pos).Line) {
			return
		}
		slot := lastSegment(e.addrKey)
		fa.an.hotPublishes[slot] = append(fa.an.hotPublishes[slot], publishSite{
			fa: fa, pos: e.pos, slot: slot, render: e.addrKey,
		})
	}
}

// lastSegment returns the field name of a rendered address ("leaf.next"
// → "next").
func lastSegment(render string) string {
	if i := strings.LastIndexByte(render, '.'); i >= 0 {
		return render[i+1:]
	}
	return render
}

// checkReadAfterPublish joins the collected halves over the call
// graph. Runs after every file has been checked (the collectors fill
// during checkFile; seqlock entry points land in seqFns then too).
func (a *Analyzer) checkReadAfterPublish() []Finding {
	if a.cg == nil {
		return nil
	}

	// Entry points: named/declared reasons from the graph build, plus
	// the seqlock-session functions the rule pass discovered.
	type entry struct {
		n      *funcNode
		reason string
	}
	var entries []entry
	for _, n := range a.cg.nodes {
		reason := n.entry
		if reason == "" && a.seqFns[n.key] {
			reason = "optimistic-read"
		}
		if reason != "" {
			entries = append(entries, entry{n: n, reason: reason})
		}
	}
	a.stats.EntryPoints = len(entries)
	if len(entries) == 0 || len(a.loadSites) == 0 || len(a.hotPublishes) == 0 {
		return nil
	}

	// BFS over call edges from every entry, keeping the first-found
	// predecessor so findings can show one concrete path. Entries are
	// visited in node order, so the witness path is deterministic.
	pred := make([]int, len(a.cg.nodes))
	from := make([]int, len(a.cg.nodes)) // entries index that reached the node
	for i := range pred {
		pred[i] = -1
		from[i] = -1
	}
	var queue []int
	for ei, e := range entries {
		if from[e.n.id] == -1 {
			from[e.n.id] = ei
			pred[e.n.id] = e.n.id // self-root
			queue = append(queue, e.n.id)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range a.cg.nodes[v].callees {
			if from[w] == -1 {
				from[w] = from[v]
				pred[w] = v
				queue = append(queue, w)
			}
		}
	}
	pathTo := func(id int) []string {
		var rev []string
		for v := id; ; v = pred[v] {
			rev = append(rev, a.cg.nodes[v].display)
			if pred[v] == v || len(rev) > 64 {
				break
			}
		}
		out := make([]string, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}

	var out []Finding
	for _, site := range a.loadSites {
		node := site.fa.node
		if node == nil || from[node.id] == -1 {
			continue
		}
		writers := a.hotPublishes[site.slot]
		if len(writers) == 0 {
			continue
		}
		// Deterministic witness writer: earliest position.
		w := writers[0]
		for _, cand := range writers[1:] {
			if cand.pos < w.pos {
				w = cand
			}
		}
		wp := a.fset.Position(w.pos)
		path := pathTo(node.id)
		via := ""
		if len(path) > 1 {
			via = " via " + strings.Join(path, " -> ")
		}
		f, ok := site.fa.finding(CodeReadAfterPublish, site.pos, fmt.Sprintf(
			"read of %s is reachable from %s entry point %s%s, and %s publishes %s before fencing it (%s:%d): the reader can chase a durable pointer into unpersisted bytes; fence before the publish or re-validate after the read",
			site.render, entries[from[node.id]].reason, entries[from[node.id]].n.display, via,
			w.fa.name(), w.render, filepath.Base(wp.Filename), wp.Line))
		if ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}
