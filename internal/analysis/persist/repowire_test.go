package persist

import (
	"strings"
	"testing"
)

// TestRepoBatchPathWiring runs the analyzer over the real WAL and core
// packages and pins the interprocedural wiring the batch write path
// depends on: the call graph must register wal's Append/AppendBatch
// and core's batch helpers, resolve relogRun's AppendBatch call edge
// across the package boundary, and enter both in the summary table
// (both take a *pmem.Thread). The discharge itself is exercised by the
// corpus; this test guards the real-repo names against silent
// resolution regressions — an unresolved edge would quietly demote
// PL001/PL002/PL013 checking of every batch caller to the bare-name
// merge, and the batch path must stay free of those findings.
func TestRepoBatchPathWiring(t *testing.T) {
	an := NewAnalyzer()
	for _, dir := range []string{"../../pmem", "../../obs", "../../wal", "../../core"} {
		if err := an.AddDir(dir, false); err != nil {
			t.Fatal(err)
		}
	}
	findings := an.Run()

	byKey := an.cg.byKey
	for _, key := range []string{
		"../../wal::Log.Append",
		"../../wal::Log.AppendBatch",
		"../../core::Worker.ApplyBatch",
		"../../core::Worker.applyRunLocked",
		"../../core::Worker.relogRun",
	} {
		if byKey[key] == nil {
			t.Fatalf("call graph has no node %q; the batch path is not wired", key)
		}
		if _, ok := an.summaries[key]; !ok && strings.Contains(key, "wal::") {
			t.Errorf("no summary computed for %q; callers lose discharge credit", key)
		}
	}

	relog := byKey["../../core::Worker.relogRun"]
	batch := byKey["../../wal::Log.AppendBatch"]
	wired := false
	for _, c := range relog.callees {
		if an.cg.nodes[c] == batch {
			wired = true
		}
	}
	if !wired {
		t.Errorf("relogRun -> AppendBatch edge missing; cross-package discharge and cache invalidation both break")
	}

	for _, f := range findings {
		if strings.HasSuffix(f.Pos.Filename, "wal/wal.go") || strings.HasSuffix(f.Pos.Filename, "core/batch.go") {
			switch f.Code {
			case CodeStoreNoPersist, CodeFlushNoFence, CodeEscapeBeforePersist:
				t.Errorf("batch path regressed: %s", f)
			}
		}
	}
}
