package persist

// cfg.go builds a hand-rolled control-flow graph over one function
// body (stdlib go/ast only). Each CFG node carries the thread-API and
// lock events that execute when control passes through it, in source
// order; edges follow Go's statement-level control flow: if/else,
// for/range (with back edges), switch/type-switch/select (including
// fallthrough), break/continue (labeled and not), return, and calls
// that never return (panic, os.Exit, (*testing.T).Fatal, ...).
//
// Two refinements matter for the persistence rules:
//
//   - Branch edges implied by the platform mode are annotated: control
//     entering an eADR-only region (the then of `mode == EADR`, the
//     else of `mode != EADR`, the not-taken edge of `mode == ADR`, a
//     `case EADR:` clause) receives a synthetic evEADR event that
//     clears all obligations, because stores are durable at retirement
//     inside the eADR persistence domain.
//
//   - defer bodies do not execute in place: their events are collected
//     into cfg.deferred and replayed (in LIFO order) at the synthetic
//     exit node, which every return edge targets.
//
// Function literals are not inlined: each non-deferred FuncLit body is
// returned as a sub-function and analyzed as a function of its own
// (capturing the enclosing thread variables).

import (
	"go/ast"
	"go/token"
)

// Event kinds. evStore..evPersist mirror the pmem Thread API; the rest
// are synthetic.
const (
	evStore      = iota // Store/WriteRange: creates a flush obligation
	evFlush             // Flush: discharges stores, creates a fence obligation
	evFence             // Fence: discharges flush obligations
	evPersist           // Persist: discharges both
	evCall              // call with *pmem.Thread arguments (summary site)
	evLock              // acquire of a declared-order lock class
	evUnlock            // release of a declared-order lock class
	evEADR              // control entered an eADR-only region: all durable
	evScopePush         // PushScope: opens a scope-balance obligation (PL012)
	evScopePop          // PopScope: discharges the thread's scope obligation
	evSeqBegin          // v := x.version.Load(): opens a seqlock re-check obligation (PL010)
	evSeqRecheck        // x.version.Load() ==/!= v (or a CAS on v): discharges it
	evSeqValid          // v tested against a literal: the bail-on-invalid path owes no re-check
	evAccess            // tracked struct-field access (PL008/PL009 collection)
	evKillVar           // identifier reassigned: wasted-persist addr states mentioning it die (PL011)
	evEscape            // a pmem address flows into a heap structure/channel/goroutine (PL013 site)
	evLoad              // Thread.Load/ReadRange: a PM read (PL015 collection)
)

// event is one obligation- or lock-relevant action inside a CFG node.
type event struct {
	pos     token.Pos
	kind    int
	key     string // rendered thread expression ("t", "w.t", ...); evSeqBegin/Recheck: "base|var"; evKillVar: identifier
	method  string // Store/WriteRange/Flush/Fence/Persist
	publish bool   // Store of a PM pointer (PL005 site)
	addrKey string // evStore/evFlush/evPersist: rendered address argument ("" if value-producing)

	calleeKeys []string // evCall: resolved call-graph candidate keys (sorted)
	threadArgs []string // evCall: thread-expression keys passed as args

	class string // evLock/evUnlock: lock class name

	escKind string // evEscape: "heap structure" | "channel" | "goroutine"
	escDesc string // evEscape: rendered sink (the assigned field, channel, call)

	accessField  string // evAccess: bare field name
	accessOwner  string // evAccess: resolved owning struct type ("" unknown)
	accessAtomic bool   // evAccess: performed through sync/atomic
}

// cfgNode is one straight-line step of the function.
type cfgNode struct {
	id     int
	events []event
	succs  []*cfgNode
}

// cfg is the graph for one function body.
type cfg struct {
	nodes    []*cfgNode
	entry    *cfgNode
	exit     *cfgNode // target of every normal return / fallthrough end
	deferred []event  // defer-statement events, registration order
}

// cfgBuilder holds the in-progress graph and the break/continue
// context stack.
type cfgBuilder struct {
	fa   *funcAnalysis
	g    *cfg
	subs []*ast.FuncLit // non-deferred function literals, analyzed separately

	frames []*loopFrame
}

// loopFrame is one enclosing breakable construct.
type loopFrame struct {
	label        string
	isLoop       bool       // continue targets loops only
	continueTo   *cfgNode   // loop post/cond/header node
	breakSources []*cfgNode // nodes whose control jumps past the construct
}

func (b *cfgBuilder) newNode() *cfgNode {
	n := &cfgNode{id: len(b.g.nodes)}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

func link(preds []*cfgNode, to *cfgNode) {
	for _, p := range preds {
		p.succs = append(p.succs, to)
	}
}

// buildCFG constructs the graph for body. Returned alongside is the
// list of function literals to analyze as sub-functions.
func (fa *funcAnalysis) buildCFG(body *ast.BlockStmt) (*cfg, []*ast.FuncLit) {
	b := &cfgBuilder{fa: fa, g: &cfg{}}
	b.g.entry = b.newNode()
	b.g.exit = b.newNode()
	frontier := b.buildStmts(body.List, []*cfgNode{b.g.entry})
	// Falling off the end of the body is a return.
	link(frontier, b.g.exit)
	return b.g, b.subs
}

// buildStmts threads the statement list, returning the frontier (the
// nodes whose control falls through to whatever follows).
func (b *cfgBuilder) buildStmts(stmts []ast.Stmt, preds []*cfgNode) []*cfgNode {
	for _, s := range stmts {
		preds = b.buildStmt(s, preds)
	}
	return preds
}

// simple creates one node holding the events of the given expressions/
// statements and wires preds to it.
func (b *cfgBuilder) simple(preds []*cfgNode, nodes ...ast.Node) []*cfgNode {
	n := b.newNode()
	for _, x := range nodes {
		if x != nil {
			n.events = append(n.events, b.extract(x)...)
		}
	}
	link(preds, n)
	return []*cfgNode{n}
}

// killNode inserts an evEADR node on an edge (control is entering an
// eADR-only region).
func (b *cfgBuilder) killNode(preds []*cfgNode, at token.Pos) []*cfgNode {
	n := b.newNode()
	n.events = append(n.events, event{pos: at, kind: evEADR})
	link(preds, n)
	return []*cfgNode{n}
}

func (b *cfgBuilder) buildStmt(s ast.Stmt, preds []*cfgNode) []*cfgNode {
	switch x := s.(type) {
	case nil:
		return preds

	case *ast.BlockStmt:
		return b.buildStmts(x.List, preds)

	case *ast.LabeledStmt:
		// The label attaches to the inner statement; loop/switch
		// builders read it from the frame we pre-register.
		return b.buildLabeled(x.Label.Name, x.Stmt, preds)

	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
			// panic/os.Exit/t.Fatal...: control never reaches the
			// function exit, so open obligations on this path are not
			// findings (the process or test goroutine dies here).
			b.simple(preds, x)
			return nil
		}
		return b.simple(preds, x)

	case *ast.ReturnStmt:
		n := b.newNode()
		for _, r := range x.Results {
			n.events = append(n.events, b.extract(r)...)
		}
		link(preds, n)
		link([]*cfgNode{n}, b.g.exit)
		return nil

	case *ast.BranchStmt:
		return b.buildBranch(x, preds)

	case *ast.DeferStmt:
		n := b.newNode()
		// Argument evaluation happens now, at the defer statement — the
		// idiom `defer t.PopScope(t.PushScope(s))` pushes here and pops
		// at exit, so the push event must land in this node.
		for _, arg := range x.Call.Args {
			n.events = append(n.events, b.extract(arg)...)
		}
		link(preds, n)
		b.g.deferred = append(b.g.deferred, b.extractDeferred(x.Call)...)
		return []*cfgNode{n}

	case *ast.GoStmt:
		// The goroutine body runs elsewhere; PL004 polices the handle
		// values crossing the boundary and the body is analyzed
		// separately. PM addresses crossing here are PL013 escape sites,
		// judged against the obligations open at THIS point — so the
		// escape events land in the go statement's own node.
		n := b.newNode()
		n.events = b.fa.goEscapeEvents(x)
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			b.subs = append(b.subs, lit)
		}
		link(preds, n)
		return []*cfgNode{n}

	case *ast.IfStmt:
		return b.buildIf(x, preds)

	case *ast.ForStmt:
		return b.buildFor("", x, preds)

	case *ast.RangeStmt:
		return b.buildRange("", x, preds)

	case *ast.SwitchStmt:
		return b.buildSwitch("", x, preds)

	case *ast.TypeSwitchStmt:
		return b.buildTypeSwitch("", x, preds)

	case *ast.SelectStmt:
		return b.buildSelect("", x, preds)

	default:
		// Assign, Decl, IncDec, Send, Empty, ...: straight-line.
		return b.simple(preds, s)
	}
}

func (b *cfgBuilder) buildLabeled(label string, s ast.Stmt, preds []*cfgNode) []*cfgNode {
	switch x := s.(type) {
	case *ast.ForStmt:
		return b.buildFor(label, x, preds)
	case *ast.RangeStmt:
		return b.buildRange(label, x, preds)
	case *ast.SwitchStmt:
		return b.buildSwitch(label, x, preds)
	case *ast.TypeSwitchStmt:
		return b.buildTypeSwitch(label, x, preds)
	case *ast.SelectStmt:
		return b.buildSelect(label, x, preds)
	default:
		return b.buildStmt(s, preds)
	}
}

func (b *cfgBuilder) buildBranch(x *ast.BranchStmt, preds []*cfgNode) []*cfgNode {
	label := ""
	if x.Label != nil {
		label = x.Label.Name
	}
	switch x.Tok {
	case token.BREAK:
		if f := b.findFrame(label, false); f != nil {
			f.breakSources = append(f.breakSources, preds...)
		}
		return nil
	case token.CONTINUE:
		if f := b.findFrame(label, true); f != nil {
			link(preds, f.continueTo)
		}
		return nil
	case token.FALLTHROUGH:
		// Handled by the switch builder (it inspects the clause tail);
		// keep the frontier flowing.
		return preds
	case token.GOTO:
		// No goto in this codebase; treat as a return so obligations on
		// the path are still checked rather than silently dropped.
		link(preds, b.g.exit)
		return nil
	}
	return preds
}

// findFrame resolves a break (needLoop=false) or continue target.
func (b *cfgBuilder) findFrame(label string, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) buildIf(x *ast.IfStmt, preds []*cfgNode) []*cfgNode {
	cond := b.simple(preds, x.Init, x.Cond)

	thenPreds := cond
	if condImpliesEADR(x.Cond) || condExcludesADR(x.Cond) {
		thenPreds = b.killNode(cond, x.Body.Pos())
	}
	frontier := b.buildStmts(x.Body.List, thenPreds)

	elsePreds := cond
	if condExcludesEADR(x.Cond) || condImpliesADR(x.Cond) {
		pos := x.End()
		if x.Else != nil {
			pos = x.Else.Pos()
		}
		elsePreds = b.killNode(cond, pos)
	}
	if x.Else != nil {
		frontier = append(frontier, b.buildStmt(x.Else, elsePreds)...)
	} else {
		frontier = append(frontier, elsePreds...)
	}
	return frontier
}

func (b *cfgBuilder) buildFor(label string, x *ast.ForStmt, preds []*cfgNode) []*cfgNode {
	if x.Init != nil {
		preds = b.simple(preds, x.Init)
	}
	cond := b.newNode()
	if x.Cond != nil {
		cond.events = b.extract(x.Cond)
	}
	link(preds, cond)

	var post *cfgNode
	continueTo := cond
	if x.Post != nil {
		post = b.newNode()
		post.events = b.extract(x.Post)
		link([]*cfgNode{post}, cond)
		continueTo = post
	}

	f := &loopFrame{label: label, isLoop: true, continueTo: continueTo}
	b.frames = append(b.frames, f)
	bodyFrontier := b.buildStmts(x.Body.List, []*cfgNode{cond})
	b.frames = b.frames[:len(b.frames)-1]

	if post != nil {
		link(bodyFrontier, post)
	} else {
		link(bodyFrontier, cond)
	}

	after := f.breakSources
	if x.Cond != nil {
		after = append(after, cond) // the condition's false edge
	}
	return after
}

func (b *cfgBuilder) buildRange(label string, x *ast.RangeStmt, preds []*cfgNode) []*cfgNode {
	head := b.newNode()
	head.events = b.extract(x.X)
	// Each iteration rebinds the loop variables, so facts keyed on them
	// (seqlock reads, wasted-persist address states) die at the header.
	for _, v := range []ast.Expr{x.Key, x.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			head.events = append(head.events, event{pos: x.Pos(), kind: evKillVar, key: id.Name})
		}
	}
	link(preds, head)

	f := &loopFrame{label: label, isLoop: true, continueTo: head}
	b.frames = append(b.frames, f)
	bodyFrontier := b.buildStmts(x.Body.List, []*cfgNode{head})
	b.frames = b.frames[:len(b.frames)-1]

	link(bodyFrontier, head)
	return append(f.breakSources, head) // empty-collection edge
}

func (b *cfgBuilder) buildSwitch(label string, x *ast.SwitchStmt, preds []*cfgNode) []*cfgNode {
	head := b.simple(preds, x.Init, x.Tag)
	f := &loopFrame{label: label}
	b.frames = append(b.frames, f)

	var frontier []*cfgNode
	var fallPreds []*cfgNode // frontier of a clause ending in fallthrough
	hasDefault := false
	clauses := x.Body.List
	for i, stmt := range clauses {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		casePreds := head
		if caseListEADR(cc.List) {
			casePreds = b.killNode(head, cc.Pos())
		}
		casePreds = append(append([]*cfgNode{}, casePreds...), fallPreds...)
		fallPreds = nil
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(clauses)
				body = body[:n-1]
			}
		}
		cf := b.buildStmts(body, casePreds)
		if fallsThrough {
			fallPreds = cf
		} else {
			frontier = append(frontier, cf...)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	frontier = append(frontier, f.breakSources...)
	if !hasDefault {
		frontier = append(frontier, head...)
	}
	return frontier
}

func (b *cfgBuilder) buildTypeSwitch(label string, x *ast.TypeSwitchStmt, preds []*cfgNode) []*cfgNode {
	head := b.simple(preds, x.Init, x.Assign)
	f := &loopFrame{label: label}
	b.frames = append(b.frames, f)

	var frontier []*cfgNode
	hasDefault := false
	for _, stmt := range x.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		frontier = append(frontier, b.buildStmts(cc.Body, head)...)
	}
	b.frames = b.frames[:len(b.frames)-1]
	frontier = append(frontier, f.breakSources...)
	if !hasDefault {
		frontier = append(frontier, head...)
	}
	return frontier
}

func (b *cfgBuilder) buildSelect(label string, x *ast.SelectStmt, preds []*cfgNode) []*cfgNode {
	head := b.newNode()
	link(preds, head)
	f := &loopFrame{label: label}
	b.frames = append(b.frames, f)

	var frontier []*cfgNode
	for _, stmt := range x.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		casePreds := []*cfgNode{head}
		if cc.Comm != nil {
			casePreds = b.buildStmt(cc.Comm, casePreds)
		}
		frontier = append(frontier, b.buildStmts(cc.Body, casePreds)...)
	}
	b.frames = b.frames[:len(b.frames)-1]
	return append(frontier, f.breakSources...)
}

// isTerminatorCall reports whether the call never returns to the
// caller: panic, os.Exit, runtime.Goexit, log.Fatal*, and the testing
// methods that stop the test goroutine (so crash-injection tests that
// intentionally leave stores unpersisted before failing don't flag).
func isTerminatorCall(call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		switch f.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln",
			"FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// --- eADR / ADR mode inference on branch conditions ---------------------

func isModeRef(e ast.Expr, name string) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == name
	case *ast.SelectorExpr:
		return x.Sel.Name == name
	case *ast.ParenExpr:
		return isModeRef(x.X, name)
	}
	return false
}

func isEADRRef(e ast.Expr) bool { return isModeRef(e, "EADR") }
func isADRRef(e ast.Expr) bool  { return isModeRef(e, "ADR") }

// condImpliesEADR: the condition being true implies eADR (x == EADR,
// possibly under &&).
func condImpliesEADR(e ast.Expr) bool { return condEq(e, isEADRRef) }

// condImpliesADR: the condition being true implies ADR.
func condImpliesADR(e ast.Expr) bool { return condEq(e, isADRRef) }

// condExcludesEADR: the condition being true implies NOT eADR, i.e. its
// false edge is eADR-only (x != EADR).
func condExcludesEADR(e ast.Expr) bool { return condNeq(e, isEADRRef) }

// condExcludesADR: the condition being true implies NOT ADR (x != ADR),
// which in the two-mode model means eADR.
func condExcludesADR(e ast.Expr) bool { return condNeq(e, isADRRef) }

func condEq(e ast.Expr, ref func(ast.Expr) bool) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return condEq(x.X, ref)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL:
			return ref(x.X) || ref(x.Y)
		case token.LAND:
			return condEq(x.X, ref) || condEq(x.Y, ref)
		}
	}
	return false
}

func condNeq(e ast.Expr, ref func(ast.Expr) bool) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return condNeq(x.X, ref)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.NEQ:
			return ref(x.X) || ref(x.Y)
		case token.LAND:
			return condNeq(x.X, ref) || condNeq(x.Y, ref)
		}
	}
	return false
}

// caseListEADR reports whether a case clause fires only in eADR mode.
func caseListEADR(list []ast.Expr) bool {
	if len(list) == 0 {
		return false
	}
	for _, v := range list {
		if !isEADRRef(v) {
			return false
		}
	}
	return true
}
