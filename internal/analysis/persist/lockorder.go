package persist

// lockorder.go declares the partial acquisition order for the
// concurrency layer's mutexes (PL006) and resolves a mutex expression
// to its lock class.
//
// The declared order mirrors internal/core's locking design:
//
//	stw → workersMu → {gcMu, inner.mu, chunkdir.mu}
//
// stw (the stop-the-world RWMutex) is the outermost: foreground
// operations hold it in read mode for their whole critical section and
// the naive GC holds it in write mode, so nothing acquired while
// holding an inner lock may wait on it. workersMu (the worker
// registry) nests inside stw; the leaf-level mutexes — gcMu, the inner
// DRAM tree's mu and the chunk directory's mu — are innermost and
// unordered among themselves (rank ties are still violations: holding
// one while taking another at the same rank is an inversion waiting
// for the symmetric path).
//
// A lock acquire is a Lock/RLock call on an expression whose class is
// recognized; classes with unique field names (stw, workersMu, gcMu)
// match anywhere, while the ambiguous name "mu" resolves through the
// static type of its owner: the method receiver's type, a parameter's
// type, or a struct field whose declared type is one of the known
// owners (Tree.inner *innerTree, Tree.dir *chunkDir). bufferNode's
// tryLock/unlock version lock uses different method names and is not a
// class.

import "go/ast"

// lockRank is the declared partial order; acquiring a class while
// holding one of equal or higher rank is PL006.
var lockRank = map[string]int{
	"stw":         0,
	"workersMu":   1,
	"gcMu":        2,
	"inner.mu":    2,
	"chunkdir.mu": 2,
}

// lockOrderDecl is the order as printed in findings.
const lockOrderDecl = "stw -> workersMu -> {gcMu, inner.mu, chunkdir.mu}"

// uniqueLockFields are mutex field names unambiguous on their own.
var uniqueLockFields = map[string]string{
	"stw":       "stw",
	"workersMu": "workersMu",
	"gcMu":      "gcMu",
}

// muOwnerClass maps the type that owns an ambiguous "mu" field to the
// field's lock class.
var muOwnerClass = map[string]string{
	"innerTree": "inner.mu",
	"chunkDir":  "chunkdir.mu",
}

// lockMethods classifies the sync.Mutex/RWMutex method names.
var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// typeBaseName returns the rightmost identifier of a (possibly starred
// or package-qualified) type expression: *core.innerTree → innerTree.
func typeBaseName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return typeBaseName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return typeBaseName(x.X)
	}
	return ""
}

// collectLockOwnerTypes records per-function identifiers (receiver and
// parameters) whose type is a known mu-owner, keyed by identifier name.
func (fa *funcAnalysis) collectLockOwnerTypes() {
	fa.muOwners = map[string]string{}
	seed := func(fields []*ast.Field) {
		for _, fld := range fields {
			base := typeBaseName(fld.Type)
			cls, ok := muOwnerClass[base]
			if !ok {
				continue
			}
			for _, n := range fld.Names {
				fa.muOwners[n.Name] = cls
			}
		}
	}
	if fa.fn.Recv != nil {
		seed(fa.fn.Recv.List)
	}
	seed(fa.fn.Type.Params.List)
}

// lockClass resolves the expression a Lock/RLock/Unlock/RUnlock method
// is called on to a declared lock class ("" if unrecognized).
func (fa *funcAnalysis) lockClass(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.lockClass(x.X)
	case *ast.Ident:
		if cls, ok := uniqueLockFields[x.Name]; ok {
			return cls
		}
	case *ast.SelectorExpr:
		if cls, ok := uniqueLockFields[x.Sel.Name]; ok {
			return cls
		}
		if x.Sel.Name != "mu" {
			return ""
		}
		// owner.mu: resolve the owner's type.
		switch owner := x.X.(type) {
		case *ast.Ident:
			if cls, ok := fa.muOwners[owner.Name]; ok {
				return cls
			}
		case *ast.SelectorExpr:
			// field access like tr.inner.mu / tr.dir.mu: the field's
			// declared type was collected globally.
			if tn, ok := fa.an.lockOwnerFields[owner.Sel.Name]; ok {
				return muOwnerClass[tn]
			}
		}
	}
	return ""
}

// lockCall decomposes a call into (class, acquire) when it is a
// Lock/RLock/Unlock/RUnlock on a classed mutex.
func (fa *funcAnalysis) lockCall(call *ast.CallExpr) (class string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	isLock := lockMethods[sel.Sel.Name]
	isUnlock := unlockMethods[sel.Sel.Name]
	if !isLock && !isUnlock {
		return "", false, false
	}
	cls := fa.lockClass(sel.X)
	if cls == "" {
		return "", false, false
	}
	return cls, isLock, true
}
