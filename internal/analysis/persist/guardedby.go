package persist

// guardedby.go implements PL009, guarded-by inference: a struct field
// whose accesses are dominantly performed while one declared lock
// class is held gets that lock inferred as its guard, and the minority
// accesses that hold nothing are reported. The inference is the
// RECIPE-style discipline check in reverse — instead of asking the
// programmer to annotate every field, the analyzer reads the de facto
// protocol out of the held-set dataflow and flags the outliers, which
// are exactly the accesses a lock-free refactor would silently race.
//
// Scope: only fields of structs that themselves declare a classed lock
// (stw, workersMu, gcMu, or a "mu" owned by a known type) participate;
// a guard candidate must be a lock the struct actually has. Accesses
// are attributed to their owning struct by a best-effort syntactic
// type resolution (receiver and parameter types, field declaration
// chains, simple local assignments); accesses whose owner cannot be
// resolved are not judged. Constructor/init paths (New*/Open*/init*/
// make*) are exempt — fields are routinely filled before the value is
// published. An explicit //persistlint:guardedby <class> on the field
// declaration replaces inference: every non-constructor access must
// then hold the class, regardless of dominance.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Inference thresholds: a guard is inferred for a field only when the
// protocol is unambiguous — at least guardMinTotal judged accesses, at
// least guardMinHeld of them under the winning class, and the winner
// covering at least guardMinNum/guardMinDen of the total. Below that
// the analyzer assumes no protocol rather than guessing one.
const (
	guardMinTotal = 4
	guardMinHeld  = 3
	guardMinNum   = 3 // 3/4 = 75%
	guardMinDen   = 4
)

// collectStructInfo records, for every struct type declaration: its
// field → declared-type map (for owner resolution), the classed locks
// it declares (guard candidates for its siblings), typed-atomic and
// seqlock-counter fields, and explicit guardedby declarations.
func (a *Analyzer) collectStructInfo(fi *fileInfo) {
	ast.Inspect(fi.f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		typeName := ts.Name.Name
		fields := a.structFields[typeName]
		if fields == nil {
			fields = map[string]string{}
			a.structFields[typeName] = fields
		}
		var locks []string
		for _, fld := range st.Fields.List {
			base := typeBaseName(fld.Type)
			typedAtomic := fi.isTypedAtomic(fld.Type)
			for _, name := range fld.Names {
				fields[name.Name] = base
				line := a.fset.Position(name.Pos()).Line
				if cls, ok := uniqueLockFields[name.Name]; ok {
					locks = append(locks, cls)
				} else if name.Name == "mu" {
					if cls, ok := muOwnerClass[typeName]; ok {
						locks = append(locks, cls)
					}
				}
				if typedAtomic {
					a.typedAtomicFields[name.Name] = true
					if name.Name == "version" || name.Name == "seq" || fi.fieldSeqlock(line) {
						a.seqFields[name.Name] = true
					}
				} else if fi.fieldSeqlock(line) {
					a.seqFields[name.Name] = true
				}
				if g := fi.fieldGuard(line); g != nil {
					key := typeName + "." + name.Name
					a.guardDecls[key] = g.class
					a.guardDeclPos[key] = name.Pos()
				}
			}
		}
		if len(locks) > 0 {
			sort.Strings(locks)
			a.structLocks[typeName] = dedupStrings(append(a.structLocks[typeName], locks...))
		}
		return true
	})
}

func dedupStrings(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// isTypedAtomic reports whether the type expression denotes one of the
// sync/atomic value types (atomic.Uint64, atomic.Bool, atomic.Pointer[T],
// ...). Plain access to those is already a type error, so PL008/PL009
// leave them to the compiler.
func (fi *fileInfo) isTypedAtomic(e ast.Expr) bool {
	if idx, ok := e.(*ast.IndexExpr); ok { // atomic.Pointer[T]
		e = idx.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && fi.atomicName != "" && id.Name == fi.atomicName
}

// atomicValueMethods are the methods of the typed sync/atomic wrappers;
// a selector ending in a typed-atomic field followed by one of these is
// an atomic access.
var atomicValueMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// collectVarTypes seeds the identifier → struct-type map from the
// receiver, parameters, and simple local assignments (x := expr where
// expr's type resolves, x := &T{...}, x := T{...}). Best-effort and
// syntactic: an unresolvable identifier simply stays untyped and its
// accesses are not judged.
func (fa *funcAnalysis) collectVarTypes() {
	fa.varTypes = map[string]string{}
	seed := func(fields []*ast.Field) {
		for _, fld := range fields {
			t := typeBaseName(fld.Type)
			if t == "" {
				continue
			}
			for _, n := range fld.Names {
				fa.varTypes[n.Name] = t
			}
		}
	}
	if fa.fn.Recv != nil {
		seed(fa.fn.Recv.List)
	}
	seed(fa.fn.Type.Params.List)
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			if t := fa.typeOf(rhs); t != "" {
				fa.varTypes[id.Name] = t
			}
		}
		return true
	})
}

// typeOf resolves the struct type base name of an expression, or ""
// when it cannot. Selector chains resolve through the global struct
// field declarations; a bare field name falls back to the unique
// declared type among all structs (ambiguity resolves to "").
func (fa *funcAnalysis) typeOf(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.typeOf(x.X)
	case *ast.StarExpr:
		return fa.typeOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fa.typeOf(x.X)
		}
	case *ast.Ident:
		return fa.varTypes[x.Name]
	case *ast.CompositeLit:
		return typeBaseName(x.Type)
	case *ast.SelectorExpr:
		if ot := fa.typeOf(x.X); ot != "" {
			return fa.an.structFields[ot][x.Sel.Name]
		}
		return fa.an.uniqueFieldType(x.Sel.Name)
	}
	return ""
}

// uniqueFieldType returns the declared type base name of a field when
// exactly one struct in the analyzed set declares a field of that name
// with a resolvable type ("" on absence or conflict).
func (a *Analyzer) uniqueFieldType(field string) string {
	found := ""
	for _, fields := range a.structFields {
		t, ok := fields[field]
		if !ok || t == "" {
			continue
		}
		if found != "" && found != t {
			return ""
		}
		found = t
	}
	return found
}

// accessOwnerKey is the "Type.field" key for judged accesses.
func accessKey(owner, field string) string { return owner + "." + field }

// inferGuards computes the dominant lock class per owner-resolved
// field. Explicit guardDecls win; otherwise a class is inferred only
// when the thresholds above hold. Typed-atomic and functional-atomic
// fields are never judged here (the type system and PL008 own them).
func (a *Analyzer) inferGuards() {
	a.inferredGuards = map[string]string{}
	type tally struct {
		total   int
		byClass map[string]int
	}
	tallies := map[string]*tally{}
	for _, acc := range a.accesses {
		if acc.owner == "" || acc.ctor || acc.atomic {
			continue
		}
		if a.typedAtomicFields[acc.field] || a.atomicFields[acc.field] {
			continue
		}
		candidates := a.structLocks[acc.owner]
		if len(candidates) == 0 {
			continue
		}
		key := accessKey(acc.owner, acc.field)
		tl := tallies[key]
		if tl == nil {
			tl = &tally{byClass: map[string]int{}}
			tallies[key] = tl
		}
		tl.total++
		for _, c := range candidates {
			if acc.held[c] {
				tl.byClass[c]++
			}
		}
	}
	keys := make([]string, 0, len(tallies))
	for k := range tallies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if _, declared := a.guardDecls[key]; declared {
			continue
		}
		tl := tallies[key]
		best, bestN := "", 0
		classes := make([]string, 0, len(tl.byClass))
		for c := range tl.byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			if tl.byClass[c] > bestN {
				best, bestN = c, tl.byClass[c]
			}
		}
		if tl.total >= guardMinTotal && bestN >= guardMinHeld && bestN*guardMinDen >= tl.total*guardMinNum {
			a.inferredGuards[key] = best
		}
	}
}

// guardOf returns the effective guard class for an owner-resolved
// field: the explicit declaration if present, else the inference.
func (a *Analyzer) guardOf(owner, field string) string {
	if owner == "" {
		return ""
	}
	key := accessKey(owner, field)
	if g, ok := a.guardDecls[key]; ok {
		return g
	}
	return a.inferredGuards[key]
}

// checkGuardedBy reports PL009 for non-constructor accesses of a
// guarded field performed without the guard held, and PL000 for
// guardedby declarations naming an unknown lock class.
func (a *Analyzer) checkGuardedBy() []Finding {
	var out []Finding
	declKeys := make([]string, 0, len(a.guardDecls))
	for k := range a.guardDecls {
		declKeys = append(declKeys, k)
	}
	sort.Strings(declKeys)
	for _, key := range declKeys {
		if _, known := lockRank[a.guardDecls[key]]; !known {
			out = append(out, Finding{
				Pos:  a.fset.Position(a.guardDeclPos[key]),
				Code: CodeBadDirective,
				Func: "-",
				Msg: fmt.Sprintf("persistlint:guardedby names unknown lock class %q for %s (declared classes: %s)",
					a.guardDecls[key], key, lockOrderDecl),
			})
		}
	}
	if a.disabled[CodeGuardedBy] {
		return out
	}
	for _, acc := range a.accesses {
		if acc.owner == "" || acc.ctor || acc.atomic {
			continue
		}
		if a.typedAtomicFields[acc.field] || a.atomicFields[acc.field] {
			continue // PL008's domain
		}
		guard := a.guardOf(acc.owner, acc.field)
		if guard == "" || acc.held[guard] {
			continue
		}
		if _, known := lockRank[guard]; !known {
			continue // bad declaration already reported as PL000
		}
		key := accessKey(acc.owner, acc.field)
		why := "declared"
		if _, declared := a.guardDecls[key]; !declared {
			why = "inferred from its other accesses"
		}
		msg := fmt.Sprintf("%s is guarded by %s (%s) but this access holds neither it nor any declared lock covering it; take %s or annotate the field",
			key, guard, why, guard)
		if f, ok := acc.fa.finding(CodeGuardedBy, acc.pos, msg); ok {
			out = append(out, f)
		}
	}
	return out
}

// message helper shared with PL008: a compact held-set rendering.
func heldString(held map[string]bool) string {
	if len(held) == 0 {
		return "no lock"
	}
	classes := make([]string, 0, len(held))
	for c := range held {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return strings.Join(classes, "+")
}
