package persist

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //persistlint:ignore comment. Directives are
// shared by pointer so suppression can mark them used; a reasoned
// directive that suppresses nothing by the end of the run is itself a
// defect (PL007 — the analysis got stronger, the excuse went stale).
type directive struct {
	pos    token.Position
	code   string // "PL001" or a comma list split into codes
	codes  []string
	reason string
	used   bool // suppressed at least one finding this run
}

func (d *directive) matches(code string) bool {
	for _, c := range d.codes {
		if c == code || c == "*" {
			return true
		}
	}
	return false
}

// parseDirectiveComment recognizes "//persistlint:ignore CODE[,CODE] reason".
// A leading space after // is tolerated; the reason is everything after
// the code list.
func parseDirectiveComment(fset *token.FileSet, c *ast.Comment) (*directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "persistlint:ignore") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "persistlint:ignore"))
	code, reason, _ := strings.Cut(rest, " ")
	d := &directive{
		pos:    fset.Position(c.Pos()),
		code:   code,
		reason: strings.TrimSpace(reason),
	}
	for _, cd := range strings.Split(code, ",") {
		if cd = strings.TrimSpace(cd); cd != "" {
			d.codes = append(d.codes, cd)
		}
	}
	if len(d.codes) == 0 {
		return nil, false
	}
	return d, true
}

// parseDirectives indexes every ignore directive in the file by the
// line it sits on.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]*directive {
	out := map[int][]*directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirectiveComment(fset, c); ok {
				out[d.pos.Line] = append(out[d.pos.Line], d)
			}
		}
	}
	return out
}

// guardDecl is one parsed //persistlint:guardedby comment: an explicit
// declaration that the struct field it annotates is protected by the
// named lock class. Unlike ignore directives it needs no reason — it
// states an invariant, not an excuse — and PL009 enforces it on every
// non-constructor access instead of inferring dominance.
type guardDecl struct {
	pos   token.Position
	class string
}

// parseFieldDirectives indexes //persistlint:guardedby and
// //persistlint:seqlock comments by line. They attach to the struct
// field declared on the same line or the line below (matching how doc
// comments sit above declarations).
func parseFieldDirectives(fset *token.FileSet, f *ast.File) (map[int]*guardDecl, map[int]bool) {
	guards := map[int]*guardDecl{}
	seqs := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			pos := fset.Position(c.Pos())
			if rest, ok := strings.CutPrefix(text, "persistlint:guardedby"); ok {
				class, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				guards[pos.Line] = &guardDecl{pos: pos, class: class}
			}
			if text == "persistlint:seqlock" || strings.HasPrefix(text, "persistlint:seqlock ") {
				seqs[pos.Line] = true
			}
		}
	}
	return guards, seqs
}

// fieldDirective returns the guardedby declaration attached to a field
// declared at the given line (same line or the line above).
func (fi *fileInfo) fieldGuard(line int) *guardDecl {
	if d := fi.guards[line]; d != nil {
		return d
	}
	return fi.guards[line-1]
}

// fieldSeqlock reports whether a //persistlint:seqlock directive
// attaches to the field declared at the given line.
func (fi *fileInfo) fieldSeqlock(line int) bool {
	return fi.seqDecls[line] || fi.seqDecls[line-1]
}

// directiveMatches finds the first directive in the list covering the
// code with a non-empty reason (reasonless directives never suppress).
// The match is recorded on the directive so stale ones can be reported.
func directiveMatches(dirs []*directive, code string) bool {
	for _, d := range dirs {
		if d.reason != "" && d.matches(code) {
			d.used = true
			return true
		}
	}
	return false
}
