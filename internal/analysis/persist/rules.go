package persist

import (
	"fmt"
	"go/ast"
	"go/token"
)

// span is a half-open source range [from, to).
type span struct{ from, to token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.from && p < s.to }

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// run executes all rules on one function declaration.
func (fa *funcAnalysis) run() []Finding {
	var out []Finding
	fa.runCFG(fa.body, &out)

	emit := func(code string, pos token.Pos, msg string) {
		if f, ok := fa.finding(code, pos, msg); ok {
			out = append(out, f)
		}
	}
	fa.checkEADR(emit)
	out = append(out, fa.checkEscapes()...)
	return out
}

// runCFG builds the control-flow graph for one body, runs the
// path-sensitive rules (PL001/PL002/PL005 obligations, PL006 lock
// order), then recurses into the function literals the body contains —
// each literal is a function of its own (its body may run on another
// goroutine, later, or never), analyzed with the enclosing function's
// thread and address environment plus its own parameters.
func (fa *funcAnalysis) runCFG(body *ast.BlockStmt, out *[]Finding) {
	g, subs := fa.buildCFG(body)
	fa.an.stats.Functions++
	fa.an.stats.CFGNodes += len(g.nodes)

	emit := func(code string, pos token.Pos, msg string) {
		if f, ok := fa.finding(code, pos, msg); ok {
			*out = append(*out, f)
		}
	}
	fa.checkSeqlock(emit) // fills seqQualified before the obligation pass
	fa.checkObligations(g, emit)
	held := fa.lockFixpoint(g)
	fa.checkLockOrder(g, held, emit)
	fa.collectAccesses(g, held)
	fa.checkWastedPersist(g, emit)

	for i, lit := range subs {
		sub := fa.forLit(lit, i)
		sub.runCFG(lit.Body, out)
	}
}

// checkEADR implements PL003: a Flush/Persist that can only execute on
// an eADR-only branch writes back nothing — dead code that usually
// signals inverted mode logic. This is a whole-body span check (the
// finding is about where the call sits, not about path joins).
func (fa *funcAnalysis) checkEADR(emit func(code string, pos token.Pos, msg string)) {
	spans := fa.collectEADRSpans()
	if len(spans) == 0 {
		return
	}
	ast.Inspect(fa.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := fa.threadCall(call)
		if !ok || (method != "Flush" && method != "Persist") {
			return true
		}
		if inSpans(spans, call.Pos()) {
			emit(CodeDeadFlush, call.Pos(), fmt.Sprintf(
				"%s.%s under an eADR-only branch is a no-op (eADR stores are already durable)", key, method))
		}
		return true
	})
}

// collectEADRSpans returns the ranges of statements that only execute
// when the mode is eADR: the body of `if mode == EADR`, the else of
// `if mode != EADR`, and `case EADR:` clauses.
func (fa *funcAnalysis) collectEADRSpans() []span {
	var spans []span
	ast.Inspect(fa.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if condImpliesEADR(x.Cond) {
				spans = append(spans, span{x.Body.Pos(), x.Body.End()})
			}
			if condExcludesEADR(x.Cond) && x.Else != nil {
				spans = append(spans, span{x.Else.Pos(), x.Else.End()})
			}
		case *ast.SwitchStmt:
			for _, stmt := range x.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, v := range cc.List {
					if isEADRRef(v) {
						spans = append(spans, span{cc.Pos(), cc.End()})
						break
					}
				}
			}
		}
		return true
	})
	return spans
}

// checkEscapes implements PL004: a single-owner value — *pmem.Thread
// or *obs.Handle — crossing a goroutine boundary. A freshly created
// value (pool.NewThread(...) / m.NewHandle() as a go-call argument) is
// an ownership transfer and is allowed; an existing identifier or field
// crossing the boundary is not.
func (fa *funcAnalysis) checkEscapes() []Finding {
	var out []Finding
	emit := func(pos token.Pos, msg string) {
		if f, ok := fa.finding(CodeThreadEscape, pos, msg); ok {
			out = append(out, f)
		}
	}
	// ownedKind classifies an existing (non-freshly-created) expression
	// as one of the single-owner types, returning its display name.
	ownedKind := func(e ast.Expr) (string, bool) {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if fa.isThreadExpr(e) {
				return "*pmem.Thread", true
			}
			if fa.isHandleExpr(e) {
				return "*obs.Handle", true
			}
		}
		return "", false
	}
	identKind := func(name string) (string, bool) {
		if fa.threads[name] {
			return "*pmem.Thread", true
		}
		if fa.handles[name] {
			return "*obs.Handle", true
		}
		return "", false
	}
	ast.Inspect(fa.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				local := declaredNames(lit.Body)
				for _, fld := range lit.Type.Params.List {
					for _, id := range fld.Names {
						local[id.Name] = true
					}
				}
				for _, id := range freeIdents(lit.Body) {
					if kind, ok := identKind(id.Name); ok && !local[id.Name] {
						emit(id.Pos(), fmt.Sprintf(
							"%s %q captured by goroutine closure; %s is single-owner", kind, id.Name, kind))
					}
				}
			}
			for _, arg := range x.Call.Args {
				if kind, ok := ownedKind(arg); ok {
					emit(arg.Pos(), fmt.Sprintf(
						"%s %s passed into a goroutine; %s is single-owner", kind, renderExpr(arg), kind))
				}
			}
		case *ast.SendStmt:
			if kind, ok := ownedKind(x.Value); ok {
				emit(x.Value.Pos(), fmt.Sprintf(
					"%s %s sent over a channel; %s is single-owner", kind, renderExpr(x.Value), kind))
			}
		}
		return true
	})
	return out
}

// declaredNames collects names the closure body declares itself (:=,
// var, range with define): referencing those is not a capture.
func declaredNames(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if id, ok := x.Key.(*ast.Ident); ok {
					out[id.Name] = true
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// freeIdents returns value-position identifiers in a closure body:
// selector fields (x.Sel) and composite-literal keys are excluded so a
// struct field named like a thread variable does not false-positive.
func freeIdents(body *ast.BlockStmt) []*ast.Ident {
	skip := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			skip[x.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	var out []*ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !skip[id] {
			out = append(out, id)
		}
		return true
	})
	return out
}
