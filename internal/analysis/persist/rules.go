package persist

import (
	"fmt"
	"go/ast"
	"go/token"
)

// event kinds for the PL001/PL002 linear coverage check.
const (
	evStore = iota
	evFlush
	evFence
	evPersist
)

type pmEvent struct {
	pos      token.Pos
	key      string // rendered thread expression ("t", "w.t", ...)
	method   string
	kind     int
	deferred bool // inside a defer: runs at return, covers everything
}

// span is a half-open source range [from, to).
type span struct{ from, to token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.from && p < s.to }

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// run executes all four rules on one function body.
func (fa *funcAnalysis) run() []Finding {
	deferSpans := fa.collectDeferSpans()
	eadrSpans := fa.collectEADRSpans()
	events := fa.collectEvents(deferSpans)

	var out []Finding
	emit := func(code string, pos token.Pos, msg string) {
		if f, ok := fa.finding(code, pos, msg); ok {
			out = append(out, f)
		}
	}

	// PL001/PL002: linear reachability approximation — an obligation at
	// position p is met by a discharging call on the same thread at a
	// later position (or in a defer, which runs at every return).
	covered := func(e pmEvent, kinds ...int) bool {
		for _, o := range events {
			if o.key != e.key || (!o.deferred && o.pos <= e.pos) {
				continue
			}
			for _, k := range kinds {
				if o.kind == k {
					return true
				}
			}
		}
		return false
	}
	for _, e := range events {
		switch e.kind {
		case evStore:
			if !covered(e, evFlush, evPersist) {
				emit(CodeStoreNoPersist, e.pos, fmt.Sprintf(
					"%s.%s to PM with no later %s.Flush/Persist before return: the store is volatile under ADR", e.key, e.method, e.key))
			}
		case evFlush:
			if !covered(e, evFence, evPersist) {
				emit(CodeFlushNoFence, e.pos, fmt.Sprintf(
					"%s.Flush with no later %s.Fence/Persist before return: the clwb never retires", e.key, e.key))
			}
		}
		// PL003: flushing where only eADR can execute is dead code.
		if (e.kind == evFlush || e.kind == evPersist) && inSpans(eadrSpans, e.pos) {
			emit(CodeDeadFlush, e.pos, fmt.Sprintf(
				"%s.%s under an eADR-only branch is a no-op (eADR stores are already durable)", e.key, e.method))
		}
	}

	out = append(out, fa.checkEscapes()...)
	return out
}

// collectDeferSpans returns the source ranges of defer statements.
func (fa *funcAnalysis) collectDeferSpans() []span {
	var spans []span
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			spans = append(spans, span{d.Pos(), d.End()})
		}
		return true
	})
	return spans
}

// collectEvents gathers every Thread API call relevant to PL001–PL003.
func (fa *funcAnalysis) collectEvents(deferSpans []span) []pmEvent {
	var events []pmEvent
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := fa.threadCall(call)
		if !ok {
			return true
		}
		var kind int
		switch method {
		case "Store", "WriteRange":
			kind = evStore
		case "Flush":
			kind = evFlush
		case "Fence":
			kind = evFence
		case "Persist":
			kind = evPersist
		default:
			return true
		}
		events = append(events, pmEvent{
			pos:      call.Pos(),
			key:      key,
			method:   method,
			kind:     kind,
			deferred: inSpans(deferSpans, call.Pos()),
		})
		return true
	})
	return events
}

// isEADRRef matches a reference to the EADR mode constant (pmem.EADR,
// or plain EADR inside package pmem).
func isEADRRef(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "EADR"
	case *ast.SelectorExpr:
		return x.Sel.Name == "EADR"
	case *ast.ParenExpr:
		return isEADRRef(x.X)
	}
	return false
}

// condImpliesEADR reports whether the condition being true implies the
// platform mode is eADR (x == EADR, possibly under &&).
func condImpliesEADR(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return condImpliesEADR(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL:
			return isEADRRef(x.X) || isEADRRef(x.Y)
		case token.LAND:
			return condImpliesEADR(x.X) || condImpliesEADR(x.Y)
		}
	}
	return false
}

// condIsNotEADR matches x != EADR (whose else-branch is eADR-only).
func condIsNotEADR(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return condIsNotEADR(x.X)
	case *ast.BinaryExpr:
		return x.Op == token.NEQ && (isEADRRef(x.X) || isEADRRef(x.Y))
	}
	return false
}

// collectEADRSpans returns the ranges of statements that only execute
// when the mode is eADR: the body of `if mode == EADR`, the else of
// `if mode != EADR`, and `case EADR:` clauses.
func (fa *funcAnalysis) collectEADRSpans() []span {
	var spans []span
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if condImpliesEADR(x.Cond) {
				spans = append(spans, span{x.Body.Pos(), x.Body.End()})
			}
			if condIsNotEADR(x.Cond) && x.Else != nil {
				spans = append(spans, span{x.Else.Pos(), x.Else.End()})
			}
		case *ast.SwitchStmt:
			for _, stmt := range x.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, v := range cc.List {
					if isEADRRef(v) {
						spans = append(spans, span{cc.Pos(), cc.End()})
						break
					}
				}
			}
		}
		return true
	})
	return spans
}

// checkEscapes implements PL004: a single-owner value — *pmem.Thread
// or *obs.Handle — crossing a goroutine boundary. A freshly created
// value (pool.NewThread(...) / m.NewHandle() as a go-call argument) is
// an ownership transfer and is allowed; an existing identifier or field
// crossing the boundary is not.
func (fa *funcAnalysis) checkEscapes() []Finding {
	var out []Finding
	emit := func(pos token.Pos, msg string) {
		if f, ok := fa.finding(CodeThreadEscape, pos, msg); ok {
			out = append(out, f)
		}
	}
	// ownedKind classifies an existing (non-freshly-created) expression
	// as one of the single-owner types, returning its display name.
	ownedKind := func(e ast.Expr) (string, bool) {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if fa.isThreadExpr(e) {
				return "*pmem.Thread", true
			}
			if fa.isHandleExpr(e) {
				return "*obs.Handle", true
			}
		}
		return "", false
	}
	identKind := func(name string) (string, bool) {
		if fa.threads[name] {
			return "*pmem.Thread", true
		}
		if fa.handles[name] {
			return "*obs.Handle", true
		}
		return "", false
	}
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				local := declaredNames(lit.Body)
				for _, fld := range lit.Type.Params.List {
					for _, id := range fld.Names {
						local[id.Name] = true
					}
				}
				for _, id := range freeIdents(lit.Body) {
					if kind, ok := identKind(id.Name); ok && !local[id.Name] {
						emit(id.Pos(), fmt.Sprintf(
							"%s %q captured by goroutine closure; %s is single-owner", kind, id.Name, kind))
					}
				}
			}
			for _, arg := range x.Call.Args {
				if kind, ok := ownedKind(arg); ok {
					emit(arg.Pos(), fmt.Sprintf(
						"%s %s passed into a goroutine; %s is single-owner", kind, renderExpr(arg), kind))
				}
			}
		case *ast.SendStmt:
			if kind, ok := ownedKind(x.Value); ok {
				emit(x.Value.Pos(), fmt.Sprintf(
					"%s %s sent over a channel; %s is single-owner", kind, renderExpr(x.Value), kind))
			}
		}
		return true
	})
	return out
}

// declaredNames collects names the closure body declares itself (:=,
// var, range with define): referencing those is not a capture.
func declaredNames(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if id, ok := x.Key.(*ast.Ident); ok {
					out[id.Name] = true
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// freeIdents returns value-position identifiers in a closure body:
// selector fields (x.Sel) and composite-literal keys are excluded so a
// struct field named like a thread variable does not false-positive.
func freeIdents(body *ast.BlockStmt) []*ast.Ident {
	skip := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			skip[x.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	var out []*ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !skip[id] {
			out = append(out, id)
		}
		return true
	})
	return out
}
