package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the expectation comment and its quoted regexps:
//
//	t.Store(a, 1) // want "PL001" "second finding"
var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants maps file line numbers to expected-finding regexps.
func parseWants(t *testing.T, path string) map[int][]*wantEntry {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int][]*wantEntry{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quoteRE.FindAllStringSubmatch(m[1], -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, q[1], err)
			}
			out[i+1] = append(out[i+1], &wantEntry{re: re})
		}
	}
	return out
}

// TestGolden analyzes every testdata file as one package (they share
// helper types, as real packages do) and checks the findings against
// the // want annotations, both directions: every finding must be
// expected and every expectation must fire.
func TestGolden(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	wants := map[string]map[int][]*wantEntry{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join("testdata", e.Name())
		if err := an.AddFile(path, nil); err != nil {
			t.Fatal(err)
		}
		wants[path] = parseWants(t, path)
	}
	if len(wants) == 0 {
		t.Fatal("no testdata files")
	}

	for _, f := range an.Run() {
		text := f.Code + " " + f.Msg
		entries := wants[f.Pos.Filename][f.Pos.Line]
		matched := false
		for _, w := range entries {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text)
		}
	}
	for path, byLine := range wants {
		for line, entries := range byLine {
			for _, w := range entries {
				if !w.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", path, line, w.re)
				}
			}
		}
	}
}

// TestDirectiveWithoutReason checks that a reasonless ignore neither
// suppresses nor passes silently: the original finding stays and a
// PL000 defect is reported at the directive.
func TestDirectiveWithoutReason(t *testing.T) {
	src := `package p

import "cclbtree/internal/pmem"

func f(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001
	t.Store(a, 1)
}
`
	an := NewAnalyzer()
	if err := an.AddFile("reasonless.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	findings := an.Run()
	var codes []string
	for _, f := range findings {
		codes = append(codes, f.Code)
	}
	got := strings.Join(codes, ",")
	if !strings.Contains(got, CodeBadDirective) || !strings.Contains(got, CodeStoreNoPersist) {
		t.Fatalf("want PL000 and PL001, got %v", findings)
	}
}

// TestFindingString pins the human-readable output shape the CLI
// prints (file:line:col: [CODE] message (in func)).
func TestFindingString(t *testing.T) {
	src := `package p

import "cclbtree/internal/pmem"

func leak(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`
	an := NewAnalyzer()
	if err := an.AddFile("x.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	fs := an.Run()
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	s := fs[0].String()
	want := fmt.Sprintf("x.go:6:2: [%s]", CodeStoreNoPersist)
	if !strings.HasPrefix(s, want) || !strings.HasSuffix(s, "(in leak)") {
		t.Fatalf("finding rendered as %q, want prefix %q and func suffix", s, want)
	}
}
