package persist

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the expectation comment and its quoted regexps:
//
//	t.Store(a, 1) // want "PL001" "second finding"
var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants maps file line numbers to expected-finding regexps.
func parseWants(t *testing.T, path string) map[int][]*wantEntry {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int][]*wantEntry{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quoteRE.FindAllStringSubmatch(m[1], -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, q[1], err)
			}
			out[i+1] = append(out[i+1], &wantEntry{re: re})
		}
	}
	return out
}

// TestGolden analyzes every testdata file as one package (they share
// helper types, as real packages do) and checks the findings against
// the // want annotations, both directions: every finding must be
// expected and every expectation must fire.
func TestGolden(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	wants := map[string]map[int][]*wantEntry{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join("testdata", e.Name())
		if err := an.AddFile(path, nil); err != nil {
			t.Fatal(err)
		}
		wants[path] = parseWants(t, path)
	}
	if len(wants) == 0 {
		t.Fatal("no testdata files")
	}

	for _, f := range an.Run() {
		text := f.Code + " " + f.Msg
		entries := wants[f.Pos.Filename][f.Pos.Line]
		matched := false
		for _, w := range entries {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text)
		}
	}
	for path, byLine := range wants {
		for line, entries := range byLine {
			for _, w := range entries {
				if !w.matched {
					t.Errorf("%s:%d: expected finding matching %q, got none", path, line, w.re)
				}
			}
		}
	}
}

// loadCorpus runs the analyzer over every testdata file with the given
// rules disabled and returns the finding count per code.
func loadCorpus(t *testing.T, disable ...string) map[string]int {
	t.Helper()
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	an.Disable(disable...)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if err := an.AddFile(filepath.Join("testdata", e.Name()), nil); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for _, f := range an.Run() {
		counts[f.Code]++
	}
	return counts
}

// TestRuleToggles proves two things per concurrency rule: its golden
// corpus actually exercises it (so TestGolden would fail if the rule
// were broken or disabled), and Disable removes exactly that rule's
// findings without disturbing the others.
func TestRuleToggles(t *testing.T) {
	corpus := map[string]string{
		CodeAtomicMix:           "atomicmix.go",
		CodeGuardedBy:           "guardedby.go",
		CodeSeqlock:             "seqlockread.go",
		CodeWastedPersist:       "wastedpersist.go",
		CodeScopeBalance:        "scopebalance.go",
		CodeEscapeBeforePersist: "escapepersist.go",
		CodeLockOrderGraph:      "lockgraph.go",
		CodeReadAfterPublish:    "readpublish.go",
	}
	baseline := loadCorpus(t)
	for code, file := range corpus {
		if baseline[code] == 0 {
			t.Errorf("corpus %s yields no %s findings; the golden test no longer guards the rule", file, code)
		}
	}
	for code := range corpus {
		counts := loadCorpus(t, code)
		if counts[code] != 0 {
			t.Errorf("Disable(%s) left %d %s finding(s)", code, counts[code], code)
		}
		for other, n := range baseline {
			if other != code && counts[other] != n {
				t.Errorf("Disable(%s) changed %s findings: %d, want %d", code, other, counts[other], n)
			}
		}
	}
}

// TestGoldenDeterminism renders the full corpus findings twice from
// fresh analyzers and demands byte-identical output: map iteration
// anywhere in the pipeline would show up here.
func TestGoldenDeterminism(t *testing.T) {
	render := func() string {
		ents, err := os.ReadDir("testdata")
		if err != nil {
			t.Fatal(err)
		}
		an := NewAnalyzer()
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			if err := an.AddFile(filepath.Join("testdata", e.Name()), nil); err != nil {
				t.Fatal(err)
			}
		}
		var b strings.Builder
		for _, f := range an.Run() {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("corpus rendered no findings")
	}
	for i := 1; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestLinearAnalysisMissesEarlyReturn documents why the analyzer is
// CFG-based. The pre-CFG implementation ordered a function's thread-API
// calls by source position and discharged a Store if ANY later
// Flush/Persist on the same thread existed. That rule is blind to
// control flow: in
//
//	t.Store(a, 1)
//	if full { return } // the store escapes unpersisted here
//	t.Persist(a, 8)
//
// the Persist sits later in the source, so the linear rule stays
// silent — yet the early-return path leaks the store. This test
// reimplements the linear rule in miniature, confirms it misses the
// case, and confirms the CFG dataflow catches it.
func TestLinearAnalysisMissesEarlyReturn(t *testing.T) {
	const fn = "earlyReturnLeavesStoreOpen"
	path := filepath.Join("testdata", "cfgpaths.go")

	// The retired linear rule: position order, any later discharge wins.
	linearLeaks := func() int {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn {
				continue
			}
			type tcall struct{ key, method string }
			var calls []tcall
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok {
							calls = append(calls, tcall{id.Name, sel.Sel.Name})
						}
					}
				}
				return true
			})
			leaks := 0
			for i, c := range calls {
				if c.method != "Store" {
					continue
				}
				covered := false
				for _, later := range calls[i+1:] {
					if later.key == c.key && (later.method == "Flush" || later.method == "Persist") {
						covered = true
						break
					}
				}
				if !covered {
					leaks++
				}
			}
			return leaks
		}
		t.Fatalf("function %s not found in %s", fn, path)
		return -1
	}

	if got := linearLeaks(); got != 0 {
		t.Fatalf("premise broken: the linear rule now flags %d leak(s) in %s", got, fn)
	}

	an := NewAnalyzer()
	if err := an.AddFile(path, nil); err != nil {
		t.Fatal(err)
	}
	for _, f := range an.Run() {
		if f.Code == CodeStoreNoPersist && f.Func == fn {
			return // the CFG analysis sees the early-return path
		}
	}
	t.Fatalf("CFG analysis did not flag %s", fn)
}

// TestStats checks the self-diagnostic counters a -stats run prints:
// an analysis that parsed files and built CFGs must say so.
func TestStats(t *testing.T) {
	an := NewAnalyzer()
	for _, name := range []string{"cfgpaths.go", "summaries.go", "locks.go"} {
		if err := an.AddFile(filepath.Join("testdata", name), nil); err != nil {
			t.Fatal(err)
		}
	}
	an.Run()
	s := an.Stats()
	if s.Files != 3 {
		t.Errorf("Files = %d, want 3", s.Files)
	}
	if s.Functions == 0 || s.CFGNodes == 0 {
		t.Errorf("Functions = %d, CFGNodes = %d, want both > 0", s.Functions, s.CFGNodes)
	}
	if s.DischargeSummaries == 0 {
		t.Errorf("DischargeSummaries = 0, want > 0 (summaries.go defines helpers)")
	}
	if s.LockSummaries == 0 {
		t.Errorf("LockSummaries = 0, want > 0 (locks.go acquires locks)")
	}
}

// TestDirectiveWithoutReason checks that a reasonless ignore neither
// suppresses nor passes silently: the original finding stays and a
// PL000 defect is reported at the directive.
func TestDirectiveWithoutReason(t *testing.T) {
	src := `package p

import "cclbtree/internal/pmem"

func f(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001
	t.Store(a, 1)
}
`
	an := NewAnalyzer()
	if err := an.AddFile("reasonless.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	findings := an.Run()
	var codes []string
	for _, f := range findings {
		codes = append(codes, f.Code)
	}
	got := strings.Join(codes, ",")
	if !strings.Contains(got, CodeBadDirective) || !strings.Contains(got, CodeStoreNoPersist) {
		t.Fatalf("want PL000 and PL001, got %v", findings)
	}
}

// TestFindingString pins the human-readable output shape the CLI
// prints (file:line:col: [CODE] message (in func)).
func TestFindingString(t *testing.T) {
	src := `package p

import "cclbtree/internal/pmem"

func leak(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`
	an := NewAnalyzer()
	if err := an.AddFile("x.go", []byte(src)); err != nil {
		t.Fatal(err)
	}
	fs := an.Run()
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	s := fs[0].String()
	want := fmt.Sprintf("x.go:6:2: [%s]", CodeStoreNoPersist)
	if !strings.HasPrefix(s, want) || !strings.HasSuffix(s, "(in leak)") {
		t.Fatalf("finding rendered as %q, want prefix %q and func suffix", s, want)
	}
}
