// Package persist is a static analyzer for the repository's persistent
// memory API (internal/pmem). It enforces the store→flush→fence
// discipline that every crash-consistent structure in this module
// hand-writes: a Store/WriteRange to PM is volatile under ADR until a
// Flush of its cachelines and an sfence (Fence) retire it, so a missed
// flush or fence silently voids the crash-consistency argument without
// failing any functional test.
//
// The analyzer is purely syntactic (go/ast + go/parser + go/token, no
// go/types, no external dependencies): it resolves "thread expressions"
// — values it can see are *pmem.Thread handles — from parameter
// declarations, struct fields declared *pmem.Thread anywhere in the
// analyzed set, and assignments from NewThread/Thread calls, then
// checks four rules:
//
//	PL001  a Store/WriteRange with no Flush or Persist on the same
//	       thread later in the function (store may never persist)
//	PL002  a Flush with no Fence or Persist on the same thread later
//	       in the function (the clwb is queued but never retired)
//	PL003  a Flush/Persist inside an eADR-only branch (dead code:
//	       stores are already durable in the eADR domain)
//	PL004  a *pmem.Thread or *obs.Handle crossing a goroutine boundary
//	       (captured by a go-closure, passed as a go-call argument, or
//	       sent on a channel); both types are documented single-owner
//	       (the obs handle's sharded counters are written without
//	       synchronization on the owning goroutine)
//
// Rules PL001/PL002 are deliberately function-local and linear: a
// helper that stores and hands the persist obligation to its caller is
// a finding, to be acknowledged with an ignore directive explaining the
// contract. Suppression:
//
//	//persistlint:ignore PL001 caller persists the whole leaf image
//
// on the finding's line, the line above it, or in the enclosing
// function's doc comment (which suppresses that code for the whole
// function). A directive without a reason does not suppress and is
// itself reported (PL000).
package persist

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Category codes. PL000 is reserved for defects in the directives
// themselves.
const (
	CodeBadDirective   = "PL000"
	CodeStoreNoPersist = "PL001"
	CodeFlushNoFence   = "PL002"
	CodeDeadFlush      = "PL003"
	CodeThreadEscape   = "PL004"
)

// pmemImportPath identifies the modeled-PM package; any import path
// with this suffix (plus the package's own files) activates analysis.
const pmemImportPath = "internal/pmem"

// obsImportPath identifies the observability package, whose *Handle is
// a second single-owner type PL004 polices.
const obsImportPath = "internal/obs"

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Code string
	Func string // enclosing function, e.g. "(*Worker).leafBatchInsert"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s (in %s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg, f.Func)
}

// Analyzer accumulates parsed files, then runs the rules over all of
// them; struct-field thread declarations are collected globally first
// so method bodies in one package recognize fields declared in another.
type Analyzer struct {
	fset  *token.FileSet
	files []*fileInfo

	// threadFields holds names of struct fields declared *pmem.Thread
	// anywhere in the analyzed set ("t" in practice): any selector
	// expression ending in one of these is treated as a thread.
	threadFields map[string]bool
	// handleFields is the same for struct fields declared *obs.Handle.
	handleFields map[string]bool
}

type fileInfo struct {
	path     string
	f        *ast.File
	pmemName string // local import name of internal/pmem ("" if absent)
	obsName  string // local import name of internal/obs ("" if absent)
	inPmem   bool   // file belongs to package pmem itself
	inObs    bool   // file belongs to package obs itself
	ignores  map[int][]directive
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{fset: token.NewFileSet(), threadFields: map[string]bool{}, handleFields: map[string]bool{}}
}

// Fset exposes the analyzer's file set (positions in Findings resolve
// against it).
func (a *Analyzer) Fset() *token.FileSet { return a.fset }

// AddFile parses one source file (src may be nil to read from disk).
func (a *Analyzer) AddFile(path string, src []byte) error {
	var from any // a nil []byte must become a nil interface or ParseFile reads it as empty source
	if src != nil {
		from = src
	}
	f, err := parser.ParseFile(a.fset, path, from, parser.ParseComments)
	if err != nil {
		return err
	}
	fi := &fileInfo{path: path, f: f, inPmem: f.Name.Name == "pmem", inObs: f.Name.Name == "obs"}
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == pmemImportPath || strings.HasSuffix(p, "/"+pmemImportPath) {
			if imp.Name != nil {
				fi.pmemName = imp.Name.Name
			} else {
				fi.pmemName = "pmem"
			}
		}
		if p == obsImportPath || strings.HasSuffix(p, "/"+obsImportPath) {
			if imp.Name != nil {
				fi.obsName = imp.Name.Name
			} else {
				fi.obsName = "obs"
			}
		}
	}
	fi.ignores = parseDirectives(a.fset, f)
	a.files = append(a.files, fi)
	return nil
}

// AddDir parses every .go file directly in dir. Test files are skipped
// unless includeTests is set (test code routinely leaves stores
// unpersisted on purpose, e.g. crash-injection harnesses).
func (a *Analyzer) AddDir(dir string, includeTests bool) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if err := a.AddFile(filepath.Join(dir, name), nil); err != nil {
			return err
		}
	}
	return nil
}

// Run executes all rules and returns unsuppressed findings in position
// order.
func (a *Analyzer) Run() []Finding {
	for _, fi := range a.files {
		a.collectThreadFields(fi)
	}
	var out []Finding
	for _, fi := range a.files {
		out = append(out, a.checkFile(fi)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out
}

// isThreadType reports whether the type expression denotes
// *pmem.Thread (or *Thread inside package pmem).
func (fi *fileInfo) isThreadType(e ast.Expr) bool {
	st, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := st.X.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.pmemName != "" && id.Name == fi.pmemName && x.Sel.Name == "Thread"
	case *ast.Ident:
		return fi.inPmem && x.Name == "Thread"
	}
	return false
}

// isHandleType reports whether the type expression denotes
// *obs.Handle (or *Handle inside package obs).
func (fi *fileInfo) isHandleType(e ast.Expr) bool {
	st, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := st.X.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.obsName != "" && id.Name == fi.obsName && x.Sel.Name == "Handle"
	case *ast.Ident:
		return fi.inObs && x.Name == "Handle"
	}
	return false
}

// collectThreadFields records struct field names declared *pmem.Thread
// or *obs.Handle.
func (a *Analyzer) collectThreadFields(fi *fileInfo) {
	ast.Inspect(fi.f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			switch {
			case fi.isThreadType(fld.Type):
				for _, name := range fld.Names {
					a.threadFields[name.Name] = true
				}
			case fi.isHandleType(fld.Type):
				for _, name := range fld.Names {
					a.handleFields[name.Name] = true
				}
			}
		}
		return true
	})
}

// checkFile runs per-function rules over one file.
func (a *Analyzer) checkFile(fi *fileInfo) []Finding {
	var out []Finding
	for _, decl := range fi.f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fa := &funcAnalysis{an: a, fi: fi, fn: fd, threads: map[string]bool{}, handles: map[string]bool{}}
		fa.collectThreadVars()
		out = append(out, fa.run()...)
	}
	// Report malformed directives (missing reason) once per site.
	for line, dirs := range fi.ignores {
		for _, d := range dirs {
			if d.reason == "" {
				out = append(out, Finding{
					Pos:  d.pos,
					Code: CodeBadDirective,
					Func: "-",
					Msg:  fmt.Sprintf("persistlint:ignore %s on line %d has no reason; suppression requires a justification", d.code, line),
				})
			}
		}
	}
	return out
}

// funcAnalysis is the per-function state shared by the rules.
type funcAnalysis struct {
	an      *Analyzer
	fi      *fileInfo
	fn      *ast.FuncDecl
	threads map[string]bool // local identifiers known to hold *pmem.Thread
	handles map[string]bool // local identifiers known to hold *obs.Handle
}

func (fa *funcAnalysis) name() string {
	fd := fa.fn
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + renderExpr(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// collectThreadVars seeds the thread-identifier set from the parameter
// list and from assignments whose right side is a thread expression or
// a NewThread()/Thread() call.
func (fa *funcAnalysis) collectThreadVars() {
	for _, fld := range fa.fn.Type.Params.List {
		if fa.fi.isThreadType(fld.Type) {
			for _, n := range fld.Names {
				fa.threads[n.Name] = true
			}
		}
		if fa.fi.isHandleType(fld.Type) {
			for _, n := range fld.Names {
				fa.handles[n.Name] = true
			}
		}
	}
	if fa.fn.Recv != nil {
		for _, fld := range fa.fn.Recv.List {
			if fa.fi.isThreadType(fld.Type) {
				for _, n := range fld.Names {
					fa.threads[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			if fa.isThreadExpr(rhs) {
				fa.threads[id.Name] = true
			} else if fa.isHandleExpr(rhs) {
				fa.handles[id.Name] = true
			}
		}
		return true
	})
}

// isThreadExpr reports whether e syntactically denotes a *pmem.Thread:
// a known thread identifier, a selector ending in a known thread field,
// or a call of a method named Thread (zero-arg accessor) or NewThread.
func (fa *funcAnalysis) isThreadExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isThreadExpr(x.X)
	case *ast.Ident:
		return fa.threads[x.Name]
	case *ast.SelectorExpr:
		return fa.an.threadFields[x.Sel.Name]
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "NewThread" {
				return true
			}
			if sel.Sel.Name == "Thread" && len(x.Args) == 0 {
				return true
			}
		}
	}
	return false
}

// isHandleExpr reports whether e syntactically denotes an *obs.Handle:
// a known handle identifier, a selector ending in a known handle field,
// or a NewHandle call. The call heuristic only applies in files that
// import internal/obs (index.Index also has a NewHandle method; files
// using only that interface are not confused).
func (fa *funcAnalysis) isHandleExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isHandleExpr(x.X)
	case *ast.Ident:
		return fa.handles[x.Name]
	case *ast.SelectorExpr:
		return fa.an.handleFields[x.Sel.Name]
	case *ast.CallExpr:
		if fa.fi.obsName == "" && !fa.fi.inObs {
			return false
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewHandle" {
			return true
		}
	}
	return false
}

// renderExpr prints the small expression forms the analyzer deals in
// (identifier/selector chains, calls, stars); it exists so findings can
// name the thread value without importing go/printer.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.ParenExpr:
		return "(" + renderExpr(x.X) + ")"
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	}
	return "?"
}

// threadCall decomposes a call into (thread key, method name) when the
// callee is a method on a thread expression; ok is false otherwise.
func (fa *funcAnalysis) threadCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if !fa.isThreadExpr(sel.X) {
		return "", "", false
	}
	return renderExpr(sel.X), sel.Sel.Name, true
}

// suppressed checks the three suppression scopes for a finding.
func (fa *funcAnalysis) suppressed(code string, line int) bool {
	if directiveMatches(fa.fi.ignores[line], code) || directiveMatches(fa.fi.ignores[line-1], code) {
		return true
	}
	// Function-scope: directive in the func doc comment.
	if fa.fn.Doc != nil {
		for _, c := range fa.fn.Doc.List {
			if d, ok := parseDirectiveComment(fa.an.fset, c); ok && d.reason != "" && d.matches(code) {
				return true
			}
		}
	}
	return false
}

func (fa *funcAnalysis) finding(code string, pos token.Pos, msg string) (Finding, bool) {
	p := fa.an.fset.Position(pos)
	if fa.suppressed(code, p.Line) {
		return Finding{}, false
	}
	return Finding{Pos: p, Code: code, Func: fa.name(), Msg: msg}, true
}
