// Package persist is a static analyzer for the repository's persistent
// memory API (internal/pmem). It enforces the store→flush→fence
// discipline that every crash-consistent structure in this module
// hand-writes: a Store/WriteRange to PM is volatile under ADR until a
// Flush of its cachelines and an sfence (Fence) retire it, so a missed
// flush or fence silently voids the crash-consistency argument without
// failing any functional test.
//
// The analyzer is purely syntactic (go/ast + go/parser + go/token, no
// go/types, no external dependencies): it resolves "thread expressions"
// — values it can see are *pmem.Thread handles — from parameter
// declarations, struct fields declared *pmem.Thread anywhere in the
// analyzed set, and assignments from NewThread/Thread calls. The
// persistence rules run over a hand-rolled control-flow graph with a
// must-persist dataflow: obligations (store→flush, flush→fence) are
// propagated per CFG node with union join, so a finding means an
// obligation is still open on SOME path reaching a return — early
// returns, divergent branches, and loop back edges are analyzed
// soundly instead of by source position. The interprocedural layer is
// whole-program: a call graph over every analyzed package (receiver-
// type-qualified method resolution, Tarjan SCC collapse) carries
// discharge and lock summaries to a fixpoint, so a helper that
// persists through two more helpers — or a mutually-recursive pair —
// is credited at its call sites exactly like a direct Persist (wal's
// Append and AppendBatch, the tree's writeWholeLeaf). Call edges that
// cross a go statement are kept for reachability but excluded from
// lock-order propagation: those acquires happen on another
// goroutine's stack.
//
// # Rule catalog
//
// PL001 — a Store/WriteRange with a path to return on which no Flush
// or Persist on the same thread intervenes: the store may never
// persist. The canonical failing shape is the early return a
// position-ordered linter cannot see:
//
//	t.Store(a, 1)
//	if full {
//		return // PL001: the store escapes unpersisted here
//	}
//	t.Persist(a, 8)
//
// Fix: discharge on every path — t.Persist(a, 8) before the branch,
// or on the early path too.
//
// PL002 — a Flush with a path to return on which no Fence or Persist
// on the same thread intervenes: the clwb is queued but never retired.
//
//	t.Store(a, 1)
//	t.Flush(a, 8) // PL002: no fence on the !sync path
//	if sync {
//		t.Fence()
//	}
//
// Fix: fence unconditionally, or use t.Persist(a, 8).
//
// PL003 — a Flush/Persist only reachable inside an eADR-only branch.
// In the eADR persistence domain stores are durable at retirement, so
// the flush is dead code that suggests a misunderstood mode split:
//
//	if mode == pmem.EADR {
//		t.Flush(a, 8) // PL003: no-op under eADR
//		t.Fence()
//	}
//
// Fix: invert the condition (flush under ADR), or delete the branch.
//
// PL004 — a *pmem.Thread or *obs.Handle crossing a goroutine boundary
// (captured by a go-closure, passed as a go-call argument, or sent on
// a channel). Both types are documented single-owner:
//
//	go func() { t.Persist(a, 8) }() // PL004: t crosses goroutines
//
// Fix: have the goroutine own its handle — pool.NewThread(socket)
// inside the closure.
//
// PL005 — a Store that publishes a PM pointer (a value containing
// uint64(addr)) while earlier writes on the same thread are not yet
// fenced: a crash between the publish and the fence recovers a
// pointer to unpersisted bytes (the split-ordering bug the tree's
// logless leaf split is built around):
//
//	t.Store(newLeaf, img)
//	t.Store(meta, uint64(newLeaf)) // PL005: newLeaf image unfenced
//	t.Persist(meta, 8)
//
// Fix: t.Persist(newLeaf, 8) before the publish.
//
// PL006 — a lock acquire (direct, or one call level deep through a
// summary) that inverts the declared partial order
//
//	stw → workersMu → {gcMu, inner.mu, chunkdir.mu}
//
// Locks of equal rank are unordered among themselves, so holding one
// while taking another is also reported, as is re-acquiring a held
// lock:
//
//	tr.workersMu.Lock()
//	tr.stw.Lock() // PL006: the symmetric path deadlocks
//
// Fix: release before acquiring up-order, or take the locks in
// declared order.
//
// PL007 — a reasoned //persistlint:ignore directive that suppressed
// nothing this run: the analysis outgrew the excuse and the directive
// now only hides future regressions.
//
//	//persistlint:ignore PL001 caller persists this // PL007: stale
//	t.Store(a, 1)
//	t.Persist(a, 8)
//
// Fix: delete the directive. PL007 is itself not suppressible.
// cmd/persistlint -fix deletes stale directives mechanically.
//
// PL008 — a struct field accessed through the functional sync/atomic
// API anywhere (atomic.AddUint64(&d.ticks, 1)) and read or written
// plainly elsewhere: the plain access can observe a torn or stale
// value on schedules the race detector never sees. Matching is
// owner-aware — the same field name on an unrelated struct is not
// indicted — and a plain access provably holding the field's declared
// guard (the lock-for-writes protocol) or sitting in a constructor is
// exempt:
//
//	atomic.AddUint64(&d.ticks, 1) // writer
//	...
//	return d.ticks // PL008: racy plain read of an atomic field
//
// Fix: atomic.LoadUint64(&d.ticks), or take the field's guard.
//
// PL009 — an access of a lock-guarded field without the guard held.
// The guard is either declared (//persistlint:guardedby CLASS on the
// field declaration, enforced on every non-constructor access) or
// inferred: when at least 4 judged accesses exist and 75%+ of them
// hold one declared lock class, the outliers holding nothing are the
// accesses a lock-free refactor would silently race:
//
//	r.gcMu.Lock(); r.items = append(r.items, v); r.gcMu.Unlock() // ×3
//	...
//	return r.items[0] // PL009: every other access takes gcMu first
//
// Fix: take the lock, or declare the real protocol on the field.
// A guardedby directive naming an unknown class is PL000.
//
// PL010 — a seqlock read session violating the protocol: save the
// version (v := s.seq.Load()), bail when the saved value marks a
// write in progress, read the data, re-check the version and retry on
// mismatch. The rule demands the validity test and the re-check exist,
// and — via the obligation dataflow — that the re-check is reached on
// EVERY path from the load to a return:
//
//	v := s.seq.Load() // PL010: the cached path returns unre-checked
//	if cached {
//		return s.word
//	}
//	...re-check...
//
// Fix: re-check before every return (a CompareAndSwap on the saved
// version counts; returning the version hands the obligation to the
// caller). Version fields are typed-atomic fields named version/seq,
// plus //persistlint:seqlock declarations.
//
// PL011 — provably wasted persistence work, the inverse of
// PL001/PL002, as a must-analysis: a Flush of an address not stored to
// since its last flush on every path, a Persist of an address clean
// since the last fence, a Fence with nothing to order. Each one is a
// full XPBuffer round-trip (or pipeline drain) spent on nothing:
//
//	t.Store(a, 1)
//	t.Flush(a, 8)
//	t.Flush(a, 8) // PL011: the line is provably still clean
//	t.Fence()
//
// Fix: delete the duplicate. Facts die at joins that disagree, at any
// call, and at any computed address rendering, so a maybe-dirty line
// is never reported.
//
// PL012 — a Thread.PushScope with a path to return and no matching
// PopScope (defers included): the scope leaks onto the thread's next
// unrelated work and every later byte it writes is attributed to the
// wrong component. Paths that die in a panic owe nothing:
//
//	prev := t.PushScope(pmem.ScopeMeta) // PL012
//	if fail {
//		return err // the scope leaks here
//	}
//	t.PopScope(prev)
//
// Fix: defer t.PopScope(prev) at the push site (or the one-liner
// defer t.PopScope(t.PushScope(s))).
//
// PL013 — a PM address (or its uint64 image) stored into a heap
// structure, sent on a channel, or handed to a goroutine while the
// bytes behind it still carry an unfenced store on the same thread.
// Whoever receives the address can chase it — through a DRAM cache, a
// work queue, another goroutine — to data a crash throws away, long
// after the publishing function returned clean:
//
//	t.Store(leaf, img)
//	cache.slots["k"] = leaf // PL013: leaf's image is not yet fenced
//	t.Persist(leaf, 8)
//
// Fix: t.Persist(leaf, 8) before the address escapes. Plain call
// arguments do not count as escapes (the callee is analyzed in its
// own right); container writes, sends, and goroutine hand-offs do.
//
// PL014 — a lock-order inversion whose acquire is buried two or more
// calls deep. PL006 sees direct acquires and one-level summaries;
// PL014 lifts the same declared order over the whole call graph and
// names the witness chain, excluding acquires on the far side of a go
// statement (they run on another goroutine's stack and cannot invert
// against the caller's held set):
//
//	tr.gcMu.Lock()
//	tr.rebalance() // PL014: acquires workersMu via rebalance -> drainWorkers
//
// Fix: release before the call, or hoist the deep acquire to the
// declared order.
//
// PL015 — a read reachable from a recovery or optimistic-read entry
// point of a field some writer publishes before fencing it. The
// writer-side bug is PL005; PL015 is the reader-side blast radius: the
// recovery path (any recover* function, or a function marked
// //persistlint:entrypoint, or a seqlock read session) can chase a
// durable pointer into unpersisted bytes:
//
//	func recoverChain(t *pmem.Thread, a pmem.Addr) {
//		next := t.Load(a) // PL015: a writer publishes "next" unfenced
//		...
//	}
//
// Fix: fence before the publish (clears both PL005 and PL015), or
// re-validate the read against a version after chasing it.
//
// Suppression:
//
//	//persistlint:ignore PL001 caller persists the whole leaf image
//
// on the finding's line, the line above it, or in the enclosing
// function's doc comment (which suppresses that code for the whole
// function). A directive without a reason does not suppress and is
// itself reported (PL000); a directive that suppresses nothing is
// reported as stale (PL007, not suppressible).
package persist

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Category codes. PL000 and PL007 are reserved for defects in the
// directives themselves.
const (
	CodeBadDirective         = "PL000"
	CodeStoreNoPersist       = "PL001"
	CodeFlushNoFence         = "PL002"
	CodeDeadFlush            = "PL003"
	CodeThreadEscape         = "PL004"
	CodePublishBeforePersist = "PL005"
	CodeLockOrder            = "PL006"
	CodeStaleIgnore          = "PL007"
	CodeAtomicMix            = "PL008"
	CodeGuardedBy            = "PL009"
	CodeSeqlock              = "PL010"
	CodeWastedPersist        = "PL011"
	CodeScopeBalance         = "PL012"
	CodeEscapeBeforePersist  = "PL013"
	CodeLockOrderGraph       = "PL014"
	CodeReadAfterPublish     = "PL015"
)

// AllCodes lists every rule code, for CLI toggle validation.
func AllCodes() []string {
	return []string{
		CodeBadDirective, CodeStoreNoPersist, CodeFlushNoFence,
		CodeDeadFlush, CodeThreadEscape, CodePublishBeforePersist,
		CodeLockOrder, CodeStaleIgnore, CodeAtomicMix, CodeGuardedBy,
		CodeSeqlock, CodeWastedPersist, CodeScopeBalance,
		CodeEscapeBeforePersist, CodeLockOrderGraph, CodeReadAfterPublish,
	}
}

// RuleTitles maps every rule code to a one-line description, for SARIF
// rule metadata and documentation generators.
func RuleTitles() map[string]string {
	return map[string]string{
		CodeBadDirective:         "persistlint directive without a justification",
		CodeStoreNoPersist:       "PM store with a path to return that never flushes it",
		CodeFlushNoFence:         "PM flush with a path to return that never fences it",
		CodeDeadFlush:            "flush/persist under an eADR-only branch is a no-op",
		CodeThreadEscape:         "single-owner *pmem.Thread/*obs.Handle crosses a goroutine boundary",
		CodePublishBeforePersist: "PM pointer published while its pointee is unfenced",
		CodeLockOrder:            "lock acquisition inverts the declared order (direct or one call deep)",
		CodeStaleIgnore:          "persistlint:ignore directive that suppresses nothing",
		CodeAtomicMix:            "plain access to a field used with sync/atomic elsewhere",
		CodeGuardedBy:            "access to a lock-guarded field without its guard held",
		CodeSeqlock:              "seqlock read session with a path that never re-checks the version",
		CodeWastedPersist:        "provably redundant flush/fence/persist",
		CodeScopeBalance:         "PushScope with a path to return that never pops it",
		CodeEscapeBeforePersist:  "PM address escapes into a heap structure, channel, or goroutine while unfenced",
		CodeLockOrderGraph:       "lock acquisition inverts the declared order through the whole call graph",
		CodeReadAfterPublish:     "recovery/optimistic-read path reads a slot some writer publishes before fencing",
	}
}

// pmemImportPath identifies the modeled-PM package; any import path
// with this suffix (plus the package's own files) activates analysis.
const pmemImportPath = "internal/pmem"

// obsImportPath identifies the observability package, whose *Handle is
// a second single-owner type PL004 polices.
const obsImportPath = "internal/obs"

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Code string
	Func string // enclosing function, e.g. "(*Worker).leafBatchInsert"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s (in %s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg, f.Func)
}

// Stats summarizes the analysis run, for -stats self-diagnostics: CI
// logs should show coverage, not just silence.
type Stats struct {
	Files              int // source files parsed
	Functions          int // function bodies analyzed (literals included)
	CFGNodes           int // control-flow graph nodes built
	CallNodes          int // call-graph nodes (declared functions)
	CallEdges          int // resolved call-graph edges (candidate-deduped)
	CallSCCs           int // strongly connected components in the call graph
	DischargeSummaries int // declarations with a discharge summary
	LockSummaries      int // declarations with a transitive lock-acquire summary
	AtomicFields       int // fields accessed via functional sync/atomic (PL008 domain)
	GuardedFields      int // fields with a declared or inferred lock guard (PL009)
	FieldAccesses      int // tracked field accesses collected for PL008/PL009
	SeqlockReads       int // qualifying seqlock read sessions checked (PL010)
	ScopeSites         int // PushScope sites checked for balance (PL012)
	EntryPoints        int // PL015 entry points (recovery, declared, seqlock readers)

	// Findings and FindingsByCode are filled from the findings Run
	// actually returned, so -stats totals reconcile with emitted
	// findings by construction (no separately incremented counters to
	// drift when a rule bails early).
	Findings       int
	FindingsByCode map[string]int
}

// Analyzer accumulates parsed files, then runs the rules over all of
// them; struct-field thread declarations are collected globally first
// so method bodies in one package recognize fields declared in another.
type Analyzer struct {
	fset  *token.FileSet
	files []*fileInfo

	// threadFields holds names of struct fields declared *pmem.Thread
	// anywhere in the analyzed set ("t" in practice): any selector
	// expression ending in one of these is treated as a thread.
	threadFields map[string]bool
	// handleFields is the same for struct fields declared *obs.Handle.
	handleFields map[string]bool
	// addrFields is the same for fields declared pmem.Addr (PL005's
	// notion of "a PM pointer lives here").
	addrFields map[string]bool
	// lockOwnerFields maps field names declared with a mu-owning type
	// ("inner" → "innerTree", "dir" → "chunkDir") for resolving the
	// ambiguous field name "mu" through a selector chain.
	lockOwnerFields map[string]string

	// cg is the whole-program call graph (callgraph.go), built once per
	// Run before the summaries.
	cg *callGraph

	// summaries holds per-declaration discharge summaries computed to a
	// fixpoint over the call graph; lockDirect/lockTrans are the direct
	// and transitively closed lock-acquire sets, and lockVia the PL014
	// witness next-hops (see summary.go). All keyed by funcNode.key.
	summaries  map[string]summary
	lockDirect map[string][]string
	lockTrans  map[string][]string
	lockVia    map[string]map[string]string

	// oneLevel disables the fixpoint (summaries computed against an
	// empty table) — the pre-whole-program engine, kept as a test knob
	// so the regression test can prove what the fixpoint buys.
	oneLevel bool

	// hotPublishes/loadSites/seqFns drive PL015: slots published while
	// obligations were open, thread Load sites, and functions containing
	// seqlock read sessions (optimistic-read entry points). Collected
	// during the rule pass, judged afterwards (readpub.go).
	hotPublishes map[string][]publishSite
	loadSites    []loadSite
	seqFns       map[string]bool

	// disabled holds rule codes switched off for this run (CLI
	// toggles). Disabled rules neither report nor mark directives used,
	// and their directives are exempt from PL007 staleness.
	disabled map[string]bool

	// structFields maps struct type name → field name → declared type
	// base name, for resolving the owning struct of a field access.
	structFields map[string]map[string]string
	// structLocks maps struct type name → classed lock fields it
	// declares (guard candidates for its sibling fields).
	structLocks map[string][]string
	// typedAtomicFields holds bare names of fields declared with a
	// sync/atomic value type (atomic.Uint64, atomic.Bool, ...): the
	// type system already forbids plain access, so PL008/PL009 skip
	// them.
	typedAtomicFields map[string]bool
	// atomicFields holds bare names of fields accessed through the
	// functional sync/atomic API (atomic.LoadUint64(&x.f), ...) —
	// PL008's domain.
	atomicFields map[string]bool
	// seqFields holds names of version-counter fields whose readers
	// must follow the seqlock protocol (PL010): atomic.Uint32/Uint64
	// fields named version/seq, plus //persistlint:seqlock declarations.
	seqFields map[string]bool
	// guardDecls maps "Type.field" to the lock class declared with
	// //persistlint:guardedby; guardDeclPos records the declaration
	// site for error reporting.
	guardDecls   map[string]string
	guardDeclPos map[string]token.Pos
	// trackedFields is the union of field names whose accesses are
	// collected for PL008/PL009.
	trackedFields map[string]bool
	// accesses is every tracked field access with its held-lock
	// snapshot, in deterministic collection order.
	accesses []*fieldAccess
	// inferredGuards maps "Type.field" to the dominant lock class
	// inferred by PL009 (guardDecls take precedence).
	inferredGuards map[string]string
	// scopeSites/seqSites count distinct PL012/PL010 program points for
	// -stats.
	scopeSites map[token.Pos]bool
	seqSites   map[token.Pos]bool

	stats Stats
}

// fieldAccess is one collected access to a tracked struct field.
type fieldAccess struct {
	pos    token.Pos
	fa     *funcAnalysis
	field  string // bare field name
	owner  string // resolved owning struct type name ("" if unresolved)
	atomic bool   // access went through sync/atomic (functional or typed)
	held   map[string]bool
	ctor   bool // access sits in a constructor/init path
}

type fileInfo struct {
	path       string
	dir        string // cleaned slash path of the declaring directory (call-graph pkg id)
	f          *ast.File
	pmemName   string            // local import name of internal/pmem ("" if absent)
	obsName    string            // local import name of internal/obs ("" if absent)
	atomicName string            // local import name of sync/atomic ("" if absent)
	inPmem     bool              // file belongs to package pmem itself
	inObs      bool              // file belongs to package obs itself
	importPkg  map[string]string // import local name → analyzed package dir (resolveImports)
	ignores    map[int][]*directive
	guards     map[int]*guardDecl // //persistlint:guardedby by line
	seqDecls   map[int]bool       // //persistlint:seqlock by line
}

// NewAnalyzer returns an empty analyzer with every rule enabled.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		fset:              token.NewFileSet(),
		threadFields:      map[string]bool{},
		handleFields:      map[string]bool{},
		addrFields:        map[string]bool{},
		lockOwnerFields:   map[string]string{},
		disabled:          map[string]bool{},
		structFields:      map[string]map[string]string{},
		structLocks:       map[string][]string{},
		typedAtomicFields: map[string]bool{},
		atomicFields:      map[string]bool{},
		seqFields:         map[string]bool{},
		guardDecls:        map[string]string{},
		guardDeclPos:      map[string]token.Pos{},
		trackedFields:     map[string]bool{},
		scopeSites:        map[token.Pos]bool{},
		seqSites:          map[token.Pos]bool{},
	}
}

// Disable switches the given rule codes off for subsequent Runs. PL000
// (malformed directives) cannot be disabled.
func (a *Analyzer) Disable(codes ...string) {
	for _, c := range codes {
		if c != CodeBadDirective {
			a.disabled[c] = true
		}
	}
}

// Fset exposes the analyzer's file set (positions in Findings resolve
// against it).
func (a *Analyzer) Fset() *token.FileSet { return a.fset }

// Stats reports self-diagnostics for the most recent Run.
func (a *Analyzer) Stats() Stats { return a.stats }

// AddFile parses one source file (src may be nil to read from disk).
func (a *Analyzer) AddFile(path string, src []byte) error {
	var from any // a nil []byte must become a nil interface or ParseFile reads it as empty source
	if src != nil {
		from = src
	}
	f, err := parser.ParseFile(a.fset, path, from, parser.ParseComments)
	if err != nil {
		return err
	}
	fi := &fileInfo{
		path:   path,
		dir:    filepath.ToSlash(filepath.Clean(filepath.Dir(path))),
		f:      f,
		inPmem: f.Name.Name == "pmem",
		inObs:  f.Name.Name == "obs",
	}
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == pmemImportPath || strings.HasSuffix(p, "/"+pmemImportPath) {
			if imp.Name != nil {
				fi.pmemName = imp.Name.Name
			} else {
				fi.pmemName = "pmem"
			}
		}
		if p == obsImportPath || strings.HasSuffix(p, "/"+obsImportPath) {
			if imp.Name != nil {
				fi.obsName = imp.Name.Name
			} else {
				fi.obsName = "obs"
			}
		}
		if p == "sync/atomic" {
			if imp.Name != nil {
				fi.atomicName = imp.Name.Name
			} else {
				fi.atomicName = "atomic"
			}
		}
	}
	fi.ignores = parseDirectives(a.fset, f)
	fi.guards, fi.seqDecls = parseFieldDirectives(a.fset, f)
	a.files = append(a.files, fi)
	return nil
}

// ListGoFiles returns the .go files AddDir would parse in dir, in
// ReadDir (sorted) order. Exposed so cmd/persistlint's incremental
// cache hashes exactly the input set the analysis would consume.
func ListGoFiles(dir string, includeTests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	return out, nil
}

// AddDir parses every .go file directly in dir. Test files are skipped
// unless includeTests is set (test code routinely leaves stores
// unpersisted on purpose, e.g. crash-injection harnesses).
func (a *Analyzer) AddDir(dir string, includeTests bool) error {
	files, err := ListGoFiles(dir, includeTests)
	if err != nil {
		return err
	}
	for _, path := range files {
		if err := a.AddFile(path, nil); err != nil {
			return err
		}
	}
	return nil
}

// Run executes all rules and returns unsuppressed findings in a
// deterministic order (position, then code, then message).
func (a *Analyzer) Run() []Finding {
	a.stats = Stats{Files: len(a.files)}
	a.accesses = nil
	a.scopeSites = map[token.Pos]bool{}
	a.seqSites = map[token.Pos]bool{}
	a.hotPublishes = map[string][]publishSite{}
	a.loadSites = nil
	a.seqFns = map[string]bool{}
	for _, fi := range a.files {
		a.collectThreadFields(fi)
		a.collectStructInfo(fi)
	}
	for _, fi := range a.files {
		a.collectAtomicUses(fi)
	}
	a.buildTrackedFields()
	a.resolveImports()
	a.buildCallGraph()
	a.computeSummaries()
	var out []Finding
	for _, fi := range a.files {
		out = append(out, a.checkFile(fi)...)
	}
	a.inferGuards()
	out = append(out, a.checkAtomicConsistency()...)
	out = append(out, a.checkGuardedBy()...)
	out = append(out, a.checkReadAfterPublish()...)
	out = append(out, a.checkStaleDirectives()...)
	a.stats.AtomicFields = len(a.atomicFields)
	a.stats.FieldAccesses = len(a.accesses)
	a.stats.GuardedFields = len(a.inferredGuards) + len(a.guardDecls)
	a.stats.SeqlockReads = len(a.seqSites)
	a.stats.ScopeSites = len(a.scopeSites)
	a.stats.Findings = len(out)
	a.stats.FindingsByCode = map[string]int{}
	for _, f := range out {
		a.stats.FindingsByCode[f.Code]++
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		if out[i].Code != out[j].Code {
			return out[i].Code < out[j].Code
		}
		return out[i].Msg < out[j].Msg
	})
	return out
}

// checkStaleDirectives reports PL007 for every reasoned directive that
// suppressed nothing. Must run after every file has been checked (a
// directive may be consumed by any finding in its scope). Reasonless
// directives are PL000, not PL007. Not suppressible: the remedy is
// deleting the line, not excusing it.
func (a *Analyzer) checkStaleDirectives() []Finding {
	if a.disabled[CodeStaleIgnore] {
		return nil
	}
	var out []Finding
	for _, fi := range a.files {
		for _, dirs := range fi.ignores {
			for _, d := range dirs {
				if d.reason == "" || d.used || a.directiveCoversDisabled(d) {
					continue
				}
				out = append(out, Finding{
					Pos:  d.pos,
					Code: CodeStaleIgnore,
					Func: "-",
					Msg:  fmt.Sprintf("persistlint:ignore %s suppresses nothing under the current analysis; delete the stale directive", d.code),
				})
			}
		}
	}
	return out
}

// directiveCoversDisabled reports whether the directive names a rule
// that is switched off this run: with the rule silent the directive
// cannot possibly match, so calling it stale would be wrong.
func (a *Analyzer) directiveCoversDisabled(d *directive) bool {
	for _, c := range d.codes {
		if (c == "*" && len(a.disabled) > 0) || a.disabled[c] {
			return true
		}
	}
	return false
}

// isThreadType reports whether the type expression denotes
// *pmem.Thread (or *Thread inside package pmem).
func (fi *fileInfo) isThreadType(e ast.Expr) bool {
	st, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := st.X.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.pmemName != "" && id.Name == fi.pmemName && x.Sel.Name == "Thread"
	case *ast.Ident:
		return fi.inPmem && x.Name == "Thread"
	}
	return false
}

// isHandleType reports whether the type expression denotes
// *obs.Handle (or *Handle inside package obs).
func (fi *fileInfo) isHandleType(e ast.Expr) bool {
	st, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := st.X.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.obsName != "" && id.Name == fi.obsName && x.Sel.Name == "Handle"
	case *ast.Ident:
		return fi.inObs && x.Name == "Handle"
	}
	return false
}

// collectThreadFields records struct field names declared
// *pmem.Thread, *obs.Handle, pmem.Addr, or a mu-owning lock type.
func (a *Analyzer) collectThreadFields(fi *fileInfo) {
	ast.Inspect(fi.f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			switch {
			case fi.isThreadType(fld.Type):
				for _, name := range fld.Names {
					a.threadFields[name.Name] = true
				}
			case fi.isHandleType(fld.Type):
				for _, name := range fld.Names {
					a.handleFields[name.Name] = true
				}
			case fi.isAddrType(fld.Type):
				for _, name := range fld.Names {
					a.addrFields[name.Name] = true
				}
			default:
				if base := typeBaseName(fld.Type); muOwnerClass[base] != "" {
					for _, name := range fld.Names {
						a.lockOwnerFields[name.Name] = base
					}
				}
			}
		}
		return true
	})
}

// checkFile runs per-function rules over one file.
func (a *Analyzer) checkFile(fi *fileInfo) []Finding {
	var out []Finding
	for _, decl := range fi.f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fa := newFuncAnalysis(a, fi, fd)
		if a.cg != nil {
			if n := a.cg.byDecl[fd]; n != nil && n.fa != nil {
				fa = n.fa // reuse the environment built for the call graph
			}
		}
		out = append(out, fa.run()...)
	}
	// Report malformed directives (missing reason) once per site.
	for line, dirs := range fi.ignores {
		for _, d := range dirs {
			if d.reason == "" {
				out = append(out, Finding{
					Pos:  d.pos,
					Code: CodeBadDirective,
					Func: "-",
					Msg:  fmt.Sprintf("persistlint:ignore %s on line %d has no reason; suppression requires a justification", d.code, line),
				})
			}
		}
	}
	return out
}

// funcAnalysis is the per-function state shared by the rules. For a
// function literal it shares the declaration's environment (threads,
// addrs, lock owners) extended with the literal's own parameters.
type funcAnalysis struct {
	an    *Analyzer
	fi    *fileInfo
	fn    *ast.FuncDecl  // enclosing declaration (doc-scope suppression)
	node  *funcNode      // call-graph node of the declaration (nil pre-graph)
	body  *ast.BlockStmt // the body under analysis (decl or literal)
	fname string         // display name, e.g. "(*Worker).upsert.func1"

	threads  map[string]bool   // identifiers known to hold *pmem.Thread
	handles  map[string]bool   // identifiers known to hold *obs.Handle
	addrs    map[string]bool   // identifiers known to hold pmem.Addr
	muOwners map[string]string // identifiers whose type owns a "mu" field → class
	varTypes map[string]string // identifiers with a resolvable struct type base name
	ctor     bool              // body is a constructor/init path (PL008/PL009 exempt)

	// seqQualified marks seqlock-session keys whose missing re-check is
	// reportable (PL010), set by checkSeqlock before the dataflow runs.
	seqQualified map[string]bool
}

// newFuncAnalysis builds the analysis state for one declared function.
func newFuncAnalysis(a *Analyzer, fi *fileInfo, fd *ast.FuncDecl) *funcAnalysis {
	fa := &funcAnalysis{an: a, fi: fi, fn: fd, body: fd.Body, threads: map[string]bool{}, handles: map[string]bool{}}
	if a.cg != nil {
		fa.node = a.cg.byDecl[fd]
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		fa.fname = fd.Name.Name
	} else {
		fa.fname = "(" + renderExpr(fd.Recv.List[0].Type) + ")." + fd.Name.Name
	}
	fa.collectThreadVars()
	fa.collectAddrVars()
	fa.collectLockOwnerTypes()
	fa.collectVarTypes()
	fa.ctor = isCtorName(fa.fname)
	return fa
}

// isCtorName reports whether the function name denotes a constructor
// or init path: struct fields are routinely filled before the value is
// published, so guard rules do not apply there.
func isCtorName(fname string) bool {
	name := fname
	if i := strings.LastIndex(name, ")."); i >= 0 {
		name = name[i+2:]
	}
	if i := strings.Index(name, "."); i >= 0 {
		name = name[:i] // closures inherit the declaring function's role
	}
	for _, p := range []string{"new", "New", "open", "Open", "init", "Init", "make", "Make"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// forLit derives the analysis state for the idx-th function literal of
// this body: same environment, plus the literal's typed parameters.
func (fa *funcAnalysis) forLit(lit *ast.FuncLit, idx int) *funcAnalysis {
	sub := &funcAnalysis{
		an: fa.an, fi: fa.fi, fn: fa.fn, node: fa.node,
		body:     lit.Body,
		fname:    fmt.Sprintf("%s.func%d", fa.fname, idx+1),
		threads:  copyBoolMap(fa.threads),
		handles:  copyBoolMap(fa.handles),
		addrs:    copyBoolMap(fa.addrs),
		muOwners: copyStringMap(fa.muOwners),
		varTypes: copyStringMap(fa.varTypes),
		ctor:     fa.ctor,
	}
	for _, fld := range lit.Type.Params.List {
		switch {
		case fa.fi.isThreadType(fld.Type):
			for _, n := range fld.Names {
				sub.threads[n.Name] = true
			}
		case fa.fi.isHandleType(fld.Type):
			for _, n := range fld.Names {
				sub.handles[n.Name] = true
			}
		case fa.fi.isAddrType(fld.Type):
			for _, n := range fld.Names {
				sub.addrs[n.Name] = true
			}
		default:
			if cls, ok := muOwnerClass[typeBaseName(fld.Type)]; ok {
				for _, n := range fld.Names {
					sub.muOwners[n.Name] = cls
				}
			}
		}
		if t := typeBaseName(fld.Type); t != "" {
			for _, n := range fld.Names {
				sub.varTypes[n.Name] = t
			}
		}
	}
	return sub
}

func copyBoolMap(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyStringMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (fa *funcAnalysis) name() string { return fa.fname }

// collectThreadVars seeds the thread-identifier set from the parameter
// list and from assignments whose right side is a thread expression or
// a NewThread()/Thread() call. The whole declaration body is scanned,
// closures included, so literals inherit the environment.
func (fa *funcAnalysis) collectThreadVars() {
	for _, fld := range fa.fn.Type.Params.List {
		if fa.fi.isThreadType(fld.Type) {
			for _, n := range fld.Names {
				fa.threads[n.Name] = true
			}
		}
		if fa.fi.isHandleType(fld.Type) {
			for _, n := range fld.Names {
				fa.handles[n.Name] = true
			}
		}
	}
	if fa.fn.Recv != nil {
		for _, fld := range fa.fn.Recv.List {
			if fa.fi.isThreadType(fld.Type) {
				for _, n := range fld.Names {
					fa.threads[n.Name] = true
				}
			}
		}
	}
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			if fa.isThreadExpr(rhs) {
				fa.threads[id.Name] = true
			} else if fa.isHandleExpr(rhs) {
				fa.handles[id.Name] = true
			}
		}
		return true
	})
}

// isThreadExpr reports whether e syntactically denotes a *pmem.Thread:
// a known thread identifier, a selector ending in a known thread field,
// or a call of a method named Thread (zero-arg accessor) or NewThread.
func (fa *funcAnalysis) isThreadExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isThreadExpr(x.X)
	case *ast.Ident:
		return fa.threads[x.Name]
	case *ast.SelectorExpr:
		return fa.an.threadFields[x.Sel.Name]
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "NewThread" {
				return true
			}
			if sel.Sel.Name == "Thread" && len(x.Args) == 0 {
				return true
			}
		}
	}
	return false
}

// isHandleExpr reports whether e syntactically denotes an *obs.Handle:
// a known handle identifier, a selector ending in a known handle field,
// or a NewHandle call. The call heuristic only applies in files that
// import internal/obs (index.Index also has a NewHandle method; files
// using only that interface are not confused).
func (fa *funcAnalysis) isHandleExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isHandleExpr(x.X)
	case *ast.Ident:
		return fa.handles[x.Name]
	case *ast.SelectorExpr:
		return fa.an.handleFields[x.Sel.Name]
	case *ast.CallExpr:
		if fa.fi.obsName == "" && !fa.fi.inObs {
			return false
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewHandle" {
			return true
		}
	}
	return false
}

// renderExpr prints the small expression forms the analyzer deals in
// (identifier/selector chains, calls, stars); it exists so findings can
// name the thread value without importing go/printer.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.ParenExpr:
		return "(" + renderExpr(x.X) + ")"
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	}
	return "?"
}

// threadCall decomposes a call into (thread key, method name) when the
// callee is a method on a thread expression; ok is false otherwise.
func (fa *funcAnalysis) threadCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if !fa.isThreadExpr(sel.X) {
		return "", "", false
	}
	return renderExpr(sel.X), sel.Sel.Name, true
}

// suppressed checks the three suppression scopes for a finding and
// marks the consumed directive (PL007 reports the never-consumed ones).
func (fa *funcAnalysis) suppressed(code string, line int) bool {
	if directiveMatches(fa.fi.ignores[line], code) || directiveMatches(fa.fi.ignores[line-1], code) {
		return true
	}
	// Function-scope: directive in the func doc comment. Looked up
	// through the file index so usage marks stick to the shared
	// directive instances.
	if fa.fn.Doc != nil {
		for _, c := range fa.fn.Doc.List {
			if directiveMatches(fa.fi.ignores[fa.an.fset.Position(c.Pos()).Line], code) {
				return true
			}
		}
	}
	return false
}

func (fa *funcAnalysis) finding(code string, pos token.Pos, msg string) (Finding, bool) {
	if fa.an.disabled[code] {
		return Finding{}, false
	}
	p := fa.an.fset.Position(pos)
	if fa.suppressed(code, p.Line) {
		return Finding{}, false
	}
	return Finding{Pos: p, Code: code, Func: fa.name(), Msg: msg}, true
}
