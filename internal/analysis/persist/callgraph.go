package persist

// callgraph.go builds the whole-program call graph the interprocedural
// layer runs over. Nodes are function declarations, keyed by package
// directory plus receiver-qualified name ("internal/wal::Log.Append"),
// so two methods sharing a bare name stop being conflated the way the
// old one-level bare-name summary tables conflated them.
//
// Call sites resolve in three tiers, best first:
//
//  1. pkg.Fn(...) through an import of an analyzed package, and
//     bare Fn(...) against the caller's own package, resolve to
//     exactly one free function.
//  2. x.M(...) where the syntactic type resolution (typeOf, shared
//     with PL008/PL009) yields x's struct base type T resolves to the
//     analyzed methods named M with receiver base T.
//  3. Anything else falls back to every analyzed function or method
//     with that bare name — the old conservative AND-merge semantics,
//     now explicit as a multi-candidate edge set.
//
// The graph's strongly connected components (Tarjan) are emitted in
// callee-first order; summary.go walks that order so a summary only
// ever reads finished callee summaries, except inside its own SCC
// where it iterates to a fixpoint. The dir-level projection of the
// edges (DirEdges) keys the incremental cache's transitive
// invalidation in cmd/persistlint.

import (
	"go/ast"
	"path"
	"sort"
	"strings"
)

// funcNode is one declared function in the call graph.
type funcNode struct {
	key     string // pkgID + "::" + [recvBase + "."] + name
	display string // pkgName.[(recv)].name, for findings
	bare    string // declared name, fallback-resolution key
	recv    string // receiver base type ("" for free functions)
	pkgID   string // cleaned slash path of the declaring directory
	fi      *fileInfo
	fd      *ast.FuncDecl
	fa      *funcAnalysis

	id      int
	callees []int // resolved candidate edges, deduped, in first-seen order
	// syncCallees is the subset of callees reached without crossing a
	// go statement: lock-order propagation follows only these (an
	// acquire on another goroutine cannot invert against what THIS
	// stack holds), while reachability (PL015) and cache invalidation
	// follow every edge.
	syncCallees []int

	// entry is the non-empty reason when the function is a PL015
	// analysis entry point (recovery by name, or declared with
	// //persistlint:entrypoint). Seqlock-session entry points are
	// discovered later, during the rule pass.
	entry string
}

// callGraph is the whole-program graph plus its SCC decomposition.
type callGraph struct {
	nodes   []*funcNode
	byKey   map[string]*funcNode
	byDecl  map[*ast.FuncDecl]*funcNode
	byBare  map[string][]*funcNode
	methods map[string][]*funcNode // recvBase+"."+name → declaring nodes
	pkgFunc map[string]*funcNode   // pkgID+"::"+name → free function

	// sccs lists the strongly connected components in callee-first
	// (reverse topological) order; sccOf maps node id → component index.
	sccs  [][]*funcNode
	sccOf []int

	edgeCount int
}

// nodeKey of the declaration this analysis covers ("" for bodies that
// never entered the graph). Function literals inherit the declaring
// function's node, so reachability and load attribution stay with the
// declaration.
func (fa *funcAnalysis) nodeKey() string {
	if fa.node == nil {
		return ""
	}
	return fa.node.key
}

// buildCallGraph registers every function declaration, resolves every
// call site to its candidate set, and computes the SCC order. Must run
// after collectThreadFields/collectStructInfo (type resolution) and
// before computeSummaries (which walks the SCC order).
func (a *Analyzer) buildCallGraph() {
	cg := &callGraph{
		byKey:   map[string]*funcNode{},
		byDecl:  map[*ast.FuncDecl]*funcNode{},
		byBare:  map[string][]*funcNode{},
		methods: map[string][]*funcNode{},
		pkgFunc: map[string]*funcNode{},
	}
	a.cg = cg

	// Pass 1: register nodes. Deterministic: files in AddFile order,
	// declarations in source order.
	for _, fi := range a.files {
		for _, decl := range fi.f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &funcNode{bare: fd.Name.Name, pkgID: fi.dir, fi: fi, fd: fd, id: len(cg.nodes)}
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				n.recv = typeBaseName(fd.Recv.List[0].Type)
			}
			member := n.bare
			if n.recv != "" {
				member = n.recv + "." + n.bare
				cg.methods[member] = append(cg.methods[member], n)
			} else {
				cg.pkgFunc[n.pkgID+"::"+n.bare] = n
			}
			n.key = n.pkgID + "::" + member
			n.display = fi.f.Name.Name + "." + member
			n.entry = entryPointReason(a, fi, fd)
			cg.nodes = append(cg.nodes, n)
			cg.byBare[n.bare] = append(cg.byBare[n.bare], n)
			cg.byDecl[fd] = n
			if cg.byKey[n.key] == nil {
				cg.byKey[n.key] = n
			}
		}
	}

	// Pass 2: per-node analysis state (type environments). newFuncAnalysis
	// reads cg.byDecl, so the node back-pointer lands on fa.node.
	for _, n := range cg.nodes {
		n.fa = newFuncAnalysis(a, n.fi, n.fd)
	}

	// Pass 3: edges. Closures are included in the walk — they may run
	// synchronously inside the declaring function, and for summaries and
	// lock sets the conservative direction is to count their calls. Go
	// statements split the walk: their subtrees contribute async edges
	// (reachability, invalidation) but not sync ones (lock order).
	for _, n := range cg.nodes {
		seen := map[int]bool{}
		addEdges := func(root ast.Node, sync bool) []*ast.GoStmt {
			var gos []*ast.GoStmt
			ast.Inspect(root, func(x ast.Node) bool {
				if g, ok := x.(*ast.GoStmt); ok && sync {
					gos = append(gos, g)
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, key := range n.fa.calleeCandidates(call) {
					if m := cg.byKey[key]; m != nil && !seen[m.id] {
						seen[m.id] = true
						n.callees = append(n.callees, m.id)
						cg.edgeCount++
					}
					if m := cg.byKey[key]; m != nil && sync {
						n.syncCallees = appendUnique(n.syncCallees, m.id)
					}
				}
				return true
			})
			return gos
		}
		pending := addEdges(n.fd.Body, true)
		for len(pending) > 0 {
			g := pending[0]
			pending = pending[1:]
			addEdges(g.Call, false) // nested go statements stay async
		}
	}

	cg.computeSCCs()
	a.stats.CallNodes = len(cg.nodes)
	a.stats.CallEdges = cg.edgeCount
	a.stats.CallSCCs = len(cg.sccs)
}

// entryPointReason classifies fd as a PL015 entry point: a recovery
// path by naming convention, or an explicit //persistlint:entrypoint
// declaration in the doc comment.
func entryPointReason(a *Analyzer, fi *fileInfo, fd *ast.FuncDecl) string {
	if strings.HasPrefix(strings.ToLower(fd.Name.Name), "recover") {
		return "recovery"
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "persistlint:entrypoint"); ok {
				label := strings.TrimSpace(rest)
				if label == "" {
					label = "declared"
				}
				return label
			}
		}
	}
	return ""
}

// calleeCandidates resolves one call expression to the keys of every
// analyzed function it may invoke (nil when the callee is certainly
// outside the analyzed set — a builtin, the stdlib, a closure value).
func (fa *funcAnalysis) calleeCandidates(call *ast.CallExpr) []string {
	cg := fa.an.cg
	if cg == nil {
		return nil
	}
	switch f := call.Fun.(type) {
	case *ast.Ident:
		// A bare call names a same-package function or nothing we can
		// see; fall back to the bare set so dot-import-like shapes keep
		// the old conservative semantics.
		if fa.node != nil {
			if n := cg.pkgFunc[fa.node.pkgID+"::"+f.Name]; n != nil {
				return []string{n.key}
			}
		}
		return bareKeys(cg, f.Name)
	case *ast.SelectorExpr:
		name := f.Sel.Name
		// pkg.Fn through an import of an analyzed package: exact, and an
		// unknown function in a resolved package is exact-nothing.
		if id, ok := f.X.(*ast.Ident); ok && !fa.isLocalName(id.Name) {
			if pkgID, ok := fa.fi.importPkg[id.Name]; ok {
				if n := cg.pkgFunc[pkgID+"::"+name]; n != nil {
					return []string{n.key}
				}
				return nil
			}
		}
		// Receiver-type-qualified method resolution.
		if t := fa.typeOf(f.X); t != "" {
			if ns := cg.methods[t+"."+name]; len(ns) > 0 {
				return nodeKeys(ns)
			}
		}
		return bareKeys(cg, name)
	}
	return nil
}

// isLocalName reports whether the identifier is a value in this
// function's scope (so x.M is a method call, not a package selector).
func (fa *funcAnalysis) isLocalName(name string) bool {
	return fa.threads[name] || fa.handles[name] || fa.addrs[name] ||
		fa.varTypes[name] != "" || fa.muOwners[name] != ""
}

func appendUnique(xs []int, id int) []int {
	for _, x := range xs {
		if x == id {
			return xs
		}
	}
	return append(xs, id)
}

func nodeKeys(ns []*funcNode) []string {
	out := make([]string, 0, len(ns))
	for _, n := range ns {
		out = append(out, n.key)
	}
	sort.Strings(out)
	return out
}

func bareKeys(cg *callGraph, name string) []string {
	return nodeKeys(cg.byBare[name])
}

// computeSCCs runs Tarjan's algorithm. Components are appended as they
// complete, which is exactly callee-first order for the condensation:
// every SCC reachable from component i sits at an index < i.
func (cg *callGraph) computeSCCs() {
	n := len(cg.nodes)
	cg.sccOf = make([]int, n)
	for i := range cg.sccOf {
		cg.sccOf[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan: frame.ci is the next callee edge to examine.
	type frame struct{ v, ci int }
	var strongconnect func(root int)
	strongconnect = func(root int) {
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			advanced := false
			for fr.ci < len(cg.nodes[v].callees) {
				w := cg.nodes[v].callees[fr.ci]
				fr.ci++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []*funcNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					cg.sccOf[w] = len(cg.sccs)
					comp = append(comp, cg.nodes[w])
					if w == v {
						break
					}
				}
				cg.sccs = append(cg.sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if index[i] == -1 {
			strongconnect(i)
		}
	}
}

// inSameSCC reports whether the two node ids share a component.
func (cg *callGraph) inSameSCC(a, b int) bool { return cg.sccOf[a] == cg.sccOf[b] }

// DirEdges projects the call graph onto package directories: one edge
// per (caller dir, callee dir) pair that crosses directories, plus one
// per import of an analyzed package. cmd/persistlint's cache closes
// over these to decide which packages a changed file invalidates.
func (a *Analyzer) DirEdges() [][2]string {
	seen := map[[2]string]bool{}
	var out [][2]string
	add := func(from, to string) {
		if from == to {
			return
		}
		e := [2]string{from, to}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	if a.cg != nil {
		for _, n := range a.cg.nodes {
			for _, c := range n.callees {
				add(n.pkgID, a.cg.nodes[c].pkgID)
			}
		}
	}
	for _, fi := range a.files {
		for _, pkgID := range fi.importPkg {
			add(fi.dir, pkgID)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// resolveImports maps every file's import local names to analyzed
// package directories, once all files are added. An import path matches
// a directory when the cleaned dir path is a suffix of the import path
// (module-prefix stripping), or when exactly one analyzed package has
// the path's base as its package name.
func (a *Analyzer) resolveImports() {
	// package name → dirs declaring it; dir slash-path set.
	byName := map[string]map[string]bool{}
	dirs := map[string]bool{}
	for _, fi := range a.files {
		dirs[fi.dir] = true
		if byName[fi.f.Name.Name] == nil {
			byName[fi.f.Name.Name] = map[string]bool{}
		}
		byName[fi.f.Name.Name][fi.dir] = true
	}
	resolve := func(p string) string {
		// Longest suffix match wins (both "b" and "a/b" can match "x/a/b");
		// ties cannot happen since dir paths are unique.
		best := ""
		for d := range dirs {
			if p == d || strings.HasSuffix(p, "/"+strings.TrimPrefix(d, "./")) {
				if len(d) > len(best) || (len(d) == len(best) && d < best) {
					best = d
				}
			}
		}
		if best != "" {
			return best
		}
		if ds := byName[path.Base(p)]; len(ds) == 1 {
			for d := range ds {
				return d
			}
		}
		return ""
	}
	for _, fi := range a.files {
		fi.importPkg = map[string]string{}
		for _, imp := range fi.f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			local := path.Base(p)
			if imp.Name != nil {
				local = imp.Name.Name
			}
			if local == "_" || local == "." {
				continue
			}
			if d := resolve(p); d != "" {
				fi.importPkg[local] = d
			}
		}
	}
}
