package persist

// escape.go implements the PL013 escape-site detection: a pmem.Addr —
// or its uint64(addr) image — flowing into a heap structure (a field
// assignment), over a channel, or across a goroutine boundary while
// the data behind it has an open persist obligation. PL005 polices the
// same hazard for pointers published INTO PM; PL013 is its
// cross-goroutine/DRAM-side twin: once the address is reachable from
// another goroutine or a longer-lived structure, readers can chase it
// to bytes a crash may throw away.
//
// The detection is field-sensitive through rendered address
// expressions: a Store/WriteRange to `leaf.next` opens a dirty fact
// keyed "leaf.next", and only an escape of that same rendering (or of
// a whole identifier the rendering mentions) matches it. The dirty
// facts ride the obligation dataflow as obDirty entries (dataflow.go):
// Fence/Persist on the thread clears them, a covering callee summary
// clears them, entering an eADR region clears them, and rebinding the
// address variable kills the stale rendering.
//
// Sinks deliberately exclude plain call arguments (passing an address
// down a call chain is the normal shape of every write path) and
// local slice appends (split paths collect unreachable-but-unfenced
// leaves on purpose); a field assignment, a channel send, and a
// goroutine crossing are the shapes that outlive the fence the caller
// still owes.

import (
	"go/ast"
)

// escapeEvents lowers one assignment statement's address escapes: for
// every RHS whose value contains a PM address (or uint64 of one)
// assigned to a field or element sink, one evEscape per escaping
// rendering.
func (fa *funcAnalysis) escapeEvents(as *ast.AssignStmt) []event {
	var out []event
	emit := func(sink ast.Expr, rhs ast.Expr) {
		desc := renderExpr(sink)
		for _, r := range fa.addrRenders(rhs) {
			out = append(out, event{
				pos:     rhs.Pos(),
				kind:    evEscape,
				addrKey: r,
				escKind: "heap structure",
				escDesc: desc,
			})
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				emit(lhs, as.Rhs[i])
			}
		}
	}
	return out
}

// sendEscapeEvents lowers a channel send of a PM address.
func (fa *funcAnalysis) sendEscapeEvents(s *ast.SendStmt) []event {
	var out []event
	desc := renderExpr(s.Chan)
	for _, r := range fa.addrRenders(s.Value) {
		out = append(out, event{
			pos:     s.Value.Pos(),
			kind:    evEscape,
			addrKey: r,
			escKind: "channel",
			escDesc: desc,
		})
	}
	return out
}

// goEscapeEvents lowers the PM addresses crossing a go statement:
// addresses passed as call arguments, and address identifiers captured
// by a closure literal (its own parameters and local declarations
// excluded).
func (fa *funcAnalysis) goEscapeEvents(x *ast.GoStmt) []event {
	var out []event
	for _, arg := range x.Call.Args {
		for _, r := range fa.addrRenders(arg) {
			out = append(out, event{
				pos:     arg.Pos(),
				kind:    evEscape,
				addrKey: r,
				escKind: "goroutine",
				escDesc: renderExpr(x.Call.Fun),
			})
		}
	}
	if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
		local := declaredNames(lit.Body)
		for _, fld := range lit.Type.Params.List {
			for _, id := range fld.Names {
				local[id.Name] = true
			}
		}
		seen := map[string]bool{}
		for _, id := range freeIdents(lit.Body) {
			if fa.addrs[id.Name] && !local[id.Name] && !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, event{
					pos:     id.Pos(),
					kind:    evEscape,
					addrKey: id.Name,
					escKind: "goroutine",
					escDesc: "closure",
				})
			}
		}
	}
	return out
}

// addrRenders collects the stable renderings of every PM-address
// subexpression of v — bare address expressions and the payloads of
// uint64(addr) conversions. Renderings involving calls are dropped:
// they may name a different address each evaluation, so a dirty fact
// keyed on them could never be matched soundly.
func (fa *funcAnalysis) addrRenders(v ast.Expr) []string {
	seen := map[string]bool{}
	var out []string
	add := func(e ast.Expr) {
		r := renderExpr(e)
		if r == "" || r == "?" || containsCall(r) || seen[r] {
			return
		}
		seen[r] = true
		out = append(out, r)
	}
	ast.Inspect(v, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // closure bodies are separate functions
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "uint64" && len(x.Args) == 1 && fa.isAddrExpr(x.Args[0]) {
				add(x.Args[0])
				return false
			}
		case *ast.Ident:
			if fa.addrs[x.Name] {
				add(x)
			}
		case *ast.SelectorExpr:
			if fa.an.addrFields[x.Sel.Name] {
				add(x)
				return false
			}
		}
		return true
	})
	return out
}

func containsCall(render string) bool {
	for i := 0; i < len(render); i++ {
		if render[i] == '(' {
			return true
		}
	}
	return false
}
