package persist

// dataflow.go runs two forward may-analyses over a function's CFG.
//
// Obligations: a Store/WriteRange opens a flush obligation on its
// thread; a Flush discharges stores and opens a fence obligation; a
// Fence discharges flushes; Persist discharges both. The analysis is
// path-sensitive at the branching level — join is set union — so an
// obligation still open on ANY path reaching the function exit is a
// finding (PL001/PL002), which makes early returns, divergent
// branches, and loop back edges sound where the old position-ordered
// check was not. Obligations are per thread key and address-
// insensitive (any Flush on the thread discharges its stores), which
// matches how the batched leaf-flush code is written.
//
// Held locks: an acquire of a declared class while any held class has
// equal or higher rank is a PL006 inversion. Deferred unlocks are
// ignored — a lock held to return cannot invert anything after the
// last acquire.

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Obligation kinds.
const (
	obStore = iota // awaiting Flush/Persist → PL001 if it survives
	obFlush        // awaiting Fence/Persist → PL002 if it survives
	obScope        // PushScope awaiting PopScope → PL012 if it survives
	obSeq          // seqlock version load awaiting its re-check → PL010
	obDirty        // an address stored to, not yet fenced → PL013 if it escapes
)

// obl is one open obligation. Seeds used for interprocedural summaries
// carry negative origins and are never reported. For obDirty the
// method field carries the rendered address expression — the identity
// an escape site must match — and the fact is never reported at exit
// (an address may stay dirty to return on purpose; only escaping while
// dirty is the defect).
type obl struct {
	origin token.Pos
	key    string
	kind   int
	method string // Store/WriteRange/Flush for the message; obDirty: address rendering
}

type oblSet map[obl]struct{}

func (s oblSet) clone() oblSet {
	out := make(oblSet, len(s))
	for o := range s {
		out[o] = struct{}{}
	}
	return out
}

// addAll unions src into dst, reporting whether dst grew.
func (dst oblSet) addAll(src oblSet) bool {
	grew := false
	for o := range src {
		if _, ok := dst[o]; !ok {
			dst[o] = struct{}{}
			grew = true
		}
	}
	return grew
}

func (s oblSet) killKey(key string, kind int) {
	for o := range s {
		if o.key == key && o.kind == kind {
			delete(s, o)
		}
	}
}

// applyObl is the transfer function for one event. report, when
// non-nil, receives PL005 publish-before-persist hits.
func (fa *funcAnalysis) applyObl(s oblSet, e event, report func(code string, pos token.Pos, msg string)) {
	switch e.kind {
	case evStore:
		if e.publish && report != nil {
			var hit *obl
			for o := range s {
				if o.key == e.key && (o.kind == obStore || o.kind == obFlush) {
					if hit == nil || o.origin < hit.origin || (o.origin == hit.origin && o.method < hit.method) {
						oo := o
						hit = &oo
					}
				}
			}
			if hit != nil {
				report(CodePublishBeforePersist, e.pos, fmt.Sprintf(
					"%s.Store publishes a PM pointer while an earlier %s on %s is not yet fenced: a crash exposes reachable-but-unpersisted data; fence the data before the publish", e.key, hit.method, e.key))
			}
		}
		s[obl{origin: e.pos, key: e.key, kind: obStore, method: e.method}] = struct{}{}
		if e.addrKey != "" {
			s[obl{origin: e.pos, key: e.key, kind: obDirty, method: e.addrKey}] = struct{}{}
		}
	case evFlush:
		s.killKey(e.key, obStore)
		s[obl{origin: e.pos, key: e.key, kind: obFlush, method: "Flush"}] = struct{}{}
	case evFence:
		s.killKey(e.key, obFlush)
		s.killKey(e.key, obDirty)
	case evPersist:
		s.killKey(e.key, obStore)
		s.killKey(e.key, obFlush)
		s.killKey(e.key, obDirty)
	case evEADR:
		// Inside the eADR persistence domain stores are durable at
		// retirement: nothing on this path needs flushing. Scope and
		// seqlock obligations are not persistence state and survive.
		for o := range s {
			if o.kind == obStore || o.kind == obFlush || o.kind == obDirty {
				delete(s, o)
			}
		}
	case evScopePush:
		s[obl{origin: e.pos, key: e.key, kind: obScope, method: "PushScope"}] = struct{}{}
	case evScopePop:
		s.killKey(e.key, obScope)
	case evSeqBegin:
		s.killKey(e.key, obSeq) // a fresh load supersedes the prior session
		s[obl{origin: e.pos, key: e.key, kind: obSeq, method: "Load"}] = struct{}{}
	case evSeqRecheck:
		s.killKey(e.key, obSeq)
	case evSeqValid:
		// A write-in-progress test on the saved version splits the
		// protocol: the invalid path bails without reading data and owes
		// no re-check. Events are path-insensitive, so the test excuses
		// both edges — the re-check's existence is still enforced
		// syntactically by checkSeqlock.
		for o := range s {
			if o.kind == obSeq && strings.HasSuffix(o.key, "|"+e.key) {
				delete(s, o)
			}
		}
	case evKillVar:
		// A seqlock session keyed on a rebound variable (loop iteration
		// rebinding the slot or the saved version) cannot be re-checked
		// any more — and demanding a re-check of a dead binding would be
		// a false positive on every early loop exit. A dirty fact whose
		// rendering mentions the rebound variable names a different
		// address now and is likewise dropped.
		for o := range s {
			if o.kind == obSeq && keyMentionsIdent(o.key, e.key) {
				delete(s, o)
			}
			if o.kind == obDirty && keyMentionsIdent(o.method, e.key) {
				delete(s, o)
			}
		}
	case evEscape:
		if report == nil {
			return
		}
		for o := range s {
			if o.kind == obDirty && dirtyMatches(o.method, e.addrKey) {
				report(CodeEscapeBeforePersist, e.pos, fmt.Sprintf(
					"PM address %s flows into %s %s while its store on %s is not yet fenced: whoever receives it can chase the address to bytes a crash throws away; persist before publishing the address", e.addrKey, e.escKind, e.escDesc, o.key))
				break
			}
		}
	case evCall:
		sum, ok := fa.an.callSummary(e.calleeKeys)
		if !ok {
			return
		}
		for _, k := range e.threadArgs {
			if sum.coversFlush {
				s.killKey(k, obFlush)
				if sum.coversStore {
					s.killKey(k, obStore)
					s.killKey(k, obDirty)
				}
			}
		}
	}
}

// dirtyMatches reports whether an escaping address rendering reaches
// the bytes a dirty fact covers: the same rendering, or a bare
// identifier the dirty rendering dereferences through ("leaf" escaping
// reaches "leaf.next"; "eq" does not reach "s.seq").
func dirtyMatches(dirty, escaped string) bool {
	if dirty == escaped {
		return true
	}
	return !strings.Contains(escaped, ".") && keyMentionsIdent(dirty, escaped)
}

// oblFixpoint computes the set of obligations possibly open on entry
// to each node, starting from seeds at the function entry.
func (fa *funcAnalysis) oblFixpoint(g *cfg, seeds oblSet) []oblSet {
	in := make([]oblSet, len(g.nodes))
	for i := range in {
		in[i] = oblSet{}
	}
	in[g.entry.id] = seeds.clone()

	// Worklist from the entry: a node runs when first reached and again
	// whenever its in-set grows. Unreachable nodes (dead code after a
	// return or terminator call) are never processed, so their events
	// cannot leak obligations into the exit.
	reached := make([]bool, len(g.nodes))
	queued := make([]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	reached[g.entry.id] = true
	queued[g.entry.id] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.id] = false
		out := in[n.id].clone()
		for _, e := range n.events {
			fa.applyObl(out, e, nil)
		}
		for _, succ := range n.succs {
			grew := in[succ.id].addAll(out)
			if (grew || !reached[succ.id]) && !queued[succ.id] {
				reached[succ.id] = true
				queued[succ.id] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// exitResidue applies a node's own events plus the deferred events
// (LIFO) to its entry set, yielding what is still open at return.
func (fa *funcAnalysis) exitResidue(g *cfg, in []oblSet) oblSet {
	s := in[g.exit.id].clone()
	for i := len(g.deferred) - 1; i >= 0; i-- {
		fa.applyObl(s, g.deferred[i], nil)
	}
	return s
}

// checkObligations reports PL001/PL002 for obligations open at exit
// and PL005 for publishes that overtake pending obligations.
func (fa *funcAnalysis) checkObligations(g *cfg, emit func(code string, pos token.Pos, msg string)) {
	in := fa.oblFixpoint(g, oblSet{})

	// PL005: replay each node's events against its entry set. The same
	// replay records PL012 push sites for -stats.
	seen := map[token.Pos]bool{}
	report := func(code string, pos token.Pos, msg string) {
		if !seen[pos] {
			seen[pos] = true
			emit(code, pos, msg)
		}
	}
	for _, n := range g.nodes {
		s := in[n.id].clone()
		for _, e := range n.events {
			if e.kind == evScopePush {
				fa.an.scopeSites[e.pos] = true
			}
			fa.recordReadAfterPublish(s, e)
			fa.applyObl(s, e, report)
		}
	}

	// PL001/PL002: residue at exit, reported at the origin site.
	residue := fa.exitResidue(g, in)
	var open []obl
	for o := range residue {
		if o.origin.IsValid() {
			open = append(open, o)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].origin < open[j].origin })
	for _, o := range open {
		switch o.kind {
		case obStore:
			emit(CodeStoreNoPersist, o.origin, fmt.Sprintf(
				"%s.%s to PM with a path to return with no %s.Flush/Persist: the store is volatile under ADR", o.key, o.method, o.key))
		case obFlush:
			emit(CodeFlushNoFence, o.origin, fmt.Sprintf(
				"%s.Flush with a path to return with no %s.Fence/Persist: the clwb never retires", o.key, o.key))
		case obScope:
			emit(CodeScopeBalance, o.origin, fmt.Sprintf(
				"%s.PushScope with a path to return with no matching %s.PopScope (defers included): the thread leaks the scope to its next unrelated work", o.key, o.key))
		case obSeq:
			if fa.seqQualified[o.key] {
				base, _, _ := strings.Cut(o.key, "|")
				emit(CodeSeqlock, o.origin, fmt.Sprintf(
					"seqlock read of %s has a path to return that never re-checks %s.Load() against the saved version: a concurrent writer can hand this path torn data", base, base))
			}
		}
	}
}

// keyMentionsIdent reports whether ident appears as a full dotted or
// bar-separated segment of a fact key ("s.seq|seq" mentions "s" and
// "seq" but not "eq").
func keyMentionsIdent(key, ident string) bool {
	for _, part := range strings.FieldsFunc(key, func(r rune) bool { return r == '.' || r == '|' }) {
		if part == ident {
			return true
		}
	}
	return false
}

// --- lock-order analysis ------------------------------------------------

// heldSet maps lock class → position of the (earliest) live acquire.
type heldSet map[string]token.Pos

func (s heldSet) clone() heldSet {
	out := make(heldSet, len(s))
	for c, p := range s {
		out[c] = p
	}
	return out
}

func (dst heldSet) addAll(src heldSet) bool {
	grew := false
	for c, p := range src {
		if q, ok := dst[c]; !ok || p < q {
			if !ok {
				grew = true
			} else if p < q {
				grew = true
			}
			dst[c] = p
		}
	}
	return grew
}

// applyLock is the lock transfer function. check, when non-nil,
// receives (acquiring class, its position, held set, acquisition
// chain) — chain is nil for a direct or one-hop acquire (PL006) and
// the display-name call path for a deeper transitive one (PL014).
func (fa *funcAnalysis) applyLock(s heldSet, e event, check func(class string, pos token.Pos, held heldSet, chain []string)) {
	switch e.kind {
	case evLock:
		if check != nil {
			check(e.class, e.pos, s, nil)
		}
		if _, ok := s[e.class]; !ok {
			s[e.class] = e.pos
		}
	case evUnlock:
		delete(s, e.class)
	case evCall:
		if check == nil {
			return
		}
		// One hop: classes any candidate callee acquires in its own body
		// must respect the order against what we hold (PL006, as the
		// one-level engine reported it). Deeper: classes reachable only
		// through the callee's transitive closure are PL014, reported
		// with the witness call chain so the path is actionable.
		direct := map[string]bool{}
		for _, key := range e.calleeKeys {
			for _, class := range fa.an.lockDirect[key] {
				if !direct[class] {
					direct[class] = true
					check(class, e.pos, s, nil)
				}
			}
		}
		deep := map[string]bool{}
		for _, key := range e.calleeKeys {
			for _, class := range fa.an.lockTrans[key] {
				if !direct[class] && !deep[class] {
					deep[class] = true
					check(class, e.pos, s, fa.an.lockChain(key, class))
				}
			}
		}
	}
}

// lockFixpoint computes the set of lock classes possibly held on entry
// to each node. Shared by PL006 and the PL008/PL009 access collection.
func (fa *funcAnalysis) lockFixpoint(g *cfg) []heldSet {
	in := make([]heldSet, len(g.nodes))
	for i := range in {
		in[i] = heldSet{}
	}
	reached := make([]bool, len(g.nodes))
	queued := make([]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	reached[g.entry.id] = true
	queued[g.entry.id] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.id] = false
		out := in[n.id].clone()
		for _, e := range n.events {
			fa.applyLock(out, e, nil)
		}
		for _, succ := range n.succs {
			grew := in[succ.id].addAll(out)
			if (grew || !reached[succ.id]) && !queued[succ.id] {
				reached[succ.id] = true
				queued[succ.id] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// checkLockOrder reports PL006 for acquires (direct or one call away)
// that violate the declared partial order, and PL014 for acquires
// buried deeper in the call graph, with the witness chain.
func (fa *funcAnalysis) checkLockOrder(g *cfg, in []heldSet, emit func(code string, pos token.Pos, msg string)) {
	seen := map[string]bool{}
	check := func(class string, pos token.Pos, held heldSet, chain []string) {
		key := fmt.Sprintf("%d|%s", pos, class)
		if seen[key] {
			return
		}
		var worst string
		for h := range held {
			if lockRank[h] >= lockRank[class] && (worst == "" || lockRank[h] > lockRank[worst] || (lockRank[h] == lockRank[worst] && h < worst)) {
				worst = h
			}
		}
		if worst != "" {
			seen[key] = true
			if chain == nil {
				emit(CodeLockOrder, pos, fmt.Sprintf(
					"acquiring %s while holding %s inverts the declared lock order %s", class, worst, lockOrderDecl))
			} else {
				emit(CodeLockOrderGraph, pos, fmt.Sprintf(
					"this call acquires %s (via %s) while holding %s, inverting the declared lock order %s", class, strings.Join(chain, " -> "), worst, lockOrderDecl))
			}
		}
	}
	for _, n := range g.nodes {
		s := in[n.id].clone()
		for _, e := range n.events {
			fa.applyLock(s, e, check)
		}
	}
}

// --- wasted-persist must-analysis (PL011) -------------------------------

// Unlike the obligation rules (may-analysis: a defect on SOME path),
// PL011 reports only what is wasted on EVERY path: a Flush of an
// address provably not dirtied since it was last flushed, a Persist of
// an address provably clean since the last fence, and a Fence with
// provably no store or flush on its thread since the previous fence.
// The meet therefore drops any fact the joining paths disagree on, any
// call clears everything (the callee may dirty anything), and address
// identity is the rendered argument expression — a store to one
// address invalidates every other tracked address, since two renderings
// may alias.

// Per-address persistence states, in progression order.
const (
	wpDirty   = iota // stored since its last flush
	wpFlushed        // flushed, fence pending
	wpClean          // flushed and fenced, not dirtied since
)

// wpState is the must-knowledge at one program point.
type wpState struct {
	addrs      map[string]int  // rendered address → wp* state
	fenceClean map[string]bool // thread key → provably nothing since its last fence
}

func newWPState() *wpState {
	return &wpState{addrs: map[string]int{}, fenceClean: map[string]bool{}}
}

func (s *wpState) clone() *wpState {
	out := newWPState()
	for k, v := range s.addrs {
		out.addrs[k] = v
	}
	for k := range s.fenceClean {
		out.fenceClean[k] = true
	}
	return out
}

// meetWith intersects src into s, reporting whether s shrank.
func (s *wpState) meetWith(src *wpState) bool {
	shrank := false
	for k, v := range s.addrs {
		if w, ok := src.addrs[k]; !ok || w != v {
			delete(s.addrs, k)
			shrank = true
		}
	}
	for k := range s.fenceClean {
		if !src.fenceClean[k] {
			delete(s.fenceClean, k)
			shrank = true
		}
	}
	return shrank
}

// applyWP is the PL011 transfer function. report, when non-nil,
// receives the wasted-work findings.
func (fa *funcAnalysis) applyWP(s *wpState, e event, report func(code string, pos token.Pos, msg string)) {
	clearAll := func() {
		s.addrs = map[string]int{}
		s.fenceClean = map[string]bool{}
	}
	switch e.kind {
	case evStore:
		if e.addrKey == "" {
			s.addrs = map[string]int{}
		} else {
			for k := range s.addrs {
				if k != e.addrKey {
					delete(s.addrs, k) // the store may alias any of them
				}
			}
			s.addrs[e.addrKey] = wpDirty
		}
		delete(s.fenceClean, e.key)
	case evFlush:
		if e.addrKey != "" {
			if st, ok := s.addrs[e.addrKey]; ok && st != wpDirty && report != nil {
				report(CodeWastedPersist, e.pos, fmt.Sprintf(
					"%s.Flush(%s, ...) flushes an address provably not stored to since its last flush on every path: the clwb writes back nothing", e.key, e.addrKey))
			}
			s.addrs[e.addrKey] = wpFlushed
		}
		delete(s.fenceClean, e.key)
	case evFence:
		if s.fenceClean[e.key] && report != nil {
			report(CodeWastedPersist, e.pos, fmt.Sprintf(
				"%s.Fence with provably no %s.Store/Flush since the previous fence on every path: the sfence orders nothing", e.key, e.key))
		}
		for k, st := range s.addrs {
			if st == wpFlushed {
				s.addrs[k] = wpClean
			}
		}
		s.fenceClean[e.key] = true
	case evPersist:
		if e.addrKey != "" {
			if st, ok := s.addrs[e.addrKey]; ok && st == wpClean && report != nil {
				report(CodeWastedPersist, e.pos, fmt.Sprintf(
					"%s.Persist(%s, ...) persists an address provably clean since the last fence on every path: both the clwb and the sfence are wasted", e.key, e.addrKey))
			}
			s.addrs[e.addrKey] = wpClean
		}
		for k, st := range s.addrs {
			if st == wpFlushed {
				s.addrs[k] = wpClean
			}
		}
		s.fenceClean[e.key] = true
	case evCall, evEADR:
		clearAll()
	case evKillVar:
		for k := range s.addrs {
			if keyMentionsIdent(k, e.key) {
				delete(s.addrs, k)
			}
		}
	}
}

// checkWastedPersist runs the must-analysis to fixpoint, then replays
// each node once to report. Deferred events are replayed at exit so a
// `defer t.Persist(...)` after an inline persist of the same address is
// caught too.
func (fa *funcAnalysis) checkWastedPersist(g *cfg, emit func(code string, pos token.Pos, msg string)) {
	if fa.an.disabled[CodeWastedPersist] {
		return
	}
	in := make([]*wpState, len(g.nodes)) // nil = not yet reached
	in[g.entry.id] = newWPState()
	queued := make([]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	queued[g.entry.id] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.id] = false
		out := in[n.id].clone()
		for _, e := range n.events {
			fa.applyWP(out, e, nil)
		}
		for _, succ := range n.succs {
			changed := false
			if in[succ.id] == nil {
				in[succ.id] = out.clone()
				changed = true
			} else if in[succ.id].meetWith(out) {
				changed = true
			}
			if changed && !queued[succ.id] {
				queued[succ.id] = true
				work = append(work, succ)
			}
		}
	}

	seen := map[token.Pos]bool{}
	report := func(code string, pos token.Pos, msg string) {
		if !seen[pos] {
			seen[pos] = true
			emit(code, pos, msg)
		}
	}
	for _, n := range g.nodes {
		if in[n.id] == nil {
			continue
		}
		s := in[n.id].clone()
		for _, e := range n.events {
			fa.applyWP(s, e, report)
		}
	}
	if s := in[g.exit.id]; s != nil {
		s = s.clone()
		for i := len(g.deferred) - 1; i >= 0; i-- {
			fa.applyWP(s, g.deferred[i], report)
		}
	}
}
