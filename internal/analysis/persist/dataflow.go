package persist

// dataflow.go runs two forward may-analyses over a function's CFG.
//
// Obligations: a Store/WriteRange opens a flush obligation on its
// thread; a Flush discharges stores and opens a fence obligation; a
// Fence discharges flushes; Persist discharges both. The analysis is
// path-sensitive at the branching level — join is set union — so an
// obligation still open on ANY path reaching the function exit is a
// finding (PL001/PL002), which makes early returns, divergent
// branches, and loop back edges sound where the old position-ordered
// check was not. Obligations are per thread key and address-
// insensitive (any Flush on the thread discharges its stores), which
// matches how the batched leaf-flush code is written.
//
// Held locks: an acquire of a declared class while any held class has
// equal or higher rank is a PL006 inversion. Deferred unlocks are
// ignored — a lock held to return cannot invert anything after the
// last acquire.

import (
	"fmt"
	"go/token"
	"sort"
)

// Obligation kinds.
const (
	obStore = iota // awaiting Flush/Persist → PL001 if it survives
	obFlush        // awaiting Fence/Persist → PL002 if it survives
)

// obl is one open obligation. Seeds used for interprocedural summaries
// carry negative origins and are never reported.
type obl struct {
	origin token.Pos
	key    string
	kind   int
	method string // Store/WriteRange/Flush, for the message
}

type oblSet map[obl]struct{}

func (s oblSet) clone() oblSet {
	out := make(oblSet, len(s))
	for o := range s {
		out[o] = struct{}{}
	}
	return out
}

// addAll unions src into dst, reporting whether dst grew.
func (dst oblSet) addAll(src oblSet) bool {
	grew := false
	for o := range src {
		if _, ok := dst[o]; !ok {
			dst[o] = struct{}{}
			grew = true
		}
	}
	return grew
}

func (s oblSet) killKey(key string, kind int) {
	for o := range s {
		if o.key == key && o.kind == kind {
			delete(s, o)
		}
	}
}

// applyObl is the transfer function for one event. report, when
// non-nil, receives PL005 publish-before-persist hits.
func (fa *funcAnalysis) applyObl(s oblSet, e event, report func(code string, pos token.Pos, msg string)) {
	switch e.kind {
	case evStore:
		if e.publish && report != nil {
			for o := range s {
				if o.key == e.key {
					report(CodePublishBeforePersist, e.pos, fmt.Sprintf(
						"%s.Store publishes a PM pointer while an earlier %s on %s is not yet fenced: a crash exposes reachable-but-unpersisted data; fence the data before the publish", e.key, o.method, e.key))
					break
				}
			}
		}
		s[obl{origin: e.pos, key: e.key, kind: obStore, method: e.method}] = struct{}{}
	case evFlush:
		s.killKey(e.key, obStore)
		s[obl{origin: e.pos, key: e.key, kind: obFlush, method: "Flush"}] = struct{}{}
	case evFence:
		s.killKey(e.key, obFlush)
	case evPersist:
		s.killKey(e.key, obStore)
		s.killKey(e.key, obFlush)
	case evEADR:
		// Inside the eADR persistence domain stores are durable at
		// retirement: nothing on this path needs flushing.
		for o := range s {
			delete(s, o)
		}
	case evCall:
		sum, ok := fa.an.summaries[e.callee]
		if !ok {
			return
		}
		for _, k := range e.threadArgs {
			if sum.coversFlush {
				s.killKey(k, obFlush)
				if sum.coversStore {
					s.killKey(k, obStore)
				}
			}
		}
	}
}

// oblFixpoint computes the set of obligations possibly open on entry
// to each node, starting from seeds at the function entry.
func (fa *funcAnalysis) oblFixpoint(g *cfg, seeds oblSet) []oblSet {
	in := make([]oblSet, len(g.nodes))
	for i := range in {
		in[i] = oblSet{}
	}
	in[g.entry.id] = seeds.clone()

	// Worklist from the entry: a node runs when first reached and again
	// whenever its in-set grows. Unreachable nodes (dead code after a
	// return or terminator call) are never processed, so their events
	// cannot leak obligations into the exit.
	reached := make([]bool, len(g.nodes))
	queued := make([]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	reached[g.entry.id] = true
	queued[g.entry.id] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.id] = false
		out := in[n.id].clone()
		for _, e := range n.events {
			fa.applyObl(out, e, nil)
		}
		for _, succ := range n.succs {
			grew := in[succ.id].addAll(out)
			if (grew || !reached[succ.id]) && !queued[succ.id] {
				reached[succ.id] = true
				queued[succ.id] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// exitResidue applies a node's own events plus the deferred events
// (LIFO) to its entry set, yielding what is still open at return.
func (fa *funcAnalysis) exitResidue(g *cfg, in []oblSet) oblSet {
	s := in[g.exit.id].clone()
	for i := len(g.deferred) - 1; i >= 0; i-- {
		fa.applyObl(s, g.deferred[i], nil)
	}
	return s
}

// checkObligations reports PL001/PL002 for obligations open at exit
// and PL005 for publishes that overtake pending obligations.
func (fa *funcAnalysis) checkObligations(g *cfg, emit func(code string, pos token.Pos, msg string)) {
	in := fa.oblFixpoint(g, oblSet{})

	// PL005: replay each node's events against its entry set.
	seen := map[token.Pos]bool{}
	report := func(code string, pos token.Pos, msg string) {
		if !seen[pos] {
			seen[pos] = true
			emit(code, pos, msg)
		}
	}
	for _, n := range g.nodes {
		s := in[n.id].clone()
		for _, e := range n.events {
			fa.applyObl(s, e, report)
		}
	}

	// PL001/PL002: residue at exit, reported at the origin site.
	residue := fa.exitResidue(g, in)
	var open []obl
	for o := range residue {
		if o.origin.IsValid() {
			open = append(open, o)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].origin < open[j].origin })
	for _, o := range open {
		switch o.kind {
		case obStore:
			emit(CodeStoreNoPersist, o.origin, fmt.Sprintf(
				"%s.%s to PM with a path to return with no %s.Flush/Persist: the store is volatile under ADR", o.key, o.method, o.key))
		case obFlush:
			emit(CodeFlushNoFence, o.origin, fmt.Sprintf(
				"%s.Flush with a path to return with no %s.Fence/Persist: the clwb never retires", o.key, o.key))
		}
	}
}

// --- lock-order analysis ------------------------------------------------

// heldSet maps lock class → position of the (earliest) live acquire.
type heldSet map[string]token.Pos

func (s heldSet) clone() heldSet {
	out := make(heldSet, len(s))
	for c, p := range s {
		out[c] = p
	}
	return out
}

func (dst heldSet) addAll(src heldSet) bool {
	grew := false
	for c, p := range src {
		if q, ok := dst[c]; !ok || p < q {
			if !ok {
				grew = true
			} else if p < q {
				grew = true
			}
			dst[c] = p
		}
	}
	return grew
}

// applyLock is the lock transfer function. check, when non-nil,
// receives (acquiring class, its position, held set) for PL006.
func (fa *funcAnalysis) applyLock(s heldSet, e event, check func(class string, pos token.Pos, held heldSet)) {
	switch e.kind {
	case evLock:
		if check != nil {
			check(e.class, e.pos, s)
		}
		if _, ok := s[e.class]; !ok {
			s[e.class] = e.pos
		}
	case evUnlock:
		delete(s, e.class)
	case evCall:
		if check == nil {
			return
		}
		// One-level interprocedural: classes the callee acquires
		// directly must also respect the order against what we hold.
		for _, class := range fa.an.lockSums[e.callee] {
			check(class, e.pos, s)
		}
	}
}

// checkLockOrder reports PL006 for acquires (direct or through a
// called function's summary) that violate the declared partial order.
func (fa *funcAnalysis) checkLockOrder(g *cfg, emit func(code string, pos token.Pos, msg string)) {
	in := make([]heldSet, len(g.nodes))
	for i := range in {
		in[i] = heldSet{}
	}
	reached := make([]bool, len(g.nodes))
	queued := make([]bool, len(g.nodes))
	work := []*cfgNode{g.entry}
	reached[g.entry.id] = true
	queued[g.entry.id] = true
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n.id] = false
		out := in[n.id].clone()
		for _, e := range n.events {
			fa.applyLock(out, e, nil)
		}
		for _, succ := range n.succs {
			grew := in[succ.id].addAll(out)
			if (grew || !reached[succ.id]) && !queued[succ.id] {
				reached[succ.id] = true
				queued[succ.id] = true
				work = append(work, succ)
			}
		}
	}

	seen := map[token.Pos]bool{}
	check := func(class string, pos token.Pos, held heldSet) {
		if seen[pos] {
			return
		}
		var worst string
		for h := range held {
			if lockRank[h] >= lockRank[class] && (worst == "" || lockRank[h] > lockRank[worst] || (lockRank[h] == lockRank[worst] && h < worst)) {
				worst = h
			}
		}
		if worst != "" {
			seen[pos] = true
			emit(CodeLockOrder, pos, fmt.Sprintf(
				"acquiring %s while holding %s inverts the declared lock order %s", class, worst, lockOrderDecl))
		}
	}
	for _, n := range g.nodes {
		s := in[n.id].clone()
		for _, e := range n.events {
			fa.applyLock(s, e, check)
		}
	}
}
