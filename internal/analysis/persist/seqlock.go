package persist

// seqlock.go implements the syntactic half of PL010, the seqlock
// read-protocol rule. A seqlock reader must (1) load the version
// counter, (2) bail out when the loaded value marks a write in
// progress (odd value, or zero for slots that publish 0 while being
// written), (3) read the data, and (4) re-load the counter and compare
// it to the saved value, retrying on mismatch. Skipping (2) reads a
// slot mid-write; skipping (4) returns torn data whenever a writer
// raced the reads.
//
// The division of labor: this file checks, per read session, that a
// validity test on the saved version and a re-check comparison exist
// AT ALL in the function — pure existence, no paths — and marks the
// sessions that do have a re-check as "qualified". The obligation
// dataflow (obSeq in dataflow.go) then proves the stronger property
// for qualified sessions: the re-check is reached on EVERY path from
// the load to a return, so an early return between the data reads and
// the re-check is still caught. Sessions whose variables are rebound
// by a loop iteration are excused by evKillVar — a reader that skips
// an invalid slot and moves to the next one owes the dead binding
// nothing.
//
// Version fields are recognized globally: typed sync/atomic fields
// named "version" or "seq", plus any field annotated
// //persistlint:seqlock on its declaration line (or the line above).

import (
	"fmt"
	"go/ast"
	"go/token"
)

// seqSession is one version-load site found in a function body.
type seqSession struct {
	pos  token.Pos
	base string // rendered X.f of the version field
	v    string // the identifier the load is saved into
}

// checkSeqlock finds every seqlock read session in the body, reports
// the sessions missing a validity test or any re-check, and fills
// fa.seqQualified for the dataflow's every-path check. Nested function
// literals are excluded — they are sessions of their own analyses.
func (fa *funcAnalysis) checkSeqlock(emit func(code string, pos token.Pos, msg string)) {
	fa.seqQualified = map[string]bool{}
	if len(fa.an.seqFields) == 0 {
		return
	}

	var sessions []seqSession
	tested := map[string]bool{}    // v identifiers with a validity test
	rechecked := map[string]bool{} // base|v keys with a re-check (compare or CAS)
	returned := map[string]bool{}  // v identifiers handed to the caller
	fa.inspectOwnBody(func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return
			}
			for i, rhs := range x.Rhs {
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if base, ok := fa.seqLoadBase(rhs); ok {
					sessions = append(sessions, seqSession{pos: rhs.Pos(), base: base, v: id.Name})
				}
			}
		case *ast.BinaryExpr:
			if e, ok := fa.seqRecheckEvent(x); ok {
				rechecked[e.key] = true
				return
			}
			if v, ok := validityTestVar(x); ok {
				tested[v] = true
			}
		case *ast.CallExpr:
			if e, ok := fa.seqCASEvent(x); ok {
				rechecked[e.key] = true
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := r.(*ast.Ident); ok {
					returned[id.Name] = true
				}
			}
		}
	})

	for _, ss := range sessions {
		fa.an.seqSites[ss.pos] = true
		if k := fa.nodeKey(); k != "" {
			fa.an.seqFns[k] = true // optimistic-read entry point for PL015
		}
		key := ss.base + "|" + ss.v
		switch {
		case returned[ss.v]:
			// The saved version escapes to the caller: the re-check
			// obligation transfers with it (begin/end read-session APIs).
		case !rechecked[key]:
			emit(CodeSeqlock, ss.pos, fmt.Sprintf(
				"seqlock read of %s is never re-checked: compare %s.Load() against %s after the data reads and retry on mismatch", ss.base, ss.base, ss.v))
		case !tested[ss.v]:
			emit(CodeSeqlock, ss.pos, fmt.Sprintf(
				"seqlock read of %s never tests %s for a write in progress (odd or zero value) before using the data", ss.base, ss.v))
			fa.seqQualified[key] = true // the re-check exists; still dataflow-check it
		default:
			fa.seqQualified[key] = true
		}
	}
}

// inspectOwnBody walks the analyzed body, skipping nested function
// literals (each is analyzed as a function of its own).
func (fa *funcAnalysis) inspectOwnBody(visit func(ast.Node)) {
	first := true
	ast.Inspect(fa.body, func(n ast.Node) bool {
		if first {
			first = false
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// validityTestVar recognizes a write-in-progress test on a saved
// version value: a comparison of v (or v&1, v%2) against an integer
// literal — `v == 0`, `v&1 != 0`, `v%2 == 1`, in either operand order.
func validityTestVar(x *ast.BinaryExpr) (string, bool) {
	switch x.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return "", false
	}
	try := func(varSide, litSide ast.Expr) (string, bool) {
		if _, ok := litSide.(*ast.BasicLit); !ok {
			return "", false
		}
		switch e := varSide.(type) {
		case *ast.Ident:
			return e.Name, true
		case *ast.BinaryExpr:
			if e.Op == token.AND || e.Op == token.REM {
				if id, ok := e.X.(*ast.Ident); ok {
					if _, lit := e.Y.(*ast.BasicLit); lit {
						return id.Name, true
					}
				}
			}
		case *ast.ParenExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				return id.Name, true
			}
		}
		return "", false
	}
	if v, ok := try(x.X, x.Y); ok {
		return v, true
	}
	return try(x.Y, x.X)
}
