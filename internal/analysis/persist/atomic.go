package persist

// atomic.go implements PL008, atomic-consistency: a struct field that
// is accessed through the functional sync/atomic API anywhere in the
// analyzed set (atomic.LoadUint64(&x.f), atomic.StoreUint64(&x.f[i], v),
// ...) must never be read or written plainly elsewhere — a plain load
// can observe a torn or stale value and the race detector only catches
// the schedules it happens to see. The one sanctioned exception is an
// access the held-set dataflow proves runs under the field's guard
// (declared via //persistlint:guardedby or inferred by PL009): a
// writer that publishes with atomics but mutates under the lock is a
// coherent protocol.
//
// Typed atomics (fields declared atomic.Uint64 and friends) are out of
// scope: the type system already forbids plain access to their value.
//
// This file also owns the shared access-collection pass: every access
// to a tracked field (PL008's atomic fields plus PL009's guard
// candidates) is recorded with the lock classes held at that program
// point, by replaying each function's CFG against its held-set
// fixpoint.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// atomicFuncs are the functional sync/atomic operations whose first
// argument is &addressable; any of them marks the addressed field as
// atomic-disciplined.
var atomicFuncs = map[string]bool{
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true,
	"LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true,
	"StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"AddInt32": true, "AddInt64": true, "AddUint32": true,
	"AddUint64": true, "AddUintptr": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true,
	"SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicArgField extracts the field selector addressed by a functional
// atomic call argument: &x.f or &x.f[i] → the x.f selector.
func atomicArgField(arg ast.Expr) *ast.SelectorExpr {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	inner := un.X
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = idx.X
	}
	sel, _ := inner.(*ast.SelectorExpr)
	return sel
}

// collectAtomicUses records bare names of fields addressed by
// functional sync/atomic calls anywhere in the file.
func (a *Analyzer) collectAtomicUses(fi *fileInfo) {
	if fi.atomicName == "" {
		return
	}
	ast.Inspect(fi.f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !atomicFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != fi.atomicName {
			return true
		}
		if fieldSel := atomicArgField(call.Args[0]); fieldSel != nil {
			a.atomicFields[fieldSel.Sel.Name] = true
		}
		return true
	})
}

// buildTrackedFields computes the union of field names whose accesses
// the collection pass records: PL008's atomic fields, PL009's guard
// candidates (fields of lock-owning structs), and explicitly
// guard-declared fields. Lock fields themselves, single-owner handle
// types, and typed atomics are excluded.
func (a *Analyzer) buildTrackedFields() {
	add := func(f string) {
		if f == "" || f == "mu" {
			return
		}
		if _, isLock := uniqueLockFields[f]; isLock {
			return
		}
		if a.threadFields[f] || a.handleFields[f] || a.typedAtomicFields[f] {
			return
		}
		a.trackedFields[f] = true
	}
	for f := range a.atomicFields {
		add(f)
	}
	for typeName, locks := range a.structLocks {
		if len(locks) == 0 {
			continue
		}
		for f := range a.structFields[typeName] {
			add(f)
		}
	}
	for key := range a.guardDecls {
		if _, f, ok := strings.Cut(key, "."); ok {
			add(f)
		}
	}
}

// collectAccesses replays one function's CFG nodes against the held-set
// fixpoint, recording each tracked field access with the lock classes
// held when it executes. Runs once per analyzed body (runCFG).
func (fa *funcAnalysis) collectAccesses(g *cfg, in []heldSet) {
	seen := map[token.Pos]bool{}
	for _, n := range g.nodes {
		s := in[n.id].clone()
		for _, e := range n.events {
			if e.kind == evAccess && !seen[e.pos] {
				seen[e.pos] = true
				held := make(map[string]bool, len(s))
				for c := range s {
					held[c] = true
				}
				fa.an.accesses = append(fa.an.accesses, &fieldAccess{
					pos:    e.pos,
					fa:     fa,
					field:  e.accessField,
					owner:  e.accessOwner,
					atomic: e.accessAtomic,
					held:   held,
					ctor:   fa.ctor,
				})
			}
			fa.applyLock(s, e, nil)
		}
	}
}

// checkAtomicConsistency reports PL008 for plain accesses of fields
// that are atomic-disciplined elsewhere. Matching is owner-aware: an
// atomic access of Device.words indicts only plain accesses that
// resolve to Device.words, not the same-named DRAM snapshot field of
// another struct — and accesses whose owner the syntactic type
// resolution cannot determine are not judged at all (a false aliasing
// across structs would drown the rule in noise).
func (a *Analyzer) checkAtomicConsistency() []Finding {
	if a.disabled[CodeAtomicMix] {
		return nil
	}
	ownerAtomic := map[string]bool{} // "Type.field" accessed atomically
	for _, acc := range a.accesses {
		if acc.atomic && acc.owner != "" {
			ownerAtomic[accessKey(acc.owner, acc.field)] = true
		}
	}
	if len(ownerAtomic) == 0 {
		return nil
	}
	var out []Finding
	for _, acc := range a.accesses {
		if acc.atomic || acc.ctor || acc.owner == "" {
			continue
		}
		if !ownerAtomic[accessKey(acc.owner, acc.field)] {
			continue
		}
		if g := a.guardOf(acc.owner, acc.field); g != "" && acc.held[g] {
			continue // the field's guard is held: coherent lock+atomic protocol
		}
		msg := fmt.Sprintf("field %q is accessed with sync/atomic elsewhere; this plain access (under %s) races with those atomics — use the atomic API or hold the field's guard",
			acc.field, heldString(acc.held))
		if f, ok := acc.fa.finding(CodeAtomicMix, acc.pos, msg); ok {
			out = append(out, f)
		}
	}
	return out
}
