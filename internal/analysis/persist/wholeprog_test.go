package persist

import (
	"path/filepath"
	"testing"
)

// TestOneLevelSummariesMissWholeProgramDischarge documents why the
// summary pass iterates to a fixpoint over the call-graph SCCs. The
// one-level engine (kept behind the oneLevel knob: every summary
// computed against an empty table) sees hop1 as non-discharging —
// hop1's only discharge is a call to hop2, which has no summary yet —
// and sees the evenPersist/oddPersist pair the same way, so it reports
// the two-hop and mutually-recursive callers in wholeprog.go. The
// fixpoint credits both, while still refusing the pingLeak pair whose
// bail-out path skips the persist.
func TestOneLevelSummariesMissWholeProgramDischarge(t *testing.T) {
	run := func(oneLevel bool) map[string]bool {
		an := NewAnalyzer()
		an.oneLevel = oneLevel
		if err := an.AddFile(filepath.Join("testdata", "wholeprog.go"), nil); err != nil {
			t.Fatal(err)
		}
		leaks := map[string]bool{}
		for _, f := range an.Run() {
			if f.Code == CodeStoreNoPersist {
				leaks[f.Func] = true
			}
		}
		return leaks
	}

	fixpoint := run(false)
	if len(fixpoint) != 1 || !fixpoint["callerMutualLeak"] {
		t.Errorf("fixpoint engine: PL001 in %v, want exactly callerMutualLeak", fixpoint)
	}

	oneLevel := run(true)
	for _, fn := range []string{"callerTwoHop", "callerMutualRecursion", "callerMutualLeak"} {
		if !oneLevel[fn] {
			t.Errorf("one-level engine unexpectedly credits %s; the regression guard is dead", fn)
		}
	}
}
