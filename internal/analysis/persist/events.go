package persist

// events.go lowers AST fragments into the event stream the dataflow
// analyses consume: thread-API calls (Store/WriteRange/Flush/Fence/
// Persist), lock acquires/releases on declared classes, and plain
// calls that may discharge obligations through an interprocedural
// summary. Function literals are not lowered in place — their bodies
// run elsewhere (or never), so they are registered as sub-analyses.

import (
	"go/ast"
	"sort"
)

// extract lowers one expression or statement into events, in source
// order. Non-deferred FuncLit bodies are skipped here and queued on
// b.subs for separate analysis.
func (b *cfgBuilder) extract(root ast.Node) []event {
	var out []event
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			b.subs = append(b.subs, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if e, ok := b.fa.callEvent(call); ok {
			out = append(out, e)
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// extractDeferred lowers a deferred call into the events that run at
// function exit. `defer t.Persist(...)` yields the call's own event;
// `defer func() { ... }()` yields every event in the literal's body
// (it runs exactly once, at return, on the deferring goroutine).
func (b *cfgBuilder) extractDeferred(call *ast.CallExpr) []event {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return b.extract(lit.Body)
	}
	if e, ok := b.fa.callEvent(call); ok {
		return []event{e}
	}
	return nil
}

// callEvent classifies one call expression.
func (fa *funcAnalysis) callEvent(call *ast.CallExpr) (event, bool) {
	if key, method, ok := fa.threadCall(call); ok {
		e := event{pos: call.Pos(), key: key, method: method}
		switch method {
		case "Store":
			e.kind = evStore
			if len(call.Args) >= 2 {
				e.publish = fa.isPublishValue(call.Args[1])
			}
		case "WriteRange":
			e.kind = evStore
		case "Flush":
			e.kind = evFlush
		case "Fence":
			e.kind = evFence
		case "Persist":
			e.kind = evPersist
		default:
			return event{}, false
		}
		return e, true
	}
	if class, acquire, ok := fa.lockCall(call); ok {
		kind := evUnlock
		if acquire {
			kind = evLock
		}
		return event{pos: call.Pos(), kind: kind, class: class}, true
	}
	// Plain call: a summary site if we know the callee's bare name.
	name := calleeName(call)
	if name == "" {
		return event{}, false
	}
	e := event{pos: call.Pos(), kind: evCall, callee: name}
	for _, arg := range call.Args {
		if fa.isThreadExpr(arg) {
			e.threadArgs = append(e.threadArgs, renderExpr(arg))
		}
	}
	return e, true
}

// calleeName returns the bare name of the called function or method
// ("" for indirect calls through non-selector expressions).
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// --- PL005 publish detection -------------------------------------------

// isPublishValue reports whether a stored value contains uint64(X)
// where X is a PM address: writing such a word into PM publishes a
// pointer that makes other PM data reachable (a next-link, a root, a
// directory slot). Ordering demands that data be fenced first.
func (fa *funcAnalysis) isPublishValue(v ast.Expr) bool {
	found := false
	ast.Inspect(v, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "uint64" && fa.isAddrExpr(call.Args[0]) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAddrType reports whether the type expression denotes pmem.Addr
// (or Addr inside package pmem). Addr is a value type, never starred.
func (fi *fileInfo) isAddrType(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.pmemName != "" && id.Name == fi.pmemName && x.Sel.Name == "Addr"
	case *ast.Ident:
		return fi.inPmem && x.Name == "Addr"
	}
	return false
}

// isAddrExpr reports whether e syntactically denotes a pmem.Addr: a
// known addr identifier or field, a MakeAddr call, an .Add offset on an
// addr, or an explicit pmem.Addr conversion.
func (fa *funcAnalysis) isAddrExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isAddrExpr(x.X)
	case *ast.Ident:
		return fa.addrs[x.Name]
	case *ast.SelectorExpr:
		return fa.an.addrFields[x.Sel.Name]
	case *ast.CallExpr:
		switch f := x.Fun.(type) {
		case *ast.Ident:
			if f.Name == "MakeAddr" && fa.fi.inPmem {
				return true
			}
		case *ast.SelectorExpr:
			if f.Sel.Name == "MakeAddr" {
				return true
			}
			if f.Sel.Name == "Add" && fa.isAddrExpr(f.X) {
				return true
			}
		}
		if fa.fi.isAddrType(x.Fun) && len(x.Args) == 1 {
			return true
		}
	}
	return false
}

// collectAddrVars seeds the addr-identifier set from parameters and
// from single-value assignments whose right side is an addr expression.
func (fa *funcAnalysis) collectAddrVars() {
	fa.addrs = map[string]bool{}
	for _, fld := range fa.fn.Type.Params.List {
		if fa.fi.isAddrType(fld.Type) {
			for _, n := range fld.Names {
				fa.addrs[n.Name] = true
			}
		}
	}
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			if fa.isAddrExpr(rhs) {
				fa.addrs[id.Name] = true
			}
		}
		return true
	})
}
