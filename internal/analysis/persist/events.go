package persist

// events.go lowers AST fragments into the event stream the dataflow
// analyses consume: thread-API calls (Store/WriteRange/Flush/Fence/
// Persist), lock acquires/releases on declared classes, and plain
// calls that may discharge obligations through an interprocedural
// summary. Function literals are not lowered in place — their bodies
// run elsewhere (or never), so they are registered as sub-analyses.

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// extract lowers one expression or statement into events, in source
// order. Non-deferred FuncLit bodies are skipped here and queued on
// b.subs for separate analysis.
//
// Besides the thread-API and lock events, the walk records:
//
//   - evAccess for every selector ending in a tracked field name
//     (PL008/PL009), with atomic context marked for x.f addressed by a
//     functional sync/atomic call. Method selections (the Fun of a
//     call) and the mutex chains of lock calls are not accesses.
//   - evSeqBegin/evSeqRecheck for seqlock version loads and their
//     re-check comparisons (PL010).
//   - evKillVar for identifier rebindings, so facts keyed on a
//     variable (seqlock sessions, wasted-persist address states) do
//     not survive its reassignment.
func (b *cfgBuilder) extract(root ast.Node) []event {
	var out []event
	atomicMark := map[ast.Node]bool{}
	skipMark := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			b.subs = append(b.subs, x)
			return false
		case *ast.AssignStmt:
			out = append(out, b.fa.assignEvents(x)...)
			out = append(out, b.fa.escapeEvents(x)...)
		case *ast.SendStmt:
			out = append(out, b.fa.sendEscapeEvents(x)...)
		case *ast.IncDecStmt:
			if id, ok := x.X.(*ast.Ident); ok {
				out = append(out, event{pos: x.Pos(), kind: evKillVar, key: id.Name})
			}
		case *ast.BinaryExpr:
			if e, ok := b.fa.seqRecheckEvent(x); ok {
				out = append(out, e)
			} else if v, ok := validityTestVar(x); ok {
				out = append(out, event{pos: x.Pos(), kind: evSeqValid, key: v})
			}
		case *ast.CallExpr:
			if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
				skipMark[fun] = true // method selection, not a field access
			}
			if e, ok := b.fa.seqCASEvent(x); ok {
				out = append(out, e)
			}
			if e, ok := b.fa.callEvent(x); ok {
				out = append(out, e)
				if e.kind == evLock || e.kind == evUnlock {
					// tr.inner.mu.Lock(): reading `inner` to reach the
					// mutex is the guard acquisition itself, not a
					// judgeable access of the field.
					ast.Inspect(x.Fun, func(m ast.Node) bool {
						if s, ok := m.(*ast.SelectorExpr); ok {
							skipMark[s] = true
						}
						return true
					})
				}
			}
			if fs := b.fa.functionalAtomicField(x); fs != nil {
				atomicMark[fs] = true
			}
		case *ast.SelectorExpr:
			if skipMark[x] {
				return true // still descend: the base may contain accesses
			}
			if f := x.Sel.Name; b.fa.an.trackedFields[f] {
				out = append(out, event{
					pos:          x.Sel.Pos(),
					kind:         evAccess,
					accessField:  f,
					accessOwner:  b.fa.typeOf(x.X),
					accessAtomic: atomicMark[x],
				})
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// functionalAtomicField returns the x.f selector addressed by a
// functional sync/atomic call (atomic.StoreUint64(&x.f, v)), or nil.
func (fa *funcAnalysis) functionalAtomicField(call *ast.CallExpr) *ast.SelectorExpr {
	if fa.fi.atomicName == "" || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFuncs[fun.Sel.Name] {
		return nil
	}
	if id, ok := fun.X.(*ast.Ident); !ok || id.Name != fa.fi.atomicName {
		return nil
	}
	return atomicArgField(call.Args[0])
}

// assignEvents lowers one assignment: a kill for every rebound
// identifier (positioned at the statement start, so it precedes the
// RHS events and a fresh seqlock session opened by this very statement
// survives its own kill), and an evSeqBegin when the right side is a
// seqlock version load.
func (fa *funcAnalysis) assignEvents(as *ast.AssignStmt) []event {
	var out []event
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out = append(out, event{pos: as.Pos(), kind: evKillVar, key: id.Name})
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if base, ok := fa.seqLoadBase(rhs); ok {
				out = append(out, event{pos: rhs.Pos(), kind: evSeqBegin, key: base + "|" + id.Name})
			}
		}
	}
	return out
}

// seqLoadBase recognizes X.f.Load() where f is a seqlock version field,
// returning the rendered X.f base ("" otherwise).
func (fa *funcAnalysis) seqLoadBase(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || !fa.an.seqFields[inner.Sel.Name] {
		return "", false
	}
	return renderExpr(inner), true
}

// seqCASEvent recognizes X.f.CompareAndSwap(v, ...) on a version field
// f: the CAS validates the saved version atomically, which is the
// version-lock acquire idiom's re-check.
func (fa *funcAnalysis) seqCASEvent(call *ast.CallExpr) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "CompareAndSwap" || len(call.Args) < 1 {
		return event{}, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || !fa.an.seqFields[inner.Sel.Name] {
		return event{}, false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return event{}, false
	}
	return event{pos: call.Pos(), kind: evSeqRecheck, key: renderExpr(inner) + "|" + id.Name}, true
}

// seqRecheckEvent recognizes the seqlock re-check comparison:
// X.f.Load() ==/!= v (either operand order) for a version field f.
func (fa *funcAnalysis) seqRecheckEvent(x *ast.BinaryExpr) (event, bool) {
	if x.Op != token.EQL && x.Op != token.NEQ {
		return event{}, false
	}
	try := func(loadSide, varSide ast.Expr) (event, bool) {
		base, ok := fa.seqLoadBase(loadSide)
		if !ok {
			return event{}, false
		}
		id, ok := varSide.(*ast.Ident)
		if !ok {
			return event{}, false
		}
		return event{pos: x.Pos(), kind: evSeqRecheck, key: base + "|" + id.Name}, true
	}
	if e, ok := try(x.X, x.Y); ok {
		return e, true
	}
	return try(x.Y, x.X)
}

// extractDeferred lowers a deferred call into the events that run at
// function exit. `defer t.Persist(...)` yields the call's own event;
// `defer func() { ... }()` yields every event in the literal's body
// (it runs exactly once, at return, on the deferring goroutine).
func (b *cfgBuilder) extractDeferred(call *ast.CallExpr) []event {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return b.extract(lit.Body)
	}
	if e, ok := b.fa.callEvent(call); ok {
		return []event{e}
	}
	return nil
}

// callEvent classifies one call expression.
func (fa *funcAnalysis) callEvent(call *ast.CallExpr) (event, bool) {
	if key, method, ok := fa.threadCall(call); ok {
		e := event{pos: call.Pos(), key: key, method: method}
		switch method {
		case "Store":
			e.kind = evStore
			if len(call.Args) >= 2 {
				e.publish = fa.isPublishValue(call.Args[1])
			}
		case "WriteRange":
			e.kind = evStore
		case "Flush":
			e.kind = evFlush
		case "Fence":
			e.kind = evFence
		case "Persist":
			e.kind = evPersist
		case "PushScope":
			e.kind = evScopePush
		case "PopScope":
			e.kind = evScopePop
		case "Load", "ReadRange":
			e.kind = evLoad
		default:
			return event{}, false
		}
		if len(call.Args) >= 1 && (e.kind == evStore || e.kind == evFlush || e.kind == evPersist || e.kind == evLoad) {
			// Address identity for PL011: only stable renderings qualify —
			// anything involving a call could name a different address
			// each time.
			if r := renderExpr(call.Args[0]); !strings.Contains(r, "(") {
				e.addrKey = r
			}
		}
		return e, true
	}
	if class, acquire, ok := fa.lockCall(call); ok {
		kind := evUnlock
		if acquire {
			kind = evLock
		}
		return event{pos: call.Pos(), kind: kind, class: class}, true
	}
	// Plain call: a summary site when the call graph resolves any
	// candidates (exact where the receiver type is known, the bare-name
	// set otherwise — see callgraph.go).
	keys := fa.calleeCandidates(call)
	if len(keys) == 0 {
		return event{}, false
	}
	e := event{pos: call.Pos(), kind: evCall, calleeKeys: keys}
	for _, arg := range call.Args {
		if fa.isThreadExpr(arg) {
			e.threadArgs = append(e.threadArgs, renderExpr(arg))
		}
	}
	return e, true
}

// --- PL005 publish detection -------------------------------------------

// isPublishValue reports whether a stored value contains uint64(X)
// where X is a PM address: writing such a word into PM publishes a
// pointer that makes other PM data reachable (a next-link, a root, a
// directory slot). Ordering demands that data be fenced first.
func (fa *funcAnalysis) isPublishValue(v ast.Expr) bool {
	found := false
	ast.Inspect(v, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "uint64" && fa.isAddrExpr(call.Args[0]) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAddrType reports whether the type expression denotes pmem.Addr
// (or Addr inside package pmem). Addr is a value type, never starred.
func (fi *fileInfo) isAddrType(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && fi.pmemName != "" && id.Name == fi.pmemName && x.Sel.Name == "Addr"
	case *ast.Ident:
		return fi.inPmem && x.Name == "Addr"
	}
	return false
}

// isAddrExpr reports whether e syntactically denotes a pmem.Addr: a
// known addr identifier or field, a MakeAddr call, an .Add offset on an
// addr, or an explicit pmem.Addr conversion.
func (fa *funcAnalysis) isAddrExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fa.isAddrExpr(x.X)
	case *ast.Ident:
		return fa.addrs[x.Name]
	case *ast.SelectorExpr:
		return fa.an.addrFields[x.Sel.Name]
	case *ast.CallExpr:
		switch f := x.Fun.(type) {
		case *ast.Ident:
			if f.Name == "MakeAddr" && fa.fi.inPmem {
				return true
			}
		case *ast.SelectorExpr:
			if f.Sel.Name == "MakeAddr" {
				return true
			}
			if f.Sel.Name == "Add" && fa.isAddrExpr(f.X) {
				return true
			}
		}
		if fa.fi.isAddrType(x.Fun) && len(x.Args) == 1 {
			return true
		}
	}
	return false
}

// collectAddrVars seeds the addr-identifier set from parameters and
// from single-value assignments whose right side is an addr expression.
func (fa *funcAnalysis) collectAddrVars() {
	fa.addrs = map[string]bool{}
	for _, fld := range fa.fn.Type.Params.List {
		if fa.fi.isAddrType(fld.Type) {
			for _, n := range fld.Names {
				fa.addrs[n.Name] = true
			}
		}
	}
	ast.Inspect(fa.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			if fa.isAddrExpr(rhs) {
				fa.addrs[id.Name] = true
			}
		}
		return true
	})
}
