package persist

// summary.go computes one-level interprocedural summaries.
//
// Discharge summaries: a function that takes a *pmem.Thread parameter
// and, on every path to a normal return, Flushes (coversStore) and
// Fences (coversFlush) on that parameter discharges the caller's open
// obligations at the call site — wal's Log.Append and the tree's
// writeWholeLeaf are the motivating cases. The summary is computed by
// seeding the obligation dataflow with a synthetic store and flush
// obligation per thread parameter (negative origins, never reported)
// and testing whether the seeds are dead at exit. Summaries are merged
// by bare callee name — the analyzer is syntactic and cannot resolve
// which Append a call site means — with AND semantics: every function
// of that name must cover for call sites to be credited. Summaries are
// strictly one level: while they are being computed the summary table
// is empty, so a summary never credits another callee's discharge.
//
// Lock summaries: the set of declared lock classes a function body
// acquires directly (closures included — they may run synchronously).
// At a call site, each summarized class is checked against the
// caller's held set, extending PL006 one call level deep.

import (
	"go/ast"
	"go/token"
	"sort"
)

// summary is the merged discharge behavior of all functions sharing a
// bare name.
type summary struct {
	coversStore bool // Flush or Persist on every thread param, all paths
	coversFlush bool // Fence or Persist on every thread param, all paths
}

// computeSummaries fills an.summaries and an.lockSums from every
// function declaration in the analyzed set. Must run after
// collectThreadFields (thread/addr field resolution) and before the
// rule pass.
func (a *Analyzer) computeSummaries() {
	sums := map[string]summary{}
	locks := map[string][]string{}
	for _, fi := range a.files {
		for _, decl := range fi.f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.mergeLockSummary(locks, fi, fd)
			a.mergeDischargeSummary(sums, fi, fd)
		}
	}
	a.summaries = sums
	a.lockSums = locks
	a.stats.DischargeSummaries = len(sums)
	a.stats.LockSummaries = len(locks)
}

// mergeDischargeSummary computes and merges the discharge summary for
// one function, if it takes thread parameters.
func (a *Analyzer) mergeDischargeSummary(sums map[string]summary, fi *fileInfo, fd *ast.FuncDecl) {
	var params []string
	for _, fld := range fd.Type.Params.List {
		if fi.isThreadType(fld.Type) {
			for _, n := range fld.Names {
				params = append(params, n.Name)
			}
		}
	}
	if len(params) == 0 {
		return
	}
	fa := newFuncAnalysis(a, fi, fd)
	g, _ := fa.buildCFG(fd.Body)

	seeds := oblSet{}
	for i, p := range params {
		seeds[obl{origin: token.Pos(-(2*i + 1)), key: p, kind: obStore, method: "Store"}] = struct{}{}
		seeds[obl{origin: token.Pos(-(2*i + 2)), key: p, kind: obFlush, method: "Flush"}] = struct{}{}
	}
	in := fa.oblFixpoint(g, seeds)
	residue := fa.exitResidue(g, in)

	s := summary{coversStore: true, coversFlush: true}
	for o := range residue {
		if o.origin > 0 {
			continue // the function's own obligations, reported elsewhere
		}
		switch o.kind {
		case obStore:
			s.coversStore = false
		case obFlush:
			s.coversFlush = false
		}
	}
	name := fd.Name.Name
	if prev, ok := sums[name]; ok {
		s.coversStore = s.coversStore && prev.coversStore
		s.coversFlush = s.coversFlush && prev.coversFlush
	}
	sums[name] = s
}

// mergeLockSummary records the lock classes fd acquires directly,
// union-merged across functions sharing the bare name.
func (a *Analyzer) mergeLockSummary(locks map[string][]string, fi *fileInfo, fd *ast.FuncDecl) {
	fa := newFuncAnalysis(a, fi, fd)
	classes := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, acquire, ok := fa.lockCall(call); ok && acquire {
			classes[class] = true
		}
		return true
	})
	if len(classes) == 0 {
		return
	}
	name := fd.Name.Name
	for _, c := range locks[name] {
		classes[c] = true
	}
	merged := make([]string, 0, len(classes))
	for c := range classes {
		merged = append(merged, c)
	}
	sort.Strings(merged)
	locks[name] = merged
}
