package persist

// summary.go computes whole-program interprocedural summaries over the
// call graph (callgraph.go).
//
// Discharge summaries: a function that takes a *pmem.Thread parameter
// and, on every path to a normal return, Flushes (coversStore) and
// Fences (coversFlush) on that parameter discharges the caller's open
// obligations at the call site — wal's Log.Append and the tree's
// writeWholeLeaf are the motivating cases. The summary is computed by
// seeding the obligation dataflow with a synthetic store and flush
// obligation per thread parameter (negative origins, never reported)
// and testing whether the seeds are dead at exit.
//
// Summaries are keyed per declaration and computed in the call graph's
// callee-first SCC order, so a helper two (or ten) hops above the
// fence is credited: when persistRegion's summary is computed, the
// summaries of everything it calls are already final. Within a
// strongly connected component — self- or mutual recursion — members
// start optimistically (covers everything) and iterate downward to a
// fixpoint: coverage bits only ever flip true→false, so the iteration
// terminates, and a mutually-recursive pair whose base cases persist
// is credited while a pair that can return without fencing is not.
//
// At a call site the candidate summaries (resolved by the call graph,
// exact where the receiver type resolves, the bare-name set otherwise)
// merge with AND semantics: every candidate must cover for the site to
// be credited — the same conservative rule the old one-level engine
// applied, minus its blindness to multi-hop discharge.
//
// Lock summaries: lockDirect is the set of declared lock classes a
// function body acquires itself (closures included — they may run
// synchronously); lockTrans closes that over the call graph, with
// lockVia recording one witness callee per (function, class) so PL014
// findings can print the acquisition chain. PL006 keeps its one-level
// semantics over lockDirect; PL014 reports the classes only lockTrans
// can see.

import (
	"go/ast"
	"go/token"
	"sort"
)

// summary is the discharge behavior of one declared function.
type summary struct {
	coversStore bool // Flush or Persist on every thread param, all paths
	coversFlush bool // Fence or Persist on every thread param, all paths
}

// computeSummaries fills an.summaries, an.lockDirect, an.lockTrans and
// an.lockVia from the call graph. Must run after buildCallGraph and
// before the rule pass.
func (a *Analyzer) computeSummaries() {
	a.summaries = map[string]summary{}
	a.lockDirect = map[string][]string{}
	a.lockTrans = map[string][]string{}
	a.lockVia = map[string]map[string]string{}

	for _, n := range a.cg.nodes {
		if classes := directLockClasses(n); len(classes) > 0 {
			a.lockDirect[n.key] = classes
		}
	}

	if a.oneLevel {
		// Regression-test mode: the pre-fixpoint engine. Every summary is
		// computed against an empty table, so a helper is only credited
		// for what its own body does — multi-hop discharge is invisible.
		table := map[string]summary{}
		for _, n := range a.cg.nodes {
			if s, ok := a.dischargeSummary(n); ok {
				table[n.key] = s
			}
		}
		a.summaries = table
	} else {
		// Callee-first over the SCC condensation; optimistic within an
		// SCC, iterated to a (greatest) fixpoint. a.summaries is the live
		// table the dataflow reads, so a member's recomputation sees its
		// siblings' current values.
		for _, comp := range a.cg.sccs {
			for _, n := range comp {
				if hasThreadParams(n) {
					a.summaries[n.key] = summary{coversStore: true, coversFlush: true}
				}
			}
			for changed := true; changed; {
				changed = false
				for _, n := range comp {
					if _, ok := a.summaries[n.key]; !ok {
						continue
					}
					s, _ := a.dischargeSummary(n)
					if s != a.summaries[n.key] {
						a.summaries[n.key] = s
						changed = true
					}
				}
			}
		}
	}

	a.closeLockSummaries()
	a.stats.DischargeSummaries = len(a.summaries)
	a.stats.LockSummaries = len(a.lockTrans)
}

// hasThreadParams reports whether the declaration takes any
// *pmem.Thread parameter — the precondition for a discharge summary.
func hasThreadParams(n *funcNode) bool {
	for _, fld := range n.fd.Type.Params.List {
		if n.fi.isThreadType(fld.Type) && len(fld.Names) > 0 {
			return true
		}
	}
	return false
}

// dischargeSummary computes the summary of one declaration against the
// analyzer's current summary table. ok is false when the function has
// no thread parameters (nothing to summarize).
func (a *Analyzer) dischargeSummary(n *funcNode) (summary, bool) {
	var params []string
	for _, fld := range n.fd.Type.Params.List {
		if n.fi.isThreadType(fld.Type) {
			for _, p := range fld.Names {
				params = append(params, p.Name)
			}
		}
	}
	if len(params) == 0 {
		return summary{}, false
	}
	fa := n.fa
	g, _ := fa.buildCFG(n.fd.Body)

	seeds := oblSet{}
	for i, p := range params {
		seeds[obl{origin: token.Pos(-(2*i + 1)), key: p, kind: obStore, method: "Store"}] = struct{}{}
		seeds[obl{origin: token.Pos(-(2*i + 2)), key: p, kind: obFlush, method: "Flush"}] = struct{}{}
	}
	in := fa.oblFixpoint(g, seeds)
	residue := fa.exitResidue(g, in)

	s := summary{coversStore: true, coversFlush: true}
	for o := range residue {
		if o.origin > 0 {
			continue // the function's own obligations, reported elsewhere
		}
		switch o.kind {
		case obStore:
			s.coversStore = false
		case obFlush:
			s.coversFlush = false
		}
	}
	return s, true
}

// callSummary AND-merges the candidates' summaries at a call site. ok
// is false when no candidate has a summary — an unknown callee earns
// no credit, exactly as before.
func (a *Analyzer) callSummary(calleeKeys []string) (summary, bool) {
	merged := summary{coversStore: true, coversFlush: true}
	found := false
	for _, k := range calleeKeys {
		s, ok := a.summaries[k]
		if !ok {
			continue
		}
		found = true
		merged.coversStore = merged.coversStore && s.coversStore
		merged.coversFlush = merged.coversFlush && s.coversFlush
	}
	return merged, found
}

// directLockClasses collects the lock classes fd's body acquires
// directly. Plain closures are included — they may run synchronously —
// but go-statement subtrees are not: those acquires happen on another
// goroutine's stack and cannot invert against the caller's held set.
func directLockClasses(n *funcNode) []string {
	classes := map[string]bool{}
	ast.Inspect(n.fd.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.GoStmt); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, acquire, ok := n.fa.lockCall(call); ok && acquire {
			classes[class] = true
		}
		return true
	})
	return sortedClassSet(classes)
}

// closeLockSummaries computes the transitive lock-acquire sets by
// iterating union-over-callees to a fixpoint in callee-first SCC
// order (one global loop handles the cycles). lockVia records, per
// (function, class), the first callee that contributed the class —
// the next hop of a witness chain for PL014 messages.
func (a *Analyzer) closeLockSummaries() {
	trans := map[string]map[string]bool{}
	for k, classes := range a.lockDirect {
		set := map[string]bool{}
		for _, c := range classes {
			set[c] = true
		}
		trans[k] = set
	}
	for changed := true; changed; {
		changed = false
		for _, comp := range a.cg.sccs {
			for _, n := range comp {
				for _, ci := range n.syncCallees {
					callee := a.cg.nodes[ci]
					for c := range trans[callee.key] {
						set := trans[n.key]
						if set == nil {
							set = map[string]bool{}
							trans[n.key] = set
						}
						if !set[c] {
							set[c] = true
							changed = true
							if a.lockVia[n.key] == nil {
								a.lockVia[n.key] = map[string]string{}
							}
							a.lockVia[n.key][c] = callee.key
						}
					}
				}
			}
		}
	}
	for k, set := range trans {
		a.lockTrans[k] = sortedClassSet(set)
	}
}

// lockChain reconstructs a witness acquisition chain from a function
// to a direct acquire of class, as display names ("core.gcCycle ->
// core.(*Tree).collect"). The via map always bottoms out in a function
// whose direct set holds the class.
func (a *Analyzer) lockChain(fromKey, class string) []string {
	var chain []string
	cur := fromKey
	for hops := 0; hops < 64; hops++ {
		n := a.cg.byKey[cur]
		if n == nil {
			break
		}
		chain = append(chain, n.display)
		if hasClass(a.lockDirect[cur], class) {
			return chain
		}
		next := a.lockVia[cur][class]
		if next == "" || next == cur {
			break
		}
		cur = next
	}
	return chain
}

func hasClass(classes []string, c string) bool {
	for _, x := range classes {
		if x == c {
			return true
		}
	}
	return false
}

func sortedClassSet(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
