// PL014 whole-graph lock-order cycles: an acquire buried two or more
// calls deep still inverts the declared order against what the caller
// holds. One-hop callee acquires stay PL006 (locks.go); these need the
// transitive closure, and the finding names the witness call chain.
package testdata

func deepAcquireWorkers(tr *lockTree) {
	tr.workersMu.Lock()
	tr.workersMu.Unlock()
}

func hopAcquireWorkers(tr *lockTree) {
	deepAcquireWorkers(tr)
}

func holdGcThenDeepWorkers(tr *lockTree) {
	tr.gcMu.Lock()
	hopAcquireWorkers(tr) // want "PL014"
	tr.gcMu.Unlock()
}

// Three hops: the chain in the message walks every link.
func hopHopAcquireWorkers(tr *lockTree) {
	hopAcquireWorkers(tr)
}

func holdInnerThenTripleHop(tr *lockTree) {
	tr.inner.mu.Lock()
	hopHopAcquireWorkers(tr) // want "PL014"
	tr.inner.mu.Unlock()
}

// With nothing held the deep acquire respects the order.
func callDeepWithNothingHeld(tr *lockTree) {
	hopAcquireWorkers(tr)
	tr.stw.Lock()
	tr.stw.Unlock()
}

// Order respected transitively: stw outranks everything the chain
// takes.
func holdStwThenDeepWorkers(tr *lockTree) {
	tr.stw.RLock()
	hopAcquireWorkers(tr)
	tr.stw.RUnlock()
}

// An acquire on the far side of a go statement runs on another
// goroutine's stack: it cannot invert against what the spawner holds,
// so neither PL006 nor PL014 fires.
func holdGcThenSpawnWorkers(tr *lockTree) {
	tr.gcMu.Lock()
	go hopAcquireWorkers(tr)
	go func() {
		deepAcquireWorkers(tr)
	}()
	tr.gcMu.Unlock()
}

func holdGcThenDeepWorkersExcused(tr *lockTree) {
	tr.gcMu.Lock()
	//persistlint:ignore PL014 gc path runs single-threaded during the pause, ordering is moot
	hopAcquireWorkers(tr)
	tr.gcMu.Unlock()
}
