// PL008 cases: a field accessed through the functional sync/atomic API
// anywhere must never be read or written plainly elsewhere, unless the
// plain access provably holds the field's declared guard (the
// lock-for-writes / atomics-for-reads protocol) or runs in a
// constructor before the value is published. Matching is owner-aware:
// the same field name on an unrelated struct is never indicted.
package testdata

import (
	"sync"
	"sync/atomic"
)

type atomDev struct {
	gcMu sync.Mutex
	//persistlint:guardedby gcMu
	ticks uint64
}

func (d *atomDev) hit() {
	atomic.AddUint64(&d.ticks, 1)
}

func (d *atomDev) read() uint64 {
	return atomic.LoadUint64(&d.ticks)
}

// Plain access under the field's declared guard: the writer mutates
// under the lock and readers go through atomics — a coherent protocol.
func (d *atomDev) drain() uint64 {
	d.gcMu.Lock()
	v := d.ticks
	d.ticks = 0
	d.gcMu.Unlock()
	return v
}

// Plain read with nothing held races every atomic writer.
func (d *atomDev) peek() uint64 {
	return d.ticks // want "PL008"
}

// Constructor fills are exempt: the value is not published yet.
func newAtomDev() *atomDev {
	d := &atomDev{}
	d.ticks = 0
	return d
}

// Suppression on the access line, with a reason.
func (d *atomDev) debugDump() uint64 {
	//persistlint:ignore PL008 debug-only sample; a torn read is acceptable
	return d.ticks
}

// Same field name on an unrelated struct (a DRAM snapshot): owner-aware
// matching leaves it alone.
type devSnap struct {
	ticks uint64
}

func snapshotDev(d *atomDev) devSnap {
	return devSnap{ticks: atomic.LoadUint64(&d.ticks)}
}

func (s devSnap) staleTicks() uint64 {
	return s.ticks
}
