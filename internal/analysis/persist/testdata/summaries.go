// Interprocedural summaries: a helper taking a *pmem.Thread that
// discharges on every path credits its call sites; a helper that
// discharges only conditionally, or only fences, does not cover a
// store. Call sites resolve through imports and receiver types when
// the syntax allows; unresolvable calls fall back to merging every
// same-named function with AND.
package testdata

import "cclbtree/internal/pmem"

// persistRegion persists on every path: full discharge summary.
func persistRegion(t *pmem.Thread, a pmem.Addr) {
	t.Persist(a, 64)
}

// fenceBatch only fences: it retires pending clwbs but cannot cover a
// bare store.
func fenceBatch(t *pmem.Thread) {
	t.Fence()
}

// maybePersist discharges only when asked: no summary credit.
func maybePersist(t *pmem.Thread, a pmem.Addr, sync bool) {
	if sync {
		t.Persist(a, 8)
	}
}

func callerCoveredByHelper(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	persistRegion(t, a)
}

func callerFlushThenHelperFence(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	fenceBatch(t)
}

func callerFenceHelperDoesNotCoverStore(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1) // want "PL001"
	fenceBatch(t)
}

func callerConditionalHelperDoesNotCover(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1) // want "PL001"
	maybePersist(t, a, false)
}

// walLog mirrors the WAL's Append(t, e) shape: a method whose thread
// parameter is fully persisted before return.
type walLog struct{ head pmem.Addr }

func (l *walLog) Append(t *pmem.Thread, v uint64) {
	t.Store(l.head, v)
	t.Persist(l.head, 8)
}

type logWorker struct {
	t   *pmem.Thread
	log *walLog
}

func (w *logWorker) appendDischargesField(a pmem.Addr) {
	w.t.Store(a, 1)
	w.log.Append(w.t, 2)
}

// Two types share the method name viaSink; one of them does not
// discharge. When the receiver's concrete type is visible the call
// resolves exactly; when it is hidden behind an interface the summary
// must AND-merge every candidate and withhold credit.
type sinkA struct{}
type sinkB struct{}

type sink interface {
	viaSink(t *pmem.Thread, a pmem.Addr)
}

func (sinkA) viaSink(t *pmem.Thread, a pmem.Addr) {
	t.Persist(a, 8)
}

func (sinkB) viaSink(t *pmem.Thread, a pmem.Addr) {
	_, _ = t, a // intentionally non-discharging twin for the summary-merge case
}

func callerAmbiguousSink(t *pmem.Thread, a pmem.Addr, s sink) {
	t.Store(a, 1) // want "PL001"
	s.viaSink(t, a)
}

// The concrete receiver type resolves the call to the discharging
// method: no finding, where the bare-name merge used to report one.
func callerResolvedSink(t *pmem.Thread, a pmem.Addr, s sinkA) {
	t.Store(a, 1)
	s.viaSink(t, a)
}

// Exact resolution cuts the other way too: the non-discharging twin
// gets no credit from its sibling.
func callerNonDischargingSink(t *pmem.Thread, a pmem.Addr, s sinkB) {
	t.Store(a, 1) // want "PL001"
	s.viaSink(t, a)
}
