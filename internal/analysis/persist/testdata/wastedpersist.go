// PL011 cases: wasted persistence work, the inverse of PL001/PL002.
// The must-analysis flags a Flush of an address provably not stored to
// since its last flush on EVERY path, a Persist of an address provably
// clean since the last fence, and a Fence with provably nothing to
// order — each one a full XPBuffer round-trip (or pipeline drain) spent
// on nothing. Anything the paths disagree on, any call, and any
// non-trivial address rendering drops the fact instead of guessing.
package testdata

import "cclbtree/internal/pmem"

func doubleFlush(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Flush(a, 8) // want "PL011"
	t.Fence()
}

func doubleFence(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Fence()
	t.Fence() // want "PL011"
}

func persistClean(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
	t.Persist(a, 8) // want "PL011"
}

// A deferred persist duplicating the inline one fires at function exit.
func deferredDoublePersist(t *pmem.Thread, a pmem.Addr) {
	defer t.Persist(a, 8) // want "PL011"
	t.Store(a, 1)
	t.Persist(a, 8)
}

// Re-flushing after a possible re-dirty is not wasted: the branch
// paths disagree on the line's state, so the meet drops the fact.
func flushAfterMaybeStore(t *pmem.Thread, a pmem.Addr, dirty bool) {
	t.Store(a, 1)
	t.Flush(a, 8)
	if dirty {
		t.Store(a, 2)
	}
	t.Flush(a, 8)
	t.Fence()
}

// A call between the persists may dirty anything: not provably wasted.
func persistAroundCall(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
	scrubLine(t, a)
	t.Persist(a, 8)
}

func scrubLine(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 0)
	t.Persist(a, 8)
}

// A store to one address may alias another rendering: the second
// flush of a is not judged after the store to b invalidated it.
func storeMayAlias(t *pmem.Thread, a, b pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Store(b, 2)
	t.Flush(a, 8)
	t.Flush(b, 8)
	t.Fence()
}

// Computed addresses never qualify as stable identities.
func computedAddr(t *pmem.Thread, a pmem.Addr) {
	t.Store(a.Add(8), 1)
	t.Persist(a.Add(8), 8)
	t.Persist(a.Add(8), 8)
}

// Suppression on the flush line, with a reason.
func doubleFlushOnPurpose(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	//persistlint:ignore PL011 the duplicate flush exercises the device's pending-entry path
	t.Flush(a, 8)
	t.Fence()
}
