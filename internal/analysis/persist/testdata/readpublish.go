// PL015 unfenced-read-after-publish: a writer publishes a PM slot
// (Store of uint64(addr)) while persist obligations are still open on
// its thread, and a reader reachable from a recovery routine, a
// declared entry point, or an optimistic seqlock session loads the
// same slot. After a crash between publish and fence the reader
// follows a durable pointer into bytes that never became durable.
// The writer side also reports PL005 at the publish itself.
package testdata

import (
	"sync/atomic"

	"cclbtree/internal/pmem"
)

type pnode struct {
	next pmem.Addr
	prev pmem.Addr
}

// The hot publish: child's bytes are stored but not fenced when the
// pointer to them lands in n.next.
func publishNextHot(t *pmem.Thread, n *pnode, child pmem.Addr) {
	t.Store(child, 1)
	t.Store(n.next, uint64(child)) // want "PL005"
	t.Persist(child, 8)
	t.Persist(n.next, 8)
}

// Reachable from a recovery entry point by naming convention.
func recoverLeafChain(t *pmem.Thread, n *pnode) {
	walkChain(t, n)
}

func walkChain(t *pmem.Thread, n *pnode) {
	_ = t.Load(n.next) // want "PL015"
}

// Declared entry point: the directive stands in for the naming
// convention on scan/iterate style roots.
//
//persistlint:entrypoint scan
func scanFromDeclared(t *pmem.Thread, n *pnode) {
	_ = t.Load(n.next) // want "PL015"
}

// An optimistic seqlock session is an entry point too: its reads race
// the writer by design, so they may observe the published-not-fenced
// window without any crash.
type optIndex struct {
	seq atomic.Uint64
}

func optimisticLookup(t *pmem.Thread, ix *optIndex, n *pnode) uint64 {
	for {
		v := ix.seq.Load()
		if v&1 != 0 {
			continue
		}
		x := chasePointer(t, n)
		if ix.seq.Load() == v {
			return x
		}
	}
}

func chasePointer(t *pmem.Thread, n *pnode) uint64 {
	return t.Load(n.next) // want "PL015"
}

// Nobody publishes prev hot: reading it on recovery is fine.
func recoverCleanSlot(t *pmem.Thread, n *pnode) {
	_ = t.Load(n.prev)
}

// Not reachable from any entry point: mutation-path reads hold the
// writer lock and see consistent state.
func backgroundPeek(t *pmem.Thread, n *pnode) {
	_ = t.Load(n.next)
}

func recoverExcusedRead(t *pmem.Thread, n *pnode) {
	//persistlint:ignore PL015 recovery re-validates every chained leaf against the commit record
	_ = t.Load(n.next)
}
