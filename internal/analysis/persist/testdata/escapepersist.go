// PL013 escape-before-persist: a pmem.Addr (or uint64(addr)) flowing
// into a heap structure, over a channel, or across a goroutine while
// the bytes it names still have an open persist obligation. Fencing
// (Persist, or a helper whose summary covers the store) before the
// escape clears the dirty fact; a Flush alone does not — the line can
// still be in flight when the other side dereferences.
package testdata

import "cclbtree/internal/pmem"

type leafCache struct {
	slots map[string]pmem.Addr
}

type dramIndex struct {
	hint uint64
}

func stashDirtyAddr(t *pmem.Thread, c *leafCache, a pmem.Addr) {
	t.Store(a, 1)
	c.slots["x"] = a // want "PL013"
	t.Persist(a, 8)
}

func stashUint64Image(t *pmem.Thread, d *dramIndex, a pmem.Addr) {
	t.Store(a, 7)
	d.hint = uint64(a) // want "PL013"
	t.Persist(a, 8)
}

func sendDirtyAddr(t *pmem.Thread, ch chan pmem.Addr, a pmem.Addr) {
	t.Store(a, 1)
	ch <- a // want "PL013"
	t.Persist(a, 8)
}

func consumeAddr(a pmem.Addr) {}

func handDirtyAddrToGoroutine(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	go consumeAddr(a) // want "PL013"
	t.Persist(a, 8)
}

func captureDirtyAddrInClosure(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	go func() {
		consumeAddr(a) // want "PL013"
	}()
	t.Persist(a, 8)
}

// A flush without the fence leaves the line in flight: still dirty.
func flushIsNotEnough(t *pmem.Thread, c *leafCache, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	c.slots["y"] = a // want "PL013"
	t.Fence()
}

// Fenced before the escape: clean.
func stashCleanAddr(t *pmem.Thread, c *leafCache, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
	c.slots["x"] = a
}

// A helper whose summary covers the store clears the dirty fact too.
func stashAfterHelper(t *pmem.Thread, c *leafCache, a pmem.Addr) {
	t.Store(a, 1)
	persistRegion(t, a)
	c.slots["x"] = a
}

// Escaping an address that was never stored to is fine — sharing a
// clean address is how readers are handed work.
func stashUntouchedAddr(t *pmem.Thread, c *leafCache, a, b pmem.Addr) {
	t.Store(a, 1)
	c.slots["other"] = b
	t.Persist(a, 8)
}

func stashDirtyAddrExcused(t *pmem.Thread, c *leafCache, a pmem.Addr) {
	t.Store(a, 1)
	//persistlint:ignore PL013 the cache is rebuilt from scratch on recovery, stale addrs are dropped
	c.slots["x"] = a
	t.Persist(a, 8)
}
