// PL004 cases: *pmem.Thread is a single-owner handle; one crossing a
// goroutine boundary as an existing value (closure capture, go-call
// argument, channel send) can be raced between goroutines. Handing a
// freshly created thread to a new goroutine transfers ownership and is
// allowed.
package testdata

import "cclbtree/internal/pmem"

func goClosureCapture(t *pmem.Thread, a pmem.Addr) {
	go func() {
		t.Persist(a, 8) // want "PL004"
	}()
}

func goCallArg(t *pmem.Thread) {
	go consume(t) // want "PL004"
}

func consume(t *pmem.Thread) {}

func chanSend(t *pmem.Thread, ch chan *pmem.Thread) {
	ch <- t // want "PL004"
}

func (w *worker) goFieldCapture(a pmem.Addr) {
	go func() {
		w.t.Persist(a, 8)
	}()
}

func goFreshThreadHandoff(p *pmem.Pool) {
	go consume(p.NewThread(0))
}

func goOwnThreadInside(p *pmem.Pool, a pmem.Addr) {
	go func() {
		t := p.NewThread(0)
		t.Store(a, 1)
		t.Persist(a, 8)
	}()
}

func goShadowedParam(p *pmem.Pool, a pmem.Addr) {
	go func(t *pmem.Thread) {
		t.Store(a, 1)
		t.Persist(a, 8)
	}(p.NewThread(0))
}
