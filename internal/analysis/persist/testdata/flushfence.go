// PL002 cases: a Flush queues a clwb that only becomes durable at the
// next Fence (or Persist); a flush with no later fence leaks pending
// write-backs.
package testdata

import "cclbtree/internal/pmem"

func flushNoFence(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8) // want "PL002"
}

func flushThenFence(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Fence()
}

func flushCoveredByLaterPersist(t *pmem.Thread, a, b pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Store(b, 2)
	t.Persist(b, 8)
}

func fenceBeforeFlushDoesNotCover(t *pmem.Thread, a pmem.Addr) {
	t.Fence()
	t.Store(a, 1)
	t.Flush(a, 8) // want "PL002"
}

func flushCoveredByDeferredFence(t *pmem.Thread, a pmem.Addr) {
	defer t.Fence()
	t.Store(a, 1)
	t.Flush(a, 8)
}

func (w *worker) fieldFlushNoFence(a pmem.Addr) {
	w.t.Store(a, 1)
	w.t.Flush(a, 8) // want "PL002"
}
