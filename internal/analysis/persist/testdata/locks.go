// PL006 lock-order cases against the declared partial order
//
//	stw -> workersMu -> {gcMu, inner.mu, chunkdir.mu}
//
// The structs mirror internal/core's shapes: unique field names (stw,
// workersMu, gcMu) classify anywhere; the ambiguous "mu" resolves
// through its owner's type (method receiver, parameter, or a field
// declared *innerTree / *chunkDir).
package testdata

import "sync"

type innerTree struct {
	mu sync.RWMutex
}

type chunkDir struct {
	mu sync.Mutex
}

type lockTree struct {
	stw       sync.RWMutex
	workersMu sync.Mutex
	gcMu      sync.Mutex
	inner     *innerTree
	dir       *chunkDir
}

func lockInOrder(tr *lockTree) {
	tr.stw.RLock()
	tr.workersMu.Lock()
	tr.gcMu.Lock()
	tr.gcMu.Unlock()
	tr.workersMu.Unlock()
	tr.stw.RUnlock()
}

// Acquiring the outer stw while holding the registry lock inverts the
// order: the symmetric path deadlocks.
func lockInversion(tr *lockTree) {
	tr.workersMu.Lock()
	tr.stw.Lock() // want "PL006"
	tr.stw.Unlock()
	tr.workersMu.Unlock()
}

// "mu" resolved through the field's declared type.
func innerThenStw(tr *lockTree) {
	tr.inner.mu.Lock()
	tr.stw.RLock() // want "PL006"
	tr.stw.RUnlock()
	tr.inner.mu.Unlock()
}

// Equal ranks are unordered among themselves: holding one while taking
// another is an inversion waiting for the symmetric path.
func sameRankTie(tr *lockTree) {
	tr.gcMu.Lock()
	tr.inner.mu.Lock() // want "PL006"
	tr.inner.mu.Unlock()
	tr.gcMu.Unlock()
}

// Re-acquiring a held (non-reentrant) mutex self-deadlocks.
func selfReacquire(tr *lockTree) {
	tr.gcMu.Lock()
	tr.gcMu.Lock() // want "PL006"
}

// Releasing before the lower-rank acquire is legal.
func releaseThenReacquire(tr *lockTree) {
	tr.workersMu.Lock()
	tr.workersMu.Unlock()
	tr.stw.Lock()
	tr.stw.Unlock()
}

// "mu" resolved through the method receiver's type.
func (it *innerTree) lockSelf() {
	it.mu.Lock()
	defer it.mu.Unlock()
}

// "mu" resolved through a parameter's type.
func dirThenWorkers(d *chunkDir, tr *lockTree) {
	d.mu.Lock()
	tr.workersMu.Lock() // want "PL006"
	tr.workersMu.Unlock()
	d.mu.Unlock()
}

// One-level interprocedural: the callee's direct acquires are checked
// against the caller's held set.
func acquireInner(tr *lockTree) {
	tr.inner.mu.Lock()
	tr.inner.mu.Unlock()
}

func holdGcThenCallAcquiresInner(tr *lockTree) {
	tr.gcMu.Lock()
	acquireInner(tr) // want "PL006"
	tr.gcMu.Unlock()
}

func callWithNothingHeldIsFine(tr *lockTree) {
	acquireInner(tr)
	tr.stw.Lock()
	tr.stw.Unlock()
}

// A deferred unlock runs at return: the lock is held for the rest of
// the function, so a later lower-rank acquire still inverts.
func deferredUnlockStillHeld(tr *lockTree) {
	tr.workersMu.Lock()
	defer tr.workersMu.Unlock()
	tr.stw.Lock() // want "PL006"
	tr.stw.Unlock()
}

// Held on only one path in: still a violation on that path.
func branchHeldInversion(tr *lockTree, gc bool) {
	if gc {
		tr.gcMu.Lock()
	}
	tr.workersMu.Lock() // want "PL006"
	tr.workersMu.Unlock()
	if gc {
		tr.gcMu.Unlock()
	}
}
