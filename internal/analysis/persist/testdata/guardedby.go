// PL009 cases: guarded-by inference and declaration. A field whose
// accesses dominantly hold one lock class gets that class inferred as
// its guard and the minority accesses holding nothing are flagged; an
// explicit //persistlint:guardedby declaration skips inference and
// enforces the class on every non-constructor access. A declaration
// naming an unknown class is itself a defect (PL000).
package testdata

import "sync"

// Inferred guard: items is accessed four times, three of them under
// gcMu — enough for the 3/4 dominance threshold.
type registry struct {
	gcMu  sync.Mutex
	items []uint64
}

func (r *registry) add(v uint64) {
	r.gcMu.Lock()
	r.items = append(r.items, v)
	r.gcMu.Unlock()
}

func (r *registry) count() int {
	r.gcMu.Lock()
	n := len(r.items)
	r.gcMu.Unlock()
	return n
}

// The outlier: every other access takes gcMu first.
func (r *registry) racyFirst() uint64 {
	return r.items[0] // want "PL009"
}

// Declared guard: no dominance needed, one unguarded access flags.
type jobPool struct {
	workersMu sync.Mutex
	//persistlint:guardedby workersMu
	jobs []uint64
}

func (p *jobPool) push(v uint64) {
	p.workersMu.Lock()
	p.jobs = append(p.jobs, v)
	p.workersMu.Unlock()
}

func (p *jobPool) steal() uint64 {
	return p.jobs[0] // want "PL009"
}

// Constructor fills are exempt even under a declared guard.
func newJobPool() *jobPool {
	p := &jobPool{}
	p.jobs = make([]uint64, 0, 8)
	return p
}

// Suppression on the access line, with a reason.
func (p *jobPool) unsafeLen() int {
	//persistlint:ignore PL009 approximate length for metrics; staleness is fine
	return len(p.jobs)
}

// A declaration naming a lock class outside the declared order.
type orphanPool struct {
	//persistlint:guardedby bigLock
	slabs []uint64 // want "PL000"
}
