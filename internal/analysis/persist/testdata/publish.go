// PL005 publish-before-persist: storing uint64(addr) into PM writes a
// pointer that makes other PM data reachable (a next-link, a root, a
// directory slot). If data written earlier on the same thread is not
// yet fenced when the pointer lands, a crash between the two can
// recover the pointer without the data — the split/insert ordering bug
// the paper's §4.2 logless split is designed around.
package testdata

import "cclbtree/internal/pmem"

// The split bug: the new leaf's image is still unfenced when the meta
// word publishing it is stored.
func splitPublishTooEarly(t *pmem.Thread, meta, newLeaf pmem.Addr) {
	t.Store(newLeaf, 0x11)
	t.Store(meta, uint64(newLeaf)) // want "PL005"
	t.Persist(meta, 8)
	t.Persist(newLeaf, 8)
}

// The correct order: persist the image, then publish.
func splitPublishAfterPersist(t *pmem.Thread, meta, newLeaf pmem.Addr) {
	t.Store(newLeaf, 0x11)
	t.Persist(newLeaf, 8)
	t.Store(meta, uint64(newLeaf))
	t.Persist(meta, 8)
}

// Flushed but not fenced is still not durable: the clwb can be lost.
func publishFlushedButUnfenced(t *pmem.Thread, meta, data pmem.Addr) {
	t.Store(data, 1)
	t.Flush(data, 8)
	t.Store(meta, uint64(data)) // want "PL005"
	t.Fence()
	t.Persist(meta, 8)
}

// The obligation reaches the publish on only one path — still a bug on
// that path.
func publishOnBranchPath(t *pmem.Thread, meta, data pmem.Addr, dirty bool) {
	if dirty {
		t.Store(data, 1)
	}
	t.Store(meta, uint64(data)) // want "PL005"
	t.Persist(meta, 8)
	t.Persist(data, 8)
}

// Publishing with nothing pending is clean (mirrors chunkDir.register:
// the directory slot is the only write in flight).
func publishNothingPending(t *pmem.Thread, slot, chunk pmem.Addr) {
	t.Store(slot, uint64(chunk))
	t.Persist(slot, 8)
}

// An addr derived locally (offset chain from a parameter) is still
// recognized as a publish.
func publishDerivedAddr(t *pmem.Thread, base pmem.Addr) {
	next := base.Add(16)
	t.Store(base, 7)
	t.Store(base.Add(8), uint64(next)) // want "PL005"
	t.Persist(base, 24)
}

// A store of a plain value while stores are pending is PL001 territory
// at worst, never PL005: only pointer publishes order-matter.
func plainStoreNotAPublish(t *pmem.Thread, a, b pmem.Addr) {
	t.Store(a, 1)
	t.Store(b, 2)
	t.Persist(a, 8)
	t.Persist(b, 8)
}
