// Suppression cases: //persistlint:ignore CODE reason on the finding's
// line, the line above, or in the function doc comment. A directive for
// a different code, or with no reason, does not suppress.
package testdata

import "cclbtree/internal/pmem"

func suppressedSameLine(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1) //persistlint:ignore PL001 caller persists the whole region after batching
}

func suppressedPrevLine(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 caller persists the whole region after batching
	t.Store(a, 1)
}

// suppressedFuncScope builds an image the caller persists in one shot.
//
//persistlint:ignore PL001 builder helper, caller persists the assembled image
func suppressedFuncScope(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Store(a.Add(8), 2)
}

func wrongCodeDoesNotSuppress(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL002 a fence directive cannot excuse a missing flush // want "PL007"
	t.Store(a, 1) // want "PL001"
}

func multiCodeDirective(t1, t2 *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001,PL002 both obligations transfer to the epilogue helper
	t1.Store(a, 1)
	//persistlint:ignore PL002,PL001 both obligations transfer to the epilogue helper
	t2.Flush(a, 8)
}
