// Path-sensitivity cases: the CFG dataflow must flag an obligation
// that stays open on ANY path to a return — early returns, divergent
// branches, breaks, continues, and loop-carried persists — and must
// stay quiet when every path discharges.
package testdata

import "cclbtree/internal/pmem"

// The canonical early-return leak: the persist exists, but the early
// return path skips it. A position-ordered (linear) analysis sees a
// Persist after the Store and stays silent; the CFG analysis does not.
func earlyReturnLeavesStoreOpen(t *pmem.Thread, a pmem.Addr, full bool) {
	t.Store(a, 1) // want "PL001"
	if full {
		return
	}
	t.Persist(a, 8)
}

func earlyReturnCovered(t *pmem.Thread, a pmem.Addr, full bool) {
	t.Store(a, 1)
	if full {
		t.Persist(a, 8)
		return
	}
	t.Persist(a, 8)
}

// Only the then-branch flushes: the else path returns with the store
// open.
func branchDivergentFlush(t *pmem.Thread, a pmem.Addr, sync bool) {
	t.Store(a, 1) // want "PL001"
	if sync {
		t.Flush(a, 8)
		t.Fence()
	}
}

func branchBothCovered(t *pmem.Thread, a pmem.Addr, fast bool) {
	t.Store(a, 1)
	if fast {
		t.Persist(a, 8)
	} else {
		t.Flush(a, 8)
		t.Fence()
	}
}

// The break path exits the loop between the store and its persist.
func breakBeforePersist(t *pmem.Thread, a pmem.Addr, n int) {
	for i := 0; i < n; i++ {
		t.Store(a, uint64(i)) // want "PL001"
		if i == 7 {
			break
		}
		t.Persist(a, 8)
	}
}

// The continue path carries the obligation over the back edge; the
// loop can then exit with it still open.
func continueSkipsPersist(t *pmem.Thread, a pmem.Addr, n int) {
	for i := 0; i < n; i++ {
		t.Store(a, uint64(i)) // want "PL001"
		if i%2 == 0 {
			continue
		}
		t.Persist(a, 8)
	}
}

// Persist-previous-iteration: the final iteration's store is never
// persisted after the loop exits.
func loopCarriedPersist(t *pmem.Thread, a pmem.Addr, n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			t.Persist(a, 8)
		}
		t.Store(a, uint64(i)) // want "PL001"
	}
}

// Stores inside the loop, one persist after it: every loop exit passes
// the persist, so nothing is open.
func loopStoresPersistAfter(t *pmem.Thread, a pmem.Addr, n int) {
	for i := 0; i < n; i++ {
		t.Store(a, uint64(i))
	}
	t.Persist(a, 8)
}

// One switch arm returns without discharging.
func switchDivergent(t *pmem.Thread, a pmem.Addr, k int) {
	t.Store(a, 1) // want "PL001"
	switch k {
	case 0:
		t.Persist(a, 8)
	case 1:
		return
	default:
		t.Persist(a, 8)
	}
}

// The only way out of the loop is the return after the persist.
func infiniteLoopWithReturn(t *pmem.Thread, a pmem.Addr, done func() bool) {
	for {
		t.Store(a, 1)
		t.Persist(a, 8)
		if done() {
			return
		}
	}
}

// panic never returns to the caller: obligations on the panic path are
// not leaks (the process dies with its caches).
func storeThenPanic(t *pmem.Thread, a pmem.Addr, err error) {
	t.Store(a, 1)
	if err != nil {
		panic(err)
	}
	t.Persist(a, 8)
}

// A flush whose fence happens only on one branch.
func flushFenceDivergent(t *pmem.Thread, a pmem.Addr, sync bool) {
	t.Store(a, 1)
	t.Flush(a, 8) // want "PL002"
	if sync {
		t.Fence()
	}
}
