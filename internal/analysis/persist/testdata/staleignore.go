// PL007 stale-directive cases: a reasoned ignore that suppresses
// nothing under the current analysis is dead weight that hides future
// regressions — it must be deleted, and the finding cannot itself be
// suppressed.
package testdata

import "cclbtree/internal/pmem"

// The store is persisted on every path: the excuse outlived the code.
func staleLineDirective(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 the caller used to persist this; the code now persists locally // want "PL007"
	t.Store(a, 1)
	t.Persist(a, 8)
}

// staleDocDirective is fully discharging; its doc-scope excuse is dead.
//
//persistlint:ignore PL002 flushes were once handed to the caller's epilogue // want "PL007"
func staleDocDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Fence()
}

// A used directive next to a stale one: only the stale one fires.
func mixedDirectives(t1, t2 *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 t1's obligation transfers to the epilogue helper
	t1.Store(a, 1)
	//persistlint:ignore PL002 nothing here flushes; stale by construction // want "PL007"
	t2.Store(a, 2)
	t2.Persist(a, 8)
}
