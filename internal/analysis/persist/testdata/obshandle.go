// PL004 cases for the second single-owner type: *obs.Handle shards
// counters per owning goroutine and is written without synchronization,
// so an existing handle crossing a goroutine boundary is a data race in
// waiting. A freshly created handle handed to a new goroutine transfers
// ownership, like a fresh thread.
package testdata

import (
	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

type statWorker struct {
	t  *pmem.Thread
	mh *obs.Handle
}

func handleClosureCapture(h *obs.Handle, c obs.CounterID) {
	go func() {
		h.Add(c, 1) // want "PL004"
	}()
}

func handleGoCallArg(h *obs.Handle) {
	go consumeHandle(h) // want "PL004"
}

func consumeHandle(h *obs.Handle) {}

func handleChanSend(h *obs.Handle, ch chan *obs.Handle) {
	ch <- h // want "PL004"
}

func handleFieldGoArg(w *statWorker) {
	go consumeHandle(w.mh) // want "PL004"
}

func handleAssignedThenCaptured(m *obs.Metrics, c obs.CounterID) {
	h := m.NewHandle()
	go func() {
		h.Add(c, 1) // want "PL004"
	}()
}

func handleFreshHandoff(m *obs.Metrics) {
	go consumeHandle(m.NewHandle())
}

func handleOwnInside(m *obs.Metrics, c obs.CounterID) {
	go func() {
		h := m.NewHandle()
		h.Add(c, 1)
	}()
}
