// PL001 cases: a Store/WriteRange to PM must be followed by a
// Flush/Persist on the same thread before the function returns.
package testdata

import "cclbtree/internal/pmem"

func storeNoPersist(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1) // want "PL001"
}

func writeRangeNoPersist(t *pmem.Thread, a pmem.Addr, src []uint64) {
	t.WriteRange(a, src) // want "PL001"
}

func storeThenPersist(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}

func storeThenFlushFence(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
	t.Fence()
}

func storeAfterLastPersist(t *pmem.Thread, a pmem.Addr) {
	t.Persist(a, 8)
	t.Store(a, 2) // want "PL001"
}

func storeCoveredByDefer(t *pmem.Thread, a pmem.Addr) {
	defer t.Persist(a, 8)
	t.Store(a, 1)
}

// worker mirrors the repo-wide pattern of a handle struct owning its
// PM thread; field-typed threads resolve through the declaration.
type worker struct {
	t *pmem.Thread
}

func (w *worker) fieldStoreNoPersist(a pmem.Addr) {
	w.t.Store(a, 1) // want "PL001"
}

func (w *worker) fieldStorePersist(a pmem.Addr) {
	w.t.Store(a, 1)
	w.t.Persist(a, 8)
}

// A persist on a different thread does not discharge the obligation.
func twoThreads(t1, t2 *pmem.Thread, a pmem.Addr) {
	t1.Store(a, 1) // want "PL001"
	t2.Persist(a, 8)
}

// A thread obtained from an accessor or constructor is recognized.
func accessorThread(w *worker, a pmem.Addr) {
	t := w.Thread()
	t.Store(a, 1) // want "PL001"
}

func (w *worker) Thread() *pmem.Thread { return w.t }

// Store on a non-thread receiver (sync/atomic style) is not a PM store.
type atomicBox struct{ v uint64 }

func (b *atomicBox) Store(v uint64) { b.v = v }

func atomicStoreIgnored(b *atomicBox) {
	b.Store(1)
}
