// PL003 cases: under eADR the CPU caches are inside the persistence
// domain, so a Flush/Persist that can only execute on an eADR-only
// branch writes back nothing — dead code that usually signals inverted
// mode logic.
package testdata

import "cclbtree/internal/pmem"

func deadFlushUnderEADR(t *pmem.Thread, a pmem.Addr, mode pmem.Mode) {
	t.Store(a, 1)
	if mode == pmem.EADR {
		t.Flush(a, 8) // want "PL003"
	}
	t.Persist(a, 8)
}

func deadPersistInElseOfNotEADR(t *pmem.Thread, a pmem.Addr, mode pmem.Mode) {
	t.Store(a, 1)
	if mode != pmem.EADR {
		t.Persist(a, 8)
	} else {
		t.Persist(a, 8) // want "PL003"
	}
}

func deadPersistInSwitchCase(t *pmem.Thread, a pmem.Addr, mode pmem.Mode) {
	t.Store(a, 1)
	switch mode {
	case pmem.EADR:
		t.Persist(a, 8) // want "PL003"
	default:
		t.Persist(a, 8)
	}
}

func flushUnderADRBranchIsFine(t *pmem.Thread, a pmem.Addr, mode pmem.Mode) {
	t.Store(a, 1)
	if mode == pmem.ADR {
		t.Flush(a, 8)
		t.Fence()
	}
}

func eadrEarlyReturnIsFine(t *pmem.Thread, a pmem.Addr, mode pmem.Mode) {
	t.Store(a, 1)
	if mode == pmem.EADR {
		return
	}
	t.Persist(a, 8)
}
