// PL012 cases: PushScope/PopScope balance. A scope pushed on a thread
// and not popped on some path to return leaks the attribution to the
// thread's next unrelated work — every later byte it writes is charged
// to the wrong component. Deferred pops count; paths that die in a
// panic owe nothing (the thread dies with them).
package testdata

import "cclbtree/internal/pmem"

func scopeLeakOnEarlyReturn(t *pmem.Thread, fail bool) bool {
	prev := t.PushScope(pmem.ScopeMeta) // want "PL012"
	if fail {
		return false
	}
	t.PopScope(prev)
	return true
}

// A worker-owned thread leaks the same way; the key is the rendered
// thread expression.
func (w *worker) scopedWriteLeaks(a pmem.Addr) {
	w.t.PushScope(pmem.ScopeGC) // want "PL012"
	w.t.Store(a, 1)
	w.t.Persist(a, 8)
}

func scopeWithDefer(t *pmem.Thread, a pmem.Addr) {
	prev := t.PushScope(pmem.ScopeSplit)
	defer t.PopScope(prev)
	t.Store(a, 1)
	t.Persist(a, 8)
}

// The functional idiom: the push happens at defer-statement evaluation,
// the pop at return.
func scopeFunctional(t *pmem.Thread) {
	defer t.PopScope(t.PushScope(pmem.ScopeRecovery))
}

func scopeBothBranches(t *pmem.Thread, alt bool) {
	prev := t.PushScope(pmem.ScopeMeta)
	if alt {
		t.PopScope(prev)
		return
	}
	t.PopScope(prev)
}

// A path that panics never returns: the scope dies with the thread.
func scopePanicPath(t *pmem.Thread, bad bool) {
	prev := t.PushScope(pmem.ScopeMeta)
	if bad {
		panic("corrupt superblock")
	}
	t.PopScope(prev)
}

// Suppression on the push line, with a reason.
func scopeForLife(t *pmem.Thread) {
	//persistlint:ignore PL012 the thread is dedicated to this scope until it is dropped
	t.PushScope(pmem.ScopeMeta)
}
