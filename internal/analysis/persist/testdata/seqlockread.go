// PL010 cases: the seqlock read protocol. A reader must save the
// version (s.seq.Load()), bail when the saved value marks a write in
// progress, read the data, then re-check the version and retry on
// mismatch. The syntactic half demands the validity test and re-check
// exist at all; the obligation dataflow then proves the re-check is
// reached on every path to a return.
package testdata

import "sync/atomic"

type seqSlot struct {
	seq  atomic.Uint64
	word uint64
}

// No re-check anywhere: a racing writer hands back torn data.
func readNoRecheck(s *seqSlot) uint64 {
	v := s.seq.Load() // want "PL010"
	if v&1 != 0 {
		return 0
	}
	return s.word
}

// Re-checked but never tested for a write in progress: the data reads
// can observe a half-written slot before the mismatch is noticed.
func readNoValidityTest(s *seqSlot) uint64 {
	for {
		v := s.seq.Load() // want "PL010"
		x := s.word
		if s.seq.Load() == v {
			return x
		}
	}
}

// Both pieces exist, but the fast path returns between the load and
// the re-check — only the path-sensitive dataflow catches this one.
func readFastPathSkipsRecheck(s *seqSlot, cached bool) uint64 {
	v := s.seq.Load() // want "PL010"
	if cached {
		return s.word
	}
	if v&1 != 0 {
		return 0
	}
	x := s.word
	if s.seq.Load() != v {
		return 0
	}
	return x
}

// The full protocol: load, bail on odd, read, re-check, retry.
func readSeqlock(s *seqSlot) uint64 {
	for {
		v := s.seq.Load()
		if v&1 != 0 {
			continue
		}
		x := s.word
		if s.seq.Load() == v {
			return x
		}
	}
}

// The saved version escapes to the caller: the re-check obligation
// transfers with it (begin/end read-session APIs).
func beginRead(s *seqSlot) uint64 {
	v := s.seq.Load()
	return v
}

// A CompareAndSwap on the saved version is the version-lock acquire
// idiom's re-check.
func tryLockSlot(s *seqSlot) bool {
	v := s.seq.Load()
	if v&1 != 0 {
		return false
	}
	return s.seq.CompareAndSwap(v, v+1)
}

// Skipping a slot mid-session — on the write-in-progress test or on
// empty data — and letting the loop rebind s and v is not a missing
// re-check: the next iteration opens a fresh session and the dead
// binding owes nothing.
func sumValidSlots(slots []*seqSlot) uint64 {
	var sum uint64
	for _, s := range slots {
		v := s.seq.Load()
		if v&1 != 0 {
			continue
		}
		x := s.word
		if x == 0 {
			continue // empty slot: move on without re-checking
		}
		if s.seq.Load() == v {
			sum += x
		}
	}
	return sum
}

// Suppression on the load line, with a reason.
func racyPeek(s *seqSlot) uint64 {
	//persistlint:ignore PL010 monitoring sample; a torn value is acceptable
	v := s.seq.Load()
	_ = v
	return s.word
}
