// Whole-program discharge: multi-hop helper chains and mutually
// recursive pairs credit their call sites. Both shapes need the
// fixpoint over the call graph — a summary computed against an empty
// table (the old one-level engine) sees hop1 and the recursive pair as
// non-discharging and reports the callers.
package testdata

import "cclbtree/internal/pmem"

// hop2 persists; hop1 only forwards. Crediting callerTwoHop requires
// hop1's summary to read hop2's finished summary.
func hop1(t *pmem.Thread, a pmem.Addr) { hop2(t, a) }
func hop2(t *pmem.Thread, a pmem.Addr) { t.Persist(a, 8) }

func callerTwoHop(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	hop1(t, a)
}

// evenPersist/oddPersist call each other; every path through the pair
// bottoms out in a Persist. The SCC starts optimistic (assume the
// partner covers) and iterates down — here nothing forces the bits
// off, so the pair discharges.
func evenPersist(t *pmem.Thread, a pmem.Addr, n int) {
	if n <= 0 {
		t.Persist(a, 8)
		return
	}
	oddPersist(t, a, n-1)
}

func oddPersist(t *pmem.Thread, a pmem.Addr, n int) {
	if n <= 0 {
		t.Persist(a, 8)
		return
	}
	evenPersist(t, a, n-1)
}

func callerMutualRecursion(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	evenPersist(t, a, 4)
}

// A mutually recursive pair with a bail-out path that skips the
// persist must not be credited: the optimistic start is forced off at
// the first recomputation.
func pingLeak(t *pmem.Thread, a pmem.Addr, n int) {
	if n <= 0 {
		return // bails without persisting
	}
	pongLeak(t, a, n-1)
}

func pongLeak(t *pmem.Thread, a pmem.Addr, n int) {
	pingLeak(t, a, n-1)
}

func callerMutualLeak(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1) // want "PL001"
	pingLeak(t, a, 3)
}
