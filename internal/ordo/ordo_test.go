package ordo

import (
	"sync"
	"testing"
)

func TestMonotonicPerSocket(t *testing.T) {
	c := New(2, 16)
	prev := c.Now(0)
	for i := 0; i < 1000; i++ {
		ts := c.Now(0)
		if ts <= prev {
			t.Fatalf("timestamp went backwards: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestNeverZero(t *testing.T) {
	c := New(1, 0)
	if c.Now(0) == 0 {
		t.Fatal("timestamp 0 must be reserved")
	}
}

func TestAfterRespectsBoundary(t *testing.T) {
	c := New(2, 100)
	if c.After(150, 100) {
		t.Fatal("gap 50 is inside the boundary; must not be 'after'")
	}
	if !c.After(250, 100) {
		t.Fatal("gap 150 exceeds the boundary; must be 'after'")
	}
	if c.After(100, 250) {
		t.Fatal("earlier timestamp reported as after")
	}
}

func TestCrossSocketOrderingBeyondBoundary(t *testing.T) {
	c := New(4, 64)
	a := c.Now(0)
	var b uint64
	// Enough intervening ticks to clear any skew.
	for i := 0; i < 200; i++ {
		b = c.Now(3)
	}
	if !c.After(b, a) {
		t.Fatalf("clearly-later cross-socket timestamp not ordered: %d vs %d", b, a)
	}
}

func TestSkewsDifferAcrossSockets(t *testing.T) {
	c := New(4, 1000)
	seen := map[uint64]bool{}
	for s := 0; s < 4; s++ {
		seen[c.skew[s]] = true
	}
	if len(seen) < 2 {
		t.Fatal("sockets share identical skew; model degenerate")
	}
}

func TestConcurrentIssue(t *testing.T) {
	c := New(2, 8)
	const workers = 8
	const per = 5000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := make([]uint64, per)
			for i := range ts {
				ts[i] = c.Now(w % 2)
			}
			out[w] = ts
		}(w)
	}
	wg.Wait()
	for w, ts := range out {
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("worker %d: non-monotonic %d then %d", w, ts[i-1], ts[i])
			}
		}
	}
}

func TestMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Fatal("Max wrong")
	}
}
