// Package ordo models invariant hardware timestamps (rdtsc) with the
// ORDO primitive of Kashyap et al. (EuroSys '18), which CCL-BTree uses
// to order WAL entries across sockets (§3.3).
//
// Real TSCs on different sockets are synchronized only up to a constant
// offset; ORDO exposes a measured uncertainty boundary so software can
// tell "definitely earlier" from "possibly concurrent". The model keeps
// one logical counter plus a constant per-socket skew, so timestamps are
// cheap, strictly increasing per socket, and cross-socket comparisons
// behave exactly like the primitive: ordering is reliable only beyond
// the boundary.
package ordo

import "sync/atomic"

// Clock issues ORDO timestamps. The zero value is unusable; use New.
type Clock struct {
	counter  atomic.Uint64
	skew     []uint64
	boundary uint64
}

// New creates a clock for the given socket count. boundary is the ORDO
// uncertainty window in ticks; per-socket skews are synthesized inside
// it so cross-socket reads genuinely disagree, as on real hardware.
func New(sockets int, boundary uint64) *Clock {
	if sockets < 1 {
		sockets = 1
	}
	c := &Clock{skew: make([]uint64, sockets), boundary: boundary}
	for i := range c.skew {
		if boundary > 0 {
			c.skew[i] = (uint64(i) * 2654435761) % boundary
		}
	}
	c.counter.Store(1) // timestamp 0 is reserved as "never written"
	return c
}

// Now returns the current timestamp as read from socket's TSC.
func (c *Clock) Now(socket int) uint64 {
	return c.counter.Add(1) + c.skew[socket]
}

// Boundary returns the ORDO uncertainty window.
func (c *Clock) Boundary() uint64 { return c.boundary }

// AdvanceTo raises the clock so that every future Now, on any socket,
// returns a timestamp strictly greater than ts. Recovery uses it to
// resume the tick domain above everything durably stamped in the
// pre-crash image: a clock restarted from zero would hand out ticks
// that old WAL residue outranks, silently shadowing post-recovery
// writes at the next crash.
func (c *Clock) AdvanceTo(ts uint64) {
	for {
		cur := c.counter.Load()
		if cur >= ts || c.counter.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// After reports whether timestamp a is definitely after b, i.e. their
// gap exceeds the uncertainty boundary. Within the boundary the order is
// unknown and callers must treat the events as concurrent.
func (c *Clock) After(a, b uint64) bool {
	return a > b && a-b > c.boundary
}

// Max returns the later of two timestamps (by raw value; callers use it
// where either order is acceptable inside the boundary, e.g. recovery
// picking the newest version).
func Max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
