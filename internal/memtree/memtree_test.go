package memtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Fatal("zero value not empty")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty")
	}
	if _, _, ok := tr.FindLE(1); ok {
		t.Fatal("FindLE on empty")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty")
	}
	tr.Ascend(0, func(uint64, int) bool { t.Fatal("Ascend on empty"); return false })
}

func TestPutGet(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 10000; i++ {
		tr.Put(uint64(i*7%10000), i)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 10000; i++ {
		v, ok := tr.Get(uint64(i * 7 % 10000))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*7%10000, v, ok)
		}
	}
	if _, ok := tr.Get(99999); ok {
		t.Fatal("found absent key")
	}
}

func TestOverwrite(t *testing.T) {
	var tr Tree[string]
	tr.Put(5, "a")
	tr.Put(5, "b")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", tr.Len())
	}
	if v, _ := tr.Get(5); v != "b" {
		t.Fatalf("Get = %q", v)
	}
}

func TestFindLE(t *testing.T) {
	var tr Tree[int]
	for _, k := range []uint64{10, 20, 30, 40} {
		tr.Put(k, int(k))
	}
	cases := []struct {
		q      uint64
		want   uint64
		wantOK bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true},
		{20, 20, true}, {39, 30, true}, {40, 40, true}, {100, 40, true},
	}
	for _, c := range cases {
		k, v, ok := tr.FindLE(c.q)
		if ok != c.wantOK || (ok && (k != c.want || v != int(c.want))) {
			t.Fatalf("FindLE(%d) = %d,%d,%v", c.q, k, v, ok)
		}
	}
}

func TestFindLEDense(t *testing.T) {
	var tr Tree[uint64]
	rng := rand.New(rand.NewSource(1))
	keys := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(1 << 20))
		keys[k] = true
		tr.Put(k, k)
	}
	sorted := make([]uint64, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for trial := 0; trial < 5000; trial++ {
		q := uint64(rng.Intn(1 << 20))
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > q })
		k, _, ok := tr.FindLE(q)
		if i == 0 {
			if ok {
				t.Fatalf("FindLE(%d) = %d, want none", q, k)
			}
			continue
		}
		if !ok || k != sorted[i-1] {
			t.Fatalf("FindLE(%d) = %d,%v, want %d", q, k, ok, sorted[i-1])
		}
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 1000; i++ {
		tr.Put(uint64(i), i)
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(uint64(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v", i, ok)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
}

func TestAscend(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 100; i++ {
		tr.Put(uint64(i*10), i)
	}
	var got []uint64
	tr.Ascend(250, func(k uint64, v int) bool {
		got = append(got, k)
		return len(got) < 5
	})
	want := []uint64{250, 260, 270, 280, 290}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestAscendSkipsDeletedAcrossLeaves(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 500; i++ {
		tr.Put(uint64(i), i)
	}
	for i := 100; i < 400; i++ {
		tr.Delete(uint64(i))
	}
	var got []uint64
	tr.Ascend(50, func(k uint64, v int) bool {
		got = append(got, k)
		return len(got) < 100
	})
	for i, k := range got {
		var want uint64
		if i < 50 {
			want = uint64(50 + i)
		} else {
			want = uint64(400 + i - 50)
		}
		if k != want {
			t.Fatalf("position %d: got %d want %d", i, k, want)
		}
	}
}

func TestMin(t *testing.T) {
	var tr Tree[int]
	tr.Put(42, 1)
	tr.Put(7, 2)
	tr.Put(100, 3)
	k, v, ok := tr.Min()
	if !ok || k != 7 || v != 2 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
}

// TestQuickAgainstMap drives random op sequences against a reference map.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		var tr Tree[uint64]
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := uint64(op % 512)
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				tr.Put(k, v)
				ref[k] = v
			case 1:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := tr.Get(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full iteration must match the sorted reference.
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okAll := true
		tr.Ascend(0, func(k uint64, v uint64) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequential(t *testing.T) {
	var tr Tree[uint64]
	const n = 200000
	for i := uint64(0); i < n; i++ {
		tr.Put(i, i*2)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 3 {
		t.Fatalf("depth %d suspiciously small", tr.Depth())
	}
	count := 0
	prev := uint64(0)
	tr.Ascend(0, func(k uint64, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("iterated %d", count)
	}
}

func TestFindLEAfterDeletesAcrossLeaves(t *testing.T) {
	// Regression for stale-separator routing: deleting entries that
	// were promoted as separators must not break predecessor queries
	// when the descent lands at index 0 of a non-leftmost leaf.
	var tr Tree[uint64]
	const n = 5000
	for k := uint64(1); k <= n; k++ {
		tr.Put(k*10, k*10)
	}
	rng := rand.New(rand.NewSource(8))
	deleted := map[uint64]bool{}
	for i := 0; i < n/2; i++ {
		k := (uint64(rng.Intn(n-1)) + 2) * 10
		tr.Delete(k)
		deleted[k] = true
	}
	var live []uint64
	for k := uint64(1); k <= n; k++ {
		if !deleted[k*10] {
			live = append(live, k*10)
		}
	}
	for trial := 0; trial < 4000; trial++ {
		q := uint64(rng.Intn(n*10)) + 10
		i := sort.Search(len(live), func(i int) bool { return live[i] > q })
		gk, gv, ok := tr.FindLE(q)
		if i == 0 {
			if ok {
				t.Fatalf("FindLE(%d) = %d, want none", q, gk)
			}
			continue
		}
		if !ok || gk != live[i-1] || gv != live[i-1] {
			t.Fatalf("FindLE(%d) = %d,%v want %d", q, gk, ok, live[i-1])
		}
	}
}
