// Package memtree is an in-DRAM B+-tree keyed by uint64 with generic
// values. It serves as the volatile search layer of several persistent
// indexes in this repository: CCL-BTree's inner nodes (§3.1 keeps inner
// and buffer nodes in DRAM), FPTree's and uTree's inner nodes, DPTree's
// and FlatStore's volatile indexes.
//
// The tree is not synchronized; callers wrap it with their own
// concurrency control (CCL-BTree uses an RW lock on the inner layer and
// version locks below it, matching the paper's "retry from the inner
// layer" protocol).
package memtree

import "sort"

// fanout is the maximum number of children of an internal node (and
// keys of a leaf). 32 keeps nodes around two cachelines of keys, close
// to the 256 B nodes the paper uses for DRAM layers.
const fanout = 32

type node[V any] struct {
	keys []uint64
	kids []*node[V] // internal nodes only
	vals []V        // leaves only
	next *node[V]   // leaf chain
	prev *node[V]   // leaf chain (FindLE across stale separators)
}

func (n *node[V]) leaf() bool { return n.kids == nil }

// Tree is the B+-tree. The zero value is an empty tree ready for use.
type Tree[V any] struct {
	root  *node[V]
	size  int
	depth int
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// Depth returns the current height (0 when empty), which callers use to
// charge DRAM traversal cost to the virtual clock.
func (t *Tree[V]) Depth() int { return t.depth }

// search returns the index of the first key ≥ k in n.keys.
func search(keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

// Get returns the value stored at exactly key.
func (t *Tree[V]) Get(key uint64) (V, bool) {
	var zero V
	n := t.root
	if n == nil {
		return zero, false
	}
	for !n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // keys[i] is the lowest key of kids[i+1]
		}
		n = n.kids[i]
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return zero, false
}

// FindLE returns the entry with the greatest key ≤ key — the routing
// operation of a leaf-level directory ("which leaf owns this key").
func (t *Tree[V]) FindLE(key uint64) (uint64, V, bool) {
	var zero V
	n := t.root
	if n == nil {
		return 0, zero, false
	}
	for !n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.kids[i]
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.keys[i], n.vals[i], true
	}
	// Greatest key strictly below key: predecessor within this leaf.
	if i > 0 {
		return n.keys[i-1], n.vals[i-1], true
	}
	// Stale separators (deletes don't rewrite ancestors) can land the
	// descent one leaf too far right; the predecessor is then the last
	// entry of an earlier non-empty leaf.
	for p := n.prev; p != nil; p = p.prev {
		if len(p.keys) > 0 {
			return p.keys[len(p.keys)-1], p.vals[len(p.keys)-1], true
		}
	}
	return 0, zero, false
}

// Put inserts or overwrites key.
func (t *Tree[V]) Put(key uint64, val V) {
	if t.root == nil {
		t.root = &node[V]{keys: []uint64{key}, vals: []V{val}}
		t.size = 1
		t.depth = 1
		return
	}
	nk, nn := t.insert(t.root, key, val)
	if nn != nil {
		t.root = &node[V]{keys: []uint64{nk}, kids: []*node[V]{t.root, nn}}
		t.depth++
	}
}

// insert descends into n; on child split it returns the separator key
// and new right sibling to install in the parent.
func (t *Tree[V]) insert(n *node[V], key uint64, val V) (uint64, *node[V]) {
	if n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, val)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.size++
		if len(n.keys) <= fanout {
			return 0, nil
		}
		mid := len(n.keys) / 2
		right := &node[V]{
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]V(nil), n.vals[mid:]...),
			next: n.next,
			prev: n,
		}
		if right.next != nil {
			right.next.prev = right
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	sk, sn := t.insert(n.kids[i], key, val)
	if sn == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sk
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = sn
	if len(n.kids) <= fanout {
		return 0, nil
	}
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &node[V]{
		keys: append([]uint64(nil), n.keys[mid+1:]...),
		kids: append([]*node[V](nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return up, right
}

// Delete removes key, reporting whether it was present. Nodes are
// allowed to underflow (the directory use case deletes rarely — only on
// leaf merges — so rebalancing complexity buys nothing here); empty
// leaves are unlinked lazily during iteration.
func (t *Tree[V]) Delete(key uint64) bool {
	n := t.root
	if n == nil {
		return false
	}
	for !n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.kids[i]
	}
	i := search(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// Ascend calls fn for every entry with key ≥ from, in ascending key
// order, until fn returns false.
func (t *Tree[V]) Ascend(from uint64, fn func(key uint64, val V) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf() {
		i := search(n.keys, from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.kids[i]
	}
	i := search(n.keys, from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Min returns the smallest entry.
func (t *Tree[V]) Min() (uint64, V, bool) {
	var zero V
	n := t.root
	if n == nil {
		return 0, zero, false
	}
	for !n.leaf() {
		n = n.kids[0]
	}
	for n != nil && len(n.keys) == 0 {
		n = n.next
	}
	if n == nil {
		return 0, zero, false
	}
	return n.keys[0], n.vals[0], true
}
