package cclhash

import (
	"math/rand"
	"sync"
	"testing"

	"cclbtree/internal/pmem"
)

func testPool() *pmem.Pool {
	return pmem.NewPool(pmem.Config{
		Sockets:        2,
		DIMMsPerSocket: 2,
		DeviceBytes:    64 << 20,
		XPBufferLines:  16,
		CacheLines:     1 << 13,
	})
}

func newTable(t *testing.T, opts Options) (*Table, *Worker) {
	t.Helper()
	if opts.Buckets == 0 {
		opts.Buckets = 1 << 10
	}
	if opts.ChunkBytes == 0 {
		opts.ChunkBytes = 16 << 10
	}
	h, err := New(testPool(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return h, h.NewWorker(0)
}

func TestPutGetRoundtrip(t *testing.T) {
	_, w := newTable(t, Options{})
	for i := uint64(1); i <= 20000; i++ {
		if err := w.Put(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 20000; i++ {
		v, ok := w.Get(i)
		if !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := w.Get(99999999); ok {
		t.Fatal("phantom key")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	_, w := newTable(t, Options{})
	for i := uint64(1); i <= 3000; i++ {
		_ = w.Put(i, 1)
	}
	for i := uint64(1); i <= 3000; i++ {
		_ = w.Put(i, i+7)
	}
	for i := uint64(1); i <= 3000; i += 2 {
		if err := w.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 3000; i++ {
		v, ok := w.Get(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) = %v want %v", i, ok, want)
		}
		if ok && v != i+7 {
			t.Fatalf("Get(%d) = %d", i, v)
		}
	}
	// Reinsert deleted keys reuses their cleared slots.
	for i := uint64(1); i <= 3000; i += 2 {
		_ = w.Put(i, i*9)
	}
	for i := uint64(1); i <= 3000; i += 2 {
		if v, ok := w.Get(i); !ok || v != i*9 {
			t.Fatalf("reinsert Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestOverflowChains(t *testing.T) {
	// Tiny table: force long chains.
	h, w := newTable(t, Options{Buckets: 4})
	const n = 500
	for i := uint64(1); i <= n; i++ {
		if err := w.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, overflow := h.Stats()
	if overflow == 0 {
		t.Fatal("no overflow buckets despite 500 keys in 4 buckets")
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := w.Get(i); !ok || v != i {
			t.Fatalf("chained Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestWriteConservativeLoggingHash(t *testing.T) {
	h, w := newTable(t, Options{Nbatch: 2, DisableGC: true})
	const n = 9000
	for i := uint64(1); i <= n; i++ {
		_ = w.Put(i, i)
	}
	trig, logged, _, _ := h.Stats()
	if trig == 0 {
		t.Fatal("no trigger writes")
	}
	ratio := float64(logged) / float64(n)
	if ratio < 0.55 || ratio > 0.8 {
		t.Fatalf("logged ratio %.2f, want ≈2/3", ratio)
	}
}

func TestRandomOpsAgainstModelHash(t *testing.T) {
	_, w := newTable(t, Options{})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(12))
	for op := 0; op < 30000; op++ {
		k := uint64(rng.Intn(2000) + 1)
		switch rng.Intn(10) {
		case 0, 1:
			_ = w.Delete(k)
			delete(ref, k)
		case 2:
			v, ok := w.Get(k)
			wv, wok := ref[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, v, ok, wv, wok)
			}
		default:
			v := rng.Uint64() | 1
			_ = w.Put(k, v)
			ref[k] = v
		}
	}
	for k, v := range ref {
		if got, ok := w.Get(k); !ok || got != v {
			t.Fatalf("final Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func TestHashGCPreservesData(t *testing.T) {
	h, w := newTable(t, Options{ChunkBytes: 4096, THlog: 0.02})
	const n = 20000
	for i := uint64(1); i <= n; i++ {
		_ = w.Put(i, i)
	}
	h.ForceGC()
	_, _, runs, _ := h.Stats()
	if runs == 0 {
		t.Fatal("GC never ran")
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := w.Get(i); !ok || v != i {
			t.Fatalf("after GC Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestHashCrashRecovery(t *testing.T) {
	pool := testPool()
	opts := Options{Buckets: 1 << 10, ChunkBytes: 16 << 10, DisableGC: true}
	h, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := h.NewWorker(0)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for op := 0; op < 8000; op++ {
		k := uint64(rng.Intn(1500) + 1)
		if rng.Intn(6) == 0 {
			_ = w.Delete(k)
			delete(ref, k)
		} else {
			v := rng.Uint64() | 1
			_ = w.Put(k, v)
			ref[k] = v
		}
	}
	// Collect the live chunk set (stands in for the host's directory).
	h.Close()
	var chunks []pmem.Addr
	for _, wk := range h.workers {
		for e := 0; e < 2; e++ {
			chunks = append(chunks, wk.logs[e].Detach()...)
		}
	}
	pool.Crash()
	h2, err := Recover(pool, opts, h.base, chunks)
	if err != nil {
		t.Fatal(err)
	}
	w2 := h2.NewWorker(0)
	for k := uint64(1); k <= 1500; k++ {
		v, ok := w2.Get(k)
		wv, wok := ref[k]
		if ok != wok || (ok && v != wv) {
			t.Fatalf("key %d after crash: %d,%v want %d,%v", k, v, ok, wv, wok)
		}
	}
	// The recovered table keeps working.
	if err := w2.Put(9999999, 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := w2.Get(9999999); !ok || v != 1 {
		t.Fatal("post-recovery insert broken")
	}
}

func TestHashCrashMidFlushSweep(t *testing.T) {
	// Power failure at assorted flush boundaries; completed ops must
	// survive, the in-flight op must be atomic.
	for _, point := range []int64{3, 17, 49, 111, 222, 467, 900, 1500} {
		pool := testPool()
		opts := Options{Buckets: 1 << 8, ChunkBytes: 16 << 10, DisableGC: true}
		h, err := New(pool, opts)
		if err != nil {
			t.Fatal(err)
		}
		w := h.NewWorker(0)
		ref := map[uint64]uint64{}
		var inKey, inVal uint64
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.PowerFailure); !ok {
						panic(r)
					}
					c = true
				}
			}()
			rng := rand.New(rand.NewSource(77))
			pool.FailAfterFlushes(point)
			for op := 0; op < 3000; op++ {
				k := uint64(rng.Intn(400) + 1)
				v := rng.Uint64() | 1
				inKey, inVal = k, v
				_ = w.Put(k, v)
				ref[k] = v
			}
			return false
		}()
		pool.FailAfterFlushes(0)
		if !crashed {
			continue
		}
		var chunks []pmem.Addr
		for e := 0; e < 2; e++ {
			chunks = append(chunks, w.logs[e].Detach()...)
		}
		pool.Crash()
		h2, err := Recover(pool, opts, h.base, chunks)
		if err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
		w2 := h2.NewWorker(0)
		for k, v := range ref {
			if k == inKey {
				continue
			}
			got, ok := w2.Get(k)
			if !ok || got != v {
				t.Fatalf("point %d: completed key %d lost (%d,%v want %d)", point, k, got, ok, v)
			}
		}
		got, ok := w2.Get(inKey)
		if ok && got != inVal && got == 0 {
			t.Fatalf("point %d: in-flight key %d garbage: %d", point, inKey, got)
		}
	}
}

func TestHashConcurrent(t *testing.T) {
	h, _ := newTable(t, Options{})
	const workers = 6
	const per = 4000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := h.NewWorker(g % 2)
			base := uint64(g*per + 1)
			for i := uint64(0); i < per; i++ {
				if err := w.Put(base+i, base+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w := h.NewWorker(0)
	for k := uint64(1); k <= workers*per; k++ {
		if v, ok := w.Get(k); !ok || v != k {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
}

func TestHashXBIBelowNaive(t *testing.T) {
	// The §6 claim in numbers: buffered buckets + write-conservative
	// logging beat a flush-per-insert table on media traffic.
	run := func(nbatch int) float64 {
		pool := testPool()
		h, err := New(pool, Options{Buckets: 1 << 12, Nbatch: nbatch, ChunkBytes: 64 << 10, DisableGC: true})
		if err != nil {
			t.Fatal(err)
		}
		w := h.NewWorker(0)
		rng := rand.New(rand.NewSource(5))
		const warm, run = 20000, 20000
		for i := 0; i < warm; i++ {
			_ = w.Put(uint64(rng.Intn(1<<20)+1), 7)
		}
		pool.ResetStats()
		for i := 0; i < run; i++ {
			_ = w.Put(uint64(rng.Intn(1<<20)+1), 9)
		}
		pool.DrainXPBuffers()
		return float64(pool.Stats().MediaWriteBytes) / (run * 16)
	}
	naive := run(-1) // Nbatch 0: every put flushes
	ccl := run(2)
	if ccl >= naive {
		t.Fatalf("hash XBI with buffering (%.1f) not below naive (%.1f)", ccl, naive)
	}
}
