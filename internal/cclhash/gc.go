package cclhash

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"cclbtree/internal/ordo"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// maybeGC triggers locality-aware reclamation when live log bytes
// exceed THlog × bucket bytes (§3.4 applied to the table).
func (h *Table) maybeGC() {
	if h.opts.DisableGC || h.gcRunning.Load() || h.closed.Load() {
		return
	}
	logBytes := h.logBytes.Load()
	if logBytes < 2*int64(h.opts.ChunkBytes) {
		return
	}
	bucketBytes := int64(h.opts.Buckets+int(h.overflowCnt.Load())) * BucketBytes
	if float64(logBytes) <= h.opts.THlog*float64(bucketBytes) {
		return
	}
	h.startGC()
}

func (h *Table) startGC() {
	if h.closed.Load() || !h.gcRunning.CompareAndSwap(false, true) {
		return
	}
	done := make(chan struct{})
	h.gcMu.Lock()
	h.gcDone = done
	h.gcMu.Unlock()
	go func() {
		defer close(done)
		defer h.gcRunning.Store(false)
		h.runGC()
	}()
}

// ForceGC runs (or joins) one reclamation round synchronously.
func (h *Table) ForceGC() {
	if h.closed.Load() {
		return
	}
	h.startGC()
	h.gcMu.Lock()
	done := h.gcDone
	h.gcMu.Unlock()
	<-done
}

func (h *Table) gcWorker() *Worker {
	h.gcOnce.Do(func() { h.gcW = h.NewWorker(0) })
	return h.gcW
}

// runGC is the table's locality-aware collection: flip the epoch, copy
// still-unflushed buffered entries to the GC thread's I-log (sequential
// writes only), restamp their epoch bits, then recycle the old
// generation's chunks.
func (h *Table) runGC() {
	h.gcRuns.Add(1)
	w := h.gcWorker()
	oldE := h.epoch.Load()
	newE := 1 - oldE
	h.epoch.Store(newE)

	for b := range h.buffers {
		if h.closed.Load() {
			return // mid-GC power failure: old generation stays live
		}
		n := &h.buffers[b]
		for {
			v, ok := n.tryLock()
			if !ok {
				runtime.Gosched()
				continue
			}
			hv := n.hdr.Load()
			pos := int(hv & 0xff)
			eb := uint16(hv >> 8)
			for i := 0; i < pos; i++ {
				if uint32(eb>>uint(i)&1) == newE {
					continue
				}
				if _, err := w.logs[newE].Append(w.t, wal.Entry{
					Key:       n.slots[2*i].Load(),
					Value:     n.slots[2*i+1].Load(),
					Timestamp: h.clock.Now(w.socket),
				}); err != nil {
					n.unlock(v)
					return
				}
				h.logBytes.Add(wal.EntrySize)
				eb = eb&^(1<<uint(i)) | uint16(newE)<<uint(i)
			}
			n.hdr.Store(uint64(pos) | uint64(eb)<<8)
			n.unlock(v)
			break
		}
	}

	h.workersMu.Lock()
	ws := append([]*Worker(nil), h.workers...)
	h.workersMu.Unlock()
	var chunks []pmem.Addr
	for _, wk := range ws {
		h.logBytes.Add(-wk.logs[oldE].Bytes())
		chunks = append(chunks, wk.logs[oldE].Detach()...)
	}
	h.walman.ReleaseChunks(chunks)
}

// Recover rebuilds a table after a power failure: walk the bucket
// array to restore volatile state, replay WAL entries newer than their
// home bucket's timestamp, and reset bucket timestamps. The caller
// passes the live chunk set (a host application persists it in a small
// directory; the cclbtree core shows a fully persistent one — this
// extension keeps that bookkeeping external).
func Recover(pool *pmem.Pool, opts Options, base pmem.Addr, chunks []pmem.Addr) (*Table, error) {
	opts = opts.withDefaults()
	h := &Table{
		pool:   pool,
		alloc:  pmalloc.New(pool),
		clock:  ordo.New(pool.Sockets(), 16),
		opts:   opts,
		mask:   uint64(opts.Buckets - 1),
		base:   base,
		gcDone: make(chan struct{}),
	}
	//persistlint:ignore PL009 Recover runs single-threaded before the table is published; no GC can race
	close(h.gcDone)
	h.walman = wal.NewManager(h.alloc, opts.ChunkBytes)
	h.buffers = make([]bufNode, opts.Buckets)
	for i := range h.buffers {
		h.buffers[i].slots = make([]atomic.Uint64, 2*opts.Nbatch)
	}

	t := pool.NewThread(0)
	// Walk chains: count overflow buckets and track the reachability
	// high-water mark so a fresh (cross-process) allocator never
	// overlaps live data.
	maxEnd := make([]uint64, pool.Sockets())
	track := func(a pmem.Addr, size int64) {
		if end := a.Offset() + uint64(size); end > maxEnd[a.Socket()] {
			maxEnd[a.Socket()] = end
		}
	}
	track(base, int64(opts.Buckets)*BucketBytes)
	for _, c := range chunks {
		track(c, int64(opts.ChunkBytes))
	}
	homeTS := make([]uint64, opts.Buckets)
	for b := 0; b < opts.Buckets; b++ {
		var img bucketImg
		img.read(t, h.bucketAddr(uint64(b)))
		homeTS[b] = img.words[tsWord]
		for next := img.next(); !next.IsNil(); {
			h.overflowCnt.Add(1)
			track(next, BucketBytes)
			var o bucketImg
			o.read(t, next)
			next = o.next()
		}
	}
	for s := range maxEnd {
		h.alloc.SetBump(s, maxEnd[s])
	}

	// Replay: newest entry per key, gated by the home bucket timestamp
	// (bucket addresses are fixed, so routing is exact).
	newest := map[uint64]wal.Entry{}
	for _, e := range wal.ReadEntriesInChunks(t, chunks, opts.ChunkBytes) {
		if cur, ok := newest[e.Key]; !ok || e.Timestamp > cur.Timestamp {
			newest[e.Key] = e
		}
	}
	w := h.NewWorker(0)
	for _, e := range newest {
		b := hashKey(e.Key) & h.mask
		if e.Timestamp <= homeTS[b] {
			continue // covered by a completed flush
		}
		if err := w.flushBatch(b, []kv{{e.Key, e.Value}}); err != nil {
			return nil, fmt.Errorf("cclhash: replay: %w", err)
		}
	}
	// Reset timestamps for the fresh clock.
	prev := t.SetTag(pmem.TagLeaf)
	for b := 0; b < opts.Buckets; b++ {
		a := h.bucketAddr(uint64(b)).Add(8 * tsWord)
		t.Store(a, 0)
		t.Flush(a, 8)
		if b%64 == 63 {
			t.Fence()
		}
	}
	t.Fence()
	t.SetTag(prev)
	h.walman.AdoptChunks(chunks)
	return h, nil
}
