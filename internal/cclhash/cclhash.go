// Package cclhash applies the CCL-BTree techniques to a persistent
// hash table, realizing the paper's §6 generality claim ("in the
// persistent hash tables ... we can introduce a buffer node for one or
// multiple buckets to batch the updates to them, and use the
// write-conservative logging and locality-aware GC to ensure crash
// consistency with reduced write amplification").
//
// Layout: a fixed PM array of 256 B buckets (one XPLine each, same slot
// geometry as the tree's leaves) with overflow chaining; a DRAM buffer
// node in front of every bucket batches Nbatch writes and flushes them
// in one XPLine write; per-thread WALs make buffered writes durable,
// skipping the log for trigger writes; reclamation copies unflushed
// entries to I-logs under a flipping epoch.
//
// Hash buckets have fixed addresses, so recovery routing is exact by
// construction and deleted slots can simply clear their bitmap bits (no
// fence entries needed, unlike the tree).
package cclhash

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cclbtree/internal/ordo"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// Bucket layout (words): word0 = bitmap(14) | next-overflow (Pack48<<16),
// word1 = timestamp, words 2-3 = fingerprints, words 4..31 = 14 slots.
const (
	BucketBytes = 256
	BucketSlots = 14

	bucketWords = BucketBytes / pmem.WordSize
	metaWord    = 0
	tsWord      = 1
	fpWord      = 2
	slotBase    = 4
	bitmapMask  = 1<<BucketSlots - 1
)

// Options configures the table.
type Options struct {
	// Buckets is the home-bucket count (rounded up to a power of two).
	Buckets int
	// Nbatch is the per-bucket DRAM buffer capacity (default 2).
	Nbatch int
	// THlog triggers GC when live log bytes exceed THlog × bucket
	// bytes (default 0.2).
	THlog float64
	// ChunkBytes is the WAL chunk size (default 1 MB).
	ChunkBytes int
	// DisableGC turns reclamation off.
	DisableGC bool
}

func (o Options) withDefaults() Options {
	if o.Buckets <= 0 {
		o.Buckets = 1 << 14
	}
	o.Buckets = 1 << bits.Len(uint(o.Buckets-1))
	if o.Nbatch == 0 {
		o.Nbatch = 2
	}
	if o.Nbatch < 0 {
		o.Nbatch = 0
	}
	if o.THlog <= 0 {
		o.THlog = 0.2
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 1 << 20
	}
	return o
}

// bufNode is the DRAM buffer in front of one home bucket (it covers the
// bucket's whole overflow chain).
type bufNode struct {
	version atomic.Uint64
	hdr     atomic.Uint64 // pos (8b) | epoch bits (16b)
	slots   []atomic.Uint64
}

func (n *bufNode) tryLock() (uint64, bool) {
	v := n.version.Load()
	if v&1 != 0 {
		return 0, false
	}
	return v, n.version.CompareAndSwap(v, v+1)
}

func (n *bufNode) unlock(v uint64) { n.version.Store(v + 2) }

func (n *bufNode) beginRead() (uint64, bool) {
	v := n.version.Load()
	return v, v&1 == 0
}

func (n *bufNode) validate(v uint64) bool { return n.version.Load() == v }

// Table is the persistent hash table.
type Table struct {
	pool   *pmem.Pool
	alloc  *pmalloc.Allocator
	walman *wal.Manager
	clock  *ordo.Clock
	opts   Options

	base    pmem.Addr // bucket array
	mask    uint64
	buffers []bufNode

	epoch     atomic.Uint32
	workersMu sync.Mutex
	workers   []*Worker
	gcRunning atomic.Bool
	gcDone    chan struct{}
	gcMu      sync.Mutex
	gcW       *Worker
	gcOnce    sync.Once
	closed    atomic.Bool

	logBytes    atomic.Int64
	overflowCnt atomic.Int64
	triggers    atomic.Uint64
	logged      atomic.Uint64
	gcRuns      atomic.Uint64
}

// New creates a table on the pool.
func New(pool *pmem.Pool, opts Options) (*Table, error) {
	opts = opts.withDefaults()
	h := &Table{
		pool:   pool,
		alloc:  pmalloc.New(pool),
		clock:  ordo.New(pool.Sockets(), 16),
		opts:   opts,
		mask:   uint64(opts.Buckets - 1),
		gcDone: make(chan struct{}),
	}
	close(h.gcDone)
	h.walman = wal.NewManager(h.alloc, opts.ChunkBytes)
	base, err := h.alloc.Alloc(0, opts.Buckets*BucketBytes)
	if err != nil {
		return nil, fmt.Errorf("cclhash: bucket array: %w", err)
	}
	h.base = base
	t := pool.NewThread(0)
	prev := t.SetTag(pmem.TagLeaf)
	zero := make([]uint64, bucketWords)
	for b := 0; b < opts.Buckets; b++ {
		t.WriteRange(base.Add(int64(b*BucketBytes)), zero)
	}
	t.Persist(base, opts.Buckets*BucketBytes)
	t.SetTag(prev)
	h.buffers = make([]bufNode, opts.Buckets)
	for i := range h.buffers {
		h.buffers[i].slots = make([]atomic.Uint64, 2*opts.Nbatch)
	}
	return h, nil
}

// Stats reports behavioral counters.
func (h *Table) Stats() (triggers, logged, gcRuns uint64, overflow int64) {
	return h.triggers.Load(), h.logged.Load(), h.gcRuns.Load(), h.overflowCnt.Load()
}

// Close stops background GC.
func (h *Table) Close() {
	h.closed.Store(true)
	h.gcMu.Lock()
	done := h.gcDone
	h.gcMu.Unlock()
	<-done
}

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func fp(k uint64) byte {
	x := hashKey(k)
	b := byte(x>>56) ^ byte(x>>24)
	return b
}

// Worker is a per-goroutine handle.
type Worker struct {
	h      *Table
	t      *pmem.Thread
	socket int
	logs   [2]*wal.Log
}

// NewWorker creates a handle bound to a socket.
func (h *Table) NewWorker(socket int) *Worker {
	w := &Worker{h: h, t: h.pool.NewThread(socket), socket: socket}
	w.logs[0] = wal.NewLog(h.walman, socket)
	w.logs[1] = wal.NewLog(h.walman, socket)
	h.workersMu.Lock()
	h.workers = append(h.workers, w)
	h.workersMu.Unlock()
	return w
}

// Thread exposes the worker's PM thread.
func (w *Worker) Thread() *pmem.Thread { return w.t }

func (h *Table) bucketAddr(b uint64) pmem.Addr {
	return h.base.Add(int64(b * BucketBytes))
}

// Put inserts or updates a pair. Key must be nonzero; value 0 is the
// tombstone (use Delete).
func (w *Worker) Put(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("cclhash: key 0 is reserved")
	}
	if value == 0 {
		return fmt.Errorf("cclhash: value 0 is the tombstone; use Delete")
	}
	return w.put(key, value)
}

// Delete removes key via a buffered tombstone.
func (w *Worker) Delete(key uint64) error {
	if key == 0 {
		return fmt.Errorf("cclhash: key 0 is reserved")
	}
	return w.put(key, 0)
}

func (w *Worker) put(key, value uint64) error {
	h := w.h
	b := hashKey(key) & h.mask
	n := &h.buffers[b]
	for {
		v, ok := n.tryLock()
		if !ok {
			runtime.Gosched()
			continue
		}
		err := w.putLocked(n, b, key, value)
		n.unlock(v)
		if err != nil {
			return err
		}
		h.maybeGC()
		return nil
	}
}

func (w *Worker) putLocked(n *bufNode, b uint64, key, value uint64) error {
	h := w.h
	hv := n.hdr.Load()
	pos := int(hv & 0xff)
	eb := uint16(hv >> 8)
	epoch := uint16(h.epoch.Load())

	// In-buffer upsert among unflushed slots.
	for i := 0; i < pos; i++ {
		if n.slots[2*i].Load() == key {
			if err := w.appendLog(key, value); err != nil {
				return err
			}
			n.slots[2*i+1].Store(value)
			eb = eb&^(1<<uint(i)) | epoch<<uint(i)
			n.hdr.Store(uint64(pos) | uint64(eb)<<8)
			return nil
		}
	}
	nb := len(n.slots) / 2
	if pos >= nb {
		// Trigger write: flush the batch into the bucket chain in one
		// XPLine write per touched bucket; skip the log for the
		// trigger KV (write-conservative logging).
		h.triggers.Add(1)
		batch := make([]kv, 0, pos+1)
		for i := 0; i < pos; i++ {
			batch = append(batch, kv{n.slots[2*i].Load(), n.slots[2*i+1].Load()})
		}
		batch = append(batch, kv{key, value})
		if err := w.flushBatch(b, batch); err != nil {
			return err
		}
		// Refresh cached copies of the trigger key.
		for i := 0; i < nb; i++ {
			if n.slots[2*i].Load() == key {
				n.slots[2*i+1].Store(value)
			}
		}
		n.hdr.Store(uint64(0) | uint64(eb)<<8)
		return nil
	}
	if err := w.appendLog(key, value); err != nil {
		return err
	}
	n.slots[2*pos].Store(key)
	n.slots[2*pos+1].Store(value)
	// Purge stale cached copies from earlier flush rounds (see the
	// tree's upsertLocked for the shadowing hazard).
	for i := pos + 1; i < nb; i++ {
		if n.slots[2*i].Load() == key {
			n.slots[2*i].Store(0)
			n.slots[2*i+1].Store(0)
		}
	}
	eb = eb&^(1<<uint(pos)) | epoch<<uint(pos)
	n.hdr.Store(uint64(pos+1) | uint64(eb)<<8)
	return nil
}

type kv struct{ k, v uint64 }

func (w *Worker) appendLog(key, value uint64) error {
	h := w.h
	e := h.epoch.Load()
	if _, err := w.logs[e].Append(w.t, wal.Entry{
		Key: key, Value: value, Timestamp: h.clock.Now(w.socket),
	}); err != nil {
		return err
	}
	h.logBytes.Add(wal.EntrySize)
	h.logged.Add(1)
	return nil
}

// bucketImg is a DRAM copy of one bucket.
type bucketImg struct {
	addr  pmem.Addr
	words [bucketWords]uint64
}

func (bi *bucketImg) read(t *pmem.Thread, a pmem.Addr) {
	bi.addr = a
	t.ReadRange(a, bi.words[:])
}

func (bi *bucketImg) bitmap() uint16 { return uint16(bi.words[metaWord] & bitmapMask) }
func (bi *bucketImg) next() pmem.Addr {
	raw := bi.words[metaWord] >> 16
	if raw == 0 {
		return pmem.NilAddr
	}
	return pmem.Unpack48(raw)
}
func (bi *bucketImg) key(i int) uint64 { return bi.words[slotBase+2*i] }
func (bi *bucketImg) val(i int) uint64 { return bi.words[slotBase+2*i+1] }
func (bi *bucketImg) fpAt(i int) byte {
	return byte(bi.words[fpWord+i/8] >> (8 * uint(i%8)))
}

// flushBatch applies the batch to bucket b's chain crash-consistently:
// plan slot assignments over the whole chain, write data words and
// fence, then publish headers from the TAIL of the chain back to the
// home bucket. The home bucket's timestamp — which gates WAL replay for
// every entry this buffer held — therefore persists only after all of
// the batch's data is durable; a crash before it replays the entries
// idempotently.
func (w *Worker) flushBatch(home uint64, batch []kv) error {
	h := w.h
	prevTag := w.t.SetTag(pmem.TagLeaf)
	defer w.t.SetTag(prevTag)

	type plan struct {
		img      bucketImg
		origNext pmem.Addr // successor before the meta word is rebuilt
		dirtyLo  int
		dirtyHi  int
		fresh    bool // newly allocated overflow bucket
	}
	var chain []*plan
	mark := func(p *plan, wd int) {
		if wd < p.dirtyLo {
			p.dirtyLo = wd
		}
		if wd > p.dirtyHi {
			p.dirtyHi = wd
		}
	}

	// Plan across the chain, extending it as needed.
	addr := h.bucketAddr(home)
	remaining := batch
	for {
		p := &plan{dirtyLo: bucketWords, dirtyHi: -1}
		if addr.IsNil() {
			// Fresh overflow bucket (only reached when live entries
			// still need slots).
			nb, err := h.alloc.Alloc(w.t.Socket(), BucketBytes)
			if err != nil {
				return fmt.Errorf("cclhash: overflow bucket: %w", err)
			}
			p.img.addr = nb
			p.fresh = true
			h.overflowCnt.Add(1)
		} else {
			p.img.read(w.t, addr)
			p.origNext = p.img.next()
		}
		bm := p.img.bitmap()
		var assigned uint16
		var deferred []kv
		for _, e := range remaining {
			slot := -1
			f := fp(e.k)
			for i := 0; i < BucketSlots; i++ {
				if bm&(1<<uint(i)) != 0 && p.img.fpAt(i) == f && p.img.key(i) == e.k {
					slot = i
					break
				}
			}
			if slot >= 0 {
				if e.v == 0 {
					bm &^= 1 << uint(slot) // fixed bucket addresses: safe to clear
					continue
				}
				p.img.words[slotBase+2*slot+1] = e.v
				mark(p, slotBase+2*slot+1)
				continue
			}
			if e.v == 0 {
				deferred = append(deferred, e) // may live further down
				continue
			}
			free := ^uint32(bm) & ^uint32(assigned) & bitmapMask
			if free == 0 {
				deferred = append(deferred, e)
				continue
			}
			i := bits.TrailingZeros32(free)
			p.img.words[slotBase+2*i] = e.k
			p.img.words[slotBase+2*i+1] = e.v
			shift := 8 * uint(i%8)
			p.img.words[fpWord+i/8] = p.img.words[fpWord+i/8]&^(0xff<<shift) | uint64(f)<<shift
			assigned |= 1 << uint(i)
			bm |= 1 << uint(i)
			mark(p, slotBase+2*i)
			mark(p, slotBase+2*i+1)
		}
		p.img.words[metaWord] = uint64(bm) & bitmapMask // next filled below
		chain = append(chain, p)

		needSlot := false
		for _, e := range deferred {
			if e.v != 0 {
				needSlot = true
			}
		}
		if !needSlot {
			break
		}
		addr = p.origNext // NilAddr at chain end -> fresh bucket next round
		remaining = deferred
	}

	// Re-link: each planned bucket's meta keeps its successor (existing
	// link or freshly planned bucket).
	for i, p := range chain {
		var next pmem.Addr
		if i+1 < len(chain) {
			next = chain[i+1].img.addr
		} else {
			next = p.origNext // preserve any untraversed tail
		}
		if !next.IsNil() {
			p.img.words[metaWord] = p.img.words[metaWord]&bitmapMask | next.Pack48()<<16
		}
	}

	// Phase 1: data. Fresh buckets persist whole; existing buckets
	// flush only their dirty slot words. One fence covers them all.
	for _, p := range chain {
		if p.fresh {
			w.t.WriteRange(p.img.addr, p.img.words[:])
			w.t.Flush(p.img.addr, BucketBytes)
			continue
		}
		if p.dirtyHi < 0 {
			continue
		}
		for wd := p.dirtyLo; wd <= p.dirtyHi; wd++ {
			w.t.Store(p.img.addr.Add(int64(8*wd)), p.img.words[wd])
		}
		w.t.Flush(p.img.addr.Add(int64(8*p.dirtyLo)), 8*(p.dirtyHi-p.dirtyLo+1))
	}
	w.t.Fence()

	// Phase 2: publish headers tail -> home; the home bucket's
	// timestamp lands last.
	for i := len(chain) - 1; i >= 0; i-- {
		p := chain[i]
		if p.fresh {
			continue // already fully persistent
		}
		p.img.words[tsWord] = h.clock.Now(w.socket)
		for wd := 0; wd < slotBase; wd++ {
			w.t.Store(p.img.addr.Add(int64(8*wd)), p.img.words[wd])
		}
		w.t.Persist(p.img.addr, slotBase*pmem.WordSize)
	}
	return nil
}

// Get returns the value for key.
func (w *Worker) Get(key uint64) (uint64, bool) {
	h := w.h
	b := hashKey(key) & h.mask
	n := &h.buffers[b]
	for {
		v, clean := n.beginRead()
		if !clean {
			runtime.Gosched()
			continue
		}
		// Buffer scan, leftmost (newest) first.
		nb := len(n.slots) / 2
		w.t.Advance(int64(nb) * w.t.CostDRAM())
		for i := 0; i < nb; i++ {
			if n.slots[2*i].Load() == key {
				val := n.slots[2*i+1].Load()
				if !n.validate(v) {
					break
				}
				return val, val != 0
			}
		}
		val, found, ok := w.searchChain(key, h.bucketAddr(b))
		if ok && n.validate(v) {
			return val, found
		}
		runtime.Gosched()
	}
}

func (w *Worker) searchChain(key uint64, addr pmem.Addr) (uint64, bool, bool) {
	prevTag := w.t.SetTag(pmem.TagLeaf)
	defer w.t.SetTag(prevTag)
	f := fp(key)
	for !addr.IsNil() {
		var hdr [slotBase]uint64
		w.t.ReadRange(addr, hdr[:])
		bm := uint16(hdr[metaWord] & bitmapMask)
		for i := 0; i < BucketSlots; i++ {
			if bm&(1<<uint(i)) == 0 || byte(hdr[fpWord+i/8]>>(8*uint(i%8))) != f {
				continue
			}
			if w.t.Load(addr.Add(int64(8*(slotBase+2*i)))) == key {
				return w.t.Load(addr.Add(int64(8 * (slotBase + 2*i + 1)))), true, true
			}
		}
		raw := hdr[metaWord] >> 16
		if raw == 0 {
			return 0, false, true
		}
		addr = pmem.Unpack48(raw)
	}
	return 0, false, true
}
