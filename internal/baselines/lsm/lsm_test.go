package lsm

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{Light: true})
}

func TestCompactionWriteAmplification(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	rng := uint64(2463534242)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng%(1<<22) + 1
	}
	for i := 0; i < 30000; i++ {
		_ = h.Upsert(next(), 7)
	}
	pool.ResetStats()
	const n = 30000
	for i := 0; i < n; i++ {
		_ = h.Upsert(next(), 9)
	}
	pool.AddUserBytes(n * 16)
	pool.DrainXPBuffers()
	if amp := pool.Stats().XBIAmplification(); amp < 3 {
		t.Fatalf("LSM XBI = %.1f; compaction should amplify heavily", amp)
	}
}

func TestTombstonesDropAtBottomLevel(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	const n = 30000
	for i := uint64(1); i <= n; i++ {
		_ = h.Upsert(i, i)
	}
	for i := uint64(1); i <= n; i++ {
		_ = h.Delete(i)
	}
	// Keep inserting fresh keys to force compactions through the
	// bottom level.
	for i := uint64(n + 1); i <= 2*n; i++ {
		_ = h.Upsert(i, i)
	}
	for i := uint64(1); i <= n; i++ {
		if _, ok := h.Lookup(i); ok {
			t.Fatalf("deleted key %d visible", i)
		}
	}
	// Bottom-level compaction must have physically dropped the
	// tombstones that reached it: the last level holds at most the live
	// keys (n fresh inserts), not live + n tombstones.
	tr.mu.RLock()
	bottom := tr.levels[len(tr.levels)-1]
	entries := 0
	for _, r := range bottom {
		entries += r.count
	}
	tr.mu.RUnlock()
	if entries > int(n)+int(n)/4 {
		t.Fatalf("bottom level holds %d entries; tombstones not dropped (live %d)", entries, n)
	}
}
