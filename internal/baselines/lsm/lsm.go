// Package lsm is a compact LSM-tree on the PM model, standing in for
// the PMEM-RocksDB comparison of Table 3. It has the pieces that give
// RocksDB its PM behaviour: a DRAM memtable with a write-ahead log,
// sorted immutable runs flushed sequentially to PM, leveled compaction
// that rewrites whole runs (the write amplification that destroys its
// insert throughput), multi-level reads (slow lookups), and
// sort-merging iterators across levels (slow scans).
package lsm

import (
	"fmt"
	"sort"
	"sync"

	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

const (
	// memtableLimit is the entry count that triggers a flush to L0.
	memtableLimit = 4096
	// levelFanout is the size ratio between adjacent levels.
	levelFanout = 8
	// maxL0Runs triggers L0→L1 compaction.
	maxL0Runs = 4
	// sparseStep is the DRAM index granularity within a run.
	sparseStep = 16
	// tombstone marks deletions until the bottom level drops them.
	tombstone = uint64(0)
)

// run is one sorted immutable PM array of (key,value) pairs.
type run struct {
	addr   pmem.Addr
	count  int
	sparse []uint64 // every sparseStep-th key, in DRAM
	minKey uint64
	maxKey uint64
}

// Tree is the LSM instance.
type Tree struct {
	pool   *pmem.Pool
	alloc  *pmalloc.Allocator
	walman *wal.Manager

	mu       sync.RWMutex
	memtable memtree.Tree[uint64]
	levels   [][]*run // levels[0] = newest-first L0 runs
	stallVT  int64
	stallGen uint64
}

// New creates an empty LSM tree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	tr.walman = wal.NewManager(tr.alloc, 512<<10)
	tr.levels = make([][]*run, 4)
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "RocksDB-PM" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	dram := int64(tr.memtable.Len()) * 48
	for _, lvl := range tr.levels {
		for _, r := range lvl {
			dram += int64(len(r.sparse)) * 8
		}
	}
	return dram, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{
		tr:  tr,
		t:   tr.pool.NewThread(socket),
		log: wal.NewLog(tr.walman, socket),
		seq: 1,
	}
}

type handle struct {
	tr      *Tree
	t       *pmem.Thread
	log     *wal.Log
	seq     uint64
	seenGen uint64
}

// syncStall lifts the handle's clock over the latest flush/compaction
// stall, once per event (caller holds tr.mu at least for reading).
func (h *handle) syncStall() {
	if h.tr.stallGen != h.seenGen {
		h.seenGen = h.tr.stallGen
		h.t.SyncClock(h.tr.stallVT)
	}
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// Upsert implements index.Handle.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("lsm: key 0 is reserved")
	}
	return h.write(key, value)
}

// Delete implements index.Handle.
func (h *handle) Delete(key uint64) error { return h.write(key, tombstone) }

func (h *handle) write(key, value uint64) error {
	h.seq++
	if _, err := h.log.Append(h.t, wal.Entry{Key: key, Value: value, Timestamp: h.seq}); err != nil {
		return err
	}
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	h.syncStall()
	h.tr.memtable.Put(key, value)
	if h.tr.memtable.Len() >= memtableLimit {
		if err := h.flushMemtable(); err != nil {
			return err
		}
		if v := h.t.Now(); v > h.tr.stallVT {
			h.tr.stallVT = v
			h.tr.stallGen++
		}
	}
	return nil
}

// flushMemtable writes the memtable as a new L0 run and compacts as
// needed. Caller holds tr.mu.
func (h *handle) flushMemtable() error {
	kvs := make([]index.KV, 0, h.tr.memtable.Len())
	h.tr.memtable.Ascend(0, func(k uint64, v uint64) bool {
		kvs = append(kvs, index.KV{Key: k, Value: v})
		return true
	})
	r, err := h.writeRun(kvs)
	if err != nil {
		return err
	}
	h.tr.levels[0] = append([]*run{r}, h.tr.levels[0]...)
	h.tr.memtable = memtree.Tree[uint64]{}
	h.log.Detach() // entries are durable in the run now
	return h.maybeCompact()
}

// writeRun persists a sorted KV array sequentially (log-like locality).
func (h *handle) writeRun(kvs []index.KV) (*run, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	addr, err := h.tr.alloc.Alloc(h.t.Socket(), len(kvs)*16)
	if err != nil {
		return nil, fmt.Errorf("lsm: run alloc: %w", err)
	}
	words := make([]uint64, 2*len(kvs))
	sparse := make([]uint64, 0, len(kvs)/sparseStep+1)
	for i, kv := range kvs {
		words[2*i] = kv.Key
		words[2*i+1] = kv.Value
		if i%sparseStep == 0 {
			sparse = append(sparse, kv.Key)
		}
	}
	prev := h.t.SetTag(pmem.TagData)
	h.t.WriteRange(addr, words)
	h.t.Persist(addr, len(words)*8)
	h.t.SetTag(prev)
	return &run{
		addr:   addr,
		count:  len(kvs),
		sparse: sparse,
		minKey: kvs[0].Key,
		maxKey: kvs[len(kvs)-1].Key,
	}, nil
}

// runBytes sums a level's PM footprint.
func runBytes(lvl []*run) int {
	n := 0
	for _, r := range lvl {
		n += r.count * 16
	}
	return n
}

// maybeCompact merges levels that exceeded their budgets. Caller holds
// tr.mu; the rewriting is charged to the inserting thread, modeling a
// foreground compaction stall.
func (h *handle) maybeCompact() error {
	if len(h.tr.levels[0]) > maxL0Runs {
		if err := h.compact(0); err != nil {
			return err
		}
	}
	budget := memtableLimit * 16 * levelFanout
	for l := 1; l < len(h.tr.levels)-1; l++ {
		if runBytes(h.tr.levels[l]) > budget {
			if err := h.compact(l); err != nil {
				return err
			}
		}
		budget *= levelFanout
	}
	return nil
}

// compact merges every run of level l with level l+1 into one new run:
// read everything, k-way merge newest-wins, rewrite sequentially —
// RocksDB's write amplification in miniature.
func (h *handle) compact(l int) error {
	sources := make([][]index.KV, 0, len(h.tr.levels[l])+len(h.tr.levels[l+1]))
	free := make([]*run, 0)
	for _, r := range h.tr.levels[l] {
		sources = append(sources, h.readRun(r))
		free = append(free, r)
	}
	for _, r := range h.tr.levels[l+1] {
		sources = append(sources, h.readRun(r))
		free = append(free, r)
	}
	merged := mergeNewestWins(sources)
	if l+1 == len(h.tr.levels)-1 {
		// Bottom level: drop tombstones for real.
		live := merged[:0]
		for _, kv := range merged {
			if kv.Value != tombstone {
				live = append(live, kv)
			}
		}
		merged = live
	}
	r, err := h.writeRun(merged)
	if err != nil {
		return err
	}
	h.tr.levels[l] = nil
	if r != nil {
		h.tr.levels[l+1] = []*run{r}
	} else {
		h.tr.levels[l+1] = nil
	}
	for _, old := range free {
		h.tr.alloc.Free(old.addr, old.count*16)
	}
	return nil
}

// readRun loads a whole run (sequential PM reads).
func (h *handle) readRun(r *run) []index.KV {
	words := make([]uint64, 2*r.count)
	h.t.ReadRange(r.addr, words)
	kvs := make([]index.KV, r.count)
	for i := range kvs {
		kvs[i] = index.KV{Key: words[2*i], Value: words[2*i+1]}
	}
	return kvs
}

// mergeNewestWins k-way merges sorted sources; earlier sources are
// newer and win ties.
func mergeNewestWins(sources [][]index.KV) []index.KV {
	idx := make([]int, len(sources))
	var out []index.KV
	for {
		best := -1
		var bestKey uint64
		for s := range sources {
			if idx[s] >= len(sources[s]) {
				continue
			}
			k := sources[s][idx[s]].Key
			if best < 0 || k < bestKey {
				best = s
				bestKey = k
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, sources[best][idx[best]])
		for s := range sources {
			if idx[s] < len(sources[s]) && sources[s][idx[s]].Key == bestKey {
				idx[s]++
			}
		}
	}
}

// searchRun finds key in a run via the sparse DRAM index plus a short
// PM read.
func (h *handle) searchRun(r *run, key uint64) (uint64, bool) {
	if key < r.minKey || key > r.maxKey {
		return 0, false
	}
	h.t.Advance(int64(8) * h.t.CostDRAM()) // sparse binary search
	blk := sort.Search(len(r.sparse), func(i int) bool { return r.sparse[i] > key }) - 1
	if blk < 0 {
		return 0, false
	}
	lo := blk * sparseStep
	hi := lo + sparseStep
	if hi > r.count {
		hi = r.count
	}
	words := make([]uint64, 2*(hi-lo))
	h.t.ReadRange(r.addr.Add(int64(16*lo)), words)
	for i := 0; i < hi-lo; i++ {
		if words[2*i] == key {
			return words[2*i+1], true
		}
	}
	return 0, false
}

// Lookup implements index.Handle: memtable, then every level newest to
// oldest.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	h.syncStall()
	h.t.Advance(int64(h.tr.memtable.Depth()) * 6 * h.t.CostDRAM())
	if v, ok := h.tr.memtable.Get(key); ok {
		if v == tombstone {
			return 0, false
		}
		return v, true
	}
	for _, lvl := range h.tr.levels {
		for _, r := range lvl {
			if v, ok := h.searchRun(r, key); ok {
				if v == tombstone {
					return 0, false
				}
				return v, true
			}
		}
	}
	return 0, false
}

// Scan implements index.Handle: sort-merge the memtable and every run
// from the seek position — the multi-level seek that makes RocksDB
// scans an order of magnitude slower (Table 3).
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	h.syncStall()
	if max > len(out) {
		max = len(out)
	}
	lim := max + max/2 + 64 // headroom for shadowed versions/tombstones
	var sources [][]index.KV
	var mem []index.KV
	h.tr.memtable.Ascend(start, func(k uint64, v uint64) bool {
		mem = append(mem, index.KV{Key: k, Value: v})
		return len(mem) < lim
	})
	sources = append(sources, mem)
	for _, lvl := range h.tr.levels {
		for _, r := range lvl {
			sources = append(sources, h.seekRun(r, start, lim))
		}
	}
	merged := mergeNewestWins(sources)
	count := 0
	for _, kv := range merged {
		if count >= max {
			break
		}
		if kv.Value == tombstone {
			continue
		}
		out[count] = kv
		count++
	}
	return count
}

// seekRun reads up to lim entries with key ≥ start from a run.
func (h *handle) seekRun(r *run, start uint64, lim int) []index.KV {
	if start > r.maxKey {
		return nil
	}
	blk := sort.Search(len(r.sparse), func(i int) bool { return r.sparse[i] > start }) - 1
	lo := 0
	if blk > 0 {
		lo = blk * sparseStep
	}
	hi := lo + lim + sparseStep
	if hi > r.count {
		hi = r.count
	}
	words := make([]uint64, 2*(hi-lo))
	h.t.ReadRange(r.addr.Add(int64(16*lo)), words)
	var kvs []index.KV
	for i := 0; i < hi-lo; i++ {
		if words[2*i] >= start {
			kvs = append(kvs, index.KV{Key: words[2*i], Value: words[2*i+1]})
		}
	}
	return kvs
}
