// Package utree reproduces uTree (Chen et al., VLDB '20): a DRAM
// shadow B+-tree indexing a PM singly linked list that stores one KV
// per 64 B list node. Keeping structural refinement (splits, shifts)
// entirely in DRAM gives uTree its low tail latency, but each insert
// persists one fresh list node and one predecessor pointer — two
// cacheline flushes to two unrelated XPLines — so XBI-amplification is
// among the worst of the evaluated indexes (Fig 3), and range scans
// chase random PM pointers (the slowest scans in Fig 10e).
package utree

import (
	"fmt"
	"sync"

	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

// List node layout (64 B = one cacheline):
//
//	word0 key, word1 value, word2 next, words 3-7 pad
const nodeBytes = 64

// Tree is a uTree instance.
type Tree struct {
	pool  *pmem.Pool
	alloc *pmalloc.Allocator

	mu   sync.RWMutex
	dir  memtree.Tree[pmem.Addr] // key -> list node
	head pmem.Addr               // sentinel list node (key 0)
}

// New creates an empty uTree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	t := pool.NewThread(0)
	head, err := tr.alloc.Alloc(0, nodeBytes)
	if err != nil {
		return nil, fmt.Errorf("utree: %w", err)
	}
	prev := t.SetTag(pmem.TagLeaf)
	t.WriteRange(head, make([]uint64, nodeBytes/8))
	t.Persist(head, nodeBytes)
	t.SetTag(prev)
	tr.head = head
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "uTree" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index: the whole shadow tree is DRAM.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	// Shadow entry: key + pointer + B+-tree overhead (the paper notes
	// uTree's DRAM footprint rivals its PM footprint).
	return int64(tr.dir.Len()) * 32, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{tr: tr, t: tr.pool.NewThread(socket)}
}

type handle struct {
	tr *Tree
	t  *pmem.Thread
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// Upsert implements index.Handle.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("utree: key 0 is reserved")
	}
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	h.t.Advance(int64(h.tr.dir.Depth()) * 6 * h.t.CostDRAM())
	prevTag := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prevTag)

	if node, ok := h.tr.dir.Get(key); ok {
		// In-place value update: one flush to the node's line.
		h.t.Store(node.Add(8), value)
		h.t.Persist(node.Add(8), 8)
		return nil
	}
	// Predecessor in the list (sentinel when none).
	pred := h.tr.head
	if _, p, ok := h.tr.dir.FindLE(key); ok {
		pred = p
	}
	succ := h.t.Load(pred.Add(16))

	node, err := h.tr.alloc.Alloc(h.t.Socket(), nodeBytes)
	if err != nil {
		return fmt.Errorf("utree: %w", err)
	}
	// Persist the new node, then atomically link it: two flushes to
	// two unrelated XPLines.
	h.t.Store(node, key)
	h.t.Store(node.Add(8), value)
	h.t.Store(node.Add(16), succ)
	h.t.Persist(node, 24)
	h.t.Store(pred.Add(16), uint64(node))
	h.t.Persist(pred.Add(16), 8)

	h.tr.dir.Put(key, node)
	return nil
}

// Delete implements index.Handle: unlink from the list (one random
// flush) and drop the shadow entry.
func (h *handle) Delete(key uint64) error {
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	node, ok := h.tr.dir.Get(key)
	if !ok {
		return nil
	}
	prevTag := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prevTag)
	pred := h.tr.head
	h.tr.dir.Delete(key)
	if _, p, ok := h.tr.dir.FindLE(key); ok {
		pred = p
	}
	succ := h.t.Load(node.Add(16))
	h.t.Store(pred.Add(16), succ)
	h.t.Persist(pred.Add(16), 8)
	h.tr.alloc.Free(node, nodeBytes)
	return nil
}

// Lookup implements index.Handle: shadow tree then one PM read.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	h.t.Advance(int64(h.tr.dir.Depth()) * 6 * h.t.CostDRAM())
	node, ok := h.tr.dir.Get(key)
	if !ok {
		return 0, false
	}
	prevTag := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prevTag)
	return h.t.Load(node.Add(8)), true
}

// Scan implements index.Handle: ordered keys come from the shadow
// tree, but every value is a random PM pointer chase.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	prevTag := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prevTag)
	count := 0
	h.tr.dir.Ascend(start, func(k uint64, node pmem.Addr) bool {
		out[count] = index.KV{Key: k, Value: h.t.Load(node.Add(8))}
		count++
		return count < max
	})
	return count
}
