package utree

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestTwoRandomXPLinesPerInsert(t *testing.T) {
	// uTree's defining cost (Fig 3): a fresh node write plus a
	// predecessor pointer update, in two unrelated XPLines.
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	rng := uint64(777)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng%(1<<30) | 1
	}
	for i := 0; i < 20000; i++ {
		_ = h.Upsert(next(), 1)
	}
	pool.ResetStats()
	const n = 10000
	for i := 0; i < n; i++ {
		_ = h.Upsert(next(), 1)
	}
	pool.DrainXPBuffers()
	s := pool.Stats()
	// Every insert dirties a random predecessor XPLine (the new node
	// itself is pool-allocated and partially combines): ≈1 XPLine of
	// media write per 16 B op — the worst-in-class XBI of Fig 3.
	bytesPerOp := float64(s.MediaWriteBytes) / n
	if bytesPerOp < 180 {
		t.Fatalf("uTree media write/op = %.0f B, expected ≈256 (random XPLine per insert)", bytesPerOp)
	}
}
