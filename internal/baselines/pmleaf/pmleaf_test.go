package pmleaf

import (
	"testing"

	"cclbtree/internal/pmem"
)

func TestMetaPacking(t *testing.T) {
	next := pmem.MakeAddr(1, 0x4200)
	m := PackMeta(0x2aaa, next)
	bm, n := UnpackMeta(m)
	if bm != 0x2aaa || n != next {
		t.Fatalf("roundtrip: %x %v", bm, n)
	}
	bm, n = UnpackMeta(PackMeta(5, pmem.NilAddr))
	if bm != 5 || !n.IsNil() {
		t.Fatalf("nil next roundtrip: %x %v", bm, n)
	}
}

func TestImageSlots(t *testing.T) {
	var li Image
	li.SetKV(3, 77, 88)
	li.SetFP(3, FP(77))
	li.SetMeta(PackMeta(1<<3, pmem.NilAddr))
	if !li.Valid(3) || li.Key(3) != 77 || li.Val(3) != 88 || li.FPAt(3) != FP(77) {
		t.Fatal("slot accessors wrong")
	}
	if li.Count() != 1 {
		t.Fatalf("Count = %d", li.Count())
	}
	if li.FreeSlot() != 0 {
		t.Fatalf("FreeSlot = %d", li.FreeSlot())
	}
	if li.FindKey(77) != 3 || li.FindKey(78) != -1 {
		t.Fatal("FindKey wrong")
	}
}

func TestSortedLive(t *testing.T) {
	var li Image
	keys := []uint64{50, 10, 30}
	var bm uint16
	for i, k := range keys {
		li.SetKV(i, k, k*2)
		bm |= 1 << uint(i)
	}
	li.SetMeta(PackMeta(bm, pmem.NilAddr))
	kvs, slots := li.SortedLive()
	want := []uint64{10, 30, 50}
	wantSlots := []int{1, 2, 0}
	for i := range want {
		if kvs[i].Key != want[i] || slots[i] != wantSlots[i] {
			t.Fatalf("sorted[%d] = %+v slot %d", i, kvs[i], slots[i])
		}
	}
}

func TestFPDistribution(t *testing.T) {
	seen := map[byte]int{}
	for i := uint64(1); i <= 4096; i++ {
		seen[FP(i)]++
	}
	if len(seen) < 200 {
		t.Fatalf("fingerprints poorly distributed: %d distinct", len(seen))
	}
}
