// Package pmleaf provides the 256 B unsorted fingerprinted PM leaf
// layout shared by the FPTree-family baselines (FPTree, LB+-Tree,
// DPTree's base tree, PACTree's leaf variant): a 32 B header holding a
// validity bitmap, a packed next pointer, and 14 fingerprints, followed
// by 14 unsorted KV slots. One leaf is exactly one XPLine.
package pmleaf

import (
	"math/bits"
	"sort"

	"cclbtree/internal/index"
	"cclbtree/internal/pmem"
)

const (
	// Bytes is the leaf size (one XPLine).
	Bytes = 256
	// Slots is the KV capacity.
	Slots = 14
	// Words is the leaf size in 8 B words.
	Words = Bytes / pmem.WordSize

	metaWord = 0
	fpWord   = 2
	slotBase = 4

	bitmapMask = 1<<Slots - 1
)

// PackMeta builds the header word from a bitmap and next pointer.
func PackMeta(bitmap uint16, next pmem.Addr) uint64 {
	v := uint64(bitmap) & bitmapMask
	if !next.IsNil() {
		v |= next.Pack48() << 16
	}
	return v
}

// UnpackMeta reverses PackMeta.
func UnpackMeta(meta uint64) (uint16, pmem.Addr) {
	bm := uint16(meta & bitmapMask)
	raw := meta >> 16
	if raw == 0 {
		return bm, pmem.NilAddr
	}
	return bm, pmem.Unpack48(raw)
}

// FP returns the 1 B fingerprint for a key.
func FP(key uint64) byte {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return byte(x ^ x>>8 ^ x>>16 ^ x>>32)
}

// Image is a DRAM copy of one leaf.
type Image struct {
	Addr  pmem.Addr
	Words [Words]uint64
}

// Read loads the whole leaf (one XPLine access when cold).
func (li *Image) Read(t *pmem.Thread, a pmem.Addr) {
	li.Addr = a
	t.ReadRange(a, li.Words[:])
}

// ReadHeader loads only the 32 B header cacheline.
func (li *Image) ReadHeader(t *pmem.Thread, a pmem.Addr) {
	li.Addr = a
	t.ReadRange(a, li.Words[:slotBase])
}

// Meta returns the raw header word.
func (li *Image) Meta() uint64 { return li.Words[metaWord] }

// SetMeta replaces the header word in the image.
func (li *Image) SetMeta(v uint64) { li.Words[metaWord] = v }

// Bitmap returns the validity bitmap.
func (li *Image) Bitmap() uint16 { bm, _ := UnpackMeta(li.Meta()); return bm }

// Next returns the next-leaf pointer.
func (li *Image) Next() pmem.Addr { _, n := UnpackMeta(li.Meta()); return n }

// Key and Val access slot i.
func (li *Image) Key(i int) uint64 { return li.Words[slotBase+2*i] }
func (li *Image) Val(i int) uint64 { return li.Words[slotBase+2*i+1] }

// SetKV fills slot i in the image.
func (li *Image) SetKV(i int, k, v uint64) {
	li.Words[slotBase+2*i] = k
	li.Words[slotBase+2*i+1] = v
}

// FPAt returns slot i's fingerprint byte.
func (li *Image) FPAt(i int) byte {
	return byte(li.Words[fpWord+i/8] >> (8 * uint(i%8)))
}

// SetFP sets slot i's fingerprint in the image.
func (li *Image) SetFP(i int, f byte) {
	w := &li.Words[fpWord+i/8]
	shift := 8 * uint(i%8)
	*w = *w&^(0xff<<shift) | uint64(f)<<shift
}

// Valid reports whether slot i is set.
func (li *Image) Valid(i int) bool { return li.Bitmap()&(1<<uint(i)) != 0 }

// Count returns the number of valid slots.
func (li *Image) Count() int { return bits.OnesCount16(li.Bitmap()) }

// FreeSlot returns the lowest free slot index, or -1.
func (li *Image) FreeSlot() int {
	free := ^uint32(li.Bitmap()) & bitmapMask
	if free == 0 {
		return -1
	}
	return bits.TrailingZeros32(free)
}

// FindKey locates key among valid slots using the fingerprint filter,
// returning the slot or -1.
func (li *Image) FindKey(key uint64) int {
	bm := li.Bitmap()
	f := FP(key)
	for i := 0; i < Slots; i++ {
		if bm&(1<<uint(i)) != 0 && li.FPAt(i) == f && li.Key(i) == key {
			return i
		}
	}
	return -1
}

// SlotAddr returns the PM address of slot i's key word.
func SlotAddr(leaf pmem.Addr, i int) pmem.Addr {
	return leaf.Add(int64(8 * (slotBase + 2*i)))
}

// MetaAddr returns the PM address of the header word.
func MetaAddr(leaf pmem.Addr) pmem.Addr { return leaf }

// WriteWhole writes and persists a complete leaf image.
func WriteWhole(t *pmem.Thread, li *Image) {
	prev := t.SetTag(pmem.TagLeaf)
	t.WriteRange(li.Addr, li.Words[:])
	t.Persist(li.Addr, Bytes)
	t.SetTag(prev)
}

// SortedLive returns the leaf's valid entries sorted by key, paired
// with their slot indices.
func (li *Image) SortedLive() (kvs []index.KV, slots []int) {
	for i := 0; i < Slots; i++ {
		if li.Valid(i) {
			kvs = append(kvs, index.KV{Key: li.Key(i), Value: li.Val(i)})
			slots = append(slots, i)
		}
	}
	order := make([]int, len(kvs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return kvs[order[a]].Key < kvs[order[b]].Key })
	sk := make([]index.KV, len(kvs))
	ss := make([]int, len(kvs))
	for i, o := range order {
		sk[i] = kvs[o]
		ss[i] = slots[o]
	}
	return sk, ss
}
