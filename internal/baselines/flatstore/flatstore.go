// Package flatstore reimplements FlatStore (Chen et al., ASPLOS '20)
// the way the paper did for its comparison (§5.1, the original is not
// open source): a log-structured PM layout — per-thread logs receiving
// every KV as a sequential append — under a volatile index mapping keys
// to log positions.
//
// Sequential appends give FlatStore near-1 XBI-amplification and the
// best insert throughput (Table 3), but entries live in chronological,
// not key, order: a range query takes one random PM read per element,
// which is exactly the 82% range-query degradation the paper motivates
// CCL-BTree with (Fig 5).
package flatstore

import (
	"fmt"
	"sync"

	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// Tree is a FlatStore instance.
type Tree struct {
	pool   *pmem.Pool
	alloc  *pmalloc.Allocator
	walman *wal.Manager

	mu  sync.RWMutex
	dir memtree.Tree[pmem.Addr] // key -> log entry address
}

// New creates an empty FlatStore.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	tr.walman = wal.NewManager(tr.alloc, 512<<10)
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "FlatStore" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return int64(tr.dir.Len()) * 24, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{
		tr:  tr,
		t:   tr.pool.NewThread(socket),
		log: wal.NewLog(tr.walman, socket),
		seq: 1,
	}
}

type handle struct {
	tr  *Tree
	t   *pmem.Thread
	log *wal.Log
	seq uint64
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// Upsert implements index.Handle: sequential log append + volatile
// index update.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("flatstore: key 0 is reserved")
	}
	h.seq++
	addr, err := h.log.Append(h.t, wal.Entry{Key: key, Value: value, Timestamp: h.seq})
	if err != nil {
		return err
	}
	h.tr.mu.Lock()
	h.t.Advance(int64(h.tr.dir.Depth()) * 6 * h.t.CostDRAM())
	h.tr.dir.Put(key, addr)
	h.tr.mu.Unlock()
	return nil
}

// Delete implements index.Handle: tombstone append + index removal.
func (h *handle) Delete(key uint64) error {
	h.seq++
	if _, err := h.log.Append(h.t, wal.Entry{Key: key, Value: 0, Timestamp: h.seq}); err != nil {
		return err
	}
	h.tr.mu.Lock()
	h.tr.dir.Delete(key)
	h.tr.mu.Unlock()
	return nil
}

// Lookup implements index.Handle: index probe + one PM read.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	h.t.Advance(int64(h.tr.dir.Depth()) * 6 * h.t.CostDRAM())
	addr, ok := h.tr.dir.Get(key)
	h.tr.mu.RUnlock()
	if !ok {
		return 0, false
	}
	prev := h.t.SetTag(pmem.TagWAL)
	v := h.t.Load(addr.Add(8))
	h.t.SetTag(prev)
	return v, true
}

// Scan implements index.Handle: keys are ordered in the volatile index
// but every value sits at a chronologically determined log position —
// one random PM read per result.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	prev := h.t.SetTag(pmem.TagWAL)
	defer h.t.SetTag(prev)
	count := 0
	h.tr.dir.Ascend(start, func(k uint64, addr pmem.Addr) bool {
		out[count] = index.KV{Key: k, Value: h.t.Load(addr.Add(8))}
		count++
		return count < max
	})
	return count
}
