package flatstore

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestSequentialLayoutNearUnityAmplification(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	rng := uint64(11)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		_ = h.Upsert(rng%(1<<30)|1, 1)
	}
	pool.ResetStats()
	const n = 20000
	for i := 0; i < n; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		_ = h.Upsert(rng%(1<<30)|1, 1)
	}
	pool.DrainXPBuffers()
	amp := float64(pool.Stats().MediaWriteBytes) / float64(n*16)
	if amp > 2.5 {
		t.Fatalf("FlatStore XBI = %.2f; log-structured writes should be ≈1.5 (24 B entries)", amp)
	}
}
