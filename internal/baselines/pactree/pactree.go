// Package pactree is a stand-in for PACTree (Kim et al., SOSP '21)
// faithful to the properties the paper's comparison exercises: a
// volatile search layer over persistent leaf nodes that keep their
// entries sorted (shift-on-insert, several flushes landing in one
// random XPLine), with leaves allocated from the operating thread's
// local socket pool (PACTree's NUMA-aware packed pools).
//
// The original's asynchronous structural-refinement pipeline and
// trie-shaped search layer are not reproduced — they affect tail
// latency, not the write-amplification and throughput behaviours the
// experiments here measure. Deletes are implemented (the original's
// public code could not run them, §5.1), but the harness mirrors the
// paper and skips PACTree in delete workloads.
package pactree

import (
	"fmt"
	"sync"

	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

// Leaf layout: word0 = count, word1 = next, words 2..31 = 15 sorted
// pairs. 256 B, one XPLine.
const (
	leafBytes = 256
	leafWords = leafBytes / pmem.WordSize
	maxPairs  = 15
	cntWord   = 0
	nextWord  = 1
	pairBase  = 2
)

// Tree is a PACTree-style index.
type Tree struct {
	pool  *pmem.Pool
	alloc *pmalloc.Allocator

	mu  sync.RWMutex
	dir memtree.Tree[pmem.Addr]
}

// New creates an empty tree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	t := pool.NewThread(0)
	head, err := tr.alloc.Alloc(0, leafBytes)
	if err != nil {
		return nil, fmt.Errorf("pactree: %w", err)
	}
	prev := t.SetTag(pmem.TagLeaf)
	t.WriteRange(head, make([]uint64, leafWords))
	t.Persist(head, leafBytes)
	t.SetTag(prev)
	tr.dir.Put(0, head)
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "PACTree" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return int64(tr.dir.Len()) * 20, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{tr: tr, t: tr.pool.NewThread(socket)}
}

type handle struct {
	tr *Tree
	t  *pmem.Thread
}

func (h *handle) Thread() *pmem.Thread { return h.t }

type leafImg struct {
	addr  pmem.Addr
	words [leafWords]uint64
}

func (li *leafImg) read(t *pmem.Thread, a pmem.Addr) {
	li.addr = a
	t.ReadRange(a, li.words[:])
}

func (li *leafImg) count() int       { return int(li.words[cntWord]) }
func (li *leafImg) next() pmem.Addr  { return pmem.Addr(li.words[nextWord]) }
func (li *leafImg) key(i int) uint64 { return li.words[pairBase+2*i] }
func (li *leafImg) val(i int) uint64 { return li.words[pairBase+2*i+1] }

func (li *leafImg) lowerBound(k uint64) int {
	lo, hi := 0, li.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if li.key(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (tr *Tree) leafFor(t *pmem.Thread, key uint64) pmem.Addr {
	t.Advance(int64(tr.dir.Depth()) * 6 * t.CostDRAM())
	_, a, ok := tr.dir.FindLE(key)
	if !ok {
		_, a, _ = tr.dir.Min()
	}
	return a
}

// Upsert implements index.Handle: sorted insert with shifting.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("pactree: key 0 is reserved")
	}
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	return h.insert(key, value)
}

func (h *handle) insert(key, value uint64) error {
	var img leafImg
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.read(h.t, h.tr.leafFor(h.t, key))
	i := img.lowerBound(key)
	if i < img.count() && img.key(i) == key {
		a := img.addr.Add(int64(8 * (pairBase + 2*i + 1)))
		h.t.Store(a, value)
		h.t.Persist(a, 8)
		return nil
	}
	if img.count() == maxPairs {
		if err := h.split(&img); err != nil {
			return err
		}
		return h.insert(key, value)
	}
	// Shift right, write new pair, flush touched lines, bump count.
	cnt := img.count()
	for j := cnt - 1; j >= i; j-- {
		h.t.Store(img.addr.Add(int64(8*(pairBase+2*j+2))), img.key(j))
		h.t.Store(img.addr.Add(int64(8*(pairBase+2*j+3))), img.val(j))
		img.words[pairBase+2*j+2] = img.key(j)
		img.words[pairBase+2*j+3] = img.val(j)
	}
	h.t.Store(img.addr.Add(int64(8*(pairBase+2*i))), key)
	h.t.Store(img.addr.Add(int64(8*(pairBase+2*i+1))), value)
	h.t.Flush(img.addr.Add(int64(8*(pairBase+2*i))), 8*2*(cnt-i+1))
	h.t.Fence()
	h.t.Store(img.addr.Add(8*cntWord), uint64(cnt+1))
	h.t.Persist(img.addr, 8)
	return nil
}

func (h *handle) split(img *leafImg) error {
	// New leaf on the local socket (PACTree's per-NUMA pools).
	newLeaf, err := h.tr.alloc.Alloc(h.t.Socket(), leafBytes)
	if err != nil {
		return fmt.Errorf("pactree: %w", err)
	}
	mid := maxPairs / 2
	splitKey := img.key(mid)
	var rimg [leafWords]uint64
	rc := maxPairs - mid
	rimg[cntWord] = uint64(rc)
	rimg[nextWord] = uint64(img.next())
	for i := 0; i < rc; i++ {
		rimg[pairBase+2*i] = img.key(mid + i)
		rimg[pairBase+2*i+1] = img.val(mid + i)
	}
	h.t.WriteRange(newLeaf, rimg[:])
	h.t.Persist(newLeaf, leafBytes)
	h.t.Store(img.addr.Add(8*nextWord), uint64(newLeaf))
	h.t.Store(img.addr.Add(8*cntWord), uint64(mid))
	img.words[cntWord] = uint64(mid)
	img.words[nextWord] = uint64(newLeaf)
	h.t.Persist(img.addr, 16)
	h.tr.dir.Put(splitKey, newLeaf)
	return nil
}

// Delete implements index.Handle: shift-left removal.
func (h *handle) Delete(key uint64) error {
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	var img leafImg
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.read(h.t, h.tr.leafFor(h.t, key))
	i := img.lowerBound(key)
	if i >= img.count() || img.key(i) != key {
		return nil
	}
	cnt := img.count()
	for j := i; j < cnt-1; j++ {
		h.t.Store(img.addr.Add(int64(8*(pairBase+2*j))), img.key(j+1))
		h.t.Store(img.addr.Add(int64(8*(pairBase+2*j+1))), img.val(j+1))
		img.words[pairBase+2*j] = img.key(j + 1)
		img.words[pairBase+2*j+1] = img.val(j + 1)
	}
	if i < cnt-1 {
		h.t.Flush(img.addr.Add(int64(8*(pairBase+2*i))), 8*2*(cnt-1-i))
		h.t.Fence()
	}
	h.t.Store(img.addr.Add(8*cntWord), uint64(cnt-1))
	h.t.Persist(img.addr, 8)
	return nil
}

// Lookup implements index.Handle.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	var img leafImg
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.read(h.t, h.tr.leafFor(h.t, key))
	i := img.lowerBound(key)
	if i < img.count() && img.key(i) == key {
		return img.val(i), true
	}
	return 0, false
}

// Scan implements index.Handle: sorted leaves chain directly.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	var img leafImg
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.read(h.t, h.tr.leafFor(h.t, start))
	count := 0
	i := img.lowerBound(start)
	for count < max {
		for ; i < img.count() && count < max; i++ {
			out[count] = index.KV{Key: img.key(i), Value: img.val(i)}
			count++
		}
		next := img.next()
		if next.IsNil() || count >= max {
			break
		}
		img.read(h.t, next)
		i = 0
	}
	return count
}
