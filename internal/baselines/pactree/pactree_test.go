package pactree

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestLeavesStaySorted(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0).(*handle)
	rng := uint64(31)
	for i := 0; i < 20000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		_ = h.Upsert(rng%(1<<30)|1, 1)
	}
	// Walk the whole chain; every leaf must be internally sorted and
	// ordered against its successor.
	var img leafImg
	img.read(h.t, tr.leafFor(h.t, 1))
	var prev uint64
	for {
		for i := 0; i < img.count(); i++ {
			if img.key(i) <= prev {
				t.Fatalf("leaf disorder: %d after %d", img.key(i), prev)
			}
			prev = img.key(i)
		}
		next := img.next()
		if next.IsNil() {
			break
		}
		img.read(h.t, next)
	}
}
