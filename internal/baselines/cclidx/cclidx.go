// Package cclidx adapts CCL-BTree to the common index.Index interface
// so the benchmark harness drives it like every comparison target. It
// sits on the public cclbtree API — the harness exercises exactly the
// surface users get.
package cclidx

import (
	"cclbtree"
	"cclbtree/internal/index"
	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// Tree wraps a public cclbtree.DB as an index.Index.
type Tree struct {
	db   *cclbtree.DB
	name string
}

// Factory returns an index.Factory with the given tree config. The
// name distinguishes ablation variants ("CCL-BTree", "Base", "+BNode").
func Factory(name string, cfg cclbtree.Config) index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) {
		db, err := cclbtree.NewOnPool(pool, cfg)
		if err != nil {
			return nil, err
		}
		return &Tree{db: db, name: name}, nil
	}
}

// Default is the paper-default CCL-BTree factory.
func Default() index.Factory { return Factory("CCL-BTree", cclbtree.Config{}) }

// DB exposes the wrapped public tree (counters, GC control, recovery
// experiments).
func (t *Tree) DB() *cclbtree.DB { return t.db }

// Name implements index.Index.
func (t *Tree) Name() string { return t.name }

// NewHandle implements index.Index.
func (t *Tree) NewHandle(socket int) index.Handle {
	return handle{s: t.db.Session(socket)}
}

// MemoryUsage implements index.Index.
func (t *Tree) MemoryUsage() (int64, int64) { return t.db.MemoryUsage() }

// Profile exposes the contention/heat profile so the bench harness
// attaches it to phase records (empty unless Config.Metrics is on).
func (t *Tree) Profile() obs.Profile { return t.db.Profile() }

// Close implements index.Index.
func (t *Tree) Close() { t.db.Close() }

type handle struct {
	s *cclbtree.Session
}

func (h handle) Upsert(key, value uint64) error {
	if cclbtree.IsIndirect(value) {
		// Harness-built indirection pointers (Fig 15c / Fig 18).
		return h.s.PutIndirect(key, value)
	}
	return h.s.Put(key, value)
}
func (h handle) Delete(key uint64) error { return h.s.Delete(key) }
func (h handle) Lookup(key uint64) (uint64, bool) {
	return h.s.Get(key)
}

func (h handle) Scan(start uint64, max int, out []index.KV) int {
	tmp := make([]cclbtree.KV, max)
	n := h.s.Scan(start, tmp)
	for i := 0; i < n; i++ {
		out[i] = index.KV{Key: tmp[i].Key, Value: tmp[i].Value}
	}
	return n
}

func (h handle) Thread() *pmem.Thread { return h.s.Thread() }
