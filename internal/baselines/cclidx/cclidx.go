// Package cclidx adapts CCL-BTree to the common index.Index interface
// so the benchmark harness drives it like every comparison target.
package cclidx

import (
	"cclbtree/internal/core"
	"cclbtree/internal/index"
	"cclbtree/internal/pmem"
)

// Tree wraps core.Tree as an index.Index.
type Tree struct {
	inner *core.Tree
	name  string
}

// Factory returns an index.Factory with the given tree options. The
// name distinguishes ablation variants ("CCL-BTree", "Base", "+BNode").
func Factory(name string, opts core.Options) index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) {
		tr, err := core.New(pool, opts)
		if err != nil {
			return nil, err
		}
		return &Tree{inner: tr, name: name}, nil
	}
}

// Default is the paper-default CCL-BTree factory.
func Default() index.Factory { return Factory("CCL-BTree", core.Options{}) }

// Core exposes the wrapped tree (recovery and GC experiments).
func (t *Tree) Core() *core.Tree { return t.inner }

// Name implements index.Index.
func (t *Tree) Name() string { return t.name }

// NewHandle implements index.Index.
func (t *Tree) NewHandle(socket int) index.Handle {
	return handle{w: t.inner.NewWorker(socket)}
}

// MemoryUsage implements index.Index.
func (t *Tree) MemoryUsage() (int64, int64) { return t.inner.MemoryUsage() }

// Close implements index.Index.
func (t *Tree) Close() { t.inner.Freeze() }

type handle struct {
	w *core.Worker
}

func (h handle) Upsert(key, value uint64) error {
	if core.IsBlobWord(value) {
		// Harness-built indirection pointers (Fig 15c / Fig 18).
		return h.w.UpsertIndirect(key, value)
	}
	return h.w.Upsert(key, value)
}
func (h handle) Delete(key uint64) error { return h.w.Delete(key) }
func (h handle) Lookup(key uint64) (uint64, bool) {
	return h.w.Lookup(key)
}

func (h handle) Scan(start uint64, max int, out []index.KV) int {
	tmp := make([]core.KV, max)
	n := h.w.Scan(start, max, tmp)
	for i := 0; i < n; i++ {
		out[i] = index.KV{Key: tmp[i].Key, Value: tmp[i].Value}
	}
	return n
}

func (h handle) Thread() *pmem.Thread { return h.w.Thread() }
