package cclidx

import (
	"testing"

	"cclbtree"
	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Default(), indextest.Options{})
}

func TestConformanceBaseAblation(t *testing.T) {
	indextest.Run(t, Factory("Base", cclbtree.Config{Nbatch: -1}), indextest.Options{})
}

func TestConformanceNaiveLogging(t *testing.T) {
	indextest.Run(t, Factory("+BNode", cclbtree.Config{NaiveLogging: true}), indextest.Options{})
}
