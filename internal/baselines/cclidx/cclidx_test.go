package cclidx

import (
	"testing"

	"cclbtree/internal/core"
	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Default(), indextest.Options{})
}

func TestConformanceBaseAblation(t *testing.T) {
	indextest.Run(t, Factory("Base", core.Options{Nbatch: -1}), indextest.Options{})
}

func TestConformanceNaiveLogging(t *testing.T) {
	indextest.Run(t, Factory("+BNode", core.Options{NaiveLogging: true}), indextest.Options{})
}
