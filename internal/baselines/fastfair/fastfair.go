// Package fastfair is a reproduction of FAST&FAIR (Hwang et al., FAST
// '18) at the fidelity this repository's experiments need: a B+-tree
// kept entirely in PM with sorted 256 B nodes, failure-atomic shifting
// on insert (every 8 B store is atomic; shifted regions are flushed per
// cacheline), and sibling pointers for range scans.
//
// Being all-PM it pays PM latency for inner-node traversal, and its
// sorted leaves shift on average half a node per insert — several
// cacheline flushes landing in one random XPLine. That makes it the
// classic "low CLI, high XBI" design the paper measures (Fig 3).
//
// Simplifications vs. the original: a coarse reader/writer lock
// replaces lock-free reads (virtual-time results are unaffected; the
// cost model charges the same PM work), and underflow merging is
// omitted (the original also tolerates underfull nodes).
package fastfair

import (
	"fmt"
	"sync"

	"cclbtree/internal/index"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

const (
	nodeBytes = 256
	nodeWords = nodeBytes / pmem.WordSize
	maxPairs  = 15 // (256 − 16 B header) / 16 B
	metaWord  = 0
	linkWord  = 1 // leaf: right sibling; inner: leftmost child
	pairBase  = 2
)

const leafFlag = uint64(1) << 16

// Tree is a FAST&FAIR B+-tree on a PM pool.
type Tree struct {
	pool  *pmem.Pool
	alloc *pmalloc.Allocator

	mu     sync.RWMutex
	root   pmem.Addr
	height int
	nodes  int64
}

// New creates an empty tree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	t := pool.NewThread(0)
	root, err := tr.newNode(t, true)
	if err != nil {
		return nil, err
	}
	tr.root = root
	tr.height = 1
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "FAST&FAIR" }

// Close implements index.Index (no background work).
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index: FAST&FAIR is a pure-PM index.
func (tr *Tree) MemoryUsage() (int64, int64) {
	return 0, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{tr: tr, t: tr.pool.NewThread(socket)}
}

func (tr *Tree) newNode(t *pmem.Thread, leaf bool) (pmem.Addr, error) {
	a, err := tr.alloc.Alloc(t.Socket(), nodeBytes)
	if err != nil {
		return pmem.NilAddr, fmt.Errorf("fastfair: %w", err)
	}
	var img [nodeWords]uint64
	if leaf {
		img[metaWord] = leafFlag
	}
	prev := t.SetTag(pmem.TagLeaf)
	t.WriteRange(a, img[:])
	t.Persist(a, nodeBytes)
	t.SetTag(prev)
	tr.nodes++
	return a, nil
}

type nodeImg struct {
	addr  pmem.Addr
	words [nodeWords]uint64
}

func (n *nodeImg) count() int       { return int(n.words[metaWord] & 0xffff) }
func (n *nodeImg) leaf() bool       { return n.words[metaWord]&leafFlag != 0 }
func (n *nodeImg) link() pmem.Addr  { return pmem.Addr(n.words[linkWord]) }
func (n *nodeImg) key(i int) uint64 { return n.words[pairBase+2*i] }
func (n *nodeImg) val(i int) uint64 { return n.words[pairBase+2*i+1] }

func readNode(t *pmem.Thread, a pmem.Addr, img *nodeImg) {
	img.addr = a
	t.ReadRange(a, img.words[:])
}

// lowerBound returns the first index with key ≥ k.
func (n *nodeImg) lowerBound(k uint64) int {
	lo, hi := 0, n.count()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.key(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor routes k in an inner node.
func (n *nodeImg) childFor(k uint64) pmem.Addr {
	i := n.lowerBound(k)
	if i < n.count() && n.key(i) == k {
		return pmem.Addr(n.val(i))
	}
	if i == 0 {
		return n.link()
	}
	return pmem.Addr(n.val(i - 1))
}

type handle struct {
	tr *Tree
	t  *pmem.Thread
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// descend walks from the root to the leaf owning k, filling path with
// the visited inner nodes (root first).
func (h *handle) descend(k uint64, path *[]nodeImg) nodeImg {
	var img nodeImg
	a := h.tr.root
	for {
		readNode(h.t, a, &img)
		if img.leaf() {
			return img
		}
		if path != nil {
			*path = append(*path, img)
		}
		a = img.childFor(k)
	}
}

// Lookup implements index.Handle.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	leaf := h.descend(key, nil)
	i := leaf.lowerBound(key)
	if i < leaf.count() && leaf.key(i) == key {
		return leaf.val(i), true
	}
	return 0, false
}

// Scan implements index.Handle.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	leaf := h.descend(start, nil)
	count := 0
	i := leaf.lowerBound(start)
	for count < max {
		for ; i < leaf.count() && count < max; i++ {
			out[count] = index.KV{Key: leaf.key(i), Value: leaf.val(i)}
			count++
		}
		next := leaf.link()
		if next.IsNil() || count >= max {
			break
		}
		readNode(h.t, next, &leaf)
		i = 0
	}
	return count
}

// Upsert implements index.Handle.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("fastfair: key 0 is reserved")
	}
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	return h.insert(key, value)
}

func (h *handle) insert(key, value uint64) error {
	path := make([]nodeImg, 0, 8)
	leaf := h.descend(key, &path)
	i := leaf.lowerBound(key)
	if i < leaf.count() && leaf.key(i) == key {
		// In-place 8 B update, one flush.
		prev := h.t.SetTag(pmem.TagLeaf)
		a := leaf.addr.Add(int64(8 * (pairBase + 2*i + 1)))
		h.t.Store(a, value)
		h.t.Persist(a, 8)
		h.t.SetTag(prev)
		return nil
	}
	if leaf.count() == maxPairs {
		if err := h.split(&leaf, path); err != nil {
			return err
		}
		return h.insert(key, value) // re-descend into the correct half
	}
	h.shiftInsert(&leaf, i, key, value)
	return nil
}

// shiftInsert performs the FAST insertion: shift pairs [pos..n) right
// by one with 8 B stores (high to low), write the new pair, flush the
// touched cachelines, then bump the count.
func (h *handle) shiftInsert(n *nodeImg, pos int, key, value uint64) {
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	cnt := n.count()
	for i := cnt - 1; i >= pos; i-- {
		h.t.Store(n.addr.Add(int64(8*(pairBase+2*i+2))), n.key(i))
		h.t.Store(n.addr.Add(int64(8*(pairBase+2*i+3))), n.val(i))
		n.words[pairBase+2*i+2] = n.key(i)
		n.words[pairBase+2*i+3] = n.val(i)
	}
	h.t.Store(n.addr.Add(int64(8*(pairBase+2*pos))), key)
	h.t.Store(n.addr.Add(int64(8*(pairBase+2*pos+1))), value)
	n.words[pairBase+2*pos] = key
	n.words[pairBase+2*pos+1] = value
	firstWord := pairBase + 2*pos
	lastWord := pairBase + 2*cnt + 1
	h.t.Flush(n.addr.Add(int64(8*firstWord)), 8*(lastWord-firstWord+1))
	h.t.Fence()
	n.words[metaWord] = n.words[metaWord]&^0xffff | uint64(cnt+1)
	h.t.Store(n.addr.Add(8*metaWord), n.words[metaWord])
	h.t.Persist(n.addr, 8)
}

// split divides a full node and installs the separator in the parent
// chain (path holds the ancestors, root first).
func (h *handle) split(n *nodeImg, path []nodeImg) error {
	tr := h.tr
	right, err := tr.newNode(h.t, n.leaf())
	if err != nil {
		return err
	}
	mid := maxPairs / 2 // 7
	var rimg [nodeWords]uint64
	var sep uint64
	var keepCount int
	if n.leaf() {
		// Leaf split keeps the separator in the right node.
		sep = n.key(mid)
		rc := maxPairs - mid
		rimg[metaWord] = leafFlag | uint64(rc)
		rimg[linkWord] = uint64(n.link())
		for i := 0; i < rc; i++ {
			rimg[pairBase+2*i] = n.key(mid + i)
			rimg[pairBase+2*i+1] = n.val(mid + i)
		}
		keepCount = mid
	} else {
		// Inner split promotes the separator.
		sep = n.key(mid)
		rc := maxPairs - mid - 1
		rimg[metaWord] = uint64(rc)
		rimg[linkWord] = n.val(mid) // leftmost child of the right node
		for i := 0; i < rc; i++ {
			rimg[pairBase+2*i] = n.key(mid + 1 + i)
			rimg[pairBase+2*i+1] = n.val(mid + 1 + i)
		}
		keepCount = mid
	}
	prev := h.t.SetTag(pmem.TagLeaf)
	h.t.WriteRange(right, rimg[:])
	h.t.Persist(right, nodeBytes)
	// Publish: link (for leaves) and shrunken count on the old node.
	if n.leaf() {
		h.t.Store(n.addr.Add(8*linkWord), uint64(right))
		n.words[linkWord] = uint64(right)
	}
	n.words[metaWord] = n.words[metaWord]&^0xffff | uint64(keepCount)
	h.t.Store(n.addr.Add(8*metaWord), n.words[metaWord])
	h.t.Persist(n.addr, 16)
	h.t.SetTag(prev)

	// Install the separator upward.
	if len(path) == 0 {
		newRoot, err := tr.newNode(h.t, false)
		if err != nil {
			return err
		}
		var root [nodeWords]uint64
		root[metaWord] = 1
		root[linkWord] = uint64(n.addr)
		root[pairBase] = sep
		root[pairBase+1] = uint64(right)
		pt := h.t.SetTag(pmem.TagLeaf)
		h.t.WriteRange(newRoot, root[:])
		h.t.Persist(newRoot, nodeBytes)
		h.t.SetTag(pt)
		tr.root = newRoot
		tr.height++
		return nil
	}
	parent := path[len(path)-1]
	if parent.count() == maxPairs {
		if err := h.split(&parent, path[:len(path)-1]); err != nil {
			return err
		}
		// The separator's parent may now be either half; re-descend.
		return h.installSeparator(sep, right)
	}
	pos := parent.lowerBound(sep)
	h.shiftInsert(&parent, pos, sep, uint64(right))
	return nil
}

// installSeparator re-descends from the root to place sep→child after
// a cascading parent split.
func (h *handle) installSeparator(sep uint64, child pmem.Addr) error {
	var img nodeImg
	a := h.tr.root
	var parent nodeImg
	found := false
	for {
		readNode(h.t, a, &img)
		if img.leaf() {
			break
		}
		parent = img
		found = true
		a = img.childFor(sep)
	}
	if !found {
		return fmt.Errorf("fastfair: no inner node for separator")
	}
	if parent.count() == maxPairs {
		// Extremely rare double cascade; grow via a fresh descent with
		// path so split handles it.
		path := make([]nodeImg, 0, 8)
		h.descend(sep, &path)
		pp := path[len(path)-1]
		if err := h.split(&pp, path[:len(path)-1]); err != nil {
			return err
		}
		return h.installSeparator(sep, child)
	}
	pos := parent.lowerBound(sep)
	h.shiftInsert(&parent, pos, sep, uint64(child))
	return nil
}

// Delete implements index.Handle: shift-left removal (FAST&FAIR keeps
// underfull nodes).
func (h *handle) Delete(key uint64) error {
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	leaf := h.descend(key, nil)
	i := leaf.lowerBound(key)
	if i >= leaf.count() || leaf.key(i) != key {
		return nil
	}
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	cnt := leaf.count()
	for j := i; j < cnt-1; j++ {
		h.t.Store(leaf.addr.Add(int64(8*(pairBase+2*j))), leaf.key(j+1))
		h.t.Store(leaf.addr.Add(int64(8*(pairBase+2*j+1))), leaf.val(j+1))
		leaf.words[pairBase+2*j] = leaf.key(j + 1)
		leaf.words[pairBase+2*j+1] = leaf.val(j + 1)
	}
	if i < cnt-1 {
		h.t.Flush(leaf.addr.Add(int64(8*(pairBase+2*i))), 8*2*(cnt-1-i))
		h.t.Fence()
	}
	leaf.words[metaWord] = leaf.words[metaWord]&^0xffff | uint64(cnt-1)
	h.t.Store(leaf.addr.Add(8*metaWord), leaf.words[metaWord])
	h.t.Persist(leaf.addr, 8)
	return nil
}
