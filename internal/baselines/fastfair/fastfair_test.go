package fastfair

import (
	"testing"

	"cclbtree/internal/index/indextest"
	"cclbtree/internal/pmem"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestHighXBIUnderRandomWrites(t *testing.T) {
	// The motivating measurement (Fig 3): sorted in-PM leaves shift on
	// every insert, producing far more media traffic per user byte
	// than a log (≈1) or CCL-BTree.
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	rng := uint64(88172645463325252)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng%(1<<22) + 1
	}
	for i := 0; i < 20000; i++ {
		_ = h.Upsert(next(), 7)
	}
	pool.ResetStats()
	for i := 0; i < 20000; i++ {
		_ = h.Upsert(next(), 9)
	}
	pool.AddUserBytes(20000 * 16)
	pool.DrainXPBuffers()
	s := pool.Stats()
	if amp := s.XBIAmplification(); amp < 4 {
		t.Fatalf("FAST&FAIR random-insert XBI = %.1f; expected heavy amplification", amp)
	}
	if s.MediaWriteByTag[pmem.TagLeaf] == 0 {
		t.Fatal("leaf writes not attributed")
	}
}

func TestShiftCostGrowsWithInsertPosition(t *testing.T) {
	// FAST's sorted-leaf shifting: inserting at the FRONT of a full-ish
	// leaf must flush more cachelines than appending at the END.
	cost := func(keys []uint64, probe uint64) uint64 {
		pool := indextest.Pool()
		tr, err := New(pool)
		if err != nil {
			t.Fatal(err)
		}
		h := tr.NewHandle(0)
		for _, k := range keys {
			_ = h.Upsert(k, 1)
		}
		pool.ResetStats()
		_ = h.Upsert(probe, 1)
		return pool.Stats().XPBufWriteBytes
	}
	keys := []uint64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	front := cost(keys, 50)  // shifts all ten pairs
	back := cost(keys, 1100) // shifts nothing
	if front <= back {
		t.Fatalf("front insert flushed %d B, back %d B; shifting must cost more", front, back)
	}
}
