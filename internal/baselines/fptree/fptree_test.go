package fptree

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestTwoFlushesPerInsert(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	// Warm one leaf partially so inserts don't split.
	for i := uint64(1); i <= 4; i++ {
		_ = h.Upsert(i*1000, i)
	}
	pool.ResetStats()
	_ = h.Upsert(5000, 5)
	s := pool.Stats()
	// Slot flush + header flush = 2 cachelines to the XPBuffer.
	if got := s.XPBufWriteBytes; got != 2*64 {
		t.Fatalf("insert flushed %d bytes to XPBuffer, want 128", got)
	}
}
