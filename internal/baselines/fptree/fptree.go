// Package fptree reproduces FPTree (Oukid et al., SIGMOD '16): inner
// nodes in DRAM, 256 B fingerprinted unsorted leaf nodes in PM. Every
// insert costs two flushes — the KV slot, then the header (bitmap +
// fingerprint) — which keeps CLI-amplification low, but the flushes
// land in whatever random XPLine holds the target leaf, so
// XBI-amplification stays high under random workloads (Fig 3).
//
// Simplification vs. the original: a coarse reader/writer lock replaces
// HTM sections (virtual-time results are unaffected).
package fptree

import (
	"fmt"
	"sync"

	"cclbtree/internal/baselines/pmleaf"
	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

// Tree is an FPTree instance.
type Tree struct {
	pool  *pmem.Pool
	alloc *pmalloc.Allocator

	mu  sync.RWMutex
	dir memtree.Tree[pmem.Addr] // low key -> leaf address
}

// New creates an empty FPTree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	t := pool.NewThread(0)
	head, err := tr.alloc.Alloc(0, pmleaf.Bytes)
	if err != nil {
		return nil, fmt.Errorf("fptree: %w", err)
	}
	var img pmleaf.Image
	img.Addr = head
	pmleaf.WriteWhole(t, &img)
	tr.dir.Put(0, head)
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "FPTree" }

// Allocator exposes the PM allocator (DPTree shares it for its logs).
func (tr *Tree) Allocator() *pmalloc.Allocator { return tr.alloc }

// Close implements index.Index.
func (tr *Tree) Close() {}

// MemoryUsage implements index.Index: DRAM inner entries + PM leaves.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return int64(tr.dir.Len()) * 20, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	return &handle{tr: tr, t: tr.pool.NewThread(socket)}
}

// NewHandleWithThread creates a handle charging an existing thread's
// clock (DPTree drives its base tree through the same thread so merge
// and lookup costs land on the caller).
func (tr *Tree) NewHandleWithThread(t *pmem.Thread) index.Handle {
	return &handle{tr: tr, t: t}
}

type handle struct {
	tr *Tree
	t  *pmem.Thread
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// leafFor routes a key (callers hold tr.mu).
func (tr *Tree) leafFor(t *pmem.Thread, key uint64) pmem.Addr {
	t.Advance(int64(tr.dir.Depth()) * 6 * t.CostDRAM())
	_, a, ok := tr.dir.FindLE(key)
	if !ok {
		_, a, _ = tr.dir.Min()
	}
	return a
}

// Upsert implements index.Handle.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("fptree: key 0 is reserved")
	}
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	return h.insert(key, value)
}

func (h *handle) insert(key, value uint64) error {
	leaf := h.tr.leafFor(h.t, key)
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.Read(h.t, leaf)

	if i := img.FindKey(key); i >= 0 {
		// Out-of-place update: new slot, then header flip validates
		// the new copy and invalidates the old in one atomic word.
		j := img.FreeSlot()
		if j < 0 {
			if err := h.split(&img); err != nil {
				return err
			}
			return h.insert(key, value)
		}
		h.t.Store(pmleaf.SlotAddr(leaf, j), key)
		h.t.Store(pmleaf.SlotAddr(leaf, j).Add(8), value)
		h.t.Persist(pmleaf.SlotAddr(leaf, j), 16)
		img.SetKV(j, key, value)
		img.SetFP(j, pmleaf.FP(key))
		bm := img.Bitmap()&^(1<<uint(i)) | 1<<uint(j)
		img.SetMeta(pmleaf.PackMeta(bm, img.Next()))
		for wd := 0; wd < 4; wd++ {
			h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
		}
		h.t.Persist(leaf, 32)
		return nil
	}
	j := img.FreeSlot()
	if j < 0 {
		if err := h.split(&img); err != nil {
			return err
		}
		return h.insert(key, value)
	}
	h.t.Store(pmleaf.SlotAddr(leaf, j), key)
	h.t.Store(pmleaf.SlotAddr(leaf, j).Add(8), value)
	h.t.Persist(pmleaf.SlotAddr(leaf, j), 16)
	img.SetFP(j, pmleaf.FP(key))
	img.SetMeta(pmleaf.PackMeta(img.Bitmap()|1<<uint(j), img.Next()))
	for wd := 0; wd < 4; wd++ {
		h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
	}
	h.t.Persist(leaf, 32)
	return nil
}

// split moves the upper half of a full leaf to a new leaf: write and
// persist the new leaf, then publish atomically through the old leaf's
// header word.
func (h *handle) split(img *pmleaf.Image) error {
	live, slots := img.SortedLive()
	mid := len(live) / 2
	splitKey := live[mid].Key

	newLeaf, err := h.tr.alloc.Alloc(h.t.Socket(), pmleaf.Bytes)
	if err != nil {
		return fmt.Errorf("fptree: %w", err)
	}
	var rimg pmleaf.Image
	rimg.Addr = newLeaf
	var rbm uint16
	for i, kv := range live[mid:] {
		rimg.SetKV(i, kv.Key, kv.Value)
		rimg.SetFP(i, pmleaf.FP(kv.Key))
		rbm |= 1 << uint(i)
	}
	rimg.SetMeta(pmleaf.PackMeta(rbm, img.Next()))
	pmleaf.WriteWhole(h.t, &rimg)

	keep := img.Bitmap()
	for _, s := range slots[mid:] {
		keep &^= 1 << uint(s)
	}
	img.SetMeta(pmleaf.PackMeta(keep, newLeaf))
	h.t.Store(pmleaf.MetaAddr(img.Addr), img.Meta())
	h.t.Persist(img.Addr, 8)

	h.tr.dir.Put(splitKey, newLeaf)
	return nil
}

// ApplySorted applies a key-sorted batch with one leaf visit per
// group of consecutive keys: each touched leaf is read once, mutated in
// DRAM, and flushed once (data lines + header). Value 0 deletes. This
// is the bulk path DPTree's background merge uses — the batched leaf
// writes are what let a global-buffer merge amortize (and still scatter
// XPLines, per §3.2's critique). The caller must hold no handle state;
// the tree lock is taken here.
func (h *handle) ApplySorted(kvs []index.KV) error {
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	prevTag := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prevTag)
	i := 0
	for i < len(kvs) {
		leaf := h.tr.leafFor(h.t, kvs[i].Key)
		var img pmleaf.Image
		img.Read(h.t, leaf)
		// Upper bound of this leaf's range.
		var bound uint64
		haveBound := false
		if k, _, ok := h.tr.dir.FindLE(kvs[i].Key); ok {
			if nk, _, ok2 := h.tr.dirNextLow(k); ok2 {
				bound, haveBound = nk, true
			}
		}
		bm := img.Bitmap()
		dirtyLo, dirtyHi := pmleaf.Words, -1
		mark := func(wd int) {
			if wd < dirtyLo {
				dirtyLo = wd
			}
			if wd > dirtyHi {
				dirtyHi = wd
			}
		}
		full := false
		for i < len(kvs) && (!haveBound || kvs[i].Key < bound) {
			kv := kvs[i]
			slot := -1
			f := pmleaf.FP(kv.Key)
			for j := 0; j < pmleaf.Slots; j++ {
				if bm&(1<<uint(j)) != 0 && img.FPAt(j) == f && img.Key(j) == kv.Key {
					slot = j
					break
				}
			}
			switch {
			case slot >= 0 && kv.Value == 0:
				bm &^= 1 << uint(slot)
			case slot >= 0:
				img.SetKV(slot, kv.Key, kv.Value)
				mark(4 + 2*slot + 1)
			case kv.Value == 0:
				// deleting an absent key: nothing
			default:
				free := -1
				for j := 0; j < pmleaf.Slots; j++ {
					if bm&(1<<uint(j)) == 0 {
						free = j
						break
					}
				}
				if free < 0 {
					full = true
				} else {
					img.SetKV(free, kv.Key, kv.Value)
					img.SetFP(free, f)
					bm |= 1 << uint(free)
					mark(4 + 2*free)
					mark(4 + 2*free + 1)
				}
			}
			if full {
				break
			}
			i++
		}
		// Persist this leaf's group: data then header.
		if dirtyHi >= 0 {
			for wd := dirtyLo; wd <= dirtyHi; wd++ {
				h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
			}
			h.t.Flush(leaf.Add(int64(8*dirtyLo)), 8*(dirtyHi-dirtyLo+1))
			h.t.Fence()
		}
		img.SetMeta(pmleaf.PackMeta(bm, img.Next()))
		for wd := 0; wd < 4; wd++ {
			h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
		}
		h.t.Persist(leaf, 32)
		if full {
			// Split through the normal path, then continue the batch.
			img.SetMeta(pmleaf.PackMeta(bm, img.Next()))
			if err := h.split(&img); err != nil {
				return err
			}
		}
	}
	return nil
}

// dirNextLow returns the directory key after k (the right boundary of
// k's leaf). Caller holds tr.mu.
func (tr *Tree) dirNextLow(k uint64) (uint64, pmem.Addr, bool) {
	var nk uint64
	var na pmem.Addr
	found := false
	tr.dir.Ascend(k+1, func(key uint64, a pmem.Addr) bool {
		nk, na, found = key, a, true
		return false
	})
	return nk, na, found
}

// Delete implements index.Handle: clear the bitmap bit, one flush.
func (h *handle) Delete(key uint64) error {
	h.tr.mu.Lock()
	defer h.tr.mu.Unlock()
	leaf := h.tr.leafFor(h.t, key)
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.Read(h.t, leaf)
	i := img.FindKey(key)
	if i < 0 {
		return nil
	}
	img.SetMeta(pmleaf.PackMeta(img.Bitmap()&^(1<<uint(i)), img.Next()))
	h.t.Store(pmleaf.MetaAddr(leaf), img.Meta())
	h.t.Persist(leaf, 8)
	return nil
}

// Lookup implements index.Handle.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	leaf := h.tr.leafFor(h.t, key)
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.ReadHeader(h.t, leaf)
	bm := img.Bitmap()
	f := pmleaf.FP(key)
	for i := 0; i < pmleaf.Slots; i++ {
		if bm&(1<<uint(i)) == 0 || img.FPAt(i) != f {
			continue
		}
		k := h.t.Load(pmleaf.SlotAddr(leaf, i))
		if k != key {
			continue
		}
		return h.t.Load(pmleaf.SlotAddr(leaf, i).Add(8)), true
	}
	return 0, false
}

// Scan implements index.Handle: walk leaves in directory order, sort
// each unsorted leaf in DRAM.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	low, leaf, ok := h.tr.dir.FindLE(start)
	if !ok {
		low, leaf, _ = h.tr.dir.Min()
	}
	count := 0
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	for count < max {
		var img pmleaf.Image
		img.Read(h.t, leaf)
		live, _ := img.SortedLive()
		h.t.Advance(int64(len(live)) * 2 * h.t.CostDRAM())
		for _, kv := range live {
			if kv.Key < start || count >= max {
				continue
			}
			out[count] = kv
			count++
		}
		next := img.Next()
		if next.IsNil() {
			break
		}
		leaf = next
		_ = low
	}
	return count
}
