package lbtree

import (
	"sync"
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestSingleFlushInHeaderLine(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0)
	pool.ResetStats()
	_ = h.Upsert(100, 1) // lands in slot 0: header cacheline
	s := pool.Stats()
	if got := s.XPBufWriteBytes; got != 64 {
		t.Fatalf("header-line insert flushed %d bytes, want 64", got)
	}
}

func TestHTMAbortsUnderContention(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	// All workers hammer one key: every transaction conflicts.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := tr.NewHandle(g % 2)
			for i := 0; i < 2000; i++ {
				_ = h.Upsert(42, uint64(i+1))
			}
		}(g)
	}
	wg.Wait()
	if tr.Aborts() == 0 {
		t.Fatal("no HTM aborts recorded under full contention")
	}
}
