// Package lbtree reproduces LB+-Tree (Liu et al., VLDB '20): the
// FPTree layout with two write-path refinements the paper discusses —
// entries placed in the header cacheline when possible so metadata and
// data persist with a single flush (the "one-cacheline" optimization
// that minimizes CLI-amplification), and HTM-style concurrency whose
// transaction aborts under contention are modeled by charging an abort
// penalty on leaf-lock conflicts. Under highly skewed workloads the
// aborts dominate and throughput collapses, reproducing Fig 15a.
package lbtree

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cclbtree/internal/baselines/pmleaf"
	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

// htmAbortCost is the virtual-time cost of one aborted hardware
// transaction (wasted speculative work plus abort handling).
const htmAbortCost = 900

// htmMaxAborts caps the modeled retry storm on one transaction.
const htmMaxAborts = 32

// headerLineSlots is how many KV slots share the header cacheline
// (32 B header + 2 × 16 B slots = 64 B).
const headerLineSlots = 2

type leafRef struct {
	addr pmem.Addr
	lock atomic.Uint32 // mutual exclusion for the actual writes
	// lastTick is the global operation tick of the last transaction on
	// this leaf. Two transactions whose ticks are closer than the live
	// thread count are concurrent on the modeled machine (each thread
	// has an op in flight at any instant), so they conflict — a
	// deterministic HTM-abort model that does not depend on how
	// goroutines happen to interleave on the (possibly single-core)
	// simulation host.
	lastTick atomic.Uint64
}

// Tree is an LB+-Tree instance.
type Tree struct {
	pool  *pmem.Pool
	alloc *pmalloc.Allocator

	mu      sync.RWMutex
	dir     memtree.Tree[*leafRef]
	aborts  atomic.Uint64
	opTick  atomic.Uint64
	handles atomic.Int64
}

// New creates an empty LB+-Tree.
func New(pool *pmem.Pool) (*Tree, error) {
	tr := &Tree{pool: pool, alloc: pmalloc.New(pool)}
	t := pool.NewThread(0)
	head, err := tr.alloc.Alloc(0, pmleaf.Bytes)
	if err != nil {
		return nil, fmt.Errorf("lbtree: %w", err)
	}
	var img pmleaf.Image
	img.Addr = head
	pmleaf.WriteWhole(t, &img)
	tr.dir.Put(0, &leafRef{addr: head})
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "LB+-Tree" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// Aborts reports the modeled HTM aborts so far.
func (tr *Tree) Aborts() uint64 { return tr.aborts.Load() }

// MemoryUsage implements index.Index.
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return int64(tr.dir.Len()) * 24, tr.alloc.TotalInUseBytes()
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	tr.handles.Add(1)
	return &handle{tr: tr, t: tr.pool.NewThread(socket)}
}

type handle struct {
	tr *Tree
	t  *pmem.Thread
}

func (h *handle) Thread() *pmem.Thread { return h.t }

func (tr *Tree) leafFor(t *pmem.Thread, key uint64) *leafRef {
	t.Advance(int64(tr.dir.Depth()) * 6 * t.CostDRAM())
	_, ref, ok := tr.dir.FindLE(key)
	if !ok {
		_, ref, _ = tr.dir.Min()
	}
	return ref
}

// acquire models an HTM transaction begin on the leaf. With T live
// threads, a leaf whose previous transaction is fewer than T global
// operations old is being accessed concurrently; the expected retry
// storm grows with how hot the leaf is (T/gap), the behaviour that
// collapses LB+-Tree under 0.99-skew workloads (§5.4).
func (h *handle) acquire(ref *leafRef) {
	tick := h.tr.opTick.Add(1)
	last := ref.lastTick.Swap(tick)
	threads := uint64(h.tr.handles.Load())
	if threads > 1 && tick-last < threads {
		gap := tick - last
		aborts := threads / (gap + 1)
		if aborts > htmMaxAborts {
			aborts = htmMaxAborts
		}
		h.tr.aborts.Add(aborts)
		h.t.Advance(int64(aborts) * htmAbortCost)
	}
	for !ref.lock.CompareAndSwap(0, 1) {
		h.tr.aborts.Add(1)
		h.t.Advance(htmAbortCost)
		runtime.Gosched()
	}
}

// release ends the transaction.
func (h *handle) release(ref *leafRef) {
	ref.lock.Store(0)
}

// Upsert implements index.Handle.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("lbtree: key 0 is reserved")
	}
	for {
		h.tr.mu.RLock()
		ref := h.tr.leafFor(h.t, key)
		h.acquire(ref)
		full, err := h.insertLocked(ref, key, value)
		h.release(ref)
		h.tr.mu.RUnlock()
		if err != nil {
			return err
		}
		if !full {
			return nil
		}
		// Structural change: retry under the exclusive lock.
		h.tr.mu.Lock()
		ref = h.tr.leafFor(h.t, key)
		var img pmleaf.Image
		img.Read(h.t, ref.addr)
		if img.FreeSlot() < 0 && img.FindKey(key) < 0 {
			if err := h.split(ref, &img); err != nil {
				h.tr.mu.Unlock()
				return err
			}
		}
		h.tr.mu.Unlock()
	}
}

// insertLocked performs the single-leaf insert. full reports that a
// split is required.
func (h *handle) insertLocked(ref *leafRef, key, value uint64) (bool, error) {
	leaf := ref.addr
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.Read(h.t, leaf)

	if i := img.FindKey(key); i >= 0 {
		// In-place 8 B value update: one flush.
		a := pmleaf.SlotAddr(leaf, i).Add(8)
		h.t.Store(a, value)
		h.t.Persist(a, 8)
		return false, nil
	}
	j := img.FreeSlot()
	if j < 0 {
		return true, nil
	}
	img.SetKV(j, key, value)
	img.SetFP(j, pmleaf.FP(key))
	img.SetMeta(pmleaf.PackMeta(img.Bitmap()|1<<uint(j), img.Next()))
	if j < headerLineSlots {
		// Entry and header share the first cacheline: one flush
		// persists both (the LB+-Tree headline trick).
		for wd := 0; wd < 4+2*headerLineSlots; wd++ {
			h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
		}
		h.t.Persist(leaf, 64)
		return false, nil
	}
	h.t.Store(pmleaf.SlotAddr(leaf, j), key)
	h.t.Store(pmleaf.SlotAddr(leaf, j).Add(8), value)
	h.t.Persist(pmleaf.SlotAddr(leaf, j), 16)
	for wd := 0; wd < 4; wd++ {
		h.t.Store(leaf.Add(int64(8*wd)), img.Words[wd])
	}
	h.t.Persist(leaf, 32)
	return false, nil
}

// split runs under the exclusive tree lock.
func (h *handle) split(ref *leafRef, img *pmleaf.Image) error {
	live, slots := img.SortedLive()
	mid := len(live) / 2
	splitKey := live[mid].Key
	newLeaf, err := h.tr.alloc.Alloc(h.t.Socket(), pmleaf.Bytes)
	if err != nil {
		return fmt.Errorf("lbtree: %w", err)
	}
	var rimg pmleaf.Image
	rimg.Addr = newLeaf
	var rbm uint16
	for i, kv := range live[mid:] {
		rimg.SetKV(i, kv.Key, kv.Value)
		rimg.SetFP(i, pmleaf.FP(kv.Key))
		rbm |= 1 << uint(i)
	}
	rimg.SetMeta(pmleaf.PackMeta(rbm, img.Next()))
	pmleaf.WriteWhole(h.t, &rimg)

	keep := img.Bitmap()
	for _, s := range slots[mid:] {
		keep &^= 1 << uint(s)
	}
	img.SetMeta(pmleaf.PackMeta(keep, newLeaf))
	prev := h.t.SetTag(pmem.TagLeaf)
	h.t.Store(pmleaf.MetaAddr(img.Addr), img.Meta())
	h.t.Persist(img.Addr, 8)
	h.t.SetTag(prev)
	h.tr.dir.Put(splitKey, &leafRef{addr: newLeaf})
	return nil
}

// Delete implements index.Handle.
func (h *handle) Delete(key uint64) error {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	ref := h.tr.leafFor(h.t, key)
	h.acquire(ref)
	defer h.release(ref)
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.Read(h.t, ref.addr)
	i := img.FindKey(key)
	if i < 0 {
		return nil
	}
	img.SetMeta(pmleaf.PackMeta(img.Bitmap()&^(1<<uint(i)), img.Next()))
	h.t.Store(pmleaf.MetaAddr(ref.addr), img.Meta())
	h.t.Persist(ref.addr, 8)
	return nil
}

// Lookup implements index.Handle (read-only transactions don't abort
// writers in this model; reads are fingerprint-filtered).
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	ref := h.tr.leafFor(h.t, key)
	h.acquire(ref)
	defer h.release(ref)
	leaf := ref.addr
	var img pmleaf.Image
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	img.ReadHeader(h.t, leaf)
	bm := img.Bitmap()
	f := pmleaf.FP(key)
	for i := 0; i < pmleaf.Slots; i++ {
		if bm&(1<<uint(i)) == 0 || img.FPAt(i) != f {
			continue
		}
		if h.t.Load(pmleaf.SlotAddr(leaf, i)) == key {
			return h.t.Load(pmleaf.SlotAddr(leaf, i).Add(8)), true
		}
	}
	return 0, false
}

// Scan implements index.Handle.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	h.tr.mu.RLock()
	defer h.tr.mu.RUnlock()
	if max > len(out) {
		max = len(out)
	}
	_, ref, ok := h.tr.dir.FindLE(start)
	if !ok {
		_, ref, _ = h.tr.dir.Min()
	}
	leaf := ref.addr
	count := 0
	prev := h.t.SetTag(pmem.TagLeaf)
	defer h.t.SetTag(prev)
	for count < max {
		var img pmleaf.Image
		img.Read(h.t, leaf)
		live, _ := img.SortedLive()
		h.t.Advance(int64(len(live)) * 2 * h.t.CostDRAM())
		for _, kv := range live {
			if kv.Key < start || count >= max {
				continue
			}
			out[count] = kv
			count++
		}
		next := img.Next()
		if next.IsNil() {
			break
		}
		leaf = next
	}
	return count
}
