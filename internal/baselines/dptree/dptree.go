// Package dptree reproduces DPTree (Zhou et al., VLDB '19) at the
// granularity the paper's comparison needs: a global DRAM buffer
// absorbs writes (backed by per-thread persistent logs for crash
// consistency), and when the buffer crosses a size threshold it is
// merged wholesale into a persistent base tree. The merge scatters the
// buffered KVs across random base-tree leaves — the global-buffering
// XBI-amplification problem §3.2 contrasts with leaf-node-centric
// buffering — and stalls foreground requests, producing the
// hundreds-of-milliseconds tail latencies of Fig 12.
package dptree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cclbtree/internal/baselines/fptree"
	"cclbtree/internal/index"
	"cclbtree/internal/memtree"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// tombstone marks buffered deletions.
const tombstone = uint64(0)

// mergeMinEntries floors the buffer size that triggers a merge; the
// effective threshold grows with the base tree (the paper's DPTree
// sizes its front buffer as a fraction of the base).
const mergeMinEntries = 4096

// Tree is a DPTree instance.
type Tree struct {
	pool *pmem.Pool
	base index.Index // FPTree-like persistent base

	mu     sync.RWMutex
	buffer memtree.Tree[uint64] // global DRAM buffer pool
	walman *wal.Manager
	merges atomic.Uint64
	// merger is the background merge thread's handle; mergerVT is its
	// virtual clock after the last merge. A thread that triggers a
	// buffer swap while the previous merge is unfinished (mergerVT
	// ahead of its own clock) waits for it — the occasional
	// hundreds-of-ms insert tail of Fig 12 — but steady-state inserts
	// never pay merge time.
	merger   index.Handle
	mergerVT int64
	baseKeys int64 // ≈ entries merged into the base, sizes the buffer
}

// New creates an empty DPTree.
func New(pool *pmem.Pool) (*Tree, error) {
	base, err := fptree.New(pool)
	if err != nil {
		return nil, fmt.Errorf("dptree: %w", err)
	}
	tr := &Tree{pool: pool, base: base}
	tr.merger = base.NewHandleWithThread(pool.NewThread(0))
	return tr, nil
}

// Factory adapts New to index.Factory.
func Factory() index.Factory {
	return func(pool *pmem.Pool) (index.Index, error) { return New(pool) }
}

// Name implements index.Index.
func (tr *Tree) Name() string { return "DPTree" }

// Close implements index.Index.
func (tr *Tree) Close() {}

// Merges reports completed buffer merges.
func (tr *Tree) Merges() uint64 { return tr.merges.Load() }

// MemoryUsage implements index.Index: the global buffer is the DRAM
// cost that makes DPTree's footprint the largest of the hybrid indexes
// (Fig 18).
func (tr *Tree) MemoryUsage() (int64, int64) {
	tr.mu.RLock()
	buf := int64(tr.buffer.Len()) * 48
	tr.mu.RUnlock()
	d, p := tr.base.MemoryUsage()
	return buf + d, p
}

// NewHandle implements index.Index.
func (tr *Tree) NewHandle(socket int) index.Handle {
	t := tr.pool.NewThread(socket)
	h := &handle{
		tr:   tr,
		t:    t,
		base: tr.base.(*fptree.Tree).NewHandleWithThread(t),
	}
	h.log = wal.NewLog(walManagerFor(tr, socket), socket)
	h.seq = 1
	return h
}

// walManagerFor lazily builds one shared chunk manager.
var walMu sync.Mutex

func walManagerFor(tr *Tree, socket int) *wal.Manager {
	walMu.Lock()
	defer walMu.Unlock()
	if tr.walman == nil {
		tr.walman = wal.NewManager(tr.base.(*fptree.Tree).Allocator(), 512<<10)
	}
	return tr.walman
}

type handle struct {
	tr   *Tree
	t    *pmem.Thread
	base index.Handle
	log  *wal.Log
	seq  uint64
}

func (h *handle) Thread() *pmem.Thread { return h.t }

// Upsert implements index.Handle: log, buffer, maybe merge.
func (h *handle) Upsert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("dptree: key 0 is reserved")
	}
	return h.write(key, value)
}

// Delete implements index.Handle: buffered tombstone.
func (h *handle) Delete(key uint64) error { return h.write(key, tombstone) }

func (h *handle) write(key, value uint64) error {
	h.seq++
	if _, err := h.log.Append(h.t, wal.Entry{Key: key, Value: value, Timestamp: h.seq}); err != nil {
		return err
	}
	h.tr.mu.Lock()
	h.t.Advance(int64(h.tr.buffer.Depth()) * 6 * h.t.CostDRAM())
	h.tr.buffer.Put(key, value)
	threshold := int(h.tr.baseKeys / 16)
	if threshold < mergeMinEntries {
		threshold = mergeMinEntries
	}
	if h.tr.buffer.Len() < threshold {
		h.tr.mu.Unlock()
		return nil
	}
	// Swap the buffer and hand it to the background merger. If the
	// previous merge is still running in virtual time, this thread
	// waits for it first — the foreground stall the paper's tail
	// latencies show.
	frozen := h.tr.buffer
	h.tr.buffer = memtree.Tree[uint64]{}
	if h.tr.mergerVT > h.t.Now() {
		h.t.SyncClock(h.tr.mergerVT)
	}
	mt := h.tr.merger.Thread()
	mt.SyncClock(h.t.Now()) // merge starts no earlier than the swap
	kvs := make([]index.KV, 0, frozen.Len())
	frozen.Ascend(0, func(k uint64, v uint64) bool {
		kvs = append(kvs, index.KV{Key: k, Value: v})
		return true
	})
	err := h.tr.merger.(interface {
		ApplySorted([]index.KV) error
	}).ApplySorted(kvs)
	h.tr.mergerVT = mt.Now()
	h.tr.baseKeys += int64(len(kvs))
	h.tr.merges.Add(1)
	h.log.Detach() // buffered entries are durable in the base now
	h.tr.mu.Unlock()
	return err
}

// Lookup implements index.Handle: buffer first, then the base tree.
func (h *handle) Lookup(key uint64) (uint64, bool) {
	h.tr.mu.RLock()
	h.t.Advance(int64(h.tr.buffer.Depth()) * 6 * h.t.CostDRAM())
	v, ok := h.tr.buffer.Get(key)
	h.tr.mu.RUnlock()
	if ok {
		if v == tombstone {
			return 0, false
		}
		return v, true
	}
	return h.base.Lookup(key)
}

// Scan implements index.Handle: merge buffered and base entries.
func (h *handle) Scan(start uint64, max int, out []index.KV) int {
	if max > len(out) {
		max = len(out)
	}
	lim := max + max/4 + 16
	baseOut := make([]index.KV, lim)
	nBase := h.base.Scan(start, lim, baseOut)

	h.tr.mu.RLock()
	var buf []index.KV
	h.tr.buffer.Ascend(start, func(k uint64, v uint64) bool {
		buf = append(buf, index.KV{Key: k, Value: v})
		return len(buf) < lim
	})
	h.tr.mu.RUnlock()

	// Two-way merge, buffer wins, tombstones drop.
	count, i, j := 0, 0, 0
	for count < max && (i < nBase || j < len(buf)) {
		var kv index.KV
		switch {
		case j >= len(buf) || (i < nBase && baseOut[i].Key < buf[j].Key):
			kv = baseOut[i]
			i++
		case i >= nBase || buf[j].Key < baseOut[i].Key:
			kv = buf[j]
			j++
		default: // equal keys: buffer version wins
			kv = buf[j]
			i++
			j++
		}
		if kv.Value == tombstone {
			continue
		}
		out[count] = kv
		count++
	}
	return count
}
