package dptree

import (
	"testing"

	"cclbtree/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, Factory(), indextest.Options{})
}

func TestMergesHappenAndStallTails(t *testing.T) {
	pool := indextest.Pool()
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Several concurrent writers outpace the background merger in
	// virtual time, so buffer swaps start finding the previous merge
	// unfinished: those trigger operations stall (the paper's
	// beyond-p99.9 insert latencies).
	const workers = 8
	const per = 8000
	maxLat := make([]int64, workers)
	avgLat := make([]int64, workers)
	done := make(chan int, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			h := tr.NewHandle(g % 2)
			base := uint64(g*per + 1)
			var total int64
			for i := uint64(0); i < per; i++ {
				before := h.Thread().Now()
				_ = h.Upsert(base+i, 1)
				d := h.Thread().Now() - before
				total += d
				if d > maxLat[g] {
					maxLat[g] = d
				}
			}
			avgLat[g] = total / per
			done <- g
		}(g)
	}
	for range maxLat {
		<-done
	}
	if tr.Merges() == 0 {
		t.Fatal("no merges despite exceeding the buffer threshold")
	}
	var worst, avg int64
	for g := range maxLat {
		if maxLat[g] > worst {
			worst = maxLat[g]
		}
		avg += avgLat[g]
	}
	avg /= workers
	if worst < 20*avg {
		t.Fatalf("merge stall not visible in tail: max %dns vs avg %dns", worst, avg)
	}
}
