// Package wal implements the paper's write-ahead log substrate (§3.3):
// per-thread logs made of 4 MB PM chunks drawn from a shared free list,
// 24 B entries (16 B KV + 8 B ORDO timestamp), and the two-generation
// (B-log / I-log) chunk ownership that locality-aware GC flips between
// (§3.4).
//
// Logs are single-writer: each worker thread appends only to its own
// Log, which is what makes the per-thread design scale and keeps every
// append an XPBuffer-friendly sequential write. Chunk recycling never
// zeroes PM (that would itself cause XPLine writes): recovery instead
// filters stale entries by timestamp against the leaf they belong to,
// which is sound because any reclaimed entry's KV was flushed to a leaf
// whose timestamp field is newer than the entry (see core's recovery).
//
// On PM, the timestamp word is checksum-stamped: the ORDO tick lives in
// the upper 48 bits and a 16-bit check code over (key, value, tick) in
// the low 16. A 24 B entry spans three 8 B words, and real hardware
// persists words — not entries — atomically: a power failure during an
// append (or a torn XPLine write-back, see pmem.TearPending) can leave
// an entry whose key and value drained but whose timestamp word still
// holds a stale record's bytes from the recycled, never-zeroed chunk.
// Such a Frankenstein entry has a stale-but-plausible timestamp and
// would replay garbage into the tree. The check code binds the three
// words together: scans drop any record whose code does not match, so
// only entries whose append fully drained are ever replayed. The
// stamping is an on-PM encoding detail — Append takes and Entries
// returns plain ticks.
package wal

import (
	"fmt"
	"sync"

	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

// EntrySize is the on-PM size of one log record: key, value, timestamp.
const EntrySize = 3 * pmem.WordSize

// DefaultChunkBytes is the paper's log chunk size.
const DefaultChunkBytes = 4 << 20

// Entry is one WAL record. A zero Timestamp marks unwritten space and is
// never produced by a live append (ordo reserves it).
type Entry struct {
	Key, Value, Timestamp uint64
}

// MaxTick is the largest ORDO tick an entry can carry: the on-PM
// timestamp word keeps the tick in its upper 48 bits alongside the
// 16-bit check code.
const MaxTick = 1<<48 - 1

const tsTickShift = 16

// entryCheck computes the 16-bit code binding an entry's three words
// (FNV-1a over the 24 bytes, folded to 16 bits).
func entryCheck(key, value, tick uint64) uint16 {
	h := uint64(14695981039346656037)
	for _, w := range [3]uint64{key, value, tick} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * uint(i))) & 0xff
			h *= 1099511628211
		}
	}
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}

// EncodeTimestamp builds the on-PM timestamp word for an entry.
func EncodeTimestamp(key, value, tick uint64) uint64 {
	return tick<<tsTickShift | uint64(entryCheck(key, value, tick))
}

// DecodeTimestamp validates an on-PM timestamp word against its key and
// value words, returning the tick. ok is false for unwritten space
// (zero word) and for torn or stale-mix records whose check code does
// not match.
func DecodeTimestamp(key, value, word uint64) (tick uint64, ok bool) {
	tick = word >> tsTickShift
	if tick == 0 {
		return 0, false
	}
	return tick, uint16(word) == entryCheck(key, value, tick)
}

// Manager owns the per-socket free lists of recycled log chunks and
// allocates new ones when the free list runs dry, exactly the scheme of
// §3.3.
type Manager struct {
	alloc      *pmalloc.Allocator
	chunkBytes int

	// OnAcquire/OnRelease, when set before first use, are invoked for
	// every chunk handed to or taken back from a log. CCL-BTree hooks
	// them to maintain its persistent chunk directory so recovery can
	// find every log without volatile state.
	OnAcquire func(pmem.Addr)
	OnRelease func(pmem.Addr)

	mu        sync.Mutex
	free      map[int][]pmem.Addr // socket -> free chunks
	allocated int64               // chunks ever allocated (not free-listed)
}

// NewManager creates a chunk manager. chunkBytes ≤ 0 selects the 4 MB
// default; it must be a multiple of EntrySize and XPLineSize.
func NewManager(alloc *pmalloc.Allocator, chunkBytes int) *Manager {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes%pmem.XPLineSize != 0 {
		panic("wal: chunk size must be XPLine aligned")
	}
	return &Manager{
		alloc:      alloc,
		chunkBytes: chunkBytes,
		free:       map[int][]pmem.Addr{},
	}
}

// ChunkBytes returns the configured chunk size.
func (m *Manager) ChunkBytes() int { return m.chunkBytes }

// AcquireChunk returns a chunk on the given socket, recycling from the
// free list first.
func (m *Manager) AcquireChunk(socket int) (pmem.Addr, error) {
	m.mu.Lock()
	if lst := m.free[socket]; len(lst) > 0 {
		a := lst[len(lst)-1]
		m.free[socket] = lst[:len(lst)-1]
		m.mu.Unlock()
		if m.OnAcquire != nil {
			m.OnAcquire(a)
		}
		return a, nil
	}
	m.allocated++
	m.mu.Unlock()
	a, err := m.alloc.Alloc(socket, m.chunkBytes)
	if err != nil {
		return pmem.NilAddr, fmt.Errorf("wal: acquire chunk: %w", err)
	}
	if m.OnAcquire != nil {
		m.OnAcquire(a)
	}
	return a, nil
}

// InUseChunks reports chunks currently held by logs (allocated minus
// free-listed), the numerator of the GC trigger ratio.
func (m *Manager) InUseChunks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.allocated
	for _, lst := range m.free {
		n -= int64(len(lst))
	}
	return n
}

// ReleaseChunks puts chunks back on their sockets' free lists.
func (m *Manager) ReleaseChunks(chunks []pmem.Addr) {
	if m.OnRelease != nil {
		for _, c := range chunks {
			m.OnRelease(c)
		}
	}
	m.mu.Lock()
	for _, c := range chunks {
		m.free[c.Socket()] = append(m.free[c.Socket()], c)
	}
	m.mu.Unlock()
}

// AdoptChunks takes ownership of externally discovered chunks (recovery
// hands back the pre-crash log chunks) and free-lists them.
func (m *Manager) AdoptChunks(chunks []pmem.Addr) {
	m.mu.Lock()
	m.allocated += int64(len(chunks))
	m.mu.Unlock()
	m.ReleaseChunks(chunks)
}

// FreeChunks reports the number of free-listed chunks on a socket.
func (m *Manager) FreeChunks(socket int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free[socket])
}

// AllocatedChunks reports how many chunks were ever allocated from PM
// (the peak footprint; free-listed chunks are still PM-resident).
func (m *Manager) AllocatedChunks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocated
}

// Log is one thread's append-only log for one generation (B or I). The
// owner goroutine calls Append; Chunks/Bytes/Detach may be called by a
// GC thread concurrently.
type Log struct {
	m      *Manager
	socket int

	// UnsafeSkipFence drops the sfence from Append, so an entry
	// "returns durable" without being durable until some later fence
	// happens to retire the flush. It deliberately breaks the WAL
	// durability contract and exists ONLY so crash-testing oracles
	// (internal/torture) can prove they catch the violation. Never set
	// it outside such self-tests.
	UnsafeSkipFence bool

	mu      sync.Mutex
	chunks  []pmem.Addr
	tailOff int   // bytes used in the last chunk
	bytes   int64 // total appended
}

// NewLog creates an empty log bound to a socket.
func NewLog(m *Manager, socket int) *Log {
	return &Log{m: m, socket: socket}
}

// Append persists one entry (write + flush + fence) and returns its
// address. The entry is durable when Append returns — the WAL contract
// the buffer nodes rely on.
func (l *Log) Append(t *pmem.Thread, e Entry) (pmem.Addr, error) {
	if e.Timestamp == 0 {
		return pmem.NilAddr, fmt.Errorf("wal: zero timestamp is reserved")
	}
	if e.Timestamp > MaxTick {
		return pmem.NilAddr, fmt.Errorf("wal: timestamp %#x exceeds MaxTick", e.Timestamp)
	}
	l.mu.Lock()
	if len(l.chunks) == 0 || l.tailOff+EntrySize > l.m.chunkBytes {
		c, err := l.m.AcquireChunk(l.socket)
		if err != nil {
			l.mu.Unlock()
			return pmem.NilAddr, err
		}
		l.chunks = append(l.chunks, c)
		l.tailOff = 0
	}
	addr := l.chunks[len(l.chunks)-1].Add(int64(l.tailOff))
	l.tailOff += EntrySize
	l.bytes += EntrySize
	l.mu.Unlock()

	// Attribution: log bytes are ScopeWAL no matter who appends — a
	// foreground upsert, GC copying survivors into an I-log, recovery —
	// so per-scope breakdowns always show log traffic as log traffic
	// (the documented exception to innermost-scope-wins).
	prev := t.SetTag(pmem.TagWAL)
	prevScope := t.PushScope(pmem.ScopeWAL)
	t.Store(addr, e.Key)
	t.Store(addr.Add(8), e.Value)
	t.Store(addr.Add(16), EncodeTimestamp(e.Key, e.Value, e.Timestamp))
	if l.UnsafeSkipFence {
		// Deliberately broken durability for oracle self-tests: the
		// clwb is issued but never explicitly fenced.
		//persistlint:ignore PL002 UnsafeSkipFence is an intentional contract violation for torture-oracle validation
		t.Flush(addr, EntrySize)
	} else {
		t.Persist(addr, EntrySize)
	}
	t.PopScope(prevScope)
	t.SetTag(prev)
	return addr, nil
}

// AppendBatch persists a group of entries with a single trailing fence
// (group commit): every record is stored and its cachelines flushed as
// it is laid down, then one sfence retires the whole group. Compared to
// len(entries) Append calls this saves len(entries)-1 fence stalls while
// keeping every 24 B record individually check-code-bound, so a crash
// mid-batch tears at record granularity — each record independently
// either replays or is dropped — never across records.
//
// All entries must be treated as volatile until AppendBatch returns;
// afterwards every one of them is durable. Entries are validated before
// any PM write, so a validation error means nothing was appended. An
// allocation error mid-group fences the already-written prefix before
// returning, so no record is left in the flushed-but-unfenced limbo.
func (l *Log) AppendBatch(t *pmem.Thread, entries []Entry) error {
	for i := range entries {
		if entries[i].Timestamp == 0 {
			return fmt.Errorf("wal: zero timestamp is reserved")
		}
		if entries[i].Timestamp > MaxTick {
			return fmt.Errorf("wal: timestamp %#x exceeds MaxTick", entries[i].Timestamp)
		}
	}
	prev := t.SetTag(pmem.TagWAL)
	prevScope := t.PushScope(pmem.ScopeWAL)
	defer t.SetTag(prev)
	defer t.PopScope(prevScope)
	// Contiguous records share cachelines, so the clwb sweep runs once
	// per contiguous span (usually the whole group), not once per
	// record — per-record flushing would re-flush each shared line and
	// re-send it to the XPBuffer, costing both virtual time and write
	// amplification.
	var spanStart pmem.Addr
	var spanLen int
	flushSpan := func() {
		if spanLen > 0 {
			// The matching fence is one frame up: every AppendBatch
			// return path runs flushSpan and then t.Fence.
			t.Flush(spanStart, spanLen) //persistlint:ignore PL002 fenced by the caller on every return path
			spanLen = 0
		}
	}
	for _, e := range entries {
		l.mu.Lock()
		if len(l.chunks) == 0 || l.tailOff+EntrySize > l.m.chunkBytes {
			c, err := l.m.AcquireChunk(l.socket)
			if err != nil {
				l.mu.Unlock()
				// Retire the flushed prefix before surfacing the error:
				// records already laid down stay durable, not pending.
				flushSpan()
				t.Fence()
				return err
			}
			l.chunks = append(l.chunks, c)
			l.tailOff = 0
		}
		addr := l.chunks[len(l.chunks)-1].Add(int64(l.tailOff))
		l.tailOff += EntrySize
		l.bytes += EntrySize
		l.mu.Unlock()
		t.Store(addr, e.Key)                                                //persistlint:ignore PL001 flushed by the flushSpan sweep on every return path
		t.Store(addr.Add(8), e.Value)                                       //persistlint:ignore PL001 flushed by the flushSpan sweep on every return path
		t.Store(addr.Add(16), EncodeTimestamp(e.Key, e.Value, e.Timestamp)) //persistlint:ignore PL001 flushed by the flushSpan sweep on every return path
		if spanLen > 0 && addr == spanStart.Add(int64(spanLen)) {
			spanLen += EntrySize
		} else {
			flushSpan()
			spanStart, spanLen = addr, EntrySize
		}
	}
	flushSpan()
	if l.UnsafeSkipFence {
		// Deliberately broken durability for oracle self-tests: every
		// clwb issued, the group-commit fence omitted (see Append).
		return nil
	}
	t.Fence()
	return nil
}

// Bytes returns the total entry bytes appended to this log.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// ChunkBytes returns the PM footprint currently held by the log.
func (l *Log) ChunkBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.chunks)) * int64(l.m.chunkBytes)
}

// Detach removes and returns the log's chunks, resetting it to empty.
// The caller passes them to Manager.ReleaseChunks once no reader needs
// them (end of a GC round).
func (l *Log) Detach() []pmem.Addr {
	l.mu.Lock()
	defer l.mu.Unlock()
	chunks := l.chunks
	l.chunks = nil
	l.tailOff = 0
	l.bytes = 0
	return chunks
}

// Entries reads every record currently in the log, skipping unwritten
// slots and check-code-invalid (torn) records. Because recycled chunks
// are not zeroed, the
// result may include stale records from earlier generations; callers
// filter them by comparing timestamps with the owning leaf (see §3.3's
// latest-version rule). The log must be quiescent (no concurrent
// Append) — this is a recovery/GC path.
func (l *Log) Entries(t *pmem.Thread) []Entry {
	l.mu.Lock()
	chunks := append([]pmem.Addr(nil), l.chunks...)
	tail := l.tailOff
	l.mu.Unlock()

	var out []Entry
	words := make([]uint64, l.m.chunkBytes/pmem.WordSize)
	for i, c := range chunks {
		limit := l.m.chunkBytes
		if i == len(chunks)-1 {
			limit = tail
		}
		if limit == 0 {
			continue
		}
		w := words[:limit/pmem.WordSize]
		t.ReadRange(c, w)
		out = decodeRecords(w, limit, out)
	}
	return out
}

// decodeRecords appends the valid entries found in the first limit bytes
// of w (a chunk image) to out. Unwritten slots and records whose check
// code does not bind key/value/timestamp together (torn appends, stale
// mixes on recycled chunks) are skipped.
func decodeRecords(w []uint64, limit int, out []Entry) []Entry {
	for off := 0; off+EntrySize <= limit; off += EntrySize {
		i := off / pmem.WordSize
		tick, ok := DecodeTimestamp(w[i], w[i+1], w[i+2])
		if !ok {
			continue
		}
		out = append(out, Entry{Key: w[i], Value: w[i+1], Timestamp: tick})
	}
	return out
}

// ReadEntriesInChunks scans the given raw chunks (e.g. after a restart
// when the Log object is gone) yielding the valid entries (see
// decodeRecords for what is skipped).
func ReadEntriesInChunks(t *pmem.Thread, chunks []pmem.Addr, chunkBytes int) []Entry {
	var out []Entry
	w := make([]uint64, chunkBytes/pmem.WordSize)
	for _, c := range chunks {
		t.ReadRange(c, w)
		out = decodeRecords(w, chunkBytes, out)
	}
	return out
}
