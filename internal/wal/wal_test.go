package wal

import (
	"testing"

	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
)

func testSetup(t *testing.T, chunkBytes int) (*pmem.Pool, *Manager) {
	t.Helper()
	pool := pmem.NewPool(pmem.Config{Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: 8 << 20, StrictPersist: true})
	return pool, NewManager(pmalloc.New(pool), chunkBytes)
}

func TestAppendAndRead(t *testing.T) {
	pool, m := testSetup(t, 4096)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 100; i++ {
		if _, err := l.Append(th, Entry{Key: i, Value: i * 10, Timestamp: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Entries(th)
	if len(got) != 100 {
		t.Fatalf("read %d entries, want 100", len(got))
	}
	for i, e := range got {
		want := uint64(i + 1)
		if e.Key != want || e.Value != want*10 || e.Timestamp != want {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestZeroTimestampRejected(t *testing.T) {
	pool, m := testSetup(t, 4096)
	l := NewLog(m, 0)
	if _, err := l.Append(pool.NewThread(0), Entry{Key: 1}); err == nil {
		t.Fatal("zero timestamp accepted")
	}
}

func TestChunkRollover(t *testing.T) {
	pool, m := testSetup(t, 256) // 10 entries per chunk (240 B used)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 25; i++ {
		if _, err := l.Append(th, Entry{Key: i, Timestamp: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.ChunkBytes(); got != 3*256 {
		t.Fatalf("ChunkBytes = %d, want 3 chunks", got)
	}
	if got := len(l.Entries(th)); got != 25 {
		t.Fatalf("entries across chunks = %d", got)
	}
}

func TestDetachAndRecycle(t *testing.T) {
	pool, m := testSetup(t, 256)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 20; i++ {
		_, _ = l.Append(th, Entry{Key: i, Timestamp: i})
	}
	chunks := l.Detach()
	if len(chunks) != 2 {
		t.Fatalf("detached %d chunks", len(chunks))
	}
	if l.Bytes() != 0 || l.ChunkBytes() != 0 {
		t.Fatal("log not reset by Detach")
	}
	m.ReleaseChunks(chunks)
	if m.FreeChunks(0) != 2 {
		t.Fatalf("free list has %d", m.FreeChunks(0))
	}
	// New log reuses recycled chunks; stale entries must not surface in
	// the new log's own view (it tracks its own tail).
	l2 := NewLog(m, 0)
	_, _ = l2.Append(th, Entry{Key: 99, Timestamp: 1000})
	got := l2.Entries(th)
	if len(got) != 1 || got[0].Key != 99 {
		t.Fatalf("recycled chunk leaked stale entries into live view: %+v", got)
	}
	if m.FreeChunks(0) != 1 {
		t.Fatal("chunk not taken from free list")
	}
}

func TestRawChunkScanSeesStaleEntries(t *testing.T) {
	// ReadEntriesInChunks is the restart path: it scans whole chunks
	// and WILL see stale entries; callers filter by timestamp. Verify
	// the contract: everything nonzero surfaces.
	pool, m := testSetup(t, 256)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 10; i++ {
		_, _ = l.Append(th, Entry{Key: i, Timestamp: i})
	}
	chunks := l.Detach()
	m.ReleaseChunks(chunks)
	l2 := NewLog(m, 0)
	_, _ = l2.Append(th, Entry{Key: 50, Timestamp: 50})
	raw := ReadEntriesInChunks(th, chunks, 256)
	if len(raw) != 10 {
		t.Fatalf("raw scan found %d entries, want 10 (1 overwritten + 9 stale)", len(raw))
	}
	if raw[0].Key != 50 {
		t.Fatalf("first slot should hold the new entry, got %+v", raw[0])
	}
}

func TestAppendsSurviveCrash(t *testing.T) {
	pool, m := testSetup(t, 4096)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 50; i++ {
		_, _ = l.Append(th, Entry{Key: i, Value: i, Timestamp: i})
	}
	pool.Crash()
	got := l.Entries(pool.NewThread(0))
	if len(got) != 50 {
		t.Fatalf("after crash %d entries, want all 50 (Append persists)", len(got))
	}
}

func TestWALTrafficTagged(t *testing.T) {
	pool, m := testSetup(t, 4096)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 2000; i++ {
		_, _ = l.Append(th, Entry{Key: i, Timestamp: i})
	}
	pool.DrainXPBuffers()
	s := pool.Stats()
	if s.MediaWriteByTag[pmem.TagWAL] == 0 {
		t.Fatal("WAL media writes not attributed")
	}
	if s.MediaWriteByTag[pmem.TagWAL] != s.MediaWriteBytes {
		t.Fatalf("unexpected non-WAL writes: %d of %d", s.MediaWriteByTag[pmem.TagWAL], s.MediaWriteBytes)
	}
}

func TestSequentialAppendsAreWriteCombined(t *testing.T) {
	// The heart of the log-structured argument (§3.5): ~10.7 24 B
	// entries share one XPLine, so media writes per entry are small.
	pool, m := testSetup(t, 64<<10)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	const n = 4000
	for i := uint64(1); i <= n; i++ {
		_, _ = l.Append(th, Entry{Key: i, Value: i, Timestamp: i})
	}
	pool.DrainXPBuffers()
	s := pool.Stats()
	userBytes := uint64(n * EntrySize)
	ratio := float64(s.MediaWriteBytes) / float64(userBytes)
	if ratio > 1.5 {
		t.Fatalf("sequential log amplification %.2f, want ≈1", ratio)
	}
}

func TestSocketBinding(t *testing.T) {
	pool, m := testSetup(t, 4096)
	th := pool.NewThread(1)
	l := NewLog(m, 1)
	addr, err := l.Append(th, Entry{Key: 1, Timestamp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if addr.Socket() != 1 {
		t.Fatalf("log chunk on socket %d, want 1", addr.Socket())
	}
}

func TestAllocatedChunksCounter(t *testing.T) {
	pool, m := testSetup(t, 256)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 30; i++ {
		_, _ = l.Append(th, Entry{Key: i, Timestamp: i})
	}
	if m.AllocatedChunks() != 3 {
		t.Fatalf("allocated %d chunks", m.AllocatedChunks())
	}
	m.ReleaseChunks(l.Detach())
	l2 := NewLog(m, 0)
	for i := uint64(1); i <= 10; i++ {
		_, _ = l2.Append(th, Entry{Key: i, Timestamp: i})
	}
	if m.AllocatedChunks() != 3 {
		t.Fatalf("recycling should not allocate: %d", m.AllocatedChunks())
	}
}

func TestConcurrentAppendsDistinctLogs(t *testing.T) {
	pool, m := testSetup(t, 4096)
	const workers = 6
	const per = 2000
	done := make(chan []Entry, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			th := pool.NewThread(w % 2)
			l := NewLog(m, w%2)
			for i := uint64(1); i <= per; i++ {
				if _, err := l.Append(th, Entry{Key: uint64(w)<<32 | i, Timestamp: i}); err != nil {
					t.Error(err)
					break
				}
			}
			done <- l.Entries(th)
		}(w)
	}
	for w := 0; w < workers; w++ {
		got := <-done
		if len(got) != per {
			t.Fatalf("worker log has %d entries, want %d", len(got), per)
		}
	}
}

func TestDetachDuringReads(t *testing.T) {
	// GC detaches a log while another thread reads a stale snapshot of
	// its chunks: the data must stay readable (chunks are not zeroed).
	pool, m := testSetup(t, 256)
	th := pool.NewThread(0)
	l := NewLog(m, 0)
	for i := uint64(1); i <= 50; i++ {
		_, _ = l.Append(th, Entry{Key: i, Timestamp: i})
	}
	chunks := l.Detach()
	raw := ReadEntriesInChunks(pool.NewThread(0), chunks, 256)
	if len(raw) != 50 {
		t.Fatalf("detached chunks lost entries: %d", len(raw))
	}
	m.ReleaseChunks(chunks)
}
