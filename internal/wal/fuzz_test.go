package wal

import (
	"encoding/binary"
	"testing"
)

// FuzzWALRecordParse throws arbitrary persisted bytes at the record
// scanner. The contract: decoding never panics, every entry it yields
// carries a valid in-range tick whose check code binds the three words,
// and intact records round-trip. This models recovery scanning recycled,
// never-zeroed, possibly torn log chunks.
func FuzzWALRecordParse(f *testing.F) {
	seed := func(entries ...Entry) []byte {
		var b []byte
		for _, e := range entries {
			var rec [EntrySize]byte
			binary.LittleEndian.PutUint64(rec[0:], e.Key)
			binary.LittleEndian.PutUint64(rec[8:], e.Value)
			binary.LittleEndian.PutUint64(rec[16:], EncodeTimestamp(e.Key, e.Value, e.Timestamp))
			b = append(b, rec[:]...)
		}
		return b
	}
	f.Add([]byte{})
	f.Add(seed(Entry{Key: 1, Value: 2, Timestamp: 3}))
	f.Add(seed(Entry{Key: ^uint64(0), Value: 0, Timestamp: MaxTick}, Entry{Key: 7, Value: 8, Timestamp: 9}))
	// A torn tail: one intact record followed by a partial one.
	f.Add(append(seed(Entry{Key: 5, Value: 6, Timestamp: 7}), 0xde, 0xad, 0xbe, 0xef))

	f.Fuzz(func(t *testing.T, data []byte) {
		words := make([]uint64, len(data)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		limit := len(words) * 8
		got := decodeRecords(words, limit, nil)
		for _, e := range got {
			if e.Timestamp == 0 || e.Timestamp > MaxTick {
				t.Fatalf("decoded out-of-range tick %#x", e.Timestamp)
			}
		}
		// Cross-check each slot against the scanner's verdict: a slot is
		// returned iff its timestamp word decodes against its KV words.
		want := 0
		for off := 0; off+EntrySize <= limit; off += EntrySize {
			i := off / 8
			tick, ok := DecodeTimestamp(words[i], words[i+1], words[i+2])
			if !ok {
				continue
			}
			if got[want].Key != words[i] || got[want].Value != words[i+1] || got[want].Timestamp != tick {
				t.Fatalf("slot %d decoded as %+v, want {%d %d %d}", i/3, got[want], words[i], words[i+1], tick)
			}
			want++
		}
		if len(got) != want {
			t.Fatalf("scanner yielded %d entries, independent decode says %d", len(got), want)
		}
	})
}
