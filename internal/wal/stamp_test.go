package wal

import (
	"testing"

	"cclbtree/internal/pmem"
)

func TestTimestampStampRoundTrip(t *testing.T) {
	cases := []struct{ key, value, tick uint64 }{
		{0, 0, 1},
		{1, 2, 3},
		{^uint64(0), ^uint64(0), MaxTick},
		{0xdeadbeef, 0xcafe, 1 << 40},
	}
	for _, c := range cases {
		w := EncodeTimestamp(c.key, c.value, c.tick)
		tick, ok := DecodeTimestamp(c.key, c.value, w)
		if !ok || tick != c.tick {
			t.Fatalf("round trip (%d,%d,%d): got tick=%d ok=%v", c.key, c.value, c.tick, tick, ok)
		}
	}
}

func TestTimestampStampBindsWords(t *testing.T) {
	// A timestamp word is only valid against the exact key and value it
	// was encoded with — the Frankenstein-entry defense: torn appends
	// over recycled chunks can pair new KV words with a stale timestamp
	// word, and such mixes must not decode.
	w := EncodeTimestamp(10, 20, 5)
	if _, ok := DecodeTimestamp(11, 20, w); ok {
		t.Fatal("timestamp word validated against wrong key")
	}
	if _, ok := DecodeTimestamp(10, 21, w); ok {
		t.Fatal("timestamp word validated against wrong value")
	}
	if _, ok := DecodeTimestamp(10, 20, w^1); ok {
		t.Fatal("corrupted check code validated")
	}
	if _, ok := DecodeTimestamp(10, 20, 0); ok {
		t.Fatal("unwritten (zero) word validated")
	}
}

func TestAppendRejectsOverflowTick(t *testing.T) {
	pool, m := testSetup(t, 4096)
	l := NewLog(m, 0)
	if _, err := l.Append(pool.NewThread(0), Entry{Key: 1, Timestamp: MaxTick + 1}); err == nil {
		t.Fatal("tick above MaxTick accepted")
	}
}

func TestScanDropsFrankensteinRecord(t *testing.T) {
	// Hand-craft a torn append on a recycled chunk: KV words from a new
	// record, timestamp word left over from an old one. The scan must
	// drop it and keep the intact neighbor.
	pool, m := testSetup(t, 256)
	th := pool.NewThread(0)
	chunk, err := m.AcquireChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0: intact.
	th.Store(chunk, 100)
	th.Store(chunk.Add(8), 200)
	th.Store(chunk.Add(16), EncodeTimestamp(100, 200, 7))
	// Record 1: new key/value drained, stale timestamp word (encoded for
	// a different record) still in place.
	th.Store(chunk.Add(24), 101)
	th.Store(chunk.Add(32), 201)
	th.Store(chunk.Add(40), EncodeTimestamp(55, 66, 3))
	th.Persist(chunk, 48)

	got := ReadEntriesInChunks(th, []pmem.Addr{chunk}, 256)
	if len(got) != 1 {
		t.Fatalf("scan returned %d entries, want 1 (Frankenstein dropped): %+v", len(got), got)
	}
	if got[0].Key != 100 || got[0].Value != 200 || got[0].Timestamp != 7 {
		t.Fatalf("intact record mangled: %+v", got[0])
	}
}

func TestUnsafeSkipFenceLeavesEntryVolatile(t *testing.T) {
	// The seeded-bug switch the torture oracle must catch: with the
	// fence skipped, Append returns "durable" but a crash loses the
	// entry. A control log with the fence keeps its entry.
	pool, m := testSetup(t, 4096)
	th := pool.NewThread(0)

	good := NewLog(m, 0)
	if _, err := good.Append(th, Entry{Key: 1, Value: 10, Timestamp: 1}); err != nil {
		t.Fatal(err)
	}
	bad := NewLog(m, 0)
	bad.UnsafeSkipFence = true
	if _, err := bad.Append(th, Entry{Key: 2, Value: 20, Timestamp: 2}); err != nil {
		t.Fatal(err)
	}

	pool.Crash()
	th2 := pool.NewThread(0)
	if got := good.Entries(th2); len(got) != 1 {
		t.Fatalf("fenced entry lost across crash: %+v", got)
	}
	if got := bad.Entries(th2); len(got) != 0 {
		t.Fatalf("unfenced entry survived crash — UnsafeSkipFence not skipping: %+v", got)
	}
}
