package core

import (
	"math/rand"
	"testing"

	"cclbtree/internal/pmem"
)

// TestCrashAtEveryFlushBoundary cuts power at each successive flush of
// a fixed workload — inside batch flushes, logless splits, merges, WAL
// appends, GC — and verifies after recovery that
//
//  1. every operation completed before the failing one is durable with
//     its latest value (the §3.3 durability contract: non-trigger
//     writes persist their log entry, trigger writes persist the whole
//     batch, before returning), and
//  2. the in-flight operation is atomic: its key reads as either the
//     previous state or the new one, never garbage.
//
// The sweep runs in both persistence domains (ADR rolls back unfenced
// flushes at Crash; eADR keeps every store) and both with and without
// background GC. GC-enabled sweeps use the sticky FailWhen trigger: the
// fault may fire first on the GC goroutine (which recovers and exits),
// and stickiness guarantees the workload thread dies at its own next
// flush instead of completing operations on a dead machine.
func TestCrashAtEveryFlushBoundary(t *testing.T) {
	cases := []struct {
		name string
		mode pmem.Mode
		gc   GCPolicy
	}{
		{"adr-gcoff", pmem.ADR, GCOff},
		{"eadr-gcoff", pmem.EADR, GCOff},
		{"adr-gc", pmem.ADR, GCLocalityAware},
		{"eadr-gc", pmem.EADR, GCLocalityAware},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// First, count the workload's flushes (with GC on the count
			// varies run to run; it only bounds the sweep range).
			total := countFlushes(t, c.mode, c.gc)
			if total < 100 {
				t.Fatalf("workload too small: %d flushes", total)
			}
			// Sweep a sample of crash points; a full per-boundary sweep
			// is O(total²) work, so cap the number of points per config.
			points := 200
			if testing.Short() {
				points = 50
			}
			step := 1
			if total > points {
				step = total / points
			}
			for point := int64(1); point <= int64(total); point += int64(step) {
				runCrashPoint(t, c.mode, c.gc, point)
			}
		})
	}
}

// workloadOps drives the deterministic op sequence, reporting each
// completed op to done. Returns normally or panics with PowerFailure.
func workloadOps(w *Worker, done func(op int, key, val uint64, del bool)) {
	rng := rand.New(rand.NewSource(99))
	const space = 300
	for op := 0; op < 2500; op++ {
		k := uint64(rng.Intn(space) + 1)
		if rng.Intn(6) == 0 {
			_ = w.Delete(k)
			done(op, k, 0, true)
		} else {
			v := uint64(rng.Intn(1<<30) + 1)
			_ = w.Upsert(k, v)
			done(op, k, v, false)
		}
	}
}

func countFlushes(t *testing.T, mode pmem.Mode, gc GCPolicy) int {
	t.Helper()
	pool := newTestPool(func(c *pmem.Config) { c.Mode = mode })
	tr, err := New(pool, Options{ChunkBytes: 8 << 10, GC: gc})
	if err != nil {
		t.Fatal(err)
	}
	// FlushCalls counts every Flush/Persist call in both domains (eADR
	// moves no data but still counts), matching FaultPoint.Seq numbering.
	base := pool.FlushCalls()
	w := tr.NewWorker(0)
	workloadOps(w, func(int, uint64, uint64, bool) {})
	tr.Freeze()
	return int(pool.FlushCalls() - base)
}

func runCrashPoint(t *testing.T, mode pmem.Mode, gc GCPolicy, point int64) {
	t.Helper()
	pool := newTestPool(func(c *pmem.Config) { c.Mode = mode })
	opts := Options{ChunkBytes: 8 << 10, GC: gc}
	tr, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)

	ref := map[uint64]uint64{} // state after the last COMPLETED op
	var inKey, inVal uint64    // the op in flight at the crash
	var inDel bool
	completed := 0

	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.PowerFailure); !ok {
					panic(r)
				}
				c = true
			}
		}()
		rng := rand.New(rand.NewSource(99))
		const space = 300
		// Seq is global since pool creation; count the point relative to
		// here so it matches countFlushes' delta.
		target := pool.FlushCalls() + point
		pool.FailWhen(func(fp pmem.FaultPoint) bool { return fp.Seq == target })
		for op := 0; op < 2500; op++ {
			k := uint64(rng.Intn(space) + 1)
			if rng.Intn(6) == 0 {
				inKey, inVal, inDel = k, 0, true
				_ = w.Delete(k)
				delete(ref, k)
			} else {
				v := uint64(rng.Intn(1<<30) + 1)
				inKey, inVal, inDel = k, v, false
				_ = w.Upsert(k, v)
				ref[k] = v
			}
			completed++
		}
		return false
	}()
	// Join background GC before losing power: the fault may have fired
	// there (the GC goroutine recovers and exits), or — when the point
	// lies beyond this run's flush count — GC may still be running.
	tr.Freeze()
	pool.FailWhen(nil)
	if !crashed {
		// The fault point lies beyond this workload's flush count
		// (flush counts can vary slightly run to run); nothing to do.
		return
	}
	// The op in flight was rolled out of ref by the workload loop only
	// if it completed; since it crashed mid-way, ref reflects all
	// PRIOR ops. Reconstruct the pre-op value for atomicity checking.
	preVal, preOK := ref[inKey], false
	if _, exists := ref[inKey]; exists {
		preOK = true
	}

	pool.Crash()
	tr2, _, err := Open(pool, opts, 1)
	if err != nil {
		t.Fatalf("point %d: recovery failed after %d ops: %v", point, completed, err)
	}
	defer tr2.Freeze()
	w2 := tr2.NewWorker(0)
	for k, v := range ref {
		if k == inKey {
			continue // checked separately
		}
		got, ok := w2.Lookup(k)
		if !ok || got != v {
			t.Fatalf("point %d: completed key %d lost (%d,%v want %d) after %d ops",
				point, k, got, ok, v, completed)
		}
	}
	// Atomicity of the in-flight op.
	got, ok := w2.Lookup(inKey)
	oldState := ok == preOK && (!ok || got == preVal)
	var newState bool
	if inDel {
		newState = !ok
	} else {
		newState = ok && got == inVal
	}
	if !oldState && !newState {
		t.Fatalf("point %d: in-flight key %d inconsistent: got (%d,%v), old=(%d,%v), new=(del=%v val=%d)",
			point, inKey, got, ok, preVal, preOK, inDel, inVal)
	}
	// Structure is sound: a full scan must be sorted and within range.
	out := make([]KV, 400)
	n := w2.Scan(1, 400, out)
	var prev uint64
	for i := 0; i < n; i++ {
		if out[i].Key <= prev {
			t.Fatalf("point %d: scan disorder after recovery", point)
		}
		prev = out[i].Key
	}
}
