package core

import (
	"math/rand"
	"testing"

	"cclbtree/internal/pmem"
)

// TestCrashAtEveryFlushBoundary cuts power at each successive flush of
// a fixed workload — inside batch flushes, logless splits, merges, WAL
// appends, GC — and verifies after recovery that
//
//  1. every operation completed before the failing one is durable with
//     its latest value (the §3.3 durability contract: non-trigger
//     writes persist their log entry, trigger writes persist the whole
//     batch, before returning), and
//  2. the in-flight operation is atomic: its key reads as either the
//     previous state or the new one, never garbage.
func TestCrashAtEveryFlushBoundary(t *testing.T) {
	// First, count the workload's flushes.
	total := countFlushes(t)
	if total < 100 {
		t.Fatalf("workload too small: %d flushes", total)
	}
	// Sweep a sample of crash points (every boundary below 200, then a
	// spread); a full sweep is O(total²) work.
	step := 1
	if total > 400 {
		step = total / 400
	}
	for point := int64(1); point <= int64(total); point += int64(step) {
		runCrashPoint(t, point)
	}
}

// workloadOps drives the deterministic op sequence, reporting each
// completed op to done. Returns normally or panics with PowerFailure.
func workloadOps(w *Worker, done func(op int, key, val uint64, del bool)) {
	rng := rand.New(rand.NewSource(99))
	const space = 300
	for op := 0; op < 2500; op++ {
		k := uint64(rng.Intn(space) + 1)
		if rng.Intn(6) == 0 {
			_ = w.Delete(k)
			done(op, k, 0, true)
		} else {
			v := uint64(rng.Intn(1<<30) + 1)
			_ = w.Upsert(k, v)
			done(op, k, v, false)
		}
	}
}

func countFlushes(t *testing.T) int {
	t.Helper()
	pool := newTestPool(nil)
	tr, err := New(pool, Options{ChunkBytes: 8 << 10, GC: GCOff})
	if err != nil {
		t.Fatal(err)
	}
	base := pool.Stats().XPBufWriteBytes
	w := tr.NewWorker(0)
	workloadOps(w, func(int, uint64, uint64, bool) {})
	tr.Freeze()
	// Each dirty-line flush moves 64 B to the XPBuffer; clean flushes
	// are skipped but also don't trip the fault trigger meaningfully.
	return int((pool.Stats().XPBufWriteBytes - base) / pmem.CachelineSize)
}

func runCrashPoint(t *testing.T, point int64) {
	t.Helper()
	// GC off: the fault trigger must fire on THIS goroutine (the
	// background GC thread has no recover and would crash the binary);
	// mid-GC power failures are covered by TestCrashMidGC.
	pool := newTestPool(nil)
	tr, err := New(pool, Options{ChunkBytes: 8 << 10, GC: GCOff})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)

	ref := map[uint64]uint64{} // state after the last COMPLETED op
	var inKey, inVal uint64    // the op in flight at the crash
	var inDel bool
	completed := 0

	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.PowerFailure); !ok {
					panic(r)
				}
				c = true
			}
		}()
		rng := rand.New(rand.NewSource(99))
		const space = 300
		pool.FailAfterFlushes(point)
		for op := 0; op < 2500; op++ {
			k := uint64(rng.Intn(space) + 1)
			if rng.Intn(6) == 0 {
				inKey, inVal, inDel = k, 0, true
				_ = w.Delete(k)
				delete(ref, k)
			} else {
				v := uint64(rng.Intn(1<<30) + 1)
				inKey, inVal, inDel = k, v, false
				_ = w.Upsert(k, v)
				ref[k] = v
			}
			completed++
		}
		return false
	}()
	pool.FailAfterFlushes(0)
	if !crashed {
		// The fault point lies beyond this workload's flush count
		// (flush counts can vary slightly run to run); nothing to do.
		return
	}
	// The op in flight was rolled out of ref by the workload loop only
	// if it completed; since it crashed mid-way, ref reflects all
	// PRIOR ops. Reconstruct the pre-op value for atomicity checking.
	preVal, preOK := ref[inKey], false
	if _, exists := ref[inKey]; exists {
		preOK = true
	}

	pool.Crash()
	tr2, _, err := Open(pool, Options{}, 1)
	if err != nil {
		t.Fatalf("point %d: recovery failed after %d ops: %v", point, completed, err)
	}
	w2 := tr2.NewWorker(0)
	for k, v := range ref {
		if k == inKey {
			continue // checked separately
		}
		got, ok := w2.Lookup(k)
		if !ok || got != v {
			t.Fatalf("point %d: completed key %d lost (%d,%v want %d) after %d ops",
				point, k, got, ok, v, completed)
		}
	}
	// Atomicity of the in-flight op.
	got, ok := w2.Lookup(inKey)
	oldState := ok == preOK && (!ok || got == preVal)
	var newState bool
	if inDel {
		newState = !ok
	} else {
		newState = ok && got == inVal
	}
	if !oldState && !newState {
		t.Fatalf("point %d: in-flight key %d inconsistent: got (%d,%v), old=(%d,%v), new=(del=%v val=%d)",
			point, inKey, got, ok, preVal, preOK, inDel, inVal)
	}
	// Structure is sound: a full scan must be sorted and within range.
	out := make([]KV, 400)
	n := w2.Scan(1, 400, out)
	var prev uint64
	for i := 0; i < n; i++ {
		if out[i].Key <= prev {
			t.Fatalf("point %d: scan disorder after recovery", point)
		}
		prev = out[i].Key
	}
}
