// Package core implements CCL-BTree (EuroSys '24): a crash-consistent,
// locality-aware B+-tree for persistent memory built from three
// techniques — leaf-node-centric buffering (§3.2), write-conservative
// logging (§3.3), and locality-aware garbage collection (§3.4) — on top
// of this repository's PM device model.
//
// Layout (Fig 6): inner nodes and per-leaf buffer nodes live in DRAM;
// 256 B leaf nodes (one XPLine each) and the per-thread write-ahead logs
// live in PM. Keys are unsorted inside a buffer node or leaf but ordered
// between adjacent leaves, preserving range-query performance.
package core

import (
	"fmt"

	"cclbtree/internal/obs"
)

// GCPolicy selects the log reclamation strategy (§3.4 / Fig 14).
type GCPolicy int

const (
	// GCLocalityAware is the paper's design: flip the global epoch,
	// copy still-unflushed entries from buffer nodes to I-logs in an
	// append-only manner, then recycle the B-log chunks. Foreground
	// threads keep running throughout.
	GCLocalityAware GCPolicy = iota
	// GCNaive stops the world and flushes every buffered KV to its
	// leaf (random PM writes), the strawman the paper measures a 37.5%
	// throughput dip against.
	GCNaive
	// GCOff never reclaims (the "w/o GC" baseline of Fig 14).
	GCOff
)

func (p GCPolicy) String() string {
	switch p {
	case GCLocalityAware:
		return "locality-aware"
	case GCNaive:
		return "naive"
	case GCOff:
		return "off"
	}
	return "unknown"
}

// Options configures a Tree. The zero value is usable: every field
// defaults to the paper's setting.
type Options struct {
	// Nbatch is the number of KV slots per buffer node (default 2,
	// §5.4 Table 1). Nbatch = 0 disables buffering entirely: every
	// insert goes straight to the leaf in one flush, which is the
	// "Base" configuration of the Fig 13 ablation (it also disables
	// logging — with no volatile buffer there is nothing to protect).
	Nbatch int
	// THlog is the GC trigger threshold: reclaim when log bytes exceed
	// THlog × leaf bytes (default 0.20, §5.4 Table 2).
	THlog float64
	// GC selects the reclamation policy (default locality-aware).
	GC GCPolicy
	// NaiveLogging logs every insertion including trigger writes — the
	// "+BNode" ablation configuration. The default (false) is
	// write-conservative logging ("+WLog"): trigger writes skip the
	// log because they are immediately flushed with the batch.
	NaiveLogging bool
	// ChunkBytes is the WAL chunk size (default 4 MB).
	ChunkBytes int
	// VarKV switches keys and values to variable-size byte strings
	// stored out-of-band and referenced through 8 B indirection
	// pointers (§4.4 Optimization #3). Key comparisons then chase the
	// pointers, exactly the overhead Fig 15b measures.
	VarKV bool
	// OrdoBoundary is the cross-socket timestamp uncertainty window in
	// ticks (default 16).
	OrdoBoundary uint64
	// DirSlots is the capacity of the persistent log-chunk directory
	// used by recovery (default 4096 chunks = 16 GB of logs at 4 MB).
	DirSlots int
	// Metrics enables per-operation latency histograms (Tree.Metrics).
	// Off by default: when off, workers carry no obs handle and the hot
	// paths do no histogram work.
	Metrics bool
	// Tracer, when non-nil, receives operation/flush/split/GC events.
	// Callers usually also install Tracer.DeviceHook on the pool to
	// capture eviction events. A nil (or disabled) tracer costs one
	// atomic load per event site.
	Tracer *obs.Tracer
	// UnsafeSkipWALFence makes every worker's WAL appends skip the
	// sfence (see wal.Log.UnsafeSkipFence): a deliberate durability bug
	// used exclusively to prove the torture oracle catches real
	// violations. Never set it outside oracle self-tests.
	UnsafeSkipWALFence bool
	// LockedReads is the read-path ablation: Get/Scan take the buffer
	// node's version lock for the duration of the read instead of the
	// default lock-free seqlock traversal, and each read is charged the
	// modeled cacheline handoff a shared lock word costs per peer
	// worker (the simulated clock cannot see wall-clock contention, so
	// the cost is deterministic, like conflictPenaltyNS). This is the
	// baseline the YCSB-C read-scaling gate measures the lock-free path
	// against.
	LockedReads bool
	// UnsafeSkipReadRecheck makes optimistic readers ignore the result
	// of their seqlock re-validation, so torn reads racing a concurrent
	// writer are returned as if consistent: a deliberate
	// read-linearizability bug used exclusively to prove the torture
	// oracle's read checks catch real violations. Never set it outside
	// oracle self-tests.
	UnsafeSkipReadRecheck bool
	// HomeSocket is the NUMA socket the tree is pinned to: its
	// superblock, chunk directory, head leaf, GC worker and recovery
	// threads all live there (default 0, today's layout). The sharded DB
	// frontend assigns shard trees round-robin across sockets so each
	// shard's metadata and background traffic stay NUMA-local.
	HomeSocket int
	// ArenaIndex/ArenaCount place the tree in one of ArenaCount equal
	// per-socket PM arenas (see pmalloc.NewArena), so several trees —
	// the shards of one DB — can share a pool and still recover
	// independently after a whole-pool crash. The zero value (arena 0 of
	// 1) is the classic whole-device layout. The superblock records the
	// placement; Open rejects a mismatch rather than silently reading
	// another arena's (or the whole device's) superblock.
	ArenaIndex int
	ArenaCount int
}

const (
	defaultNbatch   = 2
	defaultTHlog    = 0.20
	defaultDirSlots = 4096
	defaultOrdo     = 16
)

func (o Options) withDefaults() (Options, error) {
	if o.Nbatch == 0 {
		o.Nbatch = defaultNbatch
	}
	if o.Nbatch < 0 {
		o.Nbatch = 0 // explicit "Base" request
	}
	if o.Nbatch > maxNbatch {
		return o, fmt.Errorf("core: Nbatch %d exceeds maximum %d", o.Nbatch, maxNbatch)
	}
	if o.THlog <= 0 {
		o.THlog = defaultTHlog
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 4 << 20
	}
	if o.OrdoBoundary == 0 {
		o.OrdoBoundary = defaultOrdo
	}
	if o.DirSlots == 0 {
		o.DirSlots = defaultDirSlots
	}
	if o.ArenaCount == 0 {
		o.ArenaCount = 1
	}
	if o.ArenaCount < 1 || o.ArenaIndex < 0 || o.ArenaIndex >= o.ArenaCount {
		return o, fmt.Errorf("core: arena %d of %d impossible", o.ArenaIndex, o.ArenaCount)
	}
	if o.ArenaCount > maxArenaFlag || o.ArenaIndex > maxArenaFlag {
		return o, fmt.Errorf("core: arena %d of %d exceeds the superblock's 16-bit placement fields", o.ArenaIndex, o.ArenaCount)
	}
	if o.HomeSocket < 0 {
		return o, fmt.Errorf("core: home socket %d negative", o.HomeSocket)
	}
	return o, nil
}

// maxArenaFlag bounds the arena placement encoded in the superblock's
// flags word (16 bits each for index and count).
const maxArenaFlag = 0xffff

// maxNbatch bounds the buffer node's slot count so the packed header
// (position counter + per-slot epoch bits) fits comfortably; the paper
// evaluates 1–5.
const maxNbatch = 16
