package core

import (
	"fmt"

	"cclbtree/internal/pmem"
)

// Variable-size KV support (§4.4 Optimization #3): keys and values
// larger than 8 B live in out-of-band PM blobs; the tree, the logs, and
// the inner directory hold 8 B indirection pointers whose most
// significant bit marks them as pointers. Comparisons chase the
// pointers and compare actual bytes — the pointer-chasing cost Fig 15b
// and Fig 15c quantify.
//
// Blobs are immutable and written append-only from per-worker arenas;
// updates write a new blob and swing the 8 B pointer, so pointer writes
// stay failure-atomic and still benefit from the buffering design.

const blobTag = uint64(1) << 63

// probeTag marks a transient in-DRAM probe key (lookup/scan arguments):
// the low bits hold the issuing worker's id and the bytes live in that
// worker. Probe words are never stored in the tree or the logs; they
// only flow through comparisons, so read operations write nothing.
const probeTag = uint64(1) << 62

// IsBlobWord reports whether an 8 B word is an indirection pointer.
func IsBlobWord(w uint64) bool { return w&blobTag != 0 }

func isProbeWord(w uint64) bool { return w&blobTag == 0 && w&probeTag != 0 }

func blobAddr(w uint64) pmem.Addr { return pmem.Unpack48(w &^ blobTag) }

// blobArenaChunk is the granularity at which workers reserve PM for
// blob storage.
const blobArenaChunk = 64 << 10

// blobArena is a per-worker append-only blob allocator.
type blobArena struct {
	alloc interface {
		Alloc(socket, size int) (pmem.Addr, error)
	}
	socket int
	cur    pmem.Addr
	off    int
	limit  int
}

// write stores b as a blob ([len][data...]) and returns the tagged
// pointer word. The blob is persisted before the pointer is used.
func (ar *blobArena) write(t *pmem.Thread, b []byte) (uint64, error) {
	need := (1 + (len(b)+7)/8) * pmem.WordSize
	if need > blobArenaChunk {
		return 0, fmt.Errorf("core: blob of %d bytes exceeds arena chunk", len(b))
	}
	if ar.cur.IsNil() || ar.off+need > ar.limit {
		c, err := ar.alloc.Alloc(ar.socket, blobArenaChunk)
		if err != nil {
			return 0, fmt.Errorf("core: blob arena: %w", err)
		}
		ar.cur, ar.off, ar.limit = c, 0, blobArenaChunk
	}
	addr := ar.cur.Add(int64(ar.off))
	ar.off += need

	words := make([]uint64, need/pmem.WordSize)
	words[0] = uint64(len(b))
	for i, c := range b {
		words[1+i/8] |= uint64(c) << (8 * uint(i%8))
	}
	t.WriteRange(addr, words)
	t.Persist(addr, need)
	return blobTag | addr.Pack48(), nil
}

// readBlob loads a blob's bytes.
func readBlob(t *pmem.Thread, w uint64) []byte {
	addr := blobAddr(w)
	n := t.Load(addr)
	out := make([]byte, n)
	nw := (int(n) + 7) / 8
	words := make([]uint64, nw)
	if nw > 0 {
		t.ReadRange(addr.Add(8), words)
	}
	for i := range out {
		out[i] = byte(words[i/8] >> (8 * uint(i%8)))
	}
	return out
}

// compareVar orders two key words that are blob pointers, probe words,
// or the 0 sentinel (which sorts below everything).
func (tr *Tree) compareVar(t *pmem.Thread, a, b uint64) int {
	if a == b {
		return 0
	}
	if a == 0 {
		return -1
	}
	if b == 0 {
		return 1
	}
	ab := tr.keyBytes(t, a)
	bb := tr.keyBytes(t, b)
	for i := 0; i < len(ab) && i < len(bb); i++ {
		if ab[i] != bb[i] {
			if ab[i] < bb[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(ab) < len(bb):
		return -1
	case len(ab) > len(bb):
		return 1
	}
	return 0
}

// keyBytes resolves a key word to its bytes: probe words come from the
// issuing worker's DRAM buffer, blob words from PM.
func (tr *Tree) keyBytes(t *pmem.Thread, w uint64) []byte {
	if isProbeWord(w) {
		return tr.probeBytes(int(w &^ probeTag))
	}
	return readBlob(t, w)
}

// probeBytes fetches a registered worker's current probe key.
func (tr *Tree) probeBytes(id int) []byte {
	tr.workersMu.Lock()
	w := tr.workers[id]
	tr.workersMu.Unlock()
	return w.probeKey
}

// hashKeyBytes hashes key bytes (FNV-1a) for fingerprinting and
// recovery-time grouping.
func hashKeyBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// decodeValueWord turns a stored value word into bytes: blob words are
// chased, inline words are returned as 8 B little-endian.
func decodeValueWord(t *pmem.Thread, w uint64) []byte {
	if IsBlobWord(w) {
		return readBlob(t, w)
	}
	out := make([]byte, 8)
	for i := range out {
		out[i] = byte(w >> (8 * uint(i)))
	}
	return out
}
