package core

import "testing"

// TestLookupZeroAlloc gates the lock-free point-read path at zero
// allocations per op: RCU routing, epoch pin, fingerprint probe and
// leaf search must all stay on the stack.
func TestLookupZeroAlloc(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 2048; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var k uint64 = 1
	avg := testing.AllocsPerRun(3000, func() {
		w.Lookup(k)
		k = k%2048 + 1
	})
	if avg != 0 {
		t.Fatalf("Lookup allocates %.2f objects/op, want 0", avg)
	}
	// Misses are on the same path.
	avg = testing.AllocsPerRun(1000, func() { w.Lookup(1 << 40) })
	if avg != 0 {
		t.Fatalf("missing-key Lookup allocates %.2f objects/op, want 0", avg)
	}
}

// TestScanZeroAllocSteadyState gates Scan's per-node collection: after
// the worker's reusable candidate/entry buffers warm up, a scan
// performs no per-call allocation.
func TestScanZeroAllocSteadyState(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 2048; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]KV, 64)
	w.Scan(1, 64, out) // warm the scratch buffers
	var start uint64 = 1
	avg := testing.AllocsPerRun(1000, func() {
		w.Scan(start, 64, out)
		start = start%1900 + 1
	})
	if avg != 0 {
		t.Fatalf("steady-state Scan allocates %.2f objects/op, want 0", avg)
	}
}
