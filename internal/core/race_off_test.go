//go:build !race

package core

// raceTestEnabled reports whether the race detector is compiled in; see
// race_on_test.go.
const raceTestEnabled = false
