package core

import (
	"testing"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// TestScopeAttributionAcrossHandoff is the satellite test: a worker
// handed to another goroutine, with a caller-pushed scope on its
// thread, must still attribute WAL-append bytes to the wal scope (the
// scope travels with the Thread and wal.Append overrides it), never to
// the caller's scope. Runs under StrictPersist (the pool helper arms
// it), so it doubles as a discipline check on the scope-push paths.
func TestScopeAttributionAcrossHandoff(t *testing.T) {
	// Large Nbatch + few keys: every insert buffers and logs, no
	// trigger flush, so WAL appends dominate the PM write traffic.
	tr, w := newTestTree(t, Options{Nbatch: 8, GC: GCOff}, nil)
	pool := tr.Pool()

	done := make(chan error, 1)
	go func() {
		// The worker (and its Thread) crosses a goroutine boundary —
		// the handoff PL004 polices for captures; here ownership moves
		// wholesale, which is legal.
		prev := w.Thread().PushScope(pmem.ScopeGC) // stand-in caller scope
		defer w.Thread().PopScope(prev)
		for i := uint64(1); i <= 6; i++ {
			if err := w.Upsert(i*1000, i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pool.DrainXPBuffers()
	s := pool.Stats()

	if s.XPBufWriteByScope[pmem.ScopeWAL] == 0 {
		t.Fatalf("no xpbuf bytes attributed to wal scope: %v", s.ScopeMediaBytes())
	}
	if s.MediaWriteByScope[pmem.ScopeWAL] == 0 {
		t.Fatalf("no media bytes attributed to wal scope: %v", s.ScopeMediaBytes())
	}
	// The caller's scope (gc) did no PM writes of its own in this
	// workload: no flush, no split, only buffered inserts whose PM
	// traffic is all WAL.
	if got := s.MediaWriteByScope[pmem.ScopeGC]; got != 0 {
		t.Fatalf("caller scope stole %d media bytes from wal", got)
	}
	if got := s.XPBufWriteByScope[pmem.ScopeGC]; got != 0 {
		t.Fatalf("caller scope stole %d xpbuf bytes from wal", got)
	}
	var sum uint64
	for _, v := range s.MediaWriteByScope {
		sum += v
	}
	if sum != s.MediaWriteBytes {
		t.Fatalf("scope sum %d != MediaWriteBytes %d", sum, s.MediaWriteBytes)
	}
}

// TestScopeBreakdownCoversComponents drives flushes, splits and GC and
// checks each component's scope shows up while the partition invariant
// holds.
func TestScopeBreakdownCoversComponents(t *testing.T) {
	tr, w := newTestTree(t, Options{Nbatch: 2}, nil)
	pool := tr.Pool()
	for i := uint64(1); i <= 3000; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.ForceGC()
	tr.Freeze()
	pool.DrainXPBuffers()
	s := pool.Stats()
	var sum uint64
	for _, v := range s.MediaWriteByScope {
		sum += v
	}
	if sum != s.MediaWriteBytes {
		t.Fatalf("scope sum %d != MediaWriteBytes %d (%v)", sum, s.MediaWriteBytes, s.ScopeMediaBytes())
	}
	for _, sc := range []pmem.Scope{pmem.ScopeLeafBuf, pmem.ScopeWAL, pmem.ScopeSplit, pmem.ScopeMeta} {
		if s.MediaWriteByScope[sc] == 0 {
			t.Fatalf("scope %v has no media bytes: %v", sc, s.ScopeMediaBytes())
		}
	}
}

// TestMetricsLatencyHistograms exercises Options.Metrics end to end.
func TestMetricsLatencyHistograms(t *testing.T) {
	tr, w := newTestTree(t, Options{Metrics: true}, nil)
	for i := uint64(1); i <= 500; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 100; i++ {
		w.Lookup(i)
	}
	out := make([]KV, 16)
	w.Scan(1, 16, out)

	tm := tr.Metrics()
	if tm.Latency == nil {
		t.Fatal("Latency nil with Metrics on")
	}
	ins := tm.Latency.Hists["insert_ns"]
	if ins == nil || ins.Count != 500 {
		t.Fatalf("insert histogram: %+v", ins)
	}
	if ins.P99() < ins.P50() || ins.P50() == 0 {
		t.Fatalf("implausible quantiles p50=%d p99=%d", ins.P50(), ins.P99())
	}
	if lk := tm.Latency.Hists["lookup_ns"]; lk.Count != 100 {
		t.Fatalf("lookup count %d", lk.Count)
	}
	if sc := tm.Latency.Hists["scan_ns"]; sc.Count != 1 {
		t.Fatalf("scan count %d", sc.Count)
	}
	if tm.Counters.Upserts != 500 {
		t.Fatalf("counters not carried: %+v", tm.Counters)
	}

	// Metrics off: Latency must be nil, counters still live.
	tr2, w2 := newTestTree(t, Options{}, nil)
	if err := w2.Upsert(1, 1); err != nil {
		t.Fatal(err)
	}
	if tm2 := tr2.Metrics(); tm2.Latency != nil || tm2.Counters.Upserts != 1 {
		t.Fatalf("metrics-off snapshot: %+v", tm2)
	}
}

// TestTreeTracerEvents wires a tracer through Options and the device
// hook and checks tree + device events arrive.
func TestTreeTracerEvents(t *testing.T) {
	trc := obs.NewTracer(4096)
	trc.Enable()
	tr, w := newTestTree(t, Options{Nbatch: 2, Tracer: trc}, nil)
	tr.Pool().SetDeviceTracer(trc.DeviceHook())
	for i := uint64(1); i <= 2000; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	w.Lookup(7)
	kinds := map[obs.EventKind]int{}
	for _, e := range trc.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{obs.EvInsert, obs.EvLookup, obs.EvFlushBatch, obs.EvSplit, obs.EvXPBufEvict} {
		if kinds[k] == 0 {
			t.Fatalf("no %v events recorded: %v", k, kinds)
		}
	}
}

// TestHotPathAllocs is the acceptance guard: obs left disabled adds
// zero allocations to the hot paths. The read path must be absolutely
// allocation-free; the insert path is compared against a tree with no
// obs options at all, because the device model itself allocates flush
// snapshots (pre-existing, not obs traffic).
func TestHotPathAllocs(t *testing.T) {
	setup := func(opts Options) *Worker {
		_, w := newTestTree(t, opts, nil)
		for i := uint64(1); i <= 64; i++ {
			if err := w.Upsert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	insertAllocs := func(w *Worker) float64 {
		var v uint64
		return testing.AllocsPerRun(500, func() {
			v++
			if err := w.Upsert(7, v); err != nil {
				t.Fatal(err)
			}
		})
	}

	plain := setup(Options{Nbatch: 4, GC: GCOff})
	withObsOff := setup(Options{Nbatch: 4, GC: GCOff, Tracer: obs.NewTracer(128)}) // present, disabled

	if base, got := insertAllocs(plain), insertAllocs(withObsOff); got > base {
		t.Fatalf("disabled obs adds insert allocations: %v/op vs %v/op baseline", got, base)
	}
	if n := testing.AllocsPerRun(500, func() {
		plain.Lookup(7)
	}); n > 0 {
		t.Fatalf("lookup hot path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		withObsOff.Lookup(7)
	}); n > 0 {
		t.Fatalf("lookup with disabled tracer allocates %v/op, want 0", n)
	}
}
