package core

import (
	"errors"
	"fmt"
)

// Sentinel errors for the write paths. Every rejection at the API
// boundary wraps one of these (fmt.Errorf with %w), so callers — and
// the public cclbtree package, which re-exports them — can classify
// failures with errors.Is instead of matching message strings.
var (
	// ErrZeroKey rejects key 0 (fixed mode) and the empty key (VarKV
	// mode): the zero key word is the tree's -infinity routing sentinel.
	ErrZeroKey = errors.New("zero key is reserved")
	// ErrVarKVRequired rejects variable-size operations on a tree that
	// stores fixed 8 B pairs.
	ErrVarKVRequired = errors.New("operation requires Options.VarKV")
	// ErrFixedKVRequired rejects fixed 8 B operations on a tree in
	// VarKV mode, where every key word must be an indirection pointer.
	ErrFixedKVRequired = errors.New("operation requires fixed 8 B mode (tree has Options.VarKV)")
	// ErrClosed rejects writes after Freeze.
	ErrClosed = errors.New("tree is closed")
)

// writableFixed guards the fixed-mode write entry points: the tree must
// be open and not in VarKV mode.
func (w *Worker) writableFixed(op string) error {
	if w.tree.closed.Load() {
		return fmt.Errorf("core: %s: %w", op, ErrClosed)
	}
	if w.tree.opts.VarKV {
		return fmt.Errorf("core: %s: %w", op, ErrFixedKVRequired)
	}
	return nil
}

// writableVar guards the VarKV write entry points.
func (w *Worker) writableVar(op string) error {
	if w.tree.closed.Load() {
		return fmt.Errorf("core: %s: %w", op, ErrClosed)
	}
	if !w.tree.opts.VarKV {
		return fmt.Errorf("core: %s: %w", op, ErrVarKVRequired)
	}
	return nil
}
