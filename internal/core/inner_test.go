package core

import (
	"math/rand"
	"sort"
	"testing"

	"cclbtree/internal/pmem"
)

func fixedCmp(_ *pmem.Thread, a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func innerThread() *pmem.Thread {
	return pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 1 << 20, StrictPersist: true}).NewThread(0)
}

func TestInnerTreePutFindLE(t *testing.T) {
	tr := newInnerTree(fixedCmp)
	th := innerThread()
	nodes := map[uint64]*bufferNode{}
	for _, k := range []uint64{0, 100, 200, 300} {
		n := newBufferNode(pmem.MakeAddr(0, 4096+k), k, 2)
		nodes[k] = n
		tr.put(th, k, n)
	}
	cases := map[uint64]uint64{0: 0, 50: 0, 100: 100, 150: 100, 299: 200, 300: 300, 1 << 40: 300}
	for q, want := range cases {
		got := tr.findLE(th, q)
		if got != nodes[want] {
			t.Fatalf("findLE(%d) routed to %v, want lowKey %d", q, got, want)
		}
	}
	if tr.entries() != 4 {
		t.Fatalf("entries = %d", tr.entries())
	}
}

func TestInnerTreeRemove(t *testing.T) {
	tr := newInnerTree(fixedCmp)
	th := innerThread()
	for k := uint64(0); k < 500; k += 10 {
		tr.put(th, k, newBufferNode(pmem.MakeAddr(0, 4096+k*256), k, 2))
	}
	if !tr.remove(th, 250) {
		t.Fatal("remove failed")
	}
	if tr.remove(th, 250) {
		t.Fatal("double remove succeeded")
	}
	// Keys routed at 250..259 now fall to 240.
	got := tr.findLE(th, 255)
	if got == nil || got.lowKey != 240 {
		t.Fatalf("findLE(255) after remove: %+v", got)
	}
}

func TestInnerTreeStaleSeparatorRouting(t *testing.T) {
	// The regression behind the first recovery bug: removing an entry
	// whose key is also an ancestor separator must still route keys
	// below the removed entry to the true predecessor, even across
	// inner-leaf boundaries.
	tr := newInnerTree(fixedCmp)
	th := innerThread()
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		tr.put(th, k*10, newBufferNode(pmem.MakeAddr(0, 4096+k*256), k*10, 2))
	}
	rng := rand.New(rand.NewSource(4))
	removed := map[uint64]bool{}
	for i := 0; i < n/2; i++ {
		k := (uint64(rng.Intn(n-1)) + 2) * 10 // keep the smallest entry
		if !removed[k] {
			tr.remove(th, k)
			removed[k] = true
		}
	}
	var live []uint64
	for k := uint64(1); k <= n; k++ {
		if !removed[k*10] {
			live = append(live, k*10)
		}
	}
	for trial := 0; trial < 3000; trial++ {
		q := uint64(rng.Intn(n*10)) + 10
		i := sort.Search(len(live), func(i int) bool { return live[i] > q })
		want := live[i-1]
		got := tr.findLE(th, q)
		if got == nil || got.lowKey != want {
			t.Fatalf("findLE(%d) = %v, want lowKey %d", q, got, want)
		}
	}
}

func TestChunkDirRegisterUnregister(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 4 << 20, StrictPersist: true})
	base := pmem.MakeAddr(0, 8192)
	d := newChunkDir(pool.NewThread(0), base, 16)
	d.clearAll()
	c1 := pmem.MakeAddr(0, 1<<20)
	c2 := pmem.MakeAddr(0, 2<<20)
	d.register(c1)
	d.register(c2)
	got := readChunkDir(pool.NewThread(0), base, 16)
	if len(got) != 2 {
		t.Fatalf("dir holds %d chunks", len(got))
	}
	d.unregister(c1)
	got = readChunkDir(pool.NewThread(0), base, 16)
	if len(got) != 1 || got[0] != c2 {
		t.Fatalf("after unregister: %v", got)
	}
	// Unregistering twice is harmless.
	d.unregister(c1)
	// Slots are recycled.
	for i := 0; i < 15; i++ {
		d.register(pmem.MakeAddr(0, uint64(3+i)<<20))
	}
	if got := readChunkDir(pool.NewThread(0), base, 16); len(got) != 16 {
		t.Fatalf("slot recycling broken: %d", len(got))
	}
}

func TestChunkDirSurvivesCrash(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 4 << 20, StrictPersist: true})
	base := pmem.MakeAddr(0, 8192)
	d := newChunkDir(pool.NewThread(0), base, 8)
	d.clearAll()
	c := pmem.MakeAddr(0, 1<<20)
	d.register(c)
	pool.Crash()
	got := readChunkDir(pool.NewThread(0), base, 8)
	if len(got) != 1 || got[0] != c {
		t.Fatalf("registration lost in crash: %v", got)
	}
}

func TestBlobRoundtrip(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 8 << 20, StrictPersist: true})
	th := pool.NewThread(0)
	tr, err := New(pool, Options{VarKV: true, ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	for _, s := range []string{"", "a", "12345678", "a longer payload spanning words"} {
		word, err := w.blobs.write(w.t, []byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if !IsBlobWord(word) {
			t.Fatal("blob word untagged")
		}
		got := readBlob(th, word)
		if string(got) != s {
			t.Fatalf("blob %q roundtripped as %q", s, got)
		}
	}
}

func TestCompareVarOrdering(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 8 << 20, StrictPersist: true})
	tr, err := New(pool, Options{VarKV: true, ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	mk := func(s string) uint64 {
		word, err := w.blobs.write(w.t, []byte(s))
		if err != nil {
			t.Fatal(err)
		}
		return word
	}
	a, b, ab := mk("abc"), mk("abd"), mk("ab")
	th := w.t
	if tr.compareVar(th, a, b) >= 0 {
		t.Fatal("abc < abd violated")
	}
	if tr.compareVar(th, ab, a) >= 0 {
		t.Fatal("prefix ordering violated")
	}
	if tr.compareVar(th, a, mk("abc")) != 0 {
		t.Fatal("equal content in distinct blobs must compare equal")
	}
	if tr.compareVar(th, 0, a) >= 0 || tr.compareVar(th, a, 0) <= 0 {
		t.Fatal("0 sentinel must sort lowest")
	}
	if tr.compareVar(th, 0, 0) != 0 {
		t.Fatal("sentinel self-compare")
	}
}

func TestDecodeValueWord(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 8 << 20, StrictPersist: true})
	th := pool.NewThread(0)
	// Inline word decodes little-endian.
	got := decodeValueWord(th, 0x0102030405060708)
	if got[0] != 0x08 || got[7] != 0x01 {
		t.Fatalf("inline decode: %v", got)
	}
}
