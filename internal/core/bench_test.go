package core

import (
	"testing"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// benchmarkInsert measures the wall-clock cost of the hot insert path
// (not the modeled virtual time — bench/ measures that). The *ObsDisabled
// variant carries a disabled tracer: comparing the two bounds the
// overhead the observability layer adds when it is off.
func benchmarkInsert(b *testing.B, opts Options) {
	pool := pmem.NewPool(pmem.Config{
		Sockets:              1,
		DIMMsPerSocket:       2,
		DeviceBytes:          512 << 20,
		DisableCrashTracking: true,
	})
	opts.GC = GCOff
	tr, err := New(pool, opts)
	if err != nil {
		b.Fatal(err)
	}
	w := tr.NewWorker(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Upsert(uint64(i)+1, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	benchmarkInsert(b, Options{})
}

func BenchmarkInsertObsDisabled(b *testing.B) {
	benchmarkInsert(b, Options{Tracer: obs.NewTracer(1 << 10)})
}

func BenchmarkInsertMetricsOn(b *testing.B) {
	benchmarkInsert(b, Options{Metrics: true})
}
