package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cclbtree/internal/obs"
	"cclbtree/internal/ordo"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// superblock layout, at a fixed PM location — arena base + 256 on the
// tree's home socket — so recovery can bootstrap without any volatile
// state:
//
//	word 0  magic
//	word 1  head leaf address
//	word 2  chunk directory address
//	word 3  chunk directory slot count
//	word 4  WAL chunk bytes
//	word 5  flags (bit 0: VarKV; bits 8-23: arena count, 0 meaning 1;
//	        bits 24-39: arena index)
//
// The arena placement is part of the superblock because arena 0 of any
// count starts at offset 0: without it, opening an 8-shard pool as a
// single tree would find shard 0's magic and silently recover one
// eighth of the data.
const (
	sbOffset = 256
	sbMagic  = 0xcc1b7ee0_2024_0001
	sbWords  = 6
)

// sbFlags packs the VarKV bit and the arena placement into the
// superblock flags word.
func sbFlags(o Options) uint64 {
	var flags uint64
	if o.VarKV {
		flags |= 1
	}
	flags |= uint64(o.ArenaCount) << 8
	flags |= uint64(o.ArenaIndex) << 24
	return flags
}

// sbArena unpacks the placement (count 0 from pre-arena images reads
// as 1).
func sbArena(flags uint64) (index, count int) {
	index = int(flags >> 24 & maxArenaFlag)
	count = int(flags >> 8 & maxArenaFlag)
	if count == 0 {
		count = 1
	}
	return index, count
}

// Tree is a CCL-BTree over a PM pool. Operations go through per-
// goroutine Workers (NewWorker), mirroring the paper's per-thread WAL
// design.
type Tree struct {
	pool   *pmem.Pool
	alloc  *pmalloc.Allocator
	walman *wal.Manager
	clock  *ordo.Clock
	opts   Options

	inner *innerTree
	head  *bufferNode

	// epoch is the global GC epoch (0/1), read under buffer-node locks
	// (§3.4).
	epoch atomic.Uint32
	// epochGen counts epoch flips monotonically. The batch write path
	// snapshots it before its WAL group commit and re-checks it under
	// each buffer node's lock: a change means a GC round may already
	// have scanned that node — before the batch's slots were published —
	// and will reclaim the log generation holding the batch's records,
	// so the node's run must be re-logged into the current generation.
	// Raw epoch parity is not enough: two flips map back to the same
	// parity. The flip order (epoch first, then epochGen, see
	// runLocalityGC) is what makes an unchanged generation a proof that
	// the records live in an unreclaimed generation.
	epochGen atomic.Uint64

	workersMu sync.Mutex
	workers   []*Worker
	// workerCount mirrors len(workers) without the lock: the LockedReads
	// ablation charges each read a modeled cacheline handoff per peer.
	workerCount atomic.Int64

	// reclaim is the epoch-based reclamation state keeping merged
	// leaves mapped while lock-free readers may still probe them.
	reclaim epochManager

	closed    atomic.Bool
	gcRunning atomic.Bool
	gcMu      sync.Mutex
	gcDone    chan struct{} // closed when the current GC round finishes
	gcW       *Worker
	gcOnce    sync.Once
	// stw is the naive-GC stop-the-world lock; ops take the read side
	// only when the policy is GCNaive. stallVT propagates the GC
	// thread's virtual clock to foreground threads it blocked, so the
	// stop-the-world pause shows up in simulated time (Fig 14).
	stw      sync.RWMutex
	stallVT  atomic.Int64
	stallGen atomic.Uint64

	// met/tracer are the optional observability hooks (Options.Metrics,
	// Options.Tracer); both nil-safe at every use site. prof/heat are
	// the contention profiler and leaf heatmap of the second obs tier,
	// enabled together with met and likewise nil-safe everywhere.
	met    *treeMetrics
	tracer *obs.Tracer
	prof   *obs.LockProfiler
	heat   *obs.Heatmap

	leafCount atomic.Int64
	// logBytes tracks live appended WAL bytes (entries in unreclaimed
	// generations); this — not chunk footprint — feeds the THlog
	// trigger ratio, matching the paper's "log file size".
	logBytes atomic.Int64
	peakLog  atomic.Int64
	ctr      counters

	dir *chunkDir
}

// counters aggregates the tree's behavioral statistics.
type counters struct {
	upserts        atomic.Uint64
	deletes        atomic.Uint64
	lookups        atomic.Uint64
	scans          atomic.Uint64
	bufferHits     atomic.Uint64
	triggerWrites  atomic.Uint64
	loggedWrites   atomic.Uint64
	skippedLogs    atomic.Uint64
	splits         atomic.Uint64
	merges         atomic.Uint64
	gcRuns         atomic.Uint64
	gcCopied       atomic.Uint64
	gcSkippedFresh atomic.Uint64
	retries        atomic.Uint64
	readRetries    atomic.Uint64
	epochRetires   atomic.Uint64
	epochReclaims  atomic.Uint64
	batchApplies   atomic.Uint64
	batchedOps     atomic.Uint64
	batchRelogs    atomic.Uint64
}

// Counters is a snapshot of the tree's behavioral statistics.
type Counters struct {
	Upserts, Deletes, Lookups, Scans   uint64
	BufferHits                         uint64 // lookups answered from buffer nodes
	TriggerWrites                      uint64 // inserts that flushed a batch (unlogged under write-conservative logging)
	LoggedWrites                       uint64 // WAL appends
	SkippedLogs                        uint64 // log operations avoided by write-conservative logging
	Splits, Merges                     uint64
	GCRuns, GCCopiedEntries, GCSkipped uint64
	Retries                            uint64 // optimistic/concurrency retries (reads + writes)
	ReadRetries                        uint64 // lock-free Get/Scan passes retried on a version change
	EpochRetires                       uint64 // merged leaves parked in reclamation limbo
	EpochReclaims                      uint64 // limbo leaves freed once no reader could route to them
	BatchApplies                       uint64 // ApplyBatch group commits
	BatchedOps                         uint64 // writes that went through ApplyBatch
	BatchRelogs                        uint64 // batch records re-logged after a GC epoch flip
}

// Counters returns a snapshot of behavioral statistics.
func (tr *Tree) Counters() Counters {
	return Counters{
		Upserts:         tr.ctr.upserts.Load(),
		Deletes:         tr.ctr.deletes.Load(),
		Lookups:         tr.ctr.lookups.Load(),
		Scans:           tr.ctr.scans.Load(),
		BufferHits:      tr.ctr.bufferHits.Load(),
		TriggerWrites:   tr.ctr.triggerWrites.Load(),
		LoggedWrites:    tr.ctr.loggedWrites.Load(),
		SkippedLogs:     tr.ctr.skippedLogs.Load(),
		Splits:          tr.ctr.splits.Load(),
		Merges:          tr.ctr.merges.Load(),
		GCRuns:          tr.ctr.gcRuns.Load(),
		GCCopiedEntries: tr.ctr.gcCopied.Load(),
		GCSkipped:       tr.ctr.gcSkippedFresh.Load(),
		Retries:         tr.ctr.retries.Load(),
		ReadRetries:     tr.ctr.readRetries.Load(),
		EpochRetires:    tr.ctr.epochRetires.Load(),
		EpochReclaims:   tr.ctr.epochReclaims.Load(),
		BatchApplies:    tr.ctr.batchApplies.Load(),
		BatchedOps:      tr.ctr.batchedOps.Load(),
		BatchRelogs:     tr.ctr.batchRelogs.Load(),
	}
}

// Add returns the field-wise sum of two snapshots. The sharded DB
// frontend aggregates per-shard counters with it; Retries-style gauges
// sum like everything else (they are monotone event counts).
func (c Counters) Add(o Counters) Counters {
	c.Upserts += o.Upserts
	c.Deletes += o.Deletes
	c.Lookups += o.Lookups
	c.Scans += o.Scans
	c.BufferHits += o.BufferHits
	c.TriggerWrites += o.TriggerWrites
	c.LoggedWrites += o.LoggedWrites
	c.SkippedLogs += o.SkippedLogs
	c.Splits += o.Splits
	c.Merges += o.Merges
	c.GCRuns += o.GCRuns
	c.GCCopiedEntries += o.GCCopiedEntries
	c.GCSkipped += o.GCSkipped
	c.Retries += o.Retries
	c.ReadRetries += o.ReadRetries
	c.EpochRetires += o.EpochRetires
	c.EpochReclaims += o.EpochReclaims
	c.BatchApplies += o.BatchApplies
	c.BatchedOps += o.BatchedOps
	c.BatchRelogs += o.BatchRelogs
	return c
}

// New creates an empty CCL-BTree on the pool, homed on
// Options.HomeSocket and placed in its PM arena (whole device by
// default).
func New(pool *pmem.Pool, opts Options) (*Tree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.HomeSocket >= pool.Sockets() {
		return nil, fmt.Errorf("core: home socket %d out of range (pool has %d)", opts.HomeSocket, pool.Sockets())
	}
	home := opts.HomeSocket
	alloc, err := pmalloc.NewArena(pool, opts.ArenaIndex, opts.ArenaCount)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tr := &Tree{
		pool:   pool,
		alloc:  alloc,
		clock:  ordo.New(pool.Sockets(), opts.OrdoBoundary),
		opts:   opts,
		gcDone: make(chan struct{}),
	}
	close(tr.gcDone)
	tr.reclaim.init()
	tr.inner = newInnerTree(tr.compare)
	tr.walman = wal.NewManager(tr.alloc, opts.ChunkBytes)
	tr.initObs()
	tr.inner.prof = tr.prof

	t := pool.NewThread(home)
	prev := t.SetTag(pmem.TagMeta)
	defer t.SetTag(prev)
	prevScope := t.PushScope(pmem.ScopeMeta)
	defer t.PopScope(prevScope)

	// Persistent chunk directory. Its dedicated thread keeps ScopeMeta
	// for life: register/unregister fire from whatever operation
	// acquires or releases a chunk, and directory writes are metadata
	// regardless of the trigger.
	dirAddr, err := tr.alloc.Alloc(home, opts.DirSlots*pmem.WordSize)
	if err != nil {
		return nil, fmt.Errorf("core: allocate chunk directory: %w", err)
	}
	dirThread := pool.NewThread(home)
	//persistlint:ignore PL012 dirThread serves the chunk directory for the tree's lifetime; all its work is ScopeMeta
	dirThread.PushScope(pmem.ScopeMeta)
	tr.dir = newChunkDir(dirThread, dirAddr, opts.DirSlots)
	tr.dir.prof = tr.prof
	tr.dir.clearAll()
	tr.walman.OnAcquire = tr.dir.register
	tr.walman.OnRelease = tr.dir.unregister

	// Head leaf: an empty 256 B leaf anchoring the linked list.
	headLeaf, err := tr.newLeaf(t, home)
	if err != nil {
		return nil, err
	}
	var img leafImage
	tr.writeWholeLeaf(t, headLeaf, &img)
	tr.head = newBufferNode(headLeaf, 0, opts.Nbatch)
	tr.inner.put(t, 0, tr.head)

	// Superblock.
	sb := tr.sbAddr()
	for i, w := range []uint64{sbMagic, uint64(headLeaf), uint64(dirAddr), uint64(opts.DirSlots), uint64(opts.ChunkBytes), sbFlags(opts)} {
		t.Store(sb.Add(int64(8*i)), w)
	}
	t.Persist(sb, sbWords*pmem.WordSize)
	return tr, nil
}

// sbAddr is the tree's superblock location: arena base + sbOffset on
// the home socket.
func (tr *Tree) sbAddr() pmem.Addr {
	return pmem.MakeAddr(tr.opts.HomeSocket, tr.alloc.BaseOffset()+sbOffset)
}

// Pool returns the PM pool the tree lives on.
func (tr *Tree) Pool() *pmem.Pool { return tr.pool }

// Clock exposes the tree's ORDO clock. Crash harnesses use it to stamp
// operation invocation/return times in the same timestamp domain the
// tree's WAL entries and recovery comparisons use, so "definitely
// before/after" questions (ordo.Clock.After) are answerable against the
// recovered state.
func (tr *Tree) Clock() *ordo.Clock { return tr.clock }

// crashAbort re-raises the pool's sticky power failure inside retry
// loops. A goroutine that dies mid-operation (pmem.FailWhen fired at
// one of its flushes) can leave a buffer node's version lock held
// forever; peers spinning on tryLock never flush, so they would never
// observe the failure and would spin until the test times out. On the
// modeled machine the power loss stops those CPUs too — this is that
// stop. One atomic load, and only on the contended retry path.
func (tr *Tree) crashAbort() {
	if tr.pool.FaultFired() {
		panic(pmem.PowerFailure{})
	}
}

// Allocator exposes the PM allocator for consumption accounting.
func (tr *Tree) Allocator() *pmalloc.Allocator { return tr.alloc }

// Options returns the (defaulted) options the tree runs with.
func (tr *Tree) Options() Options { return tr.opts }

// LeafCount returns the number of PM leaf nodes.
func (tr *Tree) LeafCount() int64 { return tr.leafCount.Load() }

// newLeaf allocates a zeroed 256 B leaf on socket.
func (tr *Tree) newLeaf(t *pmem.Thread, socket int) (pmem.Addr, error) {
	a, err := tr.alloc.Alloc(socket, LeafBytes)
	if err != nil {
		return pmem.NilAddr, fmt.Errorf("core: allocate leaf: %w", err)
	}
	tr.leafCount.Add(1)
	return a, nil
}

// writeWholeLeaf writes and persists a complete leaf image (used for
// fresh leaves: the head, split targets, recovery rebuilds).
func (tr *Tree) writeWholeLeaf(t *pmem.Thread, leaf pmem.Addr, img *leafImage) {
	prev := t.SetTag(pmem.TagLeaf)
	t.WriteRange(leaf, img.words[:])
	t.Persist(leaf, LeafBytes)
	t.SetTag(prev)
}

// compare orders two key words. In fixed mode it is plain integer
// order; in VarKV mode both words are indirection pointers and the
// comparison chases them to the actual key bytes (§4.4), with 0 as the
// -infinity sentinel used by the head node. The thread is charged for
// any PM reads the chase performs.
func (tr *Tree) compare(t *pmem.Thread, a, b uint64) int {
	if !tr.opts.VarKV {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return tr.compareVar(t, a, b)
}

// keyFingerprint returns the 1 B fingerprint of a key word. VarKV mode
// hashes the key bytes so equal logical keys collide regardless of
// which blob holds them.
func (tr *Tree) keyFingerprint(t *pmem.Thread, keyWord uint64) byte {
	if !tr.opts.VarKV {
		return fpHash(mix64(keyWord))
	}
	return fpHash(hashKeyBytes(tr.keyBytes(t, keyWord)))
}

// memoryModelBufferNodeBytes is the paper-layout size of one buffer
// node: the compressed 8 B header, the 8 B leaf pointer, and Nbatch
// 16 B slots.
func (tr *Tree) memoryModelBufferNodeBytes() int64 {
	return int64(8 + 8 + 16*tr.opts.Nbatch)
}

// MemoryUsage reports modeled DRAM bytes (buffer nodes at their §3.2
// layout size plus inner-node routing entries) and PM bytes in use.
func (tr *Tree) MemoryUsage() (dramBytes, pmBytes int64) {
	nodes := tr.leafCount.Load() // one buffer node per leaf
	dram := nodes * tr.memoryModelBufferNodeBytes()
	// Inner routing entry: key + pointer, plus B+-tree node overhead
	// amortized (~1.2×).
	dram += int64(tr.inner.entries()) * 20
	return dram, tr.alloc.TotalInUseBytes()
}
