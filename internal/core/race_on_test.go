//go:build race

package core

// raceTestEnabled reports whether the race detector is compiled in;
// allocation-count assertions skip under it (the detector's shadow
// bookkeeping allocates).
const raceTestEnabled = true
