package core

import (
	"testing"

	"cclbtree/internal/obs"
)

// segSums folds a Profile's segment stats into per-op SumNS totals and a
// per-(op,segment) count map for assertions.
func segSums(p obs.Profile) (sums map[string]uint64, cells map[string]uint64) {
	sums = map[string]uint64{}
	cells = map[string]uint64{}
	for _, s := range p.Segments {
		sums[s.Op] += s.SumNS
		cells[s.Op+"/"+s.Segment] = s.Count
	}
	return sums, cells
}

// histSum reads one histogram's Sum out of a metrics snapshot (0 when
// the histogram recorded nothing).
func histSum(s *obs.Snapshot, name string) uint64 {
	if h, ok := s.Hists[name]; ok {
		return h.Sum
	}
	return 0
}

func TestProfileSegmentsPartitionOpLatency(t *testing.T) {
	tr, w := newTestTree(t, Options{Metrics: true}, nil)
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		if err := w.Upsert(i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := w.Lookup(i); !ok || v != i*7 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	var batch []BatchOp
	for i := uint64(n + 1); i <= n+256; i++ {
		batch = append(batch, BatchOp{Key: i, Value: i})
	}
	if err := w.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}

	p := tr.Profile()
	sums, cells := segSums(p)

	// The core of the contract: per op class, recorded segments sum to
	// the recorded op latency — the attribution partitions, it does not
	// sample or approximate.
	lat := tr.Metrics().Latency
	if sums["batch"] == 0 {
		t.Fatal("batch ops recorded no segment time")
	}
	// ApplyBatch latency lands in insert_ns (a group commit is a bulk
	// insert), so the write-side identity spans both op classes.
	if got, want := sums["put"]+sums["batch"], histSum(lat, "insert_ns"); got != want {
		t.Fatalf("put+batch segments sum to %d ns, insert_ns recorded %d", got, want)
	}
	if got, want := sums["get"], histSum(lat, "lookup_ns"); got != want {
		t.Fatalf("get segments sum to %d ns, lookup_ns recorded %d", got, want)
	}

	// A single-threaded insert+lookup run must populate the obvious
	// cells: traversal and the locked buffer section on both paths, WAL
	// and fence work on the write path.
	// (No put/buffer expectation: under the cost model a plain upsert's
	// locked section is exactly its WAL/trigger/flush/fence work — slot
	// stores are free DRAM — so the buffer residual is zero there.)
	for _, cell := range []string{
		"put/traverse", "put/wal", "put/fence",
		"get/traverse",
		"batch/wal", "batch/buffer",
	} {
		if cells[cell] == 0 {
			t.Errorf("segment cell %s never observed (cells: %v)", cell, cells)
		}
	}

	// Lock classes touched on these paths appear with plausible counts;
	// untouched classes are omitted from the snapshot entirely.
	locks := map[string]obs.LockStat{}
	for _, ls := range p.Locks {
		locks[ls.Class] = ls
	}
	// inner.mu is now a writer-only lock (reads traverse the RCU root
	// pointer without it), so acquisitions come only from structural
	// updates — splits registering new routing entries.
	if got := locks["inner.mu"].Acquisitions; got == 0 {
		t.Fatal("inner.mu never acquired despite splits registering routes")
	}
	if got := locks["inner.mu"].Acquisitions; got > n {
		t.Fatalf("inner.mu acquisitions = %d for %d ops — reads are taking the writer lock", got, n)
	}
	if locks["chunkdir.mu"].Acquisitions == 0 {
		t.Fatal("chunkdir.mu never acquired despite WAL chunk registration")
	}

	// The heatmap saw the working set: hot leaves exist, scores carry
	// both reads and writes, addresses are real leaf addresses.
	if len(p.HotLeaves) == 0 {
		t.Fatal("no hot leaves after 2000 writes + 2000 reads")
	}
	top := p.HotLeaves[0]
	if top.Score == 0 || top.Leaf == 0 {
		t.Fatalf("degenerate hot leaf %+v", top)
	}
	var reads, writes uint64
	for _, e := range p.HotLeaves {
		reads += e.Reads
		writes += e.Writes
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("hot-leaf summary missing a direction: reads=%d writes=%d", reads, writes)
	}
}

func TestProfileZeroValuedWhenMetricsOff(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 100; i++ {
		_ = w.Upsert(i, i)
		_, _ = w.Lookup(i)
	}
	p := tr.Profile()
	if len(p.Locks) != 0 || len(p.Segments) != 0 || len(p.HotLeaves) != 0 {
		t.Fatalf("metrics-off Profile not empty: %+v", p)
	}
	if p.HeatEpoch != 0 || p.HeatDropped != 0 {
		t.Fatalf("metrics-off heat counters nonzero: %+v", p)
	}
}

func TestProfileGCLockClasses(t *testing.T) {
	tr, w := newTestTree(t, Options{Metrics: true, GC: GCNaive}, nil)
	for i := uint64(1); i <= 500; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.ForceGC()
	locks := map[string]obs.LockStat{}
	for _, ls := range tr.Profile().Locks {
		locks[ls.Class] = ls
	}
	if locks["gcMu"].Acquisitions == 0 {
		t.Fatal("gcMu never profiled across a forced GC round")
	}
	if locks["stw"].Acquisitions == 0 {
		t.Fatal("stw never profiled across a naive GC round")
	}
	if locks["workersMu"].Acquisitions == 0 {
		t.Fatal("workersMu never profiled (NewWorker + reclaimLogs)")
	}
}

// TestProfiledLookupZeroAlloc pins the metrics-ON read fast path at zero
// allocations: span attribution, heat touches and lock brackets must all
// stay on the stack.
func TestProfiledLookupZeroAlloc(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	_, w := newTestTree(t, Options{Metrics: true}, nil)
	for i := uint64(1); i <= 512; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	var k uint64 = 1
	avg := testing.AllocsPerRun(2000, func() {
		w.Lookup(k)
		k = k%512 + 1
	})
	if avg != 0 {
		t.Fatalf("metrics-on Lookup allocates %.2f objects/op, want 0", avg)
	}
}
