package core

import (
	"testing"

	"cclbtree/internal/pmem"
)

// TestRecoveryClockResumesAboveImage pins the multi-crash lost-update
// bug the torture harness first exposed: Open used to restart the ORDO
// clock at zero, so post-recovery appends carried ticks *smaller* than
// the stale-but-intact records left on recycled WAL chunks. At the next
// crash, max-timestamp dedup picked the residue and resurrected an
// overwritten value.
//
// The scenario needs a same-key residue record beyond the second run's
// append watermark: run 1 appends four records ending with k1=A; run 2
// overwrites only the first chunk slots, so k1=A survives at slot 3
// with its old (high) tick while the fresh k1=B carries a resumed tick.
// With the clock floor, B's tick outranks A's and recovery keeps B.
func TestRecoveryClockResumesAboveImage(t *testing.T) {
	modes := map[string]pmem.Mode{"ADR": pmem.ADR, "eADR": pmem.EADR}
	for name, mode := range modes {
		t.Run(name, func(t *testing.T) {
			pool := pmem.NewPool(pmem.Config{
				Sockets: 1, DIMMsPerSocket: 1, DeviceBytes: 2 << 20,
				Mode: mode, StrictPersist: true,
			})
			tr, err := New(pool, fuzzOpts(false))
			if err != nil {
				t.Fatal(err)
			}
			w := tr.NewWorker(0)
			const k1 = 7
			for _, kv := range [][2]uint64{{100, 1}, {101, 1}, {102, 1}, {k1, 0xA}} {
				if err := w.Upsert(kv[0], kv[1]); err != nil {
					t.Fatal(err)
				}
			}
			tr.Freeze()
			pool.Crash()

			tr2, _, err := Open(pool, Options{}, 1)
			if err != nil {
				t.Fatal(err)
			}
			w2 := tr2.NewWorker(0)
			if err := w2.Upsert(200, 1); err != nil {
				t.Fatal(err)
			}
			if err := w2.Upsert(k1, 0xB); err != nil {
				t.Fatal(err)
			}
			tr2.Freeze()
			pool.Crash()

			tr3, _, err := Open(pool, Options{}, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := tr3.NewWorker(0).Lookup(k1)
			if !ok || got != 0xB {
				t.Fatalf("after crash-recover-overwrite-crash, key %d = %#x (ok=%v); "+
					"the completed overwrite 0xB was lost to stale WAL residue", k1, got, ok)
			}
			tr3.Freeze()
		})
	}
}
