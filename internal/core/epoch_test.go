package core

import (
	"sync"
	"testing"

	"cclbtree/internal/pmem"
)

// TestEpochRetireImmediateWhenUnpinned: with no reader inside a
// critical section, retiring a leaf frees it on the spot — the
// single-threaded behavior is indistinguishable from a direct Free, so
// memory accounting never changes for sequential workloads.
func TestEpochRetireImmediateWhenUnpinned(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	a, err := tr.newLeaf(w.t, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.retireLeaf(a)
	if n := tr.epochLimboLen(); n != 0 {
		t.Fatalf("limbo holds %d entries with no pinned readers, want 0", n)
	}
	c := tr.Counters()
	if c.EpochRetires != 1 || c.EpochReclaims != 1 {
		t.Fatalf("retires=%d reclaims=%d, want 1/1", c.EpochRetires, c.EpochReclaims)
	}
}

// TestEpochReaderParkedAcrossGCFlip: a reader pinned before a retire
// holds that leaf in limbo through any number of epoch advances —
// including a full GC round — and the leaf frees only after the reader
// exits. This is the core EBR safety property: reclamation can be
// delayed, never unsafe.
func TestEpochReaderParkedAcrossGCFlip(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 200; i++ {
		_ = w.Upsert(i, i)
	}
	reader := tr.NewWorker(0)
	tr.epochEnter(reader) // reader parks inside a read-side section
	limbo0 := tr.epochLimboLen()
	reclaims0 := tr.Counters().EpochReclaims

	a, err := tr.newLeaf(w.t, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.retireLeaf(a)
	if n := tr.epochLimboLen(); n != limbo0+1 {
		t.Fatalf("limbo %d after retire under pinned reader, want %d", n, limbo0+1)
	}

	// A GC round flips the reclamation epoch; the parked reader must
	// still hold the entry.
	tr.ForceGC()
	tr.advanceEpoch()
	if n := tr.epochLimboLen(); n != limbo0+1 {
		t.Fatalf("limbo %d after GC flip with reader still pinned, want %d", n, limbo0+1)
	}
	if got := tr.Counters().EpochReclaims; got != reclaims0 {
		t.Fatalf("reclaimed %d leaves under a pinned reader", got-reclaims0)
	}

	tr.epochExit(reader)
	tr.advanceEpoch()
	if n := tr.epochLimboLen(); n != 0 {
		t.Fatalf("limbo %d after reader exit + advance, want 0", n)
	}
	if got := tr.Counters().EpochReclaims; got != reclaims0+uint64(limbo0)+1 {
		t.Fatalf("EpochReclaims advanced %d, want %d", got-reclaims0, limbo0+1)
	}
}

// TestEpochMergeRetiresThroughLimbo: real merges route their dead
// leaves through the epoch manager (not a direct Free), and with no
// concurrent readers everything drains — no leak, retires == reclaims.
func TestEpochMergeRetiresThroughLimbo(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	for i := uint64(1); i <= n; i++ {
		if i%10 != 0 {
			_ = w.Delete(i)
		}
	}
	c := tr.Counters()
	if c.Merges == 0 {
		t.Fatal("no merges after mass deletion")
	}
	if c.EpochRetires != c.Merges {
		t.Fatalf("EpochRetires = %d, Merges = %d — merge bypassed the epoch manager", c.EpochRetires, c.Merges)
	}
	if c.EpochReclaims != c.EpochRetires {
		t.Fatalf("EpochReclaims = %d of %d retires with no readers", c.EpochReclaims, c.EpochRetires)
	}
	if l := tr.epochLimboLen(); l != 0 {
		t.Fatalf("%d leaves stuck in limbo", l)
	}
}

// TestEpochChainRepublishedMidScan: a scan positioned on a node that a
// concurrent merge then kills must observe the dead flag, re-route
// from its progress point, and still return every surviving key — and
// the dead node's leaf stays readable (in limbo) while the scan is
// pinned.
func TestEpochChainRepublishedMidScan(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	const n = 600
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	// Find the second node's range start so deletions target one node.
	first := tr.head
	second := first.next.Load()
	if second == nil {
		t.Fatal("tree did not split")
	}
	lo := second.lowKey
	hi := n + 1
	if nx := second.next.Load(); nx != nil {
		hi = int(nx.lowKey)
	}

	// Pin a reader as if mid-scan on `second`, then merge it away.
	reader := tr.NewWorker(0)
	tr.epochEnter(reader)
	for i := lo; i < uint64(hi); i++ {
		_ = w.Upsert(i, i) // refresh so deletes go through cleanly
	}
	for i := lo; i < uint64(hi); i++ {
		_ = w.Delete(i)
	}
	if !second.dead() {
		tr.epochExit(reader)
		t.Skip("merge heuristic left the node alive (occupancy boundary)")
	}
	if tr.epochLimboLen() == 0 {
		t.Fatal("dead node's leaf not in limbo under a pinned reader")
	}
	// The parked reader can still read the retired leaf's PM words —
	// the address must not have been recycled.
	var img leafImage
	readLeaf(reader.t, second.leaf, &img)

	// scanNode on the dead node reports scanDead so Scan re-routes.
	if _, _, st := reader.scanNode(second); st != scanDead {
		t.Fatalf("scanNode on dead node = %d, want scanDead", st)
	}
	tr.epochExit(reader)

	// A fresh scan over the whole space sees exactly the survivors.
	out := make([]KV, n)
	got := w.Scan(1, n, out)
	want := 0
	for i := 1; i <= n; i++ {
		if i < int(lo) || i >= hi {
			want++
		}
	}
	if got != want {
		t.Fatalf("scan found %d keys, want %d", got, want)
	}
	tr.advanceEpoch()
	if l := tr.epochLimboLen(); l != 0 {
		t.Fatalf("%d leaves stuck in limbo after reader exit", l)
	}
}

// TestOptimisticReadNeverFlushes: the lock-free read path is PM-read-
// only — no flush, no fence. (A reader that wrote PM would break the
// crash model: reads must be issuable right up to the failure instant
// with no durability obligations.)
func TestOptimisticReadNeverFlushes(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 500; i++ {
		_ = w.Upsert(i, i)
	}
	r := w.tree.NewWorker(0)
	fl, fe := r.t.FlushNS(), r.t.FenceNS()
	for i := uint64(1); i <= 500; i++ {
		r.Lookup(i)
	}
	out := make([]KV, 600)
	r.Scan(1, 600, out)
	if r.t.FlushNS() != fl || r.t.FenceNS() != fe {
		t.Fatal("read path issued flush/fence work")
	}
}

// TestCrashDuringOptimisticRead: a writer killed by a power failure
// while holding a node's version lock leaves the seqlock odd forever.
// Readers spinning on it must surface the same PowerFailure instead of
// hanging (Tree.crashAbort), in both ADR and eADR, and recovery after
// the crash must be clean — the dead reader left no obligations.
func TestCrashDuringOptimisticRead(t *testing.T) {
	for name, mode := range map[string]pmem.Mode{"ADR": pmem.ADR, "eADR": pmem.EADR} {
		mode := mode
		t.Run(name, func(t *testing.T) {
			tr, w := newTestTree(t, Options{GC: GCOff}, func(c *pmem.Config) { c.Mode = mode })
			const n = 400
			for i := uint64(1); i <= n; i++ {
				if err := w.Upsert(i, i); err != nil {
					t.Fatal(err)
				}
			}
			pool := tr.Pool()

			// Kill the writer at its next WAL flush — inside
			// upsertLocked, version lock held.
			pool.FailWhen(func(fp pmem.FaultPoint) bool { return true })
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(pmem.PowerFailure); !ok {
							panic(r)
						}
					}
				}()
				_ = w.Upsert(7, 7777)
				t.Error("upsert survived an armed always-fire fault")
			}()

			// Both read shapes must abort, not spin.
			reader := tr.NewWorker(0)
			for name, read := range map[string]func(){
				"lookup": func() { reader.Lookup(7) },
				"scan":   func() { out := make([]KV, 8); reader.Scan(1, 8, out) },
			} {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(pmem.PowerFailure); !ok {
								panic(r)
							}
							return
						}
						t.Errorf("%s on a dead writer's node returned instead of aborting", name)
					}()
					read()
				}()
			}

			// Recovery proceeds as after any crash; the reader added no
			// durability obligations.
			tr.Freeze()
			pool.FailWhen(nil)
			pool.Crash()
			tr2, _, err := Open(pool, Options{}, 2)
			if err != nil {
				t.Fatal(err)
			}
			w2 := tr2.NewWorker(0)
			for i := uint64(1); i <= n; i++ {
				v, ok := w2.Lookup(i)
				// The op in flight at the crash (key 7 → 7777) may
				// legally recover either way: eADR keeps its WAL record
				// durable at store time, ADR loses the unflushed append.
				if i == 7 {
					if !ok || (v != 7 && v != 7777) {
						t.Fatalf("in-flight key 7 recovered as %d,%v", v, ok)
					}
					continue
				}
				if !ok || v != i {
					t.Fatalf("key %d after crash-during-read: %d,%v", i, v, ok)
				}
			}
		})
	}
}

// TestConcurrentReadersUnderReclamation hammers the exact race EBR
// exists for: scanners walking the chain while writers merge nodes
// away and reinsert, forcing continuous retire/reclaim cycles.
func TestConcurrentReadersUnderReclamation(t *testing.T) {
	tr, w0 := newTestTree(t, Options{GC: GCOff}, nil)
	const space = 1500
	for i := uint64(1); i <= space; i++ {
		_ = w0.Upsert(i, i)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Churn one third of the space: delete (forcing
				// merges/retires), then reinsert (forcing splits).
				lo := uint64(g*space/3 + 1)
				for k := lo; k < lo+space/3; k++ {
					_ = w.Delete(k)
				}
				for k := lo; k < lo+space/3; k++ {
					_ = w.Upsert(k, k)
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			out := make([]KV, 64)
			for i := 0; i < 3000; i++ {
				k := uint64(i%space + 1)
				if v, ok := w.Lookup(k); ok && v != k {
					t.Errorf("key %d read foreign value %d", k, v)
					return
				}
				if i%8 == 0 {
					n := w.Scan(k, 64, out)
					for j := 1; j < n; j++ {
						if out[j].Key <= out[j-1].Key {
							t.Errorf("scan disorder under reclamation churn")
							return
						}
					}
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if tr.Counters().EpochRetires == 0 {
		t.Fatal("churn produced no retires — test exercised nothing")
	}
	tr.Freeze() // drains limbo
	if l := tr.epochLimboLen(); l != 0 {
		t.Fatalf("%d leaves stuck in limbo after freeze", l)
	}
}
