package core

import (
	"math/rand"
	"testing"

	"cclbtree/internal/pmem"
)

// batchWorkload yields the deterministic batch sequence for the batched
// crash sweep: 150 batches of up to 24 ops over a 300-key space. Keys
// are unique within a batch so each in-flight op has exactly one
// pre-state and one post-state to check.
func batchWorkload(fn func(ops []BatchOp)) {
	rng := rand.New(rand.NewSource(424242))
	const space = 300
	for b := 0; b < 150; b++ {
		seen := map[uint64]bool{}
		var ops []BatchOp
		for len(ops) < 24 {
			k := uint64(rng.Intn(space) + 1)
			if seen[k] {
				continue
			}
			seen[k] = true
			if rng.Intn(6) == 0 {
				ops = append(ops, BatchOp{Key: k, Delete: true})
			} else {
				ops = append(ops, BatchOp{Key: k, Value: uint64(rng.Intn(1<<30) + 1)})
			}
		}
		fn(ops)
	}
}

func countBatchFlushes(t *testing.T, mode pmem.Mode, gc GCPolicy) int {
	t.Helper()
	pool := newTestPool(func(c *pmem.Config) { c.Mode = mode })
	tr, err := New(pool, Options{ChunkBytes: 8 << 10, GC: gc})
	if err != nil {
		t.Fatal(err)
	}
	base := pool.FlushCalls()
	w := tr.NewWorker(0)
	batchWorkload(func(ops []BatchOp) {
		if err := w.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	})
	tr.Freeze()
	return int(pool.FlushCalls() - base)
}

// TestCrashAtEveryFlushBoundaryBatched is the ApplyBatch variant of
// TestCrashAtEveryFlushBoundary: power fails at sampled flush
// boundaries inside group commits, coalesced trigger flushes, splits
// and GC. After recovery, every op of every COMPLETED batch must be
// durable with its latest value, and each op of the in-flight batch
// must independently read as either its pre-batch or its post-op state
// — the batch is atomic per op, not as a unit.
func TestCrashAtEveryFlushBoundaryBatched(t *testing.T) {
	cases := []struct {
		name string
		mode pmem.Mode
		gc   GCPolicy
	}{
		{"adr-gcoff", pmem.ADR, GCOff},
		{"eadr-gcoff", pmem.EADR, GCOff},
		{"adr-gc", pmem.ADR, GCLocalityAware},
		{"eadr-gc", pmem.EADR, GCLocalityAware},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			total := countBatchFlushes(t, c.mode, c.gc)
			if total < 100 {
				t.Fatalf("workload too small: %d flushes", total)
			}
			points := 150
			if testing.Short() {
				points = 40
			}
			step := 1
			if total > points {
				step = total / points
			}
			for point := int64(1); point <= int64(total); point += int64(step) {
				runBatchCrashPoint(t, c.mode, c.gc, point)
			}
		})
	}
}

func runBatchCrashPoint(t *testing.T, mode pmem.Mode, gc GCPolicy, point int64) {
	t.Helper()
	pool := newTestPool(func(c *pmem.Config) { c.Mode = mode })
	opts := Options{ChunkBytes: 8 << 10, GC: gc}
	tr, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)

	ref := map[uint64]uint64{} // state after the last COMPLETED batch
	var inFlight []BatchOp     // the batch in flight at the crash
	completed := 0

	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.PowerFailure); !ok {
					panic(r)
				}
				c = true
			}
		}()
		target := pool.FlushCalls() + point
		pool.FailWhen(func(fp pmem.FaultPoint) bool { return fp.Seq == target })
		batchWorkload(func(ops []BatchOp) {
			inFlight = ops
			if err := w.ApplyBatch(ops); err != nil {
				t.Error(err)
				panic(pmem.PowerFailure{})
			}
			for _, op := range ops {
				if op.Delete {
					delete(ref, op.Key)
				} else {
					ref[op.Key] = op.Value
				}
			}
			inFlight = nil
			completed++
		})
		return false
	}()
	tr.Freeze()
	pool.FailWhen(nil)
	if !crashed {
		return
	}

	pool.Crash()
	tr2, _, err := Open(pool, opts, 1)
	if err != nil {
		t.Fatalf("point %d: recovery failed after %d batches: %v", point, completed, err)
	}
	defer tr2.Freeze()
	w2 := tr2.NewWorker(0)

	inBatch := map[uint64]BatchOp{}
	for _, op := range inFlight {
		inBatch[op.Key] = op
	}
	for k, v := range ref {
		if _, ok := inBatch[k]; ok {
			continue // checked below
		}
		got, ok := w2.Lookup(k)
		if !ok || got != v {
			t.Fatalf("point %d: completed key %d lost (%d,%v want %d) after %d batches",
				point, k, got, ok, v, completed)
		}
	}
	// Per-op atomicity of the in-flight batch: each key independently
	// pre-state or post-state.
	for k, op := range inBatch {
		preVal, preOK := ref[k]
		got, ok := w2.Lookup(k)
		oldState := ok == preOK && (!ok || got == preVal)
		var newState bool
		if op.Delete {
			newState = !ok
		} else {
			newState = ok && got == op.Value
		}
		if !oldState && !newState {
			t.Fatalf("point %d: in-flight key %d inconsistent: got (%d,%v), old=(%d,%v), new=(del=%v val=%d)",
				point, k, got, ok, preVal, preOK, op.Delete, op.Value)
		}
	}
	// Structure is sound: the scan must be sorted.
	out := make([]KV, 400)
	n := w2.Scan(1, 400, out)
	var prev uint64
	for i := 0; i < n; i++ {
		if out[i].Key <= prev {
			t.Fatalf("point %d: scan disorder after recovery", point)
		}
		prev = out[i].Key
	}
}
