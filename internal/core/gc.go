package core

import (
	"runtime"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// maybeTriggerGC starts a background reclamation round when the WAL
// footprint exceeds THlog × leaf bytes (§3.4).
func (tr *Tree) maybeTriggerGC() {
	if tr.opts.GC == GCOff || tr.gcRunning.Load() || tr.closed.Load() {
		return
	}
	logBytes := tr.logBytes.Load()
	if logBytes < 2*int64(tr.opts.ChunkBytes) {
		return // don't thrash tiny logs
	}
	leafBytes := tr.leafCount.Load() * LeafBytes
	if float64(logBytes) <= tr.opts.THlog*float64(leafBytes) {
		return
	}
	tr.startGC()
}

// startGC launches one asynchronous GC round if none is running.
func (tr *Tree) startGC() {
	if tr.closed.Load() || !tr.gcRunning.CompareAndSwap(false, true) {
		return
	}
	done := make(chan struct{})
	tok := tr.prof.Pre(obs.LockGC)
	tr.gcMu.Lock()
	tok = tr.prof.Acquired(obs.LockGC, tok)
	tr.gcDone = done
	tr.gcMu.Unlock()
	tr.prof.Released(obs.LockGC, tok)
	go func() {
		defer close(done)
		defer tr.gcRunning.Store(false)
		// An armed fault (pmem.FailWhen / FailAfterFlushes) can fire on
		// the GC thread's flushes. Swallow exactly that panic: the
		// simulated machine lost power, the round simply stops where it
		// was, and the crash harness proceeds to Pool.Crash + recovery.
		// Runs before the other defers (LIFO), so done still closes and
		// gcRunning still clears — Freeze() keeps working mid-crash.
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(pmem.PowerFailure); !ok {
					panic(r)
				}
			}
		}()
		if tr.opts.GC == GCNaive {
			tr.runNaiveGC()
		} else {
			tr.runLocalityGC()
		}
	}()
}

// StartGCAsync launches one GC round in the background (Fig 14's
// explicit trigger).
func (tr *Tree) StartGCAsync() { tr.startGC() }

// ForceGC runs (or joins) a GC round and waits for it to finish.
func (tr *Tree) ForceGC() {
	if tr.opts.GC == GCOff || tr.closed.Load() {
		return
	}
	tr.startGC()
	tr.WaitGC()
}

// Freeze stops the tree's background activity, modeling the instant a
// power failure halts every thread. An in-flight GC round aborts
// between nodes without reclaiming, leaving a legal mid-GC persistent
// state. Call before Pool.Crash (or before abandoning the Tree); the
// Tree must not be used afterwards.
func (tr *Tree) Freeze() {
	tr.closed.Store(true)
	tr.WaitGC()
	// Every reader epoch ends with its goroutine; retired leaves can be
	// returned to the allocator so post-freeze accounting (and the next
	// Tree on this pool) sees no leak.
	tr.drainEpochs()
}

// WaitGC blocks until the in-flight GC round, if any, completes.
func (tr *Tree) WaitGC() {
	tok := tr.prof.Pre(obs.LockGC)
	tr.gcMu.Lock()
	tok = tr.prof.Acquired(obs.LockGC, tok)
	done := tr.gcDone
	tr.gcMu.Unlock()
	tr.prof.Released(obs.LockGC, tok)
	<-done
}

// gcWorker returns the dedicated background worker (lazily created; it
// registers like any worker so its I-logs are reclaimed in later
// rounds).
func (tr *Tree) gcWorker() *Worker {
	tr.gcOnce.Do(func() { tr.gcW = tr.NewWorker(tr.opts.HomeSocket) })
	return tr.gcW
}

// runLocalityGC is the §3.4 locality-aware collection:
//
//  1. Flip the global epoch. Foreground inserts re-read it under their
//     buffer-node lock, so every node is logged consistently: entries
//     appended after the GC visits a node carry the new epoch and live
//     in I-logs.
//  2. Scan the buffer-node chain; for each still-unflushed slot whose
//     epoch bit is old, append a copy to the GC thread's I-log — a
//     sequential write, never a random leaf flush — and restamp the
//     slot with the new epoch (so the next round knows its entry
//     already lives in the new generation's logs).
//  3. Detach and recycle every thread's old-generation log chunks.
//
// Foreground threads never stop: buffering, flushing and logging all
// continue, which is exactly why Fig 14 shows no throughput dip.
func (tr *Tree) runLocalityGC() {
	tr.ctr.gcRuns.Add(1)
	w := tr.gcWorker()
	// The round's PM traffic is gc-caused; I-log appends still land in
	// ScopeWAL (wal.Append overrides) per the attribution contract.
	defer w.t.PopScope(w.t.PushScope(pmem.ScopeGC))
	tr.tracer.Emit(obs.EvGCRound, w.id, w.t.Now(), uint64(tr.ctr.gcRuns.Load()), 0)
	oldE := tr.epoch.Load()
	newE := 1 - oldE
	tr.epoch.Store(newE)
	// The generation counter moves strictly AFTER the epoch word: a
	// batch writer that reads epochGen and then epoch (in that order)
	// and sees the new generation is guaranteed to also see the new
	// epoch, so its group commit lands in I-logs this round never
	// reclaims. See Tree.epochGen and Worker.ApplyBatch.
	tr.epochGen.Add(1)

	for n := tr.head; n != nil; {
		if tr.closed.Load() {
			// Frozen mid-round (simulated power failure): abort
			// without reclaiming. The resulting persistent state —
			// epoch flipped, a prefix of entries copied to I-logs,
			// every chunk still registered — is exactly a legal
			// mid-GC crash state; recovery's max-timestamp dedup
			// handles the duplicated entries.
			return
		}
		v, ok := n.tryLock()
		if !ok {
			tr.crashAbort()
			runtime.Gosched()
			continue
		}
		if n.dead() {
			nx := n.next.Load()
			n.unlock(v)
			n = nx
			continue
		}
		pos, eb, _ := unpackHdr(n.hdr.Load())
		for i := 0; i < pos; i++ {
			if uint32(eb>>uint(i)&1) == newE {
				tr.ctr.gcSkippedFresh.Add(1)
				continue
			}
			ts := tr.clock.Now(w.socket)
			if _, err := w.logs[newE].Append(w.t, wal.Entry{
				Key: n.slotKey(i), Value: n.slotVal(i), Timestamp: ts,
			}); err != nil {
				// Out of PM for the I-log: abort the round; the old
				// generation stays live and recovery remains correct.
				n.unlock(v)
				return
			}
			eb = eb&^(1<<uint(i)) | uint16(newE)<<uint(i)
			tr.logBytes.Add(wal.EntrySize)
			tr.ctr.gcCopied.Add(1)
		}
		n.hdr.Store(packHdr(pos, eb, false))
		nx := n.next.Load()
		n.unlock(v)
		n = nx
	}

	tr.reclaimLogs(oldE, false)
	// Piggyback epoch reclamation on the GC cadence: leaves retired by
	// merges since the last round become freeable once every reader
	// pinned at retire time has exited.
	tr.advanceEpoch()
}

// runNaiveGC is the strawman (Fig 9a / Fig 14): stop the world, flush
// every buffered KV to its leaf — random PM writes — then reclaim all
// logs.
func (tr *Tree) runNaiveGC() {
	tr.ctr.gcRuns.Add(1)
	w := tr.gcWorker()
	defer w.t.PopScope(w.t.PushScope(pmem.ScopeGC))
	tr.tracer.Emit(obs.EvGCRound, w.id, w.t.Now(), uint64(tr.ctr.gcRuns.Load()), 1)
	tok := tr.prof.Pre(obs.LockSTW)
	tr.stw.Lock()
	tok = tr.prof.Acquired(obs.LockSTW, tok)
	defer tr.prof.Released(obs.LockSTW, tok)
	defer tr.stw.Unlock()
	for n := tr.head; n != nil; n = n.next.Load() {
		if tr.closed.Load() {
			return
		}
		if n.dead() {
			continue
		}
		pos, eb, _ := unpackHdr(n.hdr.Load())
		if pos == 0 {
			continue
		}
		batch := make([]KV, 0, pos)
		for i := 0; i < pos; i++ {
			batch = append(batch, KV{n.slotKey(i), n.slotVal(i)})
		}
		if _, err := w.leafBatchInsert(n, batch); err != nil {
			return
		}
		n.hdr.Store(packHdr(0, eb, false))
	}
	tr.reclaimLogs(0, true)
	tr.reclaimLogs(1, true)
	// Blocked foreground threads resume at the GC thread's clock.
	if v := w.t.Now(); v > tr.stallVT.Load() {
		tr.stallVT.Store(v)
	}
	tr.stallGen.Add(1)
}

// reclaimLogs detaches generation e's chunks from every worker and
// returns them to the free list. locked indicates the caller holds the
// stop-the-world lock (naive GC); the locality-aware path relies on the
// epoch protocol instead.
func (tr *Tree) reclaimLogs(e uint32, locked bool) {
	_ = locked
	tok := tr.prof.Pre(obs.LockWorkers)
	tr.workersMu.Lock()
	tok = tr.prof.Acquired(obs.LockWorkers, tok)
	ws := append([]*Worker(nil), tr.workers...)
	tr.workersMu.Unlock()
	tr.prof.Released(obs.LockWorkers, tok)
	var chunks []pmem.Addr
	for _, wk := range ws {
		tr.logBytes.Add(-wk.logs[e].Bytes())
		chunks = append(chunks, wk.logs[e].Detach()...)
	}
	tr.walman.ReleaseChunks(chunks)
}

// LogFootprintBytes reports the PM bytes currently held by WAL chunks.
func (tr *Tree) LogFootprintBytes() int64 {
	return tr.walman.InUseChunks() * int64(tr.opts.ChunkBytes)
}

// PeakLogBytes reports the largest live appended log volume observed
// (Table 2's "peak log size"). Updated opportunistically on the append
// path.
func (tr *Tree) PeakLogBytes() int64 { return tr.peakLog.Load() }

func (tr *Tree) notePeakLog() {
	cur := tr.logBytes.Load()
	for {
		old := tr.peakLog.Load()
		if cur <= old || tr.peakLog.CompareAndSwap(old, cur) {
			return
		}
	}
}
