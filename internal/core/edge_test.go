package core

import (
	"testing"

	"cclbtree/internal/pmem"
)

func TestScanEdges(t *testing.T) {
	_, w := newTestTree(t, Options{GC: GCOff}, nil)
	out := make([]KV, 10)
	// Empty tree.
	if n := w.Scan(1, 10, out); n != 0 {
		t.Fatalf("empty scan = %d", n)
	}
	for i := uint64(10); i <= 100; i += 10 {
		_ = w.Upsert(i, i)
	}
	// Start beyond every key.
	if n := w.Scan(101, 10, out); n != 0 {
		t.Fatalf("past-end scan = %d", n)
	}
	// Start below every key.
	if n := w.Scan(1, 3, out); n != 3 || out[0].Key != 10 {
		t.Fatalf("below-start scan = %d %v", n, out[:n])
	}
	// max = 0 and undersized buffer.
	if n := w.Scan(1, 0, out); n != 0 {
		t.Fatalf("zero-max scan = %d", n)
	}
	small := make([]KV, 2)
	if n := w.Scan(1, 10, small); n != 2 {
		t.Fatalf("scan must clamp to buffer: %d", n)
	}
	// Exact-key start.
	if n := w.Scan(50, 2, out); n != 2 || out[0].Key != 50 || out[1].Key != 60 {
		t.Fatalf("exact-start scan: %v", out[:2])
	}
}

func TestUpsertIndirectValidation(t *testing.T) {
	_, w := newTestTree(t, Options{GC: GCOff}, nil)
	if err := w.UpsertIndirect(1, 12345); err == nil {
		t.Fatal("untagged word accepted as pointer")
	}
	if err := w.UpsertIndirect(0, 1<<63|256); err == nil {
		t.Fatal("key 0 accepted")
	}
}

func TestLookupAbsentRanges(t *testing.T) {
	_, w := newTestTree(t, Options{GC: GCOff}, nil)
	for i := uint64(100); i <= 200; i++ {
		_ = w.Upsert(i, i)
	}
	// Below, between (none here), and above the key range.
	for _, k := range []uint64{1, 99, 201, 1 << 50} {
		if _, ok := w.Lookup(k); ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestDeleteAbsentKeyIsNoop(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	_ = w.Upsert(5, 5)
	if err := w.Delete(999); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Lookup(5); !ok || v != 5 {
		t.Fatal("unrelated key affected")
	}
	// Deleting absent keys repeatedly must not grow leaves unboundedly
	// (tombstones for absent keys are dropped at flush).
	before := tr.LeafCount()
	for i := 0; i < 2000; i++ {
		_ = w.Delete(uint64(1_000_000 + i))
	}
	if grew := tr.LeafCount() - before; grew > 2 {
		t.Fatalf("absent-key deletes grew %d leaves", grew)
	}
}

func TestRepeatedUpsertSameKeyStable(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	for i := uint64(1); i <= 10000; i++ {
		_ = w.Upsert(777, i)
	}
	if v, ok := w.Lookup(777); !ok || v != 10000 {
		t.Fatalf("hot key = %d,%v", v, ok)
	}
	// One key must occupy one node: no splits from updates.
	if tr.Counters().Splits != 0 {
		t.Fatalf("updates caused %d splits", tr.Counters().Splits)
	}
	out := make([]KV, 4)
	if n := w.Scan(1, 4, out); n != 1 || out[0].Value != 10000 {
		t.Fatalf("scan sees %d entries (%v)", n, out[:n])
	}
}

func TestMinimalKeyAnchorSurvivesDeletion(t *testing.T) {
	// Deleting a leaf's minimal key leaves a fence so recovery routing
	// stays exact — the invariant behind the fence design.
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	// Delete many keys including likely leaf minima.
	for i := uint64(1); i <= n; i += 3 {
		_ = w.Delete(i)
	}
	// Force buffered tombstones down to leaves.
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(n+i, i)
	}
	// Every non-head node's leaf must still physically contain its
	// routing key (live or fence).
	th := tr.Pool().NewThread(0)
	for node := tr.head.next.Load(); node != nil; node = node.next.Load() {
		var img leafImage
		readLeaf(th, node.leaf, &img)
		found := false
		for i := 0; i < LeafSlots; i++ {
			if img.slotValid(i) && img.key(i) == node.lowKey {
				found = true
				break
			}
		}
		// The anchor may still be buffered-only for very fresh splits;
		// those nodes' leaves contain it by construction of splitLeaf.
		if !found {
			t.Fatalf("node lowKey %d missing from its leaf", node.lowKey)
		}
	}
}

func TestFreezeIdempotent(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	_ = w.Upsert(1, 1)
	tr.Freeze()
	tr.Freeze() // second freeze must not hang or panic
	tr.ForceGC()
	tr.WaitGC()
}

func TestInspectAfterCrashRecoverCycle(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 2000; i++ {
		_ = w.Upsert(i, i)
	}
	tr.Freeze()
	tr.Pool().Crash()
	tr2, _, err := Open(tr.Pool(), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(tr2.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChainBrokenAt != -1 {
		t.Fatalf("order violation after recovery at %d", rep.ChainBrokenAt)
	}
	_ = pmem.NilAddr
}
