package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"cclbtree/internal/pmem"
)

// fuzzPool is a deliberately small pool so each fuzz execution stays
// cheap: one socket, 2 MB.
func fuzzPool() *pmem.Pool {
	return pmem.NewPool(pmem.Config{Sockets: 1, DIMMsPerSocket: 1, DeviceBytes: 2 << 20, StrictPersist: true})
}

// fuzzOpts keeps the tree tiny (small WAL chunks, small directory).
func fuzzOpts(varKV bool) Options {
	return Options{ChunkBytes: 4096, GC: GCOff, VarKV: varKV, DirSlots: 64}
}

// FuzzRecoveryScan builds a small valid tree, crashes it, pokes
// arbitrary words into the persistent image, and recovers. The
// contract: Open either succeeds or returns an error (typically
// *CorruptError) — it must never panic or hang on malformed persisted
// bytes — and when it accepts the image, basic reads must be safe.
func FuzzRecoveryScan(f *testing.F) {
	poke := func(off uint32, v uint64) []byte {
		var b [12]byte
		binary.LittleEndian.PutUint32(b[0:], off)
		binary.LittleEndian.PutUint64(b[4:], v)
		return b[:]
	}
	f.Add(false, []byte{})
	f.Add(true, []byte{})
	f.Add(false, poke(256+8, ^uint64(0)))      // superblock head-leaf word
	f.Add(false, poke(256+24, 1))              // superblock dir-slots word
	f.Add(true, poke(64<<10, uint64(1)<<63|1)) // a bogus blob pointer somewhere
	f.Add(false, append(poke(4096, 0xffff), poke(8192, 3)...))

	f.Fuzz(func(t *testing.T, varKV bool, script []byte) {
		pool := fuzzPool()
		tr, err := New(pool, fuzzOpts(varKV))
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		if varKV {
			for i := 0; i < 8; i++ {
				k := []byte{byte(i + 1), 0xaa}
				if err := w.UpsertVar(k, append(k, 0xbb)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := uint64(1); i <= 12; i++ {
				if err := w.Upsert(i, i*3); err != nil {
					t.Fatal(err)
				}
			}
		}
		tr.Freeze()
		pool.Crash()

		// Apply the corruption script: up to 64 word-aligned pokes
		// anywhere in the device image.
		th := pool.NewThread(0)
		for n := 0; n+12 <= len(script) && n < 64*12; n += 12 {
			off := uint64(binary.LittleEndian.Uint32(script[n:])) % uint64(pool.DeviceBytes())
			off &^= 7
			v := binary.LittleEndian.Uint64(script[n+4:])
			a := pmem.MakeAddr(0, off)
			th.Store(a, v)
			th.Persist(a, pmem.WordSize)
		}

		tr2, _, err := Open(pool, Options{}, 2)
		if err != nil {
			return // typed rejection is a legal outcome for a corrupt image
		}
		w2 := tr2.NewWorker(0)
		if varKV {
			_, _ = w2.LookupVar([]byte{1, 0xaa})
		} else {
			_, _ = w2.Lookup(1)
		}
		var out [16]KV
		_ = w2.Scan(0, 8, out[:])
		tr2.Freeze()
	})
}

// FuzzVarKVRoundTrip drives variable-size keys and values through
// upsert, overwrite, lookup, crash, and recovery: every write must read
// back byte-identical, live and after recovery.
func FuzzVarKVRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), byte(3))
	f.Add([]byte{0}, []byte{}, byte(1))
	f.Add([]byte("a"), bytes.Repeat([]byte{0xee}, 300), byte(5))

	f.Fuzz(func(t *testing.T, key, value []byte, n byte) {
		if len(key) == 0 || len(key) > 1024 || len(value) > 1024 {
			t.Skip()
		}
		variants := int(n%8) + 1
		pool := fuzzPool()
		tr, err := New(pool, fuzzOpts(true))
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		want := map[string][]byte{}
		for i := 0; i < variants; i++ {
			k := append(append([]byte{}, key...), byte(i))
			v := append(append([]byte{}, value...), byte(i))
			if err := w.UpsertVar(k, v); err != nil {
				t.Fatal(err)
			}
			want[string(k)] = v
		}
		// Overwrite the first variant: the newest version must win.
		k0 := append(append([]byte{}, key...), byte(0))
		v0 := append(append([]byte{}, value...), 0xff)
		if err := w.UpsertVar(k0, v0); err != nil {
			t.Fatal(err)
		}
		want[string(k0)] = v0

		check := func(w *Worker, when string) {
			for k, v := range want {
				got, ok := w.LookupVar([]byte(k))
				if !ok || !bytes.Equal(got, v) {
					t.Fatalf("%s: key %x = %x (ok=%v), want %x", when, k, got, ok, v)
				}
			}
		}
		check(w, "live")
		tr.Freeze()
		pool.Crash()
		tr2, _, err := Open(pool, Options{}, 2)
		if err != nil {
			t.Fatalf("recovery of a valid image failed: %v", err)
		}
		check(tr2.NewWorker(0), "recovered")
		tr2.Freeze()
	})
}
