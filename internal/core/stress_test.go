package core

import (
	"math/rand"
	"testing"
)

// TestRecoveryStressWithGC crashes trees mid-stream — including while
// background GC rounds are in flight (Freeze aborts them at a node
// boundary, a legal mid-GC crash state) — and verifies the recovered
// tree matches the model exactly.
func TestRecoveryStressWithGC(t *testing.T) {
	for round := 0; round < 40; round++ {
		pool := newTestPool(nil)
		tr, err := New(pool, Options{ChunkBytes: 8192})
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		rng := rand.New(rand.NewSource(int64(round)))
		ref := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(800) + 1)
			if rng.Intn(5) == 0 {
				_ = w.Delete(k)
				delete(ref, k)
			} else {
				v := uint64(rng.Intn(1 << 30))
				if v == 0 {
					v = 1
				}
				_ = w.Upsert(k, v)
				ref[k] = v
			}
		}
		tr.Freeze()
		pool.Crash()
		tr2, _, err := Open(pool, Options{}, 1+round%4)
		if err != nil {
			t.Fatal(err)
		}
		w2 := tr2.NewWorker(0)
		for k := uint64(1); k <= 800; k++ {
			v, ok := w2.Lookup(k)
			wv, wok := ref[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("round %d key %d: got %d,%v want %d,%v", round, k, v, ok, wv, wok)
			}
		}
	}
}
