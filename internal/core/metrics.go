package core

import "cclbtree/internal/obs"

// treeMetrics is the optional obs wiring for one tree: a registry plus
// the pre-registered latency histograms workers record into. nil when
// Options.Metrics is off — every recording site nil-checks, keeping the
// disabled hot path free of obs work.
type treeMetrics struct {
	m         *obs.Metrics
	insertLat obs.HistID
	lookupLat obs.HistID
	scanLat   obs.HistID
}

func newTreeMetrics() *treeMetrics {
	m := obs.NewMetrics()
	return &treeMetrics{
		m:         m,
		insertLat: m.Histogram("insert_ns"),
		lookupLat: m.Histogram("lookup_ns"),
		scanLat:   m.Histogram("scan_ns"),
	}
}

// initObs applies the observability options; shared by New and Open.
func (tr *Tree) initObs() {
	if tr.opts.Metrics {
		tr.met = newTreeMetrics()
	}
	tr.tracer = tr.opts.Tracer
}

// TreeMetrics is the tree's observability snapshot: behavioral counters
// always, latency histograms when Options.Metrics is on.
type TreeMetrics struct {
	Counters Counters
	// Latency holds the "insert_ns"/"lookup_ns"/"scan_ns" histograms
	// (virtual nanoseconds, deletes count as inserts); nil when metrics
	// are disabled.
	Latency *obs.Snapshot
}

// Metrics returns the observability snapshot (the tree-level
// counterpart of pmem.Pool.Observe).
func (tr *Tree) Metrics() TreeMetrics {
	tm := TreeMetrics{Counters: tr.Counters()}
	if tr.met != nil {
		tm.Latency = tr.met.m.Snapshot()
	}
	return tm
}

// recordLat records one operation latency sample; no-op when metrics
// are off (mh nil). Clamped at zero: Rewind can, in degenerate retry
// interleavings, leave the clock marginally behind the recorded start.
func (w *Worker) recordLat(id obs.HistID, start int64) {
	if w.mh == nil {
		return
	}
	if d := w.t.Now() - start; d > 0 {
		w.mh.Observe(id, uint64(d))
	}
}
