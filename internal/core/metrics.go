package core

import "cclbtree/internal/obs"

// treeMetrics is the optional obs wiring for one tree: a registry plus
// the pre-registered latency histograms workers record into, and the
// (op × segment) span matrix the critical-path attribution fills. nil
// when Options.Metrics is off — every recording site nil-checks,
// keeping the disabled hot path free of obs work.
type treeMetrics struct {
	m         *obs.Metrics
	insertLat obs.HistID
	lookupLat obs.HistID
	scanLat   obs.HistID
	// span[op][seg] holds the "span_<op>_<seg>_ns" histogram: how much
	// of one op's latency that segment absorbed, recorded only when
	// nonzero (see Worker.finishSpan).
	span [obs.NumOpClasses][obs.NumSegments]obs.HistID
}

// Heatmap sizing: 4096 slots ≈ 96 KB of counters — enough to rank a
// working set thousands of leaves wide — rotating every 32768 touches
// so scores decay with traffic, not wall time.
const (
	heatSlots  = 4096
	heatWindow = 32768
)

func newTreeMetrics() *treeMetrics {
	m := obs.NewMetrics()
	tm := &treeMetrics{
		m:         m,
		insertLat: m.Histogram("insert_ns"),
		lookupLat: m.Histogram("lookup_ns"),
		scanLat:   m.Histogram("scan_ns"),
	}
	for op := obs.OpClass(0); op < obs.NumOpClasses; op++ {
		for seg := obs.Segment(0); seg < obs.NumSegments; seg++ {
			tm.span[op][seg] = m.Histogram(obs.SpanHistName(op, seg))
		}
	}
	return tm
}

// initObs applies the observability options; shared by New and Open.
// The contention profiler and leaf heatmap ride the Metrics switch:
// they are part of the same "pay for telemetry" decision, and every
// touch point is nil-safe when it is off.
func (tr *Tree) initObs() {
	if tr.opts.Metrics {
		tr.met = newTreeMetrics()
		tr.prof = obs.NewLockProfiler()
		tr.heat = obs.NewHeatmap(heatSlots, heatWindow)
	}
	tr.tracer = tr.opts.Tracer
}

// TreeMetrics is the tree's observability snapshot: behavioral counters
// always, latency histograms when Options.Metrics is on.
type TreeMetrics struct {
	Counters Counters
	// Latency holds the "insert_ns"/"lookup_ns"/"scan_ns" histograms
	// (virtual nanoseconds, deletes count as inserts); nil when metrics
	// are disabled.
	Latency *obs.Snapshot
}

// Metrics returns the observability snapshot (the tree-level
// counterpart of pmem.Pool.Observe).
func (tr *Tree) Metrics() TreeMetrics {
	tm := TreeMetrics{Counters: tr.Counters()}
	if tr.met != nil {
		tm.Latency = tr.met.m.Snapshot()
	}
	return tm
}

// hotLeafK bounds the hot-leaf summary Profile exports.
const hotLeafK = 16

// Profile returns the contention/span/heat tier: lock wait/hold stats
// per class, per-(op, segment) latency attribution, and the hottest
// leaves. Zero-valued when Options.Metrics is off. Cumulative since
// tree creation (heat scores decay by rotation; everything else is
// monotone).
func (tr *Tree) Profile() obs.Profile {
	p := obs.Profile{
		Locks:       tr.prof.Snapshot(),
		HotLeaves:   tr.heat.TopK(hotLeafK),
		HeatEpoch:   tr.heat.Epoch(),
		HeatDropped: tr.heat.Dropped(),
	}
	if tr.met != nil {
		p.Segments = obs.SegmentsFromSnapshot(tr.met.m.Snapshot())
	}
	return p
}

// recordLat records one operation latency sample; no-op when metrics
// are off (mh nil). Clamped at zero: Rewind can, in degenerate retry
// interleavings, leave the clock marginally behind the recorded start.
func (w *Worker) recordLat(id obs.HistID, start int64) {
	if w.mh == nil {
		return
	}
	if d := w.t.Now() - start; d > 0 {
		w.mh.Observe(id, uint64(d))
	}
}
