package core

import (
	"sync"
	"testing"

	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

func TestNUMALocalLogs(t *testing.T) {
	// Each worker's WAL must live on its own socket (§4.4 Optimization
	// #1): appends from a socket-1 worker must not touch socket 0.
	tr, _ := newTestTree(t, Options{GC: GCOff}, nil)
	w1 := tr.NewWorker(1)
	base := tr.Pool().Stats()
	// Keys land in leaves wherever the tree put them, but the LOG
	// appends are local; measure remote accesses for a buffered insert
	// whose leaf is also on socket 1 (first worker on socket 1 splits
	// leaves locally).
	for i := uint64(1); i <= 100; i++ {
		_ = w1.Upsert(i, i)
	}
	_ = base
	addr, err := w1.logs[tr.epoch.Load()].Append(w1.t, wal.Entry{Key: 999, Value: 1, Timestamp: tr.clock.Now(1)})
	if err != nil {
		t.Fatal(err)
	}
	if addr.Socket() != 1 {
		t.Fatalf("socket-1 worker's log chunk on socket %d", addr.Socket())
	}
}

func TestCrossSocketWorkersShareTree(t *testing.T) {
	tr, _ := newTestTree(t, Options{}, nil)
	var wg sync.WaitGroup
	const per = 3000
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := tr.NewWorker(s)
			base := uint64(s*per + 1)
			for i := uint64(0); i < per; i++ {
				if err := w.Upsert(base+i, base+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	w := tr.NewWorker(0)
	for k := uint64(1); k <= 2*per; k++ {
		if v, ok := w.Lookup(k); !ok || v != k {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
	if tr.Pool().Stats().RemoteAccesses == 0 {
		t.Fatal("cross-socket tree recorded no remote accesses")
	}
}

func TestRecoveryAfterVarKVMixedSockets(t *testing.T) {
	pool := newTestPool(func(c *pmem.Config) { c.DeviceBytes = 64 << 20 })
	tr, err := New(pool, Options{VarKV: true, ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			w := tr.NewWorker(s)
			for i := 0; i < 500; i++ {
				k := []byte{byte(s), byte(i >> 8), byte(i)}
				if err := w.UpsertVar(k, append(k, 0xee)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	tr.Freeze()
	pool.Crash()
	tr2, _, err := Open(pool, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := tr2.NewWorker(0)
	for s := 0; s < 2; s++ {
		for i := 0; i < 500; i++ {
			k := []byte{byte(s), byte(i >> 8), byte(i)}
			v, ok := w.LookupVar(k)
			if !ok || len(v) != 4 || v[3] != 0xee {
				t.Fatalf("var key %v lost across sockets+crash: %v %v", k, v, ok)
			}
		}
	}
}
