package core

import (
	"sync"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// chunkDir is the persistent directory of live WAL chunks: a fixed PM
// array of chunk addresses (0 = empty slot). Registration happens once
// per 4 MB chunk, so the extra PM writes are negligible, and it is what
// lets recovery locate every log with nothing but the superblock.
//
// Stale (released-then-recycled) chunks that crash mid-transition are
// harmless either way: recovery filters every replayed entry by
// timestamp against its leaf (§3.3), so replaying a stale chunk is
// merely wasted work, and losing a just-acquired empty chunk loses no
// entries (Append persists the entry only after the chunk is
// registered).
type chunkDir struct {
	mu    sync.Mutex
	t     *pmem.Thread
	base  pmem.Addr
	slots int

	slotOf map[pmem.Addr]int
	free   []int

	// prof is the owning tree's lock profiler (nil when metrics are
	// off); every mu acquisition below is bracketed with it.
	prof *obs.LockProfiler
}

func newChunkDir(t *pmem.Thread, base pmem.Addr, slots int) *chunkDir {
	d := &chunkDir{t: t, base: base, slots: slots, slotOf: map[pmem.Addr]int{}}
	d.free = make([]int, 0, slots)
	for i := slots - 1; i >= 0; i-- {
		d.free = append(d.free, i)
	}
	return d
}

// clearAll zeroes the directory region (fresh-tree initialization).
func (d *chunkDir) clearAll() {
	tok := d.prof.Pre(obs.LockChunkDir)
	d.mu.Lock()
	tok = d.prof.Acquired(obs.LockChunkDir, tok)
	defer d.prof.Released(obs.LockChunkDir, tok)
	defer d.mu.Unlock()
	prev := d.t.SetTag(pmem.TagMeta)
	zero := make([]uint64, d.slots)
	d.t.WriteRange(d.base, zero)
	d.t.Persist(d.base, d.slots*pmem.WordSize)
	d.t.SetTag(prev)
}

func (d *chunkDir) register(chunk pmem.Addr) {
	tok := d.prof.Pre(obs.LockChunkDir)
	d.mu.Lock()
	tok = d.prof.Acquired(obs.LockChunkDir, tok)
	defer d.prof.Released(obs.LockChunkDir, tok)
	defer d.mu.Unlock()
	if len(d.free) == 0 {
		// Directory full: recovery would miss this chunk's entries.
		// With default sizing this is 16 GB of outstanding logs, far
		// past the GC trigger; treat as a configuration error.
		panic("core: chunk directory exhausted; raise Options.DirSlots or lower THlog")
	}
	slot := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	d.slotOf[chunk] = slot
	prev := d.t.SetTag(pmem.TagMeta)
	a := d.base.Add(int64(8 * slot))
	d.t.Store(a, uint64(chunk))
	d.t.Persist(a, pmem.WordSize)
	d.t.SetTag(prev)
}

func (d *chunkDir) unregister(chunk pmem.Addr) {
	tok := d.prof.Pre(obs.LockChunkDir)
	d.mu.Lock()
	tok = d.prof.Acquired(obs.LockChunkDir, tok)
	defer d.prof.Released(obs.LockChunkDir, tok)
	defer d.mu.Unlock()
	slot, ok := d.slotOf[chunk]
	if !ok {
		return
	}
	delete(d.slotOf, chunk)
	d.free = append(d.free, slot)
	prev := d.t.SetTag(pmem.TagMeta)
	a := d.base.Add(int64(8 * slot))
	d.t.Store(a, 0)
	d.t.Persist(a, pmem.WordSize)
	d.t.SetTag(prev)
}

// readChunkDir loads the live chunk set from PM (recovery path).
func readChunkDir(t *pmem.Thread, base pmem.Addr, slots int) []pmem.Addr {
	words := make([]uint64, slots)
	t.ReadRange(base, words)
	var out []pmem.Addr
	for _, w := range words {
		if w != 0 {
			out = append(out, pmem.Addr(w))
		}
	}
	return out
}
