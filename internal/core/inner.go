package core

import (
	"sync"
	"sync/atomic"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// innerTree is the DRAM directory from routing keys (leaf low keys) to
// buffer nodes — the paper's inner-node layer (§4.1 follows FAST&FAIR's
// inner nodes; here a comparator-based B+-tree so the same structure
// routes fixed 8 B keys and variable-size indirection keys).
//
// Concurrency: searches are lock-free. Structural modifications
// (separator insert on split, removal on merge) serialize on mu and
// publish by path copying — every node on the root-to-leaf path of a
// mutation is cloned, stamped with the publication generation, and the
// new root is installed with one atomic store. Nodes are immutable
// after publication, so a reader's descent always sees one consistent
// snapshot of the whole directory; at worst the snapshot is momentarily
// stale and routes to a buffer node that has since split or merged,
// which the buffer-node seqlock (rangeOK + validateRead) catches and
// retries — exactly the conflict path the paper's protocol prescribes.
type innerTree struct {
	mu   sync.Mutex
	cmp  func(t *pmem.Thread, a, b uint64) int
	root atomic.Pointer[innerNode]
	// pubGen counts published mutations; each clone is stamped with the
	// generation that created it (version-stamping for inspection and
	// tests — readers never need it, immutability is the protocol).
	pubGen atomic.Uint64
	size   atomic.Int64
	// prof is the owning tree's lock profiler (nil when metrics are
	// off); the writer-side mu acquisitions below are bracketed with it.
	// Reads take no lock and so record nothing here.
	prof *obs.LockProfiler
}

const innerFanout = 32

// innerNode is one immutable directory node. gen records the pubGen
// that minted it. Leaf-level nodes carry vals; internal nodes carry
// kids. No sibling links: the lock-free descent backtracks instead
// (see findLE), because maintaining mutable prev pointers would break
// immutability.
type innerNode struct {
	gen  uint64
	keys []uint64
	kids []*innerNode
	vals []*bufferNode
}

func (n *innerNode) leaf() bool { return n.kids == nil }

func newInnerTree(cmp func(t *pmem.Thread, a, b uint64) int) *innerTree {
	return &innerTree{cmp: cmp}
}

// search returns the index of the first key ≥ k under the comparator.
// Hand-rolled binary search: the sort.Search closure would be the only
// allocation left on the zero-alloc read path.
func (tr *innerTree) search(t *pmem.Thread, keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tr.cmp(t, keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLE returns the buffer node with the greatest routing key ≤ key,
// without taking any lock. Charges DRAM traversal cost to t.
func (tr *innerTree) findLE(t *pmem.Thread, key uint64) *bufferNode {
	root := tr.root.Load()
	if root == nil {
		return nil
	}
	depth := int64(0)
	v := tr.findLERec(t, root, key, &depth)
	t.Advance(depth * 8 * t.CostDRAM())
	return v
}

// findLERec descends toward key. Separator keys in ancestors can go
// stale after merges remove routing entries, so the natural child may
// own nothing ≤ key (including emptied leaf-level nodes); every child
// to the left holds only keys < key, so backtracking one child at a
// time finds the true predecessor without sibling links.
func (tr *innerTree) findLERec(t *pmem.Thread, n *innerNode, key uint64, depth *int64) *bufferNode {
	*depth++
	i := tr.search(t, n.keys, key)
	if n.leaf() {
		if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
			return n.vals[i]
		}
		if i > 0 {
			return n.vals[i-1]
		}
		// Key sorts below this subtree; the caller backtracks (or, at
		// the root, uses the head).
		return nil
	}
	if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
		i++
	}
	for ; i >= 0; i-- {
		if v := tr.findLERec(t, n.kids[i], key, depth); v != nil {
			return v
		}
	}
	return nil
}

// put inserts a routing entry (split publication).
func (tr *innerTree) put(t *pmem.Thread, key uint64, v *bufferNode) {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.Lock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.Unlock()
	gen := tr.pubGen.Add(1)
	root := tr.root.Load()
	if root == nil {
		tr.size.Add(1)
		tr.root.Store(&innerNode{gen: gen, keys: []uint64{key}, vals: []*bufferNode{v}})
		return
	}
	repl, upKey, sib := tr.insertCopy(t, root, key, v, gen)
	if sib != nil {
		repl = &innerNode{gen: gen, keys: []uint64{upKey}, kids: []*innerNode{repl, sib}}
	}
	tr.root.Store(repl)
}

// insertCopy returns a clone of n with (key, v) inserted, plus a new
// right sibling and its separator when the clone overflowed. n itself
// is never mutated: concurrent readers may be mid-descent through it.
func (tr *innerTree) insertCopy(t *pmem.Thread, n *innerNode, key uint64, v *bufferNode, gen uint64) (*innerNode, uint64, *innerNode) {
	i := tr.search(t, n.keys, key)
	if n.leaf() {
		if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
			nn := &innerNode{gen: gen,
				keys: n.keys,
				vals: append([]*bufferNode(nil), n.vals...)}
			nn.vals[i] = v
			return nn, 0, nil
		}
		nn := &innerNode{gen: gen,
			keys: make([]uint64, 0, len(n.keys)+1),
			vals: make([]*bufferNode, 0, len(n.vals)+1)}
		nn.keys = append(append(append(nn.keys, n.keys[:i]...), key), n.keys[i:]...)
		nn.vals = append(append(append(nn.vals, n.vals[:i]...), v), n.vals[i:]...)
		tr.size.Add(1)
		if len(nn.keys) <= innerFanout {
			return nn, 0, nil
		}
		mid := len(nn.keys) / 2
		right := &innerNode{gen: gen,
			keys: append([]uint64(nil), nn.keys[mid:]...),
			vals: append([]*bufferNode(nil), nn.vals[mid:]...)}
		nn.keys = nn.keys[:mid:mid]
		nn.vals = nn.vals[:mid:mid]
		return nn, right.keys[0], right
	}
	if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
		i++
	}
	kid, upKey, sib := tr.insertCopy(t, n.kids[i], key, v, gen)
	if sib == nil {
		nn := &innerNode{gen: gen,
			keys: n.keys,
			kids: append([]*innerNode(nil), n.kids...)}
		nn.kids[i] = kid
		return nn, 0, nil
	}
	nn := &innerNode{gen: gen,
		keys: make([]uint64, 0, len(n.keys)+1),
		kids: make([]*innerNode, 0, len(n.kids)+1)}
	nn.keys = append(append(append(nn.keys, n.keys[:i]...), upKey), n.keys[i:]...)
	nn.kids = append(nn.kids, n.kids[:i]...)
	nn.kids = append(nn.kids, kid, sib)
	nn.kids = append(nn.kids, n.kids[i+1:]...)
	if len(nn.kids) <= innerFanout {
		return nn, 0, nil
	}
	mid := len(nn.keys) / 2
	up := nn.keys[mid]
	right := &innerNode{gen: gen,
		keys: append([]uint64(nil), nn.keys[mid+1:]...),
		kids: append([]*innerNode(nil), nn.kids[mid+1:]...)}
	nn.keys = nn.keys[:mid:mid]
	nn.kids = nn.kids[: mid+1 : mid+1]
	return nn, up, right
}

// remove deletes a routing entry (merge publication).
func (tr *innerTree) remove(t *pmem.Thread, key uint64) bool {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.Lock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.Unlock()
	root := tr.root.Load()
	if root == nil {
		return false
	}
	repl, removed := tr.removeCopy(t, root, key, tr.pubGen.Add(1))
	if !removed {
		return false
	}
	tr.size.Add(-1)
	tr.root.Store(repl)
	return true
}

// removeCopy clones the path to key with the entry dropped. Leaf-level
// nodes may end up empty; findLE's backtracking tolerates them, so no
// rebalancing is needed (routing entries are sparse and re-splits of
// the same region re-populate them).
func (tr *innerTree) removeCopy(t *pmem.Thread, n *innerNode, key uint64, gen uint64) (*innerNode, bool) {
	i := tr.search(t, n.keys, key)
	if n.leaf() {
		if i >= len(n.keys) || tr.cmp(t, n.keys[i], key) != 0 {
			return n, false
		}
		nn := &innerNode{gen: gen,
			keys: make([]uint64, 0, len(n.keys)-1),
			vals: make([]*bufferNode, 0, len(n.vals)-1)}
		nn.keys = append(append(nn.keys, n.keys[:i]...), n.keys[i+1:]...)
		nn.vals = append(append(nn.vals, n.vals[:i]...), n.vals[i+1:]...)
		return nn, true
	}
	if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
		i++
	}
	kid, removed := tr.removeCopy(t, n.kids[i], key, gen)
	if !removed {
		return n, false
	}
	nn := &innerNode{gen: gen,
		keys: n.keys,
		kids: append([]*innerNode(nil), n.kids...)}
	nn.kids[i] = kid
	return nn, true
}

// entries reports the routing-entry count (for memory accounting).
func (tr *innerTree) entries() int {
	return int(tr.size.Load())
}
