package core

import (
	"sort"
	"sync"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// innerTree is the DRAM directory from routing keys (leaf low keys) to
// buffer nodes — the paper's inner-node layer (§4.1 follows FAST&FAIR's
// inner nodes; here a comparator-based B+-tree so the same structure
// routes fixed 8 B keys and variable-size indirection keys).
//
// Concurrency follows the paper's protocol shape: searches are shared,
// structural modifications (separator insert on split, removal on
// merge) are exclusive, and any conflict detected below this layer
// retries from here.
type innerTree struct {
	mu   sync.RWMutex
	cmp  func(t *pmem.Thread, a, b uint64) int
	root *innerNode
	size int
	// prof is the owning tree's lock profiler (nil when metrics are
	// off); every mu acquisition below is bracketed with it.
	prof *obs.LockProfiler
}

const innerFanout = 32

type innerNode struct {
	keys []uint64
	kids []*innerNode
	vals []*bufferNode
	next *innerNode
	prev *innerNode
}

func (n *innerNode) leaf() bool { return n.kids == nil }

func newInnerTree(cmp func(t *pmem.Thread, a, b uint64) int) *innerTree {
	return &innerTree{cmp: cmp}
}

// search returns the index of the first key ≥ k under the comparator.
func (tr *innerTree) search(t *pmem.Thread, keys []uint64, k uint64) int {
	return sort.Search(len(keys), func(i int) bool { return tr.cmp(t, keys[i], k) >= 0 })
}

// findLE returns the buffer node with the greatest routing key ≤ key.
// Charges DRAM traversal cost to t.
func (tr *innerTree) findLE(t *pmem.Thread, key uint64) *bufferNode {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.RLock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.RUnlock()
	n := tr.root
	if n == nil {
		return nil
	}
	depth := int64(1)
	for !n.leaf() {
		i := tr.search(t, n.keys, key)
		if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
			i++
		}
		n = n.kids[i]
		depth++
	}
	t.Advance(depth * 8 * t.CostDRAM())
	i := tr.search(t, n.keys, key)
	if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
		return n.vals[i]
	}
	if i > 0 {
		return n.vals[i-1]
	}
	// Separator keys in ancestors can go stale after merges remove
	// routing entries, so the descent may land one leaf too far right;
	// the predecessor then lives in an earlier (possibly emptied) leaf.
	for p := n.prev; p != nil; p = p.prev {
		if len(p.keys) > 0 {
			return p.vals[len(p.keys)-1]
		}
	}
	// Key sorts below every routing key; the caller uses the head.
	return nil
}

// put inserts a routing entry (split publication).
func (tr *innerTree) put(t *pmem.Thread, key uint64, v *bufferNode) {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.Lock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.Unlock()
	if tr.root == nil {
		tr.root = &innerNode{keys: []uint64{key}, vals: []*bufferNode{v}}
		tr.size = 1
		return
	}
	nk, nn := tr.insert(t, tr.root, key, v)
	if nn != nil {
		tr.root = &innerNode{keys: []uint64{nk}, kids: []*innerNode{tr.root, nn}}
	}
}

// insert descends recursively; every entry point (Insert, the root
// split above) takes tr.mu before the first call.
//
//persistlint:ignore PL009 callers hold inner.mu for the whole descent; the analysis is intraprocedural
func (tr *innerTree) insert(t *pmem.Thread, n *innerNode, key uint64, v *bufferNode) (uint64, *innerNode) {
	if n.leaf() {
		i := tr.search(t, n.keys, key)
		if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
			n.vals[i] = v
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		tr.size++
		if len(n.keys) <= innerFanout {
			return 0, nil
		}
		mid := len(n.keys) / 2
		right := &innerNode{
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]*bufferNode(nil), n.vals[mid:]...),
			next: n.next,
			prev: n,
		}
		if right.next != nil {
			right.next.prev = right
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	i := tr.search(t, n.keys, key)
	if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
		i++
	}
	sk, sn := tr.insert(t, n.kids[i], key, v)
	if sn == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sk
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = sn
	if len(n.kids) <= innerFanout {
		return 0, nil
	}
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &innerNode{
		keys: append([]uint64(nil), n.keys[mid+1:]...),
		kids: append([]*innerNode(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return up, right
}

// remove deletes a routing entry (merge publication).
func (tr *innerTree) remove(t *pmem.Thread, key uint64) bool {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.Lock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.Unlock()
	n := tr.root
	if n == nil {
		return false
	}
	for !n.leaf() {
		i := tr.search(t, n.keys, key)
		if i < len(n.keys) && tr.cmp(t, n.keys[i], key) == 0 {
			i++
		}
		n = n.kids[i]
	}
	i := tr.search(t, n.keys, key)
	if i >= len(n.keys) || tr.cmp(t, n.keys[i], key) != 0 {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	tr.size--
	return true
}

// entries reports the routing-entry count (for memory accounting).
func (tr *innerTree) entries() int {
	tok := tr.prof.Pre(obs.LockInner)
	tr.mu.RLock()
	tok = tr.prof.Acquired(obs.LockInner, tok)
	defer tr.prof.Released(obs.LockInner, tok)
	defer tr.mu.RUnlock()
	return tr.size
}
