package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cclbtree/internal/memtree"
)

// TestConcurrentReadLinearizability is the lock-free read path's
// property test: randomized concurrent readers race writers that force
// splits, merges and GC rounds, and every read must be attributable to
// a state that was current at some point during the read's window.
//
// Discipline that makes the check exact without locking an oracle:
// each key has ONE writer, and that writer drives the key through a
// monotone sequence of states (seq 1, 2, 3, ...; every third state is
// a delete). Two shadow atomics per key — issued (stored before the
// write is submitted) and completed (stored after it returns) — bound
// which states can be visible. A read that began after state c0
// completed and returned before state i1 was issued may only observe a
// state with seq in [c0, i1]; anything older is a stale read the
// seqlock protocol failed to retry, anything newer is impossible.
//
// The test runs entirely on Go-visible atomics (no logical data races),
// so `-race` checks the implementation's memory discipline while the
// assertions check its linearizability.
func TestConcurrentReadLinearizability(t *testing.T) {
	tr, _ := newTestTree(t, Options{ChunkBytes: 8 << 10, THlog: 0.05}, nil)
	const (
		space   = 900
		writers = 3
		readers = 3
		rounds  = 40
	)
	issued := make([]atomic.Uint64, space+1)
	completed := make([]atomic.Uint64, space+1)
	encode := func(k, seq uint64) uint64 { return k*1_000_000 + seq }

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				// Visit the writer's residue class in random order so
				// leaf-level contention patterns vary.
				for _, off := range rng.Perm(space / writers) {
					k := uint64(g + 1 + off*writers)
					seq := issued[k].Load() + 1
					issued[k].Store(seq)
					if seq%3 == 0 {
						if err := w.Delete(k); err != nil {
							t.Error(err)
							return
						}
					} else if err := w.Upsert(k, encode(k, seq)); err != nil {
						t.Error(err)
						return
					}
					completed[k].Store(seq)
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < 25000; i++ {
				k := uint64(rng.Intn(space) + 1)
				c0 := completed[k].Load()
				v, ok := w.Lookup(k)
				i1 := issued[k].Load()
				if ok {
					seq := v - k*1_000_000
					if v/1_000_000 != k || seq == 0 || seq%3 == 0 {
						t.Errorf("key %d: impossible value %d", k, v)
						return
					}
					if seq < c0 || seq > i1 {
						t.Errorf("key %d: stale/future read seq %d outside window [%d, %d]", k, seq, c0, i1)
						return
					}
				} else {
					// Absent is legal only if a deleted-or-initial state
					// falls inside the window.
					legal := c0 == 0 // initial absence still visible
					for s := c0; s <= i1 && !legal; s++ {
						legal = s%3 == 0
					}
					if !legal {
						t.Errorf("key %d: absent but no deleted state in window [%d, %d]", k, c0, i1)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent cross-check against the memtree oracle: the final tree
	// content must equal the final shadow state, and a full Scan must
	// agree with the oracle's ordered walk.
	oracle := &memtree.Tree[uint64]{}
	for k := uint64(1); k <= space; k++ {
		if seq := completed[k].Load(); seq != 0 && seq%3 != 0 {
			oracle.Put(k, encode(k, seq))
		}
	}
	w := tr.NewWorker(0)
	out := make([]KV, space+10)
	got := w.Scan(1, len(out), out)
	if got != oracle.Len() {
		t.Fatalf("final scan found %d keys, oracle holds %d", got, oracle.Len())
	}
	i := 0
	oracle.Ascend(1, func(k, v uint64) bool {
		if out[i].Key != k || out[i].Value != v {
			t.Errorf("scan[%d] = %d→%d, oracle %d→%d", i, out[i].Key, out[i].Value, k, v)
			return false
		}
		i++
		return true
	})
	if tr.Counters().Splits == 0 || tr.Counters().Merges == 0 || tr.Counters().GCRuns == 0 {
		t.Fatalf("workload too tame: %+v", tr.Counters())
	}
}
