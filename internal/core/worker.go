package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// KV is one key/value pair in word form. In VarKV mode both words are
// indirection pointers.
type KV struct {
	Key, Value uint64
}

// Tombstone is the reserved value word marking a deletion (§4.2: "the
// tombstone KV (i.e., value is set to zero)"). Fixed-mode callers must
// not store it as a real value; blob pointers are never zero.
const Tombstone uint64 = 0

// conflictPenaltyNS is the modeled cost of one failed optimistic
// attempt (version-lock conflict or range mismatch): the cacheline
// bounce plus the retried traversal's overlap with the holder.
const conflictPenaltyNS = 150

// Worker is a per-goroutine handle to the tree. It owns the thread's
// two WALs (the B-log/I-log pair of §3.4), its PM access thread, and
// its blob arena. A Worker must not be used concurrently.
type Worker struct {
	tree   *Tree
	t      *pmem.Thread
	socket int
	id     int
	logs   [2]*wal.Log
	blobs  blobArena
	// mh is the worker's metrics shard (nil when Options.Metrics is
	// off). Single-owner like the Thread: one goroutine at a time.
	mh *obs.Handle

	scratch  []KV   // reused per-op buffer
	probeKey []byte // current VarKV lookup/scan probe (see probeTag)
	seenGen  uint64 // last naive-GC stall generation absorbed

	// epochSlot is the worker's reclamation pin (see epoch.go): the
	// epoch a lock-free Get/Scan entered at, 0 between reads. Written
	// by the owning goroutine, scanned by reclaimers.
	epochSlot atomic.Uint64

	// scanCands/scanEnts are collectNode's reusable buffers (≤
	// LeafSlots+Nbatch entries each); worker-owned so the scan path
	// stays allocation-free in steady state.
	scanCands []scanCand
	scanEnts  []KV

	// Span-attribution state (see span.go); worker-local, valid between
	// one beginSpan and its finishSpan. spans mirrors mh != nil so the
	// hot paths branch on one bool.
	spans  bool
	curOp  obs.OpClass
	segAcc [obs.NumSegments]int64
	segV0  int64 // virtual clock at beginSpan
	segF0  int64 // Thread.FlushNS at beginSpan
	segE0  int64 // Thread.FenceNS at beginSpan

	// tsCap, when nonzero, caps the timestamp leaf flushes stamp (see
	// stampLeafTS). ApplyBatch sets it to one tick below its group
	// commit's smallest record timestamp for the duration of each run,
	// so a flush mid-batch never gates the group's still-buffered
	// records as stale at recovery. Zero (the per-op path, GC,
	// recovery, merges) means stamp the current tick.
	tsCap uint64
}

// syncStall lifts the worker's clock over the latest stop-the-world
// pause, once per GC round (clocks across workers are only loosely
// comparable; gating by generation keeps stale stalls from leaking).
func (w *Worker) syncStall() {
	if gen := w.tree.stallGen.Load(); gen != w.seenGen {
		w.seenGen = gen
		before := w.t.Now()
		w.t.SyncClock(w.tree.stallVT.Load())
		// The absorbed stop-the-world pause is lock-wait time: the op
		// spent it blocked behind the naive-GC writer lock.
		if w.spans {
			w.segAcc[obs.SegLockWait] += w.t.Now() - before
		}
	}
}

// NewWorker creates and registers an operation handle bound to a NUMA
// socket (its WALs are allocated from local PM, §4.4 Optimization #1).
func (tr *Tree) NewWorker(socket int) *Worker {
	w := &Worker{
		tree:   tr,
		t:      tr.pool.NewThread(socket),
		socket: socket,
	}
	w.logs[0] = wal.NewLog(tr.walman, socket)
	w.logs[1] = wal.NewLog(tr.walman, socket)
	if tr.opts.UnsafeSkipWALFence {
		w.logs[0].UnsafeSkipFence = true
		w.logs[1].UnsafeSkipFence = true
	}
	w.blobs = blobArena{alloc: tr.alloc, socket: socket}
	if tr.met != nil {
		w.mh = tr.met.m.NewHandle()
		w.spans = true
	}
	tok := tr.prof.Pre(obs.LockWorkers)
	tr.workersMu.Lock()
	tok = tr.prof.Acquired(obs.LockWorkers, tok)
	w.id = len(tr.workers)
	tr.workers = append(tr.workers, w)
	tr.workersMu.Unlock()
	tr.prof.Released(obs.LockWorkers, tok)
	tr.workerCount.Add(1)
	return w
}

// readEnter pins the worker into the current reclamation epoch (see
// epoch.go) and charges the modeled cost of the pin/unpin pair: two
// uncontended DRAM stores.
func (w *Worker) readEnter() {
	w.tree.epochEnter(w)
	c := 2 * w.t.CostDRAM()
	w.t.Advance(c)
	if w.spans {
		w.segAcc[obs.SegValidate] += c
	}
}

// readExit unpins the worker.
func (w *Worker) readExit() {
	w.tree.epochExit(w)
}

// readRecheck re-validates an optimistic read section against the
// version snapshotted at beginRead, charging the modeled load. Under
// Options.UnsafeSkipReadRecheck (oracle self-tests only) the check
// still executes but its verdict is discarded — the planted
// read-linearizability bug the torture oracle must catch.
func (w *Worker) readRecheck(n *bufferNode, ver uint64) bool {
	ok := n.validateRead(ver)
	c := w.t.CostDRAM()
	w.t.Advance(c)
	if w.spans {
		w.segAcc[obs.SegValidate] += c
	}
	if w.tree.opts.UnsafeSkipReadRecheck {
		return true
	}
	return ok
}

// unsafeReadTear widens the torn-read window when the planted
// UnsafeSkipReadRecheck bug is armed: a seqlock reader can be preempted
// between any two of its unsynchronized loads, and the recheck being
// skipped is precisely what would have caught the resulting tear.
// Yielding at the vulnerable point makes the torture oracle's self-test
// catch deterministic instead of scheduler luck (required on single-CPU
// runners, where natural preemption inside a two-instruction window is
// vanishingly rare). Compiled down to one flag check in normal runs.
func (w *Worker) unsafeReadTear() {
	if w.tree.opts.UnsafeSkipReadRecheck {
		runtime.Gosched()
	}
}

// lockHandoffNS models one cross-core cacheline transfer of a shared
// lock word. The LockedReads ablation charges it per peer worker and
// per RMW: on silicon every other active thread is a potential owner
// the line bounces from, which is exactly the scaling collapse the
// lock-free path exists to avoid — and which the deterministic virtual
// clock would otherwise never see.
const lockHandoffNS = 60

// chargeLockHandoff charges rmws lock-word RMWs against the peer count
// and attributes them to lock wait.
func (w *Worker) chargeLockHandoff(rmws int) {
	sharers := w.tree.workerCount.Load() - 1
	if sharers <= 0 {
		return
	}
	d := int64(rmws) * lockHandoffNS * sharers
	w.t.Advance(d)
	if w.spans {
		w.segAcc[obs.SegLockWait] += d
	}
}

// Thread exposes the worker's PM thread (virtual clock, tagging).
func (w *Worker) Thread() *pmem.Thread { return w.t }

// findBuffer routes a key word to its owning buffer node.
func (tr *Tree) findBuffer(t *pmem.Thread, key uint64) *bufferNode {
	if n := tr.inner.findLE(t, key); n != nil {
		return n
	}
	return tr.head
}

// rangeOK checks, under the node's lock or an optimistic read, that n
// still owns key.
func (w *Worker) rangeOK(n *bufferNode, key uint64) bool {
	if n.dead() {
		return false
	}
	if n.lowKey != 0 && w.tree.compare(w.t, key, n.lowKey) < 0 {
		return false
	}
	if nx := n.next.Load(); nx != nil && w.tree.compare(w.t, key, nx.lowKey) >= 0 {
		return false
	}
	return true
}

// MaxValue bounds direct 8 B keys and values: the top two bits tag
// indirection pointers (blobs) and probes, so recovery can tell payload
// from pointer unambiguously. Larger payloads go through
// UpsertLargeValue.
const MaxValue = 1<<62 - 1

// Upsert inserts or updates a fixed 8 B key/value pair. key must be in
// [1, MaxValue]; value must be in [1, MaxValue] (0 is the tombstone —
// use Delete).
func (w *Worker) Upsert(key, value uint64) error {
	if err := w.writableFixed("Upsert"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: Upsert: %w", ErrZeroKey)
	}
	if key > MaxValue {
		return fmt.Errorf("core: key %#x outside [1, MaxValue]", key)
	}
	if value == Tombstone {
		return fmt.Errorf("core: value 0 is the tombstone; use Delete")
	}
	if value > MaxValue {
		return fmt.Errorf("core: value %#x exceeds MaxValue; use UpsertLargeValue", value)
	}
	w.tree.ctr.upserts.Add(1)
	w.tree.pool.AddUserBytes(16)
	start := w.t.Now()
	w.beginSpan(obs.OpPut)
	err := w.upsertWord(key, value)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.insertLat, start)
	}
	w.tree.tracer.Emit(obs.EvInsert, w.id, w.t.Now(), key, value)
	return err
}

// Delete inserts a tombstone for key (§4.2 treats deletion as an
// insertion so it benefits from buffering and logging identically).
func (w *Worker) Delete(key uint64) error {
	if err := w.writableFixed("Delete"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: Delete: %w", ErrZeroKey)
	}
	w.tree.ctr.deletes.Add(1)
	w.tree.pool.AddUserBytes(16)
	start := w.t.Now()
	// Deletes attribute as OpPut: a delete is a tombstone upsert and
	// walks the identical critical path.
	w.beginSpan(obs.OpPut)
	err := w.upsertWord(key, Tombstone)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.insertLat, start)
	}
	w.tree.tracer.Emit(obs.EvDelete, w.id, w.t.Now(), key, 0)
	return err
}

func (w *Worker) upsertWord(key, value uint64) error {
	tr := w.tree
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	var mergeCandidate *bufferNode
	for {
		attemptVT := w.t.Now()
		m := w.segBegin()
		n := tr.findBuffer(w.t, key)
		v, ok := n.tryLock()
		if !ok {
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, key) {
			n.unlock(v)
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			continue
		}
		w.segEnd(obs.SegTraverse, m)
		underfull, err := w.upsertLocked(n, key, value)
		n.unlock(v)
		if err != nil {
			return err
		}
		if underfull {
			mergeCandidate = n
		}
		break
	}
	if mergeCandidate != nil {
		w.tryMerge(mergeCandidate)
	}
	tr.maybeTriggerGC()
	return nil
}

// upsertLocked performs the §3.2 insert flow with n's version lock
// held. It reports whether the leaf ended a flush underfull (merge
// candidate).
func (w *Worker) upsertLocked(n *bufferNode, key, value uint64) (underfull bool, err error) {
	tr := w.tree
	tr.heat.Touch(uint64(n.leaf), true)
	m := w.segBegin()
	defer w.segCloseBuffer(m, w.segAcc[obs.SegWAL], w.segAcc[obs.SegTrigger])
	pos, eb, _ := unpackHdr(n.hdr.Load())
	epoch := uint16(tr.epoch.Load())

	// In-buffer upsert: an unflushed slot already holds this key.
	for i := 0; i < pos; i++ {
		if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
			if err := w.appendLog(key, value); err != nil {
				return false, err
			}
			n.slots[2*i+1].Store(value)
			eb = eb&^(1<<uint(i)) | epoch<<uint(i)
			n.hdr.Store(packHdr(pos, eb, false))
			return false, nil
		}
	}

	if pos >= n.nbatch() {
		// Trigger write (§3.3): the batch — every buffered KV plus the
		// incoming one — flushes to the leaf in one XPLine write. Under
		// write-conservative logging the incoming KV skips the WAL; it
		// is durable the moment the batch is.
		tr.ctr.triggerWrites.Add(1)
		if tr.opts.NaiveLogging && n.nbatch() > 0 {
			if err := w.appendLog(key, value); err != nil {
				return false, err
			}
		} else if n.nbatch() > 0 {
			tr.ctr.skippedLogs.Add(1)
		}
		batch := w.scratch[:0]
		for i := 0; i < pos; i++ {
			batch = append(batch, KV{n.slotKey(i), n.slotVal(i)})
		}
		batch = append(batch, KV{key, value})
		w.scratch = batch
		tm := w.segBegin()
		valid, err := w.leafBatchInsert(n, batch)
		w.segEnd(obs.SegTrigger, tm)
		if err != nil {
			return false, err
		}
		// Slots remain as a read cache; refresh any copy of the
		// trigger key so reads cannot see a stale cached value.
		for i := 0; i < n.nbatch(); i++ {
			if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
				n.slots[2*i+1].Store(value)
			}
		}
		n.hdr.Store(packHdr(0, eb, false))
		return valid < LeafSlots/2 && n != tr.head, nil
	}

	// Normal buffered insert: WAL first, then the slot (§3.2).
	if err := w.appendLog(key, value); err != nil {
		return false, err
	}
	n.setSlot(pos, key, value, tr.keyFingerprint(w.t, key))
	// Purge stale cached copies from earlier flush rounds: slots beyond
	// pos may hold an older version (even a tombstone) of this key at a
	// HIGHER index, which a later round's overwrites could leave
	// shadowing the leaf's newer value.
	for i := pos + 1; i < n.nbatch(); i++ {
		if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
			n.setSlot(i, 0, 0, 0)
		}
	}
	eb = eb&^(1<<uint(pos)) | epoch<<uint(pos)
	n.hdr.Store(packHdr(pos+1, eb, false))
	return false, nil
}

// appendLog writes one WAL entry to the current-epoch log.
func (w *Worker) appendLog(key, value uint64) error {
	tr := w.tree
	e := tr.epoch.Load()
	ts := tr.clock.Now(w.socket)
	m := w.segBegin()
	_, err := w.logs[e].Append(w.t, wal.Entry{Key: key, Value: value, Timestamp: ts})
	w.segEnd(obs.SegWAL, m)
	if err != nil {
		return err
	}
	tr.logBytes.Add(wal.EntrySize)
	if n := tr.ctr.loggedWrites.Add(1); n%512 == 0 {
		tr.notePeakLog()
	}
	return nil
}

// Lookup finds the value for a fixed 8 B key.
func (w *Worker) Lookup(key uint64) (uint64, bool) {
	w.tree.ctr.lookups.Add(1)
	start := w.t.Now()
	w.beginSpan(obs.OpGet)
	v, ok := w.lookupWord(key)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.lookupLat, start)
	}
	found := ok && v != Tombstone
	var fw uint64
	if found {
		fw = 1
	}
	w.tree.tracer.Emit(obs.EvLookup, w.id, w.t.Now(), key, fw)
	if !found {
		return 0, false
	}
	return v, true
}

func (w *Worker) lookupWord(key uint64) (uint64, bool) {
	tr := w.tree
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	if tr.opts.LockedReads {
		return w.lookupWordLocked(key)
	}
	w.readEnter()
	defer w.readExit()
	for {
		attemptVT := w.t.Now()
		m := w.segBegin()
		val0 := w.segAcc[obs.SegValidate]
		if val, found, ok := w.lookupAttempt(key); ok {
			// The whole successful pass — routing, buffer scan, leaf
			// search — is traversal for a read, minus the validation
			// charges attributed to their own segment inside it.
			w.segEndExcl(obs.SegTraverse, m, w.segAcc[obs.SegValidate]-val0)
			return val, found
		}
		tr.crashAbort()
		tr.ctr.retries.Add(1)
		tr.ctr.readRetries.Add(1)
		w.t.Rewind(attemptVT)
		w.t.Advance(conflictPenaltyNS)
		w.segRetry()
		runtime.Gosched()
	}
}

// lookupWordLocked is the Options.LockedReads ablation: the pre-
// optimistic read path that holds the node's version lock across the
// buffer probe and leaf search. Correct but unscalable — each read
// pays the modeled lock-word handoffs (two RMWs here plus two for the
// shared routing lock this path stands in for), growing with the
// worker count.
func (w *Worker) lookupWordLocked(key uint64) (uint64, bool) {
	tr := w.tree
	for {
		attemptVT := w.t.Now()
		m := w.segBegin()
		n := tr.findBuffer(w.t, key)
		v, ok := n.tryLock()
		if !ok {
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, key) {
			n.unlock(v)
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			continue
		}
		w.chargeLockHandoff(4)
		val, found := w.lookupInNode(n, key)
		n.unlock(v)
		w.segEnd(obs.SegTraverse, m)
		return val, found
	}
}

// lookupAttempt is one optimistic lookup pass; ok is false when the
// version changed underneath and the caller must retry.
func (w *Worker) lookupAttempt(key uint64) (val uint64, found, ok bool) {
	tr := w.tree
	n := tr.findBuffer(w.t, key)
	ver, clean := n.beginRead()
	if !clean {
		return 0, false, false
	}
	if !w.rangeOK(n, key) {
		return 0, false, false
	}
	// Buffer probe: the packed per-slot fingerprints short-circuit the
	// key comparisons — one DRAM word covers eight slots, so most
	// probes touch no slot at all (§4.1's fingerprint filter, applied
	// to the DRAM cache).
	target := tr.keyFingerprint(w.t, key)
	w.t.Advance(int64(1+(n.nbatch()+7)/8) * w.t.CostDRAM())
	for i := 0; i < n.nbatch(); i++ {
		if n.slotFP(i) != target {
			continue
		}
		sk := n.slotKey(i)
		if sk == 0 || tr.compare(w.t, sk, key) != 0 {
			continue
		}
		// Leftmost match is the newest version (§4.3). The key and
		// value words are read without synchronization — only the
		// recheck below makes the pair trustworthy.
		w.unsafeReadTear()
		v := n.slotVal(i)
		if !w.readRecheck(n, ver) {
			return 0, false, false
		}
		tr.ctr.bufferHits.Add(1)
		tr.heat.Touch(uint64(n.leaf), false)
		return v, true, true
	}
	// Leaf search: bitmap + fingerprints in the header cacheline
	// filter the PM reads (§4.1).
	v, f := w.leafSearchFP(n.leaf, key, target)
	if !w.readRecheck(n, ver) {
		return 0, false, false
	}
	tr.heat.Touch(uint64(n.leaf), false)
	return v, f, true
}

// lookupInNode probes the buffer slots then the leaf with the node
// lock held (LockedReads ablation and other locked contexts); no
// validation needed.
func (w *Worker) lookupInNode(n *bufferNode, key uint64) (uint64, bool) {
	tr := w.tree
	target := tr.keyFingerprint(w.t, key)
	w.t.Advance(int64(1+(n.nbatch()+7)/8) * w.t.CostDRAM())
	for i := 0; i < n.nbatch(); i++ {
		if n.slotFP(i) != target {
			continue
		}
		sk := n.slotKey(i)
		if sk == 0 || tr.compare(w.t, sk, key) != 0 {
			continue
		}
		tr.ctr.bufferHits.Add(1)
		tr.heat.Touch(uint64(n.leaf), false)
		return n.slotVal(i), true
	}
	v, f := w.leafSearchFP(n.leaf, key, target)
	tr.heat.Touch(uint64(n.leaf), false)
	return v, f
}

// ScanEntry is one range-query result in word form.
type ScanEntry = KV

// Scan collects up to max live entries with key ≥ start in ascending
// order into out, returning the count (§4.3: traverse successive buffer
// and leaf nodes, buffered entries win).
func (w *Worker) Scan(start uint64, max int, out []KV) int {
	tr := w.tree
	tr.ctr.scans.Add(1)
	startVT := w.t.Now()
	defer func() {
		if w.mh != nil {
			w.recordLat(tr.met.scanLat, startVT)
		}
		tr.tracer.Emit(obs.EvScan, w.id, w.t.Now(), start, uint64(max))
	}()
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	if max > len(out) {
		max = len(out)
	}
	if !tr.opts.LockedReads {
		w.readEnter()
		defer w.readExit()
	}
	count := 0
	var lastKey uint64
	haveLast := false
	n := tr.findBuffer(w.t, start)
	for n != nil && count < max {
		attemptVT := w.t.Now()
		ents, nx, st := w.scanNode(n)
		switch st {
		case scanDead:
			// Merged away: re-route from the last progress point. A
			// simulated crash can leave routing transiently stale, so
			// the re-route loop needs the same unhang check as the
			// retry loops below.
			tr.crashAbort()
			from := start
			if haveLast {
				from = lastKey
			}
			n = tr.findBuffer(w.t, from)
			continue
		case scanRetry:
			// Every retry branch — locked, torn collect, or failed
			// final validation — must re-raise a sticky power failure:
			// an optimistic reader spinning on a version that will
			// never settle (its writer died mid-section) would
			// otherwise hang here forever.
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			tr.ctr.readRetries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			runtime.Gosched()
			continue
		}
		for _, e := range ents {
			if count >= max {
				break
			}
			if tr.compare(w.t, e.Key, start) < 0 {
				continue
			}
			if haveLast && tr.compare(w.t, e.Key, lastKey) <= 0 {
				continue
			}
			out[count] = e
			count++
			lastKey = e.Key
			haveLast = true
		}
		n = nx
	}
	return count
}

// scanNode outcome codes.
const (
	scanOK = iota
	scanDead
	scanRetry
)

// scanNode snapshots one node for Scan: lock-free with seqlock
// validation by default, under the node lock in the LockedReads
// ablation. Returns the node's sorted live entries and the next node.
func (w *Worker) scanNode(n *bufferNode) ([]KV, *bufferNode, int) {
	tr := w.tree
	if tr.opts.LockedReads {
		v, ok := n.tryLock()
		if !ok {
			return nil, nil, scanRetry
		}
		if n.dead() {
			n.unlock(v)
			return nil, nil, scanDead
		}
		w.chargeLockHandoff(4)
		ents, _ := w.collectNode(n, 0, true)
		nx := n.next.Load()
		n.unlock(v)
		return ents, nx, scanOK
	}
	ver, ok := n.beginRead()
	if !ok {
		return nil, nil, scanRetry
	}
	if n.dead() {
		return nil, nil, scanDead
	}
	ents, ok := w.collectNode(n, ver, false)
	if !ok {
		return nil, nil, scanRetry
	}
	nx := n.next.Load()
	if !w.readRecheck(n, ver) {
		return nil, nil, scanRetry
	}
	return ents, nx, scanOK
}

// scanCand is one candidate entry while collecting a node.
type scanCand struct {
	kv      KV
	fromBuf bool
}

// collectNode snapshots one node's live entries (leaf ∪ buffer, buffer
// wins, tombstones drop), sorted ascending into the worker's reusable
// buffer — valid until the next collectNode call. ok is false if the
// version changed mid-read (never when locked: the caller holds the
// node's version lock).
func (w *Worker) collectNode(n *bufferNode, ver uint64, locked bool) ([]KV, bool) {
	tr := w.tree
	tr.heat.Touch(uint64(n.leaf), false)
	var img leafImage
	prev := w.t.SetTag(pmem.TagLeaf)
	readLeaf(w.t, n.leaf, &img)
	w.t.SetTag(prev)

	cands := w.scanCands[:0]
	for i := 0; i < n.nbatch(); i++ {
		if k := n.slotKey(i); k != 0 {
			w.unsafeReadTear()
			cands = append(cands, scanCand{KV{k, n.slotVal(i)}, true})
		}
	}
	for i := 0; i < LeafSlots; i++ {
		if img.slotValid(i) {
			cands = append(cands, scanCand{KV{img.key(i), img.val(i)}, false})
		}
	}
	w.scanCands = cands
	if !locked && !w.readRecheck(n, ver) {
		return nil, false
	}
	// Dedup: leftmost buffer entry wins, then leaf. Sorted insertion on
	// append — the node holds at most LeafSlots+Nbatch entries, and the
	// in-place shift replaces sort.Slice's closure allocation on the
	// zero-alloc read path.
	ents := w.scanEnts[:0]
	for i, c := range cands {
		dup := false
		for j := 0; j < i; j++ {
			if tr.compare(w.t, cands[j].kv.Key, c.kv.Key) == 0 {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if c.kv.Value == Tombstone {
			continue
		}
		// Buffer slots can cache keys that have since split to a
		// right sibling; range-filter them defensively.
		if c.fromBuf {
			if nx := n.next.Load(); nx != nil && tr.compare(w.t, c.kv.Key, nx.lowKey) >= 0 {
				continue
			}
		}
		j := len(ents)
		ents = append(ents, c.kv)
		for j > 0 && tr.compare(w.t, ents[j-1].Key, c.kv.Key) > 0 {
			ents[j] = ents[j-1]
			j--
		}
		ents[j] = c.kv
	}
	w.scanEnts = ents
	w.t.Advance(int64(len(ents)) * w.t.CostDRAM() * 2) // DRAM sort cost
	return ents, true
}
