package core

import (
	"fmt"
	"runtime"
	"sort"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// KV is one key/value pair in word form. In VarKV mode both words are
// indirection pointers.
type KV struct {
	Key, Value uint64
}

// Tombstone is the reserved value word marking a deletion (§4.2: "the
// tombstone KV (i.e., value is set to zero)"). Fixed-mode callers must
// not store it as a real value; blob pointers are never zero.
const Tombstone uint64 = 0

// conflictPenaltyNS is the modeled cost of one failed optimistic
// attempt (version-lock conflict or range mismatch): the cacheline
// bounce plus the retried traversal's overlap with the holder.
const conflictPenaltyNS = 150

// Worker is a per-goroutine handle to the tree. It owns the thread's
// two WALs (the B-log/I-log pair of §3.4), its PM access thread, and
// its blob arena. A Worker must not be used concurrently.
type Worker struct {
	tree   *Tree
	t      *pmem.Thread
	socket int
	id     int
	logs   [2]*wal.Log
	blobs  blobArena
	// mh is the worker's metrics shard (nil when Options.Metrics is
	// off). Single-owner like the Thread: one goroutine at a time.
	mh *obs.Handle

	scratch  []KV   // reused per-op buffer
	probeKey []byte // current VarKV lookup/scan probe (see probeTag)
	seenGen  uint64 // last naive-GC stall generation absorbed

	// Span-attribution state (see span.go); worker-local, valid between
	// one beginSpan and its finishSpan. spans mirrors mh != nil so the
	// hot paths branch on one bool.
	spans  bool
	curOp  obs.OpClass
	segAcc [obs.NumSegments]int64
	segV0  int64 // virtual clock at beginSpan
	segF0  int64 // Thread.FlushNS at beginSpan
	segE0  int64 // Thread.FenceNS at beginSpan

	// tsCap, when nonzero, caps the timestamp leaf flushes stamp (see
	// stampLeafTS). ApplyBatch sets it to one tick below its group
	// commit's smallest record timestamp for the duration of each run,
	// so a flush mid-batch never gates the group's still-buffered
	// records as stale at recovery. Zero (the per-op path, GC,
	// recovery, merges) means stamp the current tick.
	tsCap uint64
}

// syncStall lifts the worker's clock over the latest stop-the-world
// pause, once per GC round (clocks across workers are only loosely
// comparable; gating by generation keeps stale stalls from leaking).
func (w *Worker) syncStall() {
	if gen := w.tree.stallGen.Load(); gen != w.seenGen {
		w.seenGen = gen
		before := w.t.Now()
		w.t.SyncClock(w.tree.stallVT.Load())
		// The absorbed stop-the-world pause is lock-wait time: the op
		// spent it blocked behind the naive-GC writer lock.
		if w.spans {
			w.segAcc[obs.SegLockWait] += w.t.Now() - before
		}
	}
}

// NewWorker creates and registers an operation handle bound to a NUMA
// socket (its WALs are allocated from local PM, §4.4 Optimization #1).
func (tr *Tree) NewWorker(socket int) *Worker {
	w := &Worker{
		tree:   tr,
		t:      tr.pool.NewThread(socket),
		socket: socket,
	}
	w.logs[0] = wal.NewLog(tr.walman, socket)
	w.logs[1] = wal.NewLog(tr.walman, socket)
	if tr.opts.UnsafeSkipWALFence {
		w.logs[0].UnsafeSkipFence = true
		w.logs[1].UnsafeSkipFence = true
	}
	w.blobs = blobArena{alloc: tr.alloc, socket: socket}
	if tr.met != nil {
		w.mh = tr.met.m.NewHandle()
		w.spans = true
	}
	tok := tr.prof.Pre(obs.LockWorkers)
	tr.workersMu.Lock()
	tok = tr.prof.Acquired(obs.LockWorkers, tok)
	w.id = len(tr.workers)
	tr.workers = append(tr.workers, w)
	tr.workersMu.Unlock()
	tr.prof.Released(obs.LockWorkers, tok)
	return w
}

// Thread exposes the worker's PM thread (virtual clock, tagging).
func (w *Worker) Thread() *pmem.Thread { return w.t }

// findBuffer routes a key word to its owning buffer node.
func (tr *Tree) findBuffer(t *pmem.Thread, key uint64) *bufferNode {
	if n := tr.inner.findLE(t, key); n != nil {
		return n
	}
	return tr.head
}

// rangeOK checks, under the node's lock or an optimistic read, that n
// still owns key.
func (w *Worker) rangeOK(n *bufferNode, key uint64) bool {
	if n.dead() {
		return false
	}
	if n.lowKey != 0 && w.tree.compare(w.t, key, n.lowKey) < 0 {
		return false
	}
	if nx := n.next.Load(); nx != nil && w.tree.compare(w.t, key, nx.lowKey) >= 0 {
		return false
	}
	return true
}

// MaxValue bounds direct 8 B keys and values: the top two bits tag
// indirection pointers (blobs) and probes, so recovery can tell payload
// from pointer unambiguously. Larger payloads go through
// UpsertLargeValue.
const MaxValue = 1<<62 - 1

// Upsert inserts or updates a fixed 8 B key/value pair. key must be in
// [1, MaxValue]; value must be in [1, MaxValue] (0 is the tombstone —
// use Delete).
func (w *Worker) Upsert(key, value uint64) error {
	if err := w.writableFixed("Upsert"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: Upsert: %w", ErrZeroKey)
	}
	if key > MaxValue {
		return fmt.Errorf("core: key %#x outside [1, MaxValue]", key)
	}
	if value == Tombstone {
		return fmt.Errorf("core: value 0 is the tombstone; use Delete")
	}
	if value > MaxValue {
		return fmt.Errorf("core: value %#x exceeds MaxValue; use UpsertLargeValue", value)
	}
	w.tree.ctr.upserts.Add(1)
	w.tree.pool.AddUserBytes(16)
	start := w.t.Now()
	w.beginSpan(obs.OpPut)
	err := w.upsertWord(key, value)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.insertLat, start)
	}
	w.tree.tracer.Emit(obs.EvInsert, w.id, w.t.Now(), key, value)
	return err
}

// Delete inserts a tombstone for key (§4.2 treats deletion as an
// insertion so it benefits from buffering and logging identically).
func (w *Worker) Delete(key uint64) error {
	if err := w.writableFixed("Delete"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: Delete: %w", ErrZeroKey)
	}
	w.tree.ctr.deletes.Add(1)
	w.tree.pool.AddUserBytes(16)
	start := w.t.Now()
	// Deletes attribute as OpPut: a delete is a tombstone upsert and
	// walks the identical critical path.
	w.beginSpan(obs.OpPut)
	err := w.upsertWord(key, Tombstone)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.insertLat, start)
	}
	w.tree.tracer.Emit(obs.EvDelete, w.id, w.t.Now(), key, 0)
	return err
}

func (w *Worker) upsertWord(key, value uint64) error {
	tr := w.tree
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	var mergeCandidate *bufferNode
	for {
		attemptVT := w.t.Now()
		m := w.segBegin()
		n := tr.findBuffer(w.t, key)
		v, ok := n.tryLock()
		if !ok {
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, key) {
			n.unlock(v)
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			continue
		}
		w.segEnd(obs.SegTraverse, m)
		underfull, err := w.upsertLocked(n, key, value)
		n.unlock(v)
		if err != nil {
			return err
		}
		if underfull {
			mergeCandidate = n
		}
		break
	}
	if mergeCandidate != nil {
		w.tryMerge(mergeCandidate)
	}
	tr.maybeTriggerGC()
	return nil
}

// upsertLocked performs the §3.2 insert flow with n's version lock
// held. It reports whether the leaf ended a flush underfull (merge
// candidate).
func (w *Worker) upsertLocked(n *bufferNode, key, value uint64) (underfull bool, err error) {
	tr := w.tree
	tr.heat.Touch(uint64(n.leaf), true)
	m := w.segBegin()
	defer w.segCloseBuffer(m, w.segAcc[obs.SegWAL], w.segAcc[obs.SegTrigger])
	pos, eb, _ := unpackHdr(n.hdr.Load())
	epoch := uint16(tr.epoch.Load())

	// In-buffer upsert: an unflushed slot already holds this key.
	for i := 0; i < pos; i++ {
		if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
			if err := w.appendLog(key, value); err != nil {
				return false, err
			}
			n.slots[2*i+1].Store(value)
			eb = eb&^(1<<uint(i)) | epoch<<uint(i)
			n.hdr.Store(packHdr(pos, eb, false))
			return false, nil
		}
	}

	if pos >= n.nbatch() {
		// Trigger write (§3.3): the batch — every buffered KV plus the
		// incoming one — flushes to the leaf in one XPLine write. Under
		// write-conservative logging the incoming KV skips the WAL; it
		// is durable the moment the batch is.
		tr.ctr.triggerWrites.Add(1)
		if tr.opts.NaiveLogging && n.nbatch() > 0 {
			if err := w.appendLog(key, value); err != nil {
				return false, err
			}
		} else if n.nbatch() > 0 {
			tr.ctr.skippedLogs.Add(1)
		}
		batch := w.scratch[:0]
		for i := 0; i < pos; i++ {
			batch = append(batch, KV{n.slotKey(i), n.slotVal(i)})
		}
		batch = append(batch, KV{key, value})
		w.scratch = batch
		tm := w.segBegin()
		valid, err := w.leafBatchInsert(n, batch)
		w.segEnd(obs.SegTrigger, tm)
		if err != nil {
			return false, err
		}
		// Slots remain as a read cache; refresh any copy of the
		// trigger key so reads cannot see a stale cached value.
		for i := 0; i < n.nbatch(); i++ {
			if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
				n.slots[2*i+1].Store(value)
			}
		}
		n.hdr.Store(packHdr(0, eb, false))
		return valid < LeafSlots/2 && n != tr.head, nil
	}

	// Normal buffered insert: WAL first, then the slot (§3.2).
	if err := w.appendLog(key, value); err != nil {
		return false, err
	}
	n.setSlot(pos, key, value)
	// Purge stale cached copies from earlier flush rounds: slots beyond
	// pos may hold an older version (even a tombstone) of this key at a
	// HIGHER index, which a later round's overwrites could leave
	// shadowing the leaf's newer value.
	for i := pos + 1; i < n.nbatch(); i++ {
		if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, key) == 0 {
			n.setSlot(i, 0, 0)
		}
	}
	eb = eb&^(1<<uint(pos)) | epoch<<uint(pos)
	n.hdr.Store(packHdr(pos+1, eb, false))
	return false, nil
}

// appendLog writes one WAL entry to the current-epoch log.
func (w *Worker) appendLog(key, value uint64) error {
	tr := w.tree
	e := tr.epoch.Load()
	ts := tr.clock.Now(w.socket)
	m := w.segBegin()
	_, err := w.logs[e].Append(w.t, wal.Entry{Key: key, Value: value, Timestamp: ts})
	w.segEnd(obs.SegWAL, m)
	if err != nil {
		return err
	}
	tr.logBytes.Add(wal.EntrySize)
	if n := tr.ctr.loggedWrites.Add(1); n%512 == 0 {
		tr.notePeakLog()
	}
	return nil
}

// Lookup finds the value for a fixed 8 B key.
func (w *Worker) Lookup(key uint64) (uint64, bool) {
	w.tree.ctr.lookups.Add(1)
	start := w.t.Now()
	w.beginSpan(obs.OpGet)
	v, ok := w.lookupWord(key)
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(w.tree.met.lookupLat, start)
	}
	found := ok && v != Tombstone
	var fw uint64
	if found {
		fw = 1
	}
	w.tree.tracer.Emit(obs.EvLookup, w.id, w.t.Now(), key, fw)
	if !found {
		return 0, false
	}
	return v, true
}

func (w *Worker) lookupWord(key uint64) (uint64, bool) {
	tr := w.tree
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	for {
		attemptVT := w.t.Now()
		m := w.segBegin()
		if val, found, ok := w.lookupAttempt(key); ok {
			// The whole successful pass — routing, buffer scan, leaf
			// search — is traversal for a read.
			w.segEnd(obs.SegTraverse, m)
			return val, found
		}
		tr.crashAbort()
		tr.ctr.retries.Add(1)
		w.t.Rewind(attemptVT)
		w.t.Advance(conflictPenaltyNS)
		w.segRetry()
		runtime.Gosched()
	}
}

// lookupAttempt is one optimistic lookup pass; ok is false when the
// version changed underneath and the caller must retry.
func (w *Worker) lookupAttempt(key uint64) (val uint64, found, ok bool) {
	tr := w.tree
	n := tr.findBuffer(w.t, key)
	ver, clean := n.beginRead()
	if !clean {
		return 0, false, false
	}
	if !w.rangeOK(n, key) {
		return 0, false, false
	}
	// Buffer scan, left to right: the leftmost match is the newest
	// version (§4.3).
	w.t.Advance(int64(n.nbatch()) * w.t.CostDRAM())
	for i := 0; i < n.nbatch(); i++ {
		sk := n.slotKey(i)
		if sk == 0 || tr.compare(w.t, sk, key) != 0 {
			continue
		}
		v := n.slotVal(i)
		if !n.validateRead(ver) {
			return 0, false, false
		}
		tr.ctr.bufferHits.Add(1)
		tr.heat.Touch(uint64(n.leaf), false)
		return v, true, true
	}
	// Leaf search: bitmap + fingerprints in the header cacheline
	// filter the PM reads (§4.1).
	v, f := w.leafSearch(n.leaf, key)
	if !n.validateRead(ver) {
		return 0, false, false
	}
	tr.heat.Touch(uint64(n.leaf), false)
	return v, f, true
}

// ScanEntry is one range-query result in word form.
type ScanEntry = KV

// Scan collects up to max live entries with key ≥ start in ascending
// order into out, returning the count (§4.3: traverse successive buffer
// and leaf nodes, buffered entries win).
func (w *Worker) Scan(start uint64, max int, out []KV) int {
	tr := w.tree
	tr.ctr.scans.Add(1)
	startVT := w.t.Now()
	defer func() {
		if w.mh != nil {
			w.recordLat(tr.met.scanLat, startVT)
		}
		tr.tracer.Emit(obs.EvScan, w.id, w.t.Now(), start, uint64(max))
	}()
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	if max > len(out) {
		max = len(out)
	}
	count := 0
	var lastKey uint64
	haveLast := false
	n := tr.findBuffer(w.t, start)
	for n != nil && count < max {
		attemptVT := w.t.Now()
		ver, ok := n.beginRead()
		if !ok {
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			runtime.Gosched()
			continue
		}
		if n.dead() {
			// Merged away: re-route from the last progress point.
			from := start
			if haveLast {
				from = lastKey
			}
			n = tr.findBuffer(w.t, from)
			continue
		}
		ents, ok := w.collectNode(n, ver)
		if !ok {
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			continue
		}
		nx := n.next.Load()
		if !n.validateRead(ver) {
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			continue
		}
		for _, e := range ents {
			if count >= max {
				break
			}
			if tr.compare(w.t, e.Key, start) < 0 {
				continue
			}
			if haveLast && tr.compare(w.t, e.Key, lastKey) <= 0 {
				continue
			}
			out[count] = e
			count++
			lastKey = e.Key
			haveLast = true
		}
		n = nx
	}
	return count
}

// collectNode snapshots one node's live entries (leaf ∪ buffer, buffer
// wins, tombstones drop), sorted ascending. ok is false if the version
// changed mid-read.
func (w *Worker) collectNode(n *bufferNode, ver uint64) ([]KV, bool) {
	tr := w.tree
	tr.heat.Touch(uint64(n.leaf), false)
	var img leafImage
	prev := w.t.SetTag(pmem.TagLeaf)
	readLeaf(w.t, n.leaf, &img)
	w.t.SetTag(prev)

	type cand struct {
		kv       KV
		fromBuf  bool
		bufIndex int
	}
	cands := make([]cand, 0, LeafSlots+n.nbatch())
	for i := 0; i < n.nbatch(); i++ {
		if k := n.slotKey(i); k != 0 {
			cands = append(cands, cand{KV{k, n.slotVal(i)}, true, i})
		}
	}
	for i := 0; i < LeafSlots; i++ {
		if img.slotValid(i) {
			cands = append(cands, cand{KV{img.key(i), img.val(i)}, false, 0})
		}
	}
	if !n.validateRead(ver) {
		return nil, false
	}
	// Dedup: leftmost buffer entry wins, then leaf.
	ents := make([]KV, 0, len(cands))
	for i, c := range cands {
		dup := false
		for j := 0; j < i; j++ {
			if tr.compare(w.t, cands[j].kv.Key, c.kv.Key) == 0 {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if c.kv.Value == Tombstone {
			continue
		}
		// Buffer slots can cache keys that have since split to a
		// right sibling; range-filter them defensively.
		if c.fromBuf {
			if nx := n.next.Load(); nx != nil && tr.compare(w.t, c.kv.Key, nx.lowKey) >= 0 {
				continue
			}
		}
		ents = append(ents, c.kv)
	}
	sort.Slice(ents, func(i, j int) bool { return tr.compare(w.t, ents[i].Key, ents[j].Key) < 0 })
	w.t.Advance(int64(len(ents)) * w.t.CostDRAM() * 2) // DRAM sort cost
	return ents, true
}
