package core

import (
	"sync"
	"sync/atomic"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// Epoch-based reclamation for PM leaves.
//
// A merge unlinks a leaf from the persistent chain and the DRAM
// routing, but a lock-free reader that routed to the dead node before
// the unlink may still be probing the leaf's PM words. Freeing the
// leaf immediately would let the allocator hand the address to a
// concurrent split, whose writes would race the reader's probe with no
// seqlock to catch it (the reader validates the *buffer node's*
// version — a recycled PM address belongs to a different node).
//
// The classic fix: retired leaves go to a limbo list stamped with the
// current reclamation epoch; readers pin the epoch they entered at for
// the duration of one Get/Scan; a limbo entry is freed only once every
// pinned reader entered at a later epoch than the entry's stamp, which
// proves no reader can hold a route to it (the unlink happens-before
// the stamp's epoch advance, and a later pin happens-after it).
//
// Readers only ever delay reclamation — they never block writers and
// cannot deadlock; a parked reader just holds its entry cohort in
// limbo until it exits (see TestEpochReaderParked*).

// retiredLeaf is one unlinked-but-not-yet-freed PM leaf.
type retiredLeaf struct {
	addr  pmem.Addr
	epoch uint64
}

// epochManager is the tree's reclamation state. The global epoch
// starts at 1: a zero in a worker's pin slot means "not inside a
// read-side critical section".
type epochManager struct {
	global atomic.Uint64
	mu     sync.Mutex
	limbo  []retiredLeaf
}

func (em *epochManager) init() {
	em.global.Store(1)
}

// epochEnter pins w into the current reclamation epoch. The store/
// re-check loop closes the standard EBR race: if the global moved
// between our load and our store, a concurrent reclaimer may have
// scanned the pin slots without seeing us — re-pinning at the newer
// epoch guarantees any limbo entry it freed was unlinked before our
// (re-)pin, so our traversal cannot reach it.
func (tr *Tree) epochEnter(w *Worker) {
	g := &tr.reclaim.global
	for {
		e := g.Load()
		w.epochSlot.Store(e)
		if g.Load() == e {
			return
		}
	}
}

// epochExit unpins w.
func (tr *Tree) epochExit(w *Worker) {
	w.epochSlot.Store(0)
}

// retireLeaf moves an unlinked leaf to limbo and advances the epoch.
// With no pinned readers the leaf frees immediately (single-threaded
// behavior is identical to a direct Free); otherwise it waits out the
// readers that might still route to it.
func (tr *Tree) retireLeaf(addr pmem.Addr) {
	em := &tr.reclaim
	em.mu.Lock()
	em.limbo = append(em.limbo, retiredLeaf{addr, em.global.Load()})
	em.global.Add(1)
	tr.ctr.epochRetires.Add(1)
	tr.reclaimRetired(false)
	em.mu.Unlock()
}

// advanceEpoch bumps the epoch and reclaims what became safe — called
// by GC rounds so limbo drains even when no further merges happen.
func (tr *Tree) advanceEpoch() {
	em := &tr.reclaim
	em.mu.Lock()
	if len(em.limbo) > 0 {
		em.global.Add(1)
		tr.reclaimRetired(false)
	}
	em.mu.Unlock()
}

// drainEpochs force-frees every limbo entry. Only legal once no reader
// can be active again (Freeze: the tree must not be used afterwards).
func (tr *Tree) drainEpochs() {
	em := &tr.reclaim
	em.mu.Lock()
	tr.reclaimRetired(true)
	em.mu.Unlock()
}

// reclaimRetired frees the limbo entries no pinned reader can still
// route to: those stamped strictly below every nonzero pin slot. The
// caller holds em.mu.
func (tr *Tree) reclaimRetired(force bool) {
	em := &tr.reclaim
	if len(em.limbo) == 0 {
		return
	}
	min := em.global.Load()
	if !force {
		tok := tr.prof.Pre(obs.LockWorkers)
		tr.workersMu.Lock()
		tok = tr.prof.Acquired(obs.LockWorkers, tok)
		for _, wk := range tr.workers {
			if e := wk.epochSlot.Load(); e != 0 && e < min {
				min = e
			}
		}
		tr.workersMu.Unlock()
		tr.prof.Released(obs.LockWorkers, tok)
	}
	kept := em.limbo[:0]
	for _, r := range em.limbo {
		if !force && r.epoch >= min {
			kept = append(kept, r)
			continue
		}
		tr.alloc.Free(r.addr, LeafBytes)
		tr.ctr.epochReclaims.Add(1)
	}
	em.limbo = kept
}

// epochLimboLen reports the current limbo depth (tests, inspection).
func (tr *Tree) epochLimboLen() int {
	em := &tr.reclaim
	em.mu.Lock()
	defer em.mu.Unlock()
	return len(em.limbo)
}
