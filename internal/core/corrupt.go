package core

import (
	"fmt"

	"cclbtree/internal/pmem"
)

// CorruptError reports malformed persisted state found while recovering
// a tree: an address that points outside the pool, a cyclic or unsorted
// leaf list, a blob with an impossible length. Recovery returns it
// (wrapped in Open's error) instead of panicking, so callers — and the
// fuzzers that feed recovery arbitrary device images — can distinguish
// "this pool does not hold a valid tree" from a programming error.
type CorruptError struct {
	Struct string    // which on-PM structure ("superblock", "leaf list", "blob", ...)
	Addr   pmem.Addr // where, when address-specific (NilAddr otherwise)
	Detail string
}

func (e *CorruptError) Error() string {
	if e.Addr.IsNil() {
		return fmt.Sprintf("core: corrupt %s: %s", e.Struct, e.Detail)
	}
	return fmt.Sprintf("core: corrupt %s at %v: %s", e.Struct, e.Addr, e.Detail)
}

func corruptf(what string, a pmem.Addr, format string, args ...any) error {
	return &CorruptError{Struct: what, Addr: a, Detail: fmt.Sprintf(format, args...)}
}
