package core

import (
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentDisjointUpserts(t *testing.T) {
	tr, _ := newTestTree(t, Options{}, nil)
	const workers = 8
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			base := uint64(g*per + 1)
			for i := uint64(0); i < per; i++ {
				if err := w.Upsert(base+i, base+i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w := tr.NewWorker(0)
	for k := uint64(1); k <= workers*per; k++ {
		v, ok := w.Lookup(k)
		if !ok || v != k {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
	out := make([]KV, workers*per+1)
	if got := w.Scan(1, len(out), out); got != workers*per {
		t.Fatalf("scan %d of %d", got, workers*per)
	}
}

func TestConcurrentOverlappingUpserts(t *testing.T) {
	// All workers hammer the same small key space; last writer per key
	// is unknowable, but every key must hold SOME value a worker wrote
	// for it, and the structure must stay consistent.
	tr, _ := newTestTree(t, Options{}, nil)
	const workers = 6
	const space = 500
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(space) + 1)
				if err := w.Upsert(k, k*1000+uint64(g)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	w := tr.NewWorker(0)
	for k := uint64(1); k <= space; k++ {
		v, ok := w.Lookup(k)
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		if v/1000 != k || v%1000 >= workers {
			t.Fatalf("key %d has foreign value %d", k, v)
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr, w0 := newTestTree(t, Options{}, nil)
	const space = 2000
	for k := uint64(1); k <= space; k++ {
		_ = w0.Upsert(k, k)
	}
	stop := make(chan struct{})
	var wgWriters, wg sync.WaitGroup
	// Writers keep updating until told to stop.
	for g := 0; g < 3; g++ {
		wgWriters.Add(1)
		go func(g int) {
			defer wgWriters.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(space) + 1)
				_ = w.Upsert(k, k+uint64(1+i%7)*space)
			}
		}(g)
	}
	// Readers: every observed value must be k or k+j*space (a version
	// some writer produced).
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(space) + 1)
				v, ok := w.Lookup(k)
				if !ok {
					t.Errorf("key %d vanished", k)
					return
				}
				if v%space != k%space {
					t.Errorf("key %d read torn value %d", k, v)
					return
				}
			}
		}(g)
	}
	// Scanners: results must be sorted and within the key space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := tr.NewWorker(0)
		out := make([]KV, 100)
		rng := rand.New(rand.NewSource(300))
		for i := 0; i < 500; i++ {
			start := uint64(rng.Intn(space) + 1)
			n := w.Scan(start, 100, out)
			var prev uint64
			for j := 0; j < n; j++ {
				if out[j].Key < start || (j > 0 && out[j].Key <= prev) {
					t.Errorf("scan disorder at %d: %v", j, out[:n])
					return
				}
				prev = out[j].Key
			}
		}
	}()
	wg.Wait() // readers and scanners done
	close(stop)
	wgWriters.Wait()
	w := tr.NewWorker(0)
	for k := uint64(1); k <= space; k++ {
		if _, ok := w.Lookup(k); !ok {
			t.Fatalf("key %d lost after stress", k)
		}
	}
}

func TestConcurrentDeletesAndInserts(t *testing.T) {
	tr, w0 := newTestTree(t, Options{}, nil)
	const space = 1000
	for k := uint64(1); k <= space; k++ {
		_ = w0.Upsert(k, k)
	}
	var wg sync.WaitGroup
	// Each worker owns a residue class: deletes and reinserts its keys.
	const workers = 4
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			for round := 0; round < 6; round++ {
				for k := uint64(g + 1); k <= space; k += workers {
					_ = w.Delete(k)
				}
				for k := uint64(g + 1); k <= space; k += workers {
					_ = w.Upsert(k, k*10)
				}
			}
		}(g)
	}
	wg.Wait()
	w := tr.NewWorker(0)
	for k := uint64(1); k <= space; k++ {
		v, ok := w.Lookup(k)
		if !ok || v != k*10 {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentWithGCAndCrash(t *testing.T) {
	tr, _ := newTestTree(t, Options{ChunkBytes: 8192, THlog: 0.05}, nil)
	const workers = 4
	const per = 4000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := tr.NewWorker(g % tr.Pool().Sockets())
			base := uint64(g*per + 1)
			for i := uint64(0); i < per; i++ {
				_ = w.Upsert(base+i, base+i+7)
			}
		}(g)
	}
	wg.Wait()
	if tr.Counters().GCRuns == 0 {
		t.Fatal("GC never ran under concurrent load")
	}
	tr.Freeze()
	tr.Pool().Crash()
	tr2, _, err := Open(tr.Pool(), Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := tr2.NewWorker(0)
	for k := uint64(1); k <= workers*per; k++ {
		v, ok := w.Lookup(k)
		if !ok || v != k+7 {
			t.Fatalf("key %d after concurrent GC + crash: %d,%v", k, v, ok)
		}
	}
}

func TestCrashMidGC(t *testing.T) {
	// Start a GC round and freeze/crash while it is likely in flight.
	for trial := 0; trial < 10; trial++ {
		tr, w := newTestTree(t, Options{ChunkBytes: 4096, GC: GCOff}, nil)
		const n = 5000
		for i := uint64(1); i <= n; i++ {
			_ = w.Upsert(i, i)
		}
		tr.opts.GC = GCLocalityAware
		tr.startGC() // async; freeze races with the scan
		tr.Freeze()
		tr.Pool().Crash()
		tr2, _, err := Open(tr.Pool(), Options{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		w2 := tr2.NewWorker(0)
		for i := uint64(1); i <= n; i++ {
			v, ok := w2.Lookup(i)
			if !ok || v != i {
				t.Fatalf("trial %d: key %d after mid-GC crash: %d,%v", trial, i, v, ok)
			}
		}
	}
}
