package core

import (
	"bytes"
	"testing"

	"cclbtree/internal/pmem"
)

func TestInspectHealthyTree(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	for i := uint64(1); i <= 3000; i++ {
		_ = w.Upsert(i, i)
	}
	for i := uint64(1); i <= 3000; i += 5 {
		_ = w.Delete(i)
	}
	rep, err := Inspect(tr.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaves < 100 {
		t.Fatalf("leaves = %d", rep.Leaves)
	}
	if rep.ChainBrokenAt != -1 {
		t.Fatalf("healthy tree reported order violation at %d", rep.ChainBrokenAt)
	}
	if rep.LogEntries == 0 {
		t.Fatal("no WAL entries visible")
	}
	if rep.FenceEntries == 0 {
		t.Fatal("deletes should leave fence tombstones")
	}
	// Live + buffered must cover the survivors (buffered entries are
	// not in leaves yet, so live ≤ survivors).
	if rep.LiveEntries > 3000 {
		t.Fatalf("live entries %d exceed inserted keys", rep.LiveEntries)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("report rendered empty")
	}
}

func TestInspectDetectsOrderViolation(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	for i := uint64(1); i <= 1000; i++ {
		_ = w.Upsert(i, i)
	}
	// Corrupt a leaf deliberately: write a huge key into the second
	// leaf's first valid slot so it overlaps every successor.
	th := tr.Pool().NewThread(0)
	second := tr.head.next.Load()
	if second == nil {
		t.Skip("tree too small")
	}
	var img leafImage
	readLeaf(th, second.leaf, &img)
	for i := 0; i < LeafSlots; i++ {
		if img.slotValid(i) {
			th.Store(second.leaf.Add(int64(8*(leafSlotBase+2*i))), 1<<60)
			th.Persist(second.leaf.Add(int64(8*(leafSlotBase+2*i))), 8)
			break
		}
	}
	rep, err := Inspect(tr.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChainBrokenAt < 0 {
		t.Fatal("deliberate corruption not detected")
	}
}

func TestInspectRejectsEmptyPool(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 1 << 20, StrictPersist: true})
	if _, err := Inspect(pool); err == nil {
		t.Fatal("empty pool accepted")
	}
}
