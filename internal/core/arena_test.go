package core

import (
	"testing"

	"cclbtree/internal/pmem"
)

// arenaOpts places shard i of count on socket i%2 with a small chunk
// size (the test pools are 32 MB).
func arenaOpts(i, count int) Options {
	return Options{
		ChunkBytes: 16 << 10,
		HomeSocket: i % 2,
		ArenaIndex: i,
		ArenaCount: count,
	}
}

func TestArenaTreesIndependent(t *testing.T) {
	// Several arena-pinned trees on one pool behave like independent
	// stores: keys written to one never appear in another, and their
	// allocations never collide.
	pool := newTestPool(nil)
	const shards = 4
	trees := make([]*Tree, shards)
	workers := make([]*Worker, shards)
	for i := range trees {
		tr, err := New(pool, arenaOpts(i, shards))
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
		workers[i] = tr.NewWorker(tr.Options().HomeSocket)
	}
	const n = 2000
	for i, w := range workers {
		for k := uint64(1); k <= n; k++ {
			if err := w.Upsert(k, k*10+uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, w := range workers {
		for k := uint64(1); k <= n; k++ {
			v, ok := w.Lookup(k)
			if !ok || v != k*10+uint64(i) {
				t.Fatalf("shard %d: Lookup(%d) = %d,%v", i, k, v, ok)
			}
		}
	}
}

func TestArenaTreesCrashRecoverIndependently(t *testing.T) {
	// A whole-pool crash must be recoverable per arena: each shard's
	// recovery walks only its own superblock, leaf list and chunks, and
	// replays only its own WAL entries.
	pool := newTestPool(nil)
	const shards = 4
	trees := make([]*Tree, shards)
	for i := range trees {
		tr, err := New(pool, arenaOpts(i, shards))
		if err != nil {
			t.Fatal(err)
		}
		trees[i] = tr
	}
	// Odd count: with the default Nbatch=2 the final op stays buffered
	// (logged, unflushed), so every shard's recovery must replay at
	// least one WAL entry.
	const n = 3001
	for i, tr := range trees {
		w := tr.NewWorker(tr.Options().HomeSocket)
		for k := uint64(1); k <= n; k++ {
			if err := w.Upsert(k, k*7+uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tr := range trees {
		tr.Freeze()
	}
	pool.Crash()

	if cnt, err := ProbeArenaCount(pool); err != nil || cnt != shards {
		t.Fatalf("ProbeArenaCount = %d, %v; want %d", cnt, err, shards)
	}
	for i := 0; i < shards; i++ {
		tr, st, err := Open(pool, arenaOpts(i, shards), 2)
		if err != nil {
			t.Fatalf("shard %d recovery: %v", i, err)
		}
		if st.EntriesReplayed == 0 {
			t.Fatalf("shard %d: no WAL entries replayed; buffering was not exercised", i)
		}
		w := tr.NewWorker(tr.Options().HomeSocket)
		for k := uint64(1); k <= n; k++ {
			v, ok := w.Lookup(k)
			if !ok || v != k*7+uint64(i) {
				t.Fatalf("shard %d lost key %d after crash: %d,%v", i, k, v, ok)
			}
		}
		trees[i] = tr
	}
	// Recovered shards keep working — and stay disjoint.
	for i, tr := range trees {
		w := tr.NewWorker(tr.Options().HomeSocket)
		if err := w.Upsert(n+1, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range trees {
		w := tr.NewWorker(tr.Options().HomeSocket)
		if v, ok := w.Lookup(n + 1); !ok || v != uint64(i)+1 {
			t.Fatalf("shard %d: post-recovery write lost: %d,%v", i, v, ok)
		}
	}
}

func TestArenaPlacementMismatchRejected(t *testing.T) {
	// A pool carved into N arenas opened with the wrong placement must
	// fail loudly, not silently recover a slice of the data. Arena 0 of
	// any count starts at offset 0, so without the superblock placement
	// check an 8-shard pool opened as a single tree would "succeed" with
	// one eighth of the keys.
	pool := newTestPool(nil)
	tr, err := New(pool, arenaOpts(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	for k := uint64(1); k <= 100; k++ {
		if err := w.Upsert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Freeze()
	pool.Crash()
	if _, _, err := Open(pool, Options{ChunkBytes: 16 << 10}, 1); err == nil {
		t.Fatal("whole-device Open of a 4-arena pool succeeded")
	}
	if _, _, err := Open(pool, arenaOpts(0, 2), 1); err == nil {
		t.Fatal("arena 0/2 Open of a 4-arena pool succeeded")
	}
	if _, _, err := Open(pool, arenaOpts(0, 4), 1); err != nil {
		t.Fatalf("correct placement rejected: %v", err)
	}
}

func TestArenaOptionsValidated(t *testing.T) {
	pool := newTestPool(nil)
	if _, err := New(pool, Options{ArenaIndex: 3, ArenaCount: 2}); err == nil {
		t.Fatal("arena 3 of 2 accepted")
	}
	if _, err := New(pool, Options{ArenaIndex: -1, ArenaCount: 2}); err == nil {
		t.Fatal("negative arena index accepted")
	}
	if _, err := New(pool, Options{HomeSocket: 99}); err == nil {
		t.Fatal("home socket beyond the pool accepted")
	}
	if _, err := New(pool, Options{HomeSocket: -1}); err == nil {
		t.Fatal("negative home socket accepted")
	}
}

func TestProbeArenaCountEmptyPool(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 1 << 20, StrictPersist: true})
	if _, err := ProbeArenaCount(pool); err == nil {
		t.Fatal("probe of an empty pool succeeded")
	}
}

func TestArenaHomeSocketPlacement(t *testing.T) {
	// The pinning contract: a shard homed on socket 1 puts its head
	// leaf (and everything else) there.
	pool := newTestPool(nil)
	tr, err := New(pool, arenaOpts(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.head.leaf.Socket(); got != 1 {
		t.Fatalf("head leaf on socket %d, want 1", got)
	}
}
