package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickTreeEquivalence is the central property test: any random
// operation sequence applied to the tree and to a map must yield the
// same point and range results, across buffer configurations.
func TestQuickTreeEquivalence(t *testing.T) {
	f := func(seed int64, nbatchSel uint8) bool {
		nbatch := int(nbatchSel%5) + 1
		_, w := newTestTreeQ(t, Options{Nbatch: nbatch, ChunkBytes: 8 << 10})
		rng := rand.New(rand.NewSource(seed))
		ref := map[uint64]uint64{}
		const space = 400
		for op := 0; op < 3000; op++ {
			k := uint64(rng.Intn(space) + 1)
			switch rng.Intn(6) {
			case 0:
				_ = w.Delete(k)
				delete(ref, k)
			case 1:
				v, ok := w.Lookup(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			default:
				v := rng.Uint64()&MaxValue | 1
				_ = w.Upsert(k, v)
				ref[k] = v
			}
		}
		out := make([]KV, space+5)
		n := w.Scan(1, space+5, out)
		if n != len(ref) {
			return false
		}
		var prev uint64
		for i := 0; i < n; i++ {
			if out[i].Key <= prev || ref[out[i].Key] != out[i].Value {
				return false
			}
			prev = out[i].Key
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashRecoveryEquivalence extends the property across a power
// failure: the recovered tree must exactly match the model of the
// completed operations.
func TestQuickCrashRecoveryEquivalence(t *testing.T) {
	f := func(seed int64, threadsSel uint8) bool {
		tr, w := newTestTreeQ(t, Options{ChunkBytes: 8 << 10})
		rng := rand.New(rand.NewSource(seed))
		ref := map[uint64]uint64{}
		const space = 300
		nOps := 200 + rng.Intn(2500)
		for op := 0; op < nOps; op++ {
			k := uint64(rng.Intn(space) + 1)
			if rng.Intn(5) == 0 {
				_ = w.Delete(k)
				delete(ref, k)
			} else {
				v := rng.Uint64()&MaxValue | 1
				_ = w.Upsert(k, v)
				ref[k] = v
			}
		}
		tr.Freeze()
		tr.Pool().Crash()
		tr2, _, err := Open(tr.Pool(), Options{}, int(threadsSel%3)+1)
		if err != nil {
			return false
		}
		w2 := tr2.NewWorker(0)
		for k := uint64(1); k <= space; k++ {
			v, ok := w2.Lookup(k)
			wv, wok := ref[k]
			if ok != wok || (ok && v != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanWindowInvariants checks that arbitrary scan windows are
// sorted, in-range, duplicate-free, and complete.
func TestQuickScanWindowInvariants(t *testing.T) {
	_, w := newTestTreeQ(t, Options{})
	present := map[uint64]bool{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(10000) + 1)
		_ = w.Upsert(k, k)
		present[k] = true
	}
	f := func(start uint16, width uint8) bool {
		max := int(width%64) + 1
		out := make([]KV, max)
		n := w.Scan(uint64(start)+1, max, out)
		var prev uint64
		for i := 0; i < n; i++ {
			k := out[i].Key
			if k < uint64(start)+1 || (i > 0 && k <= prev) || !present[k] {
				return false
			}
			prev = k
		}
		// Completeness: if fewer than max results, there must be no
		// present key above the last result.
		if n < max {
			last := uint64(start)
			if n > 0 {
				last = out[n-1].Key
			}
			for k := range present {
				if k > last {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// newTestTreeQ builds a tree without *testing.T plumbing (quick.Check
// closures run concurrently with the suite).
func newTestTreeQ(t *testing.T, opts Options) (*Tree, *Worker) {
	t.Helper()
	tr, err := New(newTestPool(nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.NewWorker(0)
}
