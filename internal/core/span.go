package core

import "cclbtree/internal/obs"

// Critical-path span attribution (the second obs tier): each public
// op's virtual-time latency is partitioned into obs.Segment slices so
// a tail-latency number decomposes the way media bytes already do.
//
// Mechanics: beginSpan zeroes the worker's per-op accumulator; marked
// intervals (WAL append, trigger write, locked buffer section,
// successful traversal) add their virtual-time deltas to a segment,
// each minus the flush/fence time inside it — pmem.Thread accumulates
// those separately (FlushNS/FenceNS) and finishSpan carves them out as
// their own segments. Failed optimistic attempts contribute only the
// modeled conflict penalty, to lock wait (Rewind discards the rest, as
// it does for op latency). finishSpan computes the residual (sort
// cost, DRAM bookkeeping, merges) as SegOther and records every
// nonzero segment, so quantiles are per-occurrence and a given op's
// recorded segments sum to its recorded latency.
//
// All of it is worker-local state — no atomics, no allocation — and
// compiled out to one bool check when Options.Metrics is off.

// segMark snapshots the three clocks a segment interval is measured
// against: the virtual clock and the thread's cumulative flush/fence
// time.
type segMark struct {
	vt, flush, fence int64
}

// segBegin opens a marked interval.
func (w *Worker) segBegin() segMark {
	if !w.spans {
		return segMark{}
	}
	return segMark{w.t.Now(), w.t.FlushNS(), w.t.FenceNS()}
}

// segEnd closes a marked interval into seg, net of the flush/fence
// time that elapsed inside it.
func (w *Worker) segEnd(seg obs.Segment, m segMark) {
	if !w.spans {
		return
	}
	d := w.t.Now() - m.vt - (w.t.FlushNS() - m.flush) - (w.t.FenceNS() - m.fence)
	if d > 0 {
		w.segAcc[seg] += d
	}
}

// segEndExcl closes a marked interval into seg like segEnd, but also
// excludes excl — virtual time already attributed to another segment
// inside the interval (the lock-free lookup path records its epoch
// pin/recheck costs as SegValidate while the traversal mark is open).
func (w *Worker) segEndExcl(seg obs.Segment, m segMark, excl int64) {
	if !w.spans {
		return
	}
	d := w.t.Now() - m.vt - (w.t.FlushNS() - m.flush) - (w.t.FenceNS() - m.fence) - excl
	if d > 0 {
		w.segAcc[seg] += d
	}
}

// segCloseBuffer closes a locked buffer-node section into SegBuffer:
// the section's interval minus flush/fence and minus the WAL/trigger
// segments recorded within it (wal0/trig0 are those accumulators at
// section entry). Deferred with value arguments so the per-op path
// stays allocation-free.
func (w *Worker) segCloseBuffer(m segMark, wal0, trig0 int64) {
	if !w.spans {
		return
	}
	d := w.t.Now() - m.vt - (w.t.FlushNS() - m.flush) - (w.t.FenceNS() - m.fence)
	d -= (w.segAcc[obs.SegWAL] - wal0) + (w.segAcc[obs.SegTrigger] - trig0)
	if d > 0 {
		w.segAcc[obs.SegBuffer] += d
	}
}

// segRetry attributes one failed optimistic attempt to lock wait. The
// attempt's own elapsed time was rewound away (see conflictPenaltyNS);
// the modeled penalty is what the conflict cost.
func (w *Worker) segRetry() {
	if w.spans {
		w.segAcc[obs.SegLockWait] += conflictPenaltyNS
	}
}

// beginSpan opens span attribution for one op. It re-zeroes the
// accumulator unconditionally, so residue from an error-path op that
// never reached finishSpan (or from an unattributed Scan's stall sync)
// cannot leak into this op.
func (w *Worker) beginSpan(op obs.OpClass) {
	if !w.spans {
		return
	}
	w.curOp = op
	w.segAcc = [obs.NumSegments]int64{}
	w.segV0 = w.t.Now()
	w.segF0 = w.t.FlushNS()
	w.segE0 = w.t.FenceNS()
}

// finishSpan closes the op: flush/fence segments from the thread's
// cumulative counters, SegOther as the unattributed residual (clamped
// at zero — Rewind can leave total marginally below the attributed
// sum), then one histogram sample per nonzero segment. With the tracer
// enabled it also emits one EvSegment duration event per segment, laid
// end to end from the op's start (the segments partition the op, so
// the concatenation is the op's timeline up to interval reordering).
func (w *Worker) finishSpan() {
	if !w.spans {
		return
	}
	total := w.t.Now() - w.segV0
	if fl := w.t.FlushNS() - w.segF0; fl > 0 {
		w.segAcc[obs.SegFlush] = fl
	}
	if fe := w.t.FenceNS() - w.segE0; fe > 0 {
		w.segAcc[obs.SegFence] = fe
	}
	var sum int64
	for s := obs.Segment(0); s < obs.SegOther; s++ {
		sum += w.segAcc[s]
	}
	if rest := total - sum; rest > 0 {
		w.segAcc[obs.SegOther] = rest
	}
	met := w.tree.met
	emit := w.tree.tracer.Enabled()
	cursor := w.segV0
	for s := obs.Segment(0); s < obs.NumSegments; s++ {
		d := w.segAcc[s]
		if d <= 0 {
			continue
		}
		w.mh.Observe(met.span[w.curOp][s], uint64(d))
		if emit {
			w.tree.tracer.Emit(obs.EvSegment, w.id, cursor, obs.PackSpan(w.curOp, s), uint64(d))
		}
		cursor += d
	}
}
