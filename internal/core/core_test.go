package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cclbtree/internal/pmem"
)

func newTestPool(mut func(*pmem.Config)) *pmem.Pool {
	cfg := pmem.Config{
		Sockets:        2,
		DIMMsPerSocket: 2,
		DeviceBytes:    32 << 20,
		XPBufferLines:  16,
		CacheLines:     1 << 13,
		StrictPersist:  true,
	}
	if mut != nil {
		mut(&cfg)
	}
	return pmem.NewPool(cfg)
}

func newTestTree(t *testing.T, opts Options, mut func(*pmem.Config)) (*Tree, *Worker) {
	t.Helper()
	if opts.ChunkBytes == 0 {
		opts.ChunkBytes = 16 << 10
	}
	pool := newTestPool(mut)
	tr, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.NewWorker(0)
}

func TestUpsertLookupRoundtrip(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 1000; i++ {
		if err := w.Upsert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 1000; i++ {
		v, ok := w.Lookup(i)
		if !ok || v != i*3 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := w.Lookup(5000); ok {
		t.Fatal("found absent key")
	}
}

func TestKeyZeroRejected(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	if err := w.Upsert(0, 1); err == nil {
		t.Fatal("key 0 accepted")
	}
	if err := w.Upsert(1, Tombstone); err == nil {
		t.Fatal("tombstone value accepted via Upsert")
	}
}

func TestUpdateOverwrites(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 200; i++ {
		_ = w.Upsert(i, i)
	}
	for i := uint64(1); i <= 200; i++ {
		_ = w.Upsert(i, i+1000)
	}
	for i := uint64(1); i <= 200; i++ {
		v, ok := w.Lookup(i)
		if !ok || v != i+1000 {
			t.Fatalf("Lookup(%d) = %d,%v after update", i, v, ok)
		}
	}
}

func TestDelete(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 500; i++ {
		_ = w.Upsert(i, i)
	}
	for i := uint64(1); i <= 500; i += 2 {
		if err := w.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 500; i++ {
		_, ok := w.Lookup(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", i, ok, want)
		}
	}
	// Re-insert deleted keys.
	for i := uint64(1); i <= 500; i += 2 {
		_ = w.Upsert(i, i*7)
	}
	for i := uint64(1); i <= 500; i += 2 {
		v, ok := w.Lookup(i)
		if !ok || v != i*7 {
			t.Fatalf("reinsert Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestScanSortedAndComplete(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	// Random insertion order.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	for _, p := range perm {
		_ = w.Upsert(uint64(p+1), uint64(p+1))
	}
	out := make([]KV, 100)
	n := w.Scan(500, 100, out)
	if n != 100 {
		t.Fatalf("Scan returned %d", n)
	}
	for i, kv := range out[:n] {
		want := uint64(500 + i)
		if kv.Key != want || kv.Value != want {
			t.Fatalf("scan[%d] = %+v, want key %d", i, kv, want)
		}
	}
	// Scan past the end.
	n = w.Scan(1995, 100, out)
	if n != 6 {
		t.Fatalf("tail scan returned %d, want 6", n)
	}
}

func TestScanSeesBufferedUpdatesAndSkipsTombstones(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 100; i++ {
		_ = w.Upsert(i, i)
	}
	// Buffered (likely unflushed) updates and deletes.
	_ = w.Upsert(50, 5000)
	_ = w.Delete(51)
	out := make([]KV, 10)
	n := w.Scan(49, 5, out)
	if n != 5 {
		t.Fatalf("scan n=%d", n)
	}
	if out[0].Key != 49 || out[1].Key != 50 || out[1].Value != 5000 {
		t.Fatalf("scan head wrong: %+v", out[:2])
	}
	if out[2].Key != 52 {
		t.Fatalf("tombstoned key not skipped: %+v", out[2])
	}
}

func TestWriteConservativeLoggingRatio(t *testing.T) {
	// With Nbatch = 2, logs = K·Nbatch/(Nbatch+1): one in three inserts
	// is an unlogged trigger write (§3.3).
	tr, w := newTestTree(t, Options{Nbatch: 2, GC: GCOff}, nil)
	const k = 3000
	for i := uint64(1); i <= k; i++ {
		// Same buffer node rarely: use spread keys so triggers happen.
		_ = w.Upsert(i, i)
	}
	c := tr.Counters()
	if c.TriggerWrites == 0 {
		t.Fatal("no trigger writes")
	}
	ratio := float64(c.LoggedWrites) / float64(c.Upserts)
	if ratio < 0.5 || ratio > 0.85 {
		t.Fatalf("logged ratio %.2f, want ≈ 2/3", ratio)
	}
	if c.SkippedLogs != c.TriggerWrites {
		t.Fatalf("skipped %d, triggers %d", c.SkippedLogs, c.TriggerWrites)
	}
}

func TestNaiveLoggingLogsEverything(t *testing.T) {
	tr, w := newTestTree(t, Options{Nbatch: 2, NaiveLogging: true, GC: GCOff}, nil)
	const k = 1000
	for i := uint64(1); i <= k; i++ {
		_ = w.Upsert(i, i)
	}
	c := tr.Counters()
	if c.LoggedWrites != c.Upserts {
		t.Fatalf("naive logging logged %d of %d", c.LoggedWrites, c.Upserts)
	}
}

func TestBaseModeNoBufferNoLog(t *testing.T) {
	tr, w := newTestTree(t, Options{Nbatch: -1, GC: GCOff}, nil)
	for i := uint64(1); i <= 1000; i++ {
		_ = w.Upsert(i, i)
	}
	c := tr.Counters()
	if c.LoggedWrites != 0 {
		t.Fatalf("base mode logged %d", c.LoggedWrites)
	}
	if c.TriggerWrites != c.Upserts {
		t.Fatalf("base mode: every insert must flush (%d vs %d)", c.TriggerWrites, c.Upserts)
	}
	for i := uint64(1); i <= 1000; i++ {
		if v, ok := w.Lookup(i); !ok || v != i {
			t.Fatalf("base Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestBufferHitsServeReads(t *testing.T) {
	tr, w := newTestTree(t, Options{Nbatch: 4, GC: GCOff}, nil)
	for i := uint64(1); i <= 1000; i++ {
		_ = w.Upsert(i, i)
	}
	// Updates of existing keys never split, so their buffered copies
	// stay cached and must serve subsequent reads without touching PM.
	for i := uint64(1); i <= 100; i++ {
		_ = w.Upsert(i*7, i*7+1)
	}
	before := tr.Counters().BufferHits
	hits := 0
	for i := uint64(1); i <= 100; i++ {
		if v, ok := w.Lookup(i * 7); ok && v == i*7+1 {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("lost updates: %d/100", hits)
	}
	if got := tr.Counters().BufferHits - before; got < 50 {
		t.Fatalf("only %d of 100 lookups served from buffer nodes", got)
	}
}

func TestSplitsAndLeafCount(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	const n = 5000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	c := tr.Counters()
	if c.Splits == 0 {
		t.Fatal("no splits for 5000 keys")
	}
	if tr.LeafCount() < n/LeafSlots {
		t.Fatalf("leaf count %d too small", tr.LeafCount())
	}
	// All keys reachable by scan, in order, exactly once.
	out := make([]KV, n+10)
	got := w.Scan(1, n+10, out)
	if got != n {
		t.Fatalf("full scan found %d of %d", got, n)
	}
	for i := 0; i < got; i++ {
		if out[i].Key != uint64(i+1) {
			t.Fatalf("scan[%d] = %d", i, out[i].Key)
		}
	}
}

func TestMergeOnDeletes(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	leaves := tr.LeafCount()
	for i := uint64(1); i <= n; i++ {
		if i%10 != 0 {
			_ = w.Delete(i)
		}
	}
	c := tr.Counters()
	if c.Merges == 0 {
		t.Fatal("no merges after mass deletion")
	}
	if tr.LeafCount() >= leaves {
		t.Fatalf("leaf count did not shrink: %d -> %d", leaves, tr.LeafCount())
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := w.Lookup(i)
		if want := i%10 == 0; ok != want {
			t.Fatalf("Lookup(%d) = %v, want %v", i, ok, want)
		}
		if ok && v != i {
			t.Fatalf("survivor value wrong: %d -> %d", i, v)
		}
	}
	out := make([]KV, n)
	got := w.Scan(1, n, out)
	if got != n/10 {
		t.Fatalf("scan after merge found %d, want %d", got, n/10)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	for _, nbatch := range []int{-1, 1, 2, 4} {
		nbatch := nbatch
		t.Run(fmt.Sprintf("nbatch=%d", nbatch), func(t *testing.T) {
			_, w := newTestTree(t, Options{Nbatch: nbatch, GC: GCOff}, nil)
			ref := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(42))
			const space = 3000
			for op := 0; op < 30000; op++ {
				k := uint64(rng.Intn(space) + 1)
				switch rng.Intn(10) {
				case 0, 1:
					_ = w.Delete(k)
					delete(ref, k)
				case 2:
					v, ok := w.Lookup(k)
					wv, wok := ref[k]
					if ok != wok || (ok && v != wv) {
						t.Fatalf("op %d: Lookup(%d) = %d,%v want %d,%v", op, k, v, ok, wv, wok)
					}
				default:
					v := rng.Uint64()&MaxValue | 1
					_ = w.Upsert(k, v)
					ref[k] = v
				}
			}
			// Final full verification, point and range.
			for k, v := range ref {
				got, ok := w.Lookup(k)
				if !ok || got != v {
					t.Fatalf("final Lookup(%d) = %d,%v want %d", k, got, ok, v)
				}
			}
			out := make([]KV, space+10)
			n := w.Scan(1, space+10, out)
			if n != len(ref) {
				t.Fatalf("scan found %d, model has %d", n, len(ref))
			}
			var prev uint64
			for i := 0; i < n; i++ {
				if out[i].Key <= prev {
					t.Fatalf("scan out of order at %d", i)
				}
				prev = out[i].Key
				if ref[out[i].Key] != out[i].Value {
					t.Fatalf("scan value mismatch at key %d", out[i].Key)
				}
			}
		})
	}
}

func TestGCLocalityPreservesData(t *testing.T) {
	tr, w := newTestTree(t, Options{ChunkBytes: 4096, THlog: 0.05}, nil)
	const n = 8000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	tr.WaitGC()
	if tr.Counters().GCRuns == 0 {
		t.Fatal("GC never triggered despite tiny chunks and low THlog")
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := w.Lookup(i)
		if !ok || v != i {
			t.Fatalf("after GC Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestGCReclaimsChunks(t *testing.T) {
	tr, w := newTestTree(t, Options{ChunkBytes: 4096, GC: GCOff}, nil)
	for i := uint64(1); i <= 4000; i++ {
		_ = w.Upsert(i, i)
	}
	before := tr.LogFootprintBytes()
	if before == 0 {
		t.Fatal("no log footprint")
	}
	tr.opts.GC = GCLocalityAware
	tr.ForceGC()
	after := tr.LogFootprintBytes()
	if after >= before {
		t.Fatalf("GC did not shrink logs: %d -> %d", before, after)
	}
}

func TestNaiveGCPreservesData(t *testing.T) {
	tr, w := newTestTree(t, Options{ChunkBytes: 4096, THlog: 0.05, GC: GCNaive}, nil)
	const n = 6000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	tr.WaitGC()
	if tr.Counters().GCRuns == 0 {
		t.Fatal("naive GC never ran")
	}
	for i := uint64(1); i <= n; i++ {
		v, ok := w.Lookup(i)
		if !ok || v != i {
			t.Fatalf("after naive GC Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestCountersSnapshot(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	_ = w.Upsert(1, 1)
	_ = w.Delete(1)
	_, _ = w.Lookup(1)
	w.Scan(1, 1, make([]KV, 1))
	c := tr.Counters()
	if c.Upserts != 1 || c.Deletes != 1 || c.Lookups != 1 || c.Scans != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
}

func TestMemoryUsageGrows(t *testing.T) {
	tr, w := newTestTree(t, Options{GC: GCOff}, nil)
	d0, p0 := tr.MemoryUsage()
	for i := uint64(1); i <= 3000; i++ {
		_ = w.Upsert(i, i)
	}
	d1, p1 := tr.MemoryUsage()
	if d1 <= d0 || p1 <= p0 {
		t.Fatalf("usage did not grow: dram %d->%d pm %d->%d", d0, d1, p0, p1)
	}
}

func TestXBIAmplificationBelowBase(t *testing.T) {
	// The headline claim: buffering + write-conservative logging yields
	// far less media traffic per user byte than direct leaf writes,
	// under a uniform random workload.
	runAmp := func(opts Options) float64 {
		pool := newTestPool(nil)
		opts.ChunkBytes = 64 << 10
		opts.GC = GCOff
		tr, err := New(pool, opts)
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		rng := rand.New(rand.NewSource(9))
		// Warm.
		const warm, run = 20000, 20000
		for i := 0; i < warm; i++ {
			_ = w.Upsert(uint64(rng.Intn(1<<20)+1), 7)
		}
		pool.ResetStats()
		for i := 0; i < run; i++ {
			_ = w.Upsert(uint64(rng.Intn(1<<20)+1), 9)
		}
		pool.DrainXPBuffers()
		return pool.Stats().XBIAmplification()
	}
	base := runAmp(Options{Nbatch: -1})
	ccl := runAmp(Options{Nbatch: 2})
	if ccl >= base {
		t.Fatalf("CCL XBI (%.1f) not below Base (%.1f)", ccl, base)
	}
}
