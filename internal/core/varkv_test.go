package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cclbtree/internal/pmem"
)

func newVarTree(t *testing.T) (*Tree, *Worker) {
	t.Helper()
	return newTestTree(t, Options{VarKV: true, ChunkBytes: 16 << 10}, func(c *pmem.Config) {
		c.DeviceBytes = 64 << 20
	})
}

func varKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func varVal(i int) []byte { return []byte(fmt.Sprintf("value-%d-%s", i, "payload")) }

func TestVarRoundtrip(t *testing.T) {
	_, w := newVarTree(t)
	for i := 0; i < 1000; i++ {
		if err := w.UpsertVar(varKey(i), varVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		v, ok := w.LookupVar(varKey(i))
		if !ok || !bytes.Equal(v, varVal(i)) {
			t.Fatalf("LookupVar(%d) = %q,%v", i, v, ok)
		}
	}
	if _, ok := w.LookupVar([]byte("missing")); ok {
		t.Fatal("found absent var key")
	}
}

func TestVarUpdateDelete(t *testing.T) {
	_, w := newVarTree(t)
	for i := 0; i < 300; i++ {
		_ = w.UpsertVar(varKey(i), varVal(i))
	}
	for i := 0; i < 300; i += 2 {
		_ = w.UpsertVar(varKey(i), []byte("updated"))
	}
	for i := 1; i < 300; i += 4 {
		_ = w.DeleteVar(varKey(i))
	}
	for i := 0; i < 300; i++ {
		v, ok := w.LookupVar(varKey(i))
		switch {
		case i%2 == 0:
			if !ok || string(v) != "updated" {
				t.Fatalf("key %d = %q,%v", i, v, ok)
			}
		case i%4 == 1:
			if ok {
				t.Fatalf("deleted key %d found", i)
			}
		default:
			if !ok || !bytes.Equal(v, varVal(i)) {
				t.Fatalf("key %d = %q,%v", i, v, ok)
			}
		}
	}
}

func TestVarScanLexicographic(t *testing.T) {
	_, w := newVarTree(t)
	keys := []string{"apple", "banana", "cherry", "date", "elderberry", "fig", "grape"}
	perm := rand.New(rand.NewSource(5)).Perm(len(keys))
	for _, i := range perm {
		_ = w.UpsertVar([]byte(keys[i]), []byte("v-"+keys[i]))
	}
	got := w.ScanVar([]byte("banana"), 4)
	want := []string{"banana", "cherry", "date", "elderberry"}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d: %v", len(got), got)
	}
	for i := range want {
		if string(got[i].Key) != want[i] || string(got[i].Value) != "v-"+want[i] {
			t.Fatalf("scan[%d] = %q/%q", i, got[i].Key, got[i].Value)
		}
	}
}

func TestVarRandomSizesAgainstModel(t *testing.T) {
	_, w := newVarTree(t)
	rng := rand.New(rand.NewSource(21))
	ref := map[string]string{}
	randBytes := func(lo, hi int) []byte {
		n := lo + rng.Intn(hi-lo+1)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return b
	}
	for op := 0; op < 4000; op++ {
		switch rng.Intn(10) {
		case 0:
			// Delete a random existing key.
			for k := range ref {
				_ = w.DeleteVar([]byte(k))
				delete(ref, k)
				break
			}
		default:
			k := randBytes(8, 128)
			v := randBytes(8, 128)
			_ = w.UpsertVar(k, v)
			ref[string(k)] = string(v)
		}
	}
	for k, v := range ref {
		got, ok := w.LookupVar([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("key %q = %q,%v want %q", k, got, ok, v)
		}
	}
	// Full ordered scan must equal the sorted model.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := w.ScanVar([]byte{0}, len(ref)+10)
	if len(got) != len(keys) {
		t.Fatalf("scan %d, model %d", len(got), len(keys))
	}
	for i, k := range keys {
		if string(got[i].Key) != k {
			t.Fatalf("scan[%d] = %q want %q", i, got[i].Key, k)
		}
	}
}

func TestVarRecovery(t *testing.T) {
	tr, w := newVarTree(t)
	for i := 0; i < 800; i++ {
		_ = w.UpsertVar(varKey(i), varVal(i))
	}
	for i := 0; i < 800; i += 5 {
		_ = w.DeleteVar(varKey(i))
	}
	tr.Freeze()
	tr.Pool().Crash()
	tr2, _, err := Open(tr.Pool(), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Options().VarKV {
		t.Fatal("VarKV flag not recovered from superblock")
	}
	w2 := tr2.NewWorker(0)
	for i := 0; i < 800; i++ {
		v, ok := w2.LookupVar(varKey(i))
		if i%5 == 0 {
			if ok {
				t.Fatalf("deleted var key %d resurrected", i)
			}
			continue
		}
		if !ok || !bytes.Equal(v, varVal(i)) {
			t.Fatalf("var key %d after crash = %q,%v", i, v, ok)
		}
	}
}

func TestVarRejectsFixedAPIMix(t *testing.T) {
	_, w := newVarTree(t)
	if err := w.UpsertVar(nil, []byte("v")); err == nil {
		t.Fatal("empty var key accepted")
	}
	_, wFixed := newTestTree(t, Options{}, nil)
	if err := wFixed.UpsertVar([]byte("k"), []byte("v")); err == nil {
		t.Fatal("UpsertVar accepted on fixed-mode tree")
	}
}

func TestLargeValueIndirection(t *testing.T) {
	tr, w := newTestTree(t, Options{}, func(c *pmem.Config) { c.DeviceBytes = 64 << 20 })
	val := bytes.Repeat([]byte{0xab}, 512)
	for i := uint64(1); i <= 500; i++ {
		v := append(append([]byte(nil), val...), byte(i))
		if err := w.UpsertLargeValue(i, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 500; i++ {
		v, ok := w.LookupLargeValue(i)
		if !ok || len(v) != 513 || v[512] != byte(i) {
			t.Fatalf("large value %d wrong: len=%d ok=%v", i, len(v), ok)
		}
	}
	// Mixed: plain 8 B values decode as little-endian bytes.
	_ = w.Upsert(9999, 0x0102030405060708)
	v, ok := w.LookupLargeValue(9999)
	if !ok || v[0] != 0x08 || v[7] != 0x01 {
		t.Fatalf("inline decode wrong: %v %v", v, ok)
	}
	// Crash safety of indirection values.
	tr.Freeze()
	tr.Pool().Crash()
	tr2, _, err := Open(tr.Pool(), Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 500; i++ {
		v, ok := w2.LookupLargeValue(i)
		if !ok || len(v) != 513 || v[512] != byte(i) {
			t.Fatalf("large value %d lost after crash", i)
		}
	}
}

func TestEADRMode(t *testing.T) {
	// eADR: no flushes needed; stores survive crash; tree still works.
	pool := pmem.NewPool(pmem.Config{
		Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: 32 << 20, Mode: pmem.EADR, StrictPersist: true,
	})
	tr, err := New(pool, Options{ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	for i := uint64(1); i <= 3000; i++ {
		_ = w.Upsert(i, i*2)
	}
	for i := uint64(1); i <= 3000; i++ {
		v, ok := w.Lookup(i)
		if !ok || v != i*2 {
			t.Fatalf("eADR Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	tr.Freeze()
	pool.Crash() // everything survives under eADR
	tr2, _, err := Open(pool, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 3000; i++ {
		v, ok := w2.Lookup(i)
		if !ok || v != i*2 {
			t.Fatalf("eADR post-crash Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}
