package core

import (
	"errors"
	"testing"

	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// corruptWord persists one word of the crashed image.
func corruptWord(pool *pmem.Pool, off uint64, v uint64) {
	th := pool.NewThread(0)
	a := pmem.MakeAddr(0, off)
	th.Store(a, v)
	th.Persist(a, pmem.WordSize)
}

// crashedTree builds a small tree, crashes it, and returns the pool
// holding its persistent image.
func crashedTree(t *testing.T) *pmem.Pool {
	t.Helper()
	pool := fuzzPool()
	tr, err := New(pool, fuzzOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	for i := uint64(1); i <= 40; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.Freeze()
	pool.Crash()
	return pool
}

func TestRecoveryRejectsCorruptImage(t *testing.T) {
	cases := []struct {
		name string
		off  uint64 // superblock word offset
		v    uint64
	}{
		{"head leaf out of range", sbOffset + 8, ^uint64(0) >> 8},
		{"dir address out of range", sbOffset + 16, uint64(3) << 56},
		{"dir slots huge", sbOffset + 24, 1 << 50},
		{"chunk bytes unaligned", sbOffset + 32, 100},
		{"chunk bytes huge", sbOffset + 32, 1 << 40},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pool := crashedTree(t)
			corruptWord(pool, c.off, c.v)
			_, _, err := Open(pool, Options{}, 2)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open = %v, want *CorruptError", err)
			}
		})
	}
}

func TestRecoveryDetectsLeafCycle(t *testing.T) {
	pool := crashedTree(t)
	// Point the head leaf's next pointer back at itself.
	th := pool.NewThread(0)
	sb := pmem.MakeAddr(0, sbOffset)
	headLeaf := pmem.Addr(th.Load(sb.Add(8)))
	meta := th.Load(headLeaf)
	bitmap, _ := unpackLeafMeta(meta)
	corruptWord(pool, headLeaf.Offset(), packLeafMeta(bitmap, headLeaf))
	_, _, err := Open(pool, Options{}, 2)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open on cyclic leaf list = %v, want *CorruptError", err)
	}
}

func TestRecoveryCountsDroppedGarbageEntries(t *testing.T) {
	// Write a wal-check-valid record with an out-of-mode key word (a
	// probe-tagged word can never be appended) into a live chunk: the
	// scan must drop it, not replay or crash on it.
	pool := fuzzPool()
	tr, err := New(pool, fuzzOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	for i := uint64(1); i <= 5; i++ {
		if err := w.Upsert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.Freeze()
	pool.Crash()

	// Locate a registered chunk via the directory and plant the record
	// in its last slot.
	th := pool.NewThread(0)
	sb := pmem.MakeAddr(0, sbOffset)
	dirAddr := pmem.Addr(th.Load(sb.Add(16)))
	dirSlots := int(th.Load(sb.Add(24)))
	chunkBytes := int(th.Load(sb.Add(32)))
	chunks := readChunkDir(th, dirAddr, dirSlots)
	if len(chunks) == 0 {
		t.Fatal("no registered chunks")
	}
	slot := chunks[0].Add(int64(chunkBytes - chunkBytes%24 - 24))
	badKey := probeTag | 7
	th.Store(slot, badKey)
	th.Store(slot.Add(8), 1)
	th.Store(slot.Add(16), wal.EncodeTimestamp(badKey, 1, 99))
	th.Persist(slot, 24)

	_, st, err := Open(pool, Options{}, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.EntriesDropped == 0 {
		t.Fatal("garbage entry not counted as dropped")
	}
}
