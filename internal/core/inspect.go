package core

import (
	"fmt"
	"io"

	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// InspectReport summarizes the persistent state of a CCL-BTree pool —
// what a fsck-style tool can derive from the PM image alone.
type InspectReport struct {
	VarKV          bool
	ChunkBytes     int
	Leaves         int
	LiveEntries    int
	FenceEntries   int
	EmptyLeaves    int
	ChainBrokenAt  int // -1 when ordered correctly
	FillHistogram  [LeafSlots + 1]int
	RegisteredLogs int
	LogEntries     int
	PMLeafBytes    int64
}

// Inspect reads a pool's persistent image (no recovery, no mutation)
// and reports structural statistics plus an inter-leaf order check.
func Inspect(pool *pmem.Pool) (*InspectReport, error) {
	t := pool.NewThread(0)
	sb := pmem.MakeAddr(0, sbOffset)
	var sbw [sbWords]uint64
	t.ReadRange(sb, sbw[:])
	if sbw[0] != sbMagic {
		return nil, fmt.Errorf("core: no tree in pool (magic %#x)", sbw[0])
	}
	rep := &InspectReport{
		VarKV:         sbw[5]&1 != 0,
		ChunkBytes:    int(sbw[4]),
		ChainBrokenAt: -1,
	}
	chunks := readChunkDir(t, pmem.Addr(sbw[2]), int(sbw[3]))
	rep.RegisteredLogs = len(chunks)
	for _, c := range chunks {
		rep.LogEntries += len(wal.ReadEntriesInChunks(t, []pmem.Addr{c}, rep.ChunkBytes))
	}

	cur := pmem.Addr(sbw[1])
	var prevMax uint64
	havePrev := false
	idx := 0
	for !cur.IsNil() {
		var img leafImage
		readLeaf(t, cur, &img)
		live, fences := 0, 0
		var minK, maxK uint64
		first := true
		for i := 0; i < LeafSlots; i++ {
			if !img.slotValid(i) {
				continue
			}
			if img.val(i) == Tombstone {
				fences++
			} else {
				live++
			}
			k := img.key(i)
			if rep.VarKV {
				continue // byte keys: order check skipped here
			}
			if first || k < minK {
				minK = k
			}
			if k > maxK {
				maxK = k
			}
			first = false
		}
		rep.Leaves++
		rep.LiveEntries += live
		rep.FenceEntries += fences
		rep.FillHistogram[live+fences]++
		if live+fences == 0 {
			rep.EmptyLeaves++
		}
		if !rep.VarKV && !first {
			if havePrev && minK <= prevMax && rep.ChainBrokenAt < 0 {
				rep.ChainBrokenAt = idx
			}
			prevMax = maxK
			havePrev = true
		}
		cur = img.next()
		idx++
	}
	rep.PMLeafBytes = int64(rep.Leaves) * LeafBytes
	return rep, nil
}

// Fprint renders the report.
func (r *InspectReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "tree mode        : ")
	if r.VarKV {
		fmt.Fprintln(w, "variable-size KV (indirection keys)")
	} else {
		fmt.Fprintln(w, "fixed 8 B KV")
	}
	fmt.Fprintf(w, "leaves           : %d (%d bytes PM, %d empty)\n", r.Leaves, r.PMLeafBytes, r.EmptyLeaves)
	fmt.Fprintf(w, "live entries     : %d\n", r.LiveEntries)
	fmt.Fprintf(w, "fence tombstones : %d\n", r.FenceEntries)
	if r.ChainBrokenAt >= 0 {
		fmt.Fprintf(w, "ORDER VIOLATION  : leaf #%d overlaps its predecessor\n", r.ChainBrokenAt)
	} else {
		fmt.Fprintln(w, "leaf-chain order : OK")
	}
	fmt.Fprintf(w, "WAL chunks       : %d registered (%d bytes each), %d raw entries\n",
		r.RegisteredLogs, r.ChunkBytes, r.LogEntries)
	fmt.Fprintf(w, "leaf fill        :")
	for occ, n := range r.FillHistogram {
		if n > 0 {
			fmt.Fprintf(w, " %d:%d", occ, n)
		}
	}
	fmt.Fprintln(w)
}
