package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cclbtree/internal/pmem"
)

// applyOps is a test shorthand: apply ops and fail on error.
func applyOps(t *testing.T, w *Worker, ops []BatchOp) {
	t.Helper()
	if err := w.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchMatchesReference(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	const keySpace = 600
	for round := 0; round < 120; round++ {
		n := 1 + rng.Intn(48)
		ops := make([]BatchOp, 0, n)
		for i := 0; i < n; i++ {
			k := uint64(1 + rng.Intn(keySpace))
			if rng.Intn(5) == 0 {
				ops = append(ops, BatchOp{Key: k, Delete: true})
				delete(ref, k)
			} else {
				v := rng.Uint64()%MaxValue + 1
				ops = append(ops, BatchOp{Key: k, Value: v})
				ref[k] = v
			}
		}
		applyOps(t, w, ops)
	}
	for k := uint64(1); k <= keySpace; k++ {
		v, ok := w.Lookup(k)
		want, wantOK := ref[k]
		if ok != wantOK || (ok && v != want) {
			t.Fatalf("Lookup(%d) = %d,%v; want %d,%v", k, v, ok, want, wantOK)
		}
	}
	// The scan must agree too (exercises leaf contents, not just the
	// buffer-node read path).
	out := make([]KV, keySpace+1)
	n := w.Scan(1, len(out), out)
	if n != len(ref) {
		t.Fatalf("Scan found %d entries, reference holds %d", n, len(ref))
	}
	for _, kv := range out[:n] {
		if ref[kv.Key] != kv.Value {
			t.Fatalf("Scan: key %d = %d, want %d", kv.Key, kv.Value, ref[kv.Key])
		}
	}
}

func TestApplyBatchSameKeyLastWins(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	applyOps(t, w, []BatchOp{
		{Key: 10, Value: 1},
		{Key: 10, Value: 2},
		{Key: 11, Value: 5},
		{Key: 10, Value: 3},
		{Key: 11, Delete: true},
	})
	if v, ok := w.Lookup(10); !ok || v != 3 {
		t.Fatalf("Lookup(10) = %d,%v; want 3,true", v, ok)
	}
	if _, ok := w.Lookup(11); ok {
		t.Fatal("key 11 should have been deleted by the later op")
	}
}

func TestApplyBatchClusteredSplits(t *testing.T) {
	// Dense sequential batches force repeated coalesced trigger writes
	// and leaf splits mid-run.
	tr, w := newTestTree(t, Options{}, nil)
	const total = 4000
	var ops []BatchOp
	for i := 1; i <= total; i++ {
		ops = append(ops, BatchOp{Key: uint64(i), Value: uint64(i) * 2})
		if len(ops) == 64 {
			applyOps(t, w, ops)
			ops = ops[:0]
		}
	}
	applyOps(t, w, ops)
	for i := uint64(1); i <= total; i++ {
		if v, ok := w.Lookup(i); !ok || v != i*2 {
			t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
		}
	}
	c := tr.Counters()
	if c.BatchApplies == 0 || c.BatchedOps != total {
		t.Fatalf("counters: applies=%d batchedOps=%d, want batchedOps=%d",
			c.BatchApplies, c.BatchedOps, total)
	}
}

func TestApplyBatchVarKV(t *testing.T) {
	_, w := newTestTree(t, Options{VarKV: true}, nil)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }
	var ops []BatchOp
	for i := 0; i < 300; i++ {
		ops = append(ops, BatchOp{KeyBytes: key(i), ValueBytes: val(i)})
		if len(ops) == 32 {
			applyOps(t, w, ops)
			ops = ops[:0]
		}
	}
	applyOps(t, w, ops)
	applyOps(t, w, []BatchOp{
		{KeyBytes: key(7), ValueBytes: []byte("fresh")},
		{KeyBytes: key(8), Delete: true},
	})
	if v, ok := w.LookupVar(key(7)); !ok || string(v) != "fresh" {
		t.Fatalf("LookupVar(key-7) = %q,%v", v, ok)
	}
	if _, ok := w.LookupVar(key(8)); ok {
		t.Fatal("key-8 survived batched delete")
	}
	if v, ok := w.LookupVar(key(250)); !ok || string(v) != "val-250" {
		t.Fatalf("LookupVar(key-250) = %q,%v", v, ok)
	}
}

func TestApplyBatchValidation(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	cases := []struct {
		name string
		ops  []BatchOp
		want error
	}{
		{"zero key", []BatchOp{{Key: 1, Value: 1}, {Key: 0, Value: 2}}, ErrZeroKey},
		{"var op on fixed tree", []BatchOp{{KeyBytes: []byte("k"), ValueBytes: []byte("v")}}, ErrVarKVRequired},
	}
	for _, tc := range cases {
		if err := w.ApplyBatch(tc.ops); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Validation failures must have no side effects: op 1 above was
	// valid but preceded an invalid op.
	if _, ok := w.Lookup(1); ok {
		t.Fatal("rejected batch applied its valid prefix")
	}
	if c := tr.Counters(); c.Upserts != 0 || c.BatchApplies != 0 {
		t.Fatalf("rejected batches moved counters: %+v", c)
	}

	// Tombstone value without the Delete flag.
	if err := w.ApplyBatch([]BatchOp{{Key: 3, Value: Tombstone}}); err == nil {
		t.Fatal("tombstone value accepted without Delete")
	}

	tr.Freeze()
	if err := w.ApplyBatch([]BatchOp{{Key: 2, Value: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after Freeze: got %v, want ErrClosed", err)
	}

	_, wv := newTestTree(t, Options{VarKV: true}, nil)
	if err := wv.ApplyBatch([]BatchOp{{Key: 5, Value: 5}}); !errors.Is(err, ErrFixedKVRequired) {
		t.Fatalf("fixed op on VarKV tree: got %v, want ErrFixedKVRequired", err)
	}
	if err := wv.ApplyBatch([]BatchOp{{KeyBytes: []byte{}}}); !errors.Is(err, ErrZeroKey) {
		t.Fatalf("empty var key: got %v, want ErrZeroKey", err)
	}
}

func TestApplyBatchEmptyAndNil(t *testing.T) {
	_, w := newTestTree(t, Options{}, nil)
	if err := w.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyBatch([]BatchOp{}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchSurvivesRecovery checks the group commit's durability:
// everything applied before a crash is found after recovery.
func TestApplyBatchSurvivesRecovery(t *testing.T) {
	pool := newTestPool(nil)
	tr, err := New(pool, Options{ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.NewWorker(0)
	const total = 2000
	var ops []BatchOp
	for i := 1; i <= total; i++ {
		ops = append(ops, BatchOp{Key: uint64(i), Value: uint64(i) + 7})
		if len(ops) == 32 {
			applyOps(t, w, ops)
			ops = ops[:0]
		}
	}
	applyOps(t, w, ops)
	tr.Freeze()
	pool.Crash()
	tr2, _, err := Open(pool, Options{ChunkBytes: 16 << 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= total; i++ {
		if v, ok := w2.Lookup(i); !ok || v != i+7 {
			t.Fatalf("after recovery Lookup(%d) = %d,%v", i, v, ok)
		}
	}
}

// TestApplyBatchConcurrentWithGC races batched writers against per-op
// writers and forced GC rounds, exercising the epochGen re-log path,
// then crashes and verifies every acknowledged write survived.
func TestApplyBatchConcurrentWithGC(t *testing.T) {
	pool := newTestPool(func(c *pmem.Config) { c.DeviceBytes = 64 << 20 })
	tr, err := New(pool, Options{ChunkBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		rounds  = 60
		batchN  = 24
	)
	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := tr.NewWorker(wid % pool.Sockets())
			rng := rand.New(rand.NewSource(int64(wid) * 101))
			base := uint64(wid) * 1_000_000
			for r := 0; r < rounds; r++ {
				if r%3 == 2 {
					// Interleave the per-op path on the same key range.
					k := base + uint64(rng.Intn(rounds*batchN)) + 1
					if err := w.Upsert(k, k); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				ops := make([]BatchOp, batchN)
				for i := range ops {
					k := base + uint64(r*batchN+i) + 1
					ops[i] = BatchOp{Key: k, Value: k}
				}
				if err := w.ApplyBatch(ops); err != nil {
					t.Error(err)
					return
				}
			}
		}(wid)
	}
	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.ForceGC()
			}
		}
	}()
	wg.Wait()
	close(stop)
	gcWG.Wait()
	if t.Failed() {
		return
	}

	tr.Freeze()
	pool.Crash()
	tr2, _, err := Open(pool, Options{ChunkBytes: 16 << 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tr2.NewWorker(0)
	for wid := 0; wid < writers; wid++ {
		base := uint64(wid) * 1_000_000
		for r := 0; r < rounds; r++ {
			if r%3 == 2 {
				continue // per-op upserts hit keys batches also wrote
			}
			for i := 0; i < batchN; i++ {
				k := base + uint64(r*batchN+i) + 1
				if v, ok := w2.Lookup(k); !ok || v != k {
					t.Fatalf("worker %d key %d lost after crash: %d,%v", wid, k, v, ok)
				}
			}
		}
	}
	c := tr2.Counters()
	t.Logf("batchRelogs after %d forced GC interleavings: %d", c.GCRuns, c.BatchRelogs)
}
