package core

import (
	"fmt"
	"runtime"
	"sort"

	"cclbtree/internal/obs"
	"cclbtree/internal/wal"
)

// BatchOp is one staged write in a Worker.ApplyBatch group. In fixed
// mode Key/Value carry the 8 B words; in VarKV mode KeyBytes (and, for
// puts, ValueBytes) carry the pair and the words are materialized
// during apply. Delete marks a tombstone insertion in either mode.
type BatchOp struct {
	Key        uint64
	Value      uint64
	KeyBytes   []byte
	ValueBytes []byte
	Delete     bool
}

// ApplyBatch applies a group of writes with one WAL group commit
// (§3.3's per-op append + fence collapsed to one fence for the whole
// group) and per-leaf coalescing: the ops are sorted by key, every
// op's log record is appended under a single trailing fence, and runs
// of ops that route to the same buffer node are applied under one lock
// acquisition — N ops triggering a flush on one leaf cost one leaf
// write, not N.
//
// Crash atomicity stays per-op, exactly the durable-prefix contract:
// when ApplyBatch returns, every op in the group is durable; if the
// machine dies mid-call, each op independently either survives (its
// record is check-code-complete and newest for its key) or vanishes —
// the group is not transactional. Validation runs before any side
// effect, so a rejected batch leaves the tree untouched.
func (w *Worker) ApplyBatch(ops []BatchOp) error {
	tr := w.tree
	if len(ops) == 0 {
		return nil
	}
	for i := range ops {
		if err := w.validateBatchOp(&ops[i]); err != nil {
			return err
		}
	}
	if tr.opts.GC == GCNaive {
		tok := tr.prof.Pre(obs.LockSTW)
		tr.stw.RLock()
		tok = tr.prof.Acquired(obs.LockSTW, tok)
		defer tr.prof.Released(obs.LockSTW, tok)
		defer tr.stw.RUnlock()
		w.syncStall()
	}
	start := w.t.Now()
	w.beginSpan(obs.OpBatch)

	// Materialize word form (VarKV ops write their key/value blobs
	// here, before anything is logged) and account the ops.
	kvs := make([]KV, len(ops))
	for i := range ops {
		op := &ops[i]
		if tr.opts.VarKV {
			kw, err := w.blobs.write(w.t, op.KeyBytes)
			if err != nil {
				return err
			}
			kvs[i].Key = kw
			if op.Delete {
				kvs[i].Value = Tombstone
				tr.ctr.deletes.Add(1)
				tr.pool.AddUserBytes(uint64(len(op.KeyBytes) + 8))
			} else {
				vw, err := w.blobs.write(w.t, op.ValueBytes)
				if err != nil {
					return err
				}
				kvs[i].Value = vw
				tr.ctr.upserts.Add(1)
				tr.pool.AddUserBytes(uint64(len(op.KeyBytes) + len(op.ValueBytes)))
			}
		} else {
			kvs[i] = KV{Key: op.Key, Value: op.Value}
			if op.Delete {
				kvs[i].Value = Tombstone
				tr.ctr.deletes.Add(1)
			} else {
				tr.ctr.upserts.Add(1)
			}
			tr.pool.AddUserBytes(16)
		}
	}

	// Sort by key so the ops group into per-node runs. The stable sort
	// keeps a key's ops in submission order: the last write to a key
	// within the batch wins, both in DRAM (applied later) and at
	// recovery (stamped with a later ORDO tick below).
	sort.SliceStable(kvs, func(i, j int) bool {
		return tr.compare(w.t, kvs[i].Key, kvs[j].Key) < 0
	})
	w.t.Advance(int64(len(kvs)) * w.t.CostDRAM() * 2) // DRAM sort cost

	// Group commit. The generation counter is read BEFORE the epoch:
	// combined with the flip storing the epoch before bumping the
	// generation, an unchanged epochGen at slot-publish time proves the
	// records below went to a generation no completed-or-running GC
	// round reclaims (see Tree.epochGen).
	gen := tr.epochGen.Load()
	e := tr.epoch.Load()
	entries := make([]wal.Entry, len(kvs))
	for i, kv := range kvs {
		entries[i] = wal.Entry{Key: kv.Key, Value: kv.Value, Timestamp: tr.clock.Now(w.socket)}
	}
	m := w.segBegin()
	err := w.logs[e].AppendBatch(w.t, entries)
	w.segEnd(obs.SegWAL, m)
	if err != nil {
		return err
	}
	tr.logBytes.Add(int64(len(entries)) * wal.EntrySize)
	tr.ctr.loggedWrites.Add(uint64(len(entries)))
	tr.notePeakLog()

	if err := w.applySorted(kvs, gen, e, entries[0].Timestamp); err != nil {
		return err
	}

	tr.ctr.batchApplies.Add(1)
	tr.ctr.batchedOps.Add(uint64(len(ops)))
	w.finishSpan()
	if w.mh != nil {
		w.recordLat(tr.met.insertLat, start)
	}
	tr.tracer.Emit(obs.EvBatchApply, w.id, w.t.Now(), uint64(len(ops)), uint64(len(ops)-1))
	tr.maybeTriggerGC()
	return nil
}

// ValidateBatch runs ApplyBatch's pre-flight validation without any
// side effect. The sharded DB frontend uses it to reject a malformed
// multi-shard batch atomically: every shard's slice is validated before
// any shard's group commit starts, preserving the single-tree contract
// that a rejected batch leaves the store untouched.
func (w *Worker) ValidateBatch(ops []BatchOp) error {
	for i := range ops {
		if err := w.validateBatchOp(&ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// validateBatchOp rejects malformed ops before ApplyBatch has any side
// effect.
func (w *Worker) validateBatchOp(op *BatchOp) error {
	tr := w.tree
	if tr.closed.Load() {
		return fmt.Errorf("core: ApplyBatch: %w", ErrClosed)
	}
	if tr.opts.VarKV {
		if op.KeyBytes == nil && op.Key != 0 {
			return fmt.Errorf("core: ApplyBatch: fixed-word op: %w", ErrFixedKVRequired)
		}
		if len(op.KeyBytes) == 0 {
			return fmt.Errorf("core: ApplyBatch: %w", ErrZeroKey)
		}
		return nil
	}
	if op.KeyBytes != nil || op.ValueBytes != nil {
		return fmt.Errorf("core: ApplyBatch: byte-slice op: %w", ErrVarKVRequired)
	}
	if op.Key == 0 {
		return fmt.Errorf("core: ApplyBatch: %w", ErrZeroKey)
	}
	if op.Key > MaxValue {
		return fmt.Errorf("core: ApplyBatch: key %#x outside [1, MaxValue]", op.Key)
	}
	if !op.Delete {
		if op.Value == Tombstone {
			return fmt.Errorf("core: ApplyBatch: value 0 is the tombstone; set Delete")
		}
		if op.Value > MaxValue {
			return fmt.Errorf("core: ApplyBatch: value %#x exceeds MaxValue", op.Value)
		}
	}
	return nil
}

// applySorted walks the key-sorted batch, locking each run's buffer
// node once and applying every op of the run under that single lock
// acquisition. minTS is the smallest tick stamped on the group commit's
// records.
func (w *Worker) applySorted(kvs []KV, gen uint64, e uint32, minTS uint64) error {
	tr := w.tree
	i := 0
	for i < len(kvs) {
		attemptVT := w.t.Now()
		m := w.segBegin()
		n := tr.findBuffer(w.t, kvs[i].Key)
		v, ok := n.tryLock()
		if !ok {
			tr.crashAbort()
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, kvs[i].Key) {
			n.unlock(v)
			tr.ctr.retries.Add(1)
			w.t.Rewind(attemptVT)
			w.t.Advance(conflictPenaltyNS)
			w.segRetry()
			continue
		}
		w.segEnd(obs.SegTraverse, m)
		applied, underfull, err := w.applyRunLocked(n, kvs[i:], gen, e, minTS)
		n.unlock(v)
		if err != nil {
			return err
		}
		if underfull {
			w.tryMerge(n)
		}
		i += applied
	}
	return nil
}

// ownsKey reports, under n's lock, whether key is still below the right
// boundary of n's range. (The left boundary holds by construction: the
// caller checked rangeOK for the run's first, smallest key.)
func (w *Worker) ownsKey(n *bufferNode, key uint64) bool {
	nx := n.next.Load()
	return nx == nil || w.tree.compare(w.t, key, nx.lowKey) < 0
}

// applyRunLocked applies a maximal prefix of kvs (sorted; kvs[0] routed
// to n) with n's lock held, and reports how many ops it consumed. Ops
// that fall beyond a split boundary created mid-run are left for the
// caller to re-route. underfull reports whether a flush left the leaf a
// merge candidate.
func (w *Worker) applyRunLocked(n *bufferNode, kvs []KV, gen uint64, e uint32, minTS uint64) (applied int, underfull bool, err error) {
	tr := w.tree
	tr.heat.Touch(uint64(n.leaf), true)
	sm := w.segBegin()
	defer w.segCloseBuffer(sm, w.segAcc[obs.SegWAL], w.segAcc[obs.SegTrigger])
	relog := tr.epochGen.Load() != gen
	// A GC round flipped the epoch after the group commit (relog
	// above): its scan may already have passed this node — before the
	// batch's slots were published, so without copying them — and the
	// round reclaims the generation holding the batch's records at its
	// end. Or (check below) this leaf was flushed after the group
	// commit stamped its records — by another writer, a split, or an
	// earlier run of this batch routed here before a split — so the
	// leaf timestamp now gates the records as stale at recovery even
	// though these ops are not in the leaf. Either way the pre-assigned
	// records cannot back this run's slots: re-log the run into the
	// current generation with fresh ticks under the node lock — the
	// same logged-inside-the-lock guarantee the per-op path has. The
	// duplicates are harmless (recovery dedups by newest timestamp),
	// and the epoch is re-read inside the lock so the bits below claim
	// a generation no older than where the records actually live (the
	// protocol's benign race direction).
	if !relog {
		leafTS := w.t.Load(n.leaf.Add(int64(8 * leafTSWord)))
		relog = leafTS >= minTS
	}
	if relog {
		e = tr.epoch.Load()
		end := 0
		for end < len(kvs) && w.ownsKey(n, kvs[end].Key) {
			end++
		}
		fresh, err := w.relogRun(kvs[:end], e)
		if err != nil {
			return 0, false, err
		}
		if end > 0 {
			minTS = fresh
		}
	}
	// Leaf flushes this run stamp at most minTS-1 (stampLeafTS): the
	// entry check above guarantees the leaf's timestamp starts below
	// minTS, and capping every stamp keeps it there, so the group's
	// records — all ticked >= minTS — stay ahead of the leaf however
	// many flushes or splits the run triggers. Ops absorbed INTO those
	// flushes sit above the stamp too; recovery just replays them
	// through the normal insert path, which newest-tick dedup makes
	// idempotent. Without the cap every post-flush op would need its
	// record re-logged with a fresh tick — a second fence and a second
	// record for most ops of a split-heavy batch.
	if minTS > 0 {
		w.tsCap = minTS - 1
		defer func() { w.tsCap = 0 }()
	}
	pos, eb, _ := unpackHdr(n.hdr.Load())
	epoch := uint16(e)
	valid := -1 // live count reported by the last flush; -1 = no flush

	for applied < len(kvs) {
		kv := kvs[applied]
		if !w.ownsKey(n, kv.Key) {
			break // a split this run moved the key to the right sibling
		}

		// In-buffer update: an unflushed slot already holds this key.
		slot := -1
		for i := 0; i < pos; i++ {
			if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, kv.Key) == 0 {
				slot = i
				break
			}
		}
		if slot >= 0 {
			n.slots[2*slot+1].Store(kv.Value)
			eb = eb&^(1<<uint(slot)) | epoch<<uint(slot)
			applied++
			continue
		}

		if pos < n.nbatch() {
			// Buffered insert. The WAL record is already durable from
			// the group commit; only the slot publish remains. Purge
			// stale cached copies at higher indices (see upsertLocked).
			n.setSlot(pos, kv.Key, kv.Value, tr.keyFingerprint(w.t, kv.Key))
			for i := pos + 1; i < n.nbatch(); i++ {
				if sk := n.slotKey(i); sk != 0 && tr.compare(w.t, sk, kv.Key) == 0 {
					n.setSlot(i, 0, 0, 0)
				}
			}
			eb = eb&^(1<<uint(pos)) | epoch<<uint(pos)
			pos++
			applied++
			continue
		}

		// Coalesced trigger write (§3.3): the buffered KVs plus every
		// remaining consecutive in-range batch op, all in one flush.
		// This is where batching pays: N ops landing on this leaf share
		// one leaf write instead of N, and an overflowing run packs
		// into fresh leaves in one generalized split (splitLeaf) rather
		// than re-splitting the same right edge every half leaf.
		end := applied
		for end < len(kvs) && w.ownsKey(n, kvs[end].Key) {
			end++
		}
		run := kvs[applied:end]
		tr.ctr.triggerWrites.Add(1)
		batch := w.scratch[:0]
		for i := 0; i < pos; i++ {
			batch = append(batch, KV{n.slotKey(i), n.slotVal(i)})
		}
		batch = append(batch, run...)
		w.scratch = batch
		tm := w.segBegin()
		v, ferr := w.leafBatchInsert(n, batch)
		w.segEnd(obs.SegTrigger, tm)
		if ferr != nil {
			return applied, false, ferr
		}
		valid = v
		// Slots stay populated as a read cache; refresh stale copies of
		// the keys just flushed so reads cannot see older values.
		for i := 0; i < n.nbatch(); i++ {
			sk := n.slotKey(i)
			if sk == 0 {
				continue
			}
			for _, f := range run {
				if tr.compare(w.t, sk, f.Key) == 0 {
					n.slots[2*i+1].Store(f.Value)
				}
			}
		}
		pos = 0
		applied = end
	}

	n.hdr.Store(packHdr(pos, eb, false))
	underfull = valid >= 0 && valid < LeafSlots/2 && n != tr.head
	return applied, underfull, nil
}

// relogRun appends fresh copies of a run's records into generation e's
// log with one group commit, returning the smallest tick it stamped.
// Called under the run's node lock when the GC epoch moved — or the
// leaf was flushed — between ApplyBatch's group commit and the run's
// slot publish.
func (w *Worker) relogRun(kvs []KV, e uint32) (uint64, error) {
	tr := w.tree
	if len(kvs) == 0 {
		return 0, nil
	}
	entries := make([]wal.Entry, len(kvs))
	for i, kv := range kvs {
		entries[i] = wal.Entry{Key: kv.Key, Value: kv.Value, Timestamp: tr.clock.Now(w.socket)}
	}
	m := w.segBegin()
	err := w.logs[e].AppendBatch(w.t, entries)
	w.segEnd(obs.SegWAL, m)
	if err != nil {
		return 0, err
	}
	tr.logBytes.Add(int64(len(entries)) * wal.EntrySize)
	tr.ctr.loggedWrites.Add(uint64(len(entries)))
	tr.ctr.batchRelogs.Add(uint64(len(entries)))
	return entries[0].Timestamp, nil
}
