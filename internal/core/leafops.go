package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// leafSearch performs the §4.3 point lookup inside one PM leaf: read
// the 32 B header (one cacheline), filter candidate slots by validity
// bitmap and fingerprint, then read only matching slots.
func (w *Worker) leafSearch(leaf pmem.Addr, key uint64) (uint64, bool) {
	return w.leafSearchFP(leaf, key, w.tree.keyFingerprint(w.t, key))
}

// leafSearchFP is leafSearch with the key's fingerprint precomputed —
// the lock-free lookup path already derived it for the buffer probe.
func (w *Worker) leafSearchFP(leaf pmem.Addr, key uint64, target byte) (uint64, bool) {
	tr := w.tree
	prev := w.t.SetTag(pmem.TagLeaf)
	defer w.t.SetTag(prev)

	var hdr [leafHeaderLen]uint64
	w.t.ReadRange(leaf, hdr[:])
	bitmap, _ := unpackLeafMeta(hdr[leafMetaWord])
	for i := 0; i < LeafSlots; i++ {
		if bitmap&(1<<uint(i)) == 0 {
			continue
		}
		if byte(hdr[leafFPWord+i/8]>>(8*uint(i%8))) != target {
			continue
		}
		k := w.t.Load(leaf.Add(int64(8 * (leafSlotBase + 2*i))))
		if tr.compare(w.t, k, key) != 0 {
			continue
		}
		v := w.t.Load(leaf.Add(int64(8 * (leafSlotBase + 2*i + 1))))
		return v, true
	}
	return 0, false
}

// findLeafSlot locates key among the slots set in bitmap, using the
// fingerprint array of img to avoid comparisons.
func (w *Worker) findLeafSlot(img *leafImage, bitmap uint16, key uint64) int {
	target := w.tree.keyFingerprint(w.t, key)
	for i := 0; i < LeafSlots; i++ {
		if bitmap&(1<<uint(i)) == 0 || img.fp(i) != target {
			continue
		}
		if w.tree.compare(w.t, img.key(i), key) == 0 {
			return i
		}
	}
	return -1
}

// stampLeafTS returns the timestamp a leaf flush publishes: the current
// ORDO tick, capped by w.tsCap (the batch path — keeping the stamp
// below the group commit's record ticks so a mid-batch flush never
// gates the group's still-buffered records) and floored by the leaf's
// previous stamp. The floor keeps leaf timestamps monotone: a lower
// re-stamp could un-gate records an earlier flush already covered,
// and recovery's replay of a resurrected record is only provably
// idempotent while every newer record for its key still outranks it.
// Under-stamping is otherwise the safe direction — recovery replays a
// few extra records through the normal insert path and newest-tick
// dedup discards the stale ones.
func (w *Worker) stampLeafTS(prev uint64) uint64 {
	ts := w.tree.clock.Now(w.socket)
	if w.tsCap != 0 && ts > w.tsCap {
		ts = w.tsCap
	}
	if ts < prev {
		ts = prev
	}
	return ts
}

// leafBatchInsert applies batch (in order — later entries supersede
// earlier ones) to n's leaf with the §4.2 three-step protocol:
//
//  1. write new/updated KVs into slots, unsorted;
//  2. persist the modified data cachelines, one sfence;
//  3. update fingerprints, timestamp and bitmap(+next) and persist the
//     32 B metadata region with a single flush.
//
// New keys only occupy slots that were free under the pre-batch bitmap,
// so nothing becomes visible before step 3's atomic meta publish.
// Returns the leaf's valid-slot count afterwards. Splits when the batch
// does not fit (unless the caller pins next, in which case capacity was
// pre-checked).
func (w *Worker) leafBatchInsert(n *bufferNode, batch []KV) (int, error) {
	return w.leafBatchInsertNext(n, batch, pmem.NilAddr, false)
}

func (w *Worker) leafBatchInsertNext(n *bufferNode, batch []KV, newNext pmem.Addr, overrideNext bool) (int, error) {
	tr := w.tree
	var img leafImage
	prevTag := w.t.SetTag(pmem.TagLeaf)
	defer w.t.SetTag(prevTag)
	// Attribute the flush to leafbuf only when no task scope is active:
	// a GC- or recovery-driven flush stays charged to its task, so "gc"
	// media bytes remain visibly gc-caused (the nesting contract in
	// pmem.Scope).
	if w.t.Scope() == pmem.ScopeNone {
		defer w.t.PopScope(w.t.PushScope(pmem.ScopeLeafBuf))
	}
	tr.tracer.Emit(obs.EvFlushBatch, w.id, w.t.Now(), uint64(len(batch)), uint64(n.lowKey))
	readLeaf(w.t, n.leaf, &img)

	orig := img.bitmap()
	cur := orig
	var assigned uint16 // slots given to new keys in this batch
	dirtyLo, dirtyHi := leafWords, -1
	markDirty := func(word int) {
		if word < dirtyLo {
			dirtyLo = word
		}
		if word > dirtyHi {
			dirtyHi = word
		}
	}

	for _, kv := range batch {
		slot := w.findLeafSlot(&img, cur, kv.Key)
		if slot >= 0 {
			// In-place 8 B value update: failure-atomic, and the WAL
			// entry (or the batch's meta publish) makes the new value
			// win at recovery either way. Tombstones write value 0 but
			// KEEP the slot valid: the dead key stays physically
			// present as a fence, so the leaf's minimum key — which
			// recovery uses to rebuild routing — can never drift above
			// the leaf's true low key. Fences are compacted away by
			// splits and merges, whose timestamp bump makes dropping
			// them safe against any older WAL entry.
			img.setKV(slot, img.key(slot), kv.Value)
			markDirty(leafSlotBase + 2*slot + 1)
			continue
		}
		if kv.Value == Tombstone {
			continue // deleting an absent key
		}
		// New key: needs a slot free under the ORIGINAL bitmap.
		freeMask := ^uint32(orig) & ^uint32(assigned) & bitmapMask
		if freeMask == 0 {
			if overrideNext {
				return 0, fmt.Errorf("core: merge batch overflowed leaf (capacity pre-check bug)")
			}
			return w.splitLeaf(n, &img, batch)
		}
		slot = bits.TrailingZeros32(freeMask)
		img.setKV(slot, kv.Key, kv.Value)
		img.setFP(slot, tr.keyFingerprint(w.t, kv.Key))
		assigned |= 1 << uint(slot)
		cur |= 1 << uint(slot)
		markDirty(leafSlotBase + 2*slot)
		markDirty(leafSlotBase + 2*slot + 1)
	}

	// Step 1+2: data region.
	if dirtyHi >= 0 {
		for wd := dirtyLo; wd <= dirtyHi; wd++ {
			w.t.Store(n.leaf.Add(int64(8*wd)), img.words[wd])
		}
		w.t.Flush(n.leaf.Add(int64(8*dirtyLo)), 8*(dirtyHi-dirtyLo+1))
		w.t.Fence()
	}
	// Step 3: metadata region (fingerprints + timestamp + bitmap/next),
	// single cacheline, atomic publish through the meta word.
	next := img.next()
	if overrideNext {
		next = newNext
	}
	img.setTS(w.stampLeafTS(img.ts()))
	img.setMeta(packLeafMeta(cur, next))
	for wd := 0; wd < leafHeaderLen; wd++ {
		w.t.Store(n.leaf.Add(int64(8*wd)), img.words[wd])
	}
	w.t.Persist(n.leaf, leafHeaderLen*pmem.WordSize)
	// Report live (non-fence) occupancy for the merge heuristic.
	live := 0
	for i := 0; i < LeafSlots; i++ {
		if cur&(1<<uint(i)) != 0 && img.val(i) != Tombstone {
			live++
		}
	}
	return live, nil
}

// splitLeaf is the §4.2 logless split, generalized to mint as many
// right siblings as the in-flight batch needs. img is the current image
// of n's leaf and batch the in-flight insertions (in order — later
// entries supersede earlier ones). Every new leaf is written and
// persisted in full while still unreachable; one atomic meta write on
// the old leaf then both shrinks its bitmap and links the whole new
// chain, so a crash anywhere in between leaves the old structure
// untouched. The per-op path never inserts more than a buffer's worth
// at once and so always splits in two, exactly the paper's layout;
// ApplyBatch can route an arbitrarily long sorted run at one leaf, and
// packing the overflow into full leaves right away is what lets one
// coalesced trigger write absorb the whole run instead of re-splitting
// the same right edge every half-leaf of progress.
func (w *Worker) splitLeaf(n *bufferNode, img *leafImage, batch []KV) (int, error) {
	tr := w.tree
	// Structural writes override a leafbuf scope but not an active task
	// scope (gc, recovery).
	if s := w.t.Scope(); s == pmem.ScopeNone || s == pmem.ScopeLeafBuf {
		defer w.t.PopScope(w.t.PushScope(pmem.ScopeSplit))
	}

	type slotRef struct {
		kv   KV
		slot int // physical slot in the old leaf; -1 for batch-only keys
	}
	refs := make([]slotRef, 0, LeafSlots)
	for i := 0; i < LeafSlots; i++ {
		if img.slotValid(i) {
			refs = append(refs, slotRef{KV{img.key(i), img.val(i)}, i})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		return tr.compare(w.t, refs[i].kv.Key, refs[j].kv.Key) < 0
	})

	// Merge the batch over the live slots: sorted, unique, last write
	// wins. A tombstone for an absent key vanishes here (it would not
	// occupy a slot either); a tombstone for a live key keeps its entry
	// so the fence-compaction rules below see it.
	merged := make([]slotRef, len(refs))
	copy(merged, refs)
	for _, kv := range batch {
		j := sort.Search(len(merged), func(j int) bool {
			return tr.compare(w.t, merged[j].kv.Key, kv.Key) >= 0
		})
		if j < len(merged) && tr.compare(w.t, merged[j].kv.Key, kv.Key) == 0 {
			merged[j].kv.Value = kv.Value
			continue
		}
		if kv.Value == Tombstone {
			continue
		}
		merged = append(merged, slotRef{})
		copy(merged[j+1:], merged[j:])
		merged[j] = slotRef{kv, -1}
	}
	if len(merged) <= LeafSlots {
		return 0, fmt.Errorf("core: split of leaf with %d merged keys (no overflow)", len(merged))
	}
	// Split at the median of the LIVE keys — the paper's geometry, which
	// also leaves the old leaf just under half full so the post-split
	// merge pass packs settled neighbors together. Only a nearly-empty
	// leaf swamped by a large batch (no live median to cut at) falls
	// back to the median of the merged set.
	splitKey := merged[len(merged)/2].kv.Key
	if len(refs) >= 2 {
		splitKey = refs[len(refs)/2].kv.Key
	}
	mid := sort.Search(len(merged), func(j int) bool {
		return tr.compare(w.t, merged[j].kv.Key, splitKey) >= 0
	})

	var batchLeft []KV
	for _, kv := range batch {
		if tr.compare(w.t, kv.Key, splitKey) < 0 {
			batchLeft = append(batchLeft, kv)
		}
	}

	// Right contents: merged[mid:] with fences dropped — the split's
	// freshly stamped leaves gate any older WAL entry for them — except
	// the first entry, the first new leaf's routing anchor (recovery
	// rebuilds boundaries from leaf minimums, so lowKey must stay
	// physically present).
	rkvs := make([]KV, 0, len(merged)-mid)
	for i, r := range merged[mid:] {
		if r.kv.Value == Tombstone && i != 0 {
			continue
		}
		rkvs = append(rkvs, r.kv)
	}

	// Pack into as few leaves as possible. Earlier leaves fill
	// completely (ideal for the sorted-ingest runs that produce
	// multi-leaf splits; a later insert into a full leaf just splits it
	// in two); the last leaf keeps at least two keys so it can.
	numNew := (len(rkvs) + LeafSlots - 1) / LeafSlots
	sizes := make([]int, numNew)
	for k := range sizes {
		sizes[k] = LeafSlots
	}
	sizes[numNew-1] = len(rkvs) - (numNew-1)*LeafSlots
	if numNew > 1 && sizes[numNew-1] == 1 {
		sizes[numNew-2]--
		sizes[numNew-1]++
	}
	addrs := make([]pmem.Addr, numNew)
	for k := range addrs {
		a, err := tr.newLeaf(w.t, w.socket)
		if err != nil {
			return 0, err
		}
		addrs[k] = a
	}
	lows := make([]uint64, numNew)
	off := 0
	for k := 0; k < numNew; k++ {
		chunk := rkvs[off : off+sizes[k]]
		off += sizes[k]
		lows[k] = chunk[0].Key
		var rimg leafImage
		var rbm uint16
		for i, kv := range chunk {
			rimg.setKV(i, kv.Key, kv.Value)
			rimg.setFP(i, tr.keyFingerprint(w.t, kv.Key))
			rbm |= 1 << uint(i)
		}
		next := img.next()
		if k < numNew-1 {
			next = addrs[k+1]
		}
		rimg.setTS(w.stampLeafTS(0))
		rimg.setMeta(packLeafMeta(rbm, next))
		tr.writeWholeLeaf(w.t, addrs[k], &rimg)
	}

	// The left leaf keeps its physical slots below splitKey, compacting
	// fences except the smallest kept key (the leaf minimum, its
	// routing anchor).
	leftBm := uint16(0)
	keptMin := false
	for _, r := range refs {
		if tr.compare(w.t, r.kv.Key, splitKey) >= 0 {
			continue
		}
		if r.kv.Value == Tombstone && keptMin {
			continue
		}
		leftBm |= 1 << uint(r.slot)
		keptMin = true
	}
	// Publish with the old leaf's PREVIOUS timestamp: the follow-up
	// batchLeft insertion — which carries this node's still-buffered
	// KVs — sets a fresh one only once its data is persistent. Bumping
	// the timestamp here would gate those KVs' WAL entries as stale if
	// power failed before the follow-up batch landed (found by the
	// flush-boundary fault sweep). The retained timestamp still gates
	// everything the leaf's last completed flush covered, so dropping
	// fences above stays safe.
	prevTag := w.t.SetTag(pmem.TagLeaf)
	img.setMeta(packLeafMeta(leftBm, addrs[0]))
	w.t.Store(n.leaf.Add(8*leafMetaWord), img.meta())
	w.t.Persist(n.leaf.Add(8*leafMetaWord), pmem.WordSize)
	w.t.SetTag(prevTag)

	// DRAM structures: new buffer nodes, chain links, inner routing.
	// The whole new segment is wired internally before the single
	// n.next publish makes it reachable.
	nx := n.next.Load()
	nbs := make([]*bufferNode, numNew)
	for k := range nbs {
		nbs[k] = newBufferNode(addrs[k], lows[k], tr.opts.Nbatch)
	}
	for k := range nbs {
		if k > 0 {
			nbs[k].prev.Store(nbs[k-1])
		} else {
			nbs[k].prev.Store(n)
		}
		if k < numNew-1 {
			nbs[k].next.Store(nbs[k+1])
		} else {
			nbs[k].next.Store(nx)
		}
	}
	if nx != nil {
		nx.prev.Store(nbs[numNew-1])
	}
	n.next.Store(nbs[0])
	for k := range nbs {
		tr.inner.put(w.t, lows[k], nbs[k])
	}
	tr.ctr.splits.Add(uint64(numNew))
	tr.tracer.Emit(obs.EvSplit, w.id, w.t.Now(), splitKey, uint64(numNew))

	// Cached slots that migrated right are out of n's range now; purge
	// them so reads and scans cannot resurrect stale copies. (All
	// buffered entries are part of this batch, so no unflushed state
	// is lost — the caller resets pos.)
	for i := 0; i < n.nbatch(); i++ {
		if k := n.slotKey(i); k != 0 && tr.compare(w.t, k, splitKey) >= 0 {
			n.setSlot(i, 0, 0, 0)
		}
	}

	if len(batchLeft) > 0 {
		return w.leafBatchInsert(n, batchLeft)
	}
	return bits.OnesCount16(leftBm), nil
}

// tryMerge implements the §4.2 merge: if n's leaf fell below 50%
// occupancy and its left sibling has room, move everything left and
// atomically detach n (new bitmap bits + next pointer publish in the
// left leaf's single meta word).
func (w *Worker) tryMerge(n *bufferNode) {
	tr := w.tree
	for attempt := 0; attempt < 4; attempt++ {
		left := n.prev.Load()
		if left == nil {
			return
		}
		lv, ok := left.tryLock()
		if !ok {
			runtime.Gosched()
			continue
		}
		if left.dead() || left.next.Load() != n {
			left.unlock(lv)
			continue
		}
		nv, ok := n.tryLock()
		if !ok {
			left.unlock(lv)
			runtime.Gosched()
			continue
		}
		if n.dead() {
			n.unlock(nv)
			left.unlock(lv)
			return
		}
		merged := w.mergeLocked(left, n)
		n.unlock(nv)
		left.unlock(lv)
		if merged {
			tr.ctr.merges.Add(1)
			tr.tracer.Emit(obs.EvMerge, w.id, w.t.Now(), n.lowKey, 0)
		}
		return
	}
}

// mergeLocked does the move with both locks held.
func (w *Worker) mergeLocked(left, n *bufferNode) bool {
	tr := w.tree
	if s := w.t.Scope(); s == pmem.ScopeNone || s == pmem.ScopeLeafBuf {
		defer w.t.PopScope(w.t.PushScope(pmem.ScopeSplit))
	}
	var limg, nimg leafImage
	prevTag := w.t.SetTag(pmem.TagLeaf)
	readLeaf(w.t, left.leaf, &limg)
	readLeaf(w.t, n.leaf, &nimg)
	w.t.SetTag(prevTag)

	lpos, leb, _ := unpackHdr(left.hdr.Load())
	npos, _, _ := unpackHdr(n.hdr.Load())

	// Re-check underutilization under the lock, counting only live
	// (non-fence) entries.
	nLive := 0
	for i := 0; i < LeafSlots; i++ {
		if nimg.slotValid(i) && nimg.val(i) != Tombstone {
			nLive++
		}
	}
	if nLive+npos >= LeafSlots/2 {
		return false
	}

	// The batch: left's own unflushed KVs must flush too, because the
	// merge bumps the left leaf's timestamp past their WAL entries;
	// then n's leaf content (fences dropped — the timestamp bump gates
	// any older WAL entry for them), then n's unflushed KVs (newest
	// last).
	batch := make([]KV, 0, lpos+LeafSlots+npos)
	for i := 0; i < lpos; i++ {
		batch = append(batch, KV{left.slotKey(i), left.slotVal(i)})
	}
	for i := 0; i < LeafSlots; i++ {
		if nimg.slotValid(i) && nimg.val(i) != Tombstone {
			batch = append(batch, KV{nimg.key(i), nimg.val(i)})
		}
	}
	for i := 0; i < npos; i++ {
		batch = append(batch, KV{n.slotKey(i), n.slotVal(i)})
	}

	// Conservative capacity check: every batch entry may need a fresh
	// slot ("left sibling has enough space", §4.2).
	if limg.validCount()+len(batch) > LeafSlots {
		return false
	}

	if _, err := w.leafBatchInsertNext(left, batch, nimg.next(), true); err != nil {
		return false
	}
	left.hdr.Store(packHdr(0, leb, false))

	// Detach n from the DRAM chain and directory, free its leaf.
	n.hdr.Store(packHdr(0, 0, true))
	nx := n.next.Load()
	left.next.Store(nx)
	if nx != nil {
		nx.prev.Store(left)
	}
	tr.inner.remove(w.t, n.lowKey)
	// Epoch-based reclamation instead of an immediate free: a lock-free
	// reader that resolved n before the unlink may still probe n.leaf,
	// so the PM block stays mapped until every pinned reader has exited.
	tr.retireLeaf(n.leaf)
	tr.leafCount.Add(-1)
	return true
}
