package core

import "fmt"

// Variable-size operations (§4.4 Optimization #3). In VarKV mode every
// key and value is a PM blob addressed by an 8 B indirection pointer;
// the word-based machinery below the API is unchanged, which is exactly
// the paper's point: indirection-pointer updates still amplify, and the
// buffering design still absorbs them.

// KVBytes is one variable-size scan result.
type KVBytes struct {
	Key, Value []byte
}

func (w *Worker) requireVar(op string) error {
	if !w.tree.opts.VarKV {
		return fmt.Errorf("core: %s: %w", op, ErrVarKVRequired)
	}
	return nil
}

// UpsertVar inserts or updates a variable-size pair. key must be
// non-empty.
func (w *Worker) UpsertVar(key, value []byte) error {
	if err := w.writableVar("UpsertVar"); err != nil {
		return err
	}
	if len(key) == 0 {
		return fmt.Errorf("core: UpsertVar: %w", ErrZeroKey)
	}
	kw, err := w.blobs.write(w.t, key)
	if err != nil {
		return err
	}
	vw, err := w.blobs.write(w.t, value)
	if err != nil {
		return err
	}
	w.tree.ctr.upserts.Add(1)
	w.tree.pool.AddUserBytes(uint64(len(key) + len(value)))
	return w.upsertWord(kw, vw)
}

// LookupVar finds the value for a variable-size key.
func (w *Worker) LookupVar(key []byte) ([]byte, bool) {
	if err := w.requireVar("LookupVar"); err != nil {
		return nil, false
	}
	w.tree.ctr.lookups.Add(1)
	kw := w.tempKeyWord(key)
	v, ok := w.lookupWord(kw)
	if !ok || v == Tombstone {
		return nil, false
	}
	return readBlob(w.t, v), true
}

// DeleteVar inserts a tombstone for a variable-size key.
func (w *Worker) DeleteVar(key []byte) error {
	if err := w.writableVar("DeleteVar"); err != nil {
		return err
	}
	if len(key) == 0 {
		return fmt.Errorf("core: DeleteVar: %w", ErrZeroKey)
	}
	kw, err := w.blobs.write(w.t, key)
	if err != nil {
		return err
	}
	w.tree.ctr.deletes.Add(1)
	w.tree.pool.AddUserBytes(uint64(len(key) + 8))
	return w.upsertWord(kw, Tombstone)
}

// ScanVar collects up to max entries with key ≥ start in ascending
// byte order.
func (w *Worker) ScanVar(start []byte, max int) []KVBytes {
	if err := w.requireVar("ScanVar"); err != nil {
		return nil
	}
	kw := w.tempKeyWord(start)
	out := make([]KV, max)
	n := w.Scan(kw, max, out)
	res := make([]KVBytes, 0, n)
	for _, kv := range out[:n] {
		res = append(res, KVBytes{Key: readBlob(w.t, kv.Key), Value: readBlob(w.t, kv.Value)})
	}
	return res
}

// tempKeyWord registers key as the worker's probe so comparisons can
// resolve it from DRAM — read operations write nothing to PM.
func (w *Worker) tempKeyWord(key []byte) uint64 {
	w.probeKey = key
	return probeTag | uint64(w.id)
}

// UpsertIndirect stores a fixed 8 B key with a pre-built indirection
// pointer word (IsBlobWord must hold). Harnesses that manage their own
// value blobs use this to drive every index through one code path.
func (w *Worker) UpsertIndirect(key, pointerWord uint64) error {
	if err := w.writableFixed("UpsertIndirect"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: UpsertIndirect: %w", ErrZeroKey)
	}
	if key > MaxValue {
		return fmt.Errorf("core: key %#x outside [1, MaxValue]", key)
	}
	if !IsBlobWord(pointerWord) {
		return fmt.Errorf("core: %#x is not an indirection pointer", pointerWord)
	}
	w.tree.ctr.upserts.Add(1)
	w.tree.pool.AddUserBytes(16)
	return w.upsertWord(key, pointerWord)
}

// UpsertLargeValue stores a fixed 8 B key with an out-of-band value
// blob — the Fig 15c configuration (8 B keys, 64–512 B values through
// indirection pointers). Works in fixed-key mode.
func (w *Worker) UpsertLargeValue(key uint64, value []byte) error {
	if err := w.writableFixed("UpsertLargeValue"); err != nil {
		return err
	}
	if key == 0 {
		return fmt.Errorf("core: UpsertLargeValue: %w", ErrZeroKey)
	}
	vw, err := w.blobs.write(w.t, value)
	if err != nil {
		return err
	}
	w.tree.ctr.upserts.Add(1)
	w.tree.pool.AddUserBytes(uint64(8 + len(value)))
	return w.upsertWord(key, vw)
}

// LookupLargeValue fetches a value stored with UpsertLargeValue.
func (w *Worker) LookupLargeValue(key uint64) ([]byte, bool) {
	w.tree.ctr.lookups.Add(1)
	v, ok := w.lookupWord(key)
	if !ok || v == Tombstone {
		return nil, false
	}
	return decodeValueWord(w.t, v), true
}
