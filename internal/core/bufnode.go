package core

import (
	"sync/atomic"

	"cclbtree/internal/pmem"
)

// bufferNode is the DRAM buffer in front of one PM leaf (§3.2, Fig 7a).
// Its packed header holds the position counter (KVs buffered but not
// yet flushed) and the per-slot epoch bitmap used by locality-aware GC;
// the version word is the node's seqlock, shared with the leaf (§4.4
// Optimization #2). Slots keep their contents after a flush and serve
// as a read cache until overwritten.
//
// All fields that change after publication are atomics so optimistic
// readers are race-free; the version lock makes multi-word reads
// consistent.
type bufferNode struct {
	// version is the seqlock: odd = write-locked. Readers snapshot it,
	// read optimistically, and re-check.
	version atomic.Uint64
	// hdr packs pos (bits 0–7), the epoch bitmap (bits 8–23), and the
	// dead flag (bit 24) — the paper's compressed 8 B header.
	hdr atomic.Uint64
	// leaf is the PM leaf this node fronts. Immutable.
	leaf pmem.Addr
	// lowKey is the routing key word: every key in this node's range
	// satisfies lowKey ≤ key < next.lowKey. Immutable; 0 for the head.
	lowKey uint64
	// slots interleaves key/value words: slot i at 2i, 2i+1.
	slots []atomic.Uint64
	// fps packs one fingerprint byte per slot (maxNbatch = 16 → two
	// words), mirroring the leaf's fingerprint array so lookups touch
	// one DRAM word instead of Nbatch key words. Written only under the
	// version lock, like the slots; a torn fp/key pairing seen by an
	// optimistic reader is caught by validateRead.
	fps [2]atomic.Uint64
	// next and prev maintain the DRAM chain mirroring leaf order;
	// mutated only under the version locks involved.
	next atomic.Pointer[bufferNode]
	prev atomic.Pointer[bufferNode]
}

const (
	hdrPosShift   = 0
	hdrPosMask    = 0xff
	hdrEpochShift = 8
	hdrEpochMask  = 0xffff
	hdrDeadBit    = 1 << 24
)

func packHdr(pos int, epochBits uint16, dead bool) uint64 {
	v := uint64(pos)&hdrPosMask | uint64(epochBits)<<hdrEpochShift
	if dead {
		v |= hdrDeadBit
	}
	return v
}

func unpackHdr(v uint64) (pos int, epochBits uint16, dead bool) {
	return int(v & hdrPosMask), uint16(v >> hdrEpochShift & hdrEpochMask), v&hdrDeadBit != 0
}

func newBufferNode(leaf pmem.Addr, lowKey uint64, nbatch int) *bufferNode {
	return &bufferNode{
		leaf:   leaf,
		lowKey: lowKey,
		slots:  make([]atomic.Uint64, 2*nbatch),
	}
}

func (n *bufferNode) nbatch() int { return len(n.slots) / 2 }

func (n *bufferNode) slotKey(i int) uint64 { return n.slots[2*i].Load() }
func (n *bufferNode) slotVal(i int) uint64 { return n.slots[2*i+1].Load() }

// slotFP returns slot i's fingerprint byte.
func (n *bufferNode) slotFP(i int) byte {
	return byte(n.fps[i/8].Load() >> (8 * uint(i%8)))
}

// setSlot publishes slot i. fp must be the key's fingerprint
// (Tree.keyFingerprint) — a mismatch would make lookups skip the slot
// and resurrect the leaf's stale copy; purges (k = 0) pass 0. Callers
// hold the node's version lock.
func (n *bufferNode) setSlot(i int, k, v uint64, fp byte) {
	n.slots[2*i].Store(k)
	n.slots[2*i+1].Store(v)
	sh := 8 * uint(i%8)
	word := &n.fps[i/8]
	word.Store(word.Load()&^(uint64(0xff)<<sh) | uint64(fp)<<sh)
}

// tryLock attempts to take the version lock. On success it returns the
// pre-lock version to pass to unlock.
func (n *bufferNode) tryLock() (uint64, bool) {
	v := n.version.Load()
	if v&1 != 0 {
		return 0, false
	}
	if n.version.CompareAndSwap(v, v+1) {
		return v, true
	}
	return 0, false
}

func (n *bufferNode) unlock(v uint64) {
	n.version.Store(v + 2)
}

// beginRead snapshots the version for an optimistic read; ok is false
// while a writer holds the lock.
func (n *bufferNode) beginRead() (uint64, bool) {
	v := n.version.Load()
	return v, v&1 == 0
}

// validateRead reports whether the optimistic read that started at v
// saw a consistent snapshot.
func (n *bufferNode) validateRead(v uint64) bool {
	return n.version.Load() == v
}

func (n *bufferNode) dead() bool {
	_, _, d := unpackHdr(n.hdr.Load())
	return d
}
