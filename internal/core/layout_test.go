package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cclbtree/internal/pmem"
)

func TestLeafMetaPacking(t *testing.T) {
	next := pmem.MakeAddr(1, 0xabc00)
	for _, bm := range []uint16{0, 1, 0x3fff, 0x2a2a} {
		m := packLeafMeta(bm, next)
		gb, gn := unpackLeafMeta(m)
		if gb != bm || gn != next {
			t.Fatalf("roundtrip bm=%x: got %x,%v", bm, gb, gn)
		}
	}
	// Nil next must unpack to nil.
	if _, n := unpackLeafMeta(packLeafMeta(7, pmem.NilAddr)); !n.IsNil() {
		t.Fatal("nil next lost")
	}
	// Bitmap bits beyond 14 must not leak into the pointer field.
	m := packLeafMeta(0xffff, pmem.NilAddr)
	if bm, n := unpackLeafMeta(m); bm != bitmapMask || !n.IsNil() {
		t.Fatalf("overflow bits leaked: %x %v", bm, n)
	}
}

func TestLeafMetaPackingQuick(t *testing.T) {
	f := func(bm uint16, off uint32) bool {
		next := pmem.MakeAddr(int(off%4), uint64(off)&^(0xff)|0x100)
		gb, gn := unpackLeafMeta(packLeafMeta(bm, next))
		return gb == bm&bitmapMask && gn == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeafImageAccessors(t *testing.T) {
	var img leafImage
	img.setKV(5, 123, 456)
	img.setFP(5, 0x7e)
	img.setTS(999)
	img.setMeta(packLeafMeta(1<<5, pmem.NilAddr))
	if img.key(5) != 123 || img.val(5) != 456 {
		t.Fatal("kv accessors")
	}
	if img.fp(5) != 0x7e {
		t.Fatal("fp accessor")
	}
	if img.ts() != 999 {
		t.Fatal("ts accessor")
	}
	if !img.slotValid(5) || img.slotValid(4) {
		t.Fatal("validity")
	}
	if img.validCount() != 1 {
		t.Fatal("validCount")
	}
	if img.freeSlot() != 0 {
		t.Fatal("freeSlot")
	}
	// Setting one fingerprint must not disturb neighbours.
	img.setFP(4, 0x11)
	img.setFP(6, 0x22)
	if img.fp(5) != 0x7e || img.fp(4) != 0x11 || img.fp(6) != 0x22 {
		t.Fatal("fp neighbours disturbed")
	}
}

func TestLeafImageFPAllSlots(t *testing.T) {
	var img leafImage
	want := make([]byte, LeafSlots)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < LeafSlots; i++ {
		want[i] = byte(rng.Intn(256))
		img.setFP(i, want[i])
	}
	for i := 0; i < LeafSlots; i++ {
		if img.fp(i) != want[i] {
			t.Fatalf("fp[%d] = %x want %x", i, img.fp(i), want[i])
		}
	}
}

func TestHdrPacking(t *testing.T) {
	for pos := 0; pos <= maxNbatch; pos++ {
		for _, eb := range []uint16{0, 0xffff, 0xa5a5} {
			for _, dead := range []bool{false, true} {
				gp, ge, gd := unpackHdr(packHdr(pos, eb, dead))
				if gp != pos || ge != eb || gd != dead {
					t.Fatalf("hdr roundtrip pos=%d eb=%x dead=%v: %d %x %v", pos, eb, dead, gp, ge, gd)
				}
			}
		}
	}
}

func TestBufferNodeLock(t *testing.T) {
	n := newBufferNode(pmem.MakeAddr(0, 4096), 10, 2)
	v, ok := n.tryLock()
	if !ok {
		t.Fatal("fresh lock failed")
	}
	if _, ok := n.tryLock(); ok {
		t.Fatal("double lock succeeded")
	}
	if _, ok := n.beginRead(); ok {
		t.Fatal("read began under write lock")
	}
	n.unlock(v)
	rv, ok := n.beginRead()
	if !ok {
		t.Fatal("read after unlock failed")
	}
	if !n.validateRead(rv) {
		t.Fatal("unchanged version failed validation")
	}
	v2, _ := n.tryLock()
	n.unlock(v2)
	if n.validateRead(rv) {
		t.Fatal("stale version passed validation")
	}
}

func TestBufferNodeSlots(t *testing.T) {
	n := newBufferNode(pmem.MakeAddr(0, 4096), 10, 4)
	if n.nbatch() != 4 {
		t.Fatal("nbatch")
	}
	n.setSlot(2, 77, 88, 0xab)
	if n.slotKey(2) != 77 || n.slotVal(2) != 88 {
		t.Fatal("slot accessors")
	}
	if n.slotFP(2) != 0xab {
		t.Fatal("slot fingerprint")
	}
	n.setSlot(3, 5, 6, 0xcd)
	if n.slotFP(2) != 0xab || n.slotFP(3) != 0xcd {
		t.Fatal("fingerprint packing clobbered a neighbor")
	}
}

func TestFingerprintStability(t *testing.T) {
	// Fingerprints must be deterministic: the leaf stores them once
	// and lookups recompute.
	for k := uint64(1); k < 2000; k++ {
		if fpHash(mix64(k)) != fpHash(mix64(k)) {
			t.Fatal("unstable fingerprint")
		}
	}
	// And reasonably distributed.
	seen := map[byte]bool{}
	for k := uint64(1); k < 4096; k++ {
		seen[fpHash(mix64(k))] = true
	}
	if len(seen) < 200 {
		t.Fatalf("only %d distinct fingerprints", len(seen))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Nbatch != 2 || o.THlog != 0.20 || o.ChunkBytes != 4<<20 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.GC != GCLocalityAware {
		t.Fatal("default GC policy")
	}
	// Explicit Base request.
	o, _ = Options{Nbatch: -1}.withDefaults()
	if o.Nbatch != 0 {
		t.Fatalf("Nbatch -1 should mean 0, got %d", o.Nbatch)
	}
	// Bound check.
	if _, err := (Options{Nbatch: maxNbatch + 1}).withDefaults(); err == nil {
		t.Fatal("oversized Nbatch accepted")
	}
}

func TestGCPolicyString(t *testing.T) {
	for _, p := range []GCPolicy{GCLocalityAware, GCNaive, GCOff} {
		if p.String() == "unknown" {
			t.Fatalf("policy %d unnamed", p)
		}
	}
}
