package core

import "cclbtree/internal/pmem"

// Leaf node layout (§4.1, Fig 7b). One leaf is exactly 256 B = one
// XPLine, so a batch flush touches a single media line:
//
//	word 0        meta: 14-bit validity bitmap | 2 reserved bits |
//	              48-bit packed next-leaf pointer. Bitmap and next
//	              share one 8 B word so a split or merge publishes
//	              atomically (§4.2).
//	word 1        timestamp (failure recovery, §3.3)
//	words 2–3     14 × 1 B fingerprints + 2 B pad
//	words 4–31    14 KV slots (key word, value word), unsorted
const (
	LeafBytes = 256
	// LeafSlots is the KV capacity: (256 − 32) / 16.
	LeafSlots = 14

	leafWords     = LeafBytes / pmem.WordSize
	leafMetaWord  = 0
	leafTSWord    = 1
	leafFPWord    = 2 // fingerprints occupy words 2 and 3
	leafSlotBase  = 4 // slot i: key at 4+2i, value at 5+2i
	leafHeaderLen = 4 // words 0–3 = 32 B metadata region
)

const bitmapMask = 1<<LeafSlots - 1

// packLeafMeta builds the meta word from a validity bitmap and the next
// leaf address.
func packLeafMeta(bitmap uint16, next pmem.Addr) uint64 {
	v := uint64(bitmap) & bitmapMask
	if !next.IsNil() {
		v |= next.Pack48() << 16
	}
	return v
}

func unpackLeafMeta(meta uint64) (bitmap uint16, next pmem.Addr) {
	bitmap = uint16(meta & bitmapMask)
	raw := meta >> 16
	if raw == 0 {
		return bitmap, pmem.NilAddr
	}
	return bitmap, pmem.Unpack48(raw)
}

// leafImage is a DRAM copy of one leaf, loaded with a single ReadRange
// (the whole leaf is one XPLine, so this charges one media access when
// cold).
type leafImage struct {
	words [leafWords]uint64
}

func (li *leafImage) meta() uint64     { return li.words[leafMetaWord] }
func (li *leafImage) setMeta(v uint64) { li.words[leafMetaWord] = v }
func (li *leafImage) ts() uint64       { return li.words[leafTSWord] }
func (li *leafImage) setTS(v uint64)   { li.words[leafTSWord] = v }
func (li *leafImage) bitmap() uint16   { b, _ := unpackLeafMeta(li.meta()); return b }
func (li *leafImage) next() pmem.Addr  { _, n := unpackLeafMeta(li.meta()); return n }
func (li *leafImage) key(i int) uint64 { return li.words[leafSlotBase+2*i] }
func (li *leafImage) val(i int) uint64 { return li.words[leafSlotBase+2*i+1] }
func (li *leafImage) setKV(i int, k, v uint64) {
	li.words[leafSlotBase+2*i] = k
	li.words[leafSlotBase+2*i+1] = v
}

func (li *leafImage) fp(i int) byte {
	w := li.words[leafFPWord+i/8]
	return byte(w >> (8 * uint(i%8)))
}

func (li *leafImage) setFP(i int, f byte) {
	w := &li.words[leafFPWord+i/8]
	shift := 8 * uint(i%8)
	*w = *w&^(0xff<<shift) | uint64(f)<<shift
}

func (li *leafImage) slotValid(i int) bool {
	return li.bitmap()&(1<<uint(i)) != 0
}

func (li *leafImage) validCount() int {
	n := 0
	for b := li.bitmap(); b != 0; b &= b - 1 {
		n++
	}
	return n
}

func (li *leafImage) freeSlot() int {
	b := li.bitmap()
	for i := 0; i < LeafSlots; i++ {
		if b&(1<<uint(i)) == 0 {
			return i
		}
	}
	return -1
}

// readLeaf loads a whole leaf into img.
func readLeaf(t *pmem.Thread, leaf pmem.Addr, img *leafImage) {
	t.ReadRange(leaf, img.words[:])
}

// fpHash derives the 1 B fingerprint from a key hash (FPTree-style,
// used to filter PM reads in point queries).
func fpHash(h uint64) byte {
	return byte(h ^ h>>8 ^ h>>16 ^ h>>32 ^ h>>48)
}

// mix64 is the SplitMix64 finalizer, used to hash fixed keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
