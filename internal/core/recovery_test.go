package core

import (
	"bytes"
	"math/rand"
	"testing"

	"cclbtree/internal/pmem"
)

// crashAndReopen simulates a power failure and recovers the tree.
// Freeze halts the background GC the way a real power loss halts every
// thread; without it the old tree's GC goroutine would keep mutating
// the pool after the "failure".
func crashAndReopen(t *testing.T, tr *Tree, threads int) (*Tree, *RecoveryStats) {
	t.Helper()
	pool := tr.Pool()
	tr.Freeze()
	pool.Crash()
	tr2, st, err := Open(pool, Options{}, threads)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	return tr2, st
}

func TestRecoveryEmptyTree(t *testing.T) {
	tr, _ := newTestTree(t, Options{}, nil)
	tr2, st := crashAndReopen(t, tr, 1)
	if st.Leaves != 1 {
		t.Fatalf("leaves = %d", st.Leaves)
	}
	w := tr2.NewWorker(0)
	if _, ok := w.Lookup(1); ok {
		t.Fatal("phantom key after recovery")
	}
	if err := w.Upsert(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.Lookup(1); v != 2 {
		t.Fatal("insert after recovery broken")
	}
}

func TestRecoveryAllCompletedOpsDurable(t *testing.T) {
	// Every completed operation is durable: non-trigger writes persist
	// their WAL entry before returning, trigger writes persist the
	// whole batch. So after a crash at an operation boundary, nothing
	// may be lost.
	tr, w := newTestTree(t, Options{}, nil)
	const n = 5000
	for i := uint64(1); i <= n; i++ {
		if err := w.Upsert(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	tr2, st := crashAndReopen(t, tr, 2)
	if st.EntriesReplayed == 0 {
		t.Fatal("no WAL entries replayed; buffering was not exercised")
	}
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= n; i++ {
		v, ok := w2.Lookup(i)
		if !ok || v != i*3 {
			t.Fatalf("lost key %d after crash: %d,%v", i, v, ok)
		}
	}
	out := make([]KV, n+10)
	if got := w2.Scan(1, n+10, out); got != n {
		t.Fatalf("scan after recovery: %d of %d", got, n)
	}
}

func TestRecoveryUpdatesWin(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 500; i++ {
		_ = w.Upsert(i, 1)
	}
	for i := uint64(1); i <= 500; i++ {
		_ = w.Upsert(i, i+10000) // newer versions, some buffered
	}
	tr2, _ := crashAndReopen(t, tr, 1)
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 500; i++ {
		v, ok := w2.Lookup(i)
		if !ok || v != i+10000 {
			t.Fatalf("stale version for %d after crash: %d,%v", i, v, ok)
		}
	}
}

func TestRecoveryDeletesSurvive(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 500; i++ {
		_ = w.Upsert(i, i)
	}
	for i := uint64(1); i <= 500; i += 3 {
		_ = w.Delete(i)
	}
	tr2, _ := crashAndReopen(t, tr, 1)
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 500; i++ {
		_, ok := w2.Lookup(i)
		want := i%3 != 1
		if ok != want {
			t.Fatalf("key %d: present=%v want %v", i, ok, want)
		}
	}
}

func TestRecoveryAfterGC(t *testing.T) {
	// GC recycles chunks; stale entries in recycled chunks must not
	// resurrect old versions.
	tr, w := newTestTree(t, Options{ChunkBytes: 4096, THlog: 0.02}, nil)
	const n = 4000
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i)
	}
	tr.ForceGC()
	for i := uint64(1); i <= n; i++ {
		_ = w.Upsert(i, i+7) // second generation of values
	}
	tr.ForceGC()
	tr.WaitGC()
	if tr.Counters().GCRuns < 2 {
		t.Fatalf("gc runs = %d", tr.Counters().GCRuns)
	}
	tr2, _ := crashAndReopen(t, tr, 2)
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= n; i++ {
		v, ok := w2.Lookup(i)
		if !ok || v != i+7 {
			t.Fatalf("key %d after GC+crash: %d,%v want %d", i, v, ok, i+7)
		}
	}
}

func TestRecoveryRandomCrashPoints(t *testing.T) {
	// Property-style: run a random workload, crash after a random
	// prefix of ops, recover, and check the tree matches the model of
	// the completed prefix exactly.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		tr, w := newTestTree(t, Options{ChunkBytes: 8192}, nil)
		ref := map[uint64]uint64{}
		nOps := 500 + rng.Intn(4000)
		for op := 0; op < nOps; op++ {
			k := uint64(rng.Intn(800) + 1)
			if rng.Intn(5) == 0 {
				_ = w.Delete(k)
				delete(ref, k)
			} else {
				v := uint64(rng.Intn(1 << 30))
				if v == 0 {
					v = 1
				}
				_ = w.Upsert(k, v)
				ref[k] = v
			}
		}
		tr2, _ := crashAndReopen(t, tr, 1+rng.Intn(3))
		w2 := tr2.NewWorker(0)
		for k := uint64(1); k <= 800; k++ {
			v, ok := w2.Lookup(k)
			wv, wok := ref[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("trial %d nOps %d: key %d = %d,%v want %d,%v", trial, nOps, k, v, ok, wv, wok)
			}
		}
		out := make([]KV, 900)
		got := w2.Scan(1, 900, out)
		if got != len(ref) {
			t.Fatalf("trial %d: scan %d, model %d", trial, got, len(ref))
		}
	}
}

func TestDoubleCrash(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 1000; i++ {
		_ = w.Upsert(i, i)
	}
	tr2, _ := crashAndReopen(t, tr, 1)
	w2 := tr2.NewWorker(0)
	for i := uint64(1001); i <= 2000; i++ {
		_ = w2.Upsert(i, i)
	}
	tr3, _ := crashAndReopen(t, tr2, 2)
	w3 := tr3.NewWorker(0)
	for i := uint64(1); i <= 2000; i++ {
		v, ok := w3.Lookup(i)
		if !ok || v != i {
			t.Fatalf("after double crash key %d: %d,%v", i, v, ok)
		}
	}
}

func TestRecoveryReclaimsEmptyLeaves(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 400; i++ {
		_ = w.Upsert(i, i)
	}
	// Delete a contiguous band so at least one leaf empties fully
	// without merging (merges need sibling space; make them unlikely
	// by deleting everything).
	for i := uint64(1); i <= 400; i++ {
		_ = w.Delete(i)
	}
	tr2, st := crashAndReopen(t, tr, 1)
	_ = st // empty-leaf reclamation is opportunistic; correctness below
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 400; i++ {
		if _, ok := w2.Lookup(i); ok {
			t.Fatalf("deleted key %d resurrected", i)
		}
	}
	// Tree still functional.
	_ = w2.Upsert(5, 55)
	if v, _ := w2.Lookup(5); v != 55 {
		t.Fatal("insert after mass delete + crash broken")
	}
}

func TestRecoveryAcrossProcessImage(t *testing.T) {
	// Full serialize/deserialize through SavePersistent, as a process
	// restart would do.
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 800; i++ {
		_ = w.Upsert(i, i*2)
	}
	pool := tr.Pool()
	var bufs []*bytes.Buffer
	for s := 0; s < pool.Sockets(); s++ {
		var b bytes.Buffer
		if err := pool.SavePersistent(s, &b); err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, &b)
	}
	pool2 := newTestPool(nil)
	for s := range bufs {
		if err := pool2.LoadPersistent(s, bufs[s]); err != nil {
			t.Fatal(err)
		}
	}
	tr2, _, err := Open(pool2, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tr2.NewWorker(0)
	for i := uint64(1); i <= 800; i++ {
		v, ok := w2.Lookup(i)
		if !ok || v != i*2 {
			t.Fatalf("restart lost key %d: %d,%v", i, v, ok)
		}
	}
}

func TestOpenRejectsEmptyPool(t *testing.T) {
	pool := newTestPool(nil)
	if _, _, err := Open(pool, Options{}, 1); err == nil {
		t.Fatal("Open on empty pool succeeded")
	}
}

func TestRecoveryStatsPlausible(t *testing.T) {
	tr, w := newTestTree(t, Options{}, nil)
	for i := uint64(1); i <= 2000; i++ {
		_ = w.Upsert(i, i)
	}
	_, st := crashAndReopen(t, tr, 2)
	if st.Leaves < 2000/LeafSlots {
		t.Fatalf("leaves %d", st.Leaves)
	}
	if st.VirtualNS <= 0 {
		t.Fatal("no virtual time recorded")
	}
	if st.EntriesSeen < st.EntriesReplayed {
		t.Fatalf("seen %d < replayed %d", st.EntriesSeen, st.EntriesReplayed)
	}
}

func TestParallelRecoveryMatchesSerial(t *testing.T) {
	build := func() *pmem.Pool {
		pool := newTestPool(nil)
		tr, err := New(pool, Options{ChunkBytes: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		rng := rand.New(rand.NewSource(3))
		for op := 0; op < 6000; op++ {
			k := uint64(rng.Intn(2000) + 1)
			_ = w.Upsert(k, k+uint64(op))
		}
		tr.Freeze()
		pool.Crash()
		return pool
	}
	results := map[int]map[uint64]uint64{}
	for _, threads := range []int{1, 4} {
		pool := build()
		tr, _, err := Open(pool, Options{}, threads)
		if err != nil {
			t.Fatal(err)
		}
		w := tr.NewWorker(0)
		got := map[uint64]uint64{}
		out := make([]KV, 2100)
		n := w.Scan(1, 2100, out)
		for _, kv := range out[:n] {
			got[kv.Key] = kv.Value
		}
		results[threads] = got
	}
	if len(results[1]) != len(results[4]) {
		t.Fatalf("serial %d keys, parallel %d", len(results[1]), len(results[4]))
	}
	for k, v := range results[1] {
		if results[4][k] != v {
			t.Fatalf("key %d: serial %d parallel %d", k, v, results[4][k])
		}
	}
}
