package core

import (
	"fmt"
	"runtime"
	"sync"

	"cclbtree/internal/obs"
	"cclbtree/internal/ordo"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// RecoveryStats describes one recovery run (Fig 17).
type RecoveryStats struct {
	Leaves               int64
	ChunksScanned        int
	EntriesSeen          int
	EntriesReplayed      int
	EntriesStale         int
	EmptyLeavesReclaimed int
	// VirtualNS is the modeled recovery time: the sequential leaf-list
	// walk plus the slowest parallel replay worker.
	VirtualNS int64
}

// Open recovers a CCL-BTree from a pool that holds a previously created
// tree — after Pool.Crash, or after LoadPersistent in a new process.
// It implements the §3.3 failure recovery: rebuild the DRAM inner and
// buffer layers by walking the persistent leaf list, replay WAL entries
// newer than their leaf's timestamp, and reset leaf timestamps.
// threads sets the parallelism of the replay and reset phases.
func Open(pool *pmem.Pool, opts Options, threads int) (*Tree, *RecoveryStats, error) {
	if threads < 1 {
		threads = 1
	}
	t0 := pool.NewThread(0)
	t0.PushScope(pmem.ScopeRecovery)

	// Superblock.
	sb := pmem.MakeAddr(0, sbOffset)
	var sbw [sbWords]uint64
	t0.ReadRange(sb, sbw[:])
	if sbw[0] != sbMagic {
		return nil, nil, fmt.Errorf("core: no tree found in pool (bad superblock magic %#x)", sbw[0])
	}
	headLeaf := pmem.Addr(sbw[1])
	dirAddr := pmem.Addr(sbw[2])
	dirSlots := int(sbw[3])
	chunkBytes := int(sbw[4])
	varKV := sbw[5]&1 != 0

	opts.ChunkBytes = chunkBytes
	opts.VarKV = varKV
	opts.DirSlots = dirSlots
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}

	tr := &Tree{
		pool:   pool,
		alloc:  pmalloc.New(pool),
		clock:  ordo.New(pool.Sockets(), opts.OrdoBoundary),
		opts:   opts,
		gcDone: make(chan struct{}),
	}
	close(tr.gcDone)
	tr.inner = newInnerTree(tr.compare)
	tr.walman = wal.NewManager(tr.alloc, opts.ChunkBytes)
	tr.initObs()

	st := &RecoveryStats{}
	maxEnd := make([]uint64, pool.Sockets())
	track := func(a pmem.Addr, size int64) {
		if end := a.Offset() + uint64(size); end > maxEnd[a.Socket()] {
			maxEnd[a.Socket()] = end
		}
	}
	trackWord := func(w uint64) {
		if IsBlobWord(w) {
			a := blobAddr(w)
			n := int64(t0.Load(a))
			track(a, 8*(1+(n+7)/8))
		}
	}
	track(dirAddr, int64(dirSlots*pmem.WordSize))

	// Phase 1 (sequential): walk the persistent leaf list, rebuilding
	// buffer nodes, the DRAM chain, and the inner directory. Empty
	// non-head leaves are unlinked and reclaimed on the way.
	chunks := readChunkDir(t0, dirAddr, dirSlots)
	for _, c := range chunks {
		track(c, int64(chunkBytes))
	}
	st.ChunksScanned = len(chunks)

	prevTag := t0.SetTag(pmem.TagLeaf)
	var nodes []*bufferNode
	var emptyLeaves []pmem.Addr
	var prevNode *bufferNode
	prevLeaf := pmem.NilAddr
	cur := headLeaf
	for !cur.IsNil() {
		var img leafImage
		readLeaf(t0, cur, &img)
		track(cur, LeafBytes)
		next := img.next()
		if img.bitmap() == 0 && cur != headLeaf {
			// Unlink: predecessor's meta gets our successor, one
			// atomic word. The leaf is reclaimed afterwards.
			var pimg leafImage
			readLeaf(t0, prevLeaf, &pimg)
			pimg.setMeta(packLeafMeta(pimg.bitmap(), next))
			t0.Store(prevLeaf.Add(8*leafMetaWord), pimg.meta())
			t0.Persist(prevLeaf, pmem.WordSize)
			emptyLeaves = append(emptyLeaves, cur)
			st.EmptyLeavesReclaimed++
			cur = next
			continue
		}
		lowKey := uint64(0)
		if cur != headLeaf {
			first := true
			for i := 0; i < LeafSlots; i++ {
				if !img.slotValid(i) {
					continue
				}
				trackWord(img.key(i))
				trackWord(img.val(i))
				if first || tr.compare(t0, img.key(i), lowKey) < 0 {
					lowKey = img.key(i)
					first = false
				}
			}
		} else {
			for i := 0; i < LeafSlots; i++ {
				if img.slotValid(i) {
					trackWord(img.key(i))
					trackWord(img.val(i))
				}
			}
		}
		n := newBufferNode(cur, lowKey, opts.Nbatch)
		if prevNode != nil {
			prevNode.next.Store(n)
			n.prev.Store(prevNode)
		} else {
			tr.head = n
		}
		tr.inner.put(t0, lowKey, n)
		nodes = append(nodes, n)
		tr.leafCount.Add(1)
		prevNode = n
		prevLeaf = cur
		cur = next
	}
	t0.SetTag(prevTag)
	st.Leaves = int64(len(nodes))

	// Phase 2: scan all live chunks (parallel over chunks), dedup
	// entries to the newest version per logical key, and decide replay
	// vs stale by comparing with the pre-crash leaf timestamps
	// (parallel over entries). No writes happen here, so the timestamp
	// comparisons are stable even though later replay may split leaves.
	scanThreads := make([]*pmem.Thread, threads)
	for i := range scanThreads {
		scanThreads[i] = pool.NewThread(i % pool.Sockets())
		scanThreads[i].PushScope(pmem.ScopeRecovery)
	}
	entryLists := make([][]wal.Entry, threads)
	var wgScan sync.WaitGroup
	for i := 0; i < threads; i++ {
		wgScan.Add(1)
		go func(i int) {
			defer wgScan.Done()
			for j := i; j < len(chunks); j += threads {
				entryLists[i] = append(entryLists[i],
					wal.ReadEntriesInChunks(scanThreads[i], []pmem.Addr{chunks[j]}, chunkBytes)...)
			}
		}(i)
	}
	wgScan.Wait()

	type pending struct {
		kv KV
		ts uint64
	}
	newest := map[uint64][]pending{} // logical-key hash -> candidates
	keyHash := func(kw uint64) uint64 {
		if !opts.VarKV {
			return kw
		}
		return hashKeyBytes(readBlob(t0, kw))
	}
	sameKey := func(a, b uint64) bool { return tr.compare(t0, a, b) == 0 }
	for _, lst := range entryLists {
		for _, e := range lst {
			st.EntriesSeen++
			trackWord(e.Key)
			trackWord(e.Value)
			h := keyHash(e.Key)
			bucket := newest[h]
			found := false
			for i := range bucket {
				if sameKey(bucket[i].kv.Key, e.Key) {
					if e.Timestamp > bucket[i].ts {
						bucket[i] = pending{KV{e.Key, e.Value}, e.Timestamp}
					}
					found = true
					break
				}
			}
			if !found {
				bucket = append(bucket, pending{KV{e.Key, e.Value}, e.Timestamp})
			}
			newest[h] = bucket
		}
	}
	candidates := make([]pending, 0, len(newest))
	for _, bucket := range newest {
		candidates = append(candidates, bucket...)
	}
	// Route each candidate and compare with its leaf's pre-crash
	// timestamp, in parallel (read-only).
	replayLists := make([][]KV, threads)
	staleCounts := make([]int, threads)
	for i := 0; i < threads; i++ {
		wgScan.Add(1)
		go func(i int) {
			defer wgScan.Done()
			t := scanThreads[i]
			for j := i; j < len(candidates); j += threads {
				p := candidates[j]
				n := tr.findBuffer(t, p.kv.Key)
				leafTS := t.Load(n.leaf.Add(8 * leafTSWord))
				if p.ts > leafTS {
					replayLists[i] = append(replayLists[i], p.kv)
				} else {
					staleCounts[i]++
				}
			}
		}(i)
	}
	wgScan.Wait()
	var replay []KV
	for i := range replayLists {
		replay = append(replay, replayLists[i]...)
		st.EntriesStale += staleCounts[i]
	}
	st.EntriesReplayed = len(replay)

	// The bump pointers must clear every reachable object before any
	// replay write allocates (splits).
	for s := range maxEnd {
		tr.alloc.SetBump(s, maxEnd[s])
	}
	for _, a := range emptyLeaves {
		tr.alloc.Free(a, LeafBytes)
	}

	// Phase 3 (parallel): apply surviving entries directly to leaves
	// through the normal batch-insert machinery (locking per node, so
	// splits during replay stay correct).
	workers := make([]*Worker, threads)
	for i := range workers {
		workers[i] = tr.NewWorker(i % pool.Sockets())
		// Replay traffic (leaf flushes, splits, log re-appends) is
		// recovery-caused; wal.Append still claims its own bytes.
		workers[i].t.PushScope(pmem.ScopeRecovery)
	}
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			for j := i; j < len(replay); j += threads {
				w.replayApply(replay[j])
			}
			// Reset timestamps (§3.3 step 3) on this worker's share.
			for j := i; j < len(nodes); j += threads {
				n := nodes[j]
				for {
					v, ok := n.tryLock()
					if !ok {
						runtime.Gosched()
						continue
					}
					if !n.dead() {
						pt := w.t.SetTag(pmem.TagLeaf)
						w.t.Store(n.leaf.Add(8*leafTSWord), 0)
						w.t.Persist(n.leaf.Add(8*leafTSWord), pmem.WordSize)
						w.t.SetTag(pt)
					}
					n.unlock(v)
					break
				}
			}
		}(i, w)
	}
	wg.Wait()

	// Logs are now redundant: every surviving entry is durable in a
	// leaf. Rebuild the directory empty and recycle the chunk space.
	tr.dir = newChunkDir(pool.NewThread(0), dirAddr, dirSlots)
	tr.dir.clearAll()
	tr.walman.OnAcquire = tr.dir.register
	tr.walman.OnRelease = tr.dir.unregister
	tr.walman.AdoptChunks(chunks)

	var maxWorker int64
	for _, w := range workers {
		// Recovery is over; the workers stay registered (their logs are
		// reclaimed in later GC rounds) and must not keep attributing.
		w.t.PopScope(pmem.ScopeNone)
		if w.t.Now() > maxWorker {
			maxWorker = w.t.Now()
		}
	}
	var maxScan int64
	for _, t := range scanThreads {
		if t.Now() > maxScan {
			maxScan = t.Now()
		}
	}
	st.VirtualNS = t0.Now() + maxScan + maxWorker
	tr.tracer.Emit(obs.EvRecovery, 0, st.VirtualNS,
		uint64(st.EntriesReplayed), uint64(st.EntriesStale))
	return tr, st, nil
}

// replayApply routes one recovered KV to its leaf and applies it with
// the normal crash-consistent batch insert.
func (w *Worker) replayApply(kv KV) {
	tr := w.tree
	for {
		n := tr.findBuffer(w.t, kv.Key)
		v, ok := n.tryLock()
		if !ok {
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, kv.Key) {
			n.unlock(v)
			continue
		}
		_, err := w.leafBatchInsert(n, []KV{kv})
		n.unlock(v)
		if err != nil {
			panic(fmt.Sprintf("core: recovery replay failed: %v", err))
		}
		return
	}
}
