package core

import (
	"fmt"
	"runtime"
	"sync"

	"cclbtree/internal/obs"
	"cclbtree/internal/ordo"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/wal"
)

// RecoveryStats describes one recovery run (Fig 17).
type RecoveryStats struct {
	Leaves          int64
	ChunksScanned   int
	EntriesSeen     int
	EntriesReplayed int
	EntriesStale    int
	// EntriesDropped counts scanned records rejected as garbage (invalid
	// key/value words, out-of-range blob pointers): residue on recycled
	// chunks that slipped past the WAL check code, or plain corruption.
	EntriesDropped       int
	EmptyLeavesReclaimed int
	// VirtualNS is the modeled recovery time: the sequential leaf-list
	// walk plus the slowest parallel replay worker.
	VirtualNS int64
}

// Open recovers a CCL-BTree from a pool that holds a previously created
// tree — after Pool.Crash, or after LoadPersistent in a new process.
// It implements the §3.3 failure recovery: rebuild the DRAM inner and
// buffer layers by walking the persistent leaf list, then replay WAL
// entries newer than their leaf's timestamp. threads sets the
// parallelism of the scan and replay phases.
//
// Deviation from §3.3 step 3: the paper resets leaf timestamps after
// replay because real rdtsc restarts at reboot, which would leave old
// stamps gating every post-reboot entry. This implementation instead
// resumes the ORDO domain above everything stamped in the image
// (Clock.AdvanceTo below), which makes the reset unnecessary — and, on
// this design's non-zeroed recycled chunks, actively wrong: zeroed
// leaf timestamps un-gate stale-but-intact log residue, and a crash
// after a later recovery would replay values that trigger writes (never
// logged, leaf-only) had long superseded. The torture harness's
// crash-recover-crash rounds catch exactly that resurrection.
func Open(pool *pmem.Pool, opts Options, threads int) (*Tree, *RecoveryStats, error) {
	if threads < 1 {
		threads = 1
	}
	// Defaulting resolves the arena placement before the superblock is
	// located: the superblock lives at the arena's base on the home
	// socket, so a wrong placement finds no magic rather than another
	// tree's state.
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if opts.HomeSocket >= pool.Sockets() {
		return nil, nil, fmt.Errorf("core: home socket %d out of range (pool has %d)", opts.HomeSocket, pool.Sockets())
	}
	home := opts.HomeSocket
	alloc, err := pmalloc.NewArena(pool, opts.ArenaIndex, opts.ArenaCount)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	t0 := pool.NewThread(home)
	//persistlint:ignore PL012 t0 is recovery-dedicated; the scope holds until the thread is dropped at the end of Open
	t0.PushScope(pmem.ScopeRecovery)

	// Superblock.
	sb := pmem.MakeAddr(home, alloc.BaseOffset()+sbOffset)
	var sbw [sbWords]uint64
	t0.ReadRange(sb, sbw[:])
	if sbw[0] != sbMagic {
		return nil, nil, fmt.Errorf("core: no tree found in pool (bad superblock magic %#x at arena %d/%d, socket %d)",
			sbw[0], opts.ArenaIndex, opts.ArenaCount, home)
	}
	headLeaf := pmem.Addr(sbw[1])
	dirAddr := pmem.Addr(sbw[2])
	dirSlots := int(sbw[3])
	chunkBytes := int(sbw[4])
	varKV := sbw[5]&1 != 0
	if idx, cnt := sbArena(sbw[5]); idx != opts.ArenaIndex || cnt != opts.ArenaCount {
		return nil, nil, fmt.Errorf("core: tree was created as arena %d of %d, opened as %d of %d",
			idx, cnt, opts.ArenaIndex, opts.ArenaCount)
	}

	// Everything below the magic word is untrusted until validated: a
	// torn or corrupted image must surface as *CorruptError, never as an
	// out-of-range panic or an endless walk.
	if !pool.ValidRange(headLeaf, LeafBytes) || headLeaf.Offset()%LeafBytes != 0 {
		return nil, nil, corruptf("superblock", headLeaf, "head leaf address invalid")
	}
	// Bound the slot count before the byte-size multiply: a poked word
	// like 0x2000000000008020 would overflow int64(dirSlots)*WordSize
	// into a small positive size that passes ValidRange, then panic in
	// make([]uint64, dirSlots).
	if dirSlots <= 0 || int64(dirSlots) > pool.DeviceBytes()/pmem.WordSize ||
		!pool.ValidRange(dirAddr, int64(dirSlots)*pmem.WordSize) ||
		dirAddr.Offset()%pmem.WordSize != 0 {
		return nil, nil, corruptf("superblock", dirAddr, "chunk directory (%d slots) invalid", dirSlots)
	}
	if chunkBytes <= 0 || chunkBytes%pmem.XPLineSize != 0 || int64(chunkBytes) > pool.DeviceBytes() {
		return nil, nil, corruptf("superblock", pmem.NilAddr, "chunk size %d invalid", chunkBytes)
	}

	opts.ChunkBytes = chunkBytes
	opts.VarKV = varKV
	opts.DirSlots = dirSlots

	tr := &Tree{
		pool:   pool,
		alloc:  alloc,
		clock:  ordo.New(pool.Sockets(), opts.OrdoBoundary),
		opts:   opts,
		gcDone: make(chan struct{}),
	}
	close(tr.gcDone)
	tr.reclaim.init()
	tr.inner = newInnerTree(tr.compare)
	tr.walman = wal.NewManager(tr.alloc, opts.ChunkBytes)
	tr.initObs()
	tr.inner.prof = tr.prof

	st := &RecoveryStats{}
	// maxTick tracks the highest ORDO tick durably stamped anywhere in
	// the image (WAL entries and leaf flush timestamps). The new tree's
	// clock must resume above it: ticks restart at zero otherwise, and
	// any stale record left on a recycled chunk — a fully intact entry
	// from before the crash — would outrank every post-recovery append
	// at the NEXT crash, resurrecting overwritten values.
	maxTick := uint64(0)
	noteTick := func(ts uint64) {
		if ts > maxTick {
			maxTick = ts
		}
	}
	maxEnd := make([]uint64, pool.Sockets())
	track := func(a pmem.Addr, size int64) {
		if end := a.Offset() + uint64(size); end > maxEnd[a.Socket()] {
			maxEnd[a.Socket()] = end
		}
	}
	// trackWord validates an indirection pointer before chasing it and
	// extends the allocator high-water mark over the blob it names.
	trackWord := func(w uint64) error {
		if !IsBlobWord(w) {
			return nil
		}
		a := blobAddr(w)
		if !pool.ValidRange(a, pmem.WordSize) || a.Offset()%pmem.WordSize != 0 {
			return corruptf("blob", a, "pointer invalid")
		}
		n := int64(t0.Load(a))
		if n < 0 || n > blobArenaChunk {
			return corruptf("blob", a, "length %d impossible", n)
		}
		size := 8 * (1 + (n+7)/8)
		if !pool.ValidRange(a, size) {
			return corruptf("blob", a, "%d-byte blob runs off the device", n)
		}
		track(a, size)
		return nil
	}
	// keyOK/valOK check that a stored word is possible in this tree's
	// mode — the superblock's VarKV flag is itself untrusted, and a
	// flipped flag would otherwise make recovery (and every later
	// lookup) chase plain integers as blob pointers or vice versa.
	keyOK := func(w uint64) bool {
		if opts.VarKV {
			return IsBlobWord(w)
		}
		return w >= 1 && w <= MaxValue
	}
	valOK := func(w uint64) bool {
		if w == Tombstone || IsBlobWord(w) {
			return true // tombstones and out-of-band blobs occur in both modes
		}
		return !opts.VarKV && w <= MaxValue
	}
	track(dirAddr, int64(dirSlots*pmem.WordSize))

	// Phase 1 (sequential): walk the persistent leaf list, rebuilding
	// buffer nodes, the DRAM chain, and the inner directory. Empty
	// non-head leaves are unlinked and reclaimed on the way.
	chunks := readChunkDir(t0, dirAddr, dirSlots)
	for _, c := range chunks {
		if !pool.ValidRange(c, int64(chunkBytes)) || c.Offset()%pmem.XPLineSize != 0 {
			return nil, nil, corruptf("chunk directory", c, "chunk address invalid")
		}
		track(c, int64(chunkBytes))
	}
	st.ChunksScanned = len(chunks)

	prevTag := t0.SetTag(pmem.TagLeaf)
	var nodes []*bufferNode
	var emptyLeaves []pmem.Addr
	var prevNode *bufferNode
	prevLeaf := pmem.NilAddr
	seen := map[pmem.Addr]bool{headLeaf: true}
	cur := headLeaf
	for !cur.IsNil() {
		var img leafImage
		readLeaf(t0, cur, &img)
		track(cur, LeafBytes)
		// Leaf flush timestamps come from the same clock that stamps WAL
		// entries, so they share its bound; anything larger is corruption
		// (and would poison the resumed clock below).
		if img.ts() > wal.MaxTick {
			return nil, nil, corruptf("leaf", cur, "flush timestamp %#x impossible", img.ts())
		}
		noteTick(img.ts())
		next := img.next()
		if !next.IsNil() {
			if !pool.ValidRange(next, LeafBytes) || next.Offset()%LeafBytes != 0 {
				return nil, nil, corruptf("leaf list", next, "next pointer invalid")
			}
			if seen[next] {
				return nil, nil, corruptf("leaf list", next, "cycle detected")
			}
			seen[next] = true
		}
		if img.bitmap() == 0 && cur != headLeaf {
			// Unlink: predecessor's meta gets our successor, one
			// atomic word. The leaf is reclaimed afterwards.
			var pimg leafImage
			readLeaf(t0, prevLeaf, &pimg)
			pimg.setMeta(packLeafMeta(pimg.bitmap(), next))
			t0.Store(prevLeaf.Add(8*leafMetaWord), pimg.meta())
			t0.Persist(prevLeaf, pmem.WordSize)
			emptyLeaves = append(emptyLeaves, cur)
			st.EmptyLeavesReclaimed++
			cur = next
			continue
		}
		for i := 0; i < LeafSlots; i++ {
			if !img.slotValid(i) {
				continue
			}
			if !keyOK(img.key(i)) || !valOK(img.val(i)) {
				return nil, nil, corruptf("leaf", cur, "slot %d words impossible in this mode", i)
			}
			if err := trackWord(img.key(i)); err != nil {
				return nil, nil, err
			}
			if err := trackWord(img.val(i)); err != nil {
				return nil, nil, err
			}
		}
		lowKey := uint64(0)
		if cur != headLeaf {
			first := true
			for i := 0; i < LeafSlots; i++ {
				if !img.slotValid(i) {
					continue
				}
				if first || tr.compare(t0, img.key(i), lowKey) < 0 {
					lowKey = img.key(i)
					first = false
				}
			}
		}
		// Leaves must be ordered: low keys strictly increase along the
		// chain. A violation would send the replay router in circles
		// (findBuffer routes by key order, rangeOK checks chain order).
		if prevNode != nil && tr.compare(t0, lowKey, prevNode.lowKey) <= 0 {
			return nil, nil, corruptf("leaf list", cur, "low keys out of order")
		}
		n := newBufferNode(cur, lowKey, opts.Nbatch)
		if prevNode != nil {
			prevNode.next.Store(n)
			n.prev.Store(prevNode)
		} else {
			tr.head = n
		}
		tr.inner.put(t0, lowKey, n)
		nodes = append(nodes, n)
		tr.leafCount.Add(1)
		prevNode = n
		prevLeaf = cur
		cur = next
	}
	t0.SetTag(prevTag)
	st.Leaves = int64(len(nodes))

	// Phase 2: scan all live chunks (parallel over chunks), dedup
	// entries to the newest version per logical key, and decide replay
	// vs stale by comparing with the pre-crash leaf timestamps
	// (parallel over entries). No writes happen here, so the timestamp
	// comparisons are stable even though later replay may split leaves.
	// A pinned shard keeps even its recovery threads on the home socket
	// (the whole point of the placement); a whole-device tree spreads
	// them across sockets as before.
	recoverySocket := func(i int) int {
		if opts.ArenaCount > 1 {
			return home
		}
		return i % pool.Sockets()
	}
	scanThreads := make([]*pmem.Thread, threads)
	for i := range scanThreads {
		scanThreads[i] = pool.NewThread(recoverySocket(i))
		scanThreads[i].PushScope(pmem.ScopeRecovery)
	}
	entryLists := make([][]wal.Entry, threads)
	var wgScan sync.WaitGroup
	for i := 0; i < threads; i++ {
		wgScan.Add(1)
		go func(i int) {
			defer wgScan.Done()
			for j := i; j < len(chunks); j += threads {
				entryLists[i] = append(entryLists[i],
					wal.ReadEntriesInChunks(scanThreads[i], []pmem.Addr{chunks[j]}, chunkBytes)...)
			}
		}(i)
	}
	wgScan.Wait()

	type pending struct {
		kv KV
		ts uint64
	}
	newest := map[uint64][]pending{} // logical-key hash -> candidates
	keyHash := func(kw uint64) uint64 {
		if !opts.VarKV {
			return kw
		}
		return hashKeyBytes(readBlob(t0, kw))
	}
	sameKey := func(a, b uint64) bool { return tr.compare(t0, a, b) == 0 }
	// entryOK rejects records whose words cannot have come from a real
	// append in this tree's mode. Unlike structural corruption, a bad log
	// record is dropped rather than fatal: recycled chunks legitimately
	// hold residue, and recovery's job is to replay what is provably
	// intact.
	entryOK := func(e wal.Entry) bool { return keyOK(e.Key) && valOK(e.Value) }
	for _, lst := range entryLists {
		for _, e := range lst {
			st.EntriesSeen++
			if !entryOK(e) || trackWord(e.Key) != nil || trackWord(e.Value) != nil {
				st.EntriesDropped++
				continue
			}
			noteTick(e.Timestamp)
			h := keyHash(e.Key)
			bucket := newest[h]
			found := false
			for i := range bucket {
				if sameKey(bucket[i].kv.Key, e.Key) {
					if e.Timestamp > bucket[i].ts {
						bucket[i] = pending{KV{e.Key, e.Value}, e.Timestamp}
					}
					found = true
					break
				}
			}
			if !found {
				bucket = append(bucket, pending{KV{e.Key, e.Value}, e.Timestamp})
			}
			newest[h] = bucket
		}
	}
	candidates := make([]pending, 0, len(newest))
	for _, bucket := range newest {
		candidates = append(candidates, bucket...)
	}
	// Resume the tick domain past the image (plus the uncertainty
	// boundary, so post-recovery ticks are *definitely* after pre-crash
	// ones) before the replay workers start stamping.
	tr.clock.AdvanceTo(maxTick + opts.OrdoBoundary)
	// Route each candidate and compare with its leaf's pre-crash
	// timestamp, in parallel (read-only).
	replayLists := make([][]KV, threads)
	staleCounts := make([]int, threads)
	for i := 0; i < threads; i++ {
		wgScan.Add(1)
		go func(i int) {
			defer wgScan.Done()
			t := scanThreads[i]
			for j := i; j < len(candidates); j += threads {
				p := candidates[j]
				n := tr.findBuffer(t, p.kv.Key)
				leafTS := t.Load(n.leaf.Add(8 * leafTSWord))
				if p.ts > leafTS {
					replayLists[i] = append(replayLists[i], p.kv)
				} else {
					staleCounts[i]++
				}
			}
		}(i)
	}
	wgScan.Wait()
	var replay []KV
	for i := range replayLists {
		replay = append(replay, replayLists[i]...)
		st.EntriesStale += staleCounts[i]
	}
	st.EntriesReplayed = len(replay)

	// The bump pointers must clear every reachable object before any
	// replay write allocates (splits).
	for s := range maxEnd {
		tr.alloc.SetBump(s, maxEnd[s])
	}
	for _, a := range emptyLeaves {
		tr.alloc.Free(a, LeafBytes)
	}

	// Phase 3 (parallel): apply surviving entries directly to leaves
	// through the normal batch-insert machinery (locking per node, so
	// splits during replay stay correct).
	workers := make([]*Worker, threads)
	for i := range workers {
		workers[i] = tr.NewWorker(recoverySocket(i))
		// Replay traffic (leaf flushes, splits, log re-appends) is
		// recovery-caused; wal.Append still claims its own bytes.
		//persistlint:ignore PL012 replay workers live only for phase 3; their threads die scoped
		workers[i].t.PushScope(pmem.ScopeRecovery)
	}
	var wg sync.WaitGroup
	replayErrs := make([]error, threads)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			for j := i; j < len(replay); j += threads {
				if err := w.replayApply(replay[j]); err != nil {
					replayErrs[i] = err
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range replayErrs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Logs are now redundant: every surviving entry is durable in a
	// leaf. Rebuild the directory empty and recycle the chunk space.
	tr.dir = newChunkDir(pool.NewThread(home), dirAddr, dirSlots)
	tr.dir.prof = tr.prof
	tr.dir.clearAll()
	tr.walman.OnAcquire = tr.dir.register
	tr.walman.OnRelease = tr.dir.unregister
	tr.walman.AdoptChunks(chunks)

	var maxWorker int64
	for _, w := range workers {
		// Recovery is over; the workers stay registered (their logs are
		// reclaimed in later GC rounds) and must not keep attributing.
		w.t.PopScope(pmem.ScopeNone)
		if w.t.Now() > maxWorker {
			maxWorker = w.t.Now()
		}
	}
	var maxScan int64
	for _, t := range scanThreads {
		if t.Now() > maxScan {
			maxScan = t.Now()
		}
	}
	st.VirtualNS = t0.Now() + maxScan + maxWorker
	tr.tracer.Emit(obs.EvRecovery, 0, st.VirtualNS,
		uint64(st.EntriesReplayed), uint64(st.EntriesStale))
	return tr, st, nil
}

// ProbeArenaCount reports how many arenas the pool was carved into when
// its trees were created, by reading the placement recorded in the
// shard-0 superblock (arena 0 starts at offset 0 for every count, and
// shard 0 is always homed on socket 0, so that superblock is at a fixed
// location regardless of the carving). It lets the DB frontend
// auto-detect the shard count on Open instead of requiring the caller
// to remember it. Returns an error if the pool holds no tree at all.
func ProbeArenaCount(pool *pmem.Pool) (int, error) {
	t := pool.NewThread(0)
	//persistlint:ignore PL012 probe thread is dropped at return; nothing to pop for
	t.PushScope(pmem.ScopeRecovery)
	var sbw [sbWords]uint64
	t.ReadRange(pmem.MakeAddr(0, sbOffset), sbw[:])
	if sbw[0] != sbMagic {
		return 0, fmt.Errorf("core: no tree found in pool (bad superblock magic %#x)", sbw[0])
	}
	_, count := sbArena(sbw[5])
	return count, nil
}

// replayApply routes one recovered KV to its leaf and applies it with
// the normal crash-consistent batch insert.
func (w *Worker) replayApply(kv KV) error {
	tr := w.tree
	for {
		n := tr.findBuffer(w.t, kv.Key)
		v, ok := n.tryLock()
		if !ok {
			runtime.Gosched()
			continue
		}
		if !w.rangeOK(n, kv.Key) {
			n.unlock(v)
			continue
		}
		_, err := w.leafBatchInsert(n, []KV{kv})
		n.unlock(v)
		if err != nil {
			return fmt.Errorf("core: recovery replay: %w", err)
		}
		return nil
	}
}
