package obs

import (
	"sync/atomic"
	"time"
)

// LockClass names one of the concurrency layer's declared locks — the
// same classes persistlint's lock-order rule (PL006) declares, so the
// profiler's output and the linter's discipline speak about the same
// objects.
type LockClass uint8

// The instrumented lock classes, outermost first.
const (
	LockSTW      LockClass = iota // Tree.stw (naive-GC stop-the-world)
	LockWorkers                   // Tree.workersMu (worker registry)
	LockGC                        // Tree.gcMu (GC round rendezvous)
	LockInner                     // innerTree.mu (DRAM routing directory)
	LockChunkDir                  // chunkDir.mu (persistent chunk directory)
	NumLockClasses
)

var lockClassNames = [NumLockClasses]string{
	"stw", "workersMu", "gcMu", "inner.mu", "chunkdir.mu",
}

func (c LockClass) String() string {
	if int(c) < len(lockClassNames) {
		return lockClassNames[c]
	}
	return "unknown"
}

// Sampling: every acquisition is counted (one atomic add); one in
// 2^lockSampleShift is timed — wait from just before the blocking call
// to just after it, hold from acquisition to just after the unlock.
// Lock waits are host phenomena (mutex waits do not advance the
// virtual clock), so both histograms are in wall-clock nanoseconds,
// unlike the span segments which partition virtual time.
const lockSampleShift = 6 // 1 in 64

// contendedWaitNS classifies a sampled wait as contended: an
// uncontended futex round-trip sits well under a microsecond, so a
// sampled wait at or above it means the lock was actually held.
const contendedWaitNS = 1000

// profEpoch anchors the profiler's monotonic clock; time.Since reads
// the monotonic reading without allocating.
var profEpoch = time.Now()

func nowNS() int64 { return int64(time.Since(profEpoch)) }

// lockShard is one class's counters. The padding keeps hot neighbor
// classes off each other's cachelines.
type lockShard struct {
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	wait         histShard
	hold         histShard
	_            [48]byte
}

// LockProfiler records classed, sampled lock wait/hold times and exact
// acquisition counts. All methods are nil-safe and allocation-free; on
// the unsampled fast path an acquisition costs one atomic add.
type LockProfiler struct {
	classes [NumLockClasses]lockShard
}

// NewLockProfiler returns an empty profiler.
func NewLockProfiler() *LockProfiler { return &LockProfiler{} }

// LockToken carries a sampled acquisition's timing state between the
// profiler calls bracketing a lock site. The zero token means "not
// sampled" and makes every subsequent call a no-op, so call sites need
// no sampling branch of their own.
type LockToken struct {
	t0 int64
}

// Pre counts one acquisition of c and opens a wait-time sample for one
// in 2^lockSampleShift of them. Call immediately before Lock/RLock:
//
//	tok := p.Pre(obs.LockInner)
//	tr.mu.Lock()
//	tok = p.Acquired(obs.LockInner, tok)
//	defer p.Released(obs.LockInner, tok)
//	defer tr.mu.Unlock()
func (p *LockProfiler) Pre(c LockClass) LockToken {
	if p == nil {
		return LockToken{}
	}
	if p.classes[c].acquisitions.Add(1)&(1<<lockSampleShift-1) != 0 {
		return LockToken{}
	}
	return LockToken{t0: nowNS()}
}

// Acquired closes the wait-time sample and opens the hold-time sample.
// Call immediately after the lock call; the returned token feeds
// Released.
func (p *LockProfiler) Acquired(c LockClass, tok LockToken) LockToken {
	if p == nil || tok.t0 == 0 {
		return LockToken{}
	}
	now := nowNS()
	wait := now - tok.t0
	if wait < 0 {
		wait = 0
	}
	sh := &p.classes[c]
	sh.wait.observe(uint64(wait))
	if wait >= contendedWaitNS {
		sh.contended.Add(1)
	}
	return LockToken{t0: now}
}

// Released closes the hold-time sample. Call after the unlock (with
// the paired-defer pattern above it runs right after the deferred
// Unlock, so the tail of the critical section is included).
func (p *LockProfiler) Released(c LockClass, tok LockToken) {
	if p == nil || tok.t0 == 0 {
		return
	}
	d := nowNS() - tok.t0
	if d < 0 {
		d = 0
	}
	p.classes[c].hold.observe(uint64(d))
}

// LockStat is the exported snapshot of one lock class. Acquisitions is
// exact; the wait/hold quantiles come from the 1-in-2^lockSampleShift
// sample, and Contended counts sampled waits ≥ 1 µs (a sampled lower
// bound on contention events, not an exact count).
type LockStat struct {
	Class        string `json:"class"`
	Acquisitions uint64 `json:"acquisitions"`
	Contended    uint64 `json:"contended,omitempty"`
	WaitSamples  uint64 `json:"wait_samples,omitempty"`
	WaitP50NS    uint64 `json:"wait_p50_ns,omitempty"`
	WaitP99NS    uint64 `json:"wait_p99_ns,omitempty"`
	WaitP999NS   uint64 `json:"wait_p999_ns,omitempty"`
	WaitMaxNS    uint64 `json:"wait_max_ns,omitempty"`
	HoldP50NS    uint64 `json:"hold_p50_ns,omitempty"`
	HoldP99NS    uint64 `json:"hold_p99_ns,omitempty"`
	HoldP999NS   uint64 `json:"hold_p999_ns,omitempty"`
	HoldMaxNS    uint64 `json:"hold_max_ns,omitempty"`
}

// Snapshot returns the classes with at least one acquisition, in
// declaration (outermost-first) order. Safe while recording continues;
// like Metrics.Snapshot the result is not a consistent cut.
func (p *LockProfiler) Snapshot() []LockStat {
	if p == nil {
		return nil
	}
	var out []LockStat
	for c := LockClass(0); c < NumLockClasses; c++ {
		sh := &p.classes[c]
		acq := sh.acquisitions.Load()
		if acq == 0 {
			continue
		}
		wait := sh.wait.snapshot(lockClassNames[c] + "_wait")
		hold := sh.hold.snapshot(lockClassNames[c] + "_hold")
		out = append(out, LockStat{
			Class:        lockClassNames[c],
			Acquisitions: acq,
			Contended:    sh.contended.Load(),
			WaitSamples:  wait.Count,
			WaitP50NS:    wait.P50(),
			WaitP99NS:    wait.P99(),
			WaitP999NS:   wait.P999(),
			WaitMaxNS:    wait.Max,
			HoldP50NS:    hold.P50(),
			HoldP99NS:    hold.P99(),
			HoldP999NS:   hold.P999(),
			HoldMaxNS:    hold.Max,
		})
	}
	return out
}
