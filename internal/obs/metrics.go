package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// CounterID names a registered counter; HistID a registered histogram.
// IDs are dense indexes into per-handle cell arrays, so recording is an
// array index plus one atomic add.
type (
	CounterID int
	HistID    int
)

// Histogram bucketing: values 0..7 map to their own bucket; larger
// values map to a log2 octave refined by the top 3 mantissa bits, so
// each bucket spans at most 1/8 of its octave (≤ ~6% relative width,
// good enough for p50/p99 reporting without per-sample storage).
const (
	histSubBits = 3
	numBuckets  = (64 - histSubBits + 1) * (1 << histSubBits) // 496
)

func bucketOf(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v, e >= histSubBits
	m := (v >> (uint(e) - histSubBits)) & (1<<histSubBits - 1)
	return (e-histSubBits+1)<<histSubBits + int(m)
}

// bucketValue returns a representative (lower-bound) value for bucket i.
func bucketValue(i int) uint64 {
	if i < 1<<histSubBits {
		return uint64(i)
	}
	e := i>>histSubBits + histSubBits - 1
	m := uint64(i & (1<<histSubBits - 1))
	return (1<<histSubBits + m) << (uint(e) - histSubBits)
}

// histShard is one handle's private histogram state.
type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

func (h *histShard) observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Metrics is a registry of named counters and histograms. Register
// everything (Counter, Histogram) before creating Handles: handles are
// sized at creation and do not grow.
type Metrics struct {
	mu           sync.Mutex
	counterNames []string
	histNames    []string
	handles      []*Handle
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter registers (or finds) a counter by name.
func (m *Metrics) Counter(name string) CounterID {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range m.counterNames {
		if n == name {
			return CounterID(i)
		}
	}
	if len(m.handles) > 0 {
		panic(fmt.Sprintf("obs: Counter(%q) after NewHandle; register first", name))
	}
	m.counterNames = append(m.counterNames, name)
	return CounterID(len(m.counterNames) - 1)
}

// Histogram registers (or finds) a latency histogram by name. Samples
// are unitless uint64s; by convention this codebase records virtual
// nanoseconds.
func (m *Metrics) Histogram(name string) HistID {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range m.histNames {
		if n == name {
			return HistID(i)
		}
	}
	if len(m.handles) > 0 {
		panic(fmt.Sprintf("obs: Histogram(%q) after NewHandle; register first", name))
	}
	m.histNames = append(m.histNames, name)
	return HistID(len(m.histNames) - 1)
}

// Handle is a per-thread recording shard. Like pmem.Thread it is
// single-owner: one goroutine at a time (PL004 checks this). All
// methods are allocation-free and nil-safe — a nil *Handle records
// nothing, so call sites need no "metrics enabled?" branch of their
// own.
type Handle struct {
	counters []atomic.Uint64
	hists    []histShard
}

// NewHandle creates a recording shard registered with m.
func (m *Metrics) NewHandle() *Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := &Handle{
		counters: make([]atomic.Uint64, len(m.counterNames)),
		hists:    make([]histShard, len(m.histNames)),
	}
	m.handles = append(m.handles, h)
	return h
}

// Add bumps counter id by n.
func (h *Handle) Add(id CounterID, n uint64) {
	if h == nil {
		return
	}
	h.counters[id].Add(n)
}

// Observe records one histogram sample.
func (h *Handle) Observe(id HistID, v uint64) {
	if h == nil {
		return
	}
	h.hists[id].observe(v)
}

// HistSnapshot is an aggregated histogram.
type HistSnapshot struct {
	Name    string `json:"name"`
	Count   uint64 `json:"count"`
	Sum     uint64 `json:"sum"`
	Max     uint64 `json:"max"`
	buckets [numBuckets]uint64
}

// snapshot reads the shard into a freestanding HistSnapshot. The
// per-cell loads are atomic but the snapshot as a whole is not a
// consistent cut (same contract as Metrics.Snapshot).
func (h *histShard) snapshot(name string) *HistSnapshot {
	hs := &HistSnapshot{
		Name:  name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for b := range hs.buckets {
		hs.buckets[b] = h.buckets[b].Load()
	}
	return hs
}

// Merge folds o into h (bucket-wise sum; quantiles of the merge are
// exact because both sides share the fixed bucket layout). The Name
// of h is kept.
func (h *HistSnapshot) Merge(o *HistSnapshot) {
	if o == nil {
		return
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for b := range h.buckets {
		h.buckets[b] += o.buckets[b]
	}
}

// Mean returns the average sample (0 when empty).
func (h *HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the q-quantile (0 < q <= 1) as the lower bound of
// the bucket containing it, 0 when empty.
func (h *HistSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			return bucketValue(i)
		}
	}
	return h.Max
}

// P50 is the median sample.
func (h *HistSnapshot) P50() uint64 { return h.Quantile(0.50) }

// P99 is the 99th-percentile sample.
func (h *HistSnapshot) P99() uint64 { return h.Quantile(0.99) }

// P999 is the 99.9th-percentile sample.
func (h *HistSnapshot) P999() uint64 { return h.Quantile(0.999) }

// Snapshot is a point-in-time aggregation over every handle.
type Snapshot struct {
	Counters map[string]uint64        `json:"counters"`
	Hists    map[string]*HistSnapshot `json:"histograms"`
}

// Snapshot aggregates all handles. Handles may keep recording
// concurrently; per-cell values are atomically read but the snapshot as
// a whole is not a consistent cut (same contract as pmem.Stats).
func (m *Metrics) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		Counters: make(map[string]uint64, len(m.counterNames)),
		Hists:    make(map[string]*HistSnapshot, len(m.histNames)),
	}
	for i, name := range m.counterNames {
		var total uint64
		for _, h := range m.handles {
			total += h.counters[i].Load()
		}
		s.Counters[name] = total
	}
	for i, name := range m.histNames {
		hs := &HistSnapshot{Name: name}
		for _, h := range m.handles {
			hs.Merge(h.hists[i].snapshot(name))
		}
		s.Hists[name] = hs
	}
	return s
}

// Merge folds o into s: counters sum, histograms merge bucket-wise
// (exact, same layout). The sharded DB frontend uses it to aggregate
// per-shard latency snapshots into one DB-wide view.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Hists == nil {
		s.Hists = map[string]*HistSnapshot{}
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, h := range o.Hists {
		if mine := s.Hists[name]; mine != nil {
			mine.Merge(h)
			continue
		}
		cp := *h
		s.Hists[name] = &cp
	}
}

// CounterNames returns the registered counter names, sorted.
func (m *Metrics) CounterNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.counterNames...)
	sort.Strings(out)
	return out
}
