package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"cclbtree/internal/pmem"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	EvInsert EventKind = iota
	EvLookup
	EvScan
	EvDelete
	EvFlushBatch // buffer-node batch flushed into a PM leaf
	EvSplit
	EvMerge
	EvGCRound
	EvCacheEvict // CPU cache wrote back an unflushed dirty line
	EvXPBufEvict // XPBuffer evicted a dirty XPLine to media
	EvCrash
	EvRecovery
	EvBatchApply // ApplyBatch group commit (A = ops, B = WAL fences saved)
	EvSegment    // critical-path span segment (A = PackSpan(op,seg), B = duration ns, VT = segment start)
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"insert", "lookup", "scan", "delete", "flush-batch", "split",
	"merge", "gc-round", "cache-evict", "xpbuf-evict", "crash",
	"recovery", "batch-apply", "segment",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one recorded trace entry. Seq is a global monotonic sequence
// number (gaps mean the ring wrapped); VT is the emitting thread's
// virtual time in nanoseconds (0 for device-level events, which have no
// thread clock); A and B are event-specific payloads (key hash, byte
// count, XPLine index, ...).
type Event struct {
	Seq    uint64    `json:"seq"`
	Kind   EventKind `json:"-"`
	Name   string    `json:"kind"`
	Worker int       `json:"worker"`
	VT     int64     `json:"vt"`
	A      uint64    `json:"a"`
	B      uint64    `json:"b"`
}

// slot is one ring entry. The write protocol is a seqlock: the writer
// stores seq=0, fills the payload, then stores the real (non-zero)
// sequence number. A reader that sees seq==0, or a different seq after
// re-reading, discards the slot as torn.
type slot struct {
	seq    atomic.Uint64
	kind   atomic.Uint64
	worker atomic.Uint64
	vt     atomic.Int64
	a, b   atomic.Uint64
}

// Tracer is a lock-free fixed-capacity event ring. Emit is safe from
// any goroutine; when the ring wraps, the oldest events are overwritten
// (the tracer favors recency — the events leading up to the thing you
// are debugging). A nil or disabled Tracer makes Emit a no-op costing
// one atomic load and zero allocations.
type Tracer struct {
	on    atomic.Bool
	seq   atomic.Uint64
	mask  uint64
	slots []slot
}

// NewTracer creates a tracer holding capacity events (rounded up to a
// power of two, minimum 64), initially disabled.
func NewTracer(capacity int) *Tracer {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Enable turns event recording on.
func (t *Tracer) Enable() { t.on.Store(true) }

// Disable turns event recording off (already-recorded events remain).
func (t *Tracer) Disable() { t.on.Store(false) }

// Enabled reports whether Emit currently records.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// Emit records one event. Safe (and free) on a nil or disabled tracer.
func (t *Tracer) Emit(kind EventKind, worker int, vt int64, a, b uint64) {
	if t == nil || !t.on.Load() {
		return
	}
	n := t.seq.Add(1)
	s := &t.slots[n&t.mask]
	s.seq.Store(0)
	s.kind.Store(uint64(kind))
	s.worker.Store(uint64(worker))
	s.vt.Store(vt)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(n)
}

// DeviceHook adapts the tracer to pmem.Pool.SetDeviceTracer, recording
// cache evictions, XPBuffer evictions and crashes as events (worker =
// socket, A = XPLine index, VT = 0: the device has no thread clock).
func (t *Tracer) DeviceHook() pmem.DeviceTracer {
	return func(ev pmem.DeviceEvent, socket int, xpline uint64) {
		var k EventKind
		switch ev {
		case pmem.DevCacheEvict:
			k = EvCacheEvict
		case pmem.DevXPBufEvict:
			k = EvXPBufEvict
		case pmem.DevCrash:
			k = EvCrash
		default:
			return
		}
		t.Emit(k, socket, 0, xpline, 0)
	}
}

// Events returns the surviving ring contents ordered by sequence
// number. Torn slots (overwritten mid-read) are skipped.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		e := Event{
			Seq:    seq,
			Kind:   EventKind(s.kind.Load()),
			Worker: int(s.worker.Load()),
			VT:     s.vt.Load(),
			A:      s.a.Load(),
			B:      s.b.Load(),
		}
		if s.seq.Load() != seq {
			continue // torn: overwritten while reading
		}
		e.Name = e.Kind.String()
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSON dumps the ring as a JSON array of Event objects.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	for i, e := range t.Events() {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, `  {"seq":%d,"kind":%q,"worker":%d,"vt":%d,"a":%d,"b":%d}`,
			e.Seq, e.Name, e.Worker, e.VT, e.A, e.B)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteChromeTrace dumps the ring in Chrome trace_event format
// (chrome://tracing, Perfetto): timestamped with virtual time in
// microseconds, one track per worker. Span segments (EvSegment) render
// as complete duration events ("X") named "op/segment" so the critical
// path is visible as stacked bars; everything else is an instant
// event. Events with no thread clock (device events) land on their
// socket's track at ts 0.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[` + "\n")
	for i, e := range t.Events() {
		if i > 0 {
			bw.WriteString(",\n")
		}
		if e.Kind == EvSegment {
			op, seg := UnpackSpan(e.A)
			fmt.Fprintf(bw,
				`  {"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"seq":%d}}`,
				op.String()+"/"+seg.String(), float64(e.VT)/1e3, float64(e.B)/1e3,
				e.Worker, e.Seq)
			continue
		}
		fmt.Fprintf(bw,
			`  {"name":%q,"ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{"seq":%d,"a":%d,"b":%d}}`,
			e.Name, float64(e.VT)/1e3, e.Worker, e.Seq, e.A, e.B)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
