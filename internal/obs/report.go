package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// PhaseRecord is one measured phase of a bench experiment: one
// (index, thread-count, workload) cell, with its counter deltas and
// latency quantiles.
type PhaseRecord struct {
	Phase   string `json:"phase"` // e.g. "03:ccl-btree/t8"
	Index   string `json:"index"`
	Threads int    `json:"threads"`
	Ops     uint64 `json:"ops"`

	ElapsedVTNanos int64   `json:"elapsed_vt_ns"` // modeled wall time
	MopsPerSec     float64 `json:"mops"`
	P50Nanos       uint64  `json:"p50_ns,omitempty"` // 0 when latency off
	P99Nanos       uint64  `json:"p99_ns,omitempty"`

	UserBytes       uint64  `json:"user_bytes"`
	MediaWriteBytes uint64  `json:"media_write_bytes"`
	XPBufWriteBytes uint64  `json:"xpbuf_write_bytes"`
	WAFactor        float64 `json:"wa_factor"`
	CLIFactor       float64 `json:"cli_factor"`
	XPBufHitRate    float64 `json:"xpbuf_write_hit_rate"`

	ScopeMediaBytes map[string]uint64 `json:"scope_media_bytes"`
	TagMediaBytes   map[string]uint64 `json:"tag_media_bytes"`

	// Profile is the phase-end contention/span/heat tier, present when
	// the index under test exposes one (cumulative since the index was
	// created, not a per-phase delta — phases share one tree).
	Profile *Profile `json:"profile,omitempty"`

	// ShardBreakdown attributes a sharded phase to its shards: one
	// entry per commit lane when the phase ran through the serving
	// tier, absent for single-tree phases.
	ShardBreakdown []ShardPhase `json:"shards,omitempty"`
}

// ShardPhase is one shard's slice of a sharded phase: the commit-lane
// attribution the serving tier reports per shard.
type ShardPhase struct {
	Shard      int     `json:"shard"`
	HomeSocket int     `json:"home_socket"`
	Ops        uint64  `json:"ops"`
	Batches    uint64  `json:"batches"`
	AvgBatch   float64 `json:"avg_batch"`
	// VirtualNS is the shard's commit lane busy time in the device
	// model during the phase.
	VirtualNS int64 `json:"virtual_ns"`
	// Upserts is the shard tree's write count for the phase.
	Upserts uint64 `json:"upserts"`
}

// BenchReport is the machine-readable record one experiment emits:
// every measured phase in run order. Partial/Err mark a report rescued
// from a panicking experiment — the phases recorded before the panic
// are intact.
type BenchReport struct {
	Name    string        `json:"name"`
	Partial bool          `json:"partial,omitempty"`
	Err     string        `json:"error,omitempty"`
	Phases  []PhaseRecord `json:"phases"`
}

// FileName is the canonical emission name for an experiment record.
func FileName(name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
	return "BENCH_" + clean + ".json"
}

// WriteFile writes the report as dir/BENCH_<name>.json (dir "" means
// the current directory) and returns the path written.
func (r *BenchReport) WriteFile(dir string) (string, error) {
	path := filepath.Join(dir, FileName(r.Name))
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: marshal report %q: %w", r.Name, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("obs: write report: %w", err)
	}
	return path, nil
}

// ReadBenchReport loads a report written by WriteFile (cclstat --replay).
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read report: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parse report %s: %w", path, err)
	}
	return &r, nil
}
