package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"cclbtree/internal/pmem"
)

// Observation is the flattened, JSON-friendly view of a counter
// snapshot: what cclstat renders and what the -http endpoint serves.
// Byte counts are deltas since pool creation or the last ResetStats.
type Observation struct {
	Label string `json:"label,omitempty"`
	VT    int64  `json:"vt,omitempty"` // virtual time of the snapshot, if known

	MediaWriteBytes uint64 `json:"media_write_bytes"`
	MediaReadBytes  uint64 `json:"media_read_bytes"`
	XPBufWriteBytes uint64 `json:"xpbuf_write_bytes"`
	UserBytes       uint64 `json:"user_bytes"`
	CacheEvictions  uint64 `json:"cache_evictions"`
	RemoteAccesses  uint64 `json:"remote_accesses"`

	WAFactor          float64 `json:"wa_factor"`  // media / user (XBI)
	CLIFactor         float64 `json:"cli_factor"` // xpbuf / user
	XPBufWriteHitRate float64 `json:"xpbuf_write_hit_rate"`

	ScopeMediaBytes map[string]uint64 `json:"scope_media_bytes"`
	ScopeXPBufBytes map[string]uint64 `json:"scope_xpbuf_bytes"`
	TagMediaBytes   map[string]uint64 `json:"tag_media_bytes"`

	// Profile carries the contention/span/heat tier when the observed
	// index exposes one (nil otherwise — byte counters always work,
	// profiling is opt-in via Metrics).
	Profile *Profile `json:"profile,omitempty"`
}

// FromStats flattens a pmem.Stats snapshot.
func FromStats(s pmem.Stats) Observation {
	o := Observation{
		MediaWriteBytes:   s.MediaWriteBytes,
		MediaReadBytes:    s.MediaReadBytes,
		XPBufWriteBytes:   s.XPBufWriteBytes,
		UserBytes:         s.UserWriteBytes,
		CacheEvictions:    s.CacheEvictions,
		RemoteAccesses:    s.RemoteAccesses,
		WAFactor:          s.AmplificationFactor(),
		CLIFactor:         s.CLIAmplification(),
		XPBufWriteHitRate: s.WriteHitRate(),
		ScopeMediaBytes:   s.ScopeMediaBytes(),
		TagMediaBytes:     s.TagMediaBytes(),
		ScopeXPBufBytes:   map[string]uint64{},
	}
	for i, v := range s.XPBufWriteByScope {
		if v > 0 {
			o.ScopeXPBufBytes[pmem.Scope(i).String()] = v
		}
	}
	return o
}

// Observe snapshots a pool as an Observation (the obs-side counterpart
// of pmem.Pool.Observe, which returns the raw Stats).
func Observe(p *pmem.Pool) Observation { return FromStats(p.Stats()) }

// live is the currently installed Observation source for the HTTP
// endpoint. Process-global: a process benches one pool at a time.
var live atomic.Pointer[func() Observation]

// SetLive installs f as the source behind Handler (nil uninstalls).
// The bench harness points this at the pool of the currently running
// experiment.
func SetLive(f func() Observation) {
	if f == nil {
		live.Store(nil)
		return
	}
	live.Store(&f)
}

// Handler returns an expvar-style HTTP handler serving the live
// Observation as JSON. Responds 503 while no source is installed
// (between experiments). cclstat -attach polls this endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := live.Load()
		if f == nil {
			http.Error(w, "no live observation source", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode((*f)())
	})
}
