package obs

// ProfilerBudgetNS is the stated overhead budget for one profiled
// event on the host CPU: a fully bracketed lock site (Pre + Acquired +
// Released, sampling amortized), one heatmap Touch, or one span
// segment record must each average under this. DESIGN.md documents the
// budget; TestObsOverheadBudget enforces it, and scripts/check.sh runs
// that test so a profiler regression fails CI. Future work that leans
// on this layer (lock-free reads, tiering) may instrument hotter paths
// only while the budget holds.
const ProfilerBudgetNS = 150
