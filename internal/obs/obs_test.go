package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 31, 32, 100, 1000, 1 << 20, 1<<40 + 17} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		if b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if bv := bucketValue(b); bv > v {
			t.Fatalf("bucketValue(%d) = %d exceeds sample %d", b, bv, v)
		}
		prev = b
	}
	// Round-trip: the representative of v's bucket maps back to the
	// same bucket.
	for v := uint64(0); v < 4096; v++ {
		b := bucketOf(v)
		if bucketOf(bucketValue(b)) != b {
			t.Fatalf("bucketValue(%d)=%d not in bucket %d", b, bucketValue(b), b)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	m := NewMetrics()
	id := m.Histogram("lat")
	h := m.NewHandle()
	// Uniform 1..1000: p50 ≈ 500, p99 ≈ 990, within bucket width (12.5%).
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(id, i)
	}
	s := m.Snapshot()
	hs := s.Hists["lat"]
	if hs.Count != 1000 || hs.Max != 1000 {
		t.Fatalf("count=%d max=%d", hs.Count, hs.Max)
	}
	if got := hs.Mean(); got < 499 || got > 502 {
		t.Fatalf("mean = %v", got)
	}
	if p := hs.P50(); p < 400 || p > 520 {
		t.Fatalf("p50 = %d, want ≈500", p)
	}
	if p := hs.P99(); p < 850 || p > 1000 {
		t.Fatalf("p99 = %d, want ≈990", p)
	}
	if hs.Quantile(1.0) < hs.P99() {
		t.Fatal("quantiles not monotone")
	}
}

func TestCountersAggregateAcrossHandles(t *testing.T) {
	m := NewMetrics()
	ops := m.Counter("ops")
	errs := m.Counter("errs")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		h := m.NewHandle()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				//persistlint:ignore PL004 a fresh handle is created per iteration; ownership transfers to the goroutine
				h.Add(ops, 1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Counters["ops"] != 4000 {
		t.Fatalf("ops = %d, want 4000", s.Counters["ops"])
	}
	if s.Counters["errs"] != 0 {
		t.Fatalf("errs = %d", s.Counters["errs"])
	}
	_ = errs
}

func TestRegisterAfterHandlePanics(t *testing.T) {
	m := NewMetrics()
	m.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after NewHandle")
		}
	}()
	m.Counter("late")
}

func TestNilHandleSafe(t *testing.T) {
	var h *Handle
	h.Add(0, 1)
	h.Observe(0, 1)
}

// TestEmitDisabledZeroAlloc is the tracer-disabled allocation guard
// from the issue's CI satellite: Emit on a disabled (and on a nil)
// tracer must allocate nothing.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	tr := NewTracer(128)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvInsert, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %v/op, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(EvInsert, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("nil Emit allocates %v/op, want 0", n)
	}
}

// Enabled Emit must not allocate either — the ring is preallocated.
func TestEmitEnabledZeroAlloc(t *testing.T) {
	tr := NewTracer(128)
	tr.Enable()
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvFlushBatch, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %v/op, want 0", n)
	}
}

// Metrics recording must be allocation-free too.
func TestHandleZeroAlloc(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("ops")
	hid := m.Histogram("lat")
	h := m.NewHandle()
	if n := testing.AllocsPerRun(1000, func() {
		h.Add(c, 1)
		h.Observe(hid, 137)
	}); n != 0 {
		t.Fatalf("recording allocates %v/op, want 0", n)
	}
}

func TestTracerRoundtrip(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(EvInsert, 0, 1, 2, 3) // disabled: dropped
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(EvInsert, i, int64(i*100), uint64(i), 0)
	}
	tr.Emit(EvCrash, 0, 1234, 0, 0)
	tr.Disable()
	tr.Emit(EvLookup, 9, 9, 9, 9) // dropped again

	evs := tr.Events()
	if len(evs) != 11 {
		t.Fatalf("got %d events, want 11", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("events not seq-ordered")
		}
	}
	if evs[10].Kind != EvCrash || evs[10].Name != "crash" || evs[10].VT != 1234 {
		t.Fatalf("last event = %+v", evs[10])
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 11 || decoded[0]["kind"] != "insert" {
		t.Fatalf("decoded %d events, first %v", len(decoded), decoded[0])
	}

	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(chrome.TraceEvents) != 11 || chrome.TraceEvents[0].Ph != "i" {
		t.Fatalf("chrome trace: %d events", len(chrome.TraceEvents))
	}
}

func TestTracerWrap(t *testing.T) {
	tr := NewTracer(64) // capacity rounds to 64
	tr.Enable()
	for i := 0; i < 1000; i++ {
		tr.Emit(EvLookup, 0, int64(i), uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(evs))
	}
	if evs[len(evs)-1].Seq != 1000 {
		t.Fatalf("newest seq = %d, want 1000", evs[len(evs)-1].Seq)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(256)
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				tr.Emit(EventKind(r.Intn(int(NumEventKinds))), w, int64(i), uint64(i), 0)
				if i%100 == 0 {
					tr.Events() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range tr.Events() {
		if e.Kind >= NumEventKinds {
			t.Fatalf("torn event leaked: %+v", e)
		}
	}
}

func TestBenchReportRoundtrip(t *testing.T) {
	r := &BenchReport{
		Name: "fig9a",
		Phases: []PhaseRecord{{
			Phase: "00:ccl-btree/t4", Index: "ccl-btree", Threads: 4,
			Ops: 1000, MopsPerSec: 1.5, WAFactor: 3.2,
			MediaWriteBytes: 4096,
			ScopeMediaBytes: map[string]uint64{"wal": 1024, "leafbuf": 3072},
		}},
	}
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_fig9a.json" {
		t.Fatalf("file name %s", path)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "fig9a" || len(got.Phases) != 1 ||
		got.Phases[0].ScopeMediaBytes["wal"] != 1024 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestFileNameSanitizes(t *testing.T) {
	if got := FileName("a/b c"); got != "BENCH_a_b_c.json" {
		t.Fatalf("FileName = %q", got)
	}
}
