package obs

import (
	"sort"
	"sync/atomic"
)

// Heatmap is a bounded, lock-free table of per-leaf access counters
// feeding hot/cold decisions: which leaves absorb enough traffic to
// justify a DRAM-resident tier. Counters are keyed by leaf address and
// decay by epoch rotation — every rotation the current epoch's counts
// fold into an exponentially decaying history, so the map tracks the
// working set rather than all-time totals, and slots that cool down
// completely are released for new leaves.
//
// The structure is deliberately approximate where exactness would cost
// synchronization: a Touch racing a rotation can land its increment in
// either epoch, a slot released mid-touch can leak a count into its
// next tenant, and a saturated probe run drops the sample (counted in
// Dropped). Every error is bounded and none compounds; the consumers
// (top-K summaries, tiering heuristics) only need ranking fidelity.
type Heatmap struct {
	slots   []heatSlot
	mask    uint64
	window  uint64
	touches atomic.Uint64
	epoch   atomic.Uint64
	dropped atomic.Uint64
	rotate  atomic.Bool
}

// heatSlot packs one leaf's counters: reads in the low half, writes in
// the high half of each word. addr holds leaf+1 so 0 means empty.
type heatSlot struct {
	addr atomic.Uint64
	cur  atomic.Uint64
	prev atomic.Uint64
}

// heatProbes bounds the linear probe run before a touch is dropped.
const heatProbes = 4

// NewHeatmap builds a map with the given slot count (rounded up to a
// power of two, minimum 64) rotating epochs every window touches
// (0 = never rotate automatically; Rotate can still be called).
func NewHeatmap(slots int, window int) *Heatmap {
	n := 64
	for n < slots {
		n <<= 1
	}
	h := &Heatmap{slots: make([]heatSlot, n), mask: uint64(n - 1)}
	if window > 0 {
		h.window = uint64(window)
	}
	return h
}

// heatMix is the SplitMix64 finalizer, scattering leaf addresses
// (which are allocation-ordered and stride-aligned) across the table.
func heatMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const heatHalfMask = 0xffffffff

// packInc returns the packed increment for one access.
func packInc(write bool) uint64 {
	if write {
		return 1 << 32
	}
	return 1
}

// halvePacked halves both packed halves (epoch decay).
func halvePacked(v uint64) uint64 {
	return (v >> 1) &^ (1<<63 | 1<<31)
}

func packedTotal(v uint64) uint64 { return v&heatHalfMask + v>>32 }

// Touch records one access to leaf. nil-safe, allocation-free; the
// common path is one hash, one atomic load and two atomic adds.
func (h *Heatmap) Touch(leaf uint64, write bool) {
	if h == nil {
		return
	}
	idx := heatMix(leaf)
	key := leaf + 1
	recorded := false
	for p := uint64(0); p < heatProbes; p++ {
		s := &h.slots[(idx+p)&h.mask]
		a := s.addr.Load()
		if a == 0 {
			if !s.addr.CompareAndSwap(0, key) {
				a = s.addr.Load() // lost the claim; maybe to our own leaf
				if a != key {
					continue
				}
			}
		} else if a != key {
			continue
		}
		s.cur.Add(packInc(write))
		recorded = true
		break
	}
	if !recorded {
		h.dropped.Add(1)
	}
	if w := h.window; w != 0 && h.touches.Add(1)%w == 0 {
		h.Rotate()
	}
}

// Rotate advances the decay epoch: each slot's current counts fold
// into its history (itself halved), and slots that cooled to zero are
// released. One rotator at a time; concurrent calls no-op. nil-safe.
func (h *Heatmap) Rotate() {
	if h == nil || !h.rotate.CompareAndSwap(false, true) {
		return
	}
	for i := range h.slots {
		s := &h.slots[i]
		if s.addr.Load() == 0 {
			continue
		}
		cur := s.cur.Swap(0)
		next := halvePacked(s.prev.Load()) + cur
		s.prev.Store(next)
		if next == 0 {
			// Cold for a full epoch: release the slot. A concurrent
			// Touch may sneak an increment between the Swap above and
			// this release; the count leaks to the slot's next tenant —
			// bounded, and rotation-rare.
			s.addr.Store(0)
		}
	}
	h.epoch.Add(1)
	h.rotate.Store(false)
}

// Epoch returns the number of completed rotations.
func (h *Heatmap) Epoch() uint64 {
	if h == nil {
		return 0
	}
	return h.epoch.Load()
}

// Dropped returns the number of touches not recorded because their
// probe runs were saturated by other leaves.
func (h *Heatmap) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// HeatEntry is one leaf in a heat summary. Reads/Writes count the
// current epoch plus the decayed history; Score is their sum (the
// exponential moving access volume the entries are ranked by).
type HeatEntry struct {
	Leaf   uint64 `json:"leaf"`
	Score  uint64 `json:"score"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
}

// TopK returns the k hottest leaves, hottest first. Allocates; meant
// for reporting paths, not the op path.
func (h *Heatmap) TopK(k int) []HeatEntry {
	if h == nil || k <= 0 {
		return nil
	}
	entries := make([]HeatEntry, 0, k)
	for i := range h.slots {
		s := &h.slots[i]
		a := s.addr.Load()
		if a == 0 {
			continue
		}
		v := s.cur.Load() + s.prev.Load()
		if v == 0 {
			continue
		}
		entries = append(entries, HeatEntry{
			Leaf:   a - 1,
			Score:  packedTotal(v),
			Reads:  v & heatHalfMask,
			Writes: v >> 32,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Leaf < entries[j].Leaf
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}
