//go:build race

package obs

// raceEnabled gates timing-sensitive overhead assertions: the race
// detector multiplies atomic-op cost, so budget checks only run in
// non-race builds.
const raceEnabled = true
