package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestLockProfilerCountsAndSamples(t *testing.T) {
	p := NewLockProfiler()
	n := 4 << lockSampleShift // guarantees exactly 4 sampled acquisitions
	for i := 0; i < n; i++ {
		tok := p.Pre(LockInner)
		tok = p.Acquired(LockInner, tok)
		p.Released(LockInner, tok)
	}
	stats := p.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("snapshot has %d classes, want 1 (untouched classes omitted)", len(stats))
	}
	s := stats[0]
	if s.Class != "inner.mu" {
		t.Fatalf("class = %q", s.Class)
	}
	if s.Acquisitions != uint64(n) {
		t.Fatalf("acquisitions = %d, want %d (counting must be exact, not sampled)", s.Acquisitions, n)
	}
	if s.WaitSamples != 4 {
		t.Fatalf("wait samples = %d, want 4 (1 in %d)", s.WaitSamples, 1<<lockSampleShift)
	}
}

func TestLockProfilerNilSafe(t *testing.T) {
	var p *LockProfiler
	tok := p.Pre(LockSTW)
	tok = p.Acquired(LockSTW, tok)
	p.Released(LockSTW, tok)
	if p.Snapshot() != nil {
		t.Fatal("nil profiler snapshot not nil")
	}
}

func TestLockProfilerZeroAlloc(t *testing.T) {
	p := NewLockProfiler()
	if n := testing.AllocsPerRun(1000, func() {
		tok := p.Pre(LockWorkers)
		tok = p.Acquired(LockWorkers, tok)
		p.Released(LockWorkers, tok)
	}); n != 0 {
		t.Fatalf("bracketed lock site allocates %v/op, want 0", n)
	}
}

func TestHeatmapTouchAndTopK(t *testing.T) {
	h := NewHeatmap(256, 0)
	for i := 0; i < 9; i++ {
		h.Touch(0x4000, false)
	}
	h.Touch(0x4000, true)
	for i := 0; i < 3; i++ {
		h.Touch(0x8000, true)
	}
	h.Touch(0xc000, false)

	top := h.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) returned %d entries", len(top))
	}
	if top[0].Leaf != 0x4000 || top[0].Score != 10 || top[0].Reads != 9 || top[0].Writes != 1 {
		t.Fatalf("hottest = %+v, want leaf 0x4000 score 10 (9r/1w)", top[0])
	}
	if top[1].Leaf != 0x8000 || top[1].Writes != 3 {
		t.Fatalf("second = %+v", top[1])
	}
	if len(h.TopK(10)) != 3 {
		t.Fatal("TopK(10) should return all 3 touched leaves")
	}
	if h.Dropped() != 0 {
		t.Fatalf("dropped = %d in an empty table", h.Dropped())
	}
}

func TestHeatmapRotationDecaysAndReleases(t *testing.T) {
	h := NewHeatmap(64, 0)
	for i := 0; i < 8; i++ {
		h.Touch(7, false)
	}
	// Scores across rotations: 8 → 8 (folded) → 4 → 2 → 1 → released.
	want := []uint64{8, 4, 2, 1}
	for _, w := range want {
		h.Rotate()
		top := h.TopK(1)
		if len(top) != 1 || top[0].Score != w {
			t.Fatalf("after %d rotations: %+v, want score %d", h.Epoch(), top, w)
		}
	}
	h.Rotate()
	if top := h.TopK(1); len(top) != 0 {
		t.Fatalf("cold slot not released: %+v", top)
	}
	if h.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", h.Epoch())
	}
	// The released slot is reusable.
	h.Touch(99, true)
	if top := h.TopK(1); len(top) != 1 || top[0].Leaf != 99 {
		t.Fatalf("slot not reusable after release: %+v", top)
	}
}

func TestHeatmapWindowAutoRotates(t *testing.T) {
	h := NewHeatmap(64, 10)
	for i := 0; i < 25; i++ {
		h.Touch(uint64(i%4), false)
	}
	if e := h.Epoch(); e != 2 {
		t.Fatalf("epoch = %d after 25 touches with window 10, want 2", e)
	}
}

func TestHeatmapDropsWhenSaturated(t *testing.T) {
	h := NewHeatmap(64, 0) // 64 slots, probe runs of 4
	const distinct = 400
	for i := 0; i < distinct; i++ {
		h.Touch(uint64(i)*64, false)
	}
	claimed := len(h.TopK(distinct))
	if claimed > 64 {
		t.Fatalf("claimed %d slots in a 64-slot table", claimed)
	}
	if h.Dropped() != uint64(distinct-claimed) {
		t.Fatalf("dropped = %d, want %d (%d touched − %d claimed)",
			h.Dropped(), distinct-claimed, distinct, claimed)
	}
	if h.Dropped() == 0 {
		t.Fatal("expected saturation drops with 400 leaves in 64 slots")
	}
}

func TestHeatmapNilSafe(t *testing.T) {
	var h *Heatmap
	h.Touch(1, true)
	h.Rotate()
	if h.TopK(5) != nil || h.Epoch() != 0 || h.Dropped() != 0 {
		t.Fatal("nil heatmap must be inert")
	}
}

func TestHeatmapTouchZeroAlloc(t *testing.T) {
	h := NewHeatmap(256, 0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Touch(42, false)
		h.Touch(43, true)
	}); n != 0 {
		t.Fatalf("Touch allocates %v/op, want 0", n)
	}
}

func TestHeatmapConcurrent(t *testing.T) {
	h := NewHeatmap(256, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				h.Touch(uint64(r.Intn(128)), i%10 == 0)
				if i%500 == 0 {
					h.TopK(8)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range h.TopK(256) {
		if e.Score == 0 || e.Score != e.Reads+e.Writes {
			t.Fatalf("inconsistent entry %+v", e)
		}
	}
}

func TestSpanHistNameRoundtrip(t *testing.T) {
	seen := map[string]bool{}
	for op := OpClass(0); op < NumOpClasses; op++ {
		for seg := Segment(0); seg < NumSegments; seg++ {
			name := SpanHistName(op, seg)
			if seen[name] {
				t.Fatalf("duplicate hist name %q", name)
			}
			seen[name] = true
			gotOp, gotSeg, ok := ParseSpanHistName(name)
			if !ok || gotOp != op || gotSeg != seg {
				t.Fatalf("ParseSpanHistName(%q) = %v/%v/%v", name, gotOp, gotSeg, ok)
			}
			o2, s2 := UnpackSpan(PackSpan(op, seg))
			if o2 != op || s2 != seg {
				t.Fatalf("PackSpan roundtrip failed for %v/%v", op, seg)
			}
		}
	}
	for _, bad := range []string{"insert_ns", "span_put_ns", "span_nope_wal_ns", "span_put_nope_ns", "span_put_wal"} {
		if _, _, ok := ParseSpanHistName(bad); ok {
			t.Fatalf("ParseSpanHistName(%q) accepted", bad)
		}
	}
}

func TestSegmentsFromSnapshot(t *testing.T) {
	m := NewMetrics()
	ids := map[string]HistID{}
	for op := OpClass(0); op < NumOpClasses; op++ {
		for seg := Segment(0); seg < NumSegments; seg++ {
			name := SpanHistName(op, seg)
			ids[name] = m.Histogram(name)
		}
	}
	h := m.NewHandle()
	h.Observe(ids[SpanHistName(OpPut, SegWAL)], 100)
	h.Observe(ids[SpanHistName(OpPut, SegWAL)], 200)
	h.Observe(ids[SpanHistName(OpGet, SegTraverse)], 50)

	segs := SegmentsFromSnapshot(m.Snapshot())
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2 (empty cells omitted): %+v", len(segs), segs)
	}
	// (op, segment) ordering: get before put.
	if segs[0].Op != "get" || segs[0].Segment != "traverse" || segs[0].Count != 1 {
		t.Fatalf("segs[0] = %+v", segs[0])
	}
	if segs[1].Op != "put" || segs[1].Segment != "wal" || segs[1].Count != 2 || segs[1].SumNS != 300 {
		t.Fatalf("segs[1] = %+v", segs[1])
	}
	if SegmentsFromSnapshot(nil) != nil {
		t.Fatal("nil snapshot")
	}
}

// TestHistogramExactBoundaries pins the quantile behavior at exact
// bucket boundaries: a power-of-two boundary value is its own bucket's
// lower bound, so quantiles landing in that bucket report it exactly.
func TestHistogramExactBoundaries(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 16, 1 << 10, 1 << 20, 1 << 40} {
		var sh histShard
		for i := 0; i < 100; i++ {
			sh.observe(v)
		}
		hs := sh.snapshot("b")
		if hs.P50() != v || hs.P99() != v || hs.P999() != v || hs.Max != v {
			t.Fatalf("constant %d: p50=%d p99=%d p999=%d max=%d",
				v, hs.P50(), hs.P99(), hs.P999(), hs.Max)
		}
	}
	// Boundary straddle: 99 samples at 8, 1 at 16 → p50 = 8, p99+ = 16.
	var sh histShard
	for i := 0; i < 99; i++ {
		sh.observe(8)
	}
	sh.observe(16)
	hs := sh.snapshot("straddle")
	if hs.P50() != 8 {
		t.Fatalf("p50 = %d, want 8", hs.P50())
	}
	if hs.P99() != 16 || hs.P999() != 16 {
		t.Fatalf("p99 = %d, p999 = %d, want 16", hs.P99(), hs.P999())
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b histShard
	for v := uint64(0); v < 8; v++ {
		a.observe(v)
	}
	b.observe(8)
	b.observe(16)
	b.observe(1 << 30)

	m := a.snapshot("m")
	m.Merge(b.snapshot("other"))
	if m.Name != "m" {
		t.Fatalf("merge renamed to %q", m.Name)
	}
	if m.Count != 11 || m.Sum != 28+24+1<<30 || m.Max != 1<<30 {
		t.Fatalf("merged count=%d sum=%d max=%d", m.Count, m.Sum, m.Max)
	}
	// Quantiles over the merged distribution are exact at boundaries:
	// rank 5 of 11 → value 5; rank 10 → the outlier bucket.
	if m.P50() != 5 {
		t.Fatalf("merged p50 = %d, want 5", m.P50())
	}
	if m.P99() != 1<<30 || m.P999() != 1<<30 {
		t.Fatalf("merged p99 = %d p999 = %d, want %d", m.P99(), m.P999(), uint64(1)<<30)
	}
	m.Merge(nil) // no-op
	if m.Count != 11 {
		t.Fatal("Merge(nil) mutated the snapshot")
	}
}

func testProfile() *Profile {
	return &Profile{
		Locks: []LockStat{{
			Class: "inner.mu", Acquisitions: 1000, Contended: 3,
			WaitSamples: 15, WaitP50NS: 120, WaitP99NS: 900,
			WaitP999NS: 1100, WaitMaxNS: 1200, HoldP50NS: 80,
			HoldP99NS: 400, HoldP999NS: 500, HoldMaxNS: 600,
		}},
		Segments: []SegmentStat{{
			Op: "put", Segment: "wal", Count: 500, SumNS: 50000,
			P50NS: 90, P99NS: 300, P999NS: 450, MaxNS: 700,
		}},
		HotLeaves: []HeatEntry{
			{Leaf: 0x4100, Score: 42, Reads: 40, Writes: 2},
			{Leaf: 0x8200, Score: 7, Reads: 0, Writes: 7},
		},
		HeatEpoch:   9,
		HeatDropped: 2,
	}
}

// TestObservationProfileJSONRoundtrip covers the issue's JSON-roundtrip
// satellite: every contention/heat/segment field must survive
// Observation marshal/unmarshal.
func TestObservationProfileJSONRoundtrip(t *testing.T) {
	o := Observation{
		Label:           "live",
		MediaWriteBytes: 4096,
		ScopeMediaBytes: map[string]uint64{"wal": 1024},
		Profile:         testProfile(),
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var got Observation
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Profile, o.Profile) {
		t.Fatalf("profile mismatch:\n got %+v\nwant %+v", got.Profile, o.Profile)
	}
	// Absent profile stays absent (omitempty), not an empty object.
	data, err = json.Marshal(Observation{Label: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("profile")) {
		t.Fatalf("nil profile serialized: %s", data)
	}
}

func TestBenchReportProfileRoundtrip(t *testing.T) {
	r := &BenchReport{
		Name: "ycsbb",
		Phases: []PhaseRecord{{
			Phase: "00:ccl-btree/t8", Index: "ccl-btree", Threads: 8,
			Ops: 1000, Profile: testProfile(),
		}},
	}
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Phases[0].Profile, r.Phases[0].Profile) {
		t.Fatalf("profile mismatch:\n got %+v\nwant %+v", got.Phases[0].Profile, r.Phases[0].Profile)
	}
}

func TestChromeTraceSegmentDurations(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	tr.Emit(EvSegment, 3, 1000, PackSpan(OpPut, SegWAL), 5000)
	tr.Emit(EvInsert, 3, 6000, 1, 2)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("%d events", len(chrome.TraceEvents))
	}
	seg := chrome.TraceEvents[0]
	if seg.Ph != "X" || seg.Name != "put/wal" || seg.Dur != 5.0 || seg.TS != 1.0 || seg.TID != 3 {
		t.Fatalf("segment event = %+v", seg)
	}
	if chrome.TraceEvents[1].Ph != "i" {
		t.Fatalf("instant event = %+v", chrome.TraceEvents[1])
	}
}
