// Package obs is the observability layer: typed counters, latency
// histograms, an event tracer, and machine-readable bench emission,
// spanning the stack from the pmem device model through the WAL and
// tree up to the bench harness.
//
// # Counters and histograms
//
// A Metrics registry holds named counters and latency histograms.
// Recording goes through per-thread Handles (NewHandle): each handle
// owns private atomic cells, so the hot path is a single uncontended
// atomic add — no locks, no allocation. Snapshot aggregates across all
// handles on demand. Like pmem.Thread, a Handle is single-owner: one
// goroutine at a time (persistlint rule PL004 enforces this
// statically). Histograms use log2 buckets refined by 3 mantissa bits
// (~half-percent relative error on quantiles), enough to report the
// p50/p99 the bench records need without per-sample storage.
//
// # Scope attribution
//
// Where the media bytes *come from* is the pmem layer's job:
// pmem.Thread carries an attribution Scope (PushScope/PopScope), and
// every XPLine written back to media is charged to the scope of the
// thread that dirtied it. The per-scope buckets partition
// MediaWriteBytes exactly (at quiescence), which is what lets cclstat
// show "how much of the amplification is WAL vs. leaf flush vs. GC".
// This package consumes that attribution (Observe, BenchReport); it
// does not produce it.
//
// # Tracer
//
// Tracer is a fixed-capacity ring of events (operation begin/end,
// batch flush, split, GC round, XPBuffer eviction, crash) stamped with
// a monotonic sequence number and the emitting thread's virtual time.
// Emit on a disabled or nil tracer is a single atomic load and zero
// allocations (guarded by a testing.AllocsPerRun test), so tracing
// hooks can stay compiled into hot paths. Dumps are JSON (Events,
// WriteJSON) or the Chrome trace_event format (WriteChromeTrace, load
// in chrome://tracing or Perfetto). Device-level events flow in
// through pmem.Pool.SetDeviceTracer via Tracer.DeviceHook — the device
// model cannot import this package, so the hook is the seam.
//
// # Overhead expectations
//
// Everything here is pay-for-what-you-enable. Metrics disabled: zero
// cost (no handles exist). Metrics enabled: one atomic add per counter
// bump, two per histogram sample. Tracer disabled: one atomic bool
// load per Emit site. Tracer enabled: ~6 atomic stores per event, no
// allocation. The acceptance bar for this layer is <3% insert-path
// regression with everything disabled and 0 allocations per op.
//
// # cclstat and the paper's methodology
//
// The paper measures XPBuffer-induced write amplification with
// ipmctl's media-write counters: run workload, diff the DIMM counters,
// divide by user bytes (§2, §5). cclstat is the same methodology
// against the modeled device: Observation carries the counter deltas
// (media bytes, XPBuffer bytes, hit rate, WA factor) plus the
// per-scope split real hardware cannot give. `cclstat --replay` renders
// a recorded BENCH_*.json; `cclstat -attach` polls the JSON endpoint
// cmd/cclbench serves with -http and renders it live.
package obs
