package obs

import "strings"

// Segment names one slice of an operation's critical path. The span
// layer partitions each op's virtual-time latency into these segments
// so tail latency is attributable the same way media bytes already are
// (scope accounting): a p99 Put is "mostly fence" or "mostly lock
// wait", not just a number.
type Segment uint8

// The critical-path segments. SegOther must stay last: it is computed
// as the op's total latency minus the sum of the attributed segments,
// and per-op recording loops over the attributed prefix.
const (
	SegLockWait Segment = iota // optimistic-retry backoff + stop-the-world waits
	SegTraverse                // inner-tree routing + buffer/leaf search
	SegValidate                // lock-free read overhead: epoch pin/unpin + seqlock rechecks
	SegWAL                     // WAL record append (excluding its flush/fence)
	SegBuffer                  // buffer-node slot maintenance under the version lock
	SegTrigger                 // trigger write: batch flush into the PM leaf
	SegFlush                   // cacheline flush issue + XPBuffer stalls
	SegFence                   // ordering fences (sfence)
	SegOther                   // residual: everything not attributed above
	NumSegments
)

var segmentNames = [NumSegments]string{
	"lockwait", "traverse", "validate", "wal", "buffer", "trigger",
	"flush", "fence", "other",
}

func (s Segment) String() string {
	if int(s) < len(segmentNames) {
		return segmentNames[s]
	}
	return "unknown"
}

// OpClass buckets the public operations for span attribution. Deletes
// share OpPut: a delete is an upsert of a tombstone and walks the
// identical critical path.
type OpClass uint8

// The attributed operation classes.
const (
	OpGet OpClass = iota
	OpPut
	OpBatch
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{"get", "put", "batch"}

func (o OpClass) String() string {
	if int(o) < len(opClassNames) {
		return opClassNames[o]
	}
	return "unknown"
}

// SpanHistName returns the registry name of the histogram holding one
// (op, segment) cell, e.g. "span_put_wal_ns". Samples are virtual
// nanoseconds: a given op's segment samples sum to (at most) its
// recorded latency, so segment quantiles and op quantiles share units.
func SpanHistName(op OpClass, seg Segment) string {
	return "span_" + opClassNames[op] + "_" + segmentNames[seg] + "_ns"
}

// ParseSpanHistName inverts SpanHistName; ok is false for any other
// histogram name.
func ParseSpanHistName(name string) (op OpClass, seg Segment, ok bool) {
	rest, found := strings.CutPrefix(name, "span_")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, "_ns")
	if !found {
		return 0, 0, false
	}
	opName, segName, found := strings.Cut(rest, "_")
	if !found {
		return 0, 0, false
	}
	for o := OpClass(0); o < NumOpClasses; o++ {
		if opClassNames[o] != opName {
			continue
		}
		for s := Segment(0); s < NumSegments; s++ {
			if segmentNames[s] == segName {
				return o, s, true
			}
		}
	}
	return 0, 0, false
}

// PackSpan encodes an (op, segment) pair into one trace-event payload
// word; UnpackSpan inverts it.
func PackSpan(op OpClass, seg Segment) uint64 {
	return uint64(op)<<8 | uint64(seg)
}

// UnpackSpan decodes a PackSpan payload.
func UnpackSpan(v uint64) (OpClass, Segment) {
	return OpClass(v >> 8), Segment(v & 0xff)
}

// SegmentStat is the exported snapshot of one (op, segment) cell.
// Quantiles are per-occurrence: an op that spent zero time in a
// segment contributes no sample there (otherwise rare segments like
// trigger writes would drown in zeros), so Count varies across a row
// and SumNS — not Count — weighs segments against each other.
type SegmentStat struct {
	Op      string `json:"op"`
	Segment string `json:"segment"`
	Count   uint64 `json:"count"`
	SumNS   uint64 `json:"sum_ns"`
	P50NS   uint64 `json:"p50_ns"`
	P99NS   uint64 `json:"p99_ns"`
	P999NS  uint64 `json:"p999_ns"`
	MaxNS   uint64 `json:"max_ns"`
}

// Profile bundles the contention/span/heat tier of a tree's telemetry:
// everything this layer measures beyond the byte counters. All slices
// omit empty cells; a nil Profile (or nil fields) means the tier was
// not enabled. Values are cumulative since tree creation.
type Profile struct {
	Locks       []LockStat    `json:"locks,omitempty"`
	Segments    []SegmentStat `json:"segments,omitempty"`
	HotLeaves   []HeatEntry   `json:"hot_leaves,omitempty"`
	HeatEpoch   uint64        `json:"heat_epoch,omitempty"`
	HeatDropped uint64        `json:"heat_dropped,omitempty"`
}

// SegmentsFromSnapshot extracts the span cells out of a metrics
// snapshot, ordered by (op, segment). Cells with no samples are
// omitted.
func SegmentsFromSnapshot(s *Snapshot) []SegmentStat {
	if s == nil {
		return nil
	}
	var out []SegmentStat
	for op := OpClass(0); op < NumOpClasses; op++ {
		for seg := Segment(0); seg < NumSegments; seg++ {
			hs, ok := s.Hists[SpanHistName(op, seg)]
			if !ok || hs.Count == 0 {
				continue
			}
			out = append(out, SegmentStat{
				Op:      op.String(),
				Segment: seg.String(),
				Count:   hs.Count,
				SumNS:   hs.Sum,
				P50NS:   hs.P50(),
				P99NS:   hs.P99(),
				P999NS:  hs.P999(),
				MaxNS:   hs.Max,
			})
		}
	}
	return out
}
