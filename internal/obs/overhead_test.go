package obs

import (
	"fmt"
	"testing"
)

// TestObsOverheadBudget enforces ProfilerBudgetNS (the documented
// overhead budget, DESIGN.md): one bracketed lock site, one heatmap
// touch, and one span-cell histogram record must each average under
// the budget, allocation-free. scripts/check.sh runs this test
// explicitly (without -short) as the obs-overhead CI gate.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead benchmark skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive; skipped under the race detector")
	}

	check := func(name string, res testing.BenchmarkResult) {
		t.Helper()
		perOp := res.NsPerOp()
		t.Logf("%-14s %6d ns/op  %d allocs/op  (budget %d ns)",
			name, perOp, res.AllocsPerOp(), ProfilerBudgetNS)
		// check.sh greps this marker line to surface the numbers in CI
		// output even on success.
		fmt.Printf("OBS_OVERHEAD %s ns_per_op=%d budget=%d\n", name, perOp, ProfilerBudgetNS)
		if res.AllocsPerOp() != 0 {
			t.Errorf("%s allocates %d/op, want 0", name, res.AllocsPerOp())
		}
		if perOp > ProfilerBudgetNS {
			t.Errorf("%s costs %d ns/op, over the %d ns budget", name, perOp, ProfilerBudgetNS)
		}
	}

	p := NewLockProfiler()
	check("lock-site", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := p.Pre(LockInner)
			tok = p.Acquired(LockInner, tok)
			p.Released(LockInner, tok)
		}
	}))

	h := NewHeatmap(4096, 0)
	check("heat-touch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Touch(uint64(i&1023)*64, i&15 == 0)
		}
	}))

	m := NewMetrics()
	id := m.Histogram(SpanHistName(OpPut, SegWAL))
	hd := m.NewHandle()
	check("span-record", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hd.Observe(id, uint64(i&8191))
		}
	}))
}
