package pmem

import (
	"strings"
	"sync"
	"testing"
)

func strictPool(t *testing.T) *Pool {
	t.Helper()
	return NewPool(Config{
		Sockets:       1,
		DeviceBytes:   1 << 20,
		StrictPersist: true,
	})
}

// mustPanic runs f and returns the recovered panic text, failing the
// test if f returns normally.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestStrictUnalignedAccessPanics(t *testing.T) {
	p := strictPool(t)
	th := p.NewThread(0)
	//persistlint:ignore PL001 strict mode panics on the unaligned access before any return
	mustPanic(t, "unaligned", func() { th.Store(MakeAddr(0, 4097), 1) })
	mustPanic(t, "unaligned", func() { th.Load(MakeAddr(0, 12)) })
	//persistlint:ignore PL001 strict mode panics on the unaligned access before any return
	mustPanic(t, "unaligned", func() { th.WriteRange(MakeAddr(0, 9), []uint64{1}) })
	mustPanic(t, "unaligned", func() { th.ReadRange(MakeAddr(0, 9), make([]uint64, 1)) })
	// Aligned access still works, and nested strict ops (Persist →
	// Flush → Fence, Store → evictOne) do not self-deadlock.
	th.Store(MakeAddr(0, 4096), 7)
	th.Persist(MakeAddr(0, 4096), 8)
}

func TestStrictNonStrictUnaffected(t *testing.T) {
	p := NewPool(Config{Sockets: 1, DeviceBytes: 1 << 20})
	th := p.NewThread(0)
	// Unaligned offsets truncate silently in default mode (historical
	// behavior, relied on by nothing but kept cheap): no panic.
	//persistlint:ignore PL001 default-mode smoke test: the store truncates silently, durability irrelevant
	th.Store(MakeAddr(0, 4097), 1)
	th.Release() // no-op
	p.Close()    // no-op
}

//persistlint:ignore PL004 cross-goroutine misuse is the subject under test; strict mode polices it at runtime
func TestStrictConcurrentUsePanics(t *testing.T) {
	p := strictPool(t)
	th := p.NewThread(0)
	// Hold the thread mid-operation from this goroutine, then access it
	// from another: deterministic overlap.
	th.beginOp("test-hold")
	var wg sync.WaitGroup
	wg.Add(1)
	panicked := make(chan string, 1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked <- r.(string)
			} else {
				panicked <- ""
			}
		}()
		th.Load(MakeAddr(0, 0))
	}()
	wg.Wait()
	th.endOp()
	if msg := <-panicked; !strings.Contains(msg, "used concurrently") {
		t.Fatalf("cross-goroutine access panicked with %q, want concurrent-use panic", msg)
	}
	// Sequential hand-off between goroutines is legal: the first owner
	// is idle now, so another goroutine may use the thread.
	done := make(chan struct{})
	go func() {
		defer close(done)
		th.Store(MakeAddr(0, 4096), 1)
		th.Persist(MakeAddr(0, 4096), 8)
	}()
	<-done
}

func TestStrictReleaseWithPendingFlushesPanics(t *testing.T) {
	p := strictPool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 1)
	th.Flush(a, 8)
	mustPanic(t, "pending flush", func() { th.Release() })
	// Retiring the flush clears the debt; Release then succeeds and
	// further use panics.
	th.Fence()
	th.Release()
	mustPanic(t, "released", func() { th.Load(a) })
}

func TestStrictCloseDirtyLinePanics(t *testing.T) {
	a := MakeAddr(0, 4096)

	p := strictPool(t)
	th := p.NewThread(0)
	//persistlint:ignore PL001 the dirty line is the subject: Close must panic on it
	th.Store(a, 1)
	mustPanic(t, "dirty cacheline", func() { p.Close() })

	// Persisted data closes cleanly.
	p2 := strictPool(t)
	th2 := p2.NewThread(0)
	th2.Store(a, 1)
	th2.Persist(a, 8)
	p2.Close()
	p2.Close() // idempotent

	// A declared-volatile region exempts its lines.
	p3 := strictPool(t)
	th3 := p3.NewThread(0)
	p3.DeclareVolatile(a, CachelineSize)
	//persistlint:ignore PL001 the region is declared volatile; Close exempts its lines
	th3.Store(a, 1)
	p3.Close()
}

func TestStrictClosePendingFlushPanics(t *testing.T) {
	p := strictPool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 1)
	//persistlint:ignore PL002 the pending flush is the subject: Close must panic on it
	th.Flush(a, 8)
	mustPanic(t, "pending flush", func() { p.Close() })
}

func TestStrictCrashDiscardsThreads(t *testing.T) {
	p := strictPool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 1)
	//persistlint:ignore PL002 pending at crash time: the crash discards it with the caches
	th.Flush(a, 8) // pending at crash time: lost with the caches
	p.Crash()
	// The crash invalidated every outstanding Thread; the pool itself
	// audits clean (rolled back), and stale handles fail loudly.
	p.Close()
	mustPanic(t, "released", func() { th.Load(a) })
	// Post-restart threads work.
	th2 := p.NewThread(0)
	if v := th2.Load(a); v != 0 {
		t.Fatalf("unfenced store survived crash: %d", v)
	}
}
