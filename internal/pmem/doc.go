// Package pmem is a software model of a persistent-memory system built
// from Optane-DCPMM-like devices, faithful to the architecture described
// in §2.1 of the CCL-BTree paper (EuroSys '24):
//
//	CPU cache (64 B cachelines, volatile under ADR)
//	   │ clwb / sfence
//	   ▼
//	WPQ + XPBuffer (write-combining, 256 B XPLines, power-fail protected)
//	   │ 256 B read-modify-write
//	   ▼
//	3D-XPoint media
//
// The model provides three things the real hardware provides and Go does
// not:
//
//  1. Persistence semantics. Stores are volatile until flushed and fenced
//     (ADR mode). Pool.Crash simulates a power failure: every store that
//     was not both flushed and fenced (or evicted by the cache model) is
//     rolled back, everything else survives. eADR mode persists stores
//     immediately.
//
//  2. Hardware counters. Like ipmctl on real Optane, the pool counts
//     bytes arriving at the XPBuffer (cacheline flushes) and bytes
//     written to media (XPLine write-backs), from which the harness
//     computes CLI- and XBI-amplification exactly as defined in §2.1.
//     Media writes are attributed to a per-thread Tag so experiments can
//     split amplification by source (leaf nodes vs WAL, Fig 13b).
//
//  3. A virtual-time cost model. Every access charges a latency to the
//     issuing Thread, and every media-level XPLine operation occupies its
//     DIMM for a service time through a shared bandwidth arbiter. With
//     many threads the media becomes the bottleneck and throughput is
//     bounded by the number of XPLine flushes, not cacheline flushes —
//     the central observation of §2.2 (Fig 2).
//
// All data access is 8-byte-word granular and atomic, which matches how
// persistent indexes program real PM (8 B failure-atomic stores) and keeps
// optimistic concurrency race-free under the Go memory model.
//
// # Persistence contract
//
// Code using this package must obey the discipline real ADR hardware
// imposes; the static analyzer (cmd/persistlint) and the StrictPersist
// runtime checks enforce complementary halves of it:
//
//   - Every Store/WriteRange that must survive a crash is followed by a
//     Flush of the covering cachelines and then a Fence (or a single
//     Persist) before the enclosing operation declares success. A store
//     without a reachable flush is volatile until the cache model
//     happens to evict it (persistlint rule PL001).
//
//   - A Flush alone orders nothing: the write-back becomes durable only
//     at the next Fence on the same Thread. Flush with no following
//     Fence/Persist is an unretired clwb (rule PL002; at runtime,
//     Thread.Release and Pool.Close panic on nonempty pending sets).
//
//   - Under eADR, flushes are unnecessary — stores are durable once
//     globally visible — so a Flush or Persist that executes only on an
//     eADR-mode branch is dead code (rule PL003). Branching on the mode
//     to *skip* flushes is the intended pattern and is not flagged.
//
//   - A Thread is a single-owner handle. It may be handed from one
//     goroutine to another, but never used by two at once; its pending
//     flush set and virtual clock are unsynchronized by design (rule
//     PL004 catches escapes into goroutine closures and channel sends;
//     StrictPersist catches dynamic overlap).
//
// Addresses passed to Load/Store/ReadRange/WriteRange must be 8-byte
// aligned; in strict mode unaligned addresses panic instead of being
// silently truncated to the containing word.
//
// Config.StrictPersist arms the runtime half: Thread.Release panics if
// flushes are pending, Pool.Close panics on pending flushes or dirty
// cachelines outside regions declared scratch with Pool.DeclareVolatile,
// and concurrent Thread use panics with both call sites identified.
// Test suites should run strict; production-shaped benchmarks leave it
// off to keep the hot paths branch-cheap.
package pmem
