// Package pmem is a software model of a persistent-memory system built
// from Optane-DCPMM-like devices, faithful to the architecture described
// in §2.1 of the CCL-BTree paper (EuroSys '24):
//
//	CPU cache (64 B cachelines, volatile under ADR)
//	   │ clwb / sfence
//	   ▼
//	WPQ + XPBuffer (write-combining, 256 B XPLines, power-fail protected)
//	   │ 256 B read-modify-write
//	   ▼
//	3D-XPoint media
//
// The model provides three things the real hardware provides and Go does
// not:
//
//  1. Persistence semantics. Stores are volatile until flushed and fenced
//     (ADR mode). Pool.Crash simulates a power failure: every store that
//     was not both flushed and fenced (or evicted by the cache model) is
//     rolled back, everything else survives. eADR mode persists stores
//     immediately.
//
//  2. Hardware counters. Like ipmctl on real Optane, the pool counts
//     bytes arriving at the XPBuffer (cacheline flushes) and bytes
//     written to media (XPLine write-backs), from which the harness
//     computes CLI- and XBI-amplification exactly as defined in §2.1.
//     Media writes are attributed to a per-thread Tag so experiments can
//     split amplification by source (leaf nodes vs WAL, Fig 13b).
//
//  3. A virtual-time cost model. Every access charges a latency to the
//     issuing Thread, and every media-level XPLine operation occupies its
//     DIMM for a service time through a shared bandwidth arbiter. With
//     many threads the media becomes the bottleneck and throughput is
//     bounded by the number of XPLine flushes, not cacheline flushes —
//     the central observation of §2.2 (Fig 2).
//
// All data access is 8-byte-word granular and atomic, which matches how
// persistent indexes program real PM (8 B failure-atomic stores) and keeps
// optimistic concurrency race-free under the Go memory model.
package pmem
