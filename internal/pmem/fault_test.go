package pmem

import (
	"testing"
)

func faultTestPool(mode Mode) *Pool {
	return NewPool(Config{
		Sockets:        1,
		DIMMsPerSocket: 1,
		DeviceBytes:    1 << 20,
		StrictPersist:  true,
		Mode:           mode,
	})
}

// recoverPowerFailure runs f, reporting whether it panicked with
// PowerFailure (any other panic propagates).
func recoverPowerFailure(f func()) (failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(PowerFailure); !ok {
				panic(r)
			}
			failed = true
		}
	}()
	f()
	return false
}

// TestTornFlushADR is the torn-line contract: a flush issued but not
// fenced, torn at a word prefix, surfaces after Crash as a partial
// line — the prefix holds the new words, the suffix the old ones.
func TestTornFlushADR(t *testing.T) {
	p := faultTestPool(ADR)
	th := p.NewThread(0)
	base := MakeAddr(0, 4096) // one cacheline, initially zero

	// Establish a persistent "old" image: 8 words of 100+i.
	for i := int64(0); i < 8; i++ {
		th.Store(base.Add(8*i), uint64(100+i))
	}
	th.Persist(base, CachelineSize)

	// Overwrite with "new" words and flush WITHOUT fencing: the
	// write-back is in flight when power fails.
	for i := int64(0); i < 8; i++ {
		th.Store(base.Add(8*i), uint64(200+i))
	}
	//persistlint:ignore PL002 deliberately unfenced: the tear below models the in-flight write-back
	th.Flush(base, CachelineSize)

	const prefix = 3
	if torn := th.TearPendingPrefix(prefix); torn != 1 {
		t.Fatalf("TearPendingPrefix tore %d lines, want 1", torn)
	}
	p.Crash()

	th2 := p.NewThread(0)
	for i := int64(0); i < 8; i++ {
		got := th2.Load(base.Add(8 * i))
		want := uint64(100 + i)
		if i < prefix {
			want = uint64(200 + i)
		}
		if got != want {
			t.Fatalf("word %d after torn crash = %d, want %d (prefix %d)", i, got, want, prefix)
		}
	}
}

// TestTornFlushImpossibleEADR: in eADR the caches are inside the
// persistence domain — stores are durable the instant they are globally
// visible, flushes pend nothing, and a "torn" crash state cannot exist:
// the whole line survives.
func TestTornFlushImpossibleEADR(t *testing.T) {
	p := faultTestPool(EADR)
	th := p.NewThread(0)
	base := MakeAddr(0, 4096)

	for i := int64(0); i < 8; i++ {
		th.Store(base.Add(8*i), uint64(100+i))
	}
	th.Persist(base, CachelineSize)
	for i := int64(0); i < 8; i++ {
		th.Store(base.Add(8*i), uint64(200+i))
	}
	//persistlint:ignore PL002 deliberately unfenced: eADR must have nothing pending to tear
	th.Flush(base, CachelineSize)

	if torn := th.TearPendingPrefix(3); torn != 0 {
		t.Fatalf("eADR TearPendingPrefix tore %d lines, want 0 (nothing can pend)", torn)
	}
	p.Crash()

	th2 := p.NewThread(0)
	for i := int64(0); i < 8; i++ {
		if got := th2.Load(base.Add(8 * i)); got != uint64(200+i) {
			t.Fatalf("eADR word %d after crash = %d, want %d (everything survives)", i, got, 200+i)
		}
	}
}

// TestTearPendingSeededDeterministic: the same seed tears the same
// lines at the same prefixes.
func TestTearPendingSeededDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		p := faultTestPool(ADR)
		th := p.NewThread(0)
		for line := int64(0); line < 4; line++ {
			base := MakeAddr(0, uint64(4096+line*CachelineSize))
			for i := int64(0); i < 8; i++ {
				th.Store(base.Add(8*i), uint64(1000*line+10+i))
			}
		}
		//persistlint:ignore PL002 deliberately unfenced: seeded tear point under test
		th.Flush(MakeAddr(0, 4096), 4*CachelineSize)
		th.TearPending(seed)
		p.Crash()
		th2 := p.NewThread(0)
		out := make([]uint64, 32)
		th2.ReadRange(MakeAddr(0, 4096), out)
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded tear not deterministic at word %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFailWhenScopeTargeted: the predicate fires on the first flush in
// the requested scope, and the trigger is sticky — the next flush on
// any thread panics too.
func TestFailWhenScopeTargeted(t *testing.T) {
	p := faultTestPool(ADR)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)

	var sites []Scope
	p.FailWhen(func(fp FaultPoint) bool {
		sites = append(sites, fp.Scope)
		return fp.Scope == ScopeWAL
	})

	// Data-scope flush: predicate sees it, does not fire.
	th.Store(a, 1)
	th.Persist(a, 8)

	// WAL-scope flush fires.
	prev := th.PushScope(ScopeWAL)
	th.Store(a.Add(64), 2)
	if !recoverPowerFailure(func() { th.Persist(a.Add(64), 8) }) {
		t.Fatal("WAL-scope flush did not trigger the armed fault")
	}
	th.PopScope(prev)
	if !p.FaultFired() {
		t.Fatal("FaultFired false after trigger")
	}

	// Sticky: an unrelated flush on the same pool dies too.
	th.Store(a.Add(128), 3)
	if !recoverPowerFailure(func() { th.Persist(a.Add(128), 8) }) {
		t.Fatal("post-trigger flush did not panic (sticky contract)")
	}

	// Disarm; flushes work again.
	p.FailWhen(nil)
	th.Store(a.Add(192), 4)
	th.Persist(a.Add(192), 8)

	if len(sites) < 2 || sites[0] != ScopeNone || sites[1] != ScopeWAL {
		t.Fatalf("predicate saw scopes %v, want [data wal ...]", sites)
	}
}

// TestFailWhenFiresInEADR: fault sites exist in eADR even though
// flushes move no data, so sweeps can crash at the same boundaries in
// both modes.
func TestFailWhenFiresInEADR(t *testing.T) {
	p := faultTestPool(EADR)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)

	base := p.FlushCalls()
	p.FailWhen(func(fp FaultPoint) bool { return fp.Seq == base+2 })
	th.Store(a, 1)
	th.Persist(a, 8) // seq base+1
	//persistlint:ignore PL001 the armed fault kills the persist; eADR keeps the store anyway
	th.Store(a.Add(64), 2)
	if !recoverPowerFailure(func() { th.Persist(a.Add(64), 8) }) {
		t.Fatal("second flush did not trigger in eADR")
	}
	p.FailWhen(nil)
	// The first store is durable regardless (eADR), the second too —
	// the failure hit before the (free) flush, but the store itself was
	// already inside the persistence domain.
	p.Crash()
	th2 := p.NewThread(0)
	if got := th2.Load(a); got != 1 {
		t.Fatalf("eADR store lost: %d", got)
	}
}

// TestFlushCallsCountsBothModes: FlushCalls advances identically for
// the same program in ADR and eADR.
func TestFlushCallsCountsBothModes(t *testing.T) {
	for _, mode := range []Mode{ADR, EADR} {
		p := faultTestPool(mode)
		th := p.NewThread(0)
		a := MakeAddr(0, 4096)
		for i := int64(0); i < 5; i++ {
			th.Store(a.Add(64*i), uint64(i+1))
			th.Persist(a.Add(64*i), 8)
		}
		if got := p.FlushCalls(); got != 5 {
			t.Fatalf("mode %v: FlushCalls = %d, want 5", mode, got)
		}
	}
}
