package pmem

import "testing"

func TestWriteRangeSpansLines(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	// 40 words = 320 B: spans five cachelines and two XPLines.
	src := make([]uint64, 40)
	for i := range src {
		src[i] = uint64(i + 1)
	}
	a := MakeAddr(0, 192) // deliberately not line-aligned to an XPLine start
	th.WriteRange(a, src)
	th.Persist(a, len(src)*8)
	p.Crash()
	dst := make([]uint64, 40)
	p.NewThread(0).ReadRange(a, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d lost: %d", i, dst[i])
		}
	}
}

func TestRewindOnlyMovesBack(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	th.Advance(1000)
	mark := th.Now()
	th.Advance(500)
	th.Rewind(mark)
	if th.Now() != mark {
		t.Fatalf("Rewind failed: %d", th.Now())
	}
	th.Rewind(mark + 10_000) // forward rewind must be a no-op
	if th.Now() != mark {
		t.Fatalf("Rewind moved forward: %d", th.Now())
	}
}

func TestSyncClock(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	th.SyncClock(5000)
	if th.Now() != 5000 {
		t.Fatalf("SyncClock up failed: %d", th.Now())
	}
	th.SyncClock(100) // never moves backward
	if th.Now() != 5000 {
		t.Fatalf("SyncClock moved backward: %d", th.Now())
	}
}

func TestEADREvictionsCarryDirtyLines(t *testing.T) {
	p := testPool(t, func(c *Config) {
		c.Mode = EADR
		c.CacheLines = 256
	})
	th := p.NewThread(0)
	const n = 4096
	for i := 0; i < n; i++ {
		//persistlint:ignore PL001 the pool runs in eADR mode: stores are durable without flushing
		th.Store(MakeAddr(0, uint64(i*CachelineSize)), uint64(i+1))
	}
	s := p.Stats()
	if s.CacheEvictions < n/2 {
		t.Fatalf("evictions %d; capacity pressure should evict most lines", s.CacheEvictions)
	}
	p.DrainXPBuffers()
	if p.Stats().MediaWriteBytes == 0 {
		t.Fatal("evicted lines never reached media")
	}
	// All values survive a crash (eADR).
	p.Crash()
	th2 := p.NewThread(0)
	for i := 0; i < n; i++ {
		if got := th2.Load(MakeAddr(0, uint64(i*CachelineSize))); got != uint64(i+1) {
			t.Fatalf("line %d lost: %d", i, got)
		}
	}
}

func TestCleanXPBufferEvictionIsFree(t *testing.T) {
	// Read-filled (clean) XPLines must not count media WRITES when
	// evicted.
	p := testPool(t, func(c *Config) { c.XPBufferLines = 4 })
	wr := p.NewThread(0)
	// Persist some data first.
	for i := 0; i < 64; i++ {
		a := MakeAddr(0, uint64(i*XPLineSize))
		wr.Store(a, uint64(i+1))
		wr.Persist(a, 8)
	}
	p.DrainXPBuffers()
	p.ResetStats()
	// Cold reads churn the tiny XPBuffer with clean fills.
	rd := p.NewThread(0)
	for i := 0; i < 64; i++ {
		_ = rd.Load(MakeAddr(0, uint64(i*XPLineSize)))
	}
	s := p.Stats()
	if s.MediaWriteBytes != 0 {
		t.Fatalf("clean evictions wrote %d bytes to media", s.MediaWriteBytes)
	}
	if s.MediaReadBytes == 0 {
		t.Fatal("no media reads recorded for cold loads")
	}
}

func TestAuxSingleton(t *testing.T) {
	p := testPool(t, nil)
	n := 0
	mk := func() any { n++; v := n; return &v }
	a := p.Aux("k", mk)
	b := p.Aux("k", mk)
	if a != b || n != 1 {
		t.Fatalf("Aux not a singleton: %v %v n=%d", a, b, n)
	}
	c := p.Aux("other", mk)
	if c == a || n != 2 {
		t.Fatal("Aux keys not independent")
	}
}

func TestReadRangeChargesPerXPLine(t *testing.T) {
	p := testPool(t, nil)
	// Persist a 256 B object, drain, then read it whole: exactly one
	// media read (one XPLine), not four.
	wr := p.NewThread(0)
	words := make([]uint64, 32)
	wr.WriteRange(MakeAddr(0, 0), words)
	wr.Persist(MakeAddr(0, 0), 256)
	p.DrainXPBuffers()
	p.ResetStats()
	rd := p.NewThread(0)
	dst := make([]uint64, 32)
	rd.ReadRange(MakeAddr(0, 0), dst)
	if s := p.Stats(); s.MediaReadBytes != XPLineSize {
		t.Fatalf("whole-leaf read cost %d media bytes, want one XPLine", s.MediaReadBytes)
	}
}
