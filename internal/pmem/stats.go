package pmem

import (
	"fmt"
	"sync/atomic"
)

// counterSet is one full set of hardware counters, updated with atomics
// from every thread.
type counterSet struct {
	mediaWriteBytes   atomic.Uint64
	mediaReadBytes    atomic.Uint64
	xpbufWriteBytes   atomic.Uint64
	xpbufWriteHits    atomic.Uint64
	xpbufWriteMiss    atomic.Uint64
	xpbufReadHits     atomic.Uint64
	xpbufReadMiss     atomic.Uint64
	cacheEvictions    atomic.Uint64
	userWriteBytes    atomic.Uint64
	remoteAccesses    atomic.Uint64
	mediaWriteByTag   [NumTags]atomic.Uint64
	mediaWriteByScope [NumScopes]atomic.Uint64
	xpbufWriteByScope [NumScopes]atomic.Uint64
}

func (c *counterSet) load() Stats {
	s := Stats{
		MediaWriteBytes:  c.mediaWriteBytes.Load(),
		MediaReadBytes:   c.mediaReadBytes.Load(),
		XPBufWriteBytes:  c.xpbufWriteBytes.Load(),
		XPBufWriteHits:   c.xpbufWriteHits.Load(),
		XPBufWriteMisses: c.xpbufWriteMiss.Load(),
		XPBufReadHits:    c.xpbufReadHits.Load(),
		XPBufReadMisses:  c.xpbufReadMiss.Load(),
		CacheEvictions:   c.cacheEvictions.Load(),
		UserWriteBytes:   c.userWriteBytes.Load(),
		RemoteAccesses:   c.remoteAccesses.Load(),
	}
	for i := range s.MediaWriteByTag {
		s.MediaWriteByTag[i] = c.mediaWriteByTag[i].Load()
	}
	for i := range s.MediaWriteByScope {
		s.MediaWriteByScope[i] = c.mediaWriteByScope[i].Load()
	}
	for i := range s.XPBufWriteByScope {
		s.XPBufWriteByScope[i] = c.xpbufWriteByScope[i].Load()
	}
	return s
}

// counters is the pool-global counter state. The live counters (cur)
// are monotone and never zeroed; ResetStats instead captures a baseline
// copy (base) that snapshot subtracts. Keeping cur monotone is what
// makes ResetStats safe against concurrent snapshots: both sides only
// ever atomic-load/store individual words, so the race detector stays
// quiet and no reader can observe a half-zeroed counter set.
type counters struct {
	cur  counterSet
	base counterSet
}

// Stats is a snapshot of the pool's hardware counters, in the spirit of
// the ipmctl metrics the paper collects (§2.1).
type Stats struct {
	// MediaWriteBytes is the total written to the 3D-XPoint media
	// (XPLine write-backs × 256 B).
	MediaWriteBytes uint64
	// MediaReadBytes is the total read from the media (fills + read
	// misses × 256 B).
	MediaReadBytes uint64
	// XPBufWriteBytes is the total arriving at the XPBuffer from the
	// CPU (cacheline flushes × 64 B).
	XPBufWriteBytes uint64
	// XPBufWriteHits / XPBufWriteMisses count cacheline flushes that
	// were write-combined into a resident XPLine vs. those that forced
	// a fill.
	XPBufWriteHits   uint64
	XPBufWriteMisses uint64
	// XPBufReadHits / XPBufReadMisses classify PM loads.
	XPBufReadHits   uint64
	XPBufReadMisses uint64
	// CacheEvictions counts dirty cachelines written back by the
	// modeled CPU cache without an explicit flush.
	CacheEvictions uint64
	// UserWriteBytes is application-declared payload, the denominator
	// of both amplification factors (AddUserBytes).
	UserWriteBytes uint64
	// RemoteAccesses counts cross-socket PM accesses.
	RemoteAccesses uint64
	// MediaWriteByTag splits MediaWriteBytes by Thread tag.
	MediaWriteByTag [NumTags]uint64
	// MediaWriteByScope splits MediaWriteBytes by the attribution scope
	// (PushScope) of the thread that dirtied each written-back XPLine.
	// Every media write lands in exactly one bucket, so the buckets sum
	// to MediaWriteBytes (exactly at quiescence; see ResetStats for the
	// concurrent contract).
	MediaWriteByScope [NumScopes]uint64
	// XPBufWriteByScope splits XPBufWriteBytes the same way.
	XPBufWriteByScope [NumScopes]uint64
}

// CLIAmplification is bytes reaching the XPBuffer per user byte:
// cacheline-induced write amplification.
func (s Stats) CLIAmplification() float64 {
	if s.UserWriteBytes == 0 {
		return 0
	}
	return float64(s.XPBufWriteBytes) / float64(s.UserWriteBytes)
}

// XBIAmplification is bytes written to media per user byte:
// XPBuffer-induced write amplification, the paper's headline metric.
func (s Stats) XBIAmplification() float64 {
	if s.UserWriteBytes == 0 {
		return 0
	}
	return float64(s.MediaWriteBytes) / float64(s.UserWriteBytes)
}

// AmplificationFactor is the paper's headline write-amplification
// number — media bytes per user byte (XBI amplification). Callers that
// used to divide MediaWriteBytes by a hand-tracked payload should call
// AddUserBytes and use this instead.
func (s Stats) AmplificationFactor() float64 { return s.XBIAmplification() }

// WriteHitRate is the fraction of cacheline flushes that were
// write-combined into an XPBuffer-resident XPLine (0 when no flushes
// have been observed).
func (s Stats) WriteHitRate() float64 {
	total := s.XPBufWriteHits + s.XPBufWriteMisses
	if total == 0 {
		return 0
	}
	return float64(s.XPBufWriteHits) / float64(total)
}

// ScopeMediaBytes returns the per-scope media-write attribution as a
// name-keyed map, omitting empty buckets.
func (s Stats) ScopeMediaBytes() map[string]uint64 {
	out := map[string]uint64{}
	for i, v := range s.MediaWriteByScope {
		if v > 0 {
			out[Scope(i).String()] = v
		}
	}
	return out
}

// TagMediaBytes returns the per-tag media-write attribution as a
// name-keyed map, omitting empty buckets.
func (s Stats) TagMediaBytes() map[string]uint64 {
	out := map[string]uint64{}
	for i, v := range s.MediaWriteByTag {
		if v > 0 {
			out[Tag(i).String()] = v
		}
	}
	return out
}

// String renders the counters in one line, the summary examples used to
// hand-assemble: media traffic, XPBuffer traffic with hit rate, user
// payload, and both amplification factors.
func (s Stats) String() string {
	return fmt.Sprintf(
		"media W %s R %s | xpbuf W %s (hit %.1f%%) | user %s | WA %.2f (CLI %.2f)",
		fmtBytes(s.MediaWriteBytes), fmtBytes(s.MediaReadBytes),
		fmtBytes(s.XPBufWriteBytes), 100*s.WriteHitRate(),
		fmtBytes(s.UserWriteBytes),
		s.AmplificationFactor(), s.CLIAmplification())
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// monoSub is a clamped monotone-counter subtraction: a counter read
// racing a baseline capture can transiently observe cur < base, which
// must read as 0, not as a ~2^64 garbage delta.
func monoSub(c, b uint64) uint64 {
	if c < b {
		return 0
	}
	return c - b
}

// Sub returns the counter deltas s−t (for measuring a phase that started
// at snapshot t). Deltas are clamped at zero per counter, so a Sub
// spanning a concurrent ResetStats degrades to underreporting instead
// of underflowing.
func (s Stats) Sub(t Stats) Stats {
	d := Stats{
		MediaWriteBytes:  monoSub(s.MediaWriteBytes, t.MediaWriteBytes),
		MediaReadBytes:   monoSub(s.MediaReadBytes, t.MediaReadBytes),
		XPBufWriteBytes:  monoSub(s.XPBufWriteBytes, t.XPBufWriteBytes),
		XPBufWriteHits:   monoSub(s.XPBufWriteHits, t.XPBufWriteHits),
		XPBufWriteMisses: monoSub(s.XPBufWriteMisses, t.XPBufWriteMisses),
		XPBufReadHits:    monoSub(s.XPBufReadHits, t.XPBufReadHits),
		XPBufReadMisses:  monoSub(s.XPBufReadMisses, t.XPBufReadMisses),
		CacheEvictions:   monoSub(s.CacheEvictions, t.CacheEvictions),
		UserWriteBytes:   monoSub(s.UserWriteBytes, t.UserWriteBytes),
		RemoteAccesses:   monoSub(s.RemoteAccesses, t.RemoteAccesses),
	}
	for i := range d.MediaWriteByTag {
		d.MediaWriteByTag[i] = monoSub(s.MediaWriteByTag[i], t.MediaWriteByTag[i])
	}
	for i := range d.MediaWriteByScope {
		d.MediaWriteByScope[i] = monoSub(s.MediaWriteByScope[i], t.MediaWriteByScope[i])
	}
	for i := range d.XPBufWriteByScope {
		d.XPBufWriteByScope[i] = monoSub(s.XPBufWriteByScope[i], t.XPBufWriteByScope[i])
	}
	return d
}

func (c *counters) snapshot() Stats {
	cur := c.cur.load()
	base := c.base.load()
	return cur.Sub(base)
}

// reset captures the live counters as the new baseline. See ResetStats
// for the concurrency contract.
func (c *counters) reset() {
	c.base.mediaWriteBytes.Store(c.cur.mediaWriteBytes.Load())
	c.base.mediaReadBytes.Store(c.cur.mediaReadBytes.Load())
	c.base.xpbufWriteBytes.Store(c.cur.xpbufWriteBytes.Load())
	c.base.xpbufWriteHits.Store(c.cur.xpbufWriteHits.Load())
	c.base.xpbufWriteMiss.Store(c.cur.xpbufWriteMiss.Load())
	c.base.xpbufReadHits.Store(c.cur.xpbufReadHits.Load())
	c.base.xpbufReadMiss.Store(c.cur.xpbufReadMiss.Load())
	c.base.cacheEvictions.Store(c.cur.cacheEvictions.Load())
	c.base.userWriteBytes.Store(c.cur.userWriteBytes.Load())
	c.base.remoteAccesses.Store(c.cur.remoteAccesses.Load())
	for i := range c.base.mediaWriteByTag {
		c.base.mediaWriteByTag[i].Store(c.cur.mediaWriteByTag[i].Load())
	}
	for i := range c.base.mediaWriteByScope {
		c.base.mediaWriteByScope[i].Store(c.cur.mediaWriteByScope[i].Load())
	}
	for i := range c.base.xpbufWriteByScope {
		c.base.xpbufWriteByScope[i].Store(c.cur.xpbufWriteByScope[i].Load())
	}
}
