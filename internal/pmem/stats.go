package pmem

import "sync/atomic"

// counters is the pool-global set of hardware counters, updated with
// atomics from every thread.
type counters struct {
	mediaWriteBytes atomic.Uint64
	mediaReadBytes  atomic.Uint64
	xpbufWriteBytes atomic.Uint64
	xpbufWriteHits  atomic.Uint64
	xpbufWriteMiss  atomic.Uint64
	xpbufReadHits   atomic.Uint64
	xpbufReadMiss   atomic.Uint64
	cacheEvictions  atomic.Uint64
	userWriteBytes  atomic.Uint64
	remoteAccesses  atomic.Uint64
	mediaWriteByTag [NumTags]atomic.Uint64
}

// Stats is a snapshot of the pool's hardware counters, in the spirit of
// the ipmctl metrics the paper collects (§2.1).
type Stats struct {
	// MediaWriteBytes is the total written to the 3D-XPoint media
	// (XPLine write-backs × 256 B).
	MediaWriteBytes uint64
	// MediaReadBytes is the total read from the media (fills + read
	// misses × 256 B).
	MediaReadBytes uint64
	// XPBufWriteBytes is the total arriving at the XPBuffer from the
	// CPU (cacheline flushes × 64 B).
	XPBufWriteBytes uint64
	// XPBufWriteHits / XPBufWriteMisses count cacheline flushes that
	// were write-combined into a resident XPLine vs. those that forced
	// a fill.
	XPBufWriteHits   uint64
	XPBufWriteMisses uint64
	// XPBufReadHits / XPBufReadMisses classify PM loads.
	XPBufReadHits   uint64
	XPBufReadMisses uint64
	// CacheEvictions counts dirty cachelines written back by the
	// modeled CPU cache without an explicit flush.
	CacheEvictions uint64
	// UserWriteBytes is application-declared payload, the denominator
	// of both amplification factors (AddUserBytes).
	UserWriteBytes uint64
	// RemoteAccesses counts cross-socket PM accesses.
	RemoteAccesses uint64
	// MediaWriteByTag splits MediaWriteBytes by Thread tag.
	MediaWriteByTag [NumTags]uint64
}

// CLIAmplification is bytes reaching the XPBuffer per user byte:
// cacheline-induced write amplification.
func (s Stats) CLIAmplification() float64 {
	if s.UserWriteBytes == 0 {
		return 0
	}
	return float64(s.XPBufWriteBytes) / float64(s.UserWriteBytes)
}

// XBIAmplification is bytes written to media per user byte:
// XPBuffer-induced write amplification, the paper's headline metric.
func (s Stats) XBIAmplification() float64 {
	if s.UserWriteBytes == 0 {
		return 0
	}
	return float64(s.MediaWriteBytes) / float64(s.UserWriteBytes)
}

// Sub returns the counter deltas s−t (for measuring a phase that started
// at snapshot t).
func (s Stats) Sub(t Stats) Stats {
	d := Stats{
		MediaWriteBytes:  s.MediaWriteBytes - t.MediaWriteBytes,
		MediaReadBytes:   s.MediaReadBytes - t.MediaReadBytes,
		XPBufWriteBytes:  s.XPBufWriteBytes - t.XPBufWriteBytes,
		XPBufWriteHits:   s.XPBufWriteHits - t.XPBufWriteHits,
		XPBufWriteMisses: s.XPBufWriteMisses - t.XPBufWriteMisses,
		XPBufReadHits:    s.XPBufReadHits - t.XPBufReadHits,
		XPBufReadMisses:  s.XPBufReadMisses - t.XPBufReadMisses,
		CacheEvictions:   s.CacheEvictions - t.CacheEvictions,
		UserWriteBytes:   s.UserWriteBytes - t.UserWriteBytes,
		RemoteAccesses:   s.RemoteAccesses - t.RemoteAccesses,
	}
	for i := range d.MediaWriteByTag {
		d.MediaWriteByTag[i] = s.MediaWriteByTag[i] - t.MediaWriteByTag[i]
	}
	return d
}

func (c *counters) snapshot() Stats {
	s := Stats{
		MediaWriteBytes:  c.mediaWriteBytes.Load(),
		MediaReadBytes:   c.mediaReadBytes.Load(),
		XPBufWriteBytes:  c.xpbufWriteBytes.Load(),
		XPBufWriteHits:   c.xpbufWriteHits.Load(),
		XPBufWriteMisses: c.xpbufWriteMiss.Load(),
		XPBufReadHits:    c.xpbufReadHits.Load(),
		XPBufReadMisses:  c.xpbufReadMiss.Load(),
		CacheEvictions:   c.cacheEvictions.Load(),
		UserWriteBytes:   c.userWriteBytes.Load(),
		RemoteAccesses:   c.remoteAccesses.Load(),
	}
	for i := range s.MediaWriteByTag {
		s.MediaWriteByTag[i] = c.mediaWriteByTag[i].Load()
	}
	return s
}

func (c *counters) reset() {
	c.mediaWriteBytes.Store(0)
	c.mediaReadBytes.Store(0)
	c.xpbufWriteBytes.Store(0)
	c.xpbufWriteHits.Store(0)
	c.xpbufWriteMiss.Store(0)
	c.xpbufReadHits.Store(0)
	c.xpbufReadMiss.Store(0)
	c.cacheEvictions.Store(0)
	c.userWriteBytes.Store(0)
	c.remoteAccesses.Store(0)
	for i := range c.mediaWriteByTag {
		c.mediaWriteByTag[i].Store(0)
	}
}
