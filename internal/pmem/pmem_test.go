package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func testPool(t *testing.T, mut func(*Config)) *Pool {
	t.Helper()
	cfg := Config{
		Sockets:        2,
		DIMMsPerSocket: 2,
		DeviceBytes:    1 << 20,
		XPBufferLines:  8,
		CacheLines:     1 << 12,
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewPool(cfg)
}

func TestAddrPacking(t *testing.T) {
	a := MakeAddr(1, 0x1234)
	if a.Socket() != 1 || a.Offset() != 0x1234 {
		t.Fatalf("roundtrip failed: socket=%d off=%#x", a.Socket(), a.Offset())
	}
	if a.Add(8).Offset() != 0x123c {
		t.Fatalf("Add failed: %#x", a.Add(8).Offset())
	}
	if !NilAddr.IsNil() || a.IsNil() {
		t.Fatal("IsNil wrong")
	}
	p := a.Pack48()
	if Unpack48(p) != a {
		t.Fatalf("Pack48 roundtrip: %v != %v", Unpack48(p), a)
	}
	// Pack48 must survive being embedded in a wider word.
	wide := p | 0x3fff<<48
	if Unpack48(wide) != a {
		t.Fatalf("Unpack48 must mask high bits")
	}
}

func TestPack48Overflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized offset")
		}
	}()
	MakeAddr(0, 1<<44).Pack48()
}

//persistlint:ignore PL001 volatile store/load roundtrip; durability is not under test
func TestStoreLoadRoundtrip(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 0xdeadbeef)
	if got := th.Load(a); got != 0xdeadbeef {
		t.Fatalf("Load = %#x", got)
	}
	// Word on another socket.
	b := MakeAddr(1, 512)
	th.Store(b, 7)
	if got := th.Load(b); got != 7 {
		t.Fatalf("remote Load = %d", got)
	}
	if p.Stats().RemoteAccesses == 0 {
		t.Fatal("remote access not counted")
	}
}

//persistlint:ignore PL001 volatile range roundtrip; durability is not under test
func TestRangeRoundtrip(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 1024)
	src := make([]uint64, 32)
	for i := range src {
		src[i] = uint64(i * 3)
	}
	th.WriteRange(a, src)
	dst := make([]uint64, 32)
	th.ReadRange(a, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d: got %d want %d", i, dst[i], src[i])
		}
	}
}

func TestCrashRollsBackUnflushedStores(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 2048)
	th.Store(a, 1)
	th.Persist(a, 8)
	//persistlint:ignore PL001 deliberately unflushed: the crash below must roll it back
	th.Store(a, 2) // never flushed
	p.Crash()
	th2 := p.NewThread(0)
	if got := th2.Load(a); got != 1 {
		t.Fatalf("after crash Load = %d, want flushed value 1", got)
	}
}

func TestCrashKeepsFlushedStores(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	for i := 0; i < 100; i++ {
		a := MakeAddr(0, uint64(64*i))
		th.Store(a, uint64(i))
		th.Persist(a, 8)
	}
	p.Crash()
	th2 := p.NewThread(0)
	for i := 0; i < 100; i++ {
		if got := th2.Load(MakeAddr(0, uint64(64*i))); got != uint64(i) {
			t.Fatalf("slot %d lost: %d", i, got)
		}
	}
}

func TestFlushWithoutFenceNotDurable(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 2048)
	th.Store(a, 1)
	th.Persist(a, 8)
	th.Store(a, 2)
	//persistlint:ignore PL002 deliberately unfenced: the crash below must discard the clwb snapshot
	th.Flush(a, 8) // no fence
	p.Crash()
	if got := p.NewThread(0).Load(a); got != 1 {
		t.Fatalf("unfenced flush persisted: %d", got)
	}
}

func TestStoreAfterFlushBeforeFence(t *testing.T) {
	// sfence persists the flush-time snapshot, not later stores.
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 2048)
	th.Store(a, 1)
	th.Flush(a, 8)
	//persistlint:ignore PL001 deliberately unflushed: sfence must persist the flush-time snapshot only
	th.Store(a, 2) // after clwb, before sfence
	th.Fence()
	p.Crash()
	if got := p.NewThread(0).Load(a); got != 1 {
		t.Fatalf("persistent value = %d, want flush-time snapshot 1", got)
	}
}

func TestEADRStoresSurviveCrash(t *testing.T) {
	p := testPool(t, func(c *Config) { c.Mode = EADR })
	th := p.NewThread(0)
	a := MakeAddr(0, 2048)
	//persistlint:ignore PL001 the pool runs in eADR mode: stores are durable without flushing
	th.Store(a, 42) // no flush at all
	p.Crash()
	if got := p.NewThread(0).Load(a); got != 42 {
		t.Fatalf("eADR store lost: %d", got)
	}
}

func TestXPBufferWriteCombining(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	base := p.Stats()
	// Four cacheline flushes into the same XPLine: one miss, three hits.
	for i := 0; i < 4; i++ {
		a := MakeAddr(0, uint64(64*i))
		th.Store(a, uint64(i+1))
		th.Persist(a, 8)
	}
	s := p.Stats().Sub(base)
	if s.XPBufWriteBytes != 4*CachelineSize {
		t.Fatalf("XPBufWriteBytes = %d", s.XPBufWriteBytes)
	}
	if s.XPBufWriteMisses != 1 || s.XPBufWriteHits != 3 {
		t.Fatalf("miss/hit = %d/%d, want 1/3", s.XPBufWriteMisses, s.XPBufWriteHits)
	}
	if s.MediaWriteBytes != 0 {
		t.Fatalf("media write before eviction: %d", s.MediaWriteBytes)
	}
	p.DrainXPBuffers()
	s = p.Stats().Sub(base)
	if s.MediaWriteBytes != XPLineSize {
		t.Fatalf("after drain MediaWriteBytes = %d, want %d", s.MediaWriteBytes, XPLineSize)
	}
}

func TestXPBufferEvictionCountsMediaWrites(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	base := p.Stats()
	// Touch far more XPLines than one DIMM buffers (cap 8/DIMM, 2 DIMMs)
	// with poor locality: every flush misses, evictions write media.
	const n = 256
	for i := 0; i < n; i++ {
		a := MakeAddr(0, uint64(i*XPLineSize))
		th.Store(a, 1)
		th.Persist(a, 8)
	}
	s := p.Stats().Sub(base)
	if s.XPBufWriteMisses != n {
		t.Fatalf("misses = %d, want %d", s.XPBufWriteMisses, n)
	}
	wantEvicted := uint64(n-2*8) * XPLineSize // all but buffered lines
	if s.MediaWriteBytes != wantEvicted {
		t.Fatalf("MediaWriteBytes = %d, want %d", s.MediaWriteBytes, wantEvicted)
	}
}

func TestAmplificationMetrics(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	// One 16 B KV write that dirties one cacheline in a cold XPLine.
	th.Store(MakeAddr(0, 0), 1)
	th.Store(MakeAddr(0, 8), 2)
	th.Persist(MakeAddr(0, 0), 16)
	p.AddUserBytes(16)
	p.DrainXPBuffers()
	s := p.Stats()
	if got := s.CLIAmplification(); got != 4 { // 64/16
		t.Fatalf("CLI = %v, want 4", got)
	}
	if got := s.XBIAmplification(); got != 16 { // 256/16
		t.Fatalf("XBI = %v, want 16", got)
	}
}

func TestMediaWriteTagAttribution(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	th.SetTag(TagWAL)
	th.Store(MakeAddr(0, 0), 1)
	th.Persist(MakeAddr(0, 0), 8)
	th.SetTag(TagLeaf)
	th.Store(MakeAddr(0, 4096), 1)
	th.Persist(MakeAddr(0, 4096), 8)
	p.DrainXPBuffers()
	s := p.Stats()
	if s.MediaWriteByTag[TagWAL] != XPLineSize {
		t.Fatalf("WAL bytes = %d", s.MediaWriteByTag[TagWAL])
	}
	if s.MediaWriteByTag[TagLeaf] != XPLineSize {
		t.Fatalf("leaf bytes = %d", s.MediaWriteByTag[TagLeaf])
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	if th.Now() != 0 {
		t.Fatal("fresh thread clock not zero")
	}
	th.Store(MakeAddr(0, 0), 1)
	th.Persist(MakeAddr(0, 0), 8)
	if th.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
	before := th.Now()
	th.Advance(1000)
	if th.Now() != before+1000 {
		t.Fatal("Advance wrong")
	}
}

func TestMediaBandwidthBoundsThroughput(t *testing.T) {
	// The §2.2 observation: with enough threads, time is governed by
	// XPLine flush count, not cacheline flush count. Many threads
	// doing XPLine misses saturate the DIMMs and pay backpressure
	// stalls; the same flush count landing in resident XPLines costs
	// only issue+fence time.
	const threads = 16
	const n = 2000
	runCase := func(miss bool) int64 {
		p := testPool(t, func(c *Config) { c.DeviceBytes = 16 << 20 })
		var wg sync.WaitGroup
		elapsed := make([]int64, threads)
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := p.NewThread(0)
				base := uint64(w) * uint64(n) * XPLineSize
				for i := 0; i < n; i++ {
					var a Addr
					if miss {
						a = MakeAddr(0, base+uint64(i*XPLineSize))
					} else {
						a = MakeAddr(0, base) // same XPLine: always a hit
					}
					th.Store(a, uint64(i+1))
					th.Persist(a, 8)
				}
				elapsed[w] = th.Now()
			}(w)
		}
		wg.Wait()
		var max int64
		for _, e := range elapsed {
			if e > max {
				max = e
			}
		}
		return max
	}
	missTime := runCase(true)
	hitTime := runCase(false)
	// The miss run is bounded by aggregate media bandwidth: fills plus
	// write-backs spread over the device's DIMMs.
	cfg := testPool(t, nil).Config()
	c := cfg.Cost
	mediaBound := int64(threads) * int64(n) * (c.MediaRead + c.MediaWrite) / int64(cfg.DIMMsPerSocket)
	if missTime < mediaBound/2 {
		t.Fatalf("media-bound run %d ns far below bandwidth bound %d ns", missTime, mediaBound)
	}
	if missTime <= hitTime*3/2 {
		t.Fatalf("media-bound run (%d ns) should exceed buffered run (%d ns)", missTime, hitTime)
	}
}

func TestReadCostsHitVsMiss(t *testing.T) {
	p := testPool(t, nil)
	wr := p.NewThread(0)
	// Persist then drain so nothing is cached anywhere.
	wr.Store(MakeAddr(0, 0), 7)
	wr.Persist(MakeAddr(0, 0), 8)
	p.DrainXPBuffers()

	rd := p.NewThread(0)
	before := rd.Now()
	rd.Load(MakeAddr(0, 0))
	missCost := rd.Now() - before
	if missCost < p.Config().Cost.PMReadMiss {
		t.Fatalf("cold read cost %d < PMReadMiss", missCost)
	}
	before = rd.Now()
	rd.Load(MakeAddr(0, 0)) // thread-local read cache hit
	if c := rd.Now() - before; c >= missCost {
		t.Fatalf("warm read (%d) not cheaper than cold (%d)", c, missCost)
	}
	s := p.Stats()
	if s.MediaReadBytes == 0 {
		t.Fatal("media read not counted")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	p := testPool(t, func(c *Config) { c.CacheLines = 64 })
	th := p.NewThread(0)
	// Dirty far more lines than the cache holds without ever flushing.
	for i := 0; i < 1024; i++ {
		//persistlint:ignore PL001 capacity-pressure test: evictions persist a subset, the crash rolls back the rest
		th.Store(MakeAddr(0, uint64(i*CachelineSize)), uint64(i))
	}
	s := p.Stats()
	if s.CacheEvictions == 0 {
		t.Fatal("no cache evictions despite capacity pressure")
	}
	// Evicted lines persisted: crash must keep at least some stores.
	p.Crash()
	th2 := p.NewThread(0)
	kept := 0
	for i := 0; i < 1024; i++ {
		if th2.Load(MakeAddr(0, uint64(i*CachelineSize))) == uint64(i) {
			kept++
		}
	}
	if kept == 0 || kept == 1024 {
		t.Fatalf("kept %d lines; expected evicted subset to persist and resident dirty lines to roll back", kept)
	}
}

func TestConcurrentDisjointAccess(t *testing.T) {
	p := testPool(t, nil)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := p.NewThread(w % p.Sockets())
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w) * 65536
			for i := 0; i < per; i++ {
				off := base + uint64(rng.Intn(8192))*8
				a := MakeAddr(w%p.Sockets(), off)
				//persistlint:ignore PL001 only every 4th store is persisted; the test measures flush traffic, not durability
				th.Store(a, uint64(i))
				if i%4 == 0 {
					th.Persist(a, 8)
				}
				_ = th.Load(a)
			}
		}(w)
	}
	wg.Wait()
	if p.Stats().XPBufWriteBytes == 0 {
		t.Fatal("no flush traffic recorded")
	}
}

func TestSaveLoadPersistent(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	th.Store(MakeAddr(0, 0), 11)
	th.Persist(MakeAddr(0, 0), 8)
	//persistlint:ignore PL001 deliberately unflushed: the saved image must not contain it
	th.Store(MakeAddr(0, 8), 22) // not flushed: must not be in the image
	var buf bytes.Buffer
	if err := p.SavePersistent(0, &buf); err != nil {
		t.Fatal(err)
	}
	p2 := testPool(t, nil)
	if err := p2.LoadPersistent(0, &buf); err != nil {
		t.Fatal(err)
	}
	th2 := p2.NewThread(0)
	if got := th2.Load(MakeAddr(0, 0)); got != 11 {
		t.Fatalf("restored word = %d", got)
	}
	if got := th2.Load(MakeAddr(0, 8)); got != 0 {
		t.Fatalf("unflushed word leaked into image: %d", got)
	}
}

func TestResetStats(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	th.Store(MakeAddr(0, 0), 1)
	th.Persist(MakeAddr(0, 0), 8)
	p.AddUserBytes(8)
	p.ResetStats()
	s := p.Stats()
	if s.XPBufWriteBytes != 0 || s.UserWriteBytes != 0 {
		t.Fatalf("counters not reset: %+v", s)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := NewPool(Config{})
	cfg := p.Config()
	if cfg.Sockets != 2 || cfg.DIMMsPerSocket != 4 || cfg.XPBufferLines != 64 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.DeviceBytes%XPLineSize != 0 {
		t.Fatal("capacity not XPLine aligned")
	}
}

func TestTagString(t *testing.T) {
	for tag := TagData; tag < NumTags; tag++ {
		if tag.String() == "unknown" {
			t.Fatalf("tag %d has no name", tag)
		}
	}
}

// FlushNS/FenceNS must account exactly the virtual time the thread
// spends in flush/fence, so the span layer can carve those segments
// out of op latency by taking deltas.
func TestFlushFenceTimeAccounting(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	if th.FlushNS() != 0 || th.FenceNS() != 0 {
		t.Fatal("fresh thread has nonzero flush/fence time")
	}
	th.Store(a, 1)
	v0, f0 := th.Now(), th.FlushNS()
	th.Flush(a, 8)
	flushDelta := th.FlushNS() - f0
	if flushDelta <= 0 {
		t.Fatalf("flush accounted %d ns", flushDelta)
	}
	if got := th.Now() - v0; got != flushDelta {
		t.Fatalf("flush advanced vt by %d but accounted %d", got, flushDelta)
	}
	v1, e0 := th.Now(), th.FenceNS()
	th.Fence()
	fenceDelta := th.FenceNS() - e0
	if fenceDelta <= 0 {
		t.Fatalf("fence accounted %d ns", fenceDelta)
	}
	if got := th.Now() - v1; got != fenceDelta {
		t.Fatalf("fence advanced vt by %d but accounted %d", got, fenceDelta)
	}
	// Persist is flush+fence; both accumulators keep growing.
	th.Store(a, 2)
	th.Persist(a, 8)
	if th.FlushNS() <= flushDelta || th.FenceNS() <= fenceDelta {
		t.Fatal("Persist did not accumulate flush/fence time")
	}
}
