package pmem

import "sync/atomic"

// This file implements the fault-injection surface the crash-recovery
// test harnesses drive: counted power failures (FailAfterFlushes, the
// original single-threaded sweep trigger), predicate-armed power
// failures (FailWhen, which the concurrent torture harness uses to
// place crashes inside specific components), and torn-XPLine injection
// (TearPending, which persists only a prefix of an in-flight
// write-back).
//
// The crash model for concurrent programs: a power failure is not a
// single instant on the host — goroutines cannot be stopped
// preemptively — so FailWhen is sticky. The first flush whose
// FaultPoint satisfies the predicate panics with PowerFailure, and from
// then on EVERY flush on every thread panics too. Each goroutine
// therefore dies at its next flush; work it completes in between
// (stores, fences of already-issued flushes) corresponds to operations
// that were concurrent with the failure and happened to land, which the
// durable-prefix oracle in internal/torture accounts for.

// FaultPoint describes one potential power-failure site: a Flush (or
// the flush half of Persist) about to execute. The attribution fields
// are the same Scope/Tag the observability layer uses to partition
// media traffic, so a harness can aim crashes at mid-WAL-append,
// mid-split, or mid-GC states by scope alone.
type FaultPoint struct {
	// Seq is the global ordinal of this flush call (1-based,
	// monotonically increasing across all threads; also readable as
	// Pool.FlushCalls).
	Seq int64
	// Socket is the NUMA node of the flushed address.
	Socket int
	// Scope is the flushing thread's attribution scope.
	Scope Scope
	// Tag is the flushing thread's attribution tag.
	Tag Tag
	// Line is the first cacheline index covered by the flush.
	Line uint64
}

// FailWhen arms predicate-based power-failure injection: every Flush
// evaluates pred on its FaultPoint, and the first call that returns
// true panics with PowerFailure. The trigger is sticky — after it
// fires, every subsequent flush on any thread panics too (see the
// crash model above) — until FailWhen(nil) disarms it. pred runs on
// the flushing goroutine and must be safe for concurrent calls.
//
// Flushes are evaluated (and counted) in eADR mode too, even though
// they move no data there: a crash harness needs the same trigger
// points in both modes to compare recovered states.
func (p *Pool) FailWhen(pred func(FaultPoint) bool) {
	if pred == nil {
		p.failPred.Store(nil)
		p.failFired.Store(false)
		return
	}
	p.failFired.Store(false)
	p.failPred.Store(&pred)
}

// FaultFired reports whether an armed FailWhen predicate has triggered.
func (p *Pool) FaultFired() bool { return p.failFired.Load() }

// FlushCalls returns the number of Flush/Persist calls issued on the
// pool since creation (both modes; clean-line flushes count). Crash
// sweeps use it to enumerate every fault site deterministically.
func (p *Pool) FlushCalls() int64 { return p.flushSeq.Load() }

// checkFault runs the armed fault triggers for one flush call at a.
// Called from Thread.flush before any write-back happens, in eADR mode
// too, so a triggered failure never persists the line being flushed.
func (t *Thread) checkFault(a Addr) {
	p := t.pool
	seq := p.flushSeq.Add(1)
	p.checkPowerFailure()
	predp := p.failPred.Load()
	if predp == nil {
		return
	}
	if p.failFired.Load() {
		panic(PowerFailure{})
	}
	fp := FaultPoint{
		Seq:    seq,
		Socket: a.Socket(),
		Scope:  t.scope,
		Tag:    t.tag,
		Line:   a.Offset() / CachelineSize,
	}
	if (*predp)(fp) {
		p.failFired.Store(true)
		panic(PowerFailure{})
	}
}

// TearPending models torn XPLine write-backs at a power failure: for
// every flush this thread has issued but not yet fenced, a
// pseudo-random prefix of the line's flush-time snapshot (derived
// deterministically from seed and the line address) becomes persistent;
// the rest of the line stays at its previous persistent image. This is
// the 8-byte-atomic, in-store-order drain model: words of one cacheline
// reach the media front to back, and power can fail between any two.
//
// Call it after recovering a PowerFailure panic and before Pool.Crash;
// it returns the number of lines that became partially (or, when the
// random prefix covers the whole line, fully) persistent. In eADR mode
// flushes complete instantly, nothing is ever pending, and tearing is
// impossible by construction — the call is a no-op returning 0.
func (t *Thread) TearPending(seed int64) int {
	if t.strict {
		t.beginOp("TearPending")
		defer t.endOp()
	}
	torn := 0
	for _, pf := range t.pending {
		k := tornPrefix(seed, uint64(pf.dev.id), pf.line)
		if pf.dev.tearLine(pf.line, pf.snapshot, k) {
			torn++
		}
	}
	t.pending = t.pending[:0]
	return torn
}

// TearPendingPrefix is TearPending with a fixed prefix length of k
// words (0 ≤ k ≤ 8) applied to every pending line, for tests that need
// a specific tear point rather than a seeded one.
func (t *Thread) TearPendingPrefix(k int) int {
	if t.strict {
		t.beginOp("TearPendingPrefix")
		defer t.endOp()
	}
	torn := 0
	for _, pf := range t.pending {
		if pf.dev.tearLine(pf.line, pf.snapshot, k) {
			torn++
		}
	}
	t.pending = t.pending[:0]
	return torn
}

// tornPrefix picks the number of words of a line that drained before
// the failure: a deterministic hash of (seed, device, line) in
// [0, wordsPerLine]. Both endpoints are legal crash states — nothing
// drained, or the whole line made it just before the fence would have.
func tornPrefix(seed int64, dev, line uint64) int {
	x := uint64(seed) ^ dev*0x9e3779b97f4a7c15 ^ line*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(wordsPerLine+1))
}

// tearLine commits the first k words of snapshot into line's persistent
// pre-image, so a subsequent crash restores a half-written line. Lines
// already committed (fenced or evicted — fully persistent) and lines
// without pre-image tracking are left alone.
func (d *device) tearLine(line uint64, snapshot []uint64, k int) bool {
	if k <= 0 {
		return false
	}
	if k > len(snapshot) {
		k = len(snapshot)
	}
	sh := d.shardFor(line)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.lines[line]
	if !ok || e.pre == nil {
		return false
	}
	copy(e.pre[:k], snapshot[:k])
	return true
}

// faultState holds the armed-fault bookkeeping, embedded in Pool.
type faultState struct {
	failPred  atomic.Pointer[func(FaultPoint) bool]
	failFired atomic.Bool
	flushSeq  atomic.Int64
}
