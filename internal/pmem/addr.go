package pmem

import "fmt"

// Addr is a persistent-memory address: a socket id in the top 8 bits and
// a byte offset within that socket's device in the low 56 bits. The zero
// Addr is reserved as the nil pointer (offset 0 of socket 0 is never
// handed out by the allocator).
type Addr uint64

// NilAddr is the null persistent pointer.
const NilAddr Addr = 0

const addrSocketShift = 56

// MakeAddr builds an address from a socket id and byte offset.
func MakeAddr(socket int, off uint64) Addr {
	return Addr(uint64(socket)<<addrSocketShift | off)
}

// Socket returns the socket id encoded in the address.
func (a Addr) Socket() int { return int(a >> addrSocketShift) }

// Offset returns the byte offset within the socket's device.
func (a Addr) Offset() uint64 { return uint64(a) & (1<<addrSocketShift - 1) }

// Add returns the address advanced by n bytes.
func (a Addr) Add(n int64) Addr { return Addr(int64(a) + n) }

// IsNil reports whether a is the null pointer.
func (a Addr) IsNil() bool { return a == NilAddr }

func (a Addr) String() string {
	return fmt.Sprintf("pm[%d]+0x%x", a.Socket(), a.Offset())
}

// Pack48 packs an address into 48 bits for compressed headers (the leaf
// node next pointer shares a word with the bitmap, §4.1). Socket ids and
// offsets beyond 48 bits panic: the modeled devices are far smaller.
func (a Addr) Pack48() uint64 {
	s := uint64(a.Socket())
	off := a.Offset()
	if s >= 1<<4 || off >= 1<<44 {
		panic("pmem: address does not fit in 48 bits")
	}
	return s<<44 | off
}

// Unpack48 reverses Pack48.
func Unpack48(v uint64) Addr {
	v &= 1<<48 - 1
	return MakeAddr(int(v>>44), v&(1<<44-1))
}
