package pmem

// Hardware constants of the modeled device. These mirror Intel Optane
// DCPMM and are fixed: the paper's entire problem statement is the
// mismatch between the two granularities.
const (
	// CachelineSize is the CPU cacheline size in bytes, the granularity
	// at which data moves from the CPU cache to the XPBuffer.
	CachelineSize = 64
	// XPLineSize is the media access granularity in bytes: the XPBuffer
	// reads and writes the 3D-XPoint media in 256 B units.
	XPLineSize = 256
	// WordSize is the access granularity of the Load/Store API. 8 B
	// stores are failure-atomic on real PM and every structure in this
	// repository is word-aligned.
	WordSize = 8

	wordsPerLine   = CachelineSize / WordSize
	wordsPerXPLine = XPLineSize / WordSize
	linesPerXPLine = XPLineSize / CachelineSize
)

// Mode selects the persistence domain of the platform.
type Mode int

const (
	// ADR: the write pending queues are power-fail protected but CPU
	// caches are not. Programs must clwb+sfence explicitly.
	ADR Mode = iota
	// EADR: CPU caches are inside the persistence domain. Stores are
	// durable once globally visible; flushes are unnecessary (and the
	// model makes them free). Dirty lines still reach the media through
	// cache evictions, which is what makes eADR interesting (Fig 16).
	EADR
)

// Tag attributes media traffic to a logical source so experiments can
// split write amplification by cause (Fig 13b).
type Tag uint8

const (
	// TagData is the default attribution for untagged accesses.
	TagData Tag = iota
	// TagLeaf marks leaf-node (tree structure) writes.
	TagLeaf
	// TagWAL marks write-ahead-log writes.
	TagWAL
	// TagMeta marks allocator and other metadata writes.
	TagMeta
	// NumTags is the number of attribution buckets.
	NumTags
)

func (t Tag) String() string {
	switch t {
	case TagData:
		return "data"
	case TagLeaf:
		return "leaf"
	case TagWAL:
		return "wal"
	case TagMeta:
		return "meta"
	}
	return "unknown"
}

// Scope attributes PM traffic to the program component that caused it,
// one level finer than Tag: where Tag answers "what kind of bytes"
// (leaf/WAL/meta), Scope answers "which code path wrote them" — the
// per-site attribution the observability layer (internal/obs) exposes
// and cclstat renders. Threads carry a current scope set with
// PushScope/PopScope; every byte arriving at the XPBuffer, and every
// XPLine eventually written back to media, is charged to the scope of
// the thread that dirtied it.
//
// Nesting contract: the innermost component wins, with two documented
// refinements implemented by the components themselves (not here):
// WAL appends always attribute to ScopeWAL regardless of the caller's
// scope, and the leaf-flush/split paths keep an active task scope
// (ScopeGC, ScopeRecovery) instead of overriding it, so "gc" traffic
// stays visibly gc-caused.
type Scope uint8

const (
	// ScopeNone is the default: foreground application traffic with no
	// finer attribution ("data" in displays).
	ScopeNone Scope = iota
	// ScopeLeafBuf marks buffer-node batch flushes into PM leaves.
	ScopeLeafBuf
	// ScopeWAL marks write-ahead-log appends.
	ScopeWAL
	// ScopeGC marks garbage-collection traffic (naive-GC leaf flushes,
	// restamps); locality-aware GC's I-log copies are WAL appends and
	// attribute to ScopeWAL by contract.
	ScopeGC
	// ScopeSplit marks structural operations: leaf splits and merges.
	ScopeSplit
	// ScopeRecovery marks post-crash recovery scans and replays.
	ScopeRecovery
	// ScopeMeta marks superblock, chunk-directory and allocator
	// metadata writes.
	ScopeMeta
	// NumScopes is the number of attribution buckets.
	NumScopes
)

func (s Scope) String() string {
	switch s {
	case ScopeNone:
		return "data"
	case ScopeLeafBuf:
		return "leafbuf"
	case ScopeWAL:
		return "wal"
	case ScopeGC:
		return "gc"
	case ScopeSplit:
		return "split"
	case ScopeRecovery:
		return "recovery"
	case ScopeMeta:
		return "meta"
	}
	return "unknown"
}

// ScopeNames returns the display names of all scopes, indexed by Scope.
func ScopeNames() [NumScopes]string {
	var out [NumScopes]string
	for i := range out {
		out[i] = Scope(i).String()
	}
	return out
}

// CostModel holds the virtual-time parameters, all in nanoseconds. The
// defaults are calibrated against published Optane 200 characterization
// numbers; what matters for reproduction is their relative order
// (media service ≫ flush issue cost, remote > local).
type CostModel struct {
	// DRAMAccess is charged for a word access to DRAM-resident
	// structures (indexes call Thread.Advance with multiples of this).
	DRAMAccess int64
	// PMReadHit is the load latency when the XPLine is resident in the
	// XPBuffer or the line is dirty in the CPU cache.
	PMReadHit int64
	// PMReadMiss is the load latency when the media must be accessed.
	PMReadMiss int64
	// FlushIssue is the CPU-side cost of one clwb.
	FlushIssue int64
	// FenceIssue is the CPU-side cost of one sfence.
	FenceIssue int64
	// MediaWrite is the DIMM occupancy of one 256 B XPLine write-back
	// (256 ns ≈ 1 GB/s of random-write bandwidth per DIMM).
	MediaWrite int64
	// MediaRead is the DIMM occupancy of one 256 B XPLine fill.
	MediaRead int64
	// RemoteAccess is the extra latency for crossing the socket
	// interconnect (NUMA).
	RemoteAccess int64
	// MaxQueueLead bounds how far the media write queue may run ahead
	// of a thread before flushes start to stall it (WPQ backpressure).
	MaxQueueLead int64
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		DRAMAccess:   4,
		PMReadHit:    170,
		PMReadMiss:   320,
		FlushIssue:   80,
		FenceIssue:   300, // persist barrier: sfence waits for WPQ acceptance
		MediaWrite:   256,
		MediaRead:    130,
		RemoteAccess: 70,
		MaxQueueLead: 4096,
	}
}

// Config describes a pool of PM devices.
type Config struct {
	// Sockets is the number of NUMA nodes, each with its own PM device.
	Sockets int
	// DIMMsPerSocket shards each device into independently buffered and
	// independently bandwidth-limited DIMMs, interleaved by XPLine
	// groups like real platforms.
	DIMMsPerSocket int
	// DeviceBytes is the PM capacity per socket.
	DeviceBytes int64
	// XPBufferLines is the write-combining buffer capacity per DIMM in
	// XPLines (64 × 256 B = 16 KB, the paper's figure).
	XPBufferLines int
	// CacheLines is the modeled CPU cache capacity in dirty cachelines;
	// beyond it the cache evicts (write-back) without program control.
	CacheLines int
	// Mode selects ADR or eADR.
	Mode Mode
	// Cost is the virtual-time model.
	Cost CostModel
	// DisableCrashTracking skips pre-image bookkeeping for workloads
	// that never call Crash. Persistence semantics are unchanged for
	// the program; only Crash becomes unavailable.
	DisableCrashTracking bool
	// StrictPersist arms the runtime discipline checker (see strict.go):
	// panic-with-context on cross-goroutine Thread use, unaligned
	// Load/Store addresses, Thread.Release with pending flushes, and
	// Pool.Close with dirty lines outside declared-volatile regions.
	// Meant for test suites; off by default to keep hot paths clean.
	StrictPersist bool
}

// DefaultConfig returns a two-socket, four-DIMMs-per-socket platform
// mirroring the paper's testbed shape at laptop-friendly capacity.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		DIMMsPerSocket: 4,
		DeviceBytes:    256 << 20,
		XPBufferLines:  64,
		CacheLines:     1 << 15, // 2 MB of dirty lines
		Mode:           ADR,
		Cost:           DefaultCostModel(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Sockets <= 0 {
		c.Sockets = d.Sockets
	}
	if c.DIMMsPerSocket <= 0 {
		c.DIMMsPerSocket = d.DIMMsPerSocket
	}
	if c.DeviceBytes <= 0 {
		c.DeviceBytes = d.DeviceBytes
	}
	if c.XPBufferLines <= 0 {
		c.XPBufferLines = d.XPBufferLines
	}
	if c.CacheLines <= 0 {
		c.CacheLines = d.CacheLines
	}
	if c.Cost == (CostModel{}) {
		c.Cost = d.Cost
	}
	// Round capacity to whole XPLines.
	c.DeviceBytes -= c.DeviceBytes % XPLineSize
	return c
}
