package pmem

import (
	"sync"
	"sync/atomic"
)

// interleaveXPLines is the DIMM interleave granularity in XPLines
// (16 × 256 B = 4 KB, matching real platform interleaving).
const interleaveXPLines = 16

const numShards = 64

// lineEntry tracks one dirty cacheline in the modeled CPU cache. pre is
// the persistent image to restore on a crash; it is nil when crash
// tracking is off or the platform is eADR (where the cache itself is
// persistent).
type lineEntry struct {
	pre []uint64
}

// lineShard stripes the dirty-line table to keep store-path locking
// cheap under concurrency.
type lineShard struct {
	mu    sync.Mutex
	lines map[uint64]*lineEntry // cacheline index -> entry
}

// dimm models one DIMM: an XPBuffer (write-combining cache of XPLines
// with LRU replacement) plus a bandwidth arbiter for the media behind it.
type dimm struct {
	mu  sync.Mutex
	cap int
	// lru is a doubly linked list of resident XPLines, most recent
	// first, implemented inline to avoid container/list allocations.
	ent        map[uint64]*xpEntry
	head, tail *xpEntry

	busyUntil atomic.Int64
}

type xpEntry struct {
	xpline     uint64
	tag        Tag
	scope      Scope
	dirty      bool
	prev, next *xpEntry
}

// device is one socket's PM: the word array (media + cache view), the
// dirty-line table, XPLine residency bits, and the DIMM models.
type device struct {
	id    int
	words []uint64
	// dirtyBits has one bit per cacheline: set iff the line has an
	// entry in its shard (i.e. is dirty in the modeled CPU cache).
	dirtyBits []atomic.Uint32
	// residentBits has one bit per XPLine: set iff the XPLine is
	// resident in its DIMM's XPBuffer. Maintained under the DIMM lock,
	// read lock-free on the load path.
	residentBits []atomic.Uint32
	shards       [numShards]lineShard
	dirtyCount   atomic.Int64
	evictCursor  atomic.Uint64
	dimms        []*dimm
	cacheCap     int
}

func newDevice(id int, cfg *Config) *device {
	nWords := cfg.DeviceBytes / WordSize
	nLines := cfg.DeviceBytes / CachelineSize
	nXP := cfg.DeviceBytes / XPLineSize
	d := &device{
		id:           id,
		words:        make([]uint64, nWords),
		dirtyBits:    make([]atomic.Uint32, (nLines+31)/32),
		residentBits: make([]atomic.Uint32, (nXP+31)/32),
		dimms:        make([]*dimm, cfg.DIMMsPerSocket),
		cacheCap:     cfg.CacheLines,
	}
	for i := range d.shards {
		d.shards[i].lines = make(map[uint64]*lineEntry)
	}
	for i := range d.dimms {
		d.dimms[i] = &dimm{cap: cfg.XPBufferLines, ent: make(map[uint64]*xpEntry)}
	}
	return d
}

func (d *device) shardFor(line uint64) *lineShard {
	return &d.shards[line%numShards]
}

func (d *device) dimmFor(xpline uint64) *dimm {
	return d.dimms[(xpline/interleaveXPLines)%uint64(len(d.dimms))]
}

func (d *device) lineDirty(line uint64) bool {
	return d.dirtyBits[line/32].Load()&(1<<(line%32)) != 0
}

func (d *device) setDirtyBit(line uint64) {
	w := &d.dirtyBits[line/32]
	bit := uint32(1) << (line % 32)
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func (d *device) clearDirtyBit(line uint64) {
	w := &d.dirtyBits[line/32]
	bit := uint32(1) << (line % 32)
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

func (d *device) xplineResident(xp uint64) bool {
	return d.residentBits[xp/32].Load()&(1<<(xp%32)) != 0
}

func (d *device) setResident(xp uint64, v bool) {
	w := &d.residentBits[xp/32]
	bit := uint32(1) << (xp % 32)
	for {
		old := w.Load()
		var nw uint32
		if v {
			nw = old | bit
		} else {
			nw = old &^ bit
		}
		if old == nw || w.CompareAndSwap(old, nw) {
			return
		}
	}
}

// readLine atomically snapshots the 8 words of a cacheline.
func (d *device) readLine(line uint64) []uint64 {
	base := line * wordsPerLine
	s := make([]uint64, wordsPerLine)
	for i := range s {
		s[i] = atomic.LoadUint64(&d.words[base+uint64(i)])
	}
	return s
}

// markDirty records a store's cacheline in the CPU-cache model. trackPre
// selects whether the pre-store content is saved for crash rollback.
// It returns true when the dirty set exceeded capacity and the caller
// should evict one line (done outside the shard lock to avoid lock-order
// inversion between shards).
func (d *device) markDirty(line uint64, trackPre bool) bool {
	if d.lineDirty(line) {
		return false
	}
	sh := d.shardFor(line)
	sh.mu.Lock()
	if _, ok := sh.lines[line]; ok {
		sh.mu.Unlock()
		return false
	}
	e := &lineEntry{}
	if trackPre {
		e.pre = d.readLine(line)
	}
	sh.lines[line] = e
	d.setDirtyBit(line)
	sh.mu.Unlock()
	return d.dirtyCount.Add(1) > int64(d.cacheCap)
}

// evictOne writes back an arbitrary dirty line (hardware cache
// eviction): the data persists, a media-level write is accounted, and
// the program had no say — this is what degrades eADR locality (§5.5).
func (d *device) evictOne(p *Pool, t *Thread) {
	start := d.evictCursor.Add(1)
	for i := uint64(0); i < numShards; i++ {
		sh := &d.shards[(start+i)%numShards]
		sh.mu.Lock()
		var victim uint64
		found := false
		for line := range sh.lines {
			victim = line
			found = true
			break
		}
		if !found {
			sh.mu.Unlock()
			continue
		}
		delete(sh.lines, victim)
		d.clearDirtyBit(victim)
		sh.mu.Unlock()
		d.dirtyCount.Add(-1)
		p.ctr.cur.cacheEvictions.Add(1)
		if h := p.devHook.Load(); h != nil {
			(*h)(DevCacheEvict, d.id, victim/linesPerXPLine)
		}
		// The written-back line flows through the XPBuffer like any
		// flush; the backpressure stall still lands on the thread
		// whose store overflowed the cache.
		if _, stall := d.xpbufAccess(p, t, victim, true); stall > 0 {
			t.vt += stall
		}
		return
	}
}

// xpbufAccess models one cacheline-granular access reaching the
// XPBuffer: a write-back from a flush or cache eviction (isWrite), or a
// load fill (read). Hits are write-combined or served in place; misses
// bring the XPLine in from media, evicting (and writing back, if
// dirty) the LRU line. It returns (hit, backpressure stall): the stall
// reflects how far the DIMM's media queue runs ahead of the thread —
// the WPQ/XPBuffer backpressure that makes XPLine flush count, not
// cacheline flush count, bound throughput at saturation (§2.2).
func (d *device) xpbufAccess(p *Pool, t *Thread, line uint64, isWrite bool) (bool, int64) {
	c := &p.cfg.Cost
	xp := line / linesPerXPLine
	dm := d.dimmFor(xp)
	if isWrite {
		p.ctr.cur.xpbufWriteBytes.Add(CachelineSize)
		p.ctr.cur.xpbufWriteByScope[t.scope].Add(CachelineSize)
	}

	dm.mu.Lock()
	if e, ok := dm.ent[xp]; ok {
		dm.moveToFront(e)
		if isWrite {
			e.dirty = true
			e.tag = t.tag
			e.scope = t.scope
			p.ctr.cur.xpbufWriteHits.Add(1)
		} else {
			p.ctr.cur.xpbufReadHits.Add(1)
		}
		backlog := dm.busyUntil.Load()
		dm.mu.Unlock()
		stall := backlog - t.vt - c.MaxQueueLead
		if stall < 0 {
			stall = 0
		}
		return true, stall
	}
	if isWrite {
		p.ctr.cur.xpbufWriteMiss.Add(1)
	} else {
		p.ctr.cur.xpbufReadMiss.Add(1)
	}
	// Fill: read-modify-write brings the XPLine in from media.
	completion := dm.occupy(c.MediaRead)
	p.ctr.cur.mediaReadBytes.Add(XPLineSize)
	var evicted uint64
	dirtyEvict := false
	if len(dm.ent) >= dm.cap {
		victim := dm.popBack()
		delete(dm.ent, victim.xpline)
		d.setResident(victim.xpline, false)
		if victim.dirty {
			completion = dm.occupy(c.MediaWrite)
			p.ctr.cur.mediaWriteBytes.Add(XPLineSize)
			p.ctr.cur.mediaWriteByTag[victim.tag].Add(XPLineSize)
			p.ctr.cur.mediaWriteByScope[victim.scope].Add(XPLineSize)
			evicted, dirtyEvict = victim.xpline, true
		}
	}
	e := &xpEntry{xpline: xp, tag: t.tag, scope: t.scope, dirty: isWrite}
	dm.ent[xp] = e
	dm.pushFront(e)
	d.setResident(xp, true)
	dm.mu.Unlock()
	if dirtyEvict {
		if h := p.devHook.Load(); h != nil {
			(*h)(DevXPBufEvict, d.id, evicted)
		}
	}

	stall := completion - t.vt - c.MaxQueueLead
	if stall < 0 {
		stall = 0
	}
	return false, stall
}

// drain writes back every dirty XPLine resident in the device's
// XPBuffers so end-of-run accounting includes buffered-but-unwritten
// lines.
func (d *device) drain(p *Pool) {
	for _, dm := range d.dimms {
		dm.mu.Lock()
		for xp, e := range dm.ent {
			if e.dirty {
				p.ctr.cur.mediaWriteBytes.Add(XPLineSize)
				p.ctr.cur.mediaWriteByTag[e.tag].Add(XPLineSize)
				p.ctr.cur.mediaWriteByScope[e.scope].Add(XPLineSize)
			}
			d.setResident(xp, false)
			delete(dm.ent, xp)
		}
		dm.head, dm.tail = nil, nil
		dm.mu.Unlock()
	}
}

// crash rolls the device back to its persistent image: every dirty line
// with a pre-image is restored, the dirty set is cleared. XPBuffer and
// WPQ contents are inside the ADR power-fail domain and survive (they
// are accounting-only in this model; the flushed data already lives in
// words).
func (d *device) crash() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for line, e := range sh.lines {
			if e.pre != nil {
				base := line * wordsPerLine
				for j, w := range e.pre {
					atomic.StoreUint64(&d.words[base+uint64(j)], w)
				}
			}
			d.clearDirtyBit(line)
			delete(sh.lines, line)
		}
		sh.mu.Unlock()
	}
	d.dirtyCount.Store(0)
}

// --- dimm LRU helpers (caller holds dm.mu) ---

func (dm *dimm) pushFront(e *xpEntry) {
	e.prev = nil
	e.next = dm.head
	if dm.head != nil {
		dm.head.prev = e
	}
	dm.head = e
	if dm.tail == nil {
		dm.tail = e
	}
}

func (dm *dimm) unlink(e *xpEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		dm.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		dm.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (dm *dimm) moveToFront(e *xpEntry) {
	if dm.head == e {
		return
	}
	dm.unlink(e)
	dm.pushFront(e)
}

func (dm *dimm) popBack() *xpEntry {
	e := dm.tail
	dm.unlink(e)
	return e
}

// occupy consumes service ns of the DIMM's media bandwidth, returning
// the cumulative busy time. The DIMM timeline is a pure work sum: a
// thread whose own clock lags the sum by more than the queue-lead pays
// the difference as backpressure. Keeping the timeline independent of
// per-thread clocks makes the model stable under any goroutine
// scheduling on the host (per-thread arrival coupling would let one
// late clock drag the shared frontier).
func (dm *dimm) occupy(service int64) int64 {
	return dm.busyUntil.Add(service)
}
