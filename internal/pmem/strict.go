package pmem

import (
	"fmt"
	"runtime"
	"sort"
)

// This file implements StrictPersist, the runtime half of the
// persistence-discipline tooling (cmd/persistlint is the static half).
// Strict mode trades a little per-operation overhead for
// panic-with-context on the misuse classes the static analyzer cannot
// prove absent:
//
//   - a Thread used concurrently from two goroutines (Thread is a
//     single-owner handle; sequential hand-off between goroutines is
//     legal and not flagged);
//   - Load/Store/ReadRange/WriteRange at a word-unaligned address
//     (silently truncated to the containing word otherwise, which is
//     never what the caller meant);
//   - a Thread released — or a pool closed — with flushes still
//     pending their Fence (the clwb was issued but never retired);
//   - Pool.Close with cachelines still dirty in the modeled CPU cache
//     outside a declared-volatile region (data that a crash at that
//     point would lose).
//
// All checks are gated on Config.StrictPersist so the default-mode hot
// paths stay branch-cheap.

// goid returns the current goroutine's id by parsing the first
// runtime.Stack line ("goroutine N [running]:"). Only called on the
// panic path, so its cost never touches a correct program.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// beginOp/endOp bracket every strict-mode Thread operation. inOp is
// held for the duration of each (non-nested) public operation, so a
// second goroutine entering while it is held is a concurrent-use bug
// and panics. The guard is a single CAS — Threads are single-owner, so
// a correct program never contends on it — which keeps strict mode
// cheap enough to leave on in whole test suites. Sequential hand-off
// of a Thread between goroutines is legal and not flagged.
func (t *Thread) beginOp(op string) {
	if t.released {
		panic(fmt.Sprintf("pmem: StrictPersist: %s on a released Thread (socket %d)", op, t.socket))
	}
	if !t.inOp.CompareAndSwap(0, 1) {
		panic(fmt.Sprintf(
			"pmem: StrictPersist: Thread (socket %d) used concurrently: goroutine %d entered %s while another operation was in flight",
			t.socket, goid(), op))
	}
}

func (t *Thread) endOp() {
	t.inOp.Store(0)
}

// checkAligned panics on a word-unaligned address: the Load/Store API
// is 8-byte-word granular and would silently truncate the offset.
func (t *Thread) checkAligned(a Addr, op string) {
	if a.Offset()%WordSize != 0 {
		panic(fmt.Sprintf("pmem: StrictPersist: %s at unaligned address %v (offset %% %d = %d)",
			op, a, WordSize, a.Offset()%WordSize))
	}
}

// Release declares the thread's work complete. In strict mode it
// panics if flushes are still awaiting a Fence, and marks the thread so
// any further use panics. A no-op outside strict mode.
func (t *Thread) Release() {
	if !t.strict {
		return
	}
	t.beginOp("Release")
	defer t.endOp()
	if n := len(t.pending); n > 0 {
		panic(fmt.Sprintf(
			"pmem: StrictPersist: Thread (socket %d) released with %d pending flush(es) awaiting Fence; first: %s",
			t.socket, n, t.pendingDesc(1)))
	}
	t.released = true
}

// pendingDesc renders up to max pending-flush targets for panic text.
func (t *Thread) pendingDesc(max int) string {
	s := ""
	for i, pf := range t.pending {
		if i >= max {
			s += fmt.Sprintf(" (+%d more)", len(t.pending)-max)
			break
		}
		if i > 0 {
			s += ", "
		}
		s += MakeAddr(pf.dev.id, pf.line*CachelineSize).String()
	}
	return s
}

// volRange is one declared-volatile byte region: data there is scratch
// by contract and may be dirty at Pool.Close.
type volRange struct {
	socket   int
	from, to uint64 // byte offsets, [from, to)
}

// DeclareVolatile registers [a, a+n) as scratch space that is allowed
// to be dirty (unflushed) when the pool closes: staging buffers,
// DRAM-substitute regions, and other data recovery never reads.
// Regions should be cacheline-aligned; a partially covered dirty line
// still fails the Close check.
func (p *Pool) DeclareVolatile(a Addr, n int64) {
	if n <= 0 {
		return
	}
	p.strictMu.Lock()
	p.volatiles = append(p.volatiles, volRange{socket: a.Socket(), from: a.Offset(), to: a.Offset() + uint64(n)})
	p.strictMu.Unlock()
}

func (p *Pool) lineVolatile(socket int, line uint64) bool {
	from, to := line*CachelineSize, (line+1)*CachelineSize
	for _, v := range p.volatiles {
		if v.socket == socket && v.from <= from && to <= v.to {
			return true
		}
	}
	return false
}

// Close verifies end-of-life persistence invariants. In strict mode it
// panics if any registered Thread still has flushes awaiting a Fence,
// or if any cacheline outside a declared-volatile region is dirty in
// the modeled CPU cache — both mean data the program believes durable
// would not survive a crash. Outside strict mode Close is a no-op, so
// callers can close unconditionally. Closing twice is harmless.
func (p *Pool) Close() {
	if !p.cfg.StrictPersist {
		return
	}
	p.strictMu.Lock()
	defer p.strictMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, t := range p.strictThreads {
		if t.released {
			continue
		}
		if n := len(t.pending); n > 0 {
			panic(fmt.Sprintf(
				"pmem: StrictPersist: Pool.Close with Thread (socket %d) holding %d pending flush(es) awaiting Fence; first: %s",
				t.socket, n, t.pendingDesc(1)))
		}
	}
	for _, d := range p.devs {
		if addrs := p.dirtyNonVolatile(d, 4); len(addrs) > 0 {
			panic(fmt.Sprintf(
				"pmem: StrictPersist: Pool.Close with %d+ dirty cacheline(s) outside declared-volatile regions on socket %d; e.g. %v",
				len(addrs), d.id, addrs))
		}
	}
}

// dirtyNonVolatile collects up to max dirty-line addresses on d that no
// declared-volatile region covers, sorted for stable panic text.
func (p *Pool) dirtyNonVolatile(d *device, max int) []Addr {
	var lines []uint64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for line := range sh.lines {
			if !p.lineVolatile(d.id, line) {
				lines = append(lines, line)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	if len(lines) > max {
		lines = lines[:max]
	}
	addrs := make([]Addr, len(lines))
	for i, line := range lines {
		addrs[i] = MakeAddr(d.id, line*CachelineSize)
	}
	return addrs
}
