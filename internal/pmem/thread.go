package pmem

import "sync/atomic"

// pendingFlush is one clwb awaiting its sfence: the line and its content
// snapshot at flush time (what becomes persistent when the fence
// retires).
type pendingFlush struct {
	dev      *device
	line     uint64
	snapshot []uint64
}

// readCacheSize is the per-thread window of recently loaded XPLines
// treated as CPU-cache hits (so re-reading a just-read 256 B leaf, or
// the hot upper levels of a PM-resident inner-node tree, does not
// re-charge PM latency or re-count media reads).
const readCacheSize = 32

// Thread is a per-goroutine access handle: it owns a virtual clock, a
// NUMA binding, the attribution tag, and the set of flushes awaiting a
// fence. Not safe for concurrent use.
type Thread struct {
	pool    *Pool
	socket  int
	tag     Tag
	scope   Scope
	vt      int64
	pending []pendingFlush

	// flushNS/fenceNS accumulate the virtual time spent inside
	// flush()/fence() (issue cost, XPBuffer stalls, remote-access
	// penalties charged while flushing). The span-attribution layer
	// reads deltas of these to split an operation's latency into its
	// flush and fence segments without hooking every Persist call.
	flushNS int64
	fenceNS int64

	readCache [readCacheSize]uint64 // device-qualified XPLine ids, 0 = empty
	readPos   int

	// Strict-mode state (see strict.go). inOp is 1 while an operation
	// is in flight; a second entry while it is held means two
	// goroutines are using the handle concurrently.
	strict   bool
	released bool
	inOp     atomic.Int32
}

// Socket returns the thread's local NUMA node.
func (t *Thread) Socket() int { return t.socket }

// Now returns the thread's virtual time in nanoseconds.
func (t *Thread) Now() int64 { return t.vt }

// Advance charges ns nanoseconds of computation (DRAM work, etc.) to the
// thread's virtual clock.
func (t *Thread) Advance(ns int64) { t.vt += ns }

// CostDRAM returns the configured per-word DRAM access cost, so
// DRAM-resident structures can charge traversal time consistently.
func (t *Thread) CostDRAM() int64 { return t.pool.cfg.Cost.DRAMAccess }

// Rewind moves the clock back to v (a value previously returned by
// Now). Retry loops use it so a failed optimistic attempt costs one
// modeled conflict penalty instead of accumulating re-traversal time:
// on the simulation host a descheduled lock holder can make peers spin
// for a whole scheduling quantum, which has no counterpart on the
// modeled machine.
func (t *Thread) Rewind(v int64) {
	if v < t.vt {
		t.vt = v
	}
}

// SetTag sets the media-write attribution tag, returning the previous
// one so callers can restore it.
func (t *Thread) SetTag(tag Tag) Tag {
	old := t.tag
	t.tag = tag
	return old
}

// PushScope sets the component-attribution scope (see Scope), returning
// the previous one. Callers restore it with PopScope, typically:
//
//	prev := t.PushScope(pmem.ScopeWAL)
//	defer t.PopScope(prev)
//
// Scope is thread-local state like the tag: it travels with the Thread,
// not the goroutine, so a handle handed to a worker keeps attributing
// by whatever the code currently running on it pushed.
func (t *Thread) PushScope(s Scope) Scope {
	old := t.scope
	t.scope = s
	return old
}

// PopScope restores a scope previously returned by PushScope.
func (t *Thread) PopScope(s Scope) { t.scope = s }

// Scope returns the thread's current attribution scope.
func (t *Thread) Scope() Scope { return t.scope }

// SyncClock advances the thread's clock to at least v. Used when worker
// threads rendezvous (e.g. a GC epoch flip) so virtual time stays
// coherent across threads.
func (t *Thread) SyncClock(v int64) {
	if v > t.vt {
		t.vt = v
	}
}

func (t *Thread) dev(a Addr) *device {
	d := t.pool.devs[a.Socket()]
	if a.Socket() != t.socket {
		t.pool.ctr.cur.remoteAccesses.Add(1)
		t.vt += t.pool.cfg.Cost.RemoteAccess
	}
	return d
}

// xpID qualifies an XPLine index with its device for the thread-local
// read cache (+1 so the zero value means "empty").
func xpID(d *device, xp uint64) uint64 {
	return uint64(d.id)<<56 | (xp + 1)
}

func (t *Thread) readCached(id uint64) bool {
	for _, v := range t.readCache {
		if v == id {
			return true
		}
	}
	return false
}

func (t *Thread) noteRead(id uint64) {
	t.readCache[t.readPos] = id
	t.readPos = (t.readPos + 1) % readCacheSize
}

// chargeLoad applies the cost model for loading one cacheline.
func (t *Thread) chargeLoad(d *device, line uint64) {
	c := &t.pool.cfg.Cost
	xp := line / linesPerXPLine
	id := xpID(d, xp)
	if t.readCached(id) {
		t.vt += c.DRAMAccess
		return
	}
	if d.lineDirty(line) { // dirty in CPU cache: cache hit
		t.vt += c.DRAMAccess
		return
	}
	t.noteRead(id)
	hit, stall := d.xpbufAccess(t.pool, t, line, false)
	if hit {
		t.vt += c.PMReadHit
	} else {
		t.vt += c.PMReadMiss
	}
	t.vt += stall
}

// Load reads the 8-byte word at a (must be word-aligned).
func (t *Thread) Load(a Addr) uint64 {
	if t.strict {
		t.beginOp("Load")
		defer t.endOp()
		t.checkAligned(a, "Load")
	}
	d := t.dev(a)
	idx := a.Offset() / WordSize
	t.chargeLoad(d, idx/wordsPerLine)
	return atomic.LoadUint64(&d.words[idx])
}

// Store writes the 8-byte word at a. The store is volatile under ADR
// until flushed and fenced; under eADR it is immediately persistent.
func (t *Thread) Store(a Addr, v uint64) {
	if t.strict {
		t.beginOp("Store")
		defer t.endOp()
		t.checkAligned(a, "Store")
	}
	d := t.dev(a)
	idx := a.Offset() / WordSize
	line := idx / wordsPerLine
	trackPre := t.pool.cfg.Mode == ADR && !t.pool.cfg.DisableCrashTracking
	if d.markDirty(line, trackPre) {
		d.evictOne(t.pool, t)
	}
	t.vt += t.pool.cfg.Cost.DRAMAccess
	atomic.StoreUint64(&d.words[idx], v)
}

// ReadRange loads len(dst) consecutive words starting at a, charging one
// cacheline load per line covered.
func (t *Thread) ReadRange(a Addr, dst []uint64) {
	if t.strict {
		t.beginOp("ReadRange")
		defer t.endOp()
		t.checkAligned(a, "ReadRange")
	}
	d := t.dev(a)
	idx := a.Offset() / WordSize
	first := idx / wordsPerLine
	last := (idx + uint64(len(dst)) - 1) / wordsPerLine
	for line := first; line <= last; line++ {
		t.chargeLoad(d, line)
	}
	for i := range dst {
		dst[i] = atomic.LoadUint64(&d.words[idx+uint64(i)])
	}
}

// WriteRange stores len(src) consecutive words starting at a.
func (t *Thread) WriteRange(a Addr, src []uint64) {
	if t.strict {
		t.beginOp("WriteRange")
		defer t.endOp()
		t.checkAligned(a, "WriteRange")
	}
	d := t.dev(a)
	idx := a.Offset() / WordSize
	trackPre := t.pool.cfg.Mode == ADR && !t.pool.cfg.DisableCrashTracking
	first := idx / wordsPerLine
	last := (idx + uint64(len(src)) - 1) / wordsPerLine
	evictions := 0
	for line := first; line <= last; line++ {
		if d.markDirty(line, trackPre) {
			evictions++
		}
	}
	t.vt += t.pool.cfg.Cost.DRAMAccess * int64(last-first+1)
	for i := range src {
		atomic.StoreUint64(&d.words[idx+uint64(i)], src[i])
	}
	for ; evictions > 0; evictions-- {
		d.evictOne(t.pool, t)
	}
}

// Flush issues clwb for every cacheline covering [a, a+n). Clean lines
// are skipped (clwb of an unmodified line writes nothing back). The
// write-back becomes durable at the next Fence.
func (t *Thread) Flush(a Addr, n int) {
	if t.strict {
		t.beginOp("Flush")
		defer t.endOp()
	}
	t.flush(a, n)
}

func (t *Thread) flush(a Addr, n int) {
	v0 := t.vt
	t.flushLines(a, n)
	t.flushNS += t.vt - v0
}

func (t *Thread) flushLines(a Addr, n int) {
	// Fault triggers run (and FlushCalls counts) before the eADR
	// early-return so crash harnesses see identical fault sites in both
	// modes; a triggered failure must never persist the line being
	// flushed.
	t.checkFault(a)
	if t.pool.cfg.Mode == EADR {
		return // no flushing needed; stores are already in the domain
	}
	d := t.dev(a)
	c := &t.pool.cfg.Cost
	idx := a.Offset() / WordSize
	first := idx / wordsPerLine
	last := (idx + uint64(n+WordSize-1)/WordSize - 1) / wordsPerLine
	for line := first; line <= last; line++ {
		t.vt += c.FlushIssue
		if !d.lineDirty(line) {
			continue
		}
		snap := d.readLine(line)
		if _, stall := d.xpbufAccess(t.pool, t, line, true); stall > 0 {
			t.vt += stall
		}
		t.pending = append(t.pending, pendingFlush{dev: d, line: line, snapshot: snap})
	}
}

// Fence issues sfence: every previously flushed line becomes durable
// with the content it had at flush time.
func (t *Thread) Fence() {
	if t.strict {
		t.beginOp("Fence")
		defer t.endOp()
	}
	t.fence()
}

func (t *Thread) fence() {
	t.vt += t.pool.cfg.Cost.FenceIssue
	t.fenceNS += t.pool.cfg.Cost.FenceIssue
	if len(t.pending) == 0 {
		return
	}
	for _, pf := range t.pending {
		pf.dev.commitFlush(pf.line, pf.snapshot)
	}
	t.pending = t.pending[:0]
}

// FlushNS returns the cumulative virtual nanoseconds this thread has
// spent issuing flushes (clwb cost plus any XPBuffer stalls absorbed
// at flush time). Monotone; consumers take deltas.
func (t *Thread) FlushNS() int64 { return t.flushNS }

// FenceNS returns the cumulative virtual nanoseconds spent on ordering
// fences. Monotone; consumers take deltas.
func (t *Thread) FenceNS() int64 { return t.fenceNS }

// Persist is the common Flush+Fence sequence.
func (t *Thread) Persist(a Addr, n int) {
	if t.strict {
		t.beginOp("Persist")
		defer t.endOp()
	}
	t.flush(a, n)
	t.fence()
}

// commitFlush makes snapshot the persistent image of line. If the line
// still matches the snapshot it becomes clean; otherwise (re-dirtied
// after the clwb) the snapshot replaces the pre-image.
func (d *device) commitFlush(line uint64, snapshot []uint64) {
	sh := d.shardFor(line)
	sh.mu.Lock()
	e, ok := sh.lines[line]
	if !ok {
		sh.mu.Unlock()
		return // already committed (fence after eviction or double flush)
	}
	base := line * wordsPerLine
	same := true
	for i, w := range snapshot {
		if atomic.LoadUint64(&d.words[base+uint64(i)]) != w {
			same = false
			break
		}
	}
	if same {
		delete(sh.lines, line)
		d.clearDirtyBit(line)
		sh.mu.Unlock()
		d.dirtyCount.Add(-1)
		return
	}
	if e.pre != nil {
		copy(e.pre, snapshot)
	}
	sh.mu.Unlock()
}
