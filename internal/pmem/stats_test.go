package pmem

import (
	"strings"
	"sync"
	"testing"
)

func TestStatsHelpers(t *testing.T) {
	s := Stats{
		MediaWriteBytes:  4096,
		XPBufWriteBytes:  2048,
		UserWriteBytes:   1024,
		XPBufWriteHits:   30,
		XPBufWriteMisses: 10,
	}
	if got := s.AmplificationFactor(); got != 4.0 {
		t.Fatalf("AmplificationFactor = %v, want 4", got)
	}
	if got, want := s.AmplificationFactor(), s.XBIAmplification(); got != want {
		t.Fatalf("AmplificationFactor %v != XBIAmplification %v", got, want)
	}
	if got := s.CLIAmplification(); got != 2.0 {
		t.Fatalf("CLIAmplification = %v, want 2", got)
	}
	if got := s.WriteHitRate(); got != 0.75 {
		t.Fatalf("WriteHitRate = %v, want 0.75", got)
	}
	var zero Stats
	if zero.AmplificationFactor() != 0 || zero.CLIAmplification() != 0 || zero.WriteHitRate() != 0 {
		t.Fatal("zero Stats must not divide by zero")
	}
	str := s.String()
	for _, want := range []string{"4.00KiB", "2.00KiB", "1.00KiB", "WA 4.00", "CLI 2.00", "75.0%"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q, missing %q", str, want)
		}
	}
}

func TestStatsScopeAndTagMaps(t *testing.T) {
	var s Stats
	s.MediaWriteByScope[ScopeWAL] = 512
	s.MediaWriteByScope[ScopeLeafBuf] = 256
	s.MediaWriteByTag[TagWAL] = 512
	sm := s.ScopeMediaBytes()
	if len(sm) != 2 || sm["wal"] != 512 || sm["leafbuf"] != 256 {
		t.Fatalf("ScopeMediaBytes = %v", sm)
	}
	tm := s.TagMediaBytes()
	if len(tm) != 1 || tm["wal"] != 512 {
		t.Fatalf("TagMediaBytes = %v", tm)
	}
}

func TestSubClamped(t *testing.T) {
	a := Stats{MediaWriteBytes: 100, UserWriteBytes: 10}
	b := Stats{MediaWriteBytes: 300, UserWriteBytes: 4}
	d := a.Sub(b)
	if d.MediaWriteBytes != 0 {
		t.Fatalf("clamped subtraction: got %d, want 0", d.MediaWriteBytes)
	}
	if d.UserWriteBytes != 6 {
		t.Fatalf("normal subtraction: got %d, want 6", d.UserWriteBytes)
	}
}

func TestScopeNames(t *testing.T) {
	names := ScopeNames()
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || n == "unknown" {
			t.Fatalf("scope %d has no display name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate scope name %q", n)
		}
		seen[n] = true
	}
	if names[ScopeNone] != "data" || names[ScopeWAL] != "wal" {
		t.Fatalf("unexpected names: %v", names)
	}
}

// TestScopeAttributionSums checks the acceptance invariant: at
// quiescence (after DrainXPBuffers), the per-scope media-byte buckets
// sum exactly to MediaWriteBytes, and likewise for the XPBuffer bytes.
func TestScopeAttributionSums(t *testing.T) {
	p := testPool(t, nil)
	th := p.NewThread(0)
	scopes := []Scope{ScopeNone, ScopeLeafBuf, ScopeWAL, ScopeGC, ScopeMeta}
	for i := 0; i < 2000; i++ {
		prev := th.PushScope(scopes[i%len(scopes)])
		a := MakeAddr(0, uint64(i)*XPLineSize%(1<<19))
		th.Store(a, uint64(i))
		th.Persist(a, WordSize)
		th.PopScope(prev)
	}
	p.DrainXPBuffers()
	s := p.Stats()
	var mediaSum, xpbufSum uint64
	for i := range s.MediaWriteByScope {
		mediaSum += s.MediaWriteByScope[i]
		xpbufSum += s.XPBufWriteByScope[i]
	}
	if s.MediaWriteBytes == 0 {
		t.Fatal("workload produced no media writes")
	}
	if mediaSum != s.MediaWriteBytes {
		t.Fatalf("scope media sum %d != MediaWriteBytes %d", mediaSum, s.MediaWriteBytes)
	}
	if xpbufSum != s.XPBufWriteBytes {
		t.Fatalf("scope xpbuf sum %d != XPBufWriteBytes %d", xpbufSum, s.XPBufWriteBytes)
	}
	// At least the scopes that wrote whole XPLines must show up.
	if s.MediaWriteByScope[ScopeWAL] == 0 || s.MediaWriteByScope[ScopeLeafBuf] == 0 {
		t.Fatalf("expected wal and leafbuf media bytes, got %v", s.ScopeMediaBytes())
	}
}

// TestResetStatsConcurrent hammers ResetStats and Stats against live
// writers. Run under -race this validates the documented contract: no
// torn counters, no underflow in any snapshot, and the exact per-scope
// sum invariant restored at quiescence. (The pre-fix implementation
// zeroed counters one by one, so a concurrent snapshot could observe a
// half-reset set and Sub could underflow to ~2^64.)
func TestResetStatsConcurrent(t *testing.T) {
	p := testPool(t, nil)
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := p.NewThread(0)
			prev := th.PushScope(Scope(w % int(NumScopes)))
			defer th.PopScope(prev)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := MakeAddr(0, uint64(w)<<16|uint64(i*XPLineSize)%(1<<15))
				th.Store(a, uint64(i))
				th.Persist(a, WordSize)
				p.AddUserBytes(WordSize)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := p.Stats()
			// Underflow would make deltas astronomically large.
			if s.MediaWriteBytes > 1<<40 || s.XPBufWriteBytes > 1<<40 {
				t.Errorf("snapshot underflow: %+v", s)
				return
			}
			if i%5 == 0 {
				p.ResetStats()
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()

	// Quiescent now: rebaseline, produce a known workload, and check
	// the exact invariant again.
	p.DrainXPBuffers()
	p.ResetStats()
	th := p.NewThread(0)
	prev := th.PushScope(ScopeGC)
	for i := 0; i < 64; i++ {
		a := MakeAddr(0, 1<<18|uint64(i*XPLineSize))
		th.Store(a, uint64(i))
		th.Persist(a, WordSize)
	}
	th.PopScope(prev)
	p.DrainXPBuffers()
	s := p.Stats()
	var sum uint64
	for _, v := range s.MediaWriteByScope {
		sum += v
	}
	if sum != s.MediaWriteBytes || s.MediaWriteBytes == 0 {
		t.Fatalf("post-reset scope sum %d != MediaWriteBytes %d", sum, s.MediaWriteBytes)
	}
	if s.MediaWriteByScope[ScopeGC] != s.MediaWriteBytes {
		t.Fatalf("all post-reset writes were gc-scoped, got %v", s.ScopeMediaBytes())
	}
}
