package pmem

import "testing"

// These tests pin the commitFlush corner cases the strict checker (and
// the crash model generally) relies on: a fence may retire a flush
// whose line was already written back, flushed twice, or re-dirtied
// after the clwb captured its snapshot.

func edgePool(t *testing.T) *Pool {
	t.Helper()
	return NewPool(Config{Sockets: 1, DeviceBytes: 1 << 20, StrictPersist: true})
}

// Double flush of the same dirty line: the first commitFlush at Fence
// cleans the line; the second finds no entry and must early-return
// without double-decrementing the dirty count.
func TestDoubleFlushSameLine(t *testing.T) {
	p := edgePool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 7)
	th.Flush(a, 8)
	//persistlint:ignore PL011 the redundant flush is the behavior under test (dirty-count bookkeeping)
	th.Flush(a, 8) // same line, still dirty: second pending entry
	th.Fence()
	d := p.devs[0]
	if d.lineDirty(a.Offset() / CachelineSize) {
		t.Fatal("line still dirty after double flush + fence")
	}
	if n := d.dirtyCount.Load(); n != 0 {
		t.Fatalf("dirtyCount = %d after double flush + fence, want 0", n)
	}
	p.Crash()
	th2 := p.NewThread(0)
	if v := th2.Load(a); v != 7 {
		t.Fatalf("fenced value lost in crash: got %d, want 7", v)
	}
	th2.Release()
	p.Close()
}

// Fence after the flushed line was evicted from the modeled CPU cache:
// the eviction already wrote the line back and removed its entry, so
// commitFlush must treat the pending flush as already committed.
func TestFenceAfterEviction(t *testing.T) {
	p := edgePool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 9)
	th.Flush(a, 8)
	// Force the eviction a full cache would trigger. Only one line is
	// dirty, so this deterministically evicts the flushed line.
	p.devs[0].evictOne(p, th)
	th.Fence() // pending flush targets a line with no entry left
	d := p.devs[0]
	if n := d.dirtyCount.Load(); n != 0 {
		t.Fatalf("dirtyCount = %d after fence-after-eviction, want 0", n)
	}
	p.Crash()
	th2 := p.NewThread(0)
	if v := th2.Load(a); v != 9 {
		t.Fatalf("evicted (written-back) value lost in crash: got %d, want 9", v)
	}
	th2.Release()
	p.Close()
}

// A line re-dirtied between clwb and sfence: the fence makes the
// *snapshot* durable, not the newer content, so commitFlush replaces
// the pre-image with the snapshot and leaves the line dirty. A crash
// then rolls back to the flushed value.
func TestRedirtiedAfterClwb(t *testing.T) {
	p := edgePool(t)
	th := p.NewThread(0)
	a := MakeAddr(0, 4096)
	th.Store(a, 1)
	th.Flush(a, 8) // snapshot captures value 1
	//persistlint:ignore PL001 deliberate re-dirty between clwb and sfence; the crash rolls it back
	th.Store(a, 2) // re-dirty the same line before the fence
	th.Fence()
	d := p.devs[0]
	line := a.Offset() / CachelineSize
	if !d.lineDirty(line) {
		t.Fatal("re-dirtied line became clean at fence; snapshot mismatch was ignored")
	}
	if v := th.Load(a); v != 2 {
		t.Fatalf("visible value = %d, want 2", v)
	}
	p.Crash()
	th2 := p.NewThread(0)
	if v := th2.Load(a); v != 1 {
		t.Fatalf("crash image = %d, want the flushed snapshot value 1", v)
	}
	th2.Release()
	p.Close()
}
