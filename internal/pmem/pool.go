package pmem

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Pool is a set of PM devices, one per socket, sharing hardware counters
// and a cost model. It is safe for concurrent use through per-goroutine
// Thread handles.
type Pool struct {
	cfg  Config
	devs []*device
	ctr  counters

	// devHook is the installed device tracer (SetDeviceTracer), nil
	// when tracing is off. Kept as an atomic pointer so the evict paths
	// pay one pointer load when uninstalled.
	devHook atomic.Pointer[DeviceTracer]

	auxMu sync.Mutex
	aux   map[string]any

	failAfter atomic.Int64
	faultState

	// Strict-mode bookkeeping (see strict.go): live threads to audit at
	// Close, declared-volatile regions exempt from the dirty-line check.
	strictMu      sync.Mutex
	strictThreads []*Thread
	volatiles     []volRange
	closed        bool
}

// Aux returns the pool-scoped singleton registered under key, creating
// it with make on first use. The PM allocator uses this so that every
// component allocating on one pool (an index, its logs, a benchmark's
// blob arena) shares a single bump pointer and free list — two
// independent allocators on one pool would hand out overlapping
// regions.
func (p *Pool) Aux(key string, make func() any) any {
	p.auxMu.Lock()
	defer p.auxMu.Unlock()
	if p.aux == nil {
		p.aux = map[string]any{}
	}
	if v, ok := p.aux[key]; ok {
		return v
	}
	v := make()
	p.aux[key] = v
	return v
}

// NewPool builds a pool from cfg (zero fields take defaults).
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, devs: make([]*device, cfg.Sockets)}
	for i := range p.devs {
		p.devs[i] = newDevice(i, &cfg)
	}
	return p
}

// Config returns the (defaulted) configuration the pool runs with.
func (p *Pool) Config() Config { return p.cfg }

// Sockets returns the number of NUMA nodes.
func (p *Pool) Sockets() int { return len(p.devs) }

// DeviceBytes returns the capacity of each socket's device.
func (p *Pool) DeviceBytes() int64 { return p.cfg.DeviceBytes }

// ValidRange reports whether [a, a+n) lies entirely inside one socket's
// device. Recovery code applies it to every address read back from
// persistent (possibly corrupt) state before dereferencing — an
// out-of-range access would otherwise panic rather than surface as a
// typed corruption error.
func (p *Pool) ValidRange(a Addr, n int64) bool {
	if a.IsNil() || n < 0 {
		return false
	}
	if a.Socket() >= len(p.devs) { // Socket() is non-negative by construction
		return false
	}
	off := a.Offset()
	return off < uint64(p.cfg.DeviceBytes) && uint64(n) <= uint64(p.cfg.DeviceBytes)-off
}

// Stats snapshots the hardware counters (since pool creation or the
// last ResetStats). See ResetStats for the concurrency contract.
func (p *Pool) Stats() Stats { return p.ctr.snapshot() }

// ResetStats rebaselines the hardware counters (e.g. after a warm-up
// phase): subsequent Stats calls report only traffic accumulated after
// the reset, including the per-DIMM XPBuffer tallies (hits, misses,
// per-scope and per-tag media attribution), which share the same
// counter set and baseline.
//
// Race contract: the live counters are monotone and never zeroed;
// ResetStats atomically captures them as a new baseline that Stats
// subtracts. A Stats call concurrent with ResetStats observes each
// counter against either the old or the new baseline — individual
// values never tear or underflow (deltas clamp at zero) — but
// cross-counter identities (e.g. per-scope buckets summing exactly to
// MediaWriteBytes) are only guaranteed when no writers or resets are
// in flight, i.e. at quiescence after DrainXPBuffers.
func (p *Pool) ResetStats() { p.ctr.reset() }

// AddUserBytes declares n bytes of application payload written, the
// denominator of the amplification metrics.
func (p *Pool) AddUserBytes(n uint64) { p.ctr.cur.userWriteBytes.Add(n) }

// Observe is the stable observability read surface: the current
// counter snapshot with its derived metrics (String,
// AmplificationFactor, ScopeMediaBytes, ...). internal/obs wraps it
// into the flattened JSON form served over HTTP and rendered by
// cclstat; the device model cannot import that package, so the raw
// snapshot is the hand-off point.
func (p *Pool) Observe() Stats { return p.Stats() }

// DeviceEvent identifies a device-level occurrence reported through the
// tracer hook installed with SetDeviceTracer.
type DeviceEvent uint8

const (
	// DevCacheEvict: the modeled CPU cache wrote back a dirty line the
	// program never flushed (capacity eviction).
	DevCacheEvict DeviceEvent = iota
	// DevXPBufEvict: an XPBuffer evicted a dirty XPLine to media (the
	// write amplification event the paper is about).
	DevXPBufEvict
	// DevCrash: Pool.Crash rolled volatile state back to the persistent
	// image. The line argument is 0.
	DevCrash
)

// DeviceTracer receives device-level events: the event kind, the socket
// it occurred on, and the XPLine index involved. Callbacks run on the
// accessing thread's goroutine, outside internal locks, but still on
// the hot path: implementations must be fast, must not block, and must
// not call back into the pool.
type DeviceTracer func(ev DeviceEvent, socket int, xpline uint64)

// SetDeviceTracer installs f as the device-event hook (nil uninstalls).
// The device model cannot depend on the observability layer, so this is
// the seam internal/obs plugs its ring-buffer tracer into.
func (p *Pool) SetDeviceTracer(f DeviceTracer) {
	if f == nil {
		p.devHook.Store(nil)
		return
	}
	p.devHook.Store(&f)
}

// PowerFailure is the panic value thrown when an armed fault trigger
// fires (FailAfterFlushes). Test harnesses recover it, call Crash, and
// exercise recovery from a mid-operation failure point.
type PowerFailure struct{}

func (PowerFailure) Error() string { return "pmem: simulated power failure" }

// FailAfterFlushes arms a fault: the n-th subsequent Flush panics with
// PowerFailure, modeling power loss at an arbitrary instruction
// boundary inside an operation. n ≤ 0 disarms. The trigger fires once;
// for the sticky every-thread-dies semantics a concurrent harness
// needs, use FailWhen. Flush calls count in eADR mode too (they move no
// data there, but crash sweeps need the same fault sites in both
// modes).
func (p *Pool) FailAfterFlushes(n int64) {
	p.failAfter.Store(n)
}

func (p *Pool) checkPowerFailure() {
	if p.failAfter.Load() <= 0 {
		return
	}
	if p.failAfter.Add(-1) == 0 {
		panic(PowerFailure{})
	}
}

// Crash simulates a power failure under the configured mode: in ADR,
// all stores not yet flushed+fenced are rolled back; in eADR everything
// survives. Existing Threads must be discarded afterwards (their pending
// flush sets are meaningless post-restart).
func (p *Pool) Crash() {
	if p.cfg.Mode == ADR && p.cfg.DisableCrashTracking {
		panic("pmem: Crash called with DisableCrashTracking set")
	}
	for _, d := range p.devs {
		d.crash()
	}
	if h := p.devHook.Load(); h != nil {
		(*h)(DevCrash, 0, 0)
	}
	if p.cfg.StrictPersist {
		// Threads do not survive a power failure: their pending flush
		// sets are meaningless post-restart. Mark them released so any
		// further use (or a later Close auditing them) panics loudly
		// instead of reporting phantom pending flushes.
		p.strictMu.Lock()
		for _, t := range p.strictThreads {
			t.pending = nil
			t.released = true
		}
		p.strictThreads = nil
		p.strictMu.Unlock()
	}
}

// DrainXPBuffers forces every buffered XPLine to media so end-of-run
// media counters are complete. Content is unaffected.
func (p *Pool) DrainXPBuffers() {
	for _, d := range p.devs {
		d.drain(p)
	}
}

// NewThread creates an access handle bound to a socket (its "local"
// NUMA node). A Thread must be used by one goroutine at a time.
func (p *Pool) NewThread(socket int) *Thread {
	if socket < 0 || socket >= len(p.devs) {
		panic(fmt.Sprintf("pmem: socket %d out of range", socket))
	}
	t := &Thread{pool: p, socket: socket, strict: p.cfg.StrictPersist}
	if t.strict {
		p.strictMu.Lock()
		p.strictThreads = append(p.strictThreads, t)
		p.strictMu.Unlock()
	}
	return t
}

// persistentWord returns the crash-consistent value of word idx on
// device d: the pre-image if the containing line is dirty, else the
// current value.
func (d *device) persistentWord(idx uint64) uint64 {
	line := idx / wordsPerLine
	if d.lineDirty(line) {
		sh := d.shardFor(line)
		sh.mu.Lock()
		e, ok := sh.lines[line]
		sh.mu.Unlock()
		if ok && e.pre != nil {
			return e.pre[idx%wordsPerLine]
		}
	}
	return atomic.LoadUint64(&d.words[idx])
}

// SavePersistent serializes the persistent (crash-consistent) image of
// one socket's device. Use with LoadPersistent to carry a pool across
// process restarts, standing in for a DAX-mapped pool file.
func (p *Pool) SavePersistent(socket int, w io.Writer) error {
	d := p.devs[socket]
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(d.words)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.cfg.Mode))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pmem: save header: %w", err)
	}
	buf := make([]byte, 8<<10)
	for i := 0; i < len(d.words); {
		n := 0
		for ; n < len(buf) && i < len(d.words); n += 8 {
			binary.LittleEndian.PutUint64(buf[n:], d.persistentWord(uint64(i)))
			i++
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("pmem: save body: %w", err)
		}
	}
	return nil
}

// LoadPersistent restores a device image saved by SavePersistent into
// socket's device. The pool must have been created with at least the
// saved capacity.
func (p *Pool) LoadPersistent(socket int, r io.Reader) error {
	d := p.devs[socket]
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("pmem: load header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	if n > uint64(len(d.words)) {
		return fmt.Errorf("pmem: image has %d words, device holds %d", n, len(d.words))
	}
	buf := make([]byte, 8<<10)
	for i := uint64(0); i < n; {
		want := len(buf)
		if rem := int(n-i) * 8; rem < want {
			want = rem
		}
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return fmt.Errorf("pmem: load body: %w", err)
		}
		for off := 0; off < want; off += 8 {
			atomic.StoreUint64(&d.words[i], binary.LittleEndian.Uint64(buf[off:]))
			i++
		}
	}
	return nil
}
