package pmalloc

import (
	"sync"
	"testing"

	"cclbtree/internal/pmem"
)

func newTestAlloc(t *testing.T, deviceBytes int64) *Allocator {
	t.Helper()
	pool := pmem.NewPool(pmem.Config{Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: deviceBytes})
	return New(pool)
}

func TestAllocAligned(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	addr, err := a.Alloc(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Offset()%pmem.XPLineSize != 0 {
		t.Fatalf("256 B block not XPLine aligned: %v", addr)
	}
	small, err := a.Alloc(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if small.Offset()%pmem.CachelineSize != 0 {
		t.Fatalf("small block not cacheline aligned: %v", small)
	}
}

func TestNeverReturnsNil(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	for i := 0; i < 100; i++ {
		addr, err := a.Alloc(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		if addr.IsNil() {
			t.Fatal("allocator returned the nil address")
		}
	}
}

func TestFreeReuse(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	addr, _ := a.Alloc(1, 256)
	a.Free(addr, 256)
	addr2, _ := a.Alloc(1, 256)
	if addr2 != addr {
		t.Fatalf("freed block not reused: %v then %v", addr, addr2)
	}
}

func TestDistinctAddresses(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	seen := map[pmem.Addr]bool{}
	for i := 0; i < 500; i++ {
		addr, err := a.Alloc(0, 256)
		if err != nil {
			t.Fatal(err)
		}
		if seen[addr] {
			t.Fatalf("address %v handed out twice", addr)
		}
		seen[addr] = true
	}
}

func TestInUseAccounting(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	addr, _ := a.Alloc(0, 256)
	if got := a.InUseBytes(0); got != 256 {
		t.Fatalf("InUseBytes = %d", got)
	}
	_, _ = a.Alloc(1, 256)
	if got := a.TotalInUseBytes(); got != 512 {
		t.Fatalf("TotalInUseBytes = %d", got)
	}
	a.Free(addr, 256)
	if got := a.InUseBytes(0); got != 0 {
		t.Fatalf("after free InUseBytes = %d", got)
	}
	if a.HighWaterBytes(0) < 256 {
		t.Fatal("high water did not record peak")
	}
}

func TestRoundSize(t *testing.T) {
	cases := map[int]int{1: 64, 24: 64, 64: 64, 65: 128, 255: 256, 256: 256, 257: 512, 4 << 20: 4 << 20}
	for in, want := range cases {
		if got := roundSize(in); got != want {
			t.Fatalf("roundSize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestExhaustion(t *testing.T) {
	a := newTestAlloc(t, 64<<10)
	var last error
	n := 0
	for i := 0; i < 10000; i++ {
		_, err := a.Alloc(0, 4096)
		if err != nil {
			last = err
			break
		}
		n++
	}
	if last == nil {
		t.Fatal("allocator never reported exhaustion")
	}
	if n == 0 {
		t.Fatal("no allocations succeeded before exhaustion")
	}
	// Capacity freed up again is allocatable.
	a.Free(pmem.MakeAddr(0, 4096), 4096)
	if _, err := a.Alloc(0, 4096); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestAllocBatch(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	dst := make([]pmem.Addr, 16)
	if err := a.AllocBatch(0, 256, dst); err != nil {
		t.Fatal(err)
	}
	seen := map[pmem.Addr]bool{}
	for _, addr := range dst {
		if addr.IsNil() || seen[addr] {
			t.Fatalf("bad batch address %v", addr)
		}
		if addr.Offset()%pmem.XPLineSize != 0 {
			t.Fatalf("unaligned batch address %v", addr)
		}
		seen[addr] = true
	}
	if got := a.InUseBytes(0); got != 16*256 {
		t.Fatalf("InUseBytes after batch = %d", got)
	}
}

func TestAllocBatchExhaustionRollsBack(t *testing.T) {
	a := newTestAlloc(t, 64<<10)
	dst := make([]pmem.Addr, 4096) // far more than the device holds
	if err := a.AllocBatch(0, 256, dst); err == nil {
		t.Fatal("expected exhaustion")
	}
	if got := a.InUseBytes(0); got != 0 {
		t.Fatalf("failed batch leaked %d bytes", got)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	a := newTestAlloc(t, 8<<20)
	var mu sync.Mutex
	seen := map[pmem.Addr]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]pmem.Addr, 0, 200)
			for i := 0; i < 200; i++ {
				addr, err := a.Alloc(w%2, 256)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, addr)
			}
			mu.Lock()
			for _, addr := range local {
				if seen[addr] {
					t.Errorf("duplicate address %v", addr)
				}
				seen[addr] = true
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
}

func TestSocketLocality(t *testing.T) {
	a := newTestAlloc(t, 1<<20)
	for s := 0; s < 2; s++ {
		addr, err := a.Alloc(s, 256)
		if err != nil {
			t.Fatal(err)
		}
		if addr.Socket() != s {
			t.Fatalf("asked for socket %d, got %v", s, addr)
		}
	}
}
