// Package pmalloc is a chunk-based persistent-memory allocator in the
// style the paper adopts from uTree (§4.2): threads carve small objects
// (256 B leaf nodes) out of larger chunks so that allocation is cheap
// and a crash can leak at most the unpublished tail of a chunk, which
// recovery reclaims by rebuilding reachability from the leaf linked
// list.
//
// Allocator metadata lives in DRAM: like the modeled indexes, recovery
// never trusts volatile allocator state — it re-derives liveness from
// the persistent structures. Exact-size free lists make Free/Alloc pairs
// recycle the same PM addresses, which both bounds PM consumption and
// preserves XPLine locality of reused log chunks (§3.4).
package pmalloc

import (
	"fmt"
	"sync"

	"cclbtree/internal/pmem"
)

// reserveBytes keeps the low addresses of every arena unallocated so
// offset 0 can serve as the nil pointer and the first offsets of each
// arena can hold superblock-style metadata (core's superblock lives at
// arena base + 256).
const reserveBytes = 4096

// carveBytes is how much a size class grabs from the bump region at a
// time, amortizing the lock.
const carveBytes = 64 << 10

// Allocator hands out PM blocks from per-socket arenas. An Allocator
// covers either the whole device (New) or one of count equal slices of
// it (NewArena); allocators over disjoint arenas never hand out
// overlapping regions, which is what lets several independently
// recovered trees — the sharded DB frontend — share one pool.
type Allocator struct {
	pool    *pmem.Pool
	base    uint64 // arena start offset, identical on every socket
	sockets []socketArena
}

type socketArena struct {
	mu     sync.Mutex
	base   uint64 // arena start offset on this socket
	next   uint64 // bump pointer
	limit  uint64
	free   map[int][]pmem.Addr // size class -> free addresses
	inUse  int64
	wasted int64 // rounding loss
}

// New returns the pool's whole-device allocator, creating it on first
// use. Every caller allocating on the same pool shares one allocator
// (bump pointers and free lists), so independently constructed
// components — an index, its WAL manager, a benchmark's blob arena —
// can never hand out overlapping PM regions.
func New(pool *pmem.Pool) *Allocator {
	a, err := NewArena(pool, 0, 1)
	if err != nil {
		// Unreachable: arena 0 of 1 spans the device and the device is
		// never smaller than one arena's reserve.
		panic(err)
	}
	return a
}

// NewArena returns the allocator for slice index of count equal
// per-socket slices of the pool, creating it on first use. Like New,
// the allocator for a given (index, count) is a pool-scoped singleton.
// Each arena reserves its own low reserveBytes for superblock-style
// metadata, so components placed in different arenas recover
// independently: one arena's bump-pointer rebuild can never allocate
// over another arena's still-unscanned live data.
//
// Arenas of different counts overlap (slice 0 of 2 covers slices 0 and
// 1 of 4); a pool must be carved with one count for its lifetime.
func NewArena(pool *pmem.Pool, index, count int) (*Allocator, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("pmalloc: arena %d of %d impossible", index, count)
	}
	span := (uint64(pool.DeviceBytes()) / uint64(count)) &^ (pmem.XPLineSize - 1)
	if span < 4*reserveBytes {
		return nil, fmt.Errorf("pmalloc: %d arenas of a %d-byte device leave only %d bytes each",
			count, pool.DeviceBytes(), span)
	}
	key := "pmalloc"
	if count > 1 {
		key = fmt.Sprintf("pmalloc@%d/%d", index, count)
	}
	return pool.Aux(key, func() any {
		return newAllocator(pool, uint64(index)*span, uint64(index)*span+span)
	}).(*Allocator), nil
}

func newAllocator(pool *pmem.Pool, base, limit uint64) *Allocator {
	a := &Allocator{pool: pool, base: base, sockets: make([]socketArena, pool.Sockets())}
	for i := range a.sockets {
		a.sockets[i] = socketArena{
			base:  base,
			next:  base + reserveBytes,
			limit: limit,
			free:  map[int][]pmem.Addr{},
		}
	}
	return a
}

// BaseOffset returns the arena's start offset (identical on every
// socket): 0 for the whole-device allocator, index*span for an arena.
// The first reserveBytes past it are never allocated.
func (a *Allocator) BaseOffset() uint64 { return a.base }

// roundSize aligns a request to the XPLine-friendly granularity: small
// objects to 64 B multiples, anything ≥256 B to 256 B multiples so
// objects never straddle more XPLines than necessary.
func roundSize(size int) int {
	if size <= 0 {
		panic("pmalloc: non-positive size")
	}
	if size < pmem.XPLineSize {
		return (size + pmem.CachelineSize - 1) &^ (pmem.CachelineSize - 1)
	}
	return (size + pmem.XPLineSize - 1) &^ (pmem.XPLineSize - 1)
}

// Alloc returns a block of at least size bytes on the given socket,
// aligned so that 256 B objects occupy exactly one XPLine.
func (a *Allocator) Alloc(socket, size int) (pmem.Addr, error) {
	size = roundSize(size)
	s := &a.sockets[socket]
	s.mu.Lock()
	defer s.mu.Unlock()
	if lst := s.free[size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		s.free[size] = lst[:len(lst)-1]
		s.inUse += int64(size)
		return addr, nil
	}
	// Align the bump pointer: XPLine alignment for XPLine-sized-and-up
	// classes, cacheline alignment otherwise.
	align := uint64(pmem.CachelineSize)
	if size >= pmem.XPLineSize {
		align = pmem.XPLineSize
	}
	aligned := (s.next + align - 1) &^ (align - 1)
	s.wasted += int64(aligned - s.next)
	if aligned+uint64(size) > s.limit {
		return pmem.NilAddr, fmt.Errorf("pmalloc: socket %d out of PM (%d in use, %d capacity)", socket, s.inUse, s.limit)
	}
	s.next = aligned + uint64(size)
	s.inUse += int64(size)
	return pmem.MakeAddr(socket, aligned), nil
}

// AllocBatch fills dst with blocks of the given size, amortizing the
// arena lock for hot allocation paths (leaf splits under load).
func (a *Allocator) AllocBatch(socket, size int, dst []pmem.Addr) error {
	size = roundSize(size)
	s := &a.sockets[socket]
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range dst {
		if lst := s.free[size]; len(lst) > 0 {
			dst[i] = lst[len(lst)-1]
			s.free[size] = lst[:len(lst)-1]
			s.inUse += int64(size)
			continue
		}
		align := uint64(pmem.CachelineSize)
		if size >= pmem.XPLineSize {
			align = pmem.XPLineSize
		}
		aligned := (s.next + align - 1) &^ (align - 1)
		s.wasted += int64(aligned - s.next)
		if aligned+uint64(size) > s.limit {
			// Roll back what this call took.
			for j := 0; j < i; j++ {
				s.free[size] = append(s.free[size], dst[j])
				s.inUse -= int64(size)
			}
			return fmt.Errorf("pmalloc: socket %d out of PM", socket)
		}
		s.next = aligned + uint64(size)
		s.inUse += int64(size)
		dst[i] = pmem.MakeAddr(socket, aligned)
	}
	return nil
}

// Free returns a block to its size-class free list. size must be the
// original request (it is re-rounded identically).
func (a *Allocator) Free(addr pmem.Addr, size int) {
	if addr.IsNil() {
		return
	}
	size = roundSize(size)
	s := &a.sockets[addr.Socket()]
	s.mu.Lock()
	s.free[size] = append(s.free[size], addr)
	s.inUse -= int64(size)
	s.mu.Unlock()
}

// InUseBytes reports bytes currently allocated on one socket.
func (a *Allocator) InUseBytes(socket int) int64 {
	s := &a.sockets[socket]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// TotalInUseBytes reports bytes currently allocated across all sockets
// (the "PM consumption" of Fig 18).
func (a *Allocator) TotalInUseBytes() int64 {
	var total int64
	for i := range a.sockets {
		total += a.InUseBytes(i)
	}
	return total
}

// SetBump advances a socket's bump pointer to at least off. Recovery
// uses it after rebuilding reachability from persistent structures so
// fresh allocations never overlap live data. Space below the new bump
// that is not reachable is leaked until reclaimed by structure-level GC
// (the chunk-based-allocation trade-off the paper adopts, §4.2).
func (a *Allocator) SetBump(socket int, off uint64) {
	s := &a.sockets[socket]
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < s.base+reserveBytes {
		off = s.base + reserveBytes
	}
	if off > s.next {
		s.inUse += int64(off - s.next)
		s.next = off
	}
}

// HighWaterBytes reports how far the bump pointer has moved on a socket
// (peak footprint including free-listed blocks).
func (a *Allocator) HighWaterBytes(socket int) int64 {
	s := &a.sockets[socket]
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.next - s.base - reserveBytes)
}
