// Package indextest is the shared conformance suite every persistent
// index in this repository must pass: correctness against a reference
// model, ordered scans, deletes, updates, and basic concurrency.
package indextest

import (
	"math/rand"
	"sync"
	"testing"

	"cclbtree/internal/index"
	"cclbtree/internal/pmem"
)

// Options tunes the suite for an index's limitations.
type Options struct {
	// SkipDelete skips delete coverage (PACTree's public code cannot
	// run deletes either, §5.1).
	SkipDelete bool
	// Light reduces op counts for slow indexes (the LSM).
	Light bool
}

// Pool builds the standard small test pool.
func Pool() *pmem.Pool {
	return pmem.NewPool(pmem.Config{
		Sockets:        2,
		DIMMsPerSocket: 2,
		DeviceBytes:    64 << 20,
		XPBufferLines:  16,
		CacheLines:     1 << 13,
	})
}

// Run exercises the full conformance suite against factory.
func Run(t *testing.T, factory index.Factory, opts Options) {
	t.Helper()
	scale := 1
	if opts.Light {
		scale = 4
	}

	t.Run("RoundTrip", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		h := idx.NewHandle(0)
		n := uint64(4000 / scale)
		for i := uint64(1); i <= n; i++ {
			if err := h.Upsert(i, i*3); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(1); i <= n; i++ {
			v, ok := h.Lookup(i)
			if !ok || v != i*3 {
				t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
			}
		}
		if _, ok := h.Lookup(n + 100); ok {
			t.Fatal("found absent key")
		}
	})

	t.Run("UpdateWins", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		h := idx.NewHandle(0)
		for i := uint64(1); i <= 500; i++ {
			_ = h.Upsert(i, 1)
		}
		for i := uint64(1); i <= 500; i++ {
			_ = h.Upsert(i, i+77)
		}
		for i := uint64(1); i <= 500; i++ {
			v, ok := h.Lookup(i)
			if !ok || v != i+77 {
				t.Fatalf("Lookup(%d) = %d,%v", i, v, ok)
			}
		}
	})

	t.Run("ScanOrderedComplete", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		h := idx.NewHandle(0)
		rng := rand.New(rand.NewSource(3))
		n := 3000 / scale
		for _, p := range rng.Perm(n) {
			_ = h.Upsert(uint64(p+1), uint64(p+1)*2)
		}
		out := make([]index.KV, n+10)
		got := h.Scan(1, n+10, out)
		if got != n {
			t.Fatalf("full scan found %d of %d", got, n)
		}
		for i := 0; i < got; i++ {
			if out[i].Key != uint64(i+1) || out[i].Value != uint64(i+1)*2 {
				t.Fatalf("scan[%d] = %+v", i, out[i])
			}
		}
		mid := uint64(n / 2)
		got = h.Scan(mid, 10, out)
		for i := 0; i < got; i++ {
			if out[i].Key != mid+uint64(i) {
				t.Fatalf("mid scan[%d] = %d", i, out[i].Key)
			}
		}
	})

	if !opts.SkipDelete {
		t.Run("Delete", func(t *testing.T) {
			idx := mustNew(t, factory)
			defer idx.Close()
			h := idx.NewHandle(0)
			n := uint64(2000 / scale)
			for i := uint64(1); i <= n; i++ {
				_ = h.Upsert(i, i)
			}
			for i := uint64(1); i <= n; i += 2 {
				if err := h.Delete(i); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(1); i <= n; i++ {
				_, ok := h.Lookup(i)
				if want := i%2 == 0; ok != want {
					t.Fatalf("Lookup(%d) = %v want %v", i, ok, want)
				}
			}
			out := make([]index.KV, n)
			got := h.Scan(1, int(n), out)
			if got != int(n/2) {
				t.Fatalf("scan after delete: %d want %d", got, n/2)
			}
			// Reinsert.
			for i := uint64(1); i <= n; i += 2 {
				_ = h.Upsert(i, i*9)
			}
			for i := uint64(1); i <= n; i += 2 {
				v, ok := h.Lookup(i)
				if !ok || v != i*9 {
					t.Fatalf("reinsert Lookup(%d) = %d,%v", i, v, ok)
				}
			}
		})
	}

	t.Run("RandomAgainstModel", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		h := idx.NewHandle(0)
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(17))
		space := 1500 / scale
		for op := 0; op < 15000/scale; op++ {
			k := uint64(rng.Intn(space) + 1)
			switch {
			case !opts.SkipDelete && rng.Intn(8) == 0:
				_ = h.Delete(k)
				delete(ref, k)
			case rng.Intn(4) == 0:
				v, ok := h.Lookup(k)
				wv, wok := ref[k]
				if ok != wok || (ok && v != wv) {
					t.Fatalf("op %d Lookup(%d) = %d,%v want %d,%v", op, k, v, ok, wv, wok)
				}
			default:
				v := rng.Uint64()%(1<<40) + 1
				_ = h.Upsert(k, v)
				ref[k] = v
			}
		}
		out := make([]index.KV, space+10)
		got := h.Scan(1, space+10, out)
		if got != len(ref) {
			t.Fatalf("scan %d, model %d", got, len(ref))
		}
		var prev uint64
		for i := 0; i < got; i++ {
			if out[i].Key <= prev || ref[out[i].Key] != out[i].Value {
				t.Fatalf("scan[%d] = %+v (model %d)", i, out[i], ref[out[i].Key])
			}
			prev = out[i].Key
		}
	})

	t.Run("ConcurrentDisjoint", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		const workers = 4
		per := 1500 / scale
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				h := idx.NewHandle(g % 2)
				base := uint64(g*per + 1)
				for i := 0; i < per; i++ {
					if err := h.Upsert(base+uint64(i), base+uint64(i)); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		h := idx.NewHandle(0)
		for k := uint64(1); k <= uint64(workers*per); k++ {
			v, ok := h.Lookup(k)
			if !ok || v != k {
				t.Fatalf("key %d: %d,%v", k, v, ok)
			}
		}
	})

	t.Run("MemoryUsage", func(t *testing.T) {
		idx := mustNew(t, factory)
		defer idx.Close()
		h := idx.NewHandle(0)
		for i := uint64(1); i <= 2000; i++ {
			_ = h.Upsert(i, i)
		}
		_, pm := idx.MemoryUsage()
		if pm <= 0 {
			t.Fatalf("PM usage %d not positive", pm)
		}
	})
}

func mustNew(t *testing.T, factory index.Factory) index.Index {
	t.Helper()
	idx, err := factory(Pool())
	if err != nil {
		t.Fatal(err)
	}
	return idx
}
