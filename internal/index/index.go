// Package index defines the common interface every persistent index in
// this repository implements — CCL-BTree and the eight comparison
// targets of the paper's evaluation (§5.1) — plus a conformance suite
// the baselines share.
//
// All indexes run on the same pmem device model, flush with the same
// primitives, and are driven through per-goroutine handles, so the
// benchmark harness can measure any of them interchangeably.
package index

import "cclbtree/internal/pmem"

// KV is one key/value pair. Key 0 is reserved (nil sentinel); value 0
// is reserved as the tombstone in indexes that need one.
type KV struct {
	Key, Value uint64
}

// Index is a persistent key-value index instance.
type Index interface {
	// Name identifies the index in benchmark output ("CCL-BTree",
	// "FAST&FAIR", ...).
	Name() string
	// NewHandle creates a per-goroutine operation handle bound to a
	// NUMA socket. Handles must not be shared between goroutines.
	NewHandle(socket int) Handle
	// MemoryUsage reports modeled DRAM bytes and PM bytes in use
	// (Fig 18).
	MemoryUsage() (dramBytes, pmBytes int64)
	// Close stops any background activity (GC, compaction).
	Close()
}

// Handle issues operations against an Index on behalf of one goroutine.
type Handle interface {
	// Upsert inserts or updates a pair.
	Upsert(key, value uint64) error
	// Lookup returns the value for key.
	Lookup(key uint64) (uint64, bool)
	// Delete removes key.
	Delete(key uint64) error
	// Scan fills out with up to max live entries with key ≥ start in
	// ascending order, returning the count.
	Scan(start uint64, max int, out []KV) int
	// Thread exposes the handle's PM thread (virtual clock).
	Thread() *pmem.Thread
}

// Factory builds an index on a pool. sockets is the NUMA node count
// workloads will use.
type Factory func(pool *pmem.Pool) (Index, error)
