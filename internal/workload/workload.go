// Package workload generates the paper's benchmark inputs: uniform and
// Zipfian key streams (§2.3, §5.4), the five YCSB mixes of §5.2,
// synthetic stand-ins for the four SOSD datasets of §5.5, and
// variable-size KV material for Fig 15b/c.
//
// Everything is deterministic given a seed, so experiments are
// reproducible run to run.
package workload

import (
	"math"
	"math/rand"
)

// mix64 is the SplitMix64 finalizer, used to scramble key spaces.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nonZero maps a word into the index-legal key space (key 0 and the
// tag bits are reserved).
func nonZero(x uint64) uint64 {
	x &= 1<<62 - 1
	if x == 0 {
		return 1
	}
	return x
}

// Access produces a stream of keys to operate on.
type Access interface {
	// Next returns the next key using r as the randomness source.
	Next(r *rand.Rand) uint64
}

// Uniform draws keys uniformly from a scrambled space of n keys.
type Uniform struct {
	N uint64
}

// Next implements Access.
func (u Uniform) Next(r *rand.Rand) uint64 {
	return nonZero(mix64(r.Uint64()%u.N + 1))
}

// Sequential replays the scrambled key space in order (load phases).
type Sequential struct {
	N    uint64
	next uint64
}

// Next implements Access: cycles through all N distinct keys.
func (s *Sequential) Next(r *rand.Rand) uint64 {
	s.next++
	if s.next > s.N {
		s.next = 1
	}
	return nonZero(mix64(s.next))
}

// Zipf draws keys from the same scrambled space with a Zipfian
// distribution (Gray et al.'s generator, as in YCSB). Theta is the
// skew coefficient the paper sweeps from 0.5 to 0.99 (Fig 15a).
type Zipf struct {
	n            uint64
	theta        float64
	alpha, zetan float64
	eta, zeta2   float64
}

// NewZipf builds a generator over n keys with skew theta ∈ (0,1).
func NewZipf(n uint64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Access.
func (z *Zipf) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 1
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 2
	default:
		rank = 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank > z.n {
		rank = z.n
	}
	// Scramble so hot keys scatter across the key space (ScrambledZipfian).
	return nonZero(mix64(rank))
}

// OpKind is one YCSB operation type.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpRead
	OpUpdate
	OpScan
	OpDelete
)

// Mix is an operation mixture; weights need not sum to 1 (they are
// normalized).
type Mix struct {
	Insert, Read, Update, Scan, Delete float64
	// ScanLen is the range-query length for OpScan (the paper uses 100
	// by default, 50–400 in Fig 5).
	ScanLen int
}

// The five YCSB-style mixes of Fig 11 plus the micro-benchmark mixes.
var (
	MixInsertOnly      = Mix{Insert: 1}
	MixInsertIntensive = Mix{Insert: 0.75, Read: 0.25}
	MixReadIntensive   = Mix{Insert: 0.25, Read: 0.75}
	MixReadOnly        = Mix{Read: 1}
	MixScanInsert      = Mix{Scan: 0.95, Insert: 0.05, ScanLen: 100}
)

// Pick draws an operation kind from the mix.
func (m Mix) Pick(r *rand.Rand) OpKind {
	total := m.Insert + m.Read + m.Update + m.Scan + m.Delete
	u := r.Float64() * total
	switch {
	case u < m.Insert:
		return OpInsert
	case u < m.Insert+m.Read:
		return OpRead
	case u < m.Insert+m.Read+m.Update:
		return OpUpdate
	case u < m.Insert+m.Read+m.Update+m.Scan:
		return OpScan
	default:
		return OpDelete
	}
}

// Dataset names the realistic key sets of Fig 19.
type Dataset string

// The four SOSD stand-ins.
const (
	DatasetAmzn     Dataset = "amzn"
	DatasetOsm      Dataset = "osm"
	DatasetWiki     Dataset = "wiki"
	DatasetFacebook Dataset = "facebook"
)

// Keys synthesizes n distinct keys with the statistical character of
// the SOSD dataset (§5.5):
//
//	amzn      book-popularity ranks: heavy clustering with long gaps
//	osm       OpenStreetMap cell ids: uniform over 64-bit space
//	wiki      edit timestamps: nearly sequential with small jitter
//	facebook  sampled user ids: uniform hashes
func Keys(d Dataset, n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	switch d {
	case DatasetAmzn:
		// Clusters of popular items: lognormal gaps.
		cur := uint64(1)
		for i := range keys {
			gap := uint64(math.Exp(r.NormFloat64()*2+2)) + 1
			cur += gap
			keys[i] = nonZero(cur)
		}
	case DatasetOsm:
		seen := make(map[uint64]struct{}, n)
		for i := 0; i < n; {
			k := nonZero(r.Uint64())
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys[i] = k
			i++
		}
	case DatasetWiki:
		// Timestamps: one-second ticks with jitter, strictly increasing.
		cur := uint64(1_500_000_000)
		for i := range keys {
			cur += 1 + uint64(r.Intn(3))
			keys[i] = nonZero(cur)
		}
	case DatasetFacebook:
		for i := range keys {
			keys[i] = nonZero(mix64(uint64(i+1) * 0x9e3779b97f4a7c15))
		}
	default:
		for i := range keys {
			keys[i] = nonZero(mix64(uint64(i + 1)))
		}
	}
	// Insert order is random, as when replaying a shuffled dataset.
	r.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

// VarSizer generates variable-size keys and values in [Min,Max] bytes
// (Fig 15b draws both from 8–128 B).
type VarSizer struct {
	Min, Max int
}

// Bytes produces one payload derived from a key so regenerating it for
// verification is possible.
func (v VarSizer) Bytes(r *rand.Rand, key uint64) []byte {
	n := v.Min
	if v.Max > v.Min {
		n += r.Intn(v.Max - v.Min + 1)
	}
	b := make([]byte, n)
	x := mix64(key)
	for i := range b {
		if i%8 == 0 {
			x = mix64(x)
		}
		b[i] = byte(x >> (8 * uint(i%8)))
	}
	return b
}
