package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestUniformNeverZero(t *testing.T) {
	u := Uniform{N: 1000}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if u.Next(r) == 0 {
			t.Fatal("uniform produced key 0")
		}
	}
}

func TestSequentialCoversSpace(t *testing.T) {
	s := &Sequential{N: 500}
	r := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		seen[s.Next(r)] = true
	}
	if len(seen) != 500 {
		t.Fatalf("sequential produced %d distinct of 500", len(seen))
	}
	// Wraps around deterministically: draw 501 repeats draw 1.
	first := (&Sequential{N: 500}).Next(rand.New(rand.NewSource(9)))
	if got := s.Next(r); got != first {
		t.Fatalf("wrap mismatch: %d vs %d", got, first)
	}
}

func TestZipfSkew(t *testing.T) {
	const n = 10000
	const draws = 200000
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		z := NewZipf(n, theta)
		r := rand.New(rand.NewSource(7))
		counts := map[uint64]int{}
		for i := 0; i < draws; i++ {
			counts[z.Next(r)]++
		}
		freqs := make([]int, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		top10 := 0
		for i := 0; i < 10 && i < len(freqs); i++ {
			top10 += freqs[i]
		}
		share := float64(top10) / draws
		switch {
		case theta == 0.99 && share < 0.25:
			t.Fatalf("theta 0.99: top-10 share %.3f too flat", share)
		case theta == 0.5 && share > 0.25:
			t.Fatalf("theta 0.5: top-10 share %.3f too skewed", share)
		}
	}
}

func TestZipfHigherThetaMoreSkewed(t *testing.T) {
	const n = 5000
	shares := map[float64]float64{}
	for _, theta := range []float64{0.5, 0.7, 0.9} {
		z := NewZipf(n, theta)
		r := rand.New(rand.NewSource(3))
		counts := map[uint64]int{}
		for i := 0; i < 100000; i++ {
			counts[z.Next(r)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		shares[theta] = float64(max)
	}
	if !(shares[0.5] < shares[0.7] && shares[0.7] < shares[0.9]) {
		t.Fatalf("skew not monotone in theta: %v", shares)
	}
}

func TestMixPickRatios(t *testing.T) {
	m := MixInsertIntensive
	r := rand.New(rand.NewSource(5))
	counts := map[OpKind]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[m.Pick(r)]++
	}
	ins := float64(counts[OpInsert]) / draws
	if ins < 0.72 || ins > 0.78 {
		t.Fatalf("insert share %.3f, want ≈0.75", ins)
	}
	if counts[OpScan] != 0 || counts[OpDelete] != 0 {
		t.Fatal("unexpected op kinds")
	}
}

func TestDatasetsDistinctAndDeterministic(t *testing.T) {
	for _, d := range []Dataset{DatasetAmzn, DatasetOsm, DatasetWiki, DatasetFacebook} {
		a := Keys(d, 5000, 42)
		b := Keys(d, 5000, 42)
		seen := map[uint64]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", d, i)
			}
			if a[i] == 0 {
				t.Fatalf("%s: key 0", d)
			}
			seen[a[i]] = true
		}
		if len(seen) < 4900 {
			t.Fatalf("%s: only %d distinct keys of 5000", d, len(seen))
		}
	}
}

func TestDatasetCharacter(t *testing.T) {
	// wiki keys are dense (small range), osm keys span the 62-bit
	// space.
	wiki := Keys(DatasetWiki, 10000, 1)
	osm := Keys(DatasetOsm, 10000, 1)
	maxW, minW := uint64(0), ^uint64(0)
	for _, k := range wiki {
		if k > maxW {
			maxW = k
		}
		if k < minW {
			minW = k
		}
	}
	if maxW-minW > 100000 {
		t.Fatalf("wiki span %d too sparse", maxW-minW)
	}
	big := 0
	for _, k := range osm {
		if k > 1<<55 {
			big++
		}
	}
	if big < 1000 {
		t.Fatalf("osm keys not spread: %d above 2^55", big)
	}
}

func TestVarSizer(t *testing.T) {
	v := VarSizer{Min: 8, Max: 128}
	r := rand.New(rand.NewSource(2))
	for i := uint64(1); i < 1000; i++ {
		b := v.Bytes(r, i)
		if len(b) < 8 || len(b) > 128 {
			t.Fatalf("size %d out of range", len(b))
		}
	}
	// Content depends only on key, not on the rng (length does).
	b1 := VarSizer{Min: 16, Max: 16}.Bytes(r, 7)
	b2 := VarSizer{Min: 16, Max: 16}.Bytes(r, 7)
	if string(b1) != string(b2) {
		t.Fatal("payload not reproducible for same key")
	}
}
