package bench

import (
	"strings"
	"testing"

	"cclbtree/internal/obs"
)

func gateReport(mops, wa, cli float64, p99 uint64) *obs.BenchReport {
	return &obs.BenchReport{
		Name: "ycsbb",
		Phases: []obs.PhaseRecord{{
			Phase:      "00:CCL-BTree/t8",
			MopsPerSec: mops,
			WAFactor:   wa,
			CLIFactor:  cli,
			P99Nanos:   p99,
		}},
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	base := gateReport(10, 4, 2, 1000)
	// 20% worse everywhere: inside the 35% default band (p99 gets 2×tol).
	cur := gateReport(8, 4.8, 2.4, 1200)
	if v := CompareReports(base, cur, 0); len(v) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", v)
	}
	// Improvement in every direction never trips the gate.
	if v := CompareReports(base, gateReport(20, 2, 1, 500), 0); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestCompareReportsCatchesEachMetric(t *testing.T) {
	base := gateReport(10, 4, 2, 1000)
	cases := []struct {
		name string
		cur  *obs.BenchReport
		want string
	}{
		{"throughput", gateReport(6, 4, 2, 1000), "throughput"},
		{"wa", gateReport(10, 6, 2, 1000), "write amplification"},
		{"cli", gateReport(10, 4, 3, 1000), "CLI amplification"},
		{"p99", gateReport(10, 4, 2, 2000), "p99 latency"},
	}
	for _, c := range cases {
		v := CompareReports(base, c.cur, 0)
		if len(v) != 1 || !strings.Contains(v[0], c.want) {
			t.Errorf("%s: violations = %v, want one mentioning %q", c.name, v, c.want)
		}
	}
}

func TestCompareReportsMissingPhase(t *testing.T) {
	base := gateReport(10, 4, 2, 1000)
	cur := &obs.BenchReport{Name: "ycsbb"}
	v := CompareReports(base, cur, 0)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("violations = %v, want missing-phase", v)
	}
	// Extra phases in cur are new coverage, not regressions.
	cur = gateReport(10, 4, 2, 1000)
	cur.Phases = append(cur.Phases, obs.PhaseRecord{Phase: "01:new/t1"})
	if v := CompareReports(base, cur, 0); len(v) != 0 {
		t.Fatalf("extra current phase flagged: %v", v)
	}
}

func TestCompareReportsCustomTolerance(t *testing.T) {
	base := gateReport(10, 4, 2, 1000)
	cur := gateReport(9, 4, 2, 1000) // −10%
	if v := CompareReports(base, cur, 0.05); len(v) != 1 {
		t.Fatalf("tight tolerance missed a −10%% throughput drop: %v", v)
	}
	if v := CompareReports(base, cur, 0.20); len(v) != 0 {
		t.Fatalf("loose tolerance flagged a −10%% throughput drop: %v", v)
	}
}

// TestYCSBBCarriesProfile pins the ycsbb experiment's contract with the
// CI gate: its report phase has a profile with segments, locks and hot
// leaves, and the gate passes when compared against itself.
func TestYCSBBCarriesProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a bench phase")
	}
	old := benchDeviceBytes
	benchDeviceBytes = 32 << 20
	defer func() { benchDeviceBytes = old }()

	StartReport("ycsbb")
	_, err := YCSBB(Scale{Warm: 3000, Ops: 3000, MainThreads: 4, Seed: 1})
	rep := FinishReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("ycsbb recorded %d phases, want 1", len(rep.Phases))
	}
	p := rep.Phases[0].Profile
	if p == nil {
		t.Fatal("ycsbb phase has no profile")
	}
	if len(p.Segments) == 0 || len(p.Locks) == 0 || len(p.HotLeaves) == 0 {
		t.Fatalf("profile incomplete: %d segments, %d locks, %d hot leaves",
			len(p.Segments), len(p.Locks), len(p.HotLeaves))
	}
	var hasP99 bool
	for _, s := range p.Segments {
		if s.P99NS > 0 {
			hasP99 = true
		}
	}
	if !hasP99 {
		t.Fatal("no segment carries a p99")
	}
	if v := CompareReports(rep, rep, 0); len(v) != 0 {
		t.Fatalf("self-comparison regressed: %v", v)
	}
}
