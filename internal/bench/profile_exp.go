package bench

import (
	"fmt"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/obs"
	"cclbtree/internal/workload"
)

// YCSBB runs the profiling showcase: a YCSB-B mix (95% reads, 5%
// updates) over a Zipfian 0.99 key stream against CCL-BTree with the
// full second obs tier on — lock-contention profiling, critical-path
// span attribution and the leaf heatmap — and renders all three next to
// the throughput row. This is also the experiment the CI regression
// gate replays (cclbench -compare), so its BENCH json always carries a
// profile.
func YCSBB(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	pool := NewPool()
	if s.Tracer.Enabled() {
		pool.SetDeviceTracer(s.Tracer.DeviceHook())
	}
	idx, err := cclidx.Factory("CCL-BTree", cclbtree.Config{
		ChunkBytes: 256 << 10,
		Metrics:    true,
		Tracer:     s.Tracer,
	})(pool)
	if err != nil {
		return nil, err
	}
	defer idx.Close()

	z := workload.NewZipf(uint64(s.Warm), 0.99)
	res, err := Run(pool, idx, Spec{
		Threads: s.MainThreads,
		Warm:    s.Warm,
		Ops:     s.Ops,
		Mix:     workload.Mix{Read: 0.95, Update: 0.05},
		Access:  func(int) workload.Access { return z },
		Latency: true,
		Seed:    s.Seed,
	})
	if err != nil {
		return nil, err
	}

	tabs := []*Table{{
		Title:  "YCSB-B profile: throughput (Zipfian 0.99, 95% read / 5% update)",
		Header: []string{"index", "Mop/s", "WA", "CLI", "p50(ns)", "p99(ns)"},
		Rows: [][]string{{
			idx.Name(), f2(res.Mops()), f2(res.XBIAmp()), f2(res.CLIAmp()),
			fmt.Sprint(res.Pct(50)), fmt.Sprint(res.Pct(99)),
		}},
	}}
	if res.Profile != nil {
		tabs = append(tabs, profileTables(res.Profile)...)
	}
	return tabs, nil
}

// profileTables renders one obs.Profile as printable tables (shared
// with nothing yet; cclstat has its own terminal renderer).
func profileTables(p *obs.Profile) []*Table {
	var tabs []*Table

	if len(p.Segments) > 0 {
		// Per-op totals give each segment a share-of-latency column.
		opSum := map[string]uint64{}
		for _, sg := range p.Segments {
			opSum[sg.Op] += sg.SumNS
		}
		seg := &Table{
			Title:  "critical-path attribution (virtual ns per op segment)",
			Header: []string{"op", "segment", "count", "p50", "p99", "p999", "share"},
			Note:   "share = segment time / op class total; segments partition each op's latency",
		}
		for _, sg := range p.Segments {
			share := 0.0
			if t := opSum[sg.Op]; t > 0 {
				share = 100 * float64(sg.SumNS) / float64(t)
			}
			seg.Rows = append(seg.Rows, []string{
				sg.Op, sg.Segment, fmt.Sprint(sg.Count),
				fmt.Sprint(sg.P50NS), fmt.Sprint(sg.P99NS), fmt.Sprint(sg.P999NS),
				f1(share) + "%",
			})
		}
		tabs = append(tabs, seg)
	}

	if len(p.Locks) > 0 {
		lk := &Table{
			Title:  "lock contention (wall-clock ns, 1-in-64 sampled)",
			Header: []string{"class", "acquisitions", "contended", "wait p50", "wait p99", "wait max", "hold p99"},
			Note:   "contended = sampled waits ≥ 1µs (lower bound)",
		}
		for _, ls := range p.Locks {
			lk.Rows = append(lk.Rows, []string{
				ls.Class, fmt.Sprint(ls.Acquisitions), fmt.Sprint(ls.Contended),
				fmt.Sprint(ls.WaitP50NS), fmt.Sprint(ls.WaitP99NS), fmt.Sprint(ls.WaitMaxNS),
				fmt.Sprint(ls.HoldP99NS),
			})
		}
		tabs = append(tabs, lk)
	}

	if len(p.HotLeaves) > 0 {
		hl := &Table{
			Title:  "hot leaves (top-K by decayed access score)",
			Header: []string{"leaf", "score", "reads", "writes"},
			Note:   fmt.Sprintf("heat epoch %d, %d touches dropped at saturation", p.HeatEpoch, p.HeatDropped),
		}
		for _, e := range p.HotLeaves {
			hl.Rows = append(hl.Rows, []string{
				fmt.Sprintf("%#x", e.Leaf), fmt.Sprint(e.Score),
				fmt.Sprint(e.Reads), fmt.Sprint(e.Writes),
			})
		}
		tabs = append(tabs, hl)
	}
	return tabs
}
