package bench

import (
	"fmt"
	"sync"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/index"
	"cclbtree/internal/pmem"
	"cclbtree/internal/workload"
)

// cclVariants are the §5.3 ablation configurations.
func cclVariants() []index.Factory {
	return []index.Factory{
		cclidx.Factory("Base", cclbtree.Config{Nbatch: -1, GC: cclbtree.GCOff}),
		cclidx.Factory("+BNode", cclbtree.Config{NaiveLogging: true, GC: cclbtree.GCOff}),
		cclidx.Factory("+WLog", cclbtree.Config{GC: cclbtree.GCOff}),
	}
}

// Fig13 measures each optimization's contribution: throughput for the
// five operations (a), and XBI-amplification split into leaf-node and
// WAL traffic (b).
func Fig13(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	ops := []struct {
		name string
		mix  workload.Mix
	}{
		{"Insert", workload.Mix{Insert: 1}},
		{"Update", workload.Mix{Update: 1}},
		{"Delete", workload.Mix{Delete: 1}},
		{"Search", workload.Mix{Read: 1}},
		{"Scan", workload.Mix{Scan: 1, ScanLen: s.ScanLen}},
	}
	a := &Table{
		Title:  "Fig 13(a): throughput (Mop/s) of each optimization",
		Header: []string{"variant", "Insert", "Update", "Delete", "Search", "Scan"},
		Note:   fmt.Sprintf("%d threads", s.MainThreads),
	}
	b := &Table{
		Title:  "Fig 13(b): XBI-amplification split by source (insert workload)",
		Header: []string{"variant", "leaf XBI", "WAL XBI", "total XBI"},
	}
	for _, f := range cclVariants() {
		rowA := []string{""}
		for _, op := range ops {
			r, err := runOne(f, Spec{
				Threads: s.MainThreads,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     op.mix,
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			rowA[0] = r.Name
			rowA = append(rowA, f2(r.Res.Mops()))
			if op.name == "Insert" {
				st := r.Res.Stats
				user := float64(r.Res.UserBytes)
				if user == 0 {
					user = 1
				}
				b.Rows = append(b.Rows, []string{
					r.Name,
					f2(float64(st.MediaWriteByTag[pmem.TagLeaf]) / user),
					f2(float64(st.MediaWriteByTag[pmem.TagWAL]) / user),
					f2(r.Res.XBIAmp()),
				})
			}
		}
		a.Rows = append(a.Rows, rowA)
	}
	return []*Table{a, b}, nil
}

// Fig14 records the insert-throughput timeline for the three GC
// strategies: without GC, locality-aware GC, and naive stop-the-world
// GC. Locality-aware GC barely dents the curve; naive GC dips sharply
// when the collection starts (§5.3).
func Fig14(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	const buckets = 20
	type series struct {
		name string
		tp   []float64
	}
	var all []series
	var gcStartBucket int

	// One explicit GC event at 40% of the run, per the paper's Fig 14
	// methodology (populate, clean buffers, then "when the GC is
	// triggered..."): THlog is set high so GC never self-triggers.
	for _, cfg := range []struct {
		name    string
		opts    cclbtree.Config
		trigger bool
	}{
		{"w/o GC", cclbtree.Config{GC: cclbtree.GCOff, ChunkBytes: 64 << 10}, false},
		{"our GC", cclbtree.Config{GC: cclbtree.GCLocalityAware, ChunkBytes: 64 << 10, THlog: 1e9}, true},
		{"naive GC", cclbtree.Config{GC: cclbtree.GCNaive, ChunkBytes: 64 << 10, THlog: 1e9}, true},
	} {
		pool := NewPool()
		idx, err := cclidx.Factory("CCL-BTree", cfg.opts)(pool)
		if err != nil {
			return nil, err
		}
		// Populate, then measure a continuing insert stream, sampling
		// (virtual time, ops) pairs per thread.
		threads := s.MainThreads
		handles := make([]index.Handle, threads)
		for i := range handles {
			handles[i] = idx.NewHandle(i % pool.Sockets())
		}
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := handles[th]
				for i := th; i < s.Warm; i += threads {
					_ = h.Upsert(loadKey(nil, i), 7)
				}
			}(th)
		}
		wg.Wait()

		type sample struct{ vt int64 }
		samples := make([][]sample, threads)
		perThread := s.Ops * 2 / threads
		const sampleEvery = 512
		start := make([]int64, threads)
		for th, h := range handles {
			start[th] = h.Thread().Now()
		}
		tree := idx.(*cclidx.Tree).DB()
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := handles[th]
				cursor := s.Warm + th
				for i := 0; i < perThread; i++ {
					if cfg.trigger && th == 0 && i == perThread*2/5 {
						tree.StartGCAsync()
					}
					_ = h.Upsert(loadKey(nil, cursor), 7)
					cursor += threads
					if i%sampleEvery == sampleEvery-1 {
						samples[th] = append(samples[th], sample{h.Thread().Now() - start[th]})
					}
				}
			}(th)
		}
		wg.Wait()
		idx.Close()

		// Bucket ops-completed by virtual time across threads.
		var maxVT int64
		for th, h := range handles {
			if d := h.Thread().Now() - start[th]; d > maxVT {
				maxVT = d
			}
		}
		if maxVT == 0 {
			maxVT = 1
		}
		counts := make([]int, buckets)
		for th := range samples {
			for _, sm := range samples[th] {
				b := int(sm.vt * int64(buckets) / (maxVT + 1))
				counts[b] += sampleEvery
			}
		}
		tp := make([]float64, buckets)
		bucketNS := float64(maxVT) / buckets
		for i, c := range counts {
			tp[i] = float64(c) * 1e3 / bucketNS // Mop/s
		}
		all = append(all, series{cfg.name, tp})
		_ = gcStartBucket
	}

	t := &Table{
		Title:  "Fig 14: insert throughput (Mop/s) over time by GC strategy",
		Header: []string{"time%", all[0].name, all[1].name, all[2].name},
		Note:   "naive GC dips when collection starts; locality-aware GC tracks the no-GC curve",
	}
	for b := 0; b < buckets; b++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", (b+1)*100/buckets),
			f2(all[0].tp[b]), f2(all[1].tp[b]), f2(all[2].tp[b]),
		})
	}
	return []*Table{t}, nil
}

// AblationCache (extra) quantifies the read-cache benefit of buffer
// nodes: the fraction of lookups served without touching PM, by Nbatch.
func AblationCache(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Extra: buffer-node cache hit rate for reads after updates, by Nbatch",
		Header: []string{"Nbatch", "buffer hit %", "search Mop/s"},
	}
	for _, nb := range []int{1, 2, 3, 4, 5} {
		pool := NewPool()
		raw, err := cclidx.Factory("CCL-BTree", cclbtree.Config{Nbatch: nb, GC: cclbtree.GCOff})(pool)
		if err != nil {
			return nil, err
		}
		res, err := Run(pool, raw, Spec{
			Threads: s.MainThreads,
			Warm:    s.Warm,
			Ops:     s.Ops,
			Mix:     workload.Mix{Update: 0.5, Read: 0.5},
			Access:  func(int) workload.Access { return workload.NewZipf(uint64(s.Warm), 0.9) },
			Seed:    s.Seed,
		})
		if err != nil {
			return nil, err
		}
		c := raw.(*cclidx.Tree).DB().Counters()
		hit := 0.0
		if c.Lookups > 0 {
			hit = 100 * float64(c.BufferHits) / float64(c.Lookups)
		}
		raw.Close()
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", nb), f1(hit), f2(res.Mops())})
	}
	return []*Table{t}, nil
}

// AblationGC (extra) compares the media traffic of the two GC
// strategies directly: XPLine bytes written during collection.
func AblationGC(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Extra: media bytes written per GC strategy (same workload)",
		Header: []string{"strategy", "media MB", "XBI-amp", "GC runs"},
	}
	for _, cfg := range []struct {
		name string
		gc   cclbtree.GCPolicy
	}{
		{"locality-aware", cclbtree.GCLocalityAware},
		{"naive", cclbtree.GCNaive},
	} {
		pool := NewPool()
		raw, err := cclidx.Factory("CCL-BTree", cclbtree.Config{GC: cfg.gc, ChunkBytes: 64 << 10, THlog: 0.05})(pool)
		if err != nil {
			return nil, err
		}
		res, err := Run(pool, raw, Spec{
			Threads: s.MainThreads,
			Warm:    s.Warm,
			Ops:     s.Ops,
			Mix:     workload.Mix{Insert: 1},
			Seed:    s.Seed,
		})
		if err != nil {
			return nil, err
		}
		tree := raw.(*cclidx.Tree).DB()
		tree.WaitGC()
		c := tree.Counters()
		raw.Close()
		t.Rows = append(t.Rows, []string{
			cfg.name,
			f2(float64(res.Stats.MediaWriteBytes) / (1 << 20)),
			f2(res.XBIAmp()),
			fmt.Sprintf("%d", c.GCRuns),
		})
	}
	return []*Table{t}, nil
}
