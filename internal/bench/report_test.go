package bench

import (
	"testing"

	"cclbtree/internal/obs"
	"cclbtree/internal/workload"
)

// TestReportScopeAttributionSums is the acceptance check: a bench run's
// emitted record must carry a per-scope media-byte breakdown that sums
// EXACTLY to the phase's MediaWriteBytes — the same counters ipmctl
// would report, partitioned without loss.
func TestReportScopeAttributionSums(t *testing.T) {
	StartReport("report-test")
	pool := NewPool()
	idx, err := benchCCL()(pool)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Threads: 2, Warm: 2000, Ops: 2000,
		Mix: workload.MixInsertIntensive, Latency: true, Seed: 3,
	}
	res, err := Run(pool, idx, spec)
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()
	rep := FinishReport()

	if rep == nil || rep.Name != "report-test" || len(rep.Phases) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	p := rep.Phases[0]
	if p.Index != "CCL-BTree" || p.Threads != 2 || p.Ops != uint64(res.Ops) {
		t.Fatalf("phase identity: %+v", p)
	}
	if p.MediaWriteBytes != res.Stats.MediaWriteBytes {
		t.Fatalf("phase media bytes %d != result %d", p.MediaWriteBytes, res.Stats.MediaWriteBytes)
	}
	var sum uint64
	for _, v := range p.ScopeMediaBytes {
		sum += v
	}
	if sum != p.MediaWriteBytes {
		t.Fatalf("scope attribution sums to %d, MediaWriteBytes is %d (%v)",
			sum, p.MediaWriteBytes, p.ScopeMediaBytes)
	}
	if p.MediaWriteBytes == 0 || p.P99Nanos < p.P50Nanos || p.P50Nanos == 0 {
		t.Fatalf("implausible phase: %+v", p)
	}

	// Round-trip through the BENCH_<name>.json emission.
	path, err := rep.WriteFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	q := back.Phases[0]
	sum = 0
	for _, v := range q.ScopeMediaBytes {
		sum += v
	}
	if sum != q.MediaWriteBytes || q.MediaWriteBytes != p.MediaWriteBytes {
		t.Fatalf("round-tripped record broke the invariant: sum %d media %d", sum, q.MediaWriteBytes)
	}
}

// TestRecordPhaseInactive: Run outside StartReport/FinishReport must
// not record (and must not crash).
func TestRecordPhaseInactive(t *testing.T) {
	if rep := FinishReport(); rep != nil {
		t.Fatalf("stale report: %+v", rep)
	}
	pool := NewPool()
	idx, err := benchCCL()(pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pool, idx, Spec{Threads: 1, Warm: 200, Ops: 200, Mix: workload.MixInsertOnly}); err != nil {
		t.Fatal(err)
	}
	idx.Close()
	if rep := FinishReport(); rep != nil {
		t.Fatalf("phase recorded without an active report: %+v", rep)
	}
}
