package bench

import (
	"fmt"

	"cclbtree/internal/index"
)

// Experiment is one regenerable table or figure from the paper.
type Experiment struct {
	// Name is the CLI id ("fig3", "table1", "ablation-gc", ...).
	Name string
	// Desc summarizes what the paper's figure/table shows.
	Desc string
	// Run executes the experiment at the given scale.
	Run func(Scale) ([]*Table, error)
}

// All returns every experiment, paper order first, extras last.
func All() []Experiment {
	return []Experiment{
		{"fig2", "CLI vs XBI impact on raw device time (§2.2)", Fig2},
		{"fig3", "write amplification + exec time, uniform (§2.3)", Fig3},
		{"fig4", "write amplification + exec time, Zipfian 0.9 (§2.3)", Fig4},
		{"fig5", "range query throughput vs scan size (§2.3)", Fig5},
		{"fig10", "micro-benchmark ops vs threads (§5.2)", Fig10},
		{"fig11", "YCSB mixes vs threads (§5.2)", Fig11},
		{"fig12", "insert/search latency percentiles (§5.2)", Fig12},
		{"fig13", "ablation Base/+BNode/+WLog + XBI split (§5.3)", Fig13},
		{"fig14", "GC strategy throughput timeline (§5.3)", Fig14},
		{"table1", "Nbatch sensitivity (§5.4)", Table1Exp},
		{"table2", "THlog sensitivity (§5.4)", Table2Exp},
		{"fig15a", "skewness sensitivity (§5.4)", Fig15a},
		{"fig15b", "variable-size KV insert throughput (§5.4)", Fig15b},
		{"fig15c", "large-value insert throughput (§5.4)", Fig15c},
		{"fig15d", "dataset size sensitivity (§5.4)", Fig15d},
		{"fig16", "eADR-mode insert throughput (§5.5)", Fig16},
		{"fig17", "recovery time (§5.5)", Fig17},
		{"fig18", "DRAM/PM consumption vs value size (§5.5)", Fig18},
		{"fig19", "realistic SOSD-like datasets (§5.5)", Fig19},
		{"table3", "vs log-structured stores (§5.5)", Table3Exp},
		{"ycsbb", "extra: YCSB-B contention/heat/segment profile (CI perf gate)", YCSBB},
		{"ycsbc", "extra: YCSB-C read-only scaling, lock-free vs locked reads (CI perf gate)", YCSBC},
		{"batch", "extra: Session.Apply group commit vs per-op writes", BatchExp},
		{"shards", "extra: serving-tier shard scaling, 1..8 commit lanes", ShardsExp},
		{"ablation-cache", "extra: buffer-node read caching by Nbatch", AblationCache},
		{"ablation-gc", "extra: GC strategy media traffic", AblationGC},
		{"extension-hash", "extra: §6 techniques applied to a hash table", ExtensionHash},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// lineupResult pairs an index name with its run result.
type lineupResult struct {
	Name string
	Res  *Result
}

// runLineup measures spec against every factory, each on a fresh pool.
func runLineup(factories []index.Factory, spec Spec) ([]lineupResult, error) {
	var out []lineupResult
	for _, f := range factories {
		r, err := runOne(f, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// runOne measures spec against one factory on a fresh pool.
func runOne(f index.Factory, spec Spec) (*lineupResult, error) {
	pool := NewPool()
	idx, err := f(pool)
	if err != nil {
		return nil, err
	}
	defer idx.Close()
	res, err := Run(pool, idx, spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", idx.Name(), err)
	}
	return &lineupResult{Name: idx.Name(), Res: res}, nil
}
